// Sharded-namespace tests (docs/SHARDING.md): the ShardRouter, the
// cross-shard extensions of the ghost relations (LinearizeBefore /
// ComputeHelpOrder over Descriptor::shard and ::migration_id), the ShardedFs
// two-shard commit itself, differential sweeps against a single AtomFs
// oracle, the monitored helping protocol end-to-end (ghost events + Perfetto
// flow arrows), and the two VALIDATION-ONLY protocol breaks — a forced stale
// route and an abandoned migration — each of which must surface as a
// refinement divergence with a replayable post-mortem bundle.

#include "src/shard/sharded_fs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/afs/op.h"
#include "src/crlh/bundle.h"
#include "src/crlh/ghost.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/tracer.h"
#include "src/shard/router.h"
#include "src/util/rand.h"
#include "src/workload/filebench.h"

namespace atomfs {
namespace {

// --- ShardRouter ------------------------------------------------------------

TEST(ShardRouter, HashRoutingIsStableAndInRange) {
  ShardRouter r(4);
  // Routing is pure FNV-1a until a name is pinned; the same name must route
  // identically across router instances (the bench and the smoke script rely
  // on these exact homes for the ta/tb/tc/td tenant roots).
  EXPECT_EQ(r.Route("ta"), 0u);
  EXPECT_EQ(r.Route("tb"), 1u);
  EXPECT_EQ(r.Route("tc"), 2u);
  EXPECT_EQ(r.Route("td"), 3u);
  ShardRouter r2(4);
  for (const char* name : {"ta", "tb", "tc", "td", "a", "b", "some-longer-name", ""}) {
    EXPECT_EQ(r.Route(name), r2.Route(name)) << name;
    EXPECT_LT(r.Route(name), 4u) << name;
  }
  ShardRouter one(1);
  EXPECT_EQ(one.Route("anything"), 0u);
}

TEST(ShardRouter, AssignPinsAndEpochAdvances) {
  ShardRouter r(4);
  EXPECT_EQ(r.table_size(), 0u);
  const uint32_t home = r.Route("proj");
  EXPECT_EQ(r.Assign("proj"), home);
  EXPECT_EQ(r.Assign("proj"), home);  // idempotent
  EXPECT_EQ(r.table_size(), 1u);
  EXPECT_EQ(r.Route("proj"), home);  // pinned route == hashed route

  EXPECT_EQ(r.Epoch("proj"), 0u);
  EXPECT_EQ(r.Epoch("never-seen"), 0u);
  r.BumpEpoch("proj");
  r.BumpEpoch("proj");
  EXPECT_EQ(r.Epoch("proj"), 2u);
  r.BumpEpoch("fresh");  // pins the entry as a side effect
  EXPECT_EQ(r.Epoch("fresh"), 1u);
  EXPECT_EQ(r.table_size(), 2u);
}

// --- cross-shard ghost relations --------------------------------------------

LockPath LP(std::initializer_list<Inum> inos) {
  LockPath lp;
  lp.inos = inos;
  return lp;
}

Descriptor SingleOp(OpKind kind, LockPath path) {
  Descriptor d;
  d.call.kind = kind;
  d.path = std::move(path);
  return d;
}

Descriptor RenameOp(LockPath src, LockPath dst) {
  Descriptor d;
  d.call.kind = OpKind::kRename;
  d.src_path = std::move(src);
  d.dst_path = std::move(dst);
  return d;
}

TEST(CrossShardGhost, PrefixRelationOnlyHoldsWithinAShard) {
  // Identical inum sequences on different shards name unrelated inodes, so
  // the LockPath prefix relation must not order them.
  Descriptor rename = RenameOp(LP({1, 2}), LP({1, 5}));
  Descriptor stat = SingleOp(OpKind::kStat, LP({1, 2, 3}));
  rename.shard = 0;
  stat.shard = 1;
  EXPECT_FALSE(LinearizeBefore(stat, rename));
  EXPECT_FALSE(LinearizeBefore(rename, stat));
  stat.shard = 0;
  EXPECT_TRUE(LinearizeBefore(stat, rename));
}

TEST(CrossShardGhost, SharedMigrationLinearizesBeforeTheHelperOp) {
  Descriptor rename = RenameOp(LP({1, 2}), LP({1, 5}));
  rename.shard = 0;
  rename.migration_id = 42;
  Descriptor stat = SingleOp(OpKind::kStat, LP({9, 10}));
  stat.shard = 1;
  stat.migration_id = 42;
  // The routed-in op linearizes before the migration's helper op, never the
  // other way around, and only a *shared* nonzero id creates the edge.
  EXPECT_TRUE(LinearizeBefore(stat, rename));
  EXPECT_FALSE(LinearizeBefore(rename, stat));
  stat.migration_id = 7;
  EXPECT_FALSE(LinearizeBefore(stat, rename));
  stat.migration_id = 0;
  EXPECT_FALSE(LinearizeBefore(stat, rename));
  // Two non-helper ops sharing a migration id have no mutual edge.
  Descriptor other = SingleOp(OpKind::kReadDir, LP({20}));
  other.shard = 2;
  other.migration_id = 42;
  stat.migration_id = 42;
  EXPECT_FALSE(LinearizeBefore(stat, other));
  EXPECT_FALSE(LinearizeBefore(other, stat));
}

TEST(CrossShardGhost, ComputeHelpOrderJoinsFootprintThreadsAsCrossShard) {
  std::map<Tid, Descriptor> pool;
  pool[1] = RenameOp(LP({1, 2}), LP({1, 5}));
  pool[1].shard = 0;
  pool[1].migration_id = 9;
  // Same-shard Step-1 candidate: LockPath under the rename's SrcPath.
  pool[2] = SingleOp(OpKind::kMkdir, LP({1, 2, 3}));
  pool[2].shard = 0;
  // Different-shard thread routed into the migration's footprint.
  pool[3] = SingleOp(OpKind::kStat, LP({7, 8}));
  pool[3].shard = 1;
  pool[3].migration_id = 9;
  // Different-shard bystander: same inums as the Step-1 candidate, no
  // migration — must stay out of the helping set.
  pool[4] = SingleOp(OpKind::kStat, LP({1, 2, 3}));
  pool[4].shard = 2;

  std::map<Tid, HelpReason> reasons;
  auto order = ComputeHelpOrder(1, pool, &reasons);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 2u);
  EXPECT_NE(std::find(order->begin(), order->end(), 2u), order->end());
  EXPECT_NE(std::find(order->begin(), order->end(), 3u), order->end());
  EXPECT_EQ(std::find(order->begin(), order->end(), 4u), order->end());
  EXPECT_EQ(reasons.at(2), HelpReason::kSrcPrefix);
  EXPECT_EQ(reasons.at(3), HelpReason::kCrossShard);
}

// --- ShardedFs basics -------------------------------------------------------

TEST(ShardedFsBasics, CapabilitiesAdvertiseSharding) {
  ShardedFs fs;
  EXPECT_NE(fs.Capabilities() & kFsCapSharding, 0u);
  EXPECT_EQ(fs.Capabilities() & kFsCapRcuWalk, 0u);

  ShardedFs::Options o;
  o.fs.enable_rcu_walk = true;
  ShardedFs rcu(std::move(o));
  EXPECT_NE(rcu.Capabilities() & kFsCapSharding, 0u);
  EXPECT_NE(rcu.Capabilities() & kFsCapRcuWalk, 0u);
}

TEST(ShardedFsBasics, RootViewMergesTheShardRoots) {
  ShardedFs::Options o;
  o.shards = 4;
  ShardedFs fs(std::move(o));
  for (const char* name : {"/ta", "/tb", "/tc", "/td"}) {
    ASSERT_TRUE(fs.Mkdir(name).ok());
  }
  ASSERT_TRUE(WriteString(fs, "/ta/f", "hello").ok());

  // Each tenant landed on its own shard (the router's FNV-1a homes).
  for (uint32_t i = 0; i < 4; ++i) {
    auto entries = fs.shard(i).ReadDir(std::string_view("/"));
    ASSERT_TRUE(entries.ok());
    ASSERT_EQ(entries->size(), 1u) << "shard " << i;
  }

  auto root = fs.ReadDir("/");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->size(), 4u);
  EXPECT_EQ((*root)[0].name, "ta");  // merged view is name-sorted
  EXPECT_EQ((*root)[3].name, "td");

  auto attr = fs.Stat("/");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, FileType::kDir);
  EXPECT_EQ(attr->size, 4u);

  EXPECT_EQ(fs.Rmdir("/").code(), Errc::kNotEmpty);
  auto back = ReadString(fs, "/ta/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello");
}

TEST(ShardedFsBasics, PerShardOpCountersAccumulate) {
  MetricsRegistry reg;
  ShardedFs::Options o;
  o.shards = 4;
  o.metrics = &reg;
  ShardedFs fs(std::move(o));
  ASSERT_TRUE(fs.Mkdir("/ta").ok());
  ASSERT_TRUE(fs.Mkdir("/tb").ok());
  ASSERT_TRUE(fs.Stat("/ta").ok());
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("shard.ops.s0"), 2u);  // ta → shard 0
  EXPECT_EQ(snap.CounterValue("shard.ops.s1"), 1u);  // tb → shard 1
}

// --- cross-shard migrations (sequential) ------------------------------------

TEST(ShardedFsMigration, CrossShardRenameMovesASubtree) {
  ShardedFs::Options o;
  o.shards = 4;
  o.check_refinement = true;  // sequential harness: completion order is sound
  ShardedFs fs(std::move(o));
  ASSERT_TRUE(fs.Mkdir("/ta").ok());
  ASSERT_TRUE(fs.Mkdir("/tb").ok());
  ASSERT_TRUE(fs.Mkdir("/ta/sub").ok());
  ASSERT_TRUE(WriteString(fs, "/ta/sub/f", "cross-shard payload").ok());

  ASSERT_TRUE(fs.Rename("/ta/sub", "/tb/moved").ok());

  EXPECT_EQ(fs.Stat("/ta/sub").status().code(), Errc::kNoEnt);
  auto back = ReadString(fs, "/tb/moved/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "cross-shard payload");
  EXPECT_EQ(fs.migrations_completed(), 1u);
  EXPECT_EQ(fs.migrations_aborted(), 0u);

  // No staging entry may be visible anywhere: not in the merged root view,
  // and CheckQuiescent scans the shard roots directly.
  auto root = fs.ReadDir("/");
  ASSERT_TRUE(root.ok());
  for (const DirEntry& e : *root) {
    EXPECT_NE(e.name.rfind(kShardStagePrefix, 0), 0u) << e.name;
  }
  EXPECT_TRUE(fs.CheckQuiescent());
  EXPECT_TRUE(fs.ok());
}

TEST(ShardedFsMigration, CrossShardExchangeSwapsContents) {
  ShardedFs::Options o;
  o.shards = 4;
  o.check_refinement = true;
  ShardedFs fs(std::move(o));
  ASSERT_TRUE(fs.Mkdir("/tc").ok());
  ASSERT_TRUE(fs.Mkdir("/td").ok());
  ASSERT_TRUE(WriteString(fs, "/tc/x", "one").ok());
  ASSERT_TRUE(WriteString(fs, "/td/y", "two").ok());

  ASSERT_TRUE(fs.Exchange("/tc/x", "/td/y").ok());

  EXPECT_EQ(*ReadString(fs, "/tc/x"), "two");
  EXPECT_EQ(*ReadString(fs, "/td/y"), "one");
  EXPECT_EQ(fs.migrations_completed(), 1u);
  EXPECT_TRUE(fs.CheckQuiescent());
}

TEST(ShardedFsMigration, DstConflictAbortsAndRollsTheDetachBack) {
  ShardedFs::Options o;
  o.shards = 4;
  o.check_refinement = true;
  ShardedFs fs(std::move(o));
  ASSERT_TRUE(fs.Mkdir("/ta").ok());
  ASSERT_TRUE(fs.Mkdir("/tb").ok());
  ASSERT_TRUE(WriteString(fs, "/ta/f", "survives").ok());
  ASSERT_TRUE(fs.Mkdir("/tb/busy").ok());
  ASSERT_TRUE(WriteString(fs, "/tb/busy/g", "occupant").ok());

  // Attach is where dst-exists semantics resolve: renaming a file over a
  // non-empty directory fails, the detach rolls back, nothing is lost.
  EXPECT_FALSE(fs.Rename("/ta/f", "/tb/busy").ok());
  EXPECT_EQ(fs.migrations_completed(), 0u);
  EXPECT_EQ(fs.migrations_aborted(), 1u);
  EXPECT_EQ(*ReadString(fs, "/ta/f"), "survives");
  EXPECT_EQ(*ReadString(fs, "/tb/busy/g"), "occupant");
  EXPECT_TRUE(fs.CheckQuiescent());
}

// --- differential sweeps against a single AtomFs oracle ---------------------

// Compares the observable slice of two FsOpResults (inums differ between a
// sharded namespace and the oracle, so Attr::ino is out of scope).
void ExpectSameObservable(const FsOp& op, const FsOpResult& got, const FsOpResult& want,
                          size_t step) {
  ASSERT_EQ(got.status.code(), want.status.code())
      << "step " << step << " kind " << static_cast<int>(op.kind);
  ASSERT_NE(got.status.code(), Errc::kShardMoved) << "ESHARDMOVED leaked in safe mode";
  if (!got.status.ok()) {
    return;
  }
  switch (op.kind) {
    case OpKind::kStat:
      EXPECT_EQ(got.attr.type, want.attr.type) << "step " << step;
      EXPECT_EQ(got.attr.size, want.attr.size) << "step " << step;
      break;
    case OpKind::kReadDir: {
      ASSERT_EQ(got.entries.size(), want.entries.size()) << "step " << step;
      for (size_t i = 0; i < got.entries.size(); ++i) {
        EXPECT_EQ(got.entries[i].name, want.entries[i].name) << "step " << step;
      }
      break;
    }
    case OpKind::kRead:
      EXPECT_EQ(got.nbytes, want.nbytes) << "step " << step;
      EXPECT_EQ(got.data, want.data) << "step " << step;
      break;
    case OpKind::kWrite:
      EXPECT_EQ(got.nbytes, want.nbytes) << "step " << step;
      break;
    default:
      break;
  }
}

FsOp MakeOp(OpKind kind, const std::string& a, const std::string& b = "") {
  FsOp op;
  op.kind = kind;
  op.a = *ParsePath(a);
  if (!b.empty()) {
    op.b = *ParsePath(b);
  }
  return op;
}

// A rename/exchange-heavy op stream over four tenant roots. Op choice is a
// pure function of the rng, so the same seed drives the sharded namespace
// and the oracle through the identical sequence.
std::vector<FsOp> RenameHeavyStream(uint64_t seed, size_t count) {
  Rng rng(seed);
  const std::vector<std::string> roots = {"ta", "tb", "tc", "td"};
  auto pick_dir = [&]() {
    return "/" + roots[rng.Below(roots.size())] + "/d" + std::to_string(rng.Below(3));
  };
  auto pick_file = [&]() { return pick_dir() + "/f" + std::to_string(rng.Below(4)); };
  std::vector<FsOp> ops;
  for (const std::string& r : roots) {
    ops.push_back(MakeOp(OpKind::kMkdir, "/" + r));
    for (int d = 0; d < 3; ++d) {
      ops.push_back(MakeOp(OpKind::kMkdir, "/" + r + "/d" + std::to_string(d)));
    }
  }
  // Static so the spans the write ops carry outlive this function.
  static const std::vector<std::byte> payload(64, std::byte{0x5a});
  while (ops.size() < count) {
    switch (rng.Below(10)) {
      case 0:
        ops.push_back(MakeOp(OpKind::kMknod, pick_file()));
        break;
      case 1: {
        FsOp op = MakeOp(OpKind::kWrite, pick_file());
        op.payload = payload;
        ops.push_back(std::move(op));
        break;
      }
      case 2: {
        FsOp op = MakeOp(OpKind::kRead, pick_file());
        op.len = 64;
        ops.push_back(std::move(op));
        break;
      }
      case 3:
        ops.push_back(MakeOp(OpKind::kStat, rng.Chance(1, 4) ? "/" : pick_file()));
        break;
      case 4:
        ops.push_back(MakeOp(OpKind::kReadDir, rng.Chance(1, 4) ? "/" : pick_dir()));
        break;
      case 5:
        ops.push_back(MakeOp(OpKind::kUnlink, pick_file()));
        break;
      case 6:
        ops.push_back(MakeOp(OpKind::kRmdir, pick_dir()));
        break;
      default:
        // 30% renames/exchanges, most of them crossing tenant roots (and
        // therefore shards, at shard counts > 1).
        if (rng.Chance(1, 3)) {
          ops.push_back(MakeOp(OpKind::kExchange, pick_file(), pick_file()));
        } else if (rng.Chance(1, 4)) {
          // Subtree migration: move a whole directory between tenants.
          ops.push_back(MakeOp(OpKind::kRename, pick_dir(), pick_dir()));
        } else {
          ops.push_back(MakeOp(OpKind::kRename, pick_file(), pick_file()));
        }
        break;
    }
  }
  return ops;
}

TEST(ShardedFsDifferential, RenameHeavySweepMatchesTheOracle) {
  for (uint32_t shards = 1; shards <= 4; ++shards) {
    ShardedFs::Options o;
    o.shards = shards;
    o.check_refinement = true;
    ShardedFs sharded(std::move(o));
    AtomFs oracle;
    const std::vector<FsOp> ops = RenameHeavyStream(0x5eed + shards, 400);
    for (size_t i = 0; i < ops.size(); ++i) {
      const FsOpResult got = sharded.Dispatch(ops[i]);
      const FsOpResult want = oracle.Dispatch(ops[i]);
      ExpectSameObservable(ops[i], got, want, i);
    }
    if (shards > 1) {
      EXPECT_GT(sharded.migrations_completed() + sharded.migrations_aborted(), 0u)
          << "sweep never exercised a cross-shard commit at " << shards << " shards";
    }
    EXPECT_TRUE(StructurallyEqual(sharded.SnapshotSpec(), oracle.SnapshotSpec()))
        << shards << " shards";
    EXPECT_TRUE(sharded.CheckQuiescent()) << shards << " shards";
    EXPECT_TRUE(sharded.ok());
  }
}

TEST(ShardedFsDifferential, FileserverProfileMatchesTheOracle) {
  FilebenchProfile base = FilebenchProfile::Fileserver();
  base.dirs = 4;
  base.files = 24;
  base.file_bytes = 256;
  base.io_bytes = 128;
  const std::vector<std::string> tenants = {"/ta", "/tb", "/tc", "/td"};
  for (uint32_t shards = 1; shards <= 4; ++shards) {
    ShardedFs::Options o;
    o.shards = shards;
    ShardedFs sharded(std::move(o));
    AtomFs oracle;
    for (size_t t = 0; t < tenants.size(); ++t) {
      FilebenchProfile p = base;
      p.root = tenants[t];
      FilebenchSetup(sharded, p, /*seed=*/3 + t);
      FilebenchSetup(oracle, p, /*seed=*/3 + t);
      const WorkerStats a = FilebenchWorker(sharded, p, /*seed=*/99 + t, /*op_count=*/120);
      const WorkerStats b = FilebenchWorker(oracle, p, /*seed=*/99 + t, /*op_count=*/120);
      EXPECT_EQ(a.ops, b.ops);
      EXPECT_EQ(a.failures, b.failures);
    }
    EXPECT_TRUE(StructurallyEqual(sharded.SnapshotSpec(), oracle.SnapshotSpec()))
        << shards << " shards";
    EXPECT_TRUE(sharded.CheckQuiescent()) << shards << " shards";
  }
}

// --- the monitored helping protocol end-to-end ------------------------------

TEST(ShardedFsHelping, BlockedSideThreadIsHelpedAcrossShards) {
  MetricsRegistry reg;
  TraceRing ring(1024);
  TracingObserver tracer(&reg, &ring);

  std::mutex mu;
  std::condition_variable cv;
  bool reader_registered = false;

  ShardedFs::Options o;
  o.shards = 4;
  o.monitored = true;
  o.monitor.obs = &tracer;
  o.extra_observer = &tracer;
  o.obs = &tracer;
  o.metrics = &reg;
  // Park the migration driver inside the detach window until the reader has
  // been routed into the footprint (and is therefore obliged to help).
  o.test_pause_after_detach = [&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return reader_registered; });
  };
  ShardedFs fs(std::move(o));
  ASSERT_TRUE(fs.Mkdir("/ta").ok());
  ASSERT_TRUE(fs.Mkdir("/tb").ok());
  ASSERT_TRUE(WriteString(fs, "/ta/m", "in flight").ok());

  std::thread driver([&] { ASSERT_TRUE(fs.Rename("/ta/m", "/tb/m").ok()); });

  // The reader dispatches into the published migration's footprint, records
  // its participation (a stale-route retry), and blocks helping.
  std::thread reader([&] {
    const Status st = fs.Stat("/ta/m").status();
    // The reader linearizes after the migration it helped complete.
    EXPECT_EQ(st.code(), Errc::kNoEnt);
  });
  while (fs.stale_route_retries() == 0) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    reader_registered = true;
  }
  cv.notify_all();
  driver.join();
  reader.join();

  EXPECT_EQ(fs.migrations_completed(), 1u);
  EXPECT_GE(fs.cross_shard_help_edges(), 1u);
  EXPECT_GE(fs.stale_route_retries(), 1u);
  EXPECT_EQ(reg.Snapshot().CounterValue("shard.cross_help_edges"), fs.cross_shard_help_edges());
  EXPECT_EQ(*ReadString(fs, "/tb/m"), "in flight");
  EXPECT_TRUE(fs.ok()) << fs.violations().front();
  EXPECT_TRUE(fs.CheckQuiescent());
  EXPECT_TRUE(fs.Helplist().empty());  // helped ops retired on completion

  // The ghost trace recorded the cross-shard help edge...
  const std::vector<TraceEvent> events = ring.Snapshot();
  bool saw_cross_shard_help = false;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kHelp && e.ino != 0 &&
        (e.flags & kTraceHelpReasonCrossShard) != 0) {
      saw_cross_shard_help = true;
    }
  }
  EXPECT_TRUE(saw_cross_shard_help);

  // ...and the Perfetto export renders it as a flow arrow with the
  // crossshard reason on the target span.
  const std::string json = ExportChromeTrace(events);
  EXPECT_NE(json.find("crossshard"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

// --- validation-only protocol breaks ----------------------------------------

// Round-trips a post-mortem through the bundle text form and replays it; the
// replay must reproduce the refinement divergence offline.
void ExpectReplayableDivergence(ShardedFs& fs) {
  auto pm = fs.PostMortemState();
  ASSERT_TRUE(pm.has_value());
  const PostMortemBundle bundle = BuildPostMortemBundle(*pm, /*ring_events=*/{});
  const std::string text = FormatBundle(bundle);
  std::istringstream in(text);
  auto parsed = ParseBundle(in);
  ASSERT_TRUE(parsed.ok());
  const BundleReplay replay = ReplayBundle(*parsed);
  EXPECT_TRUE(replay.reproduced) << replay.verdict;
}

TEST(ShardedFsValidation, StaleRouteObservesTheDetachWindow) {
  std::mutex mu;
  std::condition_variable cv;
  bool reader_done = false;

  ShardedFs::Options o;
  o.shards = 4;
  o.check_refinement = true;
  o.unsafe_stale_route = true;
  o.test_pause_after_detach = [&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return reader_done; });
  };
  ShardedFs fs(std::move(o));
  ASSERT_TRUE(fs.Mkdir("/ta").ok());
  ASSERT_TRUE(fs.Mkdir("/tb").ok());
  ASSERT_TRUE(WriteString(fs, "/ta/f", "detached").ok());

  std::thread driver([&] { ASSERT_TRUE(fs.Rename("/ta/f", "/tb/f").ok()); });
  // With the migration gate disabled the reader races straight to the hashed
  // shard and observes the detach window: /ta/f is missing while the rename
  // that will re-create it under /tb has not yet linearized. That transient
  // ENOENT is exactly the stale-route anomaly safe mode absorbs.
  while (fs.stale_route_retries() == 0 && fs.Stat("/ta/f").status().ok()) {
    std::this_thread::yield();
  }
  const Status raced = fs.Stat("/ta/f").status();
  EXPECT_FALSE(raced.ok());
  {
    std::lock_guard<std::mutex> lk(mu);
    reader_done = true;
  }
  cv.notify_all();
  driver.join();

  // The refinement replay catches it: in the recorded completion order the
  // stat's ENOENT precedes the rename, but abstractly /ta/f still existed.
  EXPECT_FALSE(fs.CheckQuiescent());
  EXPECT_FALSE(fs.ok());
  ExpectReplayableDivergence(fs);
}

TEST(ShardedFsValidation, AbandonedMigrationIsFlaggedAndReplayable) {
  ShardedFs::Options o;
  o.shards = 4;
  o.check_refinement = true;
  o.unsafe_abandon_migration = true;
  ShardedFs fs(std::move(o));
  ASSERT_TRUE(fs.Mkdir("/ta").ok());
  ASSERT_TRUE(fs.Mkdir("/tb").ok());
  ASSERT_TRUE(WriteString(fs, "/ta/f", "stranded").ok());

  // The driver claims success right after detach, leaving the subtree in
  // the source shard's staging entry.
  ASSERT_TRUE(fs.Rename("/ta/f", "/tb/f").ok());
  EXPECT_EQ(fs.Stat("/tb/f").status().code(), Errc::kNoEnt);  // half-applied

  ASSERT_FALSE(fs.CheckQuiescent());
  bool flagged_staging = false;
  for (const std::string& v : fs.violations()) {
    if (v.find("abandoned migration staging") != std::string::npos) {
      flagged_staging = true;
    }
  }
  EXPECT_TRUE(flagged_staging);
  ExpectReplayableDivergence(fs);
}

}  // namespace
}  // namespace atomfs
