// Tests for the guarantee-condition checker (paper §4.2 / §8): every
// concrete-state transition of AtomFS must be one of Lock, Unlock, or
// Lockedtrans. Positive: sequential runs and explored schedules stay clean
// (strict attribution under the single-core simulator). Negative: a file
// system that mutates outside its announced locks is flagged.

#include "src/crlh/rg_check.h"

#include <gtest/gtest.h>

#include "src/crlh/explore.h"
#include "src/sim/executor.h"

namespace atomfs {
namespace {

// AtomFs takes its observer at construction, but the checker needs the fs
// pointer to snapshot it — a trampoline breaks the cycle: the fs gets the
// trampoline, the checker is built afterwards and plugged in.
class Trampoline : public FsObserver {
 public:
  void SetTarget(FsObserver* target) { target_ = target; }
  void OnOpBegin(Tid tid, const OpCall& call) override {
    if (target_ != nullptr) {
      target_->OnOpBegin(tid, call);
    }
  }
  void OnOpEnd(Tid tid, const OpResult& result) override {
    if (target_ != nullptr) {
      target_->OnOpEnd(tid, result);
    }
  }
  void OnLockAcquired(Tid tid, Inum ino, LockPathRole role) override {
    if (target_ != nullptr) {
      target_->OnLockAcquired(tid, ino, role);
    }
  }
  void OnLockReleased(Tid tid, Inum ino) override {
    if (target_ != nullptr) {
      target_->OnLockReleased(tid, ino);
    }
  }
  void OnLp(Tid tid, Inum created_ino) override {
    if (target_ != nullptr) {
      target_->OnLp(tid, created_ino);
    }
  }

 private:
  FsObserver* target_ = nullptr;
};

TEST(GuaranteeChecker, SequentialMixedOpsSatisfyProtocol) {
  Trampoline trampoline;
  AtomFs::Options opts;
  opts.observer = &trampoline;
  AtomFs fs(std::move(opts));
  GuaranteeChecker::Options gopts;
  gopts.strict_attribution = true;
  GuaranteeChecker checker(&fs, gopts);
  trampoline.SetTarget(&checker);

  EXPECT_TRUE(fs.Mkdir("/a").ok());
  EXPECT_TRUE(fs.Mkdir("/a/b").ok());
  EXPECT_TRUE(WriteString(fs, "/a/b/f", "payload").ok());
  EXPECT_TRUE(fs.Rename("/a/b", "/c").ok());
  EXPECT_TRUE(fs.Exchange("/a", "/c").ok());
  // After the exchange, the file moved with its directory to /a/f.
  EXPECT_TRUE(fs.Truncate("/a/f", 2).ok());
  EXPECT_TRUE(fs.Unlink("/a/f").ok());
  EXPECT_TRUE(fs.Rmdir("/a").ok());
  EXPECT_TRUE(fs.Rmdir("/c").ok());

  EXPECT_TRUE(checker.ok()) << checker.violations()[0];
  EXPECT_GT(checker.transitions_checked(), 20u);
}

// Under the single-core, no-yield-on-work simulator, thread switches happen
// only at evented points, so strict attribution holds on every schedule of a
// small concurrent program.
TEST(GuaranteeChecker, HoldsOnExploredSchedules) {
  auto run_one_schedule = [](std::vector<uint32_t> script) {
    ScheduleOptions sched;
    sched.policy = SchedulePolicy::kScripted;
    sched.script = std::move(script);
    sched.yield_on_work = false;
    SimExecutor sim(1, sched);
    Trampoline trampoline;
    AtomFs::Options opts;
    opts.executor = &sim;
    opts.observer = &trampoline;
    AtomFs fs(std::move(opts));
    GuaranteeChecker::Options gopts;
    gopts.strict_attribution = true;
    GuaranteeChecker checker(&fs, gopts);
    trampoline.SetTarget(&checker);

    RunInSim(sim, [&] {
      fs.Mkdir("/a");
      fs.Mkdir("/a/b");
    });
    sim.Spawn([&] { fs.Mkdir("/a/b/c"); });
    sim.Spawn([&] { fs.Rename("/a", "/e"); });
    sim.Run();
    return std::make_tuple(checker.ok(),
                           checker.ok() ? std::string() : checker.violations()[0],
                           sim.ScheduleTrace(), sim.ScheduleFanouts());
  };

  // Enumerate all schedules (same DFS as the explorer, inline).
  std::vector<std::vector<uint32_t>> pending{{}};
  int executions = 0;
  while (!pending.empty() && executions < 2000) {
    auto script = std::move(pending.back());
    pending.pop_back();
    auto [ok, first_violation, trace, fanouts] = run_one_schedule(script);
    ++executions;
    ASSERT_TRUE(ok) << first_violation;
    for (size_t pos = script.size(); pos < trace.size(); ++pos) {
      for (uint32_t c = 1; c < fanouts[pos]; ++c) {
        std::vector<uint32_t> child(trace.begin(),
                                    trace.begin() + static_cast<ptrdiff_t>(pos));
        child.push_back(c);
        pending.push_back(std::move(child));
      }
    }
  }
  EXPECT_GT(executions, 10);
}

// Negative: a file system that mutates shared state without announcing any
// lock (BigLockFs emits op events but no per-inode lock events) violates the
// fine-grained protocol — the checker must say so.
TEST(GuaranteeChecker, FlagsMutationsOutsideLocks) {
  // Reuse the trampoline trick with an AtomFs that *suppresses* lock events:
  // disable_inode_locks drops both the locks and their events while the
  // tree still changes — exactly "a transition that is not Lock/Unlock/
  // Lockedtrans".
  Trampoline trampoline;
  AtomFs::Options opts;
  opts.observer = &trampoline;
  opts.disable_inode_locks = true;
  AtomFs fs(std::move(opts));
  GuaranteeChecker checker(&fs);
  trampoline.SetTarget(&checker);

  EXPECT_TRUE(fs.Mkdir("/a").ok());
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.violations()[0].find("GUARANTEE"), std::string::npos);
}

}  // namespace
}  // namespace atomfs
