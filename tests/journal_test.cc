// Tests for the operation-log durability layer (src/journal): logging,
// recovery, and crash simulation — the log is cut at arbitrary byte offsets
// and recovery must always yield a state equal to replaying some prefix of
// the logged mutation history (prefix consistency).

#include "src/journal/journal_fs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/core/atom_fs.h"
#include "src/journal/wal.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

class TempLog {
 public:
  explicit TempLog(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::remove(path_.c_str());
  }
  ~TempLog() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

  std::string Contents() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

  void Truncate(size_t bytes) const {
    std::string data = Contents();
    data.resize(std::min(bytes, data.size()));
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << data;
  }

 private:
  std::string path_;
};

TEST(JournalFs, LogsMutationsNotReads) {
  TempLog log("atomfs_journal_basic.log");
  AtomFs inner;
  JournalFs fs(&inner, log.path());
  EXPECT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_TRUE(WriteString(fs, "/d/f", "x").ok());
  EXPECT_TRUE(fs.Stat("/d/f").ok());
  EXPECT_TRUE(fs.ReadDir("/d").ok());
  EXPECT_EQ(fs.Unlink("/d/missing").code(), Errc::kNoEnt);  // failed op: unlogged
  // mkdir + (mknod + truncate-or-write from WriteString) logged; reads and
  // the failed unlink are not.
  EXPECT_EQ(fs.logged_ops(), 3u);
}

TEST(JournalFs, RecoverRebuildsFullState) {
  TempLog log("atomfs_journal_recover.log");
  AtomFs inner;
  {
    JournalFs fs(&inner, log.path());
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(WriteString(fs, "/a/f", "hello journal").ok());
    ASSERT_TRUE(fs.Rename("/a/f", "/a/g").ok());
    ASSERT_TRUE(fs.Mkdir("/b").ok());
    ASSERT_TRUE(fs.Exchange("/a", "/b").ok());
  }
  AtomFs recovered;
  auto count = JournalFs::Recover(log.path(), recovered);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u);
  EXPECT_TRUE(StructurallyEqual(inner.SnapshotSpec(), recovered.SnapshotSpec()));
  EXPECT_EQ(ReadString(recovered, "/b/g").value(), "hello journal");
}

TEST(JournalFs, RecoverMissingLog) {
  AtomFs fs;
  EXPECT_EQ(JournalFs::Recover("/tmp/definitely_not_here.log", fs).status().code(),
            Errc::kNoEnt);
}

TEST(JournalFs, TornTailLineIsDropped) {
  TempLog log("atomfs_journal_torn.log");
  {
    AtomFs inner;
    JournalFs fs(&inner, log.path());
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/a/b").ok());
  }
  // Simulate a crash mid-append: cut the last line in half.
  const std::string full = log.Contents();
  log.Truncate(full.size() - 4);
  AtomFs recovered;
  auto count = JournalFs::Recover(log.path(), recovered);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);  // only the first mkdir survived
  EXPECT_TRUE(recovered.Stat("/a").ok());
  EXPECT_EQ(recovered.Stat("/a/b").status().code(), Errc::kNoEnt);
}

// Prefix consistency under arbitrary crash points: cut the log at every
// byte offset and check the recovered state equals replaying some prefix of
// the mutation history.
TEST(JournalFs, CrashAtEveryOffsetIsPrefixConsistent) {
  TempLog log("atomfs_journal_crashsweep.log");
  std::vector<OpCall> mutations;
  {
    AtomFs inner;
    JournalFs fs(&inner, log.path());
    ASSERT_TRUE(fs.Mkdir("/d").ok());
    mutations.push_back(OpCall::MkdirOf(*ParsePath("/d")));
    ASSERT_TRUE(fs.Mknod("/d/f").ok());
    mutations.push_back(OpCall::MknodOf(*ParsePath("/d/f")));
    std::vector<std::byte> payload{std::byte{'h'}, std::byte{'i'}};
    ASSERT_TRUE(fs.Write("/d/f", 0, std::span<const std::byte>(payload)).ok());
    mutations.push_back(OpCall::WriteOf(*ParsePath("/d/f"), 0, payload));
    ASSERT_TRUE(fs.Rename("/d/f", "/d/g").ok());
    mutations.push_back(OpCall::RenameOf(*ParsePath("/d/f"), *ParsePath("/d/g")));
    ASSERT_TRUE(fs.Rmdir("/x").code() == Errc::kNoEnt || true);  // unlogged failure
  }
  const std::string full = log.Contents();

  // Precompute the states after each prefix of the mutation list.
  std::vector<SpecFs> prefix_states;
  {
    SpecFs state;
    prefix_states.push_back(state);
    for (const auto& call : mutations) {
      ASSERT_TRUE(RunOp(state, call).status.ok());
      prefix_states.push_back(state);
    }
  }

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    {
      std::ofstream out(log.path(), std::ios::binary | std::ios::trunc);
      out << full.substr(0, cut);
    }
    AtomFs recovered;
    auto count = JournalFs::Recover(log.path(), recovered);
    ASSERT_TRUE(count.ok()) << "cut at " << cut;
    ASSERT_LE(*count, mutations.size()) << "cut at " << cut;
    EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), prefix_states[*count]))
        << "cut at " << cut << " recovered " << *count;
  }
}

TEST(JournalFs, ConcurrentMutationsAllRecovered) {
  TempLog log("atomfs_journal_concurrent.log");
  AtomFs inner;
  {
    JournalFs fs(&inner, log.path());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&fs, t] {
        for (int i = 0; i < 50; ++i) {
          fs.Mkdir("/t" + std::to_string(t) + "_" + std::to_string(i));
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_EQ(fs.logged_ops(), 200u);
  }
  AtomFs recovered;
  auto count = JournalFs::Recover(log.path(), recovered);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 200u);
  EXPECT_TRUE(StructurallyEqual(inner.SnapshotSpec(), recovered.SnapshotSpec()));
}

TEST(JournalFs, EmptyJournalRecoversEmptyState) {
  TempLog log("atomfs_journal_empty.log");
  {
    std::ofstream out(log.path(), std::ios::binary);  // zero-byte file
  }
  AtomFs recovered;
  auto count = JournalFs::Recover(log.path(), recovered);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), SpecFs{}));
}

TEST(JournalFs, TornRecordHeaderIsDropped) {
  TempLog log("atomfs_journal_torn_header.log");
  {
    AtomFs inner;
    JournalFs fs(&inner, log.path());
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/b").ok());
  }
  const WalScan scan = ScanWalBytes(log.Contents());
  ASSERT_EQ(scan.records.size(), 2u);
  // Crash mid-append of the second record's fixed header.
  log.Truncate(scan.records[0].end_offset + kWalHeaderBytes / 2);
  AtomFs recovered;
  auto count = JournalFs::Recover(log.path(), recovered);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  EXPECT_TRUE(recovered.Stat("/a").ok());
  EXPECT_EQ(recovered.Stat("/b").status().code(), Errc::kNoEnt);
}

TEST(JournalFs, TornRecordPayloadIsDropped) {
  TempLog log("atomfs_journal_torn_payload.log");
  {
    AtomFs inner;
    JournalFs fs(&inner, log.path());
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/b").ok());
  }
  const WalScan scan = ScanWalBytes(log.Contents());
  ASSERT_EQ(scan.records.size(), 2u);
  // Header intact, payload cut short: the length check must reject it.
  log.Truncate(scan.records[0].end_offset + kWalHeaderBytes + 2);
  AtomFs recovered;
  auto count = JournalFs::Recover(log.path(), recovered);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  EXPECT_TRUE(recovered.Stat("/a").ok());
  EXPECT_EQ(recovered.Stat("/b").status().code(), Errc::kNoEnt);
}

TEST(Wal, ChecksumRejectsBitFlip) {
  std::string log = EncodeWalRecord(WalRecordType::kOp, 0, "mkdir /a");
  log += EncodeWalRecord(WalRecordType::kOp, 0, "mkdir /b");
  log[log.size() - 3] = static_cast<char>(~log[log.size() - 3]);  // rot in /b's payload
  const WalScan scan = ScanWalBytes(log);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.torn_tail);
  AtomFs recovered;
  const WalRecoveryStats stats = RecoverWalBytes(log, recovered);
  EXPECT_EQ(stats.applied_ops, 1u);
  EXPECT_TRUE(recovered.Stat("/a").ok());
  EXPECT_EQ(recovered.Stat("/b").status().code(), Errc::kNoEnt);
}

TEST(Wal, CommittedTxnReplaysAtomicallyAtCommitRecord) {
  std::string log;
  log += EncodeWalRecord(WalRecordType::kBegin, 7, "");
  log += EncodeWalRecord(WalRecordType::kOp, 7, "mkdir /t");
  log += EncodeWalRecord(WalRecordType::kOp, 7, "mknod /t/f");
  log += EncodeWalRecord(WalRecordType::kCommit, 7, "");
  AtomFs fs;
  const WalRecoveryStats stats = RecoverWalBytes(log, fs);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.applied_ops, 2u);
  EXPECT_TRUE(fs.Stat("/t/f").ok());
}

TEST(Wal, UncommittedTxnIsNeverVisible) {
  std::string log;
  log += EncodeWalRecord(WalRecordType::kOp, 0, "mkdir /keep");
  log += EncodeWalRecord(WalRecordType::kBegin, 9, "");
  log += EncodeWalRecord(WalRecordType::kOp, 9, "mkdir /lost");
  // Crash before the commit record: the whole transaction is discarded.
  AtomFs fs;
  const WalRecoveryStats stats = RecoverWalBytes(log, fs);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.discarded, 1u);
  EXPECT_TRUE(fs.Stat("/keep").ok());
  EXPECT_EQ(fs.Stat("/lost").status().code(), Errc::kNoEnt);
  // The dangling begin's id is reported so a reopening writer can allocate
  // above it — reusing txid 9 would read as a duplicate bracket next time.
  EXPECT_EQ(stats.max_txid, 9u);
}

TEST(Wal, AbortedTxnIsNeverVisible) {
  std::string log;
  log += EncodeWalRecord(WalRecordType::kBegin, 3, "");
  log += EncodeWalRecord(WalRecordType::kOp, 3, "mkdir /rolled_back");
  log += EncodeWalRecord(WalRecordType::kAbort, 3, "");
  log += EncodeWalRecord(WalRecordType::kOp, 0, "mkdir /after");
  AtomFs fs;
  const WalRecoveryStats stats = RecoverWalBytes(log, fs);
  EXPECT_EQ(stats.aborted, 1u);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(fs.Stat("/rolled_back").status().code(), Errc::kNoEnt);
  EXPECT_TRUE(fs.Stat("/after").ok());
}

TEST(JournalFs, ReopenAppendsToExistingLog) {
  TempLog log("atomfs_journal_reopen.log");
  AtomFs inner1;
  {
    JournalFs fs(&inner1, log.path());
    ASSERT_TRUE(fs.Mkdir("/first").ok());
  }
  // "Remount": recover into a fresh FS, keep journaling to the same log.
  AtomFs inner2;
  ASSERT_TRUE(JournalFs::Recover(log.path(), inner2).ok());
  {
    JournalFs fs(&inner2, log.path());
    ASSERT_TRUE(fs.Mkdir("/second").ok());
  }
  AtomFs recovered;
  auto count = JournalFs::Recover(log.path(), recovered);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
  EXPECT_TRUE(recovered.Stat("/first").ok());
  EXPECT_TRUE(recovered.Stat("/second").ok());
}

}  // namespace
}  // namespace atomfs
