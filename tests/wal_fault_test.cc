// Fault-injection tests for the journal's failure semantics: a WAL write
// that fails (ENOSPC, EIO, torn short write) must surface kIo to the caller
// whose mutation was not made durable, fail-stop the journal (every later
// mutating call answers kIo), and leave on disk a log whose recovery matches
// a prefix of the commit-descriptor oracle — the "commit that can't fail
// silently" contract in src/journal/wal.h.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/core/atom_fs.h"
#include "src/journal/journal_fs.h"
#include "src/journal/wal.h"
#include "src/txn/crash.h"
#include "src/txn/txn.h"

namespace atomfs {
namespace {

class TempLog {
 public:
  explicit TempLog(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::remove(path_.c_str());
  }
  ~TempLog() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

  std::string Contents() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

 private:
  std::string path_;
};

// Arms the fault after `healthy_writes` successful writes, then fails every
// write with `err`. Returned by reference so tests can re-arm / disarm.
struct FaultPlan {
  int healthy_writes = 0;
  int err = 0;
  int writes_seen = 0;
};

WalWriterOptions FaultAfter(FaultPlan* plan, size_t short_bytes = 0) {
  WalWriterOptions opts;
  opts.fault_short_bytes = short_bytes;
  opts.write_fault = [plan](std::string_view) {
    ++plan->writes_seen;
    return plan->writes_seen > plan->healthy_writes ? plan->err : 0;
  };
  return opts;
}

TEST(WalFault, FlushFailurePoisonsTheWriter) {
  TempLog log("atomfs_fault_poison.wal");
  FaultPlan plan{/*healthy_writes=*/0, /*err=*/ENOSPC};
  WalWriter w(log.path(), FaultAfter(&plan));
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w.Append(WalRecordType::kOp, 0, "mkdir /a").ok());
  EXPECT_EQ(w.Flush().code(), Errc::kIo);
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), Errc::kIo);
  // Sticky: the first failure's verdict answers every later call, even
  // though the fault plan would now allow writes through.
  plan.err = 0;
  EXPECT_EQ(w.Append(WalRecordType::kOp, 0, "mkdir /b").code(), Errc::kIo);
  EXPECT_EQ(w.Flush().code(), Errc::kIo);
  EXPECT_EQ(w.Fsync().code(), Errc::kIo);
  EXPECT_EQ(w.Rotate(1).code(), Errc::kIo);
}

TEST(WalFault, TornShortWriteLeavesRecoverablePrefix) {
  TempLog log("atomfs_fault_torn.wal");
  {
    FaultPlan plan{/*healthy_writes=*/1, /*err=*/EIO};
    // The failing write lands 7 bytes of the record before dying — a torn
    // write, mid-header.
    WalWriter w(log.path(), FaultAfter(&plan, /*short_bytes=*/7));
    ASSERT_TRUE(w.Append(WalRecordType::kOp, 0, "mkdir /kept").ok());
    ASSERT_TRUE(w.Flush().ok());
    ASSERT_TRUE(w.Append(WalRecordType::kOp, 0, "mkdir /lost").ok());
    EXPECT_EQ(w.Flush().code(), Errc::kIo);
  }
  // Recovery reads the clean prefix and rejects the torn bytes.
  AtomFs recovered;
  const WalRecoveryStats stats = RecoverWalBytes(log.Contents(), recovered);
  EXPECT_EQ(stats.applied_ops, 1u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_TRUE(recovered.Stat("/kept").ok());
  EXPECT_EQ(recovered.Stat("/lost").status().code(), Errc::kNoEnt);
}

TEST(WalFault, JournalFsSurfacesEioAndFailStops) {
  TempLog log("atomfs_fault_journalfs.wal");
  AtomFs inner;
  FaultPlan plan{/*healthy_writes=*/1, /*err=*/ENOSPC};
  JournalFs::Options opts;
  opts.wal = FaultAfter(&plan);
  JournalFs fs(&inner, log.path(), opts);
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  EXPECT_FALSE(fs.failed());
  // The op ran on the inner FS but its record never reached the log: the
  // caller must hear about the durability failure.
  EXPECT_EQ(fs.Mkdir("/b").code(), Errc::kIo);
  EXPECT_TRUE(fs.failed());
  // Fail-stopped: nothing further mutates, not even ops that would succeed.
  EXPECT_EQ(fs.Mkdir("/c").code(), Errc::kIo);
  EXPECT_EQ(fs.Unlink("/a").code(), Errc::kIo);
  std::vector<std::byte> data{std::byte{'x'}};
  EXPECT_EQ(fs.Write("/a", 0, std::span<const std::byte>(data)).status().code(), Errc::kIo);
  // Reads still pass through — the backend state is intact, only durability
  // is gone.
  EXPECT_TRUE(fs.Stat("/a").ok());
  // Recovery of what did reach the disk yields exactly the acknowledged op.
  AtomFs recovered;
  auto count = JournalFs::Recover(log.path(), recovered);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  EXPECT_TRUE(recovered.Stat("/a").ok());
  EXPECT_EQ(recovered.Stat("/b").status().code(), Errc::kNoEnt);
}

TEST(WalFault, FailedCommitAppliesNothingAndFailStops) {
  TempLog log("atomfs_fault_commit.wal");
  AtomFs inner;
  // One write(2) per committed unit (the commit-point flush): the first
  // unit lands, the second dies.
  FaultPlan plan{/*healthy_writes=*/1, /*err=*/EIO};
  TxnManager::Options topt;
  topt.inner = &inner;
  topt.wal_path = log.path();
  topt.record_commit_log = true;
  topt.wal = FaultAfter(&plan);
  TxnManager txn(topt);

  ASSERT_TRUE(txn.Mkdir("/base").ok());  // unit 1: flush succeeds

  auto id = txn.Begin();
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(txn.Apply(*id, OpCall::MkdirOf(*ParsePath("/t"))).status.ok());
  EXPECT_TRUE(txn.Apply(*id, OpCall::MknodOf(*ParsePath("/t/f"))).status.ok());
  // The commit point's flush fails: the client hears kIo and NOTHING from
  // the transaction is applied to the inner FS or the mirror.
  EXPECT_EQ(txn.Commit(*id).code(), Errc::kIo);
  EXPECT_TRUE(txn.journal_failed());
  EXPECT_EQ(inner.Stat("/t").status().code(), Errc::kNoEnt);
  EXPECT_TRUE(inner.Stat("/base").ok());

  // Fail-stopped: later mutating calls answer kIo without touching anything.
  EXPECT_EQ(txn.Begin().status().code(), Errc::kIo);
  EXPECT_EQ(txn.Mkdir("/later").code(), Errc::kIo);
  EXPECT_EQ(inner.Stat("/later").status().code(), Errc::kNoEnt);
  EXPECT_EQ(txn.TakeCheckpoint().code(), Errc::kIo);

  // The on-disk log replays to exactly the acknowledged commit log — the
  // durability oracle (crash.h PrefixState) agrees with recovery.
  const std::vector<CommitDescriptor> commit_log = txn.commit_log();
  ASSERT_EQ(commit_log.size(), 1u);
  AtomFs recovered;
  const WalRecoveryStats stats = RecoverWalBytes(log.Contents(), recovered);
  EXPECT_EQ(stats.committed, commit_log.size());
  EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(),
                                PrefixState(commit_log, commit_log.size())));
}

TEST(WalFault, DirectOpLogFailureSurfacesEio) {
  TempLog log("atomfs_fault_direct.wal");
  AtomFs inner;
  FaultPlan plan{/*healthy_writes=*/1, /*err=*/ENOSPC};
  TxnManager::Options topt;
  topt.inner = &inner;
  topt.wal_path = log.path();
  topt.wal = FaultAfter(&plan);
  TxnManager txn(topt);
  ASSERT_TRUE(txn.Mkdir("/ok").ok());
  EXPECT_EQ(txn.Mkdir("/doomed").code(), Errc::kIo);
  EXPECT_TRUE(txn.journal_failed());
  // Recovery sees only the acknowledged unit.
  AtomFs recovered;
  const WalRecoveryStats stats = RecoverWalBytes(log.Contents(), recovered);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_TRUE(recovered.Stat("/ok").ok());
  EXPECT_EQ(recovered.Stat("/doomed").status().code(), Errc::kNoEnt);
}

TEST(WalFault, FsyncCommitsCountsFsyncsAndPropagatesFailure) {
  TempLog log("atomfs_fault_fsync.wal");
  AtomFs inner;
  TxnManager::Options topt;
  topt.inner = &inner;
  topt.wal_path = log.path();
  topt.fsync_commits = true;
  TxnManager txn(topt);
  ASSERT_TRUE(txn.Mkdir("/durable").ok());
  EXPECT_FALSE(txn.journal_failed());
  AtomFs recovered;
  const WalRecoveryStats stats = RecoverWalBytes(log.Contents(), recovered);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_TRUE(recovered.Stat("/durable").ok());
}

}  // namespace
}  // namespace atomfs
