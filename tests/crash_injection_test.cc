// The durability refinement check (src/txn/crash.h): build a seeded mix of
// committed transactions, aborted transactions, and auto-committed direct
// ops through a real journaling TxnManager, then crash the WAL at every
// record boundary, inside every record (torn write), and with a flipped byte
// per record (bit rot). Every crash point must recover to a state
// structurally equal to a prefix of the golden commit-descriptor sequence —
// zero divergences, incomplete transactions never partially visible.
//
// Environment knobs for smoke runs (tools/crash_smoke.sh):
//   ATOMFS_CRASH_TXNS        transactions in the mix (default 24)
//   ATOMFS_CRASH_MAX_POINTS  cap on crash points per sweep (default 0 = all)

#include "src/txn/crash.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/core/atom_fs.h"
#include "src/journal/wal.h"
#include "src/vfs/path.h"

namespace atomfs {
namespace {

class TempLog {
 public:
  explicit TempLog(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::remove(path_.c_str());
  }
  ~TempLog() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

CrashMixOptions MixFromEnv(uint64_t seed) {
  CrashMixOptions o;
  o.seed = seed;
  o.txns = EnvInt("ATOMFS_CRASH_TXNS", o.txns);
  return o;
}

CrashSweepOptions SweepFromEnv() {
  CrashSweepOptions o;
  o.max_points = static_cast<uint64_t>(EnvInt("ATOMFS_CRASH_MAX_POINTS", 0));
  return o;
}

void ExpectNoDivergence(const CrashVerdict& verdict) {
  EXPECT_GT(verdict.crash_points, 0u);
  EXPECT_EQ(verdict.divergences, 0u);
  for (const std::string& f : verdict.failures) {
    ADD_FAILURE() << f;
  }
}

TEST(CrashInjection, EveryCrashPointRecoversPrefixConsistent) {
  TempLog log("atomfs_crash_sweep.wal");
  auto mix = BuildCrashMix(log.path(), MixFromEnv(/*seed=*/1));
  ASSERT_TRUE(mix.ok());
  ASSERT_FALSE(mix->commit_log.empty());
  ASSERT_FALSE(mix->wal_bytes.empty());
  const CrashVerdict verdict = VerifyCrashConsistency(mix->wal_bytes, mix->commit_log,
                                                      SweepFromEnv());
  ExpectNoDivergence(verdict);
  // The uncut log must recover the full commit sequence.
  EXPECT_EQ(verdict.max_committed, mix->commit_log.size());
}

TEST(CrashInjection, SweepHoldsAcrossSeeds) {
  for (uint64_t seed = 2; seed <= 4; ++seed) {
    TempLog log("atomfs_crash_seed" + std::to_string(seed) + ".wal");
    CrashMixOptions mopts = MixFromEnv(seed);
    mopts.txns = std::max(1, mopts.txns / 2);
    auto mix = BuildCrashMix(log.path(), mopts);
    ASSERT_TRUE(mix.ok()) << "seed " << seed;
    const CrashVerdict verdict = VerifyCrashConsistency(mix->wal_bytes, mix->commit_log,
                                                        SweepFromEnv());
    ExpectNoDivergence(verdict);
  }
}

TEST(CrashInjection, AbortHeavyMixNeverLeaksAbortedOps) {
  TempLog log("atomfs_crash_aborts.wal");
  CrashMixOptions mopts = MixFromEnv(/*seed=*/7);
  mopts.abort_percent = 80;  // most transactions roll back
  auto mix = BuildCrashMix(log.path(), mopts);
  ASSERT_TRUE(mix.ok());
  const CrashVerdict verdict = VerifyCrashConsistency(mix->wal_bytes, mix->commit_log,
                                                      SweepFromEnv());
  ExpectNoDivergence(verdict);
}

TEST(CrashInjection, RecoverThenContinueJournalingStaysConsistent) {
  // Crash mid-log, recover, keep journaling into the same (truncated) file:
  // the second generation's commits must land after the survived prefix.
  TempLog log("atomfs_crash_reopen.wal");
  CrashMixOptions mopts = MixFromEnv(/*seed=*/5);
  mopts.txns = std::max(1, mopts.txns / 4);
  auto mix = BuildCrashMix(log.path(), mopts);
  ASSERT_TRUE(mix.ok());

  // Cut at a record boundary roughly mid-log and persist the truncation.
  const WalScan scan = ScanWalBytes(mix->wal_bytes);
  ASSERT_GT(scan.records.size(), 2u);
  const uint64_t cut = scan.records[scan.records.size() / 2].end_offset;
  {
    std::ofstream out(log.path(), std::ios::binary | std::ios::trunc);
    out << mix->wal_bytes.substr(0, cut);
  }

  AtomFs recovered;
  auto stats = RecoverWal(log.path(), recovered);
  ASSERT_TRUE(stats.ok());
  ASSERT_LT(stats->committed, mix->commit_log.size() + 1);
  ASSERT_TRUE(
      StructurallyEqual(recovered.SnapshotSpec(), PrefixState(mix->commit_log, stats->committed)));

  // Second generation: journal a few more committed units into the same log.
  {
    TxnManager::Options topt;
    topt.inner = &recovered;
    topt.wal_path = log.path();
    topt.initial = recovered.SnapshotSpec();
    // The cut can strand a begin record in the surviving prefix; ids must
    // continue above it or the dangling bracket swallows the new commits.
    topt.first_txid = stats->max_txid + 1;
    TxnManager txn(topt);
    ASSERT_TRUE(txn.Mkdir(*ParsePath("/gen2")).ok());
    const TxnId id = *txn.Begin();
    ASSERT_TRUE(txn.Apply(id, OpCall::MknodOf(*ParsePath("/gen2/f"))).status.ok());
    ASSERT_TRUE(txn.Commit(id).ok());
  }
  AtomFs final_state;
  auto final_stats = RecoverWal(log.path(), final_state);
  ASSERT_TRUE(final_stats.ok());
  EXPECT_EQ(final_stats->committed, stats->committed + 2);
  EXPECT_TRUE(final_state.Stat("/gen2/f").ok());
  EXPECT_TRUE(StructurallyEqual(final_state.SnapshotSpec(), recovered.SnapshotSpec()));
}

}  // namespace
}  // namespace atomfs
