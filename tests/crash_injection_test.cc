// The durability refinement check (src/txn/crash.h): build a seeded mix of
// committed transactions, aborted transactions, and auto-committed direct
// ops through a real journaling TxnManager, then crash the WAL at every
// record boundary, inside every record (torn write), and with a flipped byte
// per record (bit rot). Every crash point must recover to a state
// structurally equal to a prefix of the golden commit-descriptor sequence —
// zero divergences, incomplete transactions never partially visible.
//
// Environment knobs for smoke runs (tools/crash_smoke.sh):
//   ATOMFS_CRASH_TXNS        transactions in the mix (default 24)
//   ATOMFS_CRASH_MAX_POINTS  cap on crash points per sweep (default 0 = all)

#include "src/txn/crash.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/atom_fs.h"
#include "src/crlh/bundle.h"
#include "src/journal/checkpoint.h"
#include "src/journal/wal.h"
#include "src/vfs/path.h"

namespace atomfs {
namespace {

class TempLog {
 public:
  explicit TempLog(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::remove(path_.c_str());
  }
  ~TempLog() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

CrashMixOptions MixFromEnv(uint64_t seed) {
  CrashMixOptions o;
  o.seed = seed;
  o.txns = EnvInt("ATOMFS_CRASH_TXNS", o.txns);
  return o;
}

CrashSweepOptions SweepFromEnv() {
  CrashSweepOptions o;
  o.max_points = static_cast<uint64_t>(EnvInt("ATOMFS_CRASH_MAX_POINTS", 0));
  return o;
}

void ExpectNoDivergence(const CrashVerdict& verdict) {
  EXPECT_GT(verdict.crash_points, 0u);
  EXPECT_EQ(verdict.divergences, 0u);
  for (const std::string& f : verdict.failures) {
    ADD_FAILURE() << f;
  }
}

TEST(CrashInjection, EveryCrashPointRecoversPrefixConsistent) {
  TempLog log("atomfs_crash_sweep.wal");
  auto mix = BuildCrashMix(log.path(), MixFromEnv(/*seed=*/1));
  ASSERT_TRUE(mix.ok());
  ASSERT_FALSE(mix->commit_log.empty());
  ASSERT_FALSE(mix->wal_bytes.empty());
  const CrashVerdict verdict = VerifyCrashConsistency(mix->wal_bytes, mix->commit_log,
                                                      SweepFromEnv());
  ExpectNoDivergence(verdict);
  // The uncut log must recover the full commit sequence.
  EXPECT_EQ(verdict.max_committed, mix->commit_log.size());
}

TEST(CrashInjection, SweepHoldsAcrossSeeds) {
  for (uint64_t seed = 2; seed <= 4; ++seed) {
    TempLog log("atomfs_crash_seed" + std::to_string(seed) + ".wal");
    CrashMixOptions mopts = MixFromEnv(seed);
    mopts.txns = std::max(1, mopts.txns / 2);
    auto mix = BuildCrashMix(log.path(), mopts);
    ASSERT_TRUE(mix.ok()) << "seed " << seed;
    const CrashVerdict verdict = VerifyCrashConsistency(mix->wal_bytes, mix->commit_log,
                                                        SweepFromEnv());
    ExpectNoDivergence(verdict);
  }
}

TEST(CrashInjection, AbortHeavyMixNeverLeaksAbortedOps) {
  TempLog log("atomfs_crash_aborts.wal");
  CrashMixOptions mopts = MixFromEnv(/*seed=*/7);
  mopts.abort_percent = 80;  // most transactions roll back
  auto mix = BuildCrashMix(log.path(), mopts);
  ASSERT_TRUE(mix.ok());
  const CrashVerdict verdict = VerifyCrashConsistency(mix->wal_bytes, mix->commit_log,
                                                      SweepFromEnv());
  ExpectNoDivergence(verdict);
}

TEST(CrashInjection, RecoverThenContinueJournalingStaysConsistent) {
  // Crash mid-log, recover, keep journaling into the same (truncated) file:
  // the second generation's commits must land after the survived prefix.
  TempLog log("atomfs_crash_reopen.wal");
  CrashMixOptions mopts = MixFromEnv(/*seed=*/5);
  mopts.txns = std::max(1, mopts.txns / 4);
  auto mix = BuildCrashMix(log.path(), mopts);
  ASSERT_TRUE(mix.ok());

  // Cut at a record boundary roughly mid-log and persist the truncation.
  const WalScan scan = ScanWalBytes(mix->wal_bytes);
  ASSERT_GT(scan.records.size(), 2u);
  const uint64_t cut = scan.records[scan.records.size() / 2].end_offset;
  {
    std::ofstream out(log.path(), std::ios::binary | std::ios::trunc);
    out << mix->wal_bytes.substr(0, cut);
  }

  AtomFs recovered;
  auto stats = RecoverWal(log.path(), recovered);
  ASSERT_TRUE(stats.ok());
  ASSERT_LT(stats->committed, mix->commit_log.size() + 1);
  ASSERT_TRUE(
      StructurallyEqual(recovered.SnapshotSpec(), PrefixState(mix->commit_log, stats->committed)));

  // Second generation: journal a few more committed units into the same log.
  {
    TxnManager::Options topt;
    topt.inner = &recovered;
    topt.wal_path = log.path();
    topt.initial = recovered.SnapshotSpec();
    // The cut can strand a begin record in the surviving prefix; ids must
    // continue above it or the dangling bracket swallows the new commits.
    topt.first_txid = stats->max_txid + 1;
    TxnManager txn(topt);
    ASSERT_TRUE(txn.Mkdir(*ParsePath("/gen2")).ok());
    const TxnId id = *txn.Begin();
    ASSERT_TRUE(txn.Apply(id, OpCall::MknodOf(*ParsePath("/gen2/f"))).status.ok());
    ASSERT_TRUE(txn.Commit(id).ok());
  }
  AtomFs final_state;
  auto final_stats = RecoverWal(log.path(), final_state);
  ASSERT_TRUE(final_stats.ok());
  EXPECT_EQ(final_stats->committed, stats->committed + 2);
  EXPECT_TRUE(final_state.Stat("/gen2/f").ok());
  EXPECT_TRUE(StructurallyEqual(final_state.SnapshotSpec(), recovered.SnapshotSpec()));
}

// Crash sweep across a checkpoint boundary: after a checkpoint + rotation,
// cut the LIVE WAL generation at every byte (including inside its kCkpt head
// marker) and recover the full journal. Every cut must yield the checkpoint
// state plus a prefix of the post-checkpoint suffix — the compaction
// machinery must not open any new crash window.
TEST(CrashInjection, CheckpointBoundarySweepIsPrefixConsistent) {
  TempLog log("atomfs_crash_ckpt_sweep.wal");
  std::remove((log.path() + ".prevwal").c_str());
  std::remove((log.path() + ".ckpt").c_str());
  std::remove((log.path() + ".ckpt.prev").c_str());
  std::vector<CommitDescriptor> commit_log;
  uint64_t pre_ckpt_units = 0;
  {
    AtomFs inner;
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = log.path();
    topt.record_commit_log = true;
    TxnManager txn(topt);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(txn.Mkdir(*ParsePath("/pre" + std::to_string(i))).ok());
    }
    pre_ckpt_units = 5;
    ASSERT_TRUE(txn.TakeCheckpoint().ok());
    for (int i = 0; i < 4; ++i) {
      const TxnId id = *txn.Begin();
      ASSERT_TRUE(txn.Apply(id, OpCall::MkdirOf(*ParsePath("/post" + std::to_string(i))))
                      .status.ok());
      ASSERT_TRUE(
          txn.Apply(id, OpCall::MknodOf(*ParsePath("/post" + std::to_string(i) + "/f")))
              .status.ok());
      ASSERT_TRUE(txn.Commit(id).ok());
    }
    commit_log = txn.commit_log();
  }
  ASSERT_EQ(commit_log.size(), pre_ckpt_units + 4);
  std::string live;
  {
    std::ifstream in(log.path(), std::ios::binary);
    live.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(live.empty());
  for (size_t cut = 0; cut <= live.size(); ++cut) {
    {
      std::ofstream out(log.path(), std::ios::binary | std::ios::trunc);
      out << live.substr(0, cut);
    }
    AtomFs recovered;
    auto stats = RecoverJournal(log.path(), recovered);
    ASSERT_TRUE(stats.ok()) << "cut at " << cut;
    ASSERT_GE(stats->committed_units, pre_ckpt_units) << "cut at " << cut;
    ASSERT_LE(stats->committed_units, commit_log.size()) << "cut at " << cut;
    EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(),
                                  PrefixState(commit_log, stats->committed_units)))
        << "cut at " << cut << " recovered " << stats->committed_units;
  }
}

// A divergence must come out as a replayable post-mortem bundle: doctor the
// golden oracle so recovery genuinely mismatches it, then check the sweep
// emits a bundle that ReplayBundle reproduces offline — the same artifact
// pipeline monitor violations use (atomfs_verify --bundle).
TEST(CrashInjection, InjectedDivergenceProducesReplayableBundle) {
  TempLog log("atomfs_crash_bundle.wal");
  CrashMixOptions mopts = MixFromEnv(/*seed=*/11);
  mopts.txns = std::max(1, mopts.txns / 4);
  auto mix = BuildCrashMix(log.path(), mopts);
  ASSERT_TRUE(mix.ok());
  ASSERT_FALSE(mix->commit_log.empty());
  // Lie about the last committed unit (nothing later depends on it, so the
  // oracle still replays cleanly): the oracle now expects a directory the
  // journal never created, so every crash point whose prefix includes that
  // unit diverges.
  std::vector<CommitDescriptor> doctored = mix->commit_log;
  doctored.back().ops = {OpCall::MkdirOf(*ParsePath("/never_journaled"))};
  CrashSweepOptions sweep = SweepFromEnv();
  sweep.bundle_on_divergence = true;
  const CrashVerdict verdict = VerifyCrashConsistency(mix->wal_bytes, doctored, sweep);
  EXPECT_GT(verdict.divergences, 0u);
  ASSERT_FALSE(verdict.bundles.empty());

  std::istringstream in(verdict.bundles.front());
  auto bundle = ParseBundle(in);
  ASSERT_TRUE(bundle.ok());
  ASSERT_FALSE(bundle->history.empty());
  const BundleReplay replay = ReplayBundle(*bundle);
  EXPECT_TRUE(replay.reproduced) << replay.verdict;
  // The sane oracle, for contrast, produces no divergences and no bundles.
  const CrashVerdict clean = VerifyCrashConsistency(mix->wal_bytes, mix->commit_log, sweep);
  EXPECT_EQ(clean.divergences, 0u);
  EXPECT_TRUE(clean.bundles.empty());
}

}  // namespace
}  // namespace atomfs
