// Tests for the atomtrace observability layer (src/obs): exact registry
// totals under concurrent hammering, shared-bucket percentile agreement with
// LatencyHistogram, trace-ring wraparound and publication, the
// TracingObserver's lock-coupling bookkeeping on a live AtomFS, the METRICS
// wire round-trip over both socket families, and docs-drift checks that
// fail whenever an opcode exists in src/net but not in
// docs/WIRE_PROTOCOL.md (or vice versa), or when docs/CONCURRENCY.md's
// rcu-walk vocabulary diverges from the source constants.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/core/atom_fs.h"
#include "src/crlh/monitor.h"
#include "src/net/wire.h"
#include "src/obs/export.h"
#include "src/obs/sink.h"
#include "src/obs/trace.h"
#include "src/obs/tracer.h"
#include "src/server/server.h"
#include "src/util/stats.h"
#include "src/util/status_table.h"

namespace atomfs {
namespace {

// --- registry ----------------------------------------------------------------

TEST(MetricsRegistryTest, CounterTotalsAreExactUnderConcurrency) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr uint64_t kIncsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter c = reg.GetCounter("test.hits");  // registration is idempotent
      for (uint64_t i = 0; i < kIncsPerThread; ++i) {
        c.Inc();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.Snapshot().CounterValue("test.hits"), kThreads * kIncsPerThread);
}

TEST(MetricsRegistryTest, HistogramCountSumAndBucketsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr uint64_t kRecordsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      Histogram h = reg.GetHistogram("test.lat");
      for (uint64_t i = 0; i < kRecordsPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + i % 7);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* h = snap.FindHistogram("test.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kRecordsPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, h->count);
}

TEST(MetricsRegistryTest, GaugeGoesUpAndDown) {
  MetricsRegistry reg;
  Gauge g = reg.GetGauge("test.queue");
  g.Add(5);
  g.Sub(2);
  const MetricsSnapshot snap = reg.Snapshot();
  const GaugeSnapshot* s = snap.FindGauge("test.queue");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 3);
}

TEST(MetricsRegistryTest, HandlesWithTheSameNameShareStorage) {
  MetricsRegistry reg;
  Counter a = reg.GetCounter("shared");
  Counter b = reg.GetCounter("shared");
  a.Inc(2);
  b.Inc(3);
  EXPECT_EQ(reg.Snapshot().CounterValue("shared"), 5u);
}

TEST(MetricsRegistryTest, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.Inc();
  g.Add(1);
  h.Record(1);  // must not crash
}

// The shared-bucket contract of satellite (d): any value stream produces
// identical percentiles from LatencyHistogram (bench-side) and the registry
// histogram (server-side), because both ride LatencyBucketsPercentile.
TEST(MetricsRegistryTest, PercentilesAgreeWithLatencyHistogram) {
  MetricsRegistry reg;
  Histogram obs_hist = reg.GetHistogram("agree");
  LatencyHistogram bench_hist;
  uint64_t v = 1;
  for (int i = 0; i < 5000; ++i) {
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG
    const uint64_t nanos = v % 10'000'000;
    obs_hist.Record(nanos);
    bench_hist.Add(nanos);
  }
  // The snapshot must be bound to a local: FindHistogram returns a pointer
  // into the snapshot, and calling it on the Snapshot() temporary dangled
  // (TSan heap-use-after-free). The rvalue overload is deleted now, so this
  // mistake no longer compiles.
  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* h = snap.FindHistogram("agree");
  ASSERT_NE(h, nullptr);
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(h->Percentile(p), bench_hist.PercentileNanos(p)) << "p=" << p;
  }
}

TEST(MetricsRegistryTest, ToTextDumpIsParseable) {
  MetricsRegistry reg;
  reg.GetCounter("c.one").Inc(7);
  reg.GetGauge("g.one").Add(-2);
  reg.GetHistogram("h.one").Record(100);
  const std::string text = reg.Snapshot().ToText();
  EXPECT_NE(text.find("# atomtrace metrics"), std::string::npos);
  EXPECT_NE(text.find("counter c.one 7"), std::string::npos);
  EXPECT_NE(text.find("gauge g.one -2"), std::string::npos);
  EXPECT_NE(text.find("hist h.one count=1"), std::string::npos);
}

// --- trace ring --------------------------------------------------------------

TEST(TraceRingTest, RetainsTheNewestEventsAcrossWraparound) {
  TraceRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    TraceEvent e;
    e.type = TraceEventType::kOpBegin;
    e.ino = i;  // payload we can assert on
    ring.Append(e);
  }
  EXPECT_EQ(ring.total_appended(), 20u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);  // oldest retained first
    EXPECT_EQ(events[i].ino, 12 + i);
  }
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(TraceRingTest, ConcurrentAppendsAreExactAtQuiescence) {
  TraceRing ring(1 << 12);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        TraceEvent e;
        e.type = TraceEventType::kLp;
        ring.Append(e);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ring.total_appended(), kThreads * kPerThread);
  // When appends race across a wrap, the slower writer of an overwritten
  // slot may publish last, leaving a stale seq the snapshot rightly skips —
  // so concurrency guarantees "no torn events", not "ring exactly full".
  const std::vector<TraceEvent> events = ring.Snapshot();
  EXPECT_GT(events.size(), 0u);
  EXPECT_LE(events.size(), ring.capacity());
  const uint64_t oldest = ring.total_appended() - ring.capacity();
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].seq, oldest);
    EXPECT_LT(events[i].seq, ring.total_appended());
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
}

// --- TracingObserver on a live AtomFS ---------------------------------------

TEST(TracingObserverTest, ProfilesLockCouplingOnAtomFs) {
  MetricsRegistry reg;
  TraceRing ring(1 << 10);
  TracingObserver tracer(&reg, &ring);
  AtomFs::Options o;
  o.observer = &tracer;
  AtomFs fs(std::move(o));

  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/a/b").ok());
  ASSERT_TRUE(fs.Mknod("/a/b/f").ok());
  ASSERT_TRUE(fs.Stat("/a/b/f").ok());
  ASSERT_FALSE(fs.Mkdir("/a").ok());  // kExist -> error counter

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("fs.ops"), 5u);
  EXPECT_EQ(snap.CounterValue("fs.op.mkdir.errors"), 1u);
  // Every hand-over-hand acquire has a matching release once quiesced.
  const uint64_t acquires = snap.CounterValue("lock.acquires");
  EXPECT_GT(acquires, 0u);
  EXPECT_EQ(acquires, snap.CounterValue("lock.releases"));
  // Depth-1 (the root) was locked by every op.
  const HistogramSnapshot* d1 = snap.FindHistogram("lock.depth01.hold_ns");
  ASSERT_NE(d1, nullptr);
  EXPECT_GT(d1->count, 0u);
  // /a/b/f ops couple three levels deep.
  const HistogramSnapshot* d3 = snap.FindHistogram("lock.depth03.hold_ns");
  ASSERT_NE(d3, nullptr);
  EXPECT_GT(d3->count, 0u);
  const HistogramSnapshot* mkdir_lat = snap.FindHistogram("fs.op.mkdir.latency_ns");
  ASSERT_NE(mkdir_lat, nullptr);
  EXPECT_EQ(mkdir_lat->count, 3u);

  // The ring saw the same story: begin/end pairs and lock transitions.
  uint64_t begins = 0;
  uint64_t ends = 0;
  uint64_t lock_events = 0;
  for (const TraceEvent& e : ring.Snapshot()) {
    begins += e.type == TraceEventType::kOpBegin;
    ends += e.type == TraceEventType::kOpEnd;
    lock_events +=
        e.type == TraceEventType::kLockAcquired || e.type == TraceEventType::kLockReleased;
  }
  EXPECT_EQ(begins, 5u);
  EXPECT_EQ(ends, 5u);
  EXPECT_EQ(lock_events, 2 * acquires);
}

TEST(TracingObserverTest, CountsHelperActivityViaMonitorSink) {
  MetricsRegistry reg;
  TracingObserver tracer(&reg, nullptr);
  CrlhMonitor::Options mopts;
  mopts.obs = &tracer;
  CrlhMonitor monitor(mopts);
  TeeObserver tee(&monitor, &tracer);
  AtomFs::Options o;
  o.observer = &tee;
  AtomFs fs(std::move(o));

  // Concurrent renames + lookups: some lookups get helped (linothers). We
  // only assert the plumbing stays consistent — helping is scheduling-luck.
  ASSERT_TRUE(fs.Mkdir("/d1").ok());
  ASSERT_TRUE(fs.Mkdir("/d2").ok());
  ASSERT_TRUE(fs.Mknod("/d1/f").ok());
  std::thread mover([&fs] {
    for (int i = 0; i < 200; ++i) {
      fs.Rename("/d1/f", "/d2/f");
      fs.Rename("/d2/f", "/d1/f");
    }
  });
  std::thread reader([&fs] {
    for (int i = 0; i < 400; ++i) {
      fs.Stat("/d1/f");
      fs.Stat("/d2/f");
    }
  });
  mover.join();
  reader.join();

  EXPECT_TRUE(monitor.ok());
  const MetricsSnapshot snap = reg.Snapshot();
  // The tracer's helped_ops counter mirrors the monitor's own tally, and the
  // Helplist gauge must return to empty at quiescence.
  EXPECT_EQ(snap.CounterValue("crlh.helped_ops"), monitor.helped_ops());
  EXPECT_EQ(snap.CounterValue("crlh.help_events"), monitor.help_events());
  const GaugeSnapshot* g = snap.FindGauge("crlh.helplist_len");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 0);
}

// --- export surfaces: Perfetto JSON and Prometheus text ----------------------

// Tiny structural JSON validator: braces/brackets balance outside strings,
// string escapes honored. Not a parser — enough to catch truncation and
// unescaped quotes in the exporter's output.
bool JsonBalanced(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false;
  bool esc = false;
  for (char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_str = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') {
          return false;
        }
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') {
          return false;
        }
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_str && stack.empty();
}

TEST(ExportTest, PrometheusTextExposesCountersGaugesAndCumulativeBuckets) {
  MetricsRegistry reg;
  reg.GetCounter("fs.ops").Inc(7);
  reg.GetGauge("crlh.helplist_len").Add(3);
  Histogram h = reg.GetHistogram("fs.op.mkdir.latency_ns");
  h.Record(1);
  h.Record(700);        // bucket bound 1024
  h.Record(1u << 20);   // bucket bound 2^20
  const std::string text = PrometheusText(reg.Snapshot());

  // Names are sanitized ('.' -> '_') and namespaced under atomfs_.
  EXPECT_NE(text.find("# TYPE atomfs_fs_ops counter\natomfs_fs_ops 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE atomfs_crlh_helplist_len gauge\natomfs_crlh_helplist_len 3\n"),
            std::string::npos);
  // Histogram buckets are cumulative over the registry's power-of-two bounds.
  EXPECT_NE(text.find("# TYPE atomfs_fs_op_mkdir_latency_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("atomfs_fs_op_mkdir_latency_ns_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("atomfs_fs_op_mkdir_latency_ns_bucket{le=\"1024\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("atomfs_fs_op_mkdir_latency_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("atomfs_fs_op_mkdir_latency_ns_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("atomfs_fs_op_mkdir_latency_ns_sum"), std::string::npos);
}

// A forced helping schedule (the monitor_test HelperLifecycleByHand shape,
// driven through a TeeObserver exactly as atomfsd wires it): thread 1's
// rename reaches its LP while thread 2's mkdir is pending under the rename
// source, so thread 1 linearizes thread 2 (linothers). The Perfetto export
// must carry the help edge as a flow-event pair (ph "s" on the helper's
// track, ph "f" binding to the helped thread) plus the helped LP instant.
TEST(ExportTest, ForcedHelpSchedulePutsFlowArrowsInThePerfettoExport) {
  MetricsRegistry reg;
  TraceRing ring(1 << 10);
  TracingObserver tracer(&reg, &ring);
  CrlhMonitor::Options mopts;
  mopts.obs = &tracer;
  CrlhMonitor monitor(mopts);
  TeeObserver tee(&monitor, &tracer);

  // Ghost setup: /a exists with inum 5.
  tee.OnOpBegin(3, OpCall::MkdirOf(*ParsePath("/a")));
  tee.OnLockAcquired(3, kRootInum, LockPathRole::kSingle);
  tee.OnLp(3, 5);
  tee.OnLockReleased(3, kRootInum);
  tee.OnOpEnd(3, OpResult{});

  // Thread 2: mkdir(/a/b) in flight, holding (root, a).
  tee.OnOpBegin(2, OpCall::MkdirOf(*ParsePath("/a/b")));
  tee.OnLockAcquired(2, kRootInum, LockPathRole::kSingle);
  tee.OnLockAcquired(2, 5, LockPathRole::kSingle);
  tee.OnLockReleased(2, kRootInum);

  // Thread 1: rename(/a, /c) reaches its LP and must help thread 2.
  tee.OnOpBegin(1, OpCall::RenameOf(*ParsePath("/a"), *ParsePath("/c")));
  tee.OnLockAcquired(1, kRootInum, LockPathRole::kRenameCommon);
  tee.OnLockAcquired(1, 5, LockPathRole::kRenameSrc);
  tee.OnLp(1, kInvalidInum);
  ASSERT_EQ(monitor.helped_ops(), 1u);
  tee.OnLockReleased(1, 5);
  tee.OnLockReleased(1, kRootInum);
  tee.OnOpEnd(1, OpResult{});

  // Thread 2 finishes: its own LP is a no-op (already linearized by helper).
  tee.OnLp(2, 9);
  tee.OnLockReleased(2, 5);
  tee.OnOpEnd(2, OpResult{});
  ASSERT_TRUE(monitor.ok()) << monitor.violations()[0];

  const std::string json = ExportChromeTrace(ring.Snapshot());
  ASSERT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Op spans for all three threads.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  // The help edge: instant with metadata + a flow arrow pair.
  EXPECT_NE(json.find("\"name\":\"help\""), std::string::npos);
  EXPECT_NE(json.find("\"target_tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"src_prefix\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // The helped thread's own LP arrives as helped_LP, and the linothers run
  // event carries the help-set size.
  EXPECT_NE(json.find("\"name\":\"helped_LP\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"linothers\""), std::string::npos);
  // Invariant outcomes ride along on their own category.
  EXPECT_NE(json.find("\"cat\":\"invariant\""), std::string::npos);
  EXPECT_NE(json.find("\"passed\":true"), std::string::npos);
}

TEST(ExportTest, TruncationDropsOldestEventsUntilTheBudgetFits) {
  std::vector<TraceEvent> events;
  for (uint64_t i = 0; i < 512; ++i) {
    TraceEvent e;
    e.seq = i;
    e.tid = 1;
    e.type = TraceEventType::kLp;
    e.ino = i;
    events.push_back(e);
  }
  const std::string full = ExportChromeTrace(events);
  const std::string capped = ExportChromeTrace(events, full.size() / 4);
  EXPECT_LE(capped.size(), full.size() / 4);
  ASSERT_TRUE(JsonBalanced(capped));
  // The newest event survives truncation; the oldest does not.
  EXPECT_NE(capped.find("\"ino\":511"), std::string::npos);
  EXPECT_EQ(capped.find("\"ino\":0,"), std::string::npos);
}

// --- METRICS over the wire ---------------------------------------------------

TEST(MetricsWireTest, SnapshotRoundTripsExactly) {
  MetricsRegistry reg;
  reg.GetCounter("a.count").Inc(42);
  reg.GetGauge("b.gauge").Add(-17);
  Histogram h = reg.GetHistogram("c.hist");
  for (uint64_t v : {1u, 100u, 10000u, 1000000u}) {
    h.Record(v);
  }
  const MetricsSnapshot snap = reg.Snapshot();

  WireWriter w;
  EncodeMetricsSnapshot(w, snap);
  WireReader r(std::span<const std::byte>(w.buf().data(), w.buf().size()));
  MetricsSnapshot parsed;
  ASSERT_TRUE(ParseMetricsSnapshot(r, &parsed));
  ASSERT_TRUE(r.AtEnd());

  ASSERT_EQ(parsed.counters.size(), snap.counters.size());
  EXPECT_EQ(parsed.CounterValue("a.count"), 42u);
  const GaugeSnapshot* g = parsed.FindGauge("b.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, -17);
  const HistogramSnapshot* hs = parsed.FindHistogram("c.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 4u);
  EXPECT_EQ(hs->buckets, snap.FindHistogram("c.hist")->buckets);
  // Identical buckets => identical percentiles: the client can never report
  // a p99 the server disagrees with.
  EXPECT_EQ(hs->Percentile(0.99), snap.FindHistogram("c.hist")->Percentile(0.99));
}

// Drives a served AtomFS and fetches METRICS, TRACE, and PROM over a real
// socket — the three admin surfaces sharing the observability spine.
void ExerciseMetricsOver(const std::string& transport) {
  MetricsRegistry reg;
  TraceRing ring(1 << 10);
  TracingObserver tracer(&reg, &ring);
  AtomFs::Options fo;
  fo.observer = &tracer;
  AtomFs fs(std::move(fo));

  ServerOptions options;
  options.workers = 2;
  options.metrics = &reg;
  options.trace_ring = &ring;
  std::string sock_path;
  if (transport == "tcp") {
    options.tcp_listen = true;
  } else {
    sock_path = "/tmp/atomfs_obs_test_" + std::to_string(getpid()) + ".sock";
    options.unix_path = sock_path;
  }
  AtomFsServer server(&fs, options);
  ASSERT_TRUE(server.Start().ok());

  auto client_or = transport == "tcp" ? AtomFsClient::ConnectTcp(server.BoundTcpPort())
                                      : AtomFsClient::ConnectUnix(sock_path);
  ASSERT_TRUE(client_or.ok());
  AtomFsClient& client = **client_or;

  ASSERT_TRUE(client.Mkdir("/dir").ok());
  ASSERT_TRUE(client.Mknod("/dir/file").ok());
  ASSERT_TRUE(client.Stat("/dir/file").ok());

  auto snap_or = client.FetchMetrics();
  ASSERT_TRUE(snap_or.ok());
  const MetricsSnapshot& snap = *snap_or;
  // Server-side wire-op latency and the backend's tracer both crossed.
  const HistogramSnapshot* mkdir_srv = snap.FindHistogram("server.op.mkdir.latency_ns");
  ASSERT_NE(mkdir_srv, nullptr);
  EXPECT_EQ(mkdir_srv->count, 1u);
  EXPECT_EQ(snap.CounterValue("fs.ops"), 3u);
  EXPECT_GT(snap.CounterValue("lock.acquires"), 0u);

  // Consistency across reporting paths: the percentile the client computes
  // from the fetched buckets equals the one the server's stats report.
  const WireServerStats stats = server.StatsSnapshot();
  bool found = false;
  for (const WireOpStats& s : stats.ops) {
    if (static_cast<WireOp>(s.op) == WireOp::kMkdir) {
      EXPECT_EQ(s.p99_ns, mkdir_srv->Percentile(0.99));
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // TRACE: the flight-recorder ring rendered as Chrome trace-event JSON,
  // carrying the spans the client's own ops just wrote into it.
  auto trace_or = client.FetchTraceJson();
  ASSERT_TRUE(trace_or.ok());
  EXPECT_TRUE(JsonBalanced(*trace_or));
  EXPECT_NE(trace_or->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_or->find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(trace_or->find("\"name\":\"mkdir\""), std::string::npos);

  // PROM: the same registry the METRICS snapshot serves, in text exposition.
  auto prom_or = client.FetchPrometheus();
  ASSERT_TRUE(prom_or.ok());
  EXPECT_NE(prom_or->find("# TYPE atomfs_fs_ops counter\natomfs_fs_ops 3\n"),
            std::string::npos);
  EXPECT_NE(prom_or->find("atomfs_server_op_mkdir_latency_ns_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  server.Stop();
}

// A server with no ring attached must still answer TRACE with a valid,
// empty trace document (the option is nullable by contract).
TEST(MetricsWireTest, TraceDumpWithoutRingAnswersEmptyDocument) {
  AtomFs fs;
  ServerOptions options;
  options.workers = 1;
  const std::string sock_path =
      "/tmp/atomfs_obs_noring_" + std::to_string(getpid()) + ".sock";
  options.unix_path = sock_path;
  AtomFsServer server(&fs, options);
  ASSERT_TRUE(server.Start().ok());
  auto client_or = AtomFsClient::ConnectUnix(sock_path);
  ASSERT_TRUE(client_or.ok());
  auto trace_or = (*client_or)->FetchTraceJson();
  ASSERT_TRUE(trace_or.ok());
  EXPECT_TRUE(JsonBalanced(*trace_or));
  EXPECT_NE(trace_or->find("\"traceEvents\":[]"), std::string::npos);
  server.Stop();
}

TEST(MetricsWireTest, FetchMetricsOverUnixSocket) { ExerciseMetricsOver("unix"); }

TEST(MetricsWireTest, FetchMetricsOverTcpSocket) { ExerciseMetricsOver("tcp"); }

// --- docs drift --------------------------------------------------------------

// docs/WIRE_PROTOCOL.md is normative: every opcode in src/net/wire.h must
// have a table row "| <num> | `<name>` |...", and the doc must not describe
// opcodes that do not exist. Adding WireOp 25 without documenting it fails
// here, as does documenting a 25 that was never added.
TEST(DocsDriftTest, WireProtocolDocCoversExactlyTheImplementedOpcodes) {
  const std::string path = std::string(ATOMFS_SOURCE_DIR) + "/docs/WIRE_PROTOCOL.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  for (uint8_t raw = kWireOpMin; raw <= kWireOpMax; ++raw) {
    const WireOp op = static_cast<WireOp>(raw);
    const std::string row =
        "| " + std::to_string(raw) + " | `" + std::string(WireOpName(op)) + "`";
    EXPECT_NE(doc.find(row), std::string::npos)
        << "opcode " << int(raw) << " (" << WireOpName(op) << ") has no row \"" << row
        << "\" in docs/WIRE_PROTOCOL.md";
  }
  const std::string beyond = "| " + std::to_string(kWireOpMax + 1) + " | `";
  EXPECT_EQ(doc.find(beyond), std::string::npos)
      << "docs/WIRE_PROTOCOL.md documents opcode " << int(kWireOpMax) + 1
      << " which src/net/wire.h does not define";
  // The status table is normative too; spot-check the anchor rows exist.
  EXPECT_NE(doc.find("`METRICS`"), std::string::npos);
}

// The handshake and the pipelining error codes are protocol surface: the
// doc must carry the negotiated version constant, the `hello` body layout,
// and status rows matching the wire bytes the implementation emits.
TEST(DocsDriftTest, WireProtocolDocCoversHandshakeAndPipelineStatuses) {
  const std::string path = std::string(ATOMFS_SOURCE_DIR) + "/docs/WIRE_PROTOCOL.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  EXPECT_NE(doc.find("protocol version is **" + std::to_string(kWireProtoVersion) + "**"),
            std::string::npos)
      << "doc does not state kWireProtoVersion = " << kWireProtoVersion;
  EXPECT_NE(doc.find("`hello` handshake"), std::string::npos);
  EXPECT_NE(doc.find("u32 version | u32 desired_max_inflight"), std::string::npos);

  const std::string timedout_row =
      "| " + std::to_string(WireStatusOf(Errc::kTimedOut)) + " | `TIMEDOUT`";
  const std::string backpressure_row =
      "| " + std::to_string(WireStatusOf(Errc::kBackpressure)) + " | `BACKPRESSURE`";
  EXPECT_NE(doc.find(timedout_row), std::string::npos) << "missing row: " << timedout_row;
  EXPECT_NE(doc.find(backpressure_row), std::string::npos)
      << "missing row: " << backpressure_row;

  const std::string batch_cap = std::to_string(kWireMaxBatchRequests);
  EXPECT_NE(doc.find("| max `msgbatch` packed requests | " + batch_cap), std::string::npos)
      << "msgbatch cap row out of date";
}

// The transaction surface (opcodes 29-31, status TXCONFLICT) is protocol
// surface too: the doc must carry the conflict status row matching the wire
// byte the txn layer emits, and the transaction-semantics section.
TEST(DocsDriftTest, WireProtocolDocCoversTransactionSurface) {
  const std::string path = std::string(ATOMFS_SOURCE_DIR) + "/docs/WIRE_PROTOCOL.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  const std::string conflict_row =
      "| " + std::to_string(WireStatusOf(Errc::kTxConflict)) + " | `TXCONFLICT`";
  EXPECT_NE(doc.find(conflict_row), std::string::npos) << "missing row: " << conflict_row;
  EXPECT_NE(doc.find("## 4a. Transactions"), std::string::npos)
      << "doc lost the transaction-semantics section";
  // The three tx ops must document the txid-carrying bodies exactly.
  EXPECT_NE(doc.find("| 29 | `txbegin` | — | `u64 txid` |"), std::string::npos);
  EXPECT_NE(doc.find("| 30 | `txcommit` | `u64 txid` | — |"), std::string::npos);
  EXPECT_NE(doc.find("| 31 | `txabort` | `u64 txid` | — |"), std::string::npos);
}

// src/util/status_table.h is the single normative Errc <-> wire-status
// table; the doc's status table is generated prose over the same rows. Every
// X-macro row must appear as "| <byte> | `<NAME>`" (and the in-process
// mapping must agree), so declaring a new status — ESHARDMOVED being the
// newest — in the table but not the doc (or vice versa) fails here.
TEST(DocsDriftTest, WireProtocolStatusTableMatchesTheXMacroTable) {
  const std::string path = std::string(ATOMFS_SOURCE_DIR) + "/docs/WIRE_PROTOCOL.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

#define ATOMFS_CHECK_STATUS_ROW(errc, wire, errc_name, wire_name)                    \
  {                                                                                  \
    const std::string row = "| " + std::to_string(wire) + " | `" + wire_name + "`";  \
    EXPECT_NE(doc.find(row), std::string::npos)                                      \
        << "docs/WIRE_PROTOCOL.md has no status row \"" << row << "\"";              \
    EXPECT_EQ(WireStatusOf(Errc::errc), wire);                                      \
    EXPECT_EQ(ErrcOfWireStatus(wire), Errc::errc);                                  \
    EXPECT_EQ(ErrcName(Errc::errc), std::string_view(errc_name));                   \
  }
  ATOMFS_WIRE_STATUS_TABLE(ATOMFS_CHECK_STATUS_ROW)
#undef ATOMFS_CHECK_STATUS_ROW
}

// The HELLO capability bitmask (protocol v3) is surface too: the doc's bit
// table must carry exactly the bits src/vfs/filesystem.h defines.
TEST(DocsDriftTest, WireProtocolDocCoversHelloCapabilityBits) {
  const std::string path = std::string(ATOMFS_SOURCE_DIR) + "/docs/WIRE_PROTOCOL.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  static_assert(kFsCapTxn == 1u << 0);
  static_assert(kFsCapRcuWalk == 1u << 1);
  static_assert(kFsCapSharding == 1u << 2);
  EXPECT_NE(doc.find("| 1 << 0 | `txn` |"), std::string::npos);
  EXPECT_NE(doc.find("| 1 << 1 | `rcu_walk` |"), std::string::npos);
  EXPECT_NE(doc.find("| 1 << 2 | `sharding` |"), std::string::npos);
  EXPECT_NE(doc.find("u32 granted_max_inflight | u32 caps"), std::string::npos)
      << "doc lost the v3 hello response shape";
}

// The sharded-namespace observability surface: every counter the shard
// router emits must have a row in docs/OBSERVABILITY.md, and the crossshard
// help-reason flag must be documented next to the other two.
TEST(DocsDriftTest, ObservabilityDocCoversTheShardRouterMetrics) {
  const std::string path = std::string(ATOMFS_SOURCE_DIR) + "/docs/OBSERVABILITY.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  for (const char* metric :
       {"`shard.ops.s<i>`", "`shard.migrations`", "`shard.migrations_completed`",
        "`shard.migrations_aborted`", "`shard.cross_help_edges`", "`shard.stale_retries`"}) {
    EXPECT_NE(doc.find(metric), std::string::npos) << "missing metric row: " << metric;
  }
  EXPECT_NE(doc.find("(`crossshard`)"), std::string::npos)
      << "crossshard help-reason flag undocumented";
}

// docs/CONCURRENCY.md is the normative locking/validation protocol. The names
// it uses for the rcu-walk verification surface — the invariant, the ghost
// events, the four counters, the retry default, the accounting identity, and
// the memory-order table's atomics — must match the source constants. Renaming
// any of them without updating the doc fails here.
TEST(DocsDriftTest, ConcurrencyDocMatchesRcuWalkConstantsAndAtomics) {
  const std::string path = std::string(ATOMFS_SOURCE_DIR) + "/docs/CONCURRENCY.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  // The invariant the monitor checks at an optimistic op's LP.
  const std::string inv =
      "Invariant `" + std::string(InvariantKindName(InvariantKind::kOptValidation)) + "`";
  EXPECT_NE(doc.find(inv), std::string::npos) << "missing anchor: " << inv;

  // The three ghost events, by their wire/trace names.
  for (TraceEventType t : {TraceEventType::kOptWalkStart, TraceEventType::kOptWalkValidate,
                           TraceEventType::kOptWalkFallback}) {
    const std::string name = "`" + std::string(TraceEventTypeName(t)) + "`";
    EXPECT_NE(doc.find(name), std::string::npos) << "missing ghost event: " << name;
  }

  // The four counters and the accounting identity the race-stress test
  // asserts exactly.
  for (const char* counter :
       {"`core.rcuwalk.attempts`", "`core.rcuwalk.validation_failures`",
        "`core.rcuwalk.fallbacks`", "`core.rcuwalk.unvalidated_reads`"}) {
    EXPECT_NE(doc.find(counter), std::string::npos) << "missing counter: " << counter;
  }
  EXPECT_NE(doc.find("`attempts - validation_failures + fallbacks`"), std::string::npos)
      << "doc lost the fallback accounting identity";

  // The retry budget must state the compiled-in default.
  const AtomFs::Options defaults;
  const std::string retries = "`1 + rcu_walk_max_retries` attempts (default retries: " +
                              std::to_string(defaults.rcu_walk_max_retries) + ")";
  EXPECT_NE(doc.find(retries), std::string::npos) << "missing anchor: " << retries;

  // Every atomic in the walk must have memory-order table rows.
  for (const char* atomic_name :
       {"| `Inode::version` |", "| bucket head `buckets_[i]` |", "| `Entry::next` |",
        "| `Entry::pub` |"}) {
    EXPECT_NE(doc.find(atomic_name), std::string::npos)
        << "memory-order table lost rows for " << atomic_name;
  }
  // Spot-check the two orders the protocol's correctness hinges on.
  EXPECT_NE(doc.find("store even (`VersionBumpClose`, under lock) | `release`"),
            std::string::npos)
      << "close-bump release row out of date";
  EXPECT_NE(doc.find("record + revalidate loads (`OptimisticAttempt`) | `acquire`"),
            std::string::npos)
      << "reader acquire row out of date";
}

}  // namespace
}  // namespace atomfs
