// Tests for the offline linearizability checkers (src/crlh/lin_check.h):
// hand-built histories with known verdicts, including the paper's Figure 1
// history in its legal and illegal forms.

#include "src/crlh/lin_check.h"

#include <gtest/gtest.h>

namespace atomfs {
namespace {

HistoryOp Op(Tid tid, OpCall call, Errc code, uint64_t invoke, uint64_t response) {
  HistoryOp op;
  op.tid = tid;
  op.call = std::move(call);
  op.result.status = Status(code);
  op.invoke_seq = invoke;
  op.response_seq = response;
  return op;
}

TEST(LinCheck, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(CheckLinearizable({}).linearizable);
}

TEST(LinCheck, SequentialLegalHistory) {
  std::vector<HistoryOp> ops;
  ops.push_back(Op(1, OpCall::MkdirOf(*ParsePath("/a")), Errc::kOk, 1, 2));
  ops.push_back(Op(1, OpCall::MkdirOf(*ParsePath("/a/b")), Errc::kOk, 3, 4));
  ops.push_back(Op(1, OpCall::RmdirOf(*ParsePath("/a")), Errc::kNotEmpty, 5, 6));
  auto res = CheckLinearizable(ops);
  EXPECT_TRUE(res.linearizable);
  ASSERT_EQ(res.witness.size(), 3u);
}

TEST(LinCheck, SequentialIllegalHistory) {
  // mkdir /a/b succeeded before /a existed: no legal order.
  std::vector<HistoryOp> ops;
  ops.push_back(Op(1, OpCall::MkdirOf(*ParsePath("/a/b")), Errc::kOk, 1, 2));
  ops.push_back(Op(1, OpCall::MkdirOf(*ParsePath("/a")), Errc::kOk, 3, 4));
  EXPECT_FALSE(CheckLinearizable(ops).linearizable);
}

TEST(LinCheck, ConcurrentOpsMayReorder) {
  // mkdir /a/b responds before mkdir /a *but they overlap*: reordering is
  // allowed, so the history is linearizable.
  std::vector<HistoryOp> ops;
  ops.push_back(Op(1, OpCall::MkdirOf(*ParsePath("/a/b")), Errc::kOk, 1, 3));
  ops.push_back(Op(2, OpCall::MkdirOf(*ParsePath("/a")), Errc::kOk, 2, 4));
  auto res = CheckLinearizable(ops);
  ASSERT_TRUE(res.linearizable);
  // The witness must put /a first.
  EXPECT_EQ(res.witness[0], 1u);
}

TEST(LinCheck, RealTimeOrderIsRespected) {
  // Same two ops but strictly ordered: NOT linearizable.
  std::vector<HistoryOp> ops;
  ops.push_back(Op(1, OpCall::MkdirOf(*ParsePath("/a/b")), Errc::kOk, 1, 2));
  ops.push_back(Op(2, OpCall::MkdirOf(*ParsePath("/a")), Errc::kOk, 3, 4));
  EXPECT_FALSE(CheckLinearizable(ops).linearizable);
}

TEST(LinCheck, Figure1History) {
  // rename(/a,/e) and mkdir(/a/b/c) overlap; both succeed. Legal only if
  // mkdir linearizes first.
  std::vector<HistoryOp> setup;
  setup.push_back(Op(0, OpCall::MkdirOf(*ParsePath("/a")), Errc::kOk, 1, 2));
  setup.push_back(Op(0, OpCall::MkdirOf(*ParsePath("/a/b")), Errc::kOk, 3, 4));
  std::vector<HistoryOp> ops = setup;
  ops.push_back(Op(1, OpCall::MkdirOf(*ParsePath("/a/b/c")), Errc::kOk, 5, 8));
  ops.push_back(
      Op(2, OpCall::RenameOf(*ParsePath("/a"), *ParsePath("/e")), Errc::kOk, 6, 7));
  auto res = CheckLinearizable(ops);
  ASSERT_TRUE(res.linearizable);

  // The fixed-LP order (rename first) must fail the replay.
  std::vector<size_t> fixed = {0, 1, 3, 2};
  auto mismatch = ReplayOrder(ops, fixed);
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_EQ(*mismatch, 3u);  // the mkdir is the op that diverges

  // The helper order (mkdir before rename) replays cleanly.
  std::vector<size_t> helper = {0, 1, 2, 3};
  EXPECT_EQ(ReplayOrder(ops, helper), std::nullopt);
}

TEST(LinCheck, NonLinearizableFigure8History) {
  // Figure 8: ins(/a/b/c, d) succeeds, rename(/a -> /i) succeeds, del(/i/b,
  // c) succeeds — all overlapping ins. There is no sequential order where
  // all three succeed with these results... del succeeding requires c empty,
  // but ins's success placed d into c before any point del could run after
  // rename.
  std::vector<HistoryOp> ops;
  ops.push_back(Op(0, OpCall::MkdirOf(*ParsePath("/a")), Errc::kOk, 1, 2));
  ops.push_back(Op(0, OpCall::MkdirOf(*ParsePath("/a/b")), Errc::kOk, 3, 4));
  ops.push_back(Op(0, OpCall::MkdirOf(*ParsePath("/a/b/c")), Errc::kOk, 5, 6));
  // ins spans the rename and the del.
  ops.push_back(Op(1, OpCall::MkdirOf(*ParsePath("/a/b/c/d")), Errc::kOk, 7, 12));
  ops.push_back(
      Op(2, OpCall::RenameOf(*ParsePath("/a"), *ParsePath("/i")), Errc::kOk, 8, 9));
  ops.push_back(Op(2, OpCall::RmdirOf(*ParsePath("/i/b/c")), Errc::kOk, 10, 11));
  EXPECT_FALSE(CheckLinearizable(ops).linearizable);
}

TEST(LinCheck, ReadPayloadsParticipateInVerdict) {
  // A read that returned data nobody wrote at a compatible point.
  std::vector<std::byte> written{std::byte{'x'}};
  std::vector<HistoryOp> ops;
  ops.push_back(Op(0, OpCall::MknodOf(*ParsePath("/f")), Errc::kOk, 1, 2));
  HistoryOp w = Op(1, OpCall::WriteOf(*ParsePath("/f"), 0, written), Errc::kOk, 3, 4);
  w.result.nbytes = 1;
  ops.push_back(w);
  HistoryOp r = Op(2, OpCall::ReadOf(*ParsePath("/f"), 0, 1), Errc::kOk, 5, 6);
  r.result.nbytes = 1;
  r.result.data = {std::byte{'y'}};  // never written
  ops.push_back(r);
  EXPECT_FALSE(CheckLinearizable(ops).linearizable);
  ops.back().result.data = {std::byte{'x'}};
  EXPECT_TRUE(CheckLinearizable(ops).linearizable);
}

TEST(LinCheck, StateBudgetAborts) {
  // Many concurrent no-conflict ops explode the search; a tiny budget must
  // abort rather than hang.
  std::vector<HistoryOp> ops;
  for (Tid t = 1; t <= 12; ++t) {
    ops.push_back(
        Op(t, OpCall::MkdirOf(*ParsePath("/d" + std::to_string(t))), Errc::kOk, 1, 100));
  }
  auto res = CheckLinearizable(ops, /*max_states=*/5);
  EXPECT_TRUE(res.aborted);
}

TEST(LinCheck, OrderBySortsStably) {
  std::vector<HistoryOp> ops(3);
  auto order = OrderBy(ops, {30, 10, 20});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

}  // namespace
}  // namespace atomfs
