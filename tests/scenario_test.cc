// Deterministic reproductions of the paper's key interleavings:
//
//   * Figure 4(a): disjoint ins/del — fixed LPs suffice.
//   * Figure 1:    rename breaks mkdir's traversed path — the fixed-LP order
//                  is illegal, the helper order is legal.
//   * Figure 4(b)-style: rename helps a read-side op (stat).
//   * Figure 4(c): recursive path inter-dependency across two renames.
//   * fixed_lp_mode: the same Figure 1 schedule *fails* refinement when the
//                  helper mechanism is disabled, exactly as §3.1 predicts.
//
// Schedules are forced with GateObserver: a thread is parked at a lock
// release so it sits inside its critical section holding exactly the lock
// the scenario requires.

#include <gtest/gtest.h>

#include <sstream>

#include "src/afs/op.h"
#include "src/core/atom_fs.h"
#include "src/crlh/bundle.h"
#include "src/crlh/gate.h"
#include "src/crlh/lin_check.h"
#include "src/crlh/monitor.h"
#include "src/crlh/op_thread.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/txn/txn.h"

namespace atomfs {
namespace {

// Test fixture wiring AtomFs -> (CrlhMonitor, GateObserver).
class ScenarioTest : public ::testing::Test {
 protected:
  void Build(CrlhMonitor::Options mon_opts = {}) {
    monitor_ = std::make_unique<CrlhMonitor>(mon_opts);
    tee_ = std::make_unique<TeeObserver>(monitor_.get(), &gate_);
    AtomFs::Options opts;
    opts.observer = tee_.get();
    fs_ = std::make_unique<AtomFs>(std::move(opts));
  }

  // Like Build, but with the optimistic (RCU) walk enabled and a tracer in
  // the chain, so tests can assert the core.rcuwalk.* counters and harvest a
  // flight-recorder slice for a post-mortem bundle. `skip_validation` wires
  // the test-only unsafe hook that turns a concurrent mutation into a stale
  // read the monitor must catch.
  void BuildRcu(bool skip_validation, CrlhMonitor::Options mon_opts = {}) {
    monitor_ = std::make_unique<CrlhMonitor>(mon_opts);
    ring_ = std::make_unique<TraceRing>(4096);
    registry_ = std::make_unique<MetricsRegistry>();
    tracer_ = std::make_unique<TracingObserver>(registry_.get(), ring_.get());
    inner_tee_ = std::make_unique<TeeObserver>(tracer_.get(), &gate_);
    tee_ = std::make_unique<TeeObserver>(monitor_.get(), inner_tee_.get());
    AtomFs::Options opts;
    opts.observer = tee_.get();
    opts.enable_rcu_walk = true;
    opts.unsafe_skip_opt_validation = skip_validation;
    fs_ = std::make_unique<AtomFs>(std::move(opts));
  }

  Inum InoOf(std::string_view path) {
    auto attr = fs_->Stat(path);
    EXPECT_TRUE(attr.ok()) << path;
    return attr->ino;
  }

  // Orders of the completed records.
  std::vector<size_t> FixedLpOrder(const std::vector<CrlhMonitor::CompletedRecord>& recs) {
    std::vector<uint64_t> keys;
    for (const auto& r : recs) {
      keys.push_back(r.lp_seq);
    }
    return OrderBy(HistoryFromRecords(recs), keys);
  }

  std::vector<size_t> HelperOrder(const std::vector<CrlhMonitor::CompletedRecord>& recs) {
    std::vector<uint64_t> keys;
    for (const auto& r : recs) {
      keys.push_back(r.abs_seq);
    }
    return OrderBy(HistoryFromRecords(recs), keys);
  }

  GateObserver gate_;
  std::unique_ptr<CrlhMonitor> monitor_;
  std::unique_ptr<TraceRing> ring_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<TracingObserver> tracer_;
  std::unique_ptr<TeeObserver> inner_tee_;
  std::unique_ptr<TeeObserver> tee_;
  std::unique_ptr<AtomFs> fs_;
};

// The monitor must be clean after a purely sequential prologue: set up under
// observation, drain, and check quiescent consistency.
TEST_F(ScenarioTest, SequentialPrologueIsClean) {
  Build();
  EXPECT_TRUE(fs_->Mkdir("/a").ok());
  EXPECT_TRUE(fs_->Mkdir("/a/b").ok());
  EXPECT_TRUE(fs_->Mknod("/a/b/f").ok());
  EXPECT_TRUE(fs_->Rename("/a/b/f", "/a/g").ok());
  EXPECT_TRUE(fs_->Unlink("/a/g").ok());
  EXPECT_EQ(fs_->Rmdir("/a").code(), Errc::kNotEmpty);
  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  EXPECT_EQ(monitor_->helped_ops(), 0u);
}

// Figure 4(a): ins(/a, c) runs concurrently with del(/, a)... here realized
// as ins completing before an overlapping del of a *disjoint* path; no path
// inter-dependency, no helping, and the fixed-LP order is already legal.
TEST_F(ScenarioTest, Fig4aFixedLpsSufficeWithoutInterdependency) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/d").ok());

  OpThread ins([&] { EXPECT_TRUE(fs_->Mkdir("/a/c").ok()); });
  OpThread del([&] { EXPECT_TRUE(fs_->Rmdir("/d").ok()); });
  // Park ins inside its critical section (holding /a), run del fully, then
  // let ins finish: overlapping, but no shared path.
  gate_.Arm(ins.tid(), GateObserver::Point::kLockReleased, kRootInum);
  ins.Go();
  gate_.WaitParked(ins.tid());
  del.Go();
  del.Join();
  gate_.Open(ins.tid());
  ins.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_EQ(monitor_->helped_ops(), 0u);
  auto recs = monitor_->Completed();
  EXPECT_EQ(ReplayOrder(HistoryFromRecords(recs), FixedLpOrder(recs)), std::nullopt);
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
}

// Figure 1: mkdir(/a/b/c) traverses through /a and halts; rename(/a, /e)
// completes first. The helper mechanism must linearize the mkdir before the
// rename; the fixed-LP temporal order is an illegal sequential history.
TEST_F(ScenarioTest, Fig1RenameHelpsMkdir) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  const Inum ino_a = InoOf("/a");

  OpThread mkdir_op([&] { EXPECT_TRUE(fs_->Mkdir("/a/b/c").ok()); });
  // Park mkdir right after it releases /a: it then holds only /a/b, with
  // LockPath (root, a, b).
  gate_.Arm(mkdir_op.tid(), GateObserver::Point::kLockReleased, ino_a);
  mkdir_op.Go();
  gate_.WaitParked(mkdir_op.tid());

  // rename completes while mkdir sits in its critical section.
  EXPECT_TRUE(fs_->Rename("/a", "/e").ok());
  EXPECT_EQ(monitor_->helped_ops(), 1u);

  gate_.Open(mkdir_op.tid());
  mkdir_op.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  // The directory landed inside the renamed tree.
  EXPECT_TRUE(fs_->Stat("/e/b/c").ok());

  auto recs = monitor_->Completed();  // includes the observed setup ops
  size_t helped_count = 0;
  for (const auto& r : recs) {
    helped_count += r.helped ? 1 : 0;
  }
  EXPECT_EQ(helped_count, 1u);
  // The helper order replays legally...
  EXPECT_EQ(ReplayOrder(HistoryFromRecords(recs), HelperOrder(recs)), std::nullopt);
  // ...the fixed-LP order does not (the paper's Figure 1).
  EXPECT_NE(ReplayOrder(HistoryFromRecords(recs), FixedLpOrder(recs)), std::nullopt);
  // Ground truth: the concurrent history *is* linearizable.
  auto verdict = CheckLinearizable(HistoryFromRecords(recs));
  EXPECT_TRUE(verdict.linearizable);
}

// The same schedule with the helper disabled: the monitor must report a
// refinement violation at the mkdir (its abstract op, run at its concrete
// LP, fails with ENOENT while the concrete op succeeded).
TEST_F(ScenarioTest, Fig1FixedLpModeFailsRefinement) {
  CrlhMonitor::Options opts;
  opts.fixed_lp_mode = true;
  opts.check_invariants = false;  // isolate the refinement verdict
  Build(opts);
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  const Inum ino_a = InoOf("/a");

  OpThread mkdir_op([&] { EXPECT_TRUE(fs_->Mkdir("/a/b/c").ok()); });
  gate_.Arm(mkdir_op.tid(), GateObserver::Point::kLockReleased, ino_a);
  mkdir_op.Go();
  gate_.WaitParked(mkdir_op.tid());
  EXPECT_TRUE(fs_->Rename("/a", "/e").ok());
  gate_.Open(mkdir_op.tid());
  mkdir_op.Join();

  EXPECT_FALSE(monitor_->ok());
  bool found_refinement = false;
  for (const auto& v : monitor_->violations()) {
    if (v.find("REFINEMENT") != std::string::npos) {
      found_refinement = true;
    }
  }
  EXPECT_TRUE(found_refinement);
}

// Figure 4(b) flavour: a read-side operation (stat) is helped. The stat's
// result must be computed against the pre-rename tree even though it
// concretely finishes afterwards.
TEST_F(ScenarioTest, RenameHelpsStat) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mknod("/a/b/f").ok());
  ASSERT_TRUE(WriteString(*fs_, "/a/b/f", "xyz").ok());
  const Inum ino_b = InoOf("/a/b");

  OpThread stat_op([&] {
    auto attr = fs_->Stat("/a/b/f");
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 3u);
  });
  // Park after releasing b: the stat holds only f. LockPath (root,a,b,f).
  gate_.Arm(stat_op.tid(), GateObserver::Point::kLockReleased, ino_b);
  stat_op.Go();
  gate_.WaitParked(stat_op.tid());

  // This rename's SrcPath (root, a, b) is a prefix of the stat's LockPath.
  EXPECT_TRUE(fs_->Rename("/a/b", "/g").ok());
  EXPECT_EQ(monitor_->helped_ops(), 1u);

  gate_.Open(stat_op.tid());
  stat_op.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  auto recs = monitor_->Completed();
  EXPECT_EQ(ReplayOrder(HistoryFromRecords(recs), HelperOrder(recs)), std::nullopt);
  EXPECT_TRUE(CheckLinearizable(HistoryFromRecords(recs)).linearizable);
}

// Figure 4(c): recursive path inter-dependency. t1's rename helps t2's
// rename, which in turn forces t3's stat to be helped and ordered before t2.
TEST_F(ScenarioTest, Fig4cRecursiveDependency) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/e").ok());
  ASSERT_TRUE(fs_->Mknod("/a/e/f").ok());
  ASSERT_TRUE(fs_->Mkdir("/b").ok());
  ASSERT_TRUE(fs_->Mkdir("/b/c").ok());
  ASSERT_TRUE(fs_->Mkdir("/b/c/d").ok());
  const Inum ino_e = InoOf("/a/e");

  // t3: stat(/a/e/f), parked holding only f.
  OpThread t3([&] { EXPECT_TRUE(fs_->Stat("/a/e/f").ok()); });
  gate_.Arm(t3.tid(), GateObserver::Point::kLockReleased, ino_e);
  t3.Go();
  gate_.WaitParked(t3.tid());

  // t2: rename(/a/e, /b/c/d/e), parked right after releasing the last common
  // inode (the root): it holds sdir=a and ddir=d, with SrcPath (root,a) and
  // DestPath (root,b,c,d).
  OpThread t2([&] { EXPECT_TRUE(fs_->Rename("/a/e", "/b/c/d/e").ok()); });
  gate_.Arm(t2.tid(), GateObserver::Point::kLockReleased, kRootInum);
  t2.Go();
  gate_.WaitParked(t2.tid());

  // t1: rename(/b/c, /b/g) runs to completion. Its SrcPath (root,b,c) is a
  // strict prefix of t2's DestPath, and t3's LockPath extends t2's SrcPath:
  // both must be helped, t3 before t2.
  EXPECT_TRUE(fs_->Rename("/b/c", "/b/g").ok());
  EXPECT_EQ(monitor_->helped_ops(), 2u);

  gate_.Open(t3.tid());
  t3.Join();
  gate_.Open(t2.tid());
  t2.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  // The moved file ends up below the doubly-renamed path.
  EXPECT_TRUE(fs_->Stat("/b/g/d/e/f").ok());

  auto recs = monitor_->Completed();  // includes the observed setup ops
  EXPECT_EQ(ReplayOrder(HistoryFromRecords(recs), HelperOrder(recs)), std::nullopt);
  EXPECT_NE(ReplayOrder(HistoryFromRecords(recs), FixedLpOrder(recs)), std::nullopt);
  EXPECT_TRUE(CheckLinearizable(HistoryFromRecords(recs)).linearizable);

  // The helped stat must be ordered before the helped rename (t2), which is
  // ordered before the helper (t1).
  uint64_t stat_abs = 0;
  uint64_t t2_abs = 0;
  uint64_t t1_abs = 0;
  for (const auto& r : recs) {
    if (r.call.kind == OpKind::kStat && r.call.a.ToString() == "/a/e/f") {
      stat_abs = r.abs_seq;
      EXPECT_TRUE(r.helped);
    } else if (r.call.kind == OpKind::kRename && r.call.a.ToString() == "/a/e") {
      t2_abs = r.abs_seq;
      EXPECT_TRUE(r.helped);
    } else if (r.call.kind == OpKind::kRename && r.call.a.ToString() == "/b/c") {
      t1_abs = r.abs_seq;
      EXPECT_FALSE(r.helped);
    }
  }
  ASSERT_NE(stat_abs, 0u);
  ASSERT_NE(t2_abs, 0u);
  ASSERT_NE(t1_abs, 0u);
  EXPECT_LT(stat_abs, t2_abs);
  EXPECT_LT(t2_abs, t1_abs);
}

// A rename whose destination victim is a populated-then-emptied directory,
// overlapping with a deep read: exercises helping together with a dnode
// replacement.
TEST_F(ScenarioTest, RenameWithVictimHelpsReader) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/src").ok());
  ASSERT_TRUE(fs_->Mknod("/src/f").ok());
  ASSERT_TRUE(fs_->Mkdir("/victim").ok());
  const Inum ino_src = InoOf("/src");

  OpThread reader([&] {
    auto attr = fs_->Stat("/src/f");
    EXPECT_TRUE(attr.ok());
  });
  gate_.Arm(reader.tid(), GateObserver::Point::kLockReleased, ino_src);
  reader.Go();
  gate_.WaitParked(reader.tid());

  EXPECT_TRUE(fs_->Rename("/src", "/victim").ok());
  EXPECT_EQ(monitor_->helped_ops(), 1u);

  gate_.Open(reader.tid());
  reader.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  EXPECT_TRUE(fs_->Stat("/victim/f").ok());
}

// A helped delete: its FutLockPath must predict the target lock from the
// pre-Aop abstract state (regression: computing it after the helped UNLINK
// removed the target made the concrete target lock look like a bypass).
TEST_F(ScenarioTest, RenameHelpsUnlink) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mknod("/a/b/x").ok());
  const Inum ino_a = InoOf("/a");

  OpThread unlink_op([&] { EXPECT_TRUE(fs_->Unlink("/a/b/x").ok()); });
  gate_.Arm(unlink_op.tid(), GateObserver::Point::kLockReleased, ino_a);
  unlink_op.Go();
  gate_.WaitParked(unlink_op.tid());

  EXPECT_TRUE(fs_->Rename("/a", "/z").ok());
  EXPECT_EQ(monitor_->helped_ops(), 1u);

  gate_.Open(unlink_op.tid());
  unlink_op.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  EXPECT_EQ(fs_->Stat("/z/b/x").status().code(), Errc::kNoEnt);
}

// Same for a helped rmdir of an empty directory.
TEST_F(ScenarioTest, RenameHelpsRmdir) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b/d").ok());
  const Inum ino_a = InoOf("/a");

  OpThread rmdir_op([&] { EXPECT_TRUE(fs_->Rmdir("/a/b/d").ok()); });
  gate_.Arm(rmdir_op.tid(), GateObserver::Point::kLockReleased, ino_a);
  rmdir_op.Go();
  gate_.WaitParked(rmdir_op.tid());

  EXPECT_TRUE(fs_->Rename("/a", "/z").ok());
  EXPECT_EQ(monitor_->helped_ops(), 1u);

  gate_.Open(rmdir_op.tid());
  rmdir_op.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
}

// Abstract-concrete relation mid-flight: while a helped mkdir is still
// parked, the abstract state runs ahead; the roll-back mechanism must
// reconcile it with the concrete snapshot.
TEST_F(ScenarioTest, RollbackRelationHoldsMidFlight) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  const Inum ino_a = InoOf("/a");

  OpThread mkdir_op([&] { EXPECT_TRUE(fs_->Mkdir("/a/b/c").ok()); });
  gate_.Arm(mkdir_op.tid(), GateObserver::Point::kLockReleased, ino_a);
  mkdir_op.Go();
  gate_.WaitParked(mkdir_op.tid());

  EXPECT_TRUE(fs_->Rename("/a", "/e").ok());
  ASSERT_EQ(monitor_->Helplist().size(), 1u);

  // The abstract tree already contains /e/b/c; the concrete tree does not.
  // Rolling back the helped mkdir's effect must reconcile them.
  EXPECT_TRUE(monitor_->CheckAbstractConcreteRelation(fs_->SnapshotSpec()));

  gate_.Open(mkdir_op.tid());
  mkdir_op.Join();
  EXPECT_TRUE(monitor_->Helplist().empty());
  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
}

// --- optimistic (RCU) walk under the CRL-H monitor ---------------------------
//
// The optimistic read path bypasses lock coupling, so its correctness rests
// entirely on the version-chain validation. These scenarios force the
// dangerous interleaving — a rename completing while an optimistic stat sits
// between resolution and validation — once with validation disabled (the
// monitor must flag the stale read) and once with it enabled (the walk must
// fall back and return the post-rename truth).

// A monitored stale read: the unsafe skip-validation hook lets the
// optimistic stat return the pre-rename attributes even though its LP lands
// after the rename. The monitor must report both the Opt-validation
// invariant violation (bypassing reader reached its LP unvalidated) and the
// refinement divergence (concrete success vs abstract ENOENT), and the
// post-mortem bundle must reproduce the divergence offline.
TEST_F(ScenarioTest, RcuStaleReadIsDetectedAndBundleReplays) {
  BuildRcu(/*skip_validation=*/true);
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());

  OpThread reader([&] {
    // Resolved before the rename, validation skipped: the stat observes the
    // moved directory as if it were still at /a/b.
    EXPECT_TRUE(fs_->Stat("/a/b").ok());
  });
  // The optimistic walk's only lock acquisition is the target lock, taken
  // after lock-free resolution and right before validation would run — the
  // wildcard gate parks the reader exactly inside the validation window.
  gate_.Arm(reader.tid(), GateObserver::Point::kLockAcquired);
  reader.Go();
  gate_.WaitParked(reader.tid());

  // The rename only needs the root and /a — the reader can keep holding /a/b.
  EXPECT_TRUE(fs_->Rename("/a", "/z").ok());

  gate_.Open(reader.tid());
  reader.Join();

  EXPECT_FALSE(monitor_->ok());
  bool opt_violation = false;
  bool refinement = false;
  for (const auto& v : monitor_->violations()) {
    opt_violation = opt_violation || v.find("Opt-validation") != std::string::npos;
    refinement = refinement || v.find("REFINEMENT") != std::string::npos;
  }
  EXPECT_TRUE(opt_violation);
  EXPECT_TRUE(refinement);
  const MetricsSnapshot snap = registry_->Snapshot();
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.unvalidated_reads"), 1u);
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.attempts"), 1u);

  // The divergence is replayable away from the schedule: bundle the
  // post-mortem state, round-trip it through the text form, and replay the
  // recorded abstract order — the stale stat's concrete result must diverge
  // from the oracle.
  auto pm = monitor_->PostMortemState();
  ASSERT_TRUE(pm.has_value());
  const PostMortemBundle bundle = BuildPostMortemBundle(*pm, ring_->Snapshot());
  std::istringstream in(FormatBundle(bundle));
  auto parsed = ParseBundle(in);
  ASSERT_TRUE(parsed.ok());
  const BundleReplay replay = ReplayBundle(*parsed);
  EXPECT_TRUE(replay.reproduced) << replay.verdict;
}

// The same interleaving with validation on: the reader's recorded version
// chain is invalidated by the rename, every retry misses the renamed /a, and
// the locked fallback walk returns the correct post-rename ENOENT. The
// monitor must stay clean.
TEST_F(ScenarioTest, RcuValidationFailureFallsBackToLockedWalk) {
  BuildRcu(/*skip_validation=*/false);
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());

  OpThread reader([&] { EXPECT_EQ(fs_->Stat("/a/b").status().code(), Errc::kNoEnt); });
  gate_.Arm(reader.tid(), GateObserver::Point::kLockAcquired);
  reader.Go();
  gate_.WaitParked(reader.tid());
  EXPECT_TRUE(fs_->Rename("/a", "/z").ok());
  gate_.Open(reader.tid());
  reader.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  // Attempt 0 fails validation (the root's version moved); both retries fail
  // resolution (/a is gone); then the op falls back. 1 + rcu_walk_max_retries
  // attempts, all failed, one fallback, nothing unvalidated.
  const MetricsSnapshot snap = registry_->Snapshot();
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.attempts"), 3u);
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.validation_failures"), 3u);
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.fallbacks"), 1u);
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.unvalidated_reads"), 0u);
}

// --- transaction isolation under the CRL-H monitor ---------------------------
//
// A TxnManager over the monitored AtomFs: only committed effects ever touch
// the inner FS, so the monitor must see a linearizable single-op history and
// its quiescent state must equal the concrete snapshot — i.e. conflicted and
// aborted transactions leave no trace at either the concrete or the abstract
// level.

TEST_F(ScenarioTest, TxnWriteWriteConflictRollsBackInvisibly) {
  Build();
  TxnManager::Options topt;
  topt.inner = fs_.get();
  TxnManager txn(topt);
  ASSERT_TRUE(txn.Mkdir("/d").ok());
  ASSERT_TRUE(txn.Mknod("/d/f").ok());

  const TxnId winner = *txn.Begin();
  const TxnId loser = *txn.Begin();
  std::vector<std::byte> wa{std::byte{'A'}};
  std::vector<std::byte> wb{std::byte{'B'}};
  EXPECT_TRUE(txn.Apply(winner, OpCall::WriteOf(*ParsePath("/d/f"), 0, wa)).status.ok());
  EXPECT_TRUE(txn.Apply(loser, OpCall::WriteOf(*ParsePath("/d/f"), 0, wb)).status.ok());
  ASSERT_TRUE(txn.Commit(winner).ok());
  EXPECT_EQ(txn.Commit(loser).code(), Errc::kTxConflict);

  EXPECT_EQ(ReadString(*fs_, "/d/f").value(), "A");  // loser's write never landed
  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
}

TEST_F(ScenarioTest, TxnWritesInvisibleUntilCommitButReadYourWrites) {
  Build();
  TxnManager::Options topt;
  topt.inner = fs_.get();
  TxnManager txn(topt);
  ASSERT_TRUE(txn.Mkdir("/d").ok());

  const TxnId id = *txn.Begin();
  EXPECT_TRUE(txn.Apply(id, OpCall::MknodOf(*ParsePath("/d/f"))).status.ok());
  std::vector<std::byte> payload{std::byte{'t'}, std::byte{'x'}};
  EXPECT_TRUE(txn.Apply(id, OpCall::WriteOf(*ParsePath("/d/f"), 0, payload)).status.ok());
  // The transaction reads its own write...
  const OpResult own = txn.Apply(id, OpCall::ReadOf(*ParsePath("/d/f"), 0, 8));
  ASSERT_TRUE(own.status.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(own.data.data()), own.data.size()), "tx");
  // ...while the committed state has no such file yet.
  EXPECT_EQ(fs_->Stat("/d/f").status().code(), Errc::kNoEnt);

  ASSERT_TRUE(txn.Commit(id).ok());
  EXPECT_EQ(ReadString(*fs_, "/d/f").value(), "tx");
  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
}

TEST_F(ScenarioTest, TxnAbortLeavesNoTraceUnderMonitor) {
  Build();
  TxnManager::Options topt;
  topt.inner = fs_.get();
  TxnManager txn(topt);
  ASSERT_TRUE(txn.Mkdir("/d").ok());
  ASSERT_TRUE(txn.Mknod("/d/keep").ok());

  const TxnId id = *txn.Begin();
  EXPECT_TRUE(txn.Apply(id, OpCall::MknodOf(*ParsePath("/d/tmp"))).status.ok());
  EXPECT_TRUE(
      txn.Apply(id, OpCall::RenameOf(*ParsePath("/d/keep"), *ParsePath("/d/moved"))).status.ok());
  EXPECT_TRUE(txn.Apply(id, OpCall::UnlinkOf(*ParsePath("/d/tmp"))).status.ok());
  ASSERT_TRUE(txn.Abort(id).ok());

  // The concrete tree is exactly the pre-transaction state.
  EXPECT_TRUE(fs_->Stat("/d/keep").ok());
  EXPECT_EQ(fs_->Stat("/d/moved").status().code(), Errc::kNoEnt);
  EXPECT_EQ(fs_->Stat("/d/tmp").status().code(), Errc::kNoEnt);
  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
}

}  // namespace
}  // namespace atomfs
