// Figure 9: FD-based interfaces vs. helped operations.
//
// The paper shows that an FD-based readdir that resolves straight to an
// inode can bypass a helped ins and observe a stale (empty) directory — a
// non-linearizable outcome. AtomFS therefore resolves a full path for every
// FD-based interface (§5.4, via the Vfs layer). These tests drive exactly
// the Figure 9 schedule and check that the outcome stays linearizable.

#include <gtest/gtest.h>

#include "src/core/atom_fs.h"
#include "src/crlh/gate.h"
#include "src/crlh/lin_check.h"
#include "src/crlh/monitor.h"
#include "src/vfs/vfs.h"
#include "src/crlh/op_thread.h"

namespace atomfs {
namespace {

class Fig9Test : public ::testing::Test {
 protected:
  void Build() {
    monitor_ = std::make_unique<CrlhMonitor>();
    tee_ = std::make_unique<TeeObserver>(monitor_.get(), &gate_);
    AtomFs::Options opts;
    opts.observer = tee_.get();
    fs_ = std::make_unique<AtomFs>(std::move(opts));
    vfs_ = std::make_unique<Vfs>(fs_.get());
  }

  GateObserver gate_;
  std::unique_ptr<CrlhMonitor> monitor_;
  std::unique_ptr<TeeObserver> tee_;
  std::unique_ptr<AtomFs> fs_;
  std::unique_ptr<Vfs> vfs_;
};

// The paper's Figure 9 schedule: ins(/a/b/c, d) is parked in its critical
// section, rename(/a, /i) completes (helping the ins), then a readdir runs
// through an fd that was opened on /a/b/c. Because the Vfs re-traverses the
// stored *path*, the readdir observes the post-rename world (ENOENT on the
// old path) instead of bypassing the helped ins into the stale directory —
// a perfectly linearizable outcome.
TEST_F(Fig9Test, FdReaddirDoesNotBypassHelpedIns) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b/c").ok());
  const Inum ino_b = fs_->Stat("/a/b")->ino;

  auto fd = vfs_->Open("/a/b/c", OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());

  OpThread ins([&] { EXPECT_TRUE(fs_->Mkdir("/a/b/c/d").ok()); });
  gate_.Arm(ins.tid(), GateObserver::Point::kLockReleased, ino_b);
  ins.Go();
  gate_.WaitParked(ins.tid());  // ins holds c, about to insert d

  ASSERT_TRUE(fs_->Rename("/a", "/i").ok());
  EXPECT_EQ(monitor_->helped_ops(), 1u);

  // The FD readdir re-resolves "/a/b/c": gone after the rename.
  auto entries = vfs_->ReadDirFd(*fd);
  EXPECT_EQ(entries.status().code(), Errc::kNoEnt);

  gate_.Open(ins.tid());
  ins.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  EXPECT_TRUE(CheckLinearizable(HistoryFromRecords(monitor_->Completed())).linearizable);
  // The helped insert really landed.
  EXPECT_TRUE(fs_->Stat("/i/b/c/d").ok());
}

// Same schedule, but the fd readdir happens through the *new* path: it must
// wait for the parked ins (lock coupling) and then see d.
TEST_F(Fig9Test, FdReaddirThroughNewPathSeesHelpedInsert) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b/c").ok());
  const Inum ino_b = fs_->Stat("/a/b")->ino;

  OpThread ins([&] { EXPECT_TRUE(fs_->Mkdir("/a/b/c/d").ok()); });
  gate_.Arm(ins.tid(), GateObserver::Point::kLockReleased, ino_b);
  ins.Go();
  gate_.WaitParked(ins.tid());

  ASSERT_TRUE(fs_->Rename("/a", "/i").ok());
  auto fd = vfs_->Open("/i/b", OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());

  // readdir of /i/b only needs b's lock, which is free: it may run now and
  // still sees c (the rename moved the whole subtree).
  auto entries = vfs_->ReadDirFd(*fd);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "c");

  // A readdir of /i/b/c would block on the parked ins; release it first and
  // verify the helped insert is observed afterwards.
  gate_.Open(ins.tid());
  ins.Join();
  auto fd_c = vfs_->Open("/i/b/c", OpenFlags::kRead);
  ASSERT_TRUE(fd_c.ok());
  auto entries_c = vfs_->ReadDirFd(*fd_c);
  ASSERT_TRUE(entries_c.ok());
  ASSERT_EQ(entries_c->size(), 1u);
  EXPECT_EQ((*entries_c)[0].name, "d");

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
}

// Reads and writes through fds during a rename of an ancestor stay
// linearizable (they are path-based underneath and participate in helping
// like any other op).
TEST_F(Fig9Test, FdReadHelpedAcrossRename) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(WriteString(*fs_, "/a/b/f", "payload").ok());
  const Inum ino_b = fs_->Stat("/a/b")->ino;

  auto fd = vfs_->Open("/a/b/f", OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());

  // Park a read mid-flight holding only f, then rename /a away.
  OpThread reader([&] {
    std::byte buf[16];
    auto n = vfs_->Pread(*fd, 0, buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 7u);
  });
  gate_.Arm(reader.tid(), GateObserver::Point::kLockReleased, ino_b);
  reader.Go();
  gate_.WaitParked(reader.tid());

  ASSERT_TRUE(fs_->Rename("/a", "/z").ok());
  EXPECT_EQ(monitor_->helped_ops(), 1u);

  gate_.Open(reader.tid());
  reader.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(CheckLinearizable(HistoryFromRecords(monitor_->Completed())).linearizable);
}

}  // namespace
}  // namespace atomfs
