// Post-mortem bundle tests: a seeded refinement violation harvested from a
// CrlhMonitor must survive the full pipeline — harvest, format, parse,
// replay — and reproduce the recorded verdict offline, which is the whole
// contract `atomfs_verify --bundle` sells.

#include "src/crlh/bundle.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/crlh/monitor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/tracer.h"

namespace atomfs {
namespace {

OpCall Mkdir(std::string_view p) { return OpCall::MkdirOf(*ParsePath(p)); }

OpResult Ok() {
  OpResult r;
  return r;
}

OpResult Err(Errc code) {
  OpResult r;
  r.status = Status(code);
  return r;
}

// Drives the monitor through one clean op and one op whose concrete result
// contradicts the abstract one (mkdir of a fresh name "fails" with kExist),
// the monitor_test RefinementMismatchIsFlagged shape. Returns the monitor
// ready for post-mortem harvest; the tracer feeds `ring` so the bundle gets
// a ghost slice.
void SeedViolation(CrlhMonitor& m) {
  m.OnOpBegin(1, Mkdir("/a"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  m.OnLp(1, 5);
  m.OnLockReleased(1, kRootInum);
  m.OnOpEnd(1, Ok());

  m.OnOpBegin(2, Mkdir("/b"));
  m.OnLockAcquired(2, kRootInum, LockPathRole::kSingle);
  m.OnLp(2, 7);
  m.OnLockReleased(2, kRootInum);
  m.OnOpEnd(2, Err(Errc::kExist));  // concrete claims EEXIST; abstract said OK
}

TEST(BundleTest, SeededViolationRoundTripsAndReproducesOnReplay) {
  MetricsRegistry reg;
  TraceRing ring(256);
  TracingObserver tracer(&reg, &ring);
  CrlhMonitor::Options mopts;
  mopts.obs = &tracer;
  CrlhMonitor m(mopts);
  SeedViolation(m);
  ASSERT_FALSE(m.ok());

  auto pm = m.PostMortemState();
  ASSERT_TRUE(pm.has_value());
  EXPECT_NE(pm->message.find("REFINEMENT"), std::string::npos);
  ASSERT_EQ(pm->history.size(), 2u);  // the violating op's record is included

  const PostMortemBundle bundle = BuildPostMortemBundle(*pm, ring.Snapshot());
  EXPECT_EQ(bundle.message, pm->message);
  EXPECT_EQ(bundle.history.size(), 2u);
  // The monitor's sink wrote invariant outcomes and the violation marker
  // into the ring; both threads are involved, so the slice is non-empty and
  // ends with a kViolation event somewhere.
  bool saw_violation_event = false;
  for (const TraceEvent& e : bundle.ghost) {
    saw_violation_event |= e.type == TraceEventType::kViolation;
  }
  EXPECT_TRUE(saw_violation_event);

  const std::string text = FormatBundle(bundle);
  ASSERT_EQ(text.rfind("# atomfs-bundle v1", 0), 0u) << text.substr(0, 60);

  std::istringstream in(text);
  auto parsed = ParseBundle(in);
  ASSERT_TRUE(parsed.ok()) << ErrcName(parsed.status().code());
  EXPECT_EQ(parsed->message, bundle.message);
  EXPECT_EQ(parsed->seq, bundle.seq);
  ASSERT_EQ(parsed->history.size(), bundle.history.size());
  EXPECT_EQ(parsed->history[0].tid, 1u);
  EXPECT_EQ(parsed->history[1].tid, 2u);
  EXPECT_EQ(parsed->history[1].concrete.status.code(), Errc::kExist);
  EXPECT_EQ(parsed->ghost.size(), bundle.ghost.size());

  // Replay through the SpecFs oracle reproduces the refinement divergence
  // at the recorded op — same verdict, no concurrency required.
  const BundleReplay replay = ReplayBundle(*parsed);
  EXPECT_TRUE(replay.reproduced);
  EXPECT_EQ(replay.divergence_index, 1u);
  EXPECT_NE(replay.verdict.find("REFINEMENT"), std::string::npos);
}

TEST(BundleTest, ConsistentHistoryReplaysClean) {
  CrlhMonitor m;  // no sink: bundles work without a ring too
  SeedViolation(m);
  auto pm = m.PostMortemState();
  ASSERT_TRUE(pm.has_value());
  PostMortemBundle bundle = BuildPostMortemBundle(*pm, {});
  EXPECT_TRUE(bundle.ghost.empty());

  // Repair the recorded concrete result: with the contradiction gone the
  // same history must replay clean, proving the replayer checks the data
  // and not just the recorded verdict string.
  ASSERT_EQ(bundle.history.size(), 2u);
  bundle.history[1].concrete = Ok();
  const BundleReplay replay = ReplayBundle(bundle);
  EXPECT_FALSE(replay.reproduced);
  EXPECT_EQ(replay.ops_replayed, 2u);
  EXPECT_NE(replay.verdict.find("clean"), std::string::npos);
}

TEST(BundleTest, PostMortemStateIsEmptyWithoutViolations) {
  CrlhMonitor m;
  m.OnOpBegin(1, Mkdir("/a"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  m.OnLp(1, 5);
  m.OnLockReleased(1, kRootInum);
  m.OnOpEnd(1, Ok());
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m.PostMortemState().has_value());
}

TEST(BundleTest, ParseRejectsMalformedDocuments) {
  {
    std::istringstream in("not a bundle\n");
    EXPECT_FALSE(ParseBundle(in).ok());
  }
  {
    // Right header, garbage record.
    std::istringstream in("# atomfs-bundle v1\nbogus record\nend\n");
    EXPECT_FALSE(ParseBundle(in).ok());
  }
  {
    // Truncated: no end marker.
    std::istringstream in("# atomfs-bundle v1\nseq 4\n");
    EXPECT_FALSE(ParseBundle(in).ok());
  }
}

}  // namespace
}  // namespace atomfs
