// Tests for the transaction subsystem (src/txn): atomicity, snapshot
// isolation with read-your-writes, OCC conflict detection (entry and subtree
// granularity), abort rollback, durability via the record WAL, commit-order
// descriptors, ghost events, metrics, and a concurrent commit stress that
// doubles as the sanitizer surface for the txn hot loops.

#include "src/txn/txn.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/core/atom_fs.h"
#include "src/journal/wal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/vfs/path.h"

namespace atomfs {
namespace {

Path P(const std::string& s) {
  auto p = ParsePath(s);
  EXPECT_TRUE(p.ok()) << s;
  return *p;
}

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

class TempLog {
 public:
  explicit TempLog(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::remove(path_.c_str());
  }
  ~TempLog() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }
  std::string Contents() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

 private:
  std::string path_;
};

TxnManager::Options BareOptions(FileSystem* inner) {
  TxnManager::Options o;
  o.inner = inner;
  o.record_commit_log = true;
  return o;
}

TEST(Txn, CommitAppliesAllOpsAtomically) {
  AtomFs fs;
  TxnManager txn(BareOptions(&fs));
  const TxnId id = *txn.Begin();
  EXPECT_TRUE(txn.Apply(id, OpCall::MkdirOf(P("/d"))).status.ok());
  EXPECT_TRUE(txn.Apply(id, OpCall::MknodOf(P("/d/f"))).status.ok());
  EXPECT_TRUE(txn.Apply(id, OpCall::WriteOf(P("/d/f"), 0, Bytes("v1"))).status.ok());
  // Nothing is visible before commit.
  EXPECT_EQ(fs.Stat("/d").status().code(), Errc::kNoEnt);
  ASSERT_TRUE(txn.Commit(id).ok());
  EXPECT_TRUE(fs.Stat("/d/f").ok());
  EXPECT_EQ(ReadString(fs, "/d/f").value(), "v1");
}

TEST(Txn, AbortRollsBackEverything) {
  AtomFs fs;
  TxnManager txn(BareOptions(&fs));
  ASSERT_TRUE(txn.Mkdir(P("/keep")).ok());
  const TxnId id = *txn.Begin();
  EXPECT_TRUE(txn.Apply(id, OpCall::MkdirOf(P("/gone"))).status.ok());
  EXPECT_TRUE(txn.Apply(id, OpCall::UnlinkOf(P("/keep"))).status.code() == Errc::kIsDir ||
              true);  // op errors inside the view are just reported
  ASSERT_TRUE(txn.Abort(id).ok());
  EXPECT_EQ(fs.Stat("/gone").status().code(), Errc::kNoEnt);
  EXPECT_TRUE(fs.Stat("/keep").ok());
  // The transaction is finished: further use answers kInval.
  EXPECT_EQ(txn.Apply(id, OpCall::MkdirOf(P("/x"))).status.code(), Errc::kInval);
  EXPECT_EQ(txn.Commit(id).code(), Errc::kInval);
  EXPECT_EQ(txn.open_txns(), 0u);
}

TEST(Txn, ReadYourWritesInsidePrivateView) {
  AtomFs fs;
  TxnManager txn(BareOptions(&fs));
  const TxnId id = *txn.Begin();
  EXPECT_TRUE(txn.Apply(id, OpCall::MknodOf(P("/f"))).status.ok());
  EXPECT_TRUE(txn.Apply(id, OpCall::WriteOf(P("/f"), 0, Bytes("mine"))).status.ok());
  const OpResult r = txn.Apply(id, OpCall::ReadOf(P("/f"), 0, 16));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(r.data.data()), r.data.size()), "mine");
  // Another transaction's snapshot does not see the uncommitted write.
  const TxnId other = *txn.Begin();
  EXPECT_EQ(txn.Apply(other, OpCall::StatOf(P("/f"))).status.code(), Errc::kNoEnt);
  EXPECT_TRUE(txn.Abort(id).ok());
  EXPECT_TRUE(txn.Abort(other).ok());
}

TEST(Txn, SnapshotIgnoresLaterDirectCommits) {
  AtomFs fs;
  TxnManager txn(BareOptions(&fs));
  const TxnId id = *txn.Begin();
  ASSERT_TRUE(txn.Mkdir(P("/after_begin")).ok());  // direct, auto-committed
  // The snapshot predates the direct op; the transaction cannot see it.
  EXPECT_EQ(txn.Apply(id, OpCall::StatOf(P("/after_begin"))).status.code(), Errc::kNoEnt);
  // But the read put /after_begin in the footprint, and the direct commit
  // bumped it: this transaction can no longer commit.
  EXPECT_EQ(txn.Commit(id).code(), Errc::kTxConflict);
}

TEST(Txn, WriteWriteConflictSecondCommitterLoses) {
  AtomFs fs;
  TxnManager txn(BareOptions(&fs));
  ASSERT_TRUE(txn.Mkdir(P("/d")).ok());
  const TxnId a = *txn.Begin();
  const TxnId b = *txn.Begin();
  EXPECT_TRUE(txn.Apply(a, OpCall::MknodOf(P("/d/f"))).status.ok());
  EXPECT_TRUE(txn.Apply(b, OpCall::MknodOf(P("/d/f"))).status.ok());
  ASSERT_TRUE(txn.Commit(a).ok());
  EXPECT_EQ(txn.Commit(b).code(), Errc::kTxConflict);
  const TxnStatsSnapshot stats = txn.stats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.conflicts, 1u);
  EXPECT_TRUE(fs.Stat("/d/f").ok());
}

TEST(Txn, SubtreeMoveConflictsWithWritesBeneathIt) {
  AtomFs fs;
  TxnManager txn(BareOptions(&fs));
  ASSERT_TRUE(txn.Mkdir(P("/src")).ok());
  ASSERT_TRUE(txn.Mkdir(P("/src/deep")).ok());
  const TxnId writer = *txn.Begin();
  EXPECT_TRUE(txn.Apply(writer, OpCall::MknodOf(P("/src/deep/f"))).status.ok());
  // A concurrent rename moves the ancestor out from under the writer.
  ASSERT_TRUE(txn.Rename(P("/src"), P("/dst")).ok());
  EXPECT_EQ(txn.Commit(writer).code(), Errc::kTxConflict);
  EXPECT_EQ(fs.Stat("/dst/deep/f").status().code(), Errc::kNoEnt);
}

TEST(Txn, DisjointTransactionsBothCommit) {
  AtomFs fs;
  TxnManager txn(BareOptions(&fs));
  ASSERT_TRUE(txn.Mkdir(P("/a")).ok());
  ASSERT_TRUE(txn.Mkdir(P("/b")).ok());
  const TxnId ta = *txn.Begin();
  const TxnId tb = *txn.Begin();
  EXPECT_TRUE(txn.Apply(ta, OpCall::MknodOf(P("/a/f"))).status.ok());
  EXPECT_TRUE(txn.Apply(tb, OpCall::MknodOf(P("/b/f"))).status.ok());
  EXPECT_TRUE(txn.Commit(ta).ok());
  EXPECT_TRUE(txn.Commit(tb).ok());
  EXPECT_TRUE(fs.Stat("/a/f").ok());
  EXPECT_TRUE(fs.Stat("/b/f").ok());
}

TEST(Txn, ReadOnlyTransactionCommitsWithoutJournaling) {
  TempLog log("atomfs_txn_readonly.wal");
  AtomFs fs;
  TxnManager::Options o = BareOptions(&fs);
  o.wal_path = log.path();
  TxnManager txn(o);
  ASSERT_TRUE(txn.Mkdir(P("/d")).ok());
  const size_t journal_before = log.Contents().size();
  const TxnId id = *txn.Begin();
  EXPECT_TRUE(txn.Apply(id, OpCall::StatOf(P("/d"))).status.ok());
  EXPECT_TRUE(txn.Apply(id, OpCall::ReadDirOf(P("/"))).status.ok());
  EXPECT_TRUE(txn.Commit(id).ok());
  EXPECT_EQ(log.Contents().size(), journal_before);  // nothing to make durable
}

TEST(Txn, CommitLogRecordsUnitsInCommitOrder) {
  AtomFs fs;
  TxnManager txn(BareOptions(&fs));
  ASSERT_TRUE(txn.Mkdir(P("/d")).ok());  // unit 0: direct
  const TxnId id = *txn.Begin();
  EXPECT_TRUE(txn.Apply(id, OpCall::MknodOf(P("/d/f"))).status.ok());
  EXPECT_TRUE(txn.Apply(id, OpCall::WriteOf(P("/d/f"), 0, Bytes("x"))).status.ok());
  ASSERT_TRUE(txn.Commit(id).ok());  // unit 1: the transaction
  const auto log = txn.commit_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].txid, 0u);
  EXPECT_EQ(log[0].commit_seq, 0u);
  ASSERT_EQ(log[0].ops.size(), 1u);
  EXPECT_EQ(log[0].ops[0].kind, OpKind::kMkdir);
  EXPECT_EQ(log[1].txid, id);
  EXPECT_EQ(log[1].commit_seq, 1u);
  EXPECT_EQ(log[1].ops.size(), 2u);
}

TEST(Txn, WalRecoveryReplaysCommittedHistory) {
  TempLog log("atomfs_txn_recovery.wal");
  AtomFs original;
  {
    TxnManager::Options o = BareOptions(&original);
    o.wal_path = log.path();
    TxnManager txn(o);
    ASSERT_TRUE(txn.Mkdir(P("/d")).ok());
    const TxnId committed = *txn.Begin();
    EXPECT_TRUE(txn.Apply(committed, OpCall::MknodOf(P("/d/f"))).status.ok());
    EXPECT_TRUE(txn.Apply(committed, OpCall::WriteOf(P("/d/f"), 0, Bytes("durable"))).status.ok());
    ASSERT_TRUE(txn.Commit(committed).ok());
    const TxnId aborted = *txn.Begin();
    EXPECT_TRUE(txn.Apply(aborted, OpCall::MknodOf(P("/d/never"))).status.ok());
    ASSERT_TRUE(txn.Abort(aborted).ok());
    const TxnId open = *txn.Begin();
    EXPECT_TRUE(txn.Apply(open, OpCall::MknodOf(P("/d/open"))).status.ok());
    // `open` crashes un-committed with the manager.
  }
  AtomFs recovered;
  auto stats = RecoverWal(log.path(), recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->committed, 2u);  // the direct mkdir + the committed txn
  EXPECT_EQ(stats->applied_ops, 3u);
  EXPECT_TRUE(StructurallyEqual(original.SnapshotSpec(), recovered.SnapshotSpec()));
  EXPECT_EQ(ReadString(recovered, "/d/f").value(), "durable");
  EXPECT_EQ(recovered.Stat("/d/never").status().code(), Errc::kNoEnt);
  EXPECT_EQ(recovered.Stat("/d/open").status().code(), Errc::kNoEnt);
}

TEST(Txn, MetricsAndGhostEventsFlowOnCommitAbortConflict) {
  MetricsRegistry registry;
  TraceRing ring(256);
  AtomFs fs;
  TxnManager::Options o = BareOptions(&fs);
  o.metrics = &registry;
  o.trace_ring = &ring;
  TxnManager txn(o);

  const TxnId committed = *txn.Begin();
  EXPECT_TRUE(txn.Apply(committed, OpCall::MkdirOf(P("/d"))).status.ok());
  ASSERT_TRUE(txn.Commit(committed).ok());
  const TxnId aborted = *txn.Begin();
  ASSERT_TRUE(txn.Abort(aborted).ok());
  const TxnId loser = *txn.Begin();
  EXPECT_TRUE(txn.Apply(loser, OpCall::MknodOf(P("/d/f"))).status.ok());
  ASSERT_TRUE(txn.Mknod(P("/d/f")).ok());  // direct op steals the entry
  EXPECT_EQ(txn.Commit(loser).code(), Errc::kTxConflict);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("txn.begins"), 3u);
  EXPECT_EQ(snap.CounterValue("txn.commits"), 1u);
  EXPECT_EQ(snap.CounterValue("txn.aborts"), 1u);
  EXPECT_EQ(snap.CounterValue("txn.conflicts"), 1u);

  uint64_t begins = 0, commits = 0, aborts = 0, conflict_aborts = 0;
  for (const TraceEvent& e : ring.Snapshot()) {
    switch (e.type) {
      case TraceEventType::kTxnBegin:
        ++begins;
        break;
      case TraceEventType::kTxnCommit:
        ++commits;
        break;
      case TraceEventType::kTxnAbort:
        ++aborts;
        conflict_aborts += e.arg;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(commits, 1u);
  EXPECT_EQ(aborts, 2u);  // explicit abort + conflict rollback
  EXPECT_EQ(conflict_aborts, 1u);
}

TEST(Txn, UnknownIdsAnswerInval) {
  AtomFs fs;
  TxnManager txn(BareOptions(&fs));
  EXPECT_EQ(txn.Commit(42).code(), Errc::kInval);
  EXPECT_EQ(txn.Abort(42).code(), Errc::kInval);
  EXPECT_EQ(txn.Apply(42, OpCall::MkdirOf(P("/x"))).status.code(), Errc::kInval);
}

// Concurrent commit stress: N threads each run retry loops of small
// transactions against overlapping directories. Under TSan this exercises
// the commit lock, the WAL writer, and the version maps; functionally, every
// successful commit must be fully visible and the final state must equal the
// commit log replayed in order.
TEST(Txn, ConcurrentCommitStressStaysSerializable) {
  TempLog log("atomfs_txn_stress.wal");
  AtomFs fs;
  TxnManager::Options o = BareOptions(&fs);
  o.wal_path = log.path();
  TxnManager txn(o);
  const int kThreads = 4;
  const int kTxnsPerThread = 40;
  for (int d = 0; d < kThreads; ++d) {
    ASSERT_TRUE(txn.Mkdir(P("/d" + std::to_string(d))).ok());
  }
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        // Mostly private files, occasionally a shared one to force real
        // conflicts; retry until the transaction lands.
        const bool shared = i % 5 == 0;
        const std::string dir = shared ? "/d0" : "/d" + std::to_string(t);
        const std::string file =
            dir + "/f" + std::to_string(t) + "_" + std::to_string(i);
        for (;;) {
          const TxnId id = *txn.Begin();
          if (!txn.Apply(id, OpCall::MknodOf(P(file))).status.ok()) {
            ASSERT_TRUE(txn.Abort(id).ok());
            break;  // a prior retry already created it
          }
          (void)txn.Apply(id, OpCall::WriteOf(P(file), 0, Bytes("t" + std::to_string(t))));
          const Status st = txn.Commit(id);
          if (st.ok()) {
            committed.fetch_add(1);
            break;
          }
          ASSERT_EQ(st.code(), Errc::kTxConflict);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(committed.load(), static_cast<uint64_t>(kThreads * kTxnsPerThread));
  EXPECT_EQ(txn.open_txns(), 0u);
  // Durability: recovery from the stress WAL reproduces the final state.
  AtomFs recovered;
  auto stats = RecoverWal(log.path(), recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(StructurallyEqual(fs.SnapshotSpec(), recovered.SnapshotSpec()));
}

}  // namespace
}  // namespace atomfs
