// Tests for the Exchange extension (RENAME_EXCHANGE-style atomic swap).
//
// Sequential semantics on every variant, plus the concurrency showcase: an
// exchange breaks the path integrity of *two* subtrees at once, so at its LP
// the CRL-H helper must linearize in-flight operations from both sides —
// something a rename (which only breaks its source path) never needs.

#include <gtest/gtest.h>

#include "src/afs/op.h"
#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/crlh/gate.h"
#include "src/crlh/lin_check.h"
#include "src/crlh/monitor.h"
#include "src/crlh/op_thread.h"
#include "src/naive/naive_fs.h"
#include "src/retryfs/retry_fs.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

template <typename Fs>
class ExchangeSemanticsTest : public ::testing::Test {
 protected:
  Fs fs_;
};

using AllFileSystems = ::testing::Types<AtomFs, BigLockFs, NaiveFs, RetryFs, SpecFs>;
TYPED_TEST_SUITE(ExchangeSemanticsTest, AllFileSystems);

TYPED_TEST(ExchangeSemanticsTest, SwapsTwoFiles) {
  ASSERT_TRUE(WriteString(this->fs_, "/a", "AAA").ok());
  ASSERT_TRUE(WriteString(this->fs_, "/b", "BB").ok());
  ASSERT_TRUE(this->fs_.Exchange("/a", "/b").ok());
  EXPECT_EQ(ReadString(this->fs_, "/a").value(), "BB");
  EXPECT_EQ(ReadString(this->fs_, "/b").value(), "AAA");
}

TYPED_TEST(ExchangeSemanticsTest, SwapsFileWithDirectory) {
  ASSERT_TRUE(WriteString(this->fs_, "/f", "data").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  ASSERT_TRUE(this->fs_.Mknod("/d/inner").ok());
  ASSERT_TRUE(this->fs_.Exchange("/f", "/d").ok());
  EXPECT_EQ(this->fs_.Stat("/f")->type, FileType::kDir);
  EXPECT_TRUE(this->fs_.Stat("/f/inner").ok());
  EXPECT_EQ(ReadString(this->fs_, "/d").value(), "data");
}

TYPED_TEST(ExchangeSemanticsTest, SwapsAcrossDirectories) {
  ASSERT_TRUE(this->fs_.Mkdir("/x").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/y").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/y/deep").ok());
  ASSERT_TRUE(WriteString(this->fs_, "/x/one", "1").ok());
  ASSERT_TRUE(WriteString(this->fs_, "/y/deep/two", "2").ok());
  ASSERT_TRUE(this->fs_.Exchange("/x/one", "/y/deep/two").ok());
  EXPECT_EQ(ReadString(this->fs_, "/x/one").value(), "2");
  EXPECT_EQ(ReadString(this->fs_, "/y/deep/two").value(), "1");
}

TYPED_TEST(ExchangeSemanticsTest, ErrorCases) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/d/sub").ok());
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  // Roots.
  EXPECT_EQ(this->fs_.Exchange("/", "/f").code(), Errc::kBusy);
  EXPECT_EQ(this->fs_.Exchange("/f", "/").code(), Errc::kBusy);
  // Ancestor/descendant in either direction.
  EXPECT_EQ(this->fs_.Exchange("/d", "/d/sub").code(), Errc::kInval);
  EXPECT_EQ(this->fs_.Exchange("/d/sub", "/d").code(), Errc::kInval);
  // Missing endpoints (first path's resolution errors take precedence).
  EXPECT_EQ(this->fs_.Exchange("/missing", "/f").code(), Errc::kNoEnt);
  EXPECT_EQ(this->fs_.Exchange("/f", "/missing").code(), Errc::kNoEnt);
  EXPECT_EQ(this->fs_.Exchange("/no/parent", "/f").code(), Errc::kNoEnt);
  // A file used as a directory component.
  EXPECT_EQ(this->fs_.Exchange("/f/x", "/d/sub").code(), Errc::kNotDir);
  // Lexical ancestor check fires before resolution, like rename's EINVAL.
  EXPECT_EQ(this->fs_.Exchange("/f/x", "/f").code(), Errc::kInval);
}

TYPED_TEST(ExchangeSemanticsTest, SelfExchangeIsNoOp) {
  ASSERT_TRUE(WriteString(this->fs_, "/f", "same").ok());
  EXPECT_TRUE(this->fs_.Exchange("/f", "/f").ok());
  EXPECT_EQ(ReadString(this->fs_, "/f").value(), "same");
  EXPECT_EQ(this->fs_.Exchange("/nope", "/nope").code(), Errc::kNoEnt);
}

TYPED_TEST(ExchangeSemanticsTest, SameParentSwap) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  ASSERT_TRUE(WriteString(this->fs_, "/d/a", "A").ok());
  ASSERT_TRUE(WriteString(this->fs_, "/d/b", "B").ok());
  ASSERT_TRUE(this->fs_.Exchange("/d/a", "/d/b").ok());
  EXPECT_EQ(ReadString(this->fs_, "/d/a").value(), "B");
  EXPECT_EQ(ReadString(this->fs_, "/d/b").value(), "A");
}

// Differential: random exchanges mixed with the other ops agree with SpecFs.
TEST(ExchangeDifferential, MatchesSpecAcrossRandomSequences) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 10007);
    AtomFs fs;
    SpecFs spec;
    static const char* kNames[] = {"a", "b", "c"};
    auto random_path = [&rng]() {
      Path p;
      const size_t depth = rng.Between(1, 3);
      for (size_t i = 0; i < depth; ++i) {
        p.parts.emplace_back(kNames[rng.Below(3)]);
      }
      return p;
    };
    for (int i = 0; i < 400; ++i) {
      OpCall call;
      switch (rng.Below(5)) {
        case 0:
          call = OpCall::MkdirOf(random_path());
          break;
        case 1:
          call = OpCall::MknodOf(random_path());
          break;
        case 2:
          call = OpCall::ExchangeOf(random_path(), random_path());
          break;
        case 3:
          call = OpCall::UnlinkOf(random_path());
          break;
        default:
          call = OpCall::StatOf(random_path());
          break;
      }
      OpResult concrete = RunOp(fs, call);
      OpResult abstract = RunOp(spec, call);
      ASSERT_TRUE(ResultsEquivalent(call.kind, concrete, abstract))
          << call.ToString() << " concrete=" << concrete.ToString(call.kind)
          << " abstract=" << abstract.ToString(call.kind);
    }
    EXPECT_TRUE(StructurallyEqual(fs.SnapshotSpec(), spec));
    EXPECT_TRUE(spec.WellFormed());
  }
}

// --- concurrency: exchange as a helper op -----------------------------------

class ExchangeScenarioTest : public ::testing::Test {
 protected:
  void Build() {
    monitor_ = std::make_unique<CrlhMonitor>();
    tee_ = std::make_unique<TeeObserver>(monitor_.get(), &gate_);
    AtomFs::Options opts;
    opts.observer = tee_.get();
    fs_ = std::make_unique<AtomFs>(std::move(opts));
  }

  Inum InoOf(std::string_view path) { return fs_->Stat(path)->ino; }

  GateObserver gate_;
  std::unique_ptr<CrlhMonitor> monitor_;
  std::unique_ptr<TeeObserver> tee_;
  std::unique_ptr<AtomFs> fs_;
};

// The showcase: ops parked inside BOTH subtrees of an exchange must both be
// helped — a rename would only have to help its source side.
TEST_F(ExchangeScenarioTest, ExchangeHelpsBothSides) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/left").ok());
  ASSERT_TRUE(fs_->Mkdir("/left/sub").ok());
  ASSERT_TRUE(fs_->Mkdir("/right").ok());
  ASSERT_TRUE(fs_->Mkdir("/right/sub").ok());
  const Inum ino_left = InoOf("/left");
  const Inum ino_right = InoOf("/right");

  // One mkdir parked inside each subtree, each holding only its own sub dir.
  OpThread in_left([&] { EXPECT_TRUE(fs_->Mkdir("/left/sub/x").ok()); });
  gate_.Arm(in_left.tid(), GateObserver::Point::kLockReleased, ino_left);
  in_left.Go();
  gate_.WaitParked(in_left.tid());

  OpThread in_right([&] { EXPECT_TRUE(fs_->Mkdir("/right/sub/y").ok()); });
  gate_.Arm(in_right.tid(), GateObserver::Point::kLockReleased, ino_right);
  in_right.Go();
  gate_.WaitParked(in_right.tid());

  // The exchange swaps the two trees and must help BOTH parked mkdirs.
  EXPECT_TRUE(fs_->Exchange("/left", "/right").ok());
  EXPECT_EQ(monitor_->helped_ops(), 2u);

  gate_.Open(in_left.tid());
  in_left.Join();
  gate_.Open(in_right.tid());
  in_right.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  // The inserts landed in their (now swapped) subtrees.
  EXPECT_TRUE(fs_->Stat("/right/sub/x").ok());
  EXPECT_TRUE(fs_->Stat("/left/sub/y").ok());

  auto history = HistoryFromRecords(monitor_->Completed());
  EXPECT_TRUE(CheckLinearizable(history).linearizable);
}

// A rename in flight against an exchange of an ancestor: recursive
// dependency through the exchange's breaking paths.
TEST_F(ExchangeScenarioTest, ExchangeHelpsStatDeepInside) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/p").ok());
  ASSERT_TRUE(fs_->Mkdir("/p/q").ok());
  ASSERT_TRUE(WriteString(*fs_, "/p/q/f", "1234").ok());
  ASSERT_TRUE(fs_->Mkdir("/other").ok());
  const Inum ino_q = InoOf("/p/q");

  OpThread reader([&] {
    auto attr = fs_->Stat("/p/q/f");
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr->size, 4u);
  });
  gate_.Arm(reader.tid(), GateObserver::Point::kLockReleased, ino_q);
  reader.Go();
  gate_.WaitParked(reader.tid());

  EXPECT_TRUE(fs_->Exchange("/p", "/other").ok());
  EXPECT_EQ(monitor_->helped_ops(), 1u);

  gate_.Open(reader.tid());
  reader.Join();

  ASSERT_TRUE(monitor_->ok()) << monitor_->violations()[0];
  EXPECT_TRUE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
  EXPECT_TRUE(CheckLinearizable(HistoryFromRecords(monitor_->Completed())).linearizable);
}

// Monitored concurrent stress including exchanges.
TEST(ExchangeStress, RefinementHoldsUnderChurn) {
  CrlhMonitor monitor;
  AtomFs::Options opts;
  opts.observer = &monitor;
  AtomFs fs(std::move(opts));

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fs, t] {
      Rng rng(40001 + t);
      static const char* kNames[] = {"a", "b", "c", "d"};
      auto random_path = [&rng]() {
        Path p;
        const size_t depth = rng.Between(1, 3);
        for (size_t i = 0; i < depth; ++i) {
          p.parts.emplace_back(kNames[rng.Below(4)]);
        }
        return p;
      };
      for (int i = 0; i < 250; ++i) {
        OpCall call;
        switch (rng.Below(6)) {
          case 0:
            call = OpCall::MkdirOf(random_path());
            break;
          case 1:
            call = OpCall::ExchangeOf(random_path(), random_path());
            break;
          case 2:
            call = OpCall::RenameOf(random_path(), random_path());
            break;
          case 3:
            call = OpCall::StatOf(random_path());
            break;
          case 4:
            call = OpCall::MknodOf(random_path());
            break;
          default:
            call = OpCall::UnlinkOf(random_path());
            break;
        }
        RunOp(fs, call);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(monitor.ok()) << monitor.violations()[0];
  EXPECT_TRUE(monitor.CheckQuiescent(fs.SnapshotSpec()));
}

}  // namespace
}  // namespace atomfs
