// Parameterized I/O boundary sweeps: reads, writes and truncates at every
// interesting offset/length around block boundaries, on every file system,
// checked against the abstract specification. These are the cases where
// block-indexed storage implementations classically go wrong (off-by-one at
// block edges, stale tails after shrink+grow, hole zero-fill).

#include <gtest/gtest.h>

#include "src/afs/spec_fs.h"
#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/naive/naive_fs.h"
#include "src/retryfs/retry_fs.h"
#include "src/util/rand.h"
#include "src/vfs/limits.h"

namespace atomfs {
namespace {

// Offsets worth probing: around 0, around each of the first two block
// boundaries, and a deep offset.
std::vector<uint64_t> BoundaryOffsets() {
  std::vector<uint64_t> offsets;
  const uint64_t anchors[] = {0, kBlockSize, 2 * kBlockSize, 7 * kBlockSize};
  for (uint64_t anchor : anchors) {
    for (int64_t delta : {-2, -1, 0, 1, 2}) {
      const int64_t value = static_cast<int64_t>(anchor) + delta;
      if (value >= 0) {
        offsets.push_back(static_cast<uint64_t>(value));
      }
    }
  }
  return offsets;
}

std::vector<uint64_t> ProbeLengths() { return {1, 2, 255, kBlockSize, kBlockSize + 1}; }

struct SweepCase {
  uint64_t offset;
  uint64_t length;
};

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (uint64_t offset : BoundaryOffsets()) {
    for (uint64_t length : ProbeLengths()) {
      cases.push_back(SweepCase{offset, length});
    }
  }
  return cases;
}

template <typename Fs>
class IoSweepTest : public ::testing::Test {};

using AllFileSystems = ::testing::Types<AtomFs, BigLockFs, NaiveFs, RetryFs>;
TYPED_TEST_SUITE(IoSweepTest, AllFileSystems);

TYPED_TEST(IoSweepTest, WriteThenReadMatchesSpecAtEveryBoundary) {
  Rng rng(1234);
  TypeParam fs;
  SpecFs spec;
  ASSERT_TRUE(fs.Mknod("/f").ok());
  ASSERT_TRUE(spec.Mknod("/f").ok());
  for (const SweepCase& c : AllCases()) {
    std::vector<std::byte> payload(c.length);
    for (auto& b : payload) {
      b = static_cast<std::byte>(rng.Below(256));
    }
    auto w1 = fs.Write("/f", c.offset, std::span<const std::byte>(payload));
    auto w2 = spec.Write("/f", c.offset, std::span<const std::byte>(payload));
    ASSERT_EQ(w1.status().code(), w2.status().code()) << c.offset << "+" << c.length;
    // Read back a window straddling the write.
    const uint64_t read_off = c.offset > 3 ? c.offset - 3 : 0;
    std::vector<std::byte> got1(c.length + 6);
    std::vector<std::byte> got2(c.length + 6);
    auto r1 = fs.Read("/f", read_off, std::span<std::byte>(got1));
    auto r2 = spec.Read("/f", read_off, std::span<std::byte>(got2));
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    ASSERT_EQ(*r1, *r2) << c.offset << "+" << c.length;
    got1.resize(*r1);
    got2.resize(*r2);
    ASSERT_EQ(got1, got2) << c.offset << "+" << c.length;
    // Sizes stay in lockstep.
    ASSERT_EQ(fs.Stat("/f")->size, spec.Stat("/f")->size);
  }
}

TYPED_TEST(IoSweepTest, TruncateSweepMatchesSpec) {
  TypeParam fs;
  SpecFs spec;
  ASSERT_TRUE(fs.Mknod("/f").ok());
  ASSERT_TRUE(spec.Mknod("/f").ok());
  // Fill with a recognizable pattern first.
  std::vector<std::byte> pattern(3 * kBlockSize);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::byte>(i % 251 + 1);
  }
  ASSERT_TRUE(fs.Write("/f", 0, std::span<const std::byte>(pattern)).ok());
  ASSERT_TRUE(spec.Write("/f", 0, std::span<const std::byte>(pattern)).ok());
  // Alternate shrink/grow across boundaries; contents must match throughout.
  for (uint64_t size : {3 * kBlockSize - 1, kBlockSize + 1, kBlockSize, kBlockSize - 1,
                        uint64_t{1}, uint64_t{0}, kBlockSize + 5, 2 * kBlockSize,
                        4 * kBlockSize + 3}) {
    ASSERT_EQ(fs.Truncate("/f", size).code(), spec.Truncate("/f", size).code()) << size;
    std::vector<std::byte> got1(5 * kBlockSize);
    std::vector<std::byte> got2(5 * kBlockSize);
    auto r1 = fs.Read("/f", 0, std::span<std::byte>(got1));
    auto r2 = spec.Read("/f", 0, std::span<std::byte>(got2));
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    ASSERT_EQ(*r1, *r2) << size;
    got1.resize(*r1);
    got2.resize(*r2);
    ASSERT_EQ(got1, got2) << "after truncate to " << size;
  }
}

TYPED_TEST(IoSweepTest, ReadsNeverExceedEof) {
  TypeParam fs;
  ASSERT_TRUE(fs.Mknod("/f").ok());
  std::vector<std::byte> data(kBlockSize + 100, std::byte{0x5c});
  ASSERT_TRUE(fs.Write("/f", 0, std::span<const std::byte>(data)).ok());
  const uint64_t size = data.size();
  for (uint64_t offset : BoundaryOffsets()) {
    std::vector<std::byte> buf(2 * kBlockSize);
    auto n = fs.Read("/f", offset, std::span<std::byte>(buf));
    ASSERT_TRUE(n.ok());
    const uint64_t expect = offset >= size ? 0 : std::min<uint64_t>(buf.size(), size - offset);
    EXPECT_EQ(*n, expect) << "offset " << offset;
  }
}

// Path-parser property: parsing is idempotent through ToString.
class PathPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathPropertyTest, ParseToStringRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    // Random raw path from a small alphabet including separators and dots.
    static const char* kPieces[] = {"/", "a", "bb", ".", "..", "//", "c.d"};
    std::string raw = "/";
    const size_t pieces = rng.Between(1, 10);
    for (size_t p = 0; p < pieces; ++p) {
      raw += kPieces[rng.Below(7)];
    }
    auto first = ParsePath(raw);
    if (!first.ok()) {
      continue;  // over-long or malformed: fine
    }
    auto second = ParsePath(first->ToString());
    ASSERT_TRUE(second.ok()) << raw;
    EXPECT_EQ(*first, *second) << raw;
    EXPECT_EQ(first->ToString(), second->ToString()) << raw;
    // Normalized form contains no "." / ".." / empty components.
    for (const auto& part : second->parts) {
      EXPECT_TRUE(ValidateName(part).ok()) << raw;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathPropertyTest, ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace atomfs
