// Tests for the FD layer (src/vfs/vfs.h): open flags, cursors, and the
// path-re-resolution semantics of §5.4.

#include "src/vfs/vfs.h"

#include <gtest/gtest.h>

#include "src/core/atom_fs.h"

namespace atomfs {
namespace {

std::span<const std::byte> Bytes(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

class VfsTest : public ::testing::Test {
 protected:
  VfsTest() : vfs_(&fs_) {}

  std::string ReadAll(Fd fd, size_t cap = 256) {
    std::string out(cap, '\0');
    auto n = vfs_.Pread(fd, 0, std::as_writable_bytes(std::span<char>(out.data(), out.size())));
    EXPECT_TRUE(n.ok());
    out.resize(*n);
    return out;
  }

  AtomFs fs_;
  Vfs vfs_;
};

TEST_F(VfsTest, OpenCreateWriteReadClose) {
  auto fd = vfs_.Open("/f", OpenFlags::kCreate | OpenFlags::kWrite | OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  auto w = vfs_.Write(*fd, Bytes("hello"));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, 5u);
  EXPECT_EQ(ReadAll(*fd), "hello");
  EXPECT_TRUE(vfs_.Close(*fd).ok());
  EXPECT_EQ(vfs_.OpenCount(), 0u);
}

TEST_F(VfsTest, CursorAdvancesOnReadAndWrite) {
  auto fd = vfs_.Open("/f", OpenFlags::kCreate | OpenFlags::kWrite | OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("abc")).ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("def")).ok());
  EXPECT_EQ(ReadAll(*fd), "abcdef");
  ASSERT_TRUE(vfs_.Seek(*fd, 1).ok());
  std::string buf(2, '\0');
  auto n = vfs_.Read(*fd, std::as_writable_bytes(std::span<char>(buf.data(), 2)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf, "bc");
  // Cursor moved to 3; next read continues there.
  auto n2 = vfs_.Read(*fd, std::as_writable_bytes(std::span<char>(buf.data(), 2)));
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(buf, "de");
}

TEST_F(VfsTest, OpenFlagsSemantics) {
  // O_EXCL on existing file.
  ASSERT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_EQ(vfs_.Open("/f", OpenFlags::kCreate | OpenFlags::kExcl).status().code(),
            Errc::kExist);
  // O_CREAT on existing file is fine.
  EXPECT_TRUE(vfs_.Open("/f", OpenFlags::kCreate | OpenFlags::kRead).ok());
  // Missing file without O_CREAT.
  EXPECT_EQ(vfs_.Open("/g", OpenFlags::kRead).status().code(), Errc::kNoEnt);
  // O_TRUNC empties the file.
  ASSERT_TRUE(fs_.Write("/f", 0, Bytes("stale")).ok());
  auto fd = vfs_.Open("/f", OpenFlags::kWrite | OpenFlags::kTrunc | OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fs_.Stat("/f")->size, 0u);
  // Writing through a read-only fd is refused.
  auto ro = vfs_.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(vfs_.Write(*ro, Bytes("x")).status().code(), Errc::kAccess);
  EXPECT_EQ(vfs_.Ftruncate(*ro, 0).code(), Errc::kAccess);
}

TEST_F(VfsTest, AppendMode) {
  auto fd = vfs_.Open("/log", OpenFlags::kCreate | OpenFlags::kWrite | OpenFlags::kAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("one")).ok());
  // Another writer extends the file; our append still lands at the new end.
  ASSERT_TRUE(fs_.Write("/log", 3, Bytes("two")).ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("three")).ok());
  EXPECT_EQ(ReadString(fs_, "/log").value(), "onetwothree");
}

TEST_F(VfsTest, DirectoriesOpenReadOnly) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  ASSERT_TRUE(fs_.Mknod("/d/f").ok());
  EXPECT_EQ(vfs_.Open("/d", OpenFlags::kWrite).status().code(), Errc::kIsDir);
  auto fd = vfs_.Open("/d", OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  auto entries = vfs_.ReadDirFd(*fd);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "f");
}

TEST_F(VfsTest, BadFdErrors) {
  std::byte buf[4];
  EXPECT_EQ(vfs_.Read(99, buf).status().code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Write(99, Bytes("x")).status().code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Fstat(99).status().code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Close(99).code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Seek(99, 0).status().code(), Errc::kBadFd);
}

TEST_F(VfsTest, FdsAreDistinct) {
  auto fd1 = vfs_.Open("/a", OpenFlags::kCreate | OpenFlags::kWrite);
  auto fd2 = vfs_.Open("/b", OpenFlags::kCreate | OpenFlags::kWrite);
  ASSERT_TRUE(fd1.ok());
  ASSERT_TRUE(fd2.ok());
  EXPECT_NE(*fd1, *fd2);
  ASSERT_TRUE(vfs_.Write(*fd1, Bytes("one")).ok());
  ASSERT_TRUE(vfs_.Write(*fd2, Bytes("two")).ok());
  EXPECT_EQ(ReadString(fs_, "/a").value(), "one");
  EXPECT_EQ(ReadString(fs_, "/b").value(), "two");
}

// §5.4: an fd is a *path* handle. After a rename, access through the fd
// follows the old path — which may now name nothing (ENOENT) or a different
// file. This is the documented AtomFS/FUSE prototype behavior.
TEST_F(VfsTest, FdFollowsPathAcrossRename) {
  ASSERT_TRUE(WriteString(fs_, "/f", "original").ok());
  auto fd = vfs_.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Rename("/f", "/g").ok());
  std::byte buf[8];
  EXPECT_EQ(vfs_.Pread(*fd, 0, buf).status().code(), Errc::kNoEnt);
  // A new file appearing at the old path is what the fd now sees.
  ASSERT_TRUE(WriteString(fs_, "/f", "impostor").ok());
  EXPECT_EQ(ReadAll(*fd), "impostor");
}

TEST_F(VfsTest, FstatReResolves) {
  ASSERT_TRUE(WriteString(fs_, "/f", "12345").ok());
  auto fd = vfs_.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(vfs_.Fstat(*fd)->size, 5u);
  ASSERT_TRUE(fs_.Truncate("/f", 2).ok());
  EXPECT_EQ(vfs_.Fstat(*fd)->size, 2u);
}

}  // namespace
}  // namespace atomfs
