// Failure-injection tests: inode-allocation failures at random and
// adversarial points must leave the tree well formed, leak no inodes, and
// keep subsequent operations working — including under concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/atom_fs.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

TEST(FaultInjection, SingleFailureReturnsEnospcAndRecovers) {
  std::atomic<bool> fail_next{false};
  AtomFs::Options opts;
  opts.inject_alloc_failure = [&fail_next] { return fail_next.exchange(false); };
  AtomFs fs(std::move(opts));

  ASSERT_TRUE(fs.Mkdir("/d").ok());
  fail_next = true;
  EXPECT_EQ(fs.Mknod("/d/f").code(), Errc::kNoSpace);
  // The failure left nothing behind and nothing locked.
  EXPECT_EQ(fs.Stat("/d/f").status().code(), Errc::kNoEnt);
  EXPECT_EQ(fs.Stat("/d")->size, 0u);
  EXPECT_EQ(fs.InodeCount(), 2u);  // root + /d
  // The very next attempt succeeds.
  EXPECT_TRUE(fs.Mknod("/d/f").ok());
  EXPECT_TRUE(fs.SnapshotSpec().WellFormed());
}

TEST(FaultInjection, FailureDoesNotDisturbExistingEntries) {
  std::atomic<bool> fail_next{false};
  AtomFs::Options opts;
  opts.inject_alloc_failure = [&fail_next] { return fail_next.exchange(false); };
  AtomFs fs(std::move(opts));
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(WriteString(fs, "/d/keep", "data").ok());
  fail_next = true;
  EXPECT_EQ(fs.Mkdir("/d/new").code(), Errc::kNoSpace);
  EXPECT_EQ(ReadString(fs, "/d/keep").value(), "data");
  EXPECT_EQ(fs.Stat("/d")->size, 1u);
}

class RandomFaultTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFaultTest, RandomFailuresKeepTreeConsistent) {
  auto rng = std::make_shared<Rng>(GetParam());
  auto mu = std::make_shared<std::mutex>();
  AtomFs::Options opts;
  // ~20% of allocations fail.
  opts.inject_alloc_failure = [rng, mu] {
    std::lock_guard<std::mutex> lk(*mu);
    return rng->Chance(1, 5);
  };
  AtomFs fs(std::move(opts));

  Rng op_rng(GetParam() * 31 + 7);
  static const char* kNames[] = {"a", "b", "c"};
  auto random_path = [&op_rng]() {
    Path p;
    const size_t depth = op_rng.Between(1, 3);
    for (size_t i = 0; i < depth; ++i) {
      p.parts.emplace_back(kNames[op_rng.Below(3)]);
    }
    return p;
  };
  uint64_t enospc_count = 0;
  for (int i = 0; i < 600; ++i) {
    OpCall call;
    switch (op_rng.Below(5)) {
      case 0:
        call = OpCall::MkdirOf(random_path());
        break;
      case 1:
        call = OpCall::MknodOf(random_path());
        break;
      case 2:
        call = OpCall::UnlinkOf(random_path());
        break;
      case 3:
        call = OpCall::RenameOf(random_path(), random_path());
        break;
      default:
        call = OpCall::StatOf(random_path());
        break;
    }
    OpResult result = RunOp(fs, call);
    if (result.status.code() == Errc::kNoSpace) {
      ++enospc_count;
    }
  }
  EXPECT_GT(enospc_count, 0u);
  EXPECT_TRUE(fs.SnapshotSpec().WellFormed());
  // Inode accounting is exact: count the snapshot's inodes.
  EXPECT_EQ(fs.InodeCount(), fs.SnapshotSpec().imap().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFaultTest, ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(FaultInjection, ConcurrentFailuresStayConsistent) {
  std::atomic<uint32_t> tick{0};
  AtomFs::Options opts;
  opts.inject_alloc_failure = [&tick] {
    return tick.fetch_add(1, std::memory_order_relaxed) % 7 == 3;
  };
  AtomFs fs(std::move(opts));

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fs, t] {
      Rng rng(90001 + t);
      static const char* kNames[] = {"a", "b", "c", "d"};
      for (int i = 0; i < 400; ++i) {
        Path p;
        const size_t depth = rng.Between(1, 3);
        for (size_t j = 0; j < depth; ++j) {
          p.parts.emplace_back(kNames[rng.Below(4)]);
        }
        switch (rng.Below(4)) {
          case 0:
            fs.Mkdir(p);
            break;
          case 1:
            fs.Mknod(p);
            break;
          case 2:
            fs.Unlink(p);
            break;
          default:
            fs.Rmdir(p);
            break;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  auto snapshot = fs.SnapshotSpec();
  EXPECT_TRUE(snapshot.WellFormed());
  EXPECT_EQ(fs.InodeCount(), snapshot.imap().size());
}

}  // namespace
}  // namespace atomfs
