// Unit tests for effect recording, roll-back, and inum remapping
// (src/crlh/effects.h — the paper's §4.4 roll-back mechanism).

#include "src/crlh/effects.h"

#include <gtest/gtest.h>

#include "src/crlh/ghost.h"

namespace atomfs {
namespace {

std::vector<std::byte> Payload(std::string_view s) {
  const auto* b = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(b, b + s.size());
}

TEST(Effects, MkdirRecordsParentAndCreation) {
  SpecFs spec;
  std::vector<InodeEffect> fx;
  auto result = ApplyWithEffects(spec, OpCall::MkdirOf(*ParsePath("/d")), 777, &fx);
  EXPECT_TRUE(result.status.ok());
  // Two effects: the root gained a link, and inode 777 appeared.
  ASSERT_EQ(fx.size(), 2u);
  EXPECT_TRUE(spec.Find(777) != nullptr);
  auto resolved = spec.Resolve(*ParsePath("/d"));
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 777u);
}

TEST(Effects, RollbackUndoesMkdir) {
  SpecFs spec;
  SpecFs before = spec;
  std::vector<InodeEffect> fx;
  ApplyWithEffects(spec, OpCall::MkdirOf(*ParsePath("/d")), 777, &fx);
  RollbackEffects(spec, fx);
  EXPECT_TRUE(StructurallyEqual(spec, before));
  EXPECT_EQ(spec.Find(777), nullptr);
}

TEST(Effects, RollbackUndoesUnlinkRestoringContent) {
  SpecFs spec;
  ASSERT_TRUE(spec.Mknod("/f").ok());
  ASSERT_TRUE(spec.Write("/f", 0, std::span<const std::byte>(Payload("keep me"))).ok());
  SpecFs before = spec;
  std::vector<InodeEffect> fx;
  auto result = ApplyWithEffects(spec, OpCall::UnlinkOf(*ParsePath("/f")), kInvalidInum, &fx);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(spec.Stat("/f").status().code(), Errc::kNoEnt);
  RollbackEffects(spec, fx);
  EXPECT_TRUE(StructurallyEqual(spec, before));
  EXPECT_EQ(ReadString(spec, "/f").value(), "keep me");
}

TEST(Effects, RollbackUndoesRenameWithVictim) {
  SpecFs spec;
  ASSERT_TRUE(spec.Mknod("/src").ok());
  ASSERT_TRUE(spec.Mknod("/dst").ok());
  ASSERT_TRUE(spec.Write("/dst", 0, std::span<const std::byte>(Payload("victim"))).ok());
  SpecFs before = spec;
  std::vector<InodeEffect> fx;
  auto result = ApplyWithEffects(
      spec, OpCall::RenameOf(*ParsePath("/src"), *ParsePath("/dst")), kInvalidInum, &fx);
  EXPECT_TRUE(result.status.ok());
  RollbackEffects(spec, fx);
  EXPECT_TRUE(StructurallyEqual(spec, before));
  EXPECT_EQ(ReadString(spec, "/dst").value(), "victim");
}

TEST(Effects, RollbackUndoesWrite) {
  SpecFs spec;
  ASSERT_TRUE(spec.Mknod("/f").ok());
  ASSERT_TRUE(spec.Write("/f", 0, std::span<const std::byte>(Payload("old"))).ok());
  SpecFs before = spec;
  std::vector<InodeEffect> fx;
  ApplyWithEffects(spec, OpCall::WriteOf(*ParsePath("/f"), 0, Payload("NEWDATA")), kInvalidInum,
                   &fx);
  EXPECT_EQ(ReadString(spec, "/f").value(), "NEWDATA");
  RollbackEffects(spec, fx);
  EXPECT_TRUE(StructurallyEqual(spec, before));
}

TEST(Effects, FailedOpHasNoEffects) {
  SpecFs spec;
  std::vector<InodeEffect> fx;
  auto result = ApplyWithEffects(spec, OpCall::RmdirOf(*ParsePath("/nope")), kInvalidInum, &fx);
  EXPECT_EQ(result.status.code(), Errc::kNoEnt);
  EXPECT_TRUE(fx.empty());
}

TEST(Effects, ReadOnlyOpHasNoEffects) {
  SpecFs spec;
  ASSERT_TRUE(spec.Mkdir("/d").ok());
  std::vector<InodeEffect> fx;
  auto result = ApplyWithEffects(spec, OpCall::StatOf(*ParsePath("/d")), kInvalidInum, &fx);
  EXPECT_TRUE(result.status.ok());
  EXPECT_TRUE(fx.empty());
}

TEST(Effects, StackedRollbackInReverseOrder) {
  // Helped mkdir /a then helped mknod /a/f: rolling back in reverse order
  // restores the original empty tree.
  SpecFs spec;
  SpecFs before = spec;
  std::vector<InodeEffect> fx1;
  std::vector<InodeEffect> fx2;
  ApplyWithEffects(spec, OpCall::MkdirOf(*ParsePath("/a")), 100, &fx1);
  ApplyWithEffects(spec, OpCall::MknodOf(*ParsePath("/a/f")), 101, &fx2);
  RollbackEffects(spec, fx2);
  RollbackEffects(spec, fx1);
  EXPECT_TRUE(StructurallyEqual(spec, before));
}

TEST(Effects, RemapInumAcrossSpecAndEffects) {
  SpecFs spec;
  std::vector<InodeEffect> fx;
  ApplyWithEffects(spec, OpCall::MkdirOf(*ParsePath("/a")), kGhostInumBase, &fx);
  ApplyWithEffects(spec, OpCall::MknodOf(*ParsePath("/a/f")), kGhostInumBase + 1, &fx);
  // Placeholder for /a becomes concrete inum 42.
  RemapInum(spec, kGhostInumBase, 42);
  RemapInum(fx, kGhostInumBase, 42);
  auto resolved = spec.Resolve(*ParsePath("/a"));
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 42u);
  EXPECT_TRUE(spec.WellFormed());
  for (const auto& e : fx) {
    EXPECT_NE(e.ino, kGhostInumBase);
  }
}

TEST(Effects, ForcedInumUsedForMknod) {
  SpecFs spec;
  auto result = ApplyWithEffects(spec, OpCall::MknodOf(*ParsePath("/f")), 55, nullptr);
  EXPECT_TRUE(result.status.ok());
  auto resolved = spec.Resolve(*ParsePath("/f"));
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 55u);
}

}  // namespace
}  // namespace atomfs
