// Unit tests for the directory hash table (src/core/dir_table.h).

#include "src/core/dir_table.h"

#include <gtest/gtest.h>

#include <set>

#include "src/core/inode.h"
#include "src/sim/executor.h"

namespace atomfs {
namespace {

std::unique_ptr<Inode> MakeInode(Inum ino, FileType type = FileType::kFile) {
  return std::make_unique<Inode>(ino, type, Executor::Real().CreateLock(), 4);
}

TEST(DirTable, InsertFindRemove) {
  DirTable table(8);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.Find("a"), nullptr);

  EXPECT_TRUE(table.Insert("a", MakeInode(10)));
  EXPECT_EQ(table.size(), 1u);
  ASSERT_NE(table.Find("a"), nullptr);
  EXPECT_EQ(table.Find("a")->ino, 10u);

  auto removed = table.Remove("a");
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->ino, 10u);
  EXPECT_EQ(table.Find("a"), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(DirTable, DuplicateInsertRejected) {
  DirTable table(8);
  EXPECT_TRUE(table.Insert("a", MakeInode(1)));
  EXPECT_FALSE(table.Insert("a", MakeInode(2)));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find("a")->ino, 1u);
}

TEST(DirTable, RemoveMissingReturnsNull) {
  DirTable table(8);
  EXPECT_EQ(table.Remove("nope"), nullptr);
}

TEST(DirTable, SingleBucketChainsCorrectly) {
  // Every entry collides: exercises the linked-list path.
  DirTable table(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(table.Insert("n" + std::to_string(i), MakeInode(100 + i)));
  }
  EXPECT_EQ(table.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(table.Find("n" + std::to_string(i)), nullptr);
    EXPECT_EQ(table.Find("n" + std::to_string(i))->ino, static_cast<Inum>(100 + i));
  }
  // Remove from the middle of chains.
  for (int i = 0; i < 100; i += 2) {
    EXPECT_NE(table.Remove("n" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(table.size(), 50u);
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(table.Find("n" + std::to_string(i)), nullptr);
    } else {
      EXPECT_NE(table.Find("n" + std::to_string(i)), nullptr);
    }
  }
}

TEST(DirTable, ForEachVisitsAll) {
  DirTable table(16);
  for (int i = 0; i < 37; ++i) {
    EXPECT_TRUE(table.Insert("k" + std::to_string(i), MakeInode(i + 1)));
  }
  std::set<std::string> seen;
  table.ForEach([&seen](const std::string& name, const Inode* child) {
    EXPECT_NE(child, nullptr);
    seen.insert(name);
  });
  EXPECT_EQ(seen.size(), 37u);
}

TEST(DirTable, TakeAllDrainsOwnership) {
  DirTable table(4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(table.Insert("k" + std::to_string(i), MakeInode(i + 1)));
  }
  auto all = table.TakeAll();
  EXPECT_EQ(all.size(), 10u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find("k0"), nullptr);
}

TEST(DirTable, ZeroBucketRequestIsClamped) {
  DirTable table(0);
  EXPECT_TRUE(table.Insert("a", MakeInode(1)));
  EXPECT_NE(table.Find("a"), nullptr);
}

// --- optimistic (lock-free reader) lookups -----------------------------------

TEST(DirTable, FindOptimisticSeesPublishedEntries) {
  DirTable table(8);
  EXPECT_EQ(table.FindOptimistic("a"), nullptr);
  EXPECT_TRUE(table.Insert("a", MakeInode(10)));
  ASSERT_NE(table.FindOptimistic("a"), nullptr);
  EXPECT_EQ(table.FindOptimistic("a")->ino, 10u);
  // Remove unpublishes before unlinking: an optimistic reader can never see
  // an entry whose inode ownership has already been moved out.
  auto removed = table.Remove("a");
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(table.FindOptimistic("a"), nullptr);
}

TEST(DirTable, FindOptimisticWalksCollisionChains) {
  DirTable table(1);  // every entry collides
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(table.Insert("n" + std::to_string(i), MakeInode(100 + i)));
  }
  // Unlink every other entry mid-chain, then check both halves: removed
  // names invisible, survivors still reachable through the spliced chain.
  for (int i = 0; i < 50; i += 2) {
    EXPECT_NE(table.Remove("n" + std::to_string(i)), nullptr);
  }
  for (int i = 0; i < 50; ++i) {
    const Inode* found = table.FindOptimistic("n" + std::to_string(i));
    if (i % 2 == 0) {
      EXPECT_EQ(found, nullptr) << i;
    } else {
      ASSERT_NE(found, nullptr) << i;
      EXPECT_EQ(found->ino, static_cast<Inum>(100 + i));
    }
  }
}

TEST(DirTable, DeferredReclaimRetiresShellsUntilDestruction) {
  // With defer_reclaim the removed entries' shells stay allocated (an RCU
  // grace period of table lifetime), so a racing optimistic reader can keep
  // walking a chain through an unlinked entry. Single-threaded here: the
  // point is that reuse of a name after removal works and nothing leaks
  // (ASan covers the leak half when the table dies).
  DirTable table(4, /*defer_reclaim=*/true);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(table.Insert("k" + std::to_string(i), MakeInode(round * 100 + i + 1)));
    }
    EXPECT_EQ(table.size(), 20u);
    for (int i = 0; i < 20; ++i) {
      EXPECT_NE(table.Remove("k" + std::to_string(i)), nullptr);
    }
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.Find("k0"), nullptr);
    EXPECT_EQ(table.FindOptimistic("k0"), nullptr);
  }
}

}  // namespace
}  // namespace atomfs
