// Unit tests for the ghost-state algorithms: LockPath relations,
// linearize-before, and the helping set/order computation (paper §3.4/§5.2).

#include "src/crlh/ghost.h"

#include <gtest/gtest.h>

namespace atomfs {
namespace {

LockPath LP(std::initializer_list<Inum> inos) {
  LockPath lp;
  lp.inos = inos;
  return lp;
}

Descriptor SingleOp(OpKind kind, LockPath path) {
  Descriptor d;
  d.call.kind = kind;
  d.path = std::move(path);
  return d;
}

Descriptor RenameOp(LockPath src, LockPath dst) {
  Descriptor d;
  d.call.kind = OpKind::kRename;
  d.src_path = std::move(src);
  d.dst_path = std::move(dst);
  return d;
}

TEST(LockPath, PrefixRelations) {
  EXPECT_TRUE(LP({1, 2}).IsPrefixOf(LP({1, 2, 3})));
  EXPECT_TRUE(LP({1, 2}).IsPrefixOf(LP({1, 2})));
  EXPECT_FALSE(LP({1, 2}).IsStrictPrefixOf(LP({1, 2})));
  EXPECT_TRUE(LP({1, 2}).IsStrictPrefixOf(LP({1, 2, 3})));
  EXPECT_FALSE(LP({1, 3}).IsPrefixOf(LP({1, 2, 3})));
  EXPECT_FALSE(LP({1, 2, 3}).IsPrefixOf(LP({1, 2})));
  EXPECT_TRUE(LP({}).IsPrefixOf(LP({1})));
}

TEST(LinearizeBefore, DeeperThreadGoesFirst) {
  // Paper Fig. 4(b): t2 rename SrcPath (root,a,e); t3 stat LockPath
  // (root,a,e,f) => t3 linearizes before t2.
  Descriptor t2 = RenameOp(LP({1, 2, 3}), LP({1, 5, 6, 7}));
  Descriptor t3 = SingleOp(OpKind::kStat, LP({1, 2, 3, 4}));
  EXPECT_TRUE(LinearizeBefore(t3, t2));
  EXPECT_FALSE(LinearizeBefore(t2, t3));
}

TEST(LinearizeBefore, EqualPathsDoNotOrder) {
  Descriptor a = SingleOp(OpKind::kMkdir, LP({1, 2}));
  Descriptor b = SingleOp(OpKind::kStat, LP({1, 2}));
  EXPECT_FALSE(LinearizeBefore(a, b));
  EXPECT_FALSE(LinearizeBefore(b, a));
}

TEST(LinearizeBefore, DisjointPathsDoNotOrder) {
  Descriptor a = SingleOp(OpKind::kMkdir, LP({1, 2, 3}));
  Descriptor b = SingleOp(OpKind::kStat, LP({1, 5, 6}));
  EXPECT_FALSE(LinearizeBefore(a, b));
  EXPECT_FALSE(LinearizeBefore(b, a));
}

TEST(ComputeHelpOrder, EmptyWhenNoDependencies) {
  std::map<Tid, Descriptor> pool;
  pool[1] = RenameOp(LP({1, 2}), LP({1, 3}));
  pool[2] = SingleOp(OpKind::kMkdir, LP({1, 9, 10}));  // disjoint
  auto order = ComputeHelpOrder(1, pool);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(ComputeHelpOrder, DirectSrcPrefixDependency) {
  // Fig. 1: rename(/a, /e) with SrcPath (root, a#2); mkdir(/a/b/c) has
  // LockPath (root, a#2, b#3).
  std::map<Tid, Descriptor> pool;
  pool[1] = RenameOp(LP({1, 2}), LP({1}));
  pool[2] = SingleOp(OpKind::kMkdir, LP({1, 2, 3}));
  auto order = ComputeHelpOrder(1, pool);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 1u);
  EXPECT_EQ((*order)[0], 2u);
}

TEST(ComputeHelpOrder, RecursiveDependencyFig4c) {
  // Fig. 4(c): t1 rename(/b/c, /b/g)-ish helps t2 rename whose LockPath
  // contains t1's SrcPath; t3 stat depends on t2's SrcPath and must come
  // before t2 even though t3 has no relation with t1's SrcPath.
  //
  // Inode numbering: root=1, a=2, b=3, c=4, d=5, e=6, f=7.
  // t1: rename(/b,c -> /b,g): SrcPath (1,3,4), DestPath (1,3).
  // t2: rename(/a,e -> /b/c/d,e): SrcPath (1,2,6), DestPath (1,3,4,5).
  // t3: stat(/a/e/f): LockPath (1,2,6,7).
  std::map<Tid, Descriptor> pool;
  pool[1] = RenameOp(LP({1, 3, 4}), LP({1, 3}));
  pool[2] = RenameOp(LP({1, 2, 6}), LP({1, 3, 4, 5}));
  pool[3] = SingleOp(OpKind::kStat, LP({1, 2, 6, 7}));

  auto order = ComputeHelpOrder(1, pool);
  ASSERT_TRUE(order.has_value());
  // t2 depends on t1 via DestPath (1,3,4,5) extending SrcPath (1,3,4); t3
  // depends recursively through t2.
  ASSERT_EQ(order->size(), 2u);
  EXPECT_EQ((*order)[0], 3u);  // stat first
  EXPECT_EQ((*order)[1], 2u);  // then the dependent rename
}

TEST(ComputeHelpOrder, HelpedAndDoneThreadsExcluded) {
  std::map<Tid, Descriptor> pool;
  pool[1] = RenameOp(LP({1, 2}), LP({1}));
  pool[2] = SingleOp(OpKind::kMkdir, LP({1, 2, 3}));
  pool[2].state = AopState::kHelped;
  pool[3] = SingleOp(OpKind::kStat, LP({1, 2, 4}));
  pool[3].state = AopState::kDone;
  auto order = ComputeHelpOrder(1, pool);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(ComputeHelpOrder, OrderRespectsAllConstraints) {
  // Three ops at increasing depth below the rename source: deepest first.
  std::map<Tid, Descriptor> pool;
  pool[1] = RenameOp(LP({1, 2}), LP({1}));
  pool[2] = SingleOp(OpKind::kStat, LP({1, 2, 3}));
  pool[3] = SingleOp(OpKind::kStat, LP({1, 2, 3, 4}));
  pool[4] = SingleOp(OpKind::kStat, LP({1, 2, 3, 4, 5}));
  auto order = ComputeHelpOrder(1, pool);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 3u);
  EXPECT_EQ((*order)[0], 4u);
  EXPECT_EQ((*order)[1], 3u);
  EXPECT_EQ((*order)[2], 2u);
}

TEST(ComputeHelpOrder, ReportsWhyEachThreadIsHelped) {
  // Same pool as RecursiveDependencyFig4c: t2 is picked up in Step-1 (its
  // LockPath extends the renamer's SrcPath), t3 only via the Step-2 closure
  // (it extends t2's SrcPath, not t1's).
  std::map<Tid, Descriptor> pool;
  pool[1] = RenameOp(LP({1, 3, 4}), LP({1, 3}));
  pool[2] = RenameOp(LP({1, 2, 6}), LP({1, 3, 4, 5}));
  pool[3] = SingleOp(OpKind::kStat, LP({1, 2, 6, 7}));

  std::map<Tid, HelpReason> reasons;
  reasons[99] = HelpReason::kSrcPrefix;  // stale entry: must be cleared
  auto order = ComputeHelpOrder(1, pool, &reasons);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 2u);
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons.at(2), HelpReason::kSrcPrefix);
  EXPECT_EQ(reasons.at(3), HelpReason::kLockPathPrefix);
}

TEST(ComputeHelpOrder, DeterministicTieBreak) {
  // Two incomparable helped threads: smallest tid first.
  std::map<Tid, Descriptor> pool;
  pool[5] = RenameOp(LP({1, 2}), LP({1}));
  pool[9] = SingleOp(OpKind::kStat, LP({1, 2, 3}));
  pool[4] = SingleOp(OpKind::kStat, LP({1, 2, 7}));
  auto order = ComputeHelpOrder(5, pool);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 2u);
  EXPECT_EQ((*order)[0], 4u);
  EXPECT_EQ((*order)[1], 9u);
}

}  // namespace
}  // namespace atomfs
