// Functional tests for AtomFS (single-threaded semantics) plus a
// differential sweep against the abstract specification: random operation
// sequences must produce identical results and identical final trees.

#include "src/core/atom_fs.h"

#include <gtest/gtest.h>

#include "src/afs/op.h"
#include "src/afs/spec_fs.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

std::span<const std::byte> Bytes(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

class AtomFsTest : public ::testing::Test {
 protected:
  AtomFs fs_;
};

TEST_F(AtomFsTest, BasicTree) {
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mkdir("/a/b").ok());
  EXPECT_TRUE(fs_.Mknod("/a/b/f").ok());
  auto attr = fs_.Stat("/a/b/f");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, FileType::kFile);
  auto dir_attr = fs_.Stat("/a");
  ASSERT_TRUE(dir_attr.ok());
  EXPECT_EQ(dir_attr->type, FileType::kDir);
  EXPECT_EQ(dir_attr->size, 1u);
}

TEST_F(AtomFsTest, ErrorsMatchSpecSemantics) {
  EXPECT_EQ(fs_.Mkdir("/").code(), Errc::kExist);
  EXPECT_EQ(fs_.Mkdir("/x/y").code(), Errc::kNoEnt);
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_EQ(fs_.Mkdir("/f/y").code(), Errc::kNotDir);
  EXPECT_EQ(fs_.Rmdir("/f").code(), Errc::kNotDir);
  EXPECT_EQ(fs_.Unlink("/nope").code(), Errc::kNoEnt);
  EXPECT_EQ(fs_.Rmdir("/").code(), Errc::kBusy);
  EXPECT_EQ(fs_.Unlink("/").code(), Errc::kIsDir);
}

TEST_F(AtomFsTest, ReadWrite) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  ASSERT_TRUE(fs_.Write("/f", 0, Bytes("data!")).ok());
  auto text = ReadString(fs_, "/f");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "data!");
  EXPECT_TRUE(fs_.Truncate("/f", 2).ok());
  EXPECT_EQ(ReadString(fs_, "/f").value(), "da");
}

TEST_F(AtomFsTest, RenameBasic) {
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mkdir("/b").ok());
  EXPECT_TRUE(fs_.Mknod("/a/f").ok());
  ASSERT_TRUE(fs_.Write("/a/f", 0, Bytes("move me")).ok());
  EXPECT_TRUE(fs_.Rename("/a/f", "/b/g").ok());
  EXPECT_EQ(fs_.Stat("/a/f").status().code(), Errc::kNoEnt);
  EXPECT_EQ(ReadString(fs_, "/b/g").value(), "move me");
}

TEST_F(AtomFsTest, RenameDirSubtree) {
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mkdir("/a/deep").ok());
  EXPECT_TRUE(fs_.Mknod("/a/deep/f").ok());
  EXPECT_TRUE(fs_.Mkdir("/target").ok());
  EXPECT_TRUE(fs_.Rename("/a", "/target/moved").ok());
  EXPECT_TRUE(fs_.Stat("/target/moved/deep/f").ok());
}

TEST_F(AtomFsTest, RenameSameParent) {
  EXPECT_TRUE(fs_.Mkdir("/d").ok());
  EXPECT_TRUE(fs_.Mknod("/d/a").ok());
  EXPECT_TRUE(fs_.Rename("/d/a", "/d/b").ok());
  EXPECT_TRUE(fs_.Stat("/d/b").ok());
  EXPECT_EQ(fs_.Stat("/d/a").status().code(), Errc::kNoEnt);
}

TEST_F(AtomFsTest, RenameIntoOwnSubtreeRejected) {
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mkdir("/a/b").ok());
  EXPECT_EQ(fs_.Rename("/a", "/a/b/c").code(), Errc::kInval);
  EXPECT_EQ(fs_.Rename("/a/b", "/a").code(), Errc::kNotEmpty);
}

TEST_F(AtomFsTest, RenameReplacesEmptyDir) {
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mknod("/a/f").ok());
  EXPECT_TRUE(fs_.Mkdir("/b").ok());
  EXPECT_TRUE(fs_.Rename("/a", "/b").ok());
  EXPECT_TRUE(fs_.Stat("/b/f").ok());
}

TEST_F(AtomFsTest, RenameToSelf) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_TRUE(fs_.Rename("/f", "/f").ok());
  EXPECT_TRUE(fs_.Stat("/f").ok());
}

TEST_F(AtomFsTest, SnapshotMatchesSpecReplay) {
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mknod("/a/f").ok());
  ASSERT_TRUE(fs_.Write("/a/f", 0, Bytes("zz")).ok());
  SpecFs spec;
  EXPECT_TRUE(spec.Mkdir("/a").ok());
  EXPECT_TRUE(spec.Mknod("/a/f").ok());
  ASSERT_TRUE(spec.Write("/a/f", 0, Bytes("zz")).ok());
  EXPECT_TRUE(StructurallyEqual(fs_.SnapshotSpec(), spec));
}

TEST_F(AtomFsTest, InodeCountTracksLiveInodes) {
  EXPECT_EQ(fs_.InodeCount(), 1u);
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mknod("/a/f").ok());
  EXPECT_EQ(fs_.InodeCount(), 3u);
  EXPECT_TRUE(fs_.Unlink("/a/f").ok());
  EXPECT_TRUE(fs_.Rmdir("/a").ok());
  EXPECT_EQ(fs_.InodeCount(), 1u);
}

// --- differential testing against the spec ---------------------------------

// Generates a random plausible OpCall over a small name universe (collisions
// with existing paths are likely by construction, so error paths get heavy
// coverage too).
OpCall RandomCall(Rng& rng) {
  static const char* kNames[] = {"a", "b", "c", "d"};
  auto random_path = [&rng]() {
    Path p;
    const size_t depth = rng.Between(1, 3);
    for (size_t i = 0; i < depth; ++i) {
      p.parts.emplace_back(kNames[rng.Below(4)]);
    }
    return p;
  };
  switch (rng.Below(10)) {
    case 0:
      return OpCall::MkdirOf(random_path());
    case 1:
      return OpCall::MknodOf(random_path());
    case 2:
      return OpCall::RmdirOf(random_path());
    case 3:
      return OpCall::UnlinkOf(random_path());
    case 4:
      return OpCall::RenameOf(random_path(), random_path());
    case 5:
      return OpCall::StatOf(random_path());
    case 6:
      return OpCall::ReadDirOf(random_path());
    case 7:
      return OpCall::ReadOf(random_path(), rng.Below(64), rng.Between(1, 64));
    case 8: {
      std::vector<std::byte> payload(rng.Between(1, 64));
      for (auto& b : payload) {
        b = static_cast<std::byte>(rng.Below(256));
      }
      return OpCall::WriteOf(random_path(), rng.Below(64), std::move(payload));
    }
    default:
      return OpCall::TruncateOf(random_path(), rng.Below(128));
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AtomFsRefinesSpecSequentially) {
  Rng rng(GetParam());
  AtomFs fs;
  SpecFs spec;
  for (int i = 0; i < 400; ++i) {
    OpCall call = RandomCall(rng);
    OpResult concrete = RunOp(fs, call);
    OpResult abstract = RunOp(spec, call);
    ASSERT_TRUE(ResultsEquivalent(call.kind, concrete, abstract))
        << call.ToString() << ": concrete=" << concrete.ToString(call.kind)
        << " abstract=" << abstract.ToString(call.kind) << " (step " << i << ")";
  }
  EXPECT_TRUE(StructurallyEqual(fs.SnapshotSpec(), spec));
  EXPECT_TRUE(spec.WellFormed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                                           16));

// The optimistic (RCU) walk must be semantically invisible: the same
// differential sweep with enable_rcu_walk set. Sequentially every optimistic
// read either validates on the first attempt (nothing mutates concurrently)
// or misses a nonexistent path and falls back — both must produce exactly
// the spec's results.
class RcuDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RcuDifferentialTest, RcuWalkRefinesSpecSequentially) {
  Rng rng(GetParam());
  AtomFs::Options opts;
  opts.enable_rcu_walk = true;
  AtomFs fs(std::move(opts));
  SpecFs spec;
  for (int i = 0; i < 400; ++i) {
    OpCall call = RandomCall(rng);
    OpResult concrete = RunOp(fs, call);
    OpResult abstract = RunOp(spec, call);
    ASSERT_TRUE(ResultsEquivalent(call.kind, concrete, abstract))
        << call.ToString() << ": concrete=" << concrete.ToString(call.kind)
        << " abstract=" << abstract.ToString(call.kind) << " (step " << i << ")";
  }
  EXPECT_TRUE(StructurallyEqual(fs.SnapshotSpec(), spec));
  EXPECT_TRUE(spec.WellFormed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcuDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Regression test for the version-counter close discipline. Every writer
// opens a directory's version to odd and must close it back to even —
// including the same-parent rename and same-directory exchange paths, where
// source and destination directory are one node and a naive double
// open/close would leave the version odd forever. A leftover odd version is
// observable without exposing the counter: every later optimistic read of
// that directory would fail validation and fall back, so after a quiesced
// mutation storm a stat sweep must produce zero validation failures.
TEST(AtomFsRcuVersions, QuiescedVersionsStayEven) {
  MetricsRegistry registry;
  TracingObserver tracer(&registry);
  AtomFs::Options opts;
  opts.enable_rcu_walk = true;
  opts.observer = &tracer;
  AtomFs fs(std::move(opts));

  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Mkdir("/e").ok());
  ASSERT_TRUE(fs.Mknod("/d/f").ok());
  ASSERT_TRUE(fs.Mknod("/d/g").ok());
  ASSERT_TRUE(fs.Mknod("/e/h").ok());
  ASSERT_TRUE(fs.Rename("/d/f", "/d/f2").ok());   // same-parent rename
  ASSERT_TRUE(fs.Rename("/d/g", "/e/g2").ok());   // cross-parent rename
  ASSERT_TRUE(fs.Exchange("/d/f2", "/e/h").ok()); // cross-directory exchange
  ASSERT_TRUE(fs.Mknod("/e/i").ok());
  ASSERT_TRUE(fs.Exchange("/e/g2", "/e/i").ok()); // same-directory exchange
  ASSERT_TRUE(fs.Unlink("/e/i").ok());

  const uint64_t failures_before =
      registry.Snapshot().CounterValue("core.rcuwalk.validation_failures");
  const char* kPaths[] = {"/d", "/e", "/d/f2", "/e/h", "/e/g2"};
  for (const char* p : kPaths) {
    EXPECT_TRUE(fs.Stat(p).ok()) << p;
  }
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.validation_failures"), failures_before)
      << "a writer left a directory version odd: quiesced optimistic reads "
         "must validate on the first attempt";
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.fallbacks"), 0u);
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.unvalidated_reads"), 0u);
}

}  // namespace
}  // namespace atomfs
