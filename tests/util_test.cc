// Unit tests for the utility substrate: Status/Result, the PRNG, summary
// statistics, histograms, the per-op overhead decorator, and thread ids.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "src/core/atom_fs.h"
#include "src/util/json.h"
#include "src/util/rand.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/tid.h"
#include "src/vfs/overhead_fs.h"

namespace atomfs {
namespace {

TEST(Status, OkAndErrors) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), Errc::kOk);
  Status err(Errc::kNoEnt);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err, Status(Errc::kNoEnt));
  EXPECT_NE(err, ok);
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(Errc::kXDev); ++c) {
    EXPECT_NE(ErrcName(static_cast<Errc>(c)), "UNKNOWN") << c;
  }
}

TEST(ResultT, ValueAndStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());
  Result<int> bad(Errc::kBusy);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Errc::kBusy);
}

TEST(ResultT, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(100);
  bool differs = false;
  Rng a2(99);
  for (int i = 0; i < 16; ++i) {
    differs = differs || (a2.Next() != c.Next());
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundsRespected) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    const uint64_t v = rng.Between(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NameGeneratesLowercaseIdentifiers) {
  Rng rng(8);
  std::set<std::string> names;
  for (int i = 0; i < 50; ++i) {
    const std::string n = rng.Name(8);
    ASSERT_EQ(n.size(), 8u);
    for (char c : n) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
    names.insert(n);
  }
  EXPECT_GT(names.size(), 40u);  // collisions should be rare
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng rng(77);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Chance(1, 4) ? 1 : 0;
  }
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
}

TEST(Summary, WelfordMatchesDirectComputation) {
  Summary s;
  const double xs[] = {1, 2, 3, 4, 100};
  for (double x : xs) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 22.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Sample stddev of {1,2,3,4,100}.
  double mean = 22.0;
  double acc = 0;
  for (double x : xs) {
    acc += (x - mean) * (x - mean);
  }
  EXPECT_NEAR(s.stddev(), std::sqrt(acc / 4), 1e-9);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(LatencyHistogramTest, PercentilesAreMonotone) {
  LatencyHistogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    h.Add(rng.Between(100, 100000));
  }
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_GT(h.MeanNanos(), 0.0);
  EXPECT_LE(h.PercentileNanos(0.5), h.PercentileNanos(0.9));
  EXPECT_LE(h.PercentileNanos(0.9), h.PercentileNanos(0.99));
}

TEST(Padding, PadsAndTruncatesNothing) {
  EXPECT_EQ(PadLeft("x", 4), "   x");
  EXPECT_EQ(PadRight("x", 4), "x   ");
  EXPECT_EQ(PadLeft("long", 2), "long");
  EXPECT_EQ(FormatSeconds(1.5), "1.500");
}

TEST(CurrentTidTest, StablePerThreadUniqueAcrossThreads) {
  const Tid mine = CurrentTid();
  EXPECT_EQ(CurrentTid(), mine);
  Tid other = 0;
  std::thread t([&other] { other = CurrentTid(); });
  t.join();
  EXPECT_NE(other, 0u);
  EXPECT_NE(other, mine);
}

TEST(OverheadFsTest, ForwardsAllOperations) {
  AtomFs inner;
  OverheadFs fs(&inner, &Executor::Real(), /*per_op_ns=*/0);
  EXPECT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_TRUE(fs.Mknod("/d/f").ok());
  EXPECT_TRUE(WriteString(fs, "/d/f", "abc").ok());
  EXPECT_EQ(ReadString(fs, "/d/f").value(), "abc");
  EXPECT_TRUE(fs.Rename("/d/f", "/d/g").ok());
  EXPECT_TRUE(fs.Mknod("/d/f2").ok());
  EXPECT_TRUE(fs.Exchange("/d/g", "/d/f2").ok());
  EXPECT_TRUE(fs.Truncate("/d/g", 0).ok());
  EXPECT_EQ(fs.Stat("/d")->size, 2u);
  EXPECT_EQ(fs.ReadDir("/d")->size(), 2u);
  EXPECT_TRUE(fs.Unlink("/d/g").ok());
  EXPECT_TRUE(fs.Unlink("/d/f2").ok());
  EXPECT_TRUE(fs.Rmdir("/d").ok());
  // The inner fs saw everything.
  EXPECT_EQ(inner.InodeCount(), 1u);
}

TEST(JsonWriterTest, BuildsNestedDocument) {
  JsonWriter json;
  json.BeginObject();
  json.Field("name", "bench");
  json.Field("count", static_cast<uint64_t>(3));
  json.Field("ratio", 0.5);
  json.Field("ok", true);
  json.Key("values").BeginArray();
  json.Value(1).Value(2).Value(3);
  json.EndArray();
  json.Key("nested").BeginObject().Field("x", 1).EndObject();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"bench\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"values\":[1,2,3],\"nested\":{\"x\":1}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter json;
  json.BeginObject();
  json.Field("s", "a\"b\\c\nd");
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Value(std::nan(""));
  json.Value(1.0 / 0.0);
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(OverheadFsTest, RealOverheadCostsTime) {
  AtomFs inner;
  OverheadFs slow(&inner, &Executor::Real(), /*per_op_ns=*/200000);
  WallTimer timer;
  for (int i = 0; i < 50; ++i) {
    slow.Stat("/");
  }
  // 50 ops x 0.2ms >= 10ms of injected busy-wait.
  EXPECT_GE(timer.ElapsedNanos(), 10'000'000u);
}

}  // namespace
}  // namespace atomfs
