// Differential and linearizability tests for the baseline file systems:
// BigLockFs (the paper's §7.3 baseline), NaiveFs (spec-behind-a-mutex), and
// RetryFs (the Linux-VFS-style traversal-retry design of §5.1/§5.4).
//
// Sequential: every variant must agree with SpecFs on random op sequences.
// Concurrent: small random histories must pass the Wing&Gong checker.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/afs/op.h"
#include "src/biglock/big_lock_fs.h"
#include "src/crlh/lin_check.h"
#include "src/naive/naive_fs.h"
#include "src/retryfs/retry_fs.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

Path RandomPath(Rng& rng, size_t max_depth = 3) {
  static const char* kNames[] = {"a", "b", "c", "d"};
  Path p;
  const size_t depth = rng.Between(1, max_depth);
  for (size_t i = 0; i < depth; ++i) {
    p.parts.emplace_back(kNames[rng.Below(4)]);
  }
  return p;
}

OpCall RandomCall(Rng& rng) {
  switch (rng.Below(12)) {
    case 0:
    case 1:
      return OpCall::MkdirOf(RandomPath(rng));
    case 2:
      return OpCall::MknodOf(RandomPath(rng));
    case 3:
      return OpCall::RmdirOf(RandomPath(rng));
    case 4:
      return OpCall::UnlinkOf(RandomPath(rng));
    case 5:
    case 6:
      return OpCall::RenameOf(RandomPath(rng), RandomPath(rng));
    case 7:
      return OpCall::StatOf(RandomPath(rng));
    case 8:
      return OpCall::ReadDirOf(RandomPath(rng));
    case 9:
      return OpCall::ReadOf(RandomPath(rng), rng.Below(16), rng.Between(1, 32));
    default: {
      std::vector<std::byte> payload(rng.Between(1, 32));
      for (auto& b : payload) {
        b = static_cast<std::byte>(rng.Below(256));
      }
      return OpCall::WriteOf(RandomPath(rng), rng.Below(16), std::move(payload));
    }
  }
}

template <typename Fs>
class VariantSequentialTest : public ::testing::Test {};

using Variants = ::testing::Types<BigLockFs, NaiveFs, RetryFs>;
TYPED_TEST_SUITE(VariantSequentialTest, Variants);

TYPED_TEST(VariantSequentialTest, RefinesSpecSequentially) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    TypeParam fs;
    SpecFs spec;
    for (int i = 0; i < 300; ++i) {
      OpCall call = RandomCall(rng);
      OpResult concrete = RunOp(fs, call);
      OpResult abstract = RunOp(spec, call);
      ASSERT_TRUE(ResultsEquivalent(call.kind, concrete, abstract))
          << "seed " << seed << " step " << i << " " << call.ToString() << ": concrete="
          << concrete.ToString(call.kind) << " abstract=" << abstract.ToString(call.kind);
    }
    EXPECT_TRUE(StructurallyEqual(fs.SnapshotSpec(), spec)) << "seed " << seed;
  }
}

// Records (invoke, response) stamped histories for Wing&Gong checking.
class HistoryRecorder {
 public:
  void Run(FileSystem& fs, Tid tid, const OpCall& call) {
    const uint64_t invoke = clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    OpResult result = RunOp(fs, call);
    const uint64_t response = clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::lock_guard<std::mutex> lk(mu_);
    HistoryOp op;
    op.tid = tid;
    op.call = call;
    op.result = std::move(result);
    op.invoke_seq = invoke;
    op.response_seq = response;
    ops_.push_back(std::move(op));
  }

  std::vector<HistoryOp> Take() {
    std::lock_guard<std::mutex> lk(mu_);
    return ops_;
  }

 private:
  std::atomic<uint64_t> clock_{0};
  std::mutex mu_;
  std::vector<HistoryOp> ops_;
};

template <typename Fs>
class VariantConcurrentTest : public ::testing::Test {};

TYPED_TEST_SUITE(VariantConcurrentTest, Variants);

TYPED_TEST(VariantConcurrentTest, SmallHistoriesAreLinearizable) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    TypeParam fs;
    HistoryRecorder recorder;
    std::vector<std::thread> threads;
    for (Tid t = 1; t <= 3; ++t) {
      threads.emplace_back([&fs, &recorder, seed, t] {
        Rng rng(seed * 131 + t);
        for (int i = 0; i < 4; ++i) {
          recorder.Run(fs, t, RandomCall(rng));
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    auto verdict = CheckLinearizable(recorder.Take());
    EXPECT_FALSE(verdict.aborted) << "seed " << seed;
    EXPECT_TRUE(verdict.linearizable) << "seed " << seed;
  }
}

TEST(RetryFsTest, RetryCounterAdvancesUnderRenameChurn) {
  RetryFs fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/b").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs.Mknod("/a/f" + std::to_string(i)).ok());
  }
  std::thread churn([&fs] {
    for (int i = 0; i < 200; ++i) {
      fs.Rename("/a", "/c");
      fs.Rename("/c", "/a");
    }
  });
  std::thread walker([&fs] {
    for (int i = 0; i < 400; ++i) {
      fs.Stat("/a/f" + std::to_string(i % 50));
    }
  });
  churn.join();
  walker.join();
  EXPECT_TRUE(fs.SnapshotSpec().WellFormed());
}

TEST(BigLockFsTest, ConcurrentStressKeepsTreeWellFormed) {
  BigLockFs fs;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&fs, t] {
      Rng rng(7 + t);
      for (int i = 0; i < 300; ++i) {
        RunOp(fs, RandomCall(rng));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_TRUE(fs.SnapshotSpec().WellFormed());
}

TEST(RetryFsTest, ConcurrentStressKeepsTreeWellFormed) {
  RetryFs fs;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&fs, t] {
      Rng rng(17 + t);
      for (int i = 0; i < 300; ++i) {
        RunOp(fs, RandomCall(rng));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_TRUE(fs.SnapshotSpec().WellFormed());
}

TEST(NaiveFsTest, OverheadKnobDoesNotChangeSemantics) {
  NaiveFs::Options opts;
  opts.overhead_ns = 100;
  NaiveFs fs(opts);
  EXPECT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_TRUE(fs.Mknod("/d/f").ok());
  EXPECT_EQ(fs.Stat("/d")->size, 1u);
}

}  // namespace
}  // namespace atomfs
