// Tests for the convenience helpers in src/vfs/filesystem.cc (WriteString /
// ReadString / MkdirAll / RemoveAll) and for negative GoodAFS cases: the
// WellFormed checker must reject every class of malformed abstract state.

#include <gtest/gtest.h>

#include "src/afs/spec_fs.h"
#include "src/core/atom_fs.h"

namespace atomfs {
namespace {

TEST(FsHelpers, WriteStringCreatesAndOverwrites) {
  AtomFs fs;
  ASSERT_TRUE(WriteString(fs, "/f", "first").ok());
  EXPECT_EQ(ReadString(fs, "/f").value(), "first");
  // Overwrite with something shorter: no stale tail.
  ASSERT_TRUE(WriteString(fs, "/f", "2nd").ok());
  EXPECT_EQ(ReadString(fs, "/f").value(), "2nd");
}

TEST(FsHelpers, WriteStringFailsThroughMissingParent) {
  AtomFs fs;
  EXPECT_EQ(WriteString(fs, "/no/f", "x").code(), Errc::kNoEnt);
}

TEST(FsHelpers, ReadStringErrors) {
  AtomFs fs;
  EXPECT_EQ(ReadString(fs, "/missing").status().code(), Errc::kNoEnt);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_EQ(ReadString(fs, "/d").status().code(), Errc::kIsDir);
}

TEST(FsHelpers, MkdirAllCreatesChain) {
  AtomFs fs;
  ASSERT_TRUE(MkdirAll(fs, *ParsePath("/a/b/c/d")).ok());
  EXPECT_TRUE(fs.Stat("/a/b/c/d").ok());
  // Idempotent.
  EXPECT_TRUE(MkdirAll(fs, *ParsePath("/a/b/c/d")).ok());
  // Fails across a file component (the mkdir below the file reports it).
  ASSERT_TRUE(fs.Mknod("/a/file").ok());
  EXPECT_EQ(MkdirAll(fs, *ParsePath("/a/file/deep")).code(), Errc::kNotDir);
}

TEST(FsHelpers, RemoveAllDeletesSubtree) {
  AtomFs fs;
  ASSERT_TRUE(MkdirAll(fs, *ParsePath("/a/b/c")).ok());
  ASSERT_TRUE(WriteString(fs, "/a/b/f1", "x").ok());
  ASSERT_TRUE(WriteString(fs, "/a/b/c/f2", "y").ok());
  ASSERT_TRUE(RemoveAll(fs, *ParsePath("/a")).ok());
  EXPECT_EQ(fs.Stat("/a").status().code(), Errc::kNoEnt);
  EXPECT_EQ(fs.InodeCount(), 1u);  // nothing leaked
}

TEST(FsHelpers, RemoveAllOnFile) {
  AtomFs fs;
  ASSERT_TRUE(fs.Mknod("/f").ok());
  ASSERT_TRUE(RemoveAll(fs, *ParsePath("/f")).ok());
  EXPECT_EQ(fs.Stat("/f").status().code(), Errc::kNoEnt);
}

TEST(FsHelpers, RemoveAllMissing) {
  AtomFs fs;
  EXPECT_EQ(RemoveAll(fs, *ParsePath("/nope")).code(), Errc::kNoEnt);
}

// --- negative GoodAFS ---------------------------------------------------------

TEST(WellFormedNegative, DanglingLink) {
  SpecFs spec;
  ASSERT_TRUE(spec.Mkdir("/d").ok());
  spec.FindMutable(kRootInum)->links["ghost"] = 9999;  // target does not exist
  EXPECT_FALSE(spec.WellFormed());
}

TEST(WellFormedNegative, InodeReachableTwice) {
  SpecFs spec;
  ASSERT_TRUE(spec.Mkdir("/d").ok());
  const Inum d = *spec.Resolve(*ParsePath("/d"));
  spec.FindMutable(kRootInum)->links["alias"] = d;  // hard link: not a tree
  EXPECT_FALSE(spec.WellFormed());
}

TEST(WellFormedNegative, UnreachableInode) {
  SpecFs spec;
  SpecInode orphan;
  orphan.type = FileType::kFile;
  spec.imap_mutable().emplace(777, std::move(orphan));
  EXPECT_FALSE(spec.WellFormed());
}

TEST(WellFormedNegative, FileWithLinks) {
  SpecFs spec;
  ASSERT_TRUE(spec.Mknod("/f").ok());
  ASSERT_TRUE(spec.Mkdir("/d").ok());
  const Inum f = *spec.Resolve(*ParsePath("/f"));
  const Inum d = *spec.Resolve(*ParsePath("/d"));
  // Rewire so the file node carries a link.
  spec.FindMutable(f)->links["bogus"] = d;
  spec.FindMutable(kRootInum)->links.erase("d");
  EXPECT_FALSE(spec.WellFormed());
}

TEST(WellFormedNegative, CycleThroughRoot) {
  SpecFs spec;
  ASSERT_TRUE(spec.Mkdir("/d").ok());
  const Inum d = *spec.Resolve(*ParsePath("/d"));
  spec.FindMutable(d)->links["up"] = kRootInum;  // back edge
  EXPECT_FALSE(spec.WellFormed());
}

TEST(WellFormedNegative, MissingRoot) {
  SpecFs spec;
  spec.imap_mutable().erase(kRootInum);
  EXPECT_FALSE(spec.WellFormed());
}

TEST(WellFormedNegative, BadEntryName) {
  SpecFs spec;
  ASSERT_TRUE(spec.Mkdir("/d").ok());
  const Inum d = *spec.Resolve(*ParsePath("/d"));
  spec.FindMutable(kRootInum)->links[".."] = d;
  spec.FindMutable(kRootInum)->links.erase("d");
  EXPECT_FALSE(spec.WellFormed());
}

}  // namespace
}  // namespace atomfs
