// Unit tests for block-based file storage (src/core/file_data.h).

#include "src/core/file_data.h"

#include <gtest/gtest.h>

#include <cstring>

namespace atomfs {
namespace {

std::span<const std::byte> Bytes(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

std::string ToString(std::span<const std::byte> data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

TEST(FileData, EmptyFile) {
  FileData f;
  EXPECT_EQ(f.size(), 0u);
  std::byte buf[4];
  EXPECT_EQ(f.Read(0, buf), 0u);
}

TEST(FileData, WriteReadWithinOneBlock) {
  FileData f;
  auto w = f.Write(0, Bytes("hello"));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, 5u);
  EXPECT_EQ(f.size(), 5u);
  std::vector<std::byte> buf(5);
  EXPECT_EQ(f.Read(0, buf), 5u);
  EXPECT_EQ(ToString(buf), "hello");
}

TEST(FileData, WriteAcrossBlockBoundary) {
  FileData f;
  std::vector<std::byte> data(kBlockSize + 100, std::byte{0x7});
  ASSERT_TRUE(f.Write(kBlockSize - 50, data).ok());
  EXPECT_EQ(f.size(), 2 * kBlockSize + 50);
  std::vector<std::byte> buf(data.size());
  EXPECT_EQ(f.Read(kBlockSize - 50, buf), data.size());
  EXPECT_EQ(buf, data);
}

TEST(FileData, HoleReadsAsZeros) {
  FileData f;
  ASSERT_TRUE(f.Write(3 * kBlockSize, Bytes("x")).ok());
  std::vector<std::byte> buf(kBlockSize);
  EXPECT_EQ(f.Read(kBlockSize, buf), kBlockSize);
  for (auto b : buf) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(FileData, ShortReadAtEof) {
  FileData f;
  ASSERT_TRUE(f.Write(0, Bytes("abcdef")).ok());
  std::vector<std::byte> buf(100);
  EXPECT_EQ(f.Read(4, buf), 2u);
  EXPECT_EQ(f.Read(6, buf), 0u);
  EXPECT_EQ(f.Read(1000, buf), 0u);
}

TEST(FileData, TruncateShrinkZeroesTail) {
  FileData f;
  std::vector<std::byte> data(100, std::byte{0xff});
  ASSERT_TRUE(f.Write(0, data).ok());
  ASSERT_TRUE(f.Truncate(10).ok());
  EXPECT_EQ(f.size(), 10u);
  // Growing back must expose zeros, not stale bytes.
  ASSERT_TRUE(f.Truncate(100).ok());
  std::vector<std::byte> buf(90);
  EXPECT_EQ(f.Read(10, buf), 90u);
  for (auto b : buf) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(FileData, TruncateGrowZeroFills) {
  FileData f;
  ASSERT_TRUE(f.Truncate(2 * kBlockSize).ok());
  EXPECT_EQ(f.size(), 2 * kBlockSize);
  std::vector<std::byte> buf(2 * kBlockSize);
  EXPECT_EQ(f.Read(0, buf), 2 * kBlockSize);
  for (auto b : buf) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(FileData, MaxSizeEnforced) {
  FileData f;
  EXPECT_EQ(f.Write(kMaxFileSize, Bytes("x")).status().code(), Errc::kNoSpace);
  EXPECT_EQ(f.Truncate(kMaxFileSize + 1).code(), Errc::kNoSpace);
  EXPECT_TRUE(f.Truncate(kMaxFileSize).ok());
  EXPECT_EQ(f.size(), kMaxFileSize);
  EXPECT_TRUE(f.Truncate(0).ok());
}

TEST(FileData, BlocksSpanned) {
  EXPECT_EQ(FileData::BlocksSpanned(0, 0), 0u);
  EXPECT_EQ(FileData::BlocksSpanned(0, 1), 1u);
  EXPECT_EQ(FileData::BlocksSpanned(0, kBlockSize), 1u);
  EXPECT_EQ(FileData::BlocksSpanned(0, kBlockSize + 1), 2u);
  EXPECT_EQ(FileData::BlocksSpanned(kBlockSize - 1, 2), 2u);
}

TEST(FileData, ToBytesRoundTrip) {
  FileData f;
  ASSERT_TRUE(f.Write(0, Bytes("roundtrip")).ok());
  auto bytes = f.ToBytes();
  EXPECT_EQ(ToString(bytes), "roundtrip");
}

TEST(FileData, OverwriteInPlace) {
  FileData f;
  ASSERT_TRUE(f.Write(0, Bytes("aaaaaaa")).ok());
  ASSERT_TRUE(f.Write(2, Bytes("BB")).ok());
  EXPECT_EQ(ToString(f.ToBytes()), "aaBBaaa");
  EXPECT_EQ(f.size(), 7u);
}

}  // namespace
}  // namespace atomfs
