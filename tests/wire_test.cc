// Wire-protocol unit tests: exact round-trips for every message shape, and
// fuzz-style robustness — random byte streams, truncations, and bit flips
// must parse to a clean kProto error (or a valid message), never crash or
// read out of bounds. This is the ISSUE's malformed-frame contract at the
// deserializer level; tests/server_test.cc checks the same contract over a
// real socket.

#include "src/net/wire.h"

#include <gtest/gtest.h>

#include "src/util/rand.h"

namespace atomfs {
namespace {

std::span<const std::byte> Bytes(const std::vector<std::byte>& v) {
  return std::span<const std::byte>(v.data(), v.size());
}

// One representative request per opcode, with every field its op uses set
// to a non-default value so round-trips are discriminating.
std::vector<WireRequest> AllRequests() {
  std::vector<WireRequest> reqs;
  auto add = [&](WireOp op, auto&& fill) {
    WireRequest r;
    r.op = op;
    fill(r);
    reqs.push_back(std::move(r));
  };
  auto path = [](WireRequest& r) { r.path_a = "/some/deep/path"; };
  add(WireOp::kPing, [](WireRequest&) {});
  add(WireOp::kStats, [](WireRequest&) {});
  add(WireOp::kMetrics, [](WireRequest&) {});
  add(WireOp::kMkdir, path);
  add(WireOp::kMknod, path);
  add(WireOp::kRmdir, path);
  add(WireOp::kUnlink, path);
  add(WireOp::kStat, path);
  add(WireOp::kReadDir, path);
  add(WireOp::kRename, [](WireRequest& r) {
    r.path_a = "/a/b";
    r.path_b = "/c/d";
  });
  add(WireOp::kExchange, [](WireRequest& r) {
    r.path_a = "/x";
    r.path_b = "/y";
  });
  add(WireOp::kRead, [](WireRequest& r) {
    r.path_a = "/f";
    r.offset = 123456789;
    r.count = 4096;
  });
  add(WireOp::kWrite, [](WireRequest& r) {
    r.path_a = "/f";
    r.offset = 42;
    r.data = {std::byte{1}, std::byte{2}, std::byte{3}};
  });
  add(WireOp::kTruncate, [](WireRequest& r) {
    r.path_a = "/f";
    r.offset = 77;
  });
  add(WireOp::kOpen, [](WireRequest& r) {
    r.path_a = "/f";
    r.flags = 0x2b;
  });
  add(WireOp::kClose, [](WireRequest& r) { r.fd = 7; });
  add(WireOp::kFstat, [](WireRequest& r) { r.fd = 8; });
  add(WireOp::kFdReadDir, [](WireRequest& r) { r.fd = 9; });
  add(WireOp::kFdRead, [](WireRequest& r) {
    r.fd = 10;
    r.count = 512;
  });
  add(WireOp::kFdWrite, [](WireRequest& r) {
    r.fd = 11;
    r.data = {std::byte{0xff}, std::byte{0x00}};
  });
  add(WireOp::kFdPread, [](WireRequest& r) {
    r.fd = 12;
    r.offset = 5;
    r.count = 64;
  });
  add(WireOp::kFdPwrite, [](WireRequest& r) {
    r.fd = 13;
    r.offset = 6;
    r.data = {std::byte{0xaa}};
  });
  add(WireOp::kFtruncate, [](WireRequest& r) {
    r.fd = 14;
    r.offset = 99;
  });
  add(WireOp::kSeek, [](WireRequest& r) {
    r.fd = 15;
    r.offset = 1000;
  });
  add(WireOp::kHello, [](WireRequest& r) {
    r.proto_version = kWireProtoVersion;
    r.max_inflight = 32;
  });
  add(WireOp::kTxBegin, [](WireRequest&) {});
  add(WireOp::kTxCommit, [](WireRequest& r) { r.txid = 0x1122334455667788ULL; });
  add(WireOp::kTxAbort, [](WireRequest& r) { r.txid = 42; });
  add(WireOp::kMsgBatch, [](WireRequest& r) {
    WireRequest a;
    a.op = WireOp::kStat;
    a.path_a = "/batched/a";
    WireRequest b;
    b.op = WireOp::kWrite;
    b.path_a = "/batched/b";
    b.offset = 9;
    b.data = {std::byte{7}, std::byte{8}};
    r.batch = {std::move(a), std::move(b)};
  });
  return reqs;
}

// --- primitives --------------------------------------------------------------

TEST(WireReaderTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.U8(0xab);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I32(-42);
  w.Str("hello");
  w.Blob(std::vector<std::byte>{std::byte{9}, std::byte{8}});

  WireReader r(Bytes(w.buf()));
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  std::string s;
  std::vector<std::byte> blob;
  EXPECT_TRUE(r.U8(&u8));
  EXPECT_TRUE(r.U32(&u32));
  EXPECT_TRUE(r.U64(&u64));
  EXPECT_TRUE(r.I32(&i32));
  EXPECT_TRUE(r.Str(&s, 100));
  EXPECT_TRUE(r.Blob(&blob, 100));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(blob.size(), 2u);
}

TEST(WireReaderTest, ReadPastEndFailsAndLatches) {
  WireWriter w;
  w.U8(1);
  WireReader r(Bytes(w.buf()));
  uint32_t v = 0;
  EXPECT_FALSE(r.U32(&v));
  EXPECT_FALSE(r.ok());
  uint8_t b = 0;
  EXPECT_FALSE(r.U8(&b));  // failure is sticky
}

TEST(WireReaderTest, StringOverMaxLenRejected) {
  WireWriter w;
  w.Str("abcdefgh");
  WireReader r(Bytes(w.buf()));
  std::string s;
  EXPECT_FALSE(r.Str(&s, 4));
  EXPECT_FALSE(r.ok());
}

TEST(WireReaderTest, DeclaredLengthBeyondPayloadRejected) {
  WireWriter w;
  w.U32(1000);  // blob length prefix promising bytes that do not exist
  WireReader r(Bytes(w.buf()));
  std::vector<std::byte> blob;
  EXPECT_FALSE(r.Blob(&blob, 1u << 20));
}

// --- status mapping ----------------------------------------------------------

TEST(WireStatusTest, EveryErrcRoundTrips) {
  for (uint8_t raw = 0; raw <= static_cast<uint8_t>(Errc::kShardMoved); ++raw) {
    const Errc code = static_cast<Errc>(raw);
    EXPECT_EQ(ErrcOfWireStatus(WireStatusOf(code)), code) << ErrcName(code);
  }
}

TEST(WireStatusTest, NewStatusBytesAreStable) {
  // Wire values are protocol surface (docs/WIRE_PROTOCOL.md); they must
  // never be renumbered.
  EXPECT_EQ(WireStatusOf(Errc::kTimedOut), 15);
  EXPECT_EQ(WireStatusOf(Errc::kBackpressure), 16);
  EXPECT_EQ(WireStatusOf(Errc::kTxConflict), 17);
  EXPECT_EQ(WireStatusOf(Errc::kShardMoved), 18);
  EXPECT_EQ(ErrcOfWireStatus(15), Errc::kTimedOut);
  EXPECT_EQ(ErrcOfWireStatus(16), Errc::kBackpressure);
  EXPECT_EQ(ErrcOfWireStatus(17), Errc::kTxConflict);
  EXPECT_EQ(ErrcOfWireStatus(18), Errc::kShardMoved);
}

TEST(WireStatusTest, UnknownWireByteDegradesToProto) {
  EXPECT_EQ(ErrcOfWireStatus(200), Errc::kProto);
  EXPECT_EQ(ErrcOfWireStatus(255), Errc::kProto);
}

// --- request round-trips -----------------------------------------------------

TEST(WireRequestTest, AllOpsRoundTrip) {
  for (const WireRequest& req : AllRequests()) {
    auto encoded = EncodeRequest(req);
    auto parsed = ParseRequest(Bytes(encoded));
    ASSERT_TRUE(parsed.ok()) << WireOpName(req.op);
    EXPECT_EQ(parsed->op, req.op);
    EXPECT_EQ(parsed->path_a, req.path_a);
    EXPECT_EQ(parsed->path_b, req.path_b);
    EXPECT_EQ(parsed->offset, req.offset);
    EXPECT_EQ(parsed->count, req.count);
    EXPECT_EQ(parsed->flags, req.flags);
    EXPECT_EQ(parsed->fd, req.fd);
    EXPECT_EQ(parsed->data, req.data);
    EXPECT_EQ(parsed->proto_version, req.proto_version);
    EXPECT_EQ(parsed->max_inflight, req.max_inflight);
    EXPECT_EQ(parsed->txid, req.txid);
    ASSERT_EQ(parsed->batch.size(), req.batch.size());
    for (size_t i = 0; i < req.batch.size(); ++i) {
      EXPECT_EQ(parsed->batch[i].op, req.batch[i].op);
      EXPECT_EQ(parsed->batch[i].path_a, req.batch[i].path_a);
      EXPECT_EQ(parsed->batch[i].offset, req.batch[i].offset);
      EXPECT_EQ(parsed->batch[i].data, req.batch[i].data);
    }
  }
}

TEST(WireRequestTest, EveryTruncationRejected) {
  for (const WireRequest& req : AllRequests()) {
    const auto encoded = EncodeRequest(req);
    for (size_t cut = 0; cut < encoded.size(); ++cut) {
      std::vector<std::byte> prefix(encoded.begin(),
                                    encoded.begin() + static_cast<ptrdiff_t>(cut));
      auto parsed = ParseRequest(Bytes(prefix));
      EXPECT_FALSE(parsed.ok()) << WireOpName(req.op) << " cut at " << cut;
      EXPECT_EQ(parsed.status().code(), Errc::kProto);
    }
  }
}

TEST(WireRequestTest, TrailingGarbageRejected) {
  for (const WireRequest& req : AllRequests()) {
    auto encoded = EncodeRequest(req);
    encoded.push_back(std::byte{0x5a});
    auto parsed = ParseRequest(Bytes(encoded));
    EXPECT_FALSE(parsed.ok()) << WireOpName(req.op);
  }
}

TEST(WireRequestTest, UnknownOpcodeRejected) {
  for (uint16_t raw : {0, 24, 99, 200, 255}) {
    WireWriter w;
    w.U8(static_cast<uint8_t>(raw));
    auto parsed = ParseRequest(Bytes(w.buf()));
    if (WireOpKnown(static_cast<uint8_t>(raw))) {
      continue;  // not the subject here
    }
    EXPECT_FALSE(parsed.ok()) << raw;
  }
}

TEST(WireRequestTest, OversizedReadCountRejected) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(WireOp::kRead));
  w.Str("/f");
  w.U64(0);
  w.U32(kWireMaxFrameBytes + 1);
  auto parsed = ParseRequest(Bytes(w.buf()));
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Errc::kProto);
}

TEST(WireRequestTest, PathLongerThanLimitRejected) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(WireOp::kMkdir));
  w.Str(std::string(kMaxPathLen + 1, 'a'));
  EXPECT_FALSE(ParseRequest(Bytes(w.buf())).ok());
}

// --- HELLO handshake ---------------------------------------------------------

TEST(WireHelloTest, RoundTrips) {
  WireHello hello;
  hello.version = kWireProtoVersion;
  hello.max_inflight = 77;
  WireWriter w;
  EncodeHello(w, hello);
  WireReader r(Bytes(w.buf()));
  WireHello back;
  ASSERT_TRUE(ParseHello(r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.version, hello.version);
  EXPECT_EQ(back.max_inflight, hello.max_inflight);
}

TEST(WireHelloTest, V3CarriesTheCapabilityBitmask) {
  WireHello hello;
  hello.version = 3;
  hello.max_inflight = 12;
  hello.caps = kFsCapTxn | kFsCapSharding;
  WireWriter w;
  EncodeHello(w, hello);
  WireReader r(Bytes(w.buf()));
  WireHello back;
  ASSERT_TRUE(ParseHello(r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.caps, kFsCapTxn | kFsCapSharding);
}

TEST(WireHelloTest, V2BodyStaysCapsFreeAndParsesAsZero) {
  // A v2 peer's body must not grow the caps word (bodies are frozen per
  // opcode per version), and parsing one leaves caps = nothing advertised.
  WireHello hello;
  hello.version = 2;
  hello.max_inflight = 12;
  hello.caps = 0xffffffff;  // must not be encoded
  WireWriter w;
  EncodeHello(w, hello);
  EXPECT_EQ(w.buf().size(), 8u);
  WireReader r(Bytes(w.buf()));
  WireHello back;
  back.caps = 7;  // stale garbage the parser must clear
  ASSERT_TRUE(ParseHello(r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.caps, 0u);
}

TEST(WireHelloTest, ShortBodyRejected) {
  for (size_t len = 0; len < 8; ++len) {
    std::vector<std::byte> body(len, std::byte{0x11});
    WireReader r(Bytes(body));
    WireHello out;
    EXPECT_FALSE(ParseHello(r, &out)) << "len " << len;
  }
}

// --- MSGBATCH constraints ----------------------------------------------------

TEST(WireBatchTest, TransactionSequencePacksIntoOneBatch) {
  // The intended one-round-trip shape: TXBEGIN, the whole op sequence, and
  // TXCOMMIT packed into a single MSGBATCH frame.
  WireRequest batch;
  batch.op = WireOp::kMsgBatch;
  WireRequest begin;
  begin.op = WireOp::kTxBegin;
  WireRequest op;
  op.op = WireOp::kMkdir;
  op.path_a = "/t";
  WireRequest commit;
  commit.op = WireOp::kTxCommit;
  batch.batch = {begin, op, commit};
  auto parsed = ParseRequest(Bytes(EncodeRequest(batch)));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->batch.size(), 3u);
  EXPECT_EQ(parsed->batch[0].op, WireOp::kTxBegin);
  EXPECT_EQ(parsed->batch[1].op, WireOp::kMkdir);
  EXPECT_EQ(parsed->batch[2].op, WireOp::kTxCommit);
}

TEST(WireBatchTest, NestedBatchRejected) {
  WireRequest inner;
  inner.op = WireOp::kMsgBatch;
  WireRequest ping;
  ping.op = WireOp::kPing;
  inner.batch.push_back(ping);
  WireRequest outer;
  outer.op = WireOp::kMsgBatch;
  outer.batch.push_back(std::move(inner));
  auto parsed = ParseRequest(Bytes(EncodeRequest(outer)));
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Errc::kProto);
}

TEST(WireBatchTest, PackedHelloRejected) {
  WireRequest hello;
  hello.op = WireOp::kHello;
  hello.proto_version = kWireProtoVersion;
  WireRequest batch;
  batch.op = WireOp::kMsgBatch;
  batch.batch.push_back(std::move(hello));
  auto parsed = ParseRequest(Bytes(EncodeRequest(batch)));
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Errc::kProto);
}

TEST(WireBatchTest, EmptyBatchRejected) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(WireOp::kMsgBatch));
  w.U32(0);
  EXPECT_FALSE(ParseRequest(Bytes(w.buf())).ok());
}

TEST(WireBatchTest, CountAtCapAcceptedOverCapRejected) {
  WireRequest ping;
  ping.op = WireOp::kPing;
  WireRequest batch;
  batch.op = WireOp::kMsgBatch;
  for (uint32_t i = 0; i < kWireMaxBatchRequests; ++i) {
    batch.batch.push_back(ping);
  }
  auto at_cap = ParseRequest(Bytes(EncodeRequest(batch)));
  ASSERT_TRUE(at_cap.ok());
  EXPECT_EQ(at_cap->batch.size(), static_cast<size_t>(kWireMaxBatchRequests));

  batch.batch.push_back(ping);
  auto over_cap = ParseRequest(Bytes(EncodeRequest(batch)));
  EXPECT_FALSE(over_cap.ok());
  EXPECT_EQ(over_cap.status().code(), Errc::kProto);
}

// --- fuzz: random and bit-flipped byte streams -------------------------------

TEST(WireFuzzTest, RandomBytesNeverCrashTheRequestParser) {
  Rng rng(0xf00d);
  int accepted = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::byte> payload(rng.Below(64));
    for (auto& b : payload) {
      b = static_cast<std::byte>(rng.Below(256));
    }
    auto parsed = ParseRequest(Bytes(payload));
    if (parsed.ok()) {
      ++accepted;  // random bytes may form a legal request; that is fine
    } else {
      EXPECT_EQ(parsed.status().code(), Errc::kProto);
    }
  }
  // Sanity: the parser is strict enough that almost everything is rejected.
  EXPECT_LT(accepted, 2000);
}

TEST(WireFuzzTest, BitFlippedRequestsNeverCrashTheParser) {
  Rng rng(0xbeef);
  for (const WireRequest& req : AllRequests()) {
    const auto pristine = EncodeRequest(req);
    for (int iter = 0; iter < 200; ++iter) {
      auto mutated = pristine;
      // Flip 1-3 random bits.
      const int flips = 1 + static_cast<int>(rng.Below(3));
      for (int f = 0; f < flips; ++f) {
        const size_t byte_idx = rng.Below(mutated.size());
        mutated[byte_idx] ^= static_cast<std::byte>(1u << rng.Below(8));
      }
      ParseRequest(Bytes(mutated));  // must not crash; outcome is free
    }
  }
}

TEST(WireFuzzTest, RandomBytesNeverCrashTheResponseParsers) {
  Rng rng(0xcafe);
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::byte> payload(rng.Below(96));
    for (auto& b : payload) {
      b = static_cast<std::byte>(rng.Below(256));
    }
    {
      WireReader r(Bytes(payload));
      Attr attr;
      ParseAttr(r, &attr);
    }
    {
      WireReader r(Bytes(payload));
      std::vector<DirEntry> entries;
      ParseDirEntries(r, &entries);
    }
    {
      WireReader r(Bytes(payload));
      WireServerStats stats;
      ParseServerStats(r, &stats);
    }
    {
      WireReader r(Bytes(payload));
      WireHello hello;
      ParseHello(r, &hello);
    }
  }
}

// --- response payload round-trips --------------------------------------------

TEST(WireResponseTest, AttrRoundTrips) {
  Attr attr;
  attr.ino = 42;
  attr.type = FileType::kDir;
  attr.size = 7;
  WireWriter w;
  EncodeAttr(w, attr);
  WireReader r(Bytes(w.buf()));
  Attr back;
  ASSERT_TRUE(ParseAttr(r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back, attr);
}

TEST(WireResponseTest, DirEntriesRoundTrip) {
  std::vector<DirEntry> entries = {
      {"alpha", 10, FileType::kFile},
      {"beta", 11, FileType::kDir},
      {"gamma", 12, FileType::kFile},
  };
  WireWriter w;
  EncodeDirEntries(w, entries);
  WireReader r(Bytes(w.buf()));
  std::vector<DirEntry> back;
  ASSERT_TRUE(ParseDirEntries(r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back, entries);
}

TEST(WireResponseTest, ServerStatsRoundTrip) {
  WireServerStats stats;
  stats.connections_accepted = 17;
  stats.protocol_errors = 3;
  stats.ops.push_back({static_cast<uint8_t>(WireOp::kMkdir), 100, 1500, 1200, 9000, 20000});
  stats.ops.push_back({static_cast<uint8_t>(WireOp::kRead), 2000, 800, 700, 2000, 5000});
  WireWriter w;
  EncodeServerStats(w, stats);
  WireReader r(Bytes(w.buf()));
  WireServerStats back;
  ASSERT_TRUE(ParseServerStats(r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.connections_accepted, 17u);
  EXPECT_EQ(back.protocol_errors, 3u);
  ASSERT_EQ(back.ops.size(), 2u);
  EXPECT_EQ(back.ops[0].op, static_cast<uint8_t>(WireOp::kMkdir));
  EXPECT_EQ(back.ops[1].p999_ns, 5000u);
}

}  // namespace
}  // namespace atomfs
