// Unit tests for the abstract specification (src/afs/spec_fs.h): these
// define the reference semantics every concrete file system must refine.

#include "src/afs/spec_fs.h"

#include <gtest/gtest.h>

#include "src/afs/op.h"

namespace atomfs {
namespace {

std::span<const std::byte> Bytes(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

class SpecFsTest : public ::testing::Test {
 protected:
  SpecFs fs_;
};

TEST_F(SpecFsTest, FreshRootIsEmptyDir) {
  auto attr = fs_.Stat("/");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, FileType::kDir);
  EXPECT_EQ(attr->size, 0u);
  EXPECT_EQ(attr->ino, kRootInum);
  EXPECT_TRUE(fs_.WellFormed());
}

TEST_F(SpecFsTest, MkdirCreatesStatableDir) {
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  auto attr = fs_.Stat("/a");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, FileType::kDir);
  EXPECT_TRUE(fs_.WellFormed());
}

TEST_F(SpecFsTest, MkdirErrors) {
  EXPECT_EQ(fs_.Mkdir("/").code(), Errc::kExist);
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_EQ(fs_.Mkdir("/a").code(), Errc::kExist);
  EXPECT_EQ(fs_.Mkdir("/missing/x").code(), Errc::kNoEnt);
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_EQ(fs_.Mkdir("/f/x").code(), Errc::kNotDir);
  EXPECT_EQ(fs_.Mkdir("/f").code(), Errc::kExist);
}

TEST_F(SpecFsTest, MknodErrors) {
  EXPECT_EQ(fs_.Mknod("/").code(), Errc::kExist);
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_EQ(fs_.Mknod("/f").code(), Errc::kExist);
  EXPECT_EQ(fs_.Mknod("/f/x").code(), Errc::kNotDir);
}

TEST_F(SpecFsTest, RmdirSemantics) {
  EXPECT_EQ(fs_.Rmdir("/").code(), Errc::kBusy);
  EXPECT_EQ(fs_.Rmdir("/a").code(), Errc::kNoEnt);
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mkdir("/a/b").ok());
  EXPECT_EQ(fs_.Rmdir("/a").code(), Errc::kNotEmpty);
  EXPECT_TRUE(fs_.Rmdir("/a/b").ok());
  EXPECT_TRUE(fs_.Rmdir("/a").ok());
  EXPECT_EQ(fs_.Stat("/a").status().code(), Errc::kNoEnt);
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_EQ(fs_.Rmdir("/f").code(), Errc::kNotDir);
  EXPECT_TRUE(fs_.WellFormed());
}

TEST_F(SpecFsTest, UnlinkSemantics) {
  EXPECT_EQ(fs_.Unlink("/").code(), Errc::kIsDir);
  EXPECT_EQ(fs_.Unlink("/f").code(), Errc::kNoEnt);
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_TRUE(fs_.Unlink("/f").ok());
  EXPECT_EQ(fs_.Stat("/f").status().code(), Errc::kNoEnt);
  EXPECT_TRUE(fs_.Mkdir("/d").ok());
  EXPECT_EQ(fs_.Unlink("/d").code(), Errc::kIsDir);
}

TEST_F(SpecFsTest, RenameMovesFile) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  ASSERT_TRUE(fs_.Write("/f", 0, Bytes("hello")).ok());
  EXPECT_TRUE(fs_.Mkdir("/d").ok());
  EXPECT_TRUE(fs_.Rename("/f", "/d/g").ok());
  EXPECT_EQ(fs_.Stat("/f").status().code(), Errc::kNoEnt);
  auto attr = fs_.Stat("/d/g");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 5u);
  EXPECT_TRUE(fs_.WellFormed());
}

TEST_F(SpecFsTest, RenameMovesDirectorySubtree) {
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mkdir("/a/b").ok());
  EXPECT_TRUE(fs_.Mknod("/a/b/f").ok());
  EXPECT_TRUE(fs_.Mkdir("/x").ok());
  EXPECT_TRUE(fs_.Rename("/a", "/x/a2").ok());
  EXPECT_TRUE(fs_.Stat("/x/a2/b/f").ok());
  EXPECT_EQ(fs_.Stat("/a").status().code(), Errc::kNoEnt);
  EXPECT_TRUE(fs_.WellFormed());
}

TEST_F(SpecFsTest, RenameReplacesEmptyDirTarget) {
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  EXPECT_TRUE(fs_.Mkdir("/b").ok());
  EXPECT_TRUE(fs_.Mknod("/a/f").ok());
  EXPECT_TRUE(fs_.Rename("/a", "/b").ok());
  EXPECT_TRUE(fs_.Stat("/b/f").ok());
  EXPECT_EQ(fs_.Stat("/a").status().code(), Errc::kNoEnt);
  EXPECT_TRUE(fs_.WellFormed());
}

TEST_F(SpecFsTest, RenameErrors) {
  EXPECT_EQ(fs_.Rename("/", "/x").code(), Errc::kBusy);
  EXPECT_EQ(fs_.Rename("/x", "/").code(), Errc::kBusy);
  EXPECT_TRUE(fs_.Mkdir("/a").ok());
  // Moving a directory below itself.
  EXPECT_EQ(fs_.Rename("/a", "/a/b").code(), Errc::kInval);
  // Missing source.
  EXPECT_EQ(fs_.Rename("/zz", "/y").code(), Errc::kNoEnt);
  // Missing destination parent.
  EXPECT_EQ(fs_.Rename("/a", "/nope/y").code(), Errc::kNoEnt);
  // Directory onto non-empty directory.
  EXPECT_TRUE(fs_.Mkdir("/b").ok());
  EXPECT_TRUE(fs_.Mknod("/b/f").ok());
  EXPECT_EQ(fs_.Rename("/a", "/b").code(), Errc::kNotEmpty);
  // Directory onto file / file onto directory.
  EXPECT_TRUE(fs_.Mknod("/file").ok());
  EXPECT_EQ(fs_.Rename("/a", "/file").code(), Errc::kNotDir);
  EXPECT_EQ(fs_.Rename("/file", "/a").code(), Errc::kIsDir);
  // Renaming an ancestor onto a path inside it (dst above src).
  EXPECT_TRUE(fs_.Mkdir("/a/c").ok());
  EXPECT_EQ(fs_.Rename("/a/c", "/a").code(), Errc::kNotEmpty);
}

TEST_F(SpecFsTest, RenameToSelfIsNoOp) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_TRUE(fs_.Rename("/f", "/f").ok());
  EXPECT_TRUE(fs_.Stat("/f").ok());
  EXPECT_EQ(fs_.Rename("/g", "/g").code(), Errc::kNoEnt);
}

TEST_F(SpecFsTest, RenameFileReplacesFile) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_TRUE(fs_.Mknod("/g").ok());
  ASSERT_TRUE(fs_.Write("/f", 0, Bytes("AAA")).ok());
  EXPECT_TRUE(fs_.Rename("/f", "/g").ok());
  auto text = ReadString(fs_, "/g");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "AAA");
  EXPECT_TRUE(fs_.WellFormed());
}

TEST_F(SpecFsTest, ReadWriteRoundTrip) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  ASSERT_TRUE(fs_.Write("/f", 0, Bytes("hello world")).ok());
  auto text = ReadString(fs_, "/f");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello world");
}

TEST_F(SpecFsTest, WriteWithHoleZeroFills) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  ASSERT_TRUE(fs_.Write("/f", 10, Bytes("x")).ok());
  auto attr = fs_.Stat("/f");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 11u);
  std::vector<std::byte> buf(11);
  auto n = fs_.Read("/f", 0, std::span<std::byte>(buf));
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 11u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(buf[i], std::byte{0});
  }
  EXPECT_EQ(buf[10], std::byte{'x'});
}

TEST_F(SpecFsTest, ReadPastEofIsShort) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  ASSERT_TRUE(fs_.Write("/f", 0, Bytes("abc")).ok());
  std::vector<std::byte> buf(10);
  auto n = fs_.Read("/f", 2, std::span<std::byte>(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto n2 = fs_.Read("/f", 3, std::span<std::byte>(buf));
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST_F(SpecFsTest, WriteBeyondMaxFails) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_EQ(fs_.Write("/f", kMaxFileSize, Bytes("x")).status().code(), Errc::kNoSpace);
  EXPECT_EQ(fs_.Truncate("/f", kMaxFileSize + 1).code(), Errc::kNoSpace);
  EXPECT_TRUE(fs_.Truncate("/f", kMaxFileSize).ok());
}

TEST_F(SpecFsTest, DataOpsOnDirFail) {
  EXPECT_TRUE(fs_.Mkdir("/d").ok());
  std::vector<std::byte> buf(4);
  EXPECT_EQ(fs_.Read("/d", 0, std::span<std::byte>(buf)).status().code(), Errc::kIsDir);
  EXPECT_EQ(fs_.Write("/d", 0, Bytes("x")).status().code(), Errc::kIsDir);
  EXPECT_EQ(fs_.Truncate("/d", 0).code(), Errc::kIsDir);
}

TEST_F(SpecFsTest, TruncateShrinkAndGrow) {
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  ASSERT_TRUE(fs_.Write("/f", 0, Bytes("hello")).ok());
  EXPECT_TRUE(fs_.Truncate("/f", 2).ok());
  EXPECT_EQ(ReadString(fs_, "/f").value(), "he");
  EXPECT_TRUE(fs_.Truncate("/f", 4).ok());
  auto text = ReadString(fs_, "/f");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, std::string("he\0\0", 4));
}

TEST_F(SpecFsTest, ReadDirSortedWithTypes) {
  EXPECT_TRUE(fs_.Mkdir("/d").ok());
  EXPECT_TRUE(fs_.Mknod("/d/zebra").ok());
  EXPECT_TRUE(fs_.Mkdir("/d/apple").ok());
  auto entries = fs_.ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "apple");
  EXPECT_EQ((*entries)[0].type, FileType::kDir);
  EXPECT_EQ((*entries)[1].name, "zebra");
  EXPECT_EQ((*entries)[1].type, FileType::kFile);
  EXPECT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_EQ(fs_.ReadDir("/f").status().code(), Errc::kNotDir);
}

TEST_F(SpecFsTest, StructurallyEqualIgnoresInums) {
  SpecFs a;
  SpecFs b;
  EXPECT_TRUE(a.Mkdir("/d").ok());
  EXPECT_TRUE(a.Mknod("/d/f").ok());
  // Different allocation order in b.
  EXPECT_TRUE(b.Mknod("/tmp").ok());
  EXPECT_TRUE(b.Unlink("/tmp").ok());
  EXPECT_TRUE(b.Mkdir("/d").ok());
  EXPECT_TRUE(b.Mknod("/d/f").ok());
  EXPECT_TRUE(StructurallyEqual(a, b));
  EXPECT_TRUE(b.Mknod("/d/g").ok());
  EXPECT_FALSE(StructurallyEqual(a, b));
}

TEST_F(SpecFsTest, HashIsStructural) {
  SpecFs a;
  SpecFs b;
  EXPECT_TRUE(a.Mkdir("/d").ok());
  EXPECT_TRUE(b.Mknod("/x").ok());
  EXPECT_TRUE(b.Unlink("/x").ok());
  EXPECT_TRUE(b.Mkdir("/d").ok());
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_TRUE(b.Mkdir("/e").ok());
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST_F(SpecFsTest, RunOpDrivesAllKinds) {
  auto mkdir_res = RunOp(fs_, OpCall::MkdirOf(*ParsePath("/d")));
  EXPECT_TRUE(mkdir_res.status.ok());
  auto mknod_res = RunOp(fs_, OpCall::MknodOf(*ParsePath("/d/f")));
  EXPECT_TRUE(mknod_res.status.ok());
  std::vector<std::byte> payload{std::byte{1}, std::byte{2}};
  auto write_res = RunOp(fs_, OpCall::WriteOf(*ParsePath("/d/f"), 0, payload));
  EXPECT_TRUE(write_res.status.ok());
  EXPECT_EQ(write_res.nbytes, 2u);
  auto read_res = RunOp(fs_, OpCall::ReadOf(*ParsePath("/d/f"), 0, 8));
  EXPECT_TRUE(read_res.status.ok());
  EXPECT_EQ(read_res.nbytes, 2u);
  EXPECT_EQ(read_res.data, payload);
  auto stat_res = RunOp(fs_, OpCall::StatOf(*ParsePath("/d/f")));
  EXPECT_TRUE(stat_res.status.ok());
  EXPECT_EQ(stat_res.attr.size, 2u);
  auto readdir_res = RunOp(fs_, OpCall::ReadDirOf(*ParsePath("/d")));
  EXPECT_TRUE(readdir_res.status.ok());
  ASSERT_EQ(readdir_res.entries.size(), 1u);
  auto rename_res = RunOp(fs_, OpCall::RenameOf(*ParsePath("/d/f"), *ParsePath("/g")));
  EXPECT_TRUE(rename_res.status.ok());
  auto trunc_res = RunOp(fs_, OpCall::TruncateOf(*ParsePath("/g"), 1));
  EXPECT_TRUE(trunc_res.status.ok());
  auto unlink_res = RunOp(fs_, OpCall::UnlinkOf(*ParsePath("/g")));
  EXPECT_TRUE(unlink_res.status.ok());
  auto rmdir_res = RunOp(fs_, OpCall::RmdirOf(*ParsePath("/d")));
  EXPECT_TRUE(rmdir_res.status.ok());
  EXPECT_TRUE(fs_.WellFormed());
}

}  // namespace
}  // namespace atomfs
