// Tests for the RetryFs handle-based FD support (paper §5.4 discussion):
// reference-counted inode handles, unlinked-but-open semantics, and
// immunity of handle I/O to renames.

#include <gtest/gtest.h>

#include <thread>

#include "src/retryfs/retry_fs.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

std::span<const std::byte> Bytes(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

std::string ReadAll(RetryFs& fs, const RetryFs::HandleRef& h, size_t cap = 256) {
  std::string out(cap, '\0');
  auto n = fs.HandleRead(h, 0, std::as_writable_bytes(std::span<char>(out.data(), out.size())));
  EXPECT_TRUE(n.ok());
  out.resize(*n);
  return out;
}

class HandleTest : public ::testing::Test {
 protected:
  RetryFs fs_;
};

TEST_F(HandleTest, OpenReadWrite) {
  ASSERT_TRUE(WriteString(fs_, "/f", "hello").ok());
  auto h = fs_.OpenHandle(*ParsePath("/f"));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(ReadAll(fs_, *h), "hello");
  ASSERT_TRUE(fs_.HandleWrite(*h, 5, Bytes(" world")).ok());
  EXPECT_EQ(ReadAll(fs_, *h), "hello world");
  EXPECT_EQ(ReadString(fs_, "/f").value(), "hello world");
}

TEST_F(HandleTest, OpenMissingFails) {
  EXPECT_EQ(fs_.OpenHandle(*ParsePath("/nope")).status().code(), Errc::kNoEnt);
}

TEST_F(HandleTest, StatThroughHandle) {
  ASSERT_TRUE(WriteString(fs_, "/f", "1234").ok());
  auto h = fs_.OpenHandle(*ParsePath("/f"));
  ASSERT_TRUE(h.ok());
  auto attr = fs_.HandleStat(*h);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 4u);
  EXPECT_EQ(attr->type, FileType::kFile);
}

TEST_F(HandleTest, UnlinkedButOpenKeepsData) {
  // The POSIX pattern the paper's Sec. 5.4 highlights: unlink a file while
  // it is open; I/O through the handle keeps working on the pinned inode.
  ASSERT_TRUE(WriteString(fs_, "/tmpfile", "precious").ok());
  auto h = fs_.OpenHandle(*ParsePath("/tmpfile"));
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.Unlink("/tmpfile").ok());
  EXPECT_EQ(fs_.Stat("/tmpfile").status().code(), Errc::kNoEnt);
  // Handle I/O still works.
  EXPECT_EQ(ReadAll(fs_, *h), "precious");
  ASSERT_TRUE(fs_.HandleWrite(*h, 0, Bytes("PRECIOUS")).ok());
  EXPECT_EQ(ReadAll(fs_, *h), "PRECIOUS");
  // A new file under the old name is a different inode.
  ASSERT_TRUE(WriteString(fs_, "/tmpfile", "new").ok());
  EXPECT_EQ(ReadAll(fs_, *h), "PRECIOUS");
  EXPECT_EQ(ReadString(fs_, "/tmpfile").value(), "new");
}

TEST_F(HandleTest, HandleSurvivesRename) {
  // Unlike the path-based Vfs (which re-resolves and sees ENOENT after a
  // rename), a handle tracks the inode itself.
  ASSERT_TRUE(fs_.Mkdir("/a").ok());
  ASSERT_TRUE(WriteString(fs_, "/a/f", "stable").ok());
  auto h = fs_.OpenHandle(*ParsePath("/a/f"));
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_.Rename("/a", "/b").ok());
  EXPECT_EQ(ReadAll(fs_, *h), "stable");
  ASSERT_TRUE(fs_.HandleTruncate(*h, 2).ok());
  EXPECT_EQ(ReadString(fs_, "/b/f").value(), "st");
}

TEST_F(HandleTest, DirectoryHandleReadDir) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  ASSERT_TRUE(fs_.Mknod("/d/x").ok());
  auto h = fs_.OpenHandle(*ParsePath("/d"));
  ASSERT_TRUE(h.ok());
  auto entries = fs_.HandleReadDir(*h);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "x");
  // Data ops on a directory handle fail, and vice versa.
  std::byte buf[4];
  EXPECT_EQ(fs_.HandleRead(*h, 0, buf).status().code(), Errc::kIsDir);
  auto fh = fs_.OpenHandle(*ParsePath("/d/x"));
  ASSERT_TRUE(fh.ok());
  EXPECT_EQ(fs_.HandleReadDir(*fh).status().code(), Errc::kNotDir);
}

TEST_F(HandleTest, NullHandleIsBadFd) {
  RetryFs::HandleRef null_handle;
  std::byte buf[4];
  EXPECT_EQ(fs_.HandleRead(null_handle, 0, buf).status().code(), Errc::kBadFd);
  EXPECT_EQ(fs_.HandleWrite(null_handle, 0, Bytes("x")).status().code(), Errc::kBadFd);
  EXPECT_EQ(fs_.HandleStat(null_handle).status().code(), Errc::kBadFd);
  EXPECT_EQ(fs_.HandleTruncate(null_handle, 0).code(), Errc::kBadFd);
  EXPECT_EQ(fs_.HandleReadDir(null_handle).status().code(), Errc::kBadFd);
}

TEST_F(HandleTest, ConcurrentHandleIoDuringRenameChurn) {
  ASSERT_TRUE(fs_.Mkdir("/a").ok());
  ASSERT_TRUE(WriteString(fs_, "/a/f", std::string(4096, 'z')).ok());
  auto h = fs_.OpenHandle(*ParsePath("/a/f"));
  ASSERT_TRUE(h.ok());

  std::thread churn([this] {
    for (int i = 0; i < 300; ++i) {
      fs_.Rename("/a", "/b");
      fs_.Rename("/b", "/a");
    }
  });
  std::thread io([this, &h] {
    Rng rng(5);
    std::vector<std::byte> buf(512);
    for (int i = 0; i < 600; ++i) {
      if (rng.Chance(1, 2)) {
        EXPECT_TRUE(fs_.HandleRead(*h, rng.Below(4096 - 512), buf).ok());
      } else {
        EXPECT_TRUE(fs_.HandleWrite(*h, rng.Below(4096 - 512), buf).ok());
      }
    }
  });
  churn.join();
  io.join();
  EXPECT_TRUE(fs_.SnapshotSpec().WellFormed());
}

TEST_F(HandleTest, UnlinkedHandleIoDuringChurn) {
  // Delete the file out from under an active handle: the reference count
  // must keep the inode alive for the duration.
  ASSERT_TRUE(WriteString(fs_, "/victim", std::string(1024, 'v')).ok());
  auto h = fs_.OpenHandle(*ParsePath("/victim"));
  ASSERT_TRUE(h.ok());
  std::thread deleter([this] { EXPECT_TRUE(fs_.Unlink("/victim").ok()); });
  std::thread io([this, &h] {
    std::vector<std::byte> buf(128);
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(fs_.HandleRead(*h, 0, buf).ok());
    }
  });
  deleter.join();
  io.join();
  EXPECT_EQ(ReadAll(fs_, *h, 2048).size(), 1024u);
}

}  // namespace
}  // namespace atomfs
