// Randomized concurrency stress under full CRL-H monitoring.
//
// Many threads hammer a small shared namespace (to maximize conflicts and
// path inter-dependencies) while the monitor checks refinement and the
// Table-1 invariants online; afterwards the abstract and concrete trees must
// coincide. Small-history variants cross-check the monitor's verdict against
// the exhaustive Wing&Gong checker.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/core/atom_fs.h"
#include "src/crlh/lin_check.h"
#include "src/crlh/monitor.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

// Small namespace: up to depth 3 over 4 names, so concurrent renames
// constantly break each other's paths.
Path RandomPath(Rng& rng, size_t max_depth = 3) {
  static const char* kNames[] = {"a", "b", "c", "d"};
  Path p;
  const size_t depth = rng.Between(1, max_depth);
  for (size_t i = 0; i < depth; ++i) {
    p.parts.emplace_back(kNames[rng.Below(4)]);
  }
  return p;
}

OpCall RandomCall(Rng& rng) {
  switch (rng.Below(12)) {
    case 0:
    case 1:
      return OpCall::MkdirOf(RandomPath(rng));
    case 2:
      return OpCall::MknodOf(RandomPath(rng));
    case 3:
      return OpCall::RmdirOf(RandomPath(rng));
    case 4:
      return OpCall::UnlinkOf(RandomPath(rng));
    case 5:
    case 6:
    case 7:
      return OpCall::RenameOf(RandomPath(rng), RandomPath(rng));
    case 8:
      return OpCall::StatOf(RandomPath(rng));
    case 9:
      return OpCall::ReadDirOf(RandomPath(rng));
    case 10:
      return OpCall::ReadOf(RandomPath(rng), rng.Below(16), rng.Between(1, 32));
    default: {
      std::vector<std::byte> payload(rng.Between(1, 32));
      for (auto& b : payload) {
        b = static_cast<std::byte>(rng.Below(256));
      }
      return OpCall::WriteOf(RandomPath(rng), rng.Below(16), std::move(payload));
    }
  }
}

struct StressParams {
  uint64_t seed;
  int threads;
  int ops_per_thread;
};

class MonitoredStressTest : public ::testing::TestWithParam<StressParams> {};

TEST_P(MonitoredStressTest, RefinementAndInvariantsHold) {
  const StressParams params = GetParam();
  CrlhMonitor monitor;
  AtomFs::Options opts;
  opts.observer = &monitor;
  AtomFs fs(std::move(opts));

  std::vector<std::thread> threads;
  threads.reserve(params.threads);
  for (int t = 0; t < params.threads; ++t) {
    threads.emplace_back([&fs, &params, t] {
      Rng rng(params.seed * 1000003 + t);
      for (int i = 0; i < params.ops_per_thread; ++i) {
        RunOp(fs, RandomCall(rng));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  ASSERT_TRUE(monitor.ok()) << monitor.violations()[0];
  EXPECT_TRUE(monitor.CheckQuiescent(fs.SnapshotSpec()));
  EXPECT_TRUE(monitor.Helplist().empty());

  // The helper-derived linearization replays legally end-to-end.
  auto recs = monitor.Completed();
  std::vector<uint64_t> keys;
  keys.reserve(recs.size());
  for (const auto& r : recs) {
    keys.push_back(r.abs_seq);
  }
  auto history = HistoryFromRecords(recs);
  EXPECT_EQ(ReplayOrder(history, OrderBy(history, keys)), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MonitoredStressTest,
    ::testing::Values(StressParams{101, 4, 300}, StressParams{202, 4, 300},
                      StressParams{303, 8, 150}, StressParams{404, 8, 150},
                      StressParams{505, 2, 600}, StressParams{606, 6, 200},
                      StressParams{707, 3, 400}, StressParams{808, 5, 240}));

// Small histories: the monitor's accept verdict must agree with the
// exhaustive Wing&Gong ground truth.
class SmallHistoryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmallHistoryTest, MonitorAgreesWithWingGong) {
  CrlhMonitor::Options mopts;
  CrlhMonitor monitor(mopts);
  AtomFs::Options opts;
  opts.observer = &monitor;
  AtomFs fs(std::move(opts));

  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fs, t] {
      Rng rng(GetParam() * 7919 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        RunOp(fs, RandomCall(rng));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  ASSERT_TRUE(monitor.ok()) << monitor.violations()[0];
  auto verdict = CheckLinearizable(HistoryFromRecords(monitor.Completed()));
  EXPECT_FALSE(verdict.aborted);
  EXPECT_TRUE(verdict.linearizable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallHistoryTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// Deep-path stress: longer paths mean longer LockPaths and deeper helping
// chains through renames of intermediate directories.
TEST(DeepPathStress, RefinementHolds) {
  CrlhMonitor monitor;
  AtomFs::Options opts;
  opts.observer = &monitor;
  AtomFs fs(std::move(opts));

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fs, t] {
      Rng rng(31337 + t);
      for (int i = 0; i < 200; ++i) {
        OpCall call;
        if (rng.Chance(1, 3)) {
          call = OpCall::RenameOf(RandomPath(rng, 5), RandomPath(rng, 5));
        } else if (rng.Chance(1, 2)) {
          call = OpCall::MkdirOf(RandomPath(rng, 5));
        } else {
          call = OpCall::StatOf(RandomPath(rng, 5));
        }
        RunOp(fs, call);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(monitor.ok()) << monitor.violations()[0];
  EXPECT_TRUE(monitor.CheckQuiescent(fs.SnapshotSpec()));
}

// Unmonitored smoke under heavy thread counts: no deadlocks, no crashes, and
// a final well-formed tree.
TEST(UnmonitoredStress, SurvivesAndStaysWellFormed) {
  AtomFs fs;
  std::vector<std::thread> threads;
  for (int t = 0; t < 12; ++t) {
    threads.emplace_back([&fs, t] {
      Rng rng(99991 + t);
      for (int i = 0; i < 500; ++i) {
        RunOp(fs, RandomCall(rng));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_TRUE(fs.SnapshotSpec().WellFormed());
}

}  // namespace
}  // namespace atomfs
