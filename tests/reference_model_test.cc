// Property tests against independent reference models:
//   * DirTable  vs std::map<std::string, Inum>
//   * FileData  vs std::vector<std::byte>
// Randomized operation sequences must keep the implementation and the model
// in lockstep. Parameterized over seeds and (for DirTable) bucket counts so
// chain handling is exercised at every load factor.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/core/dir_table.h"
#include "src/core/file_data.h"
#include "src/core/inode.h"
#include "src/sim/executor.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

std::unique_ptr<Inode> MakeInode(Inum ino) {
  return std::make_unique<Inode>(ino, FileType::kFile, Executor::Real().CreateLock(), 4);
}

struct DirTableParams {
  uint64_t seed;
  uint32_t buckets;
};

class DirTableFuzz : public ::testing::TestWithParam<DirTableParams> {};

TEST_P(DirTableFuzz, MatchesMapModel) {
  Rng rng(GetParam().seed);
  DirTable table(GetParam().buckets);
  std::map<std::string, Inum> model;
  Inum next = 100;
  for (int step = 0; step < 3000; ++step) {
    const std::string name = "k" + std::to_string(rng.Below(64));
    switch (rng.Below(4)) {
      case 0: {  // insert
        const Inum ino = next++;
        const bool inserted = table.Insert(name, MakeInode(ino));
        const bool model_inserted = model.emplace(name, ino).second;
        ASSERT_EQ(inserted, model_inserted) << "step " << step;
        break;
      }
      case 1: {  // remove
        auto removed = table.Remove(name);
        auto it = model.find(name);
        if (it == model.end()) {
          ASSERT_EQ(removed, nullptr) << "step " << step;
        } else {
          ASSERT_NE(removed, nullptr) << "step " << step;
          ASSERT_EQ(removed->ino, it->second);
          model.erase(it);
        }
        break;
      }
      case 2: {  // find
        Inode* found = table.Find(name);
        auto it = model.find(name);
        if (it == model.end()) {
          ASSERT_EQ(found, nullptr) << "step " << step;
        } else {
          ASSERT_NE(found, nullptr) << "step " << step;
          ASSERT_EQ(found->ino, it->second);
        }
        break;
      }
      default: {  // size + full enumeration
        ASSERT_EQ(table.size(), model.size()) << "step " << step;
        std::map<std::string, Inum> seen;
        table.ForEach([&seen](const std::string& n, const Inode* child) {
          seen.emplace(n, child->ino);
        });
        ASSERT_EQ(seen, model) << "step " << step;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DirTableFuzz,
                         ::testing::Values(DirTableParams{1, 1}, DirTableParams{2, 1},
                                           DirTableParams{3, 2}, DirTableParams{4, 7},
                                           DirTableParams{5, 16}, DirTableParams{6, 64},
                                           DirTableParams{7, 257}, DirTableParams{8, 1024}));

class FileDataFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FileDataFuzz, MatchesVectorModel) {
  Rng rng(GetParam());
  FileData file;
  std::vector<std::byte> model;
  // Keep offsets within a few blocks so boundary cases are frequent.
  const uint64_t kMaxOff = 3 * kBlockSize;
  for (int step = 0; step < 1500; ++step) {
    switch (rng.Below(3)) {
      case 0: {  // write
        const uint64_t off = rng.Below(kMaxOff);
        std::vector<std::byte> data(rng.Between(1, 300));
        for (auto& b : data) {
          b = static_cast<std::byte>(rng.Below(256));
        }
        auto written = file.Write(off, data);
        ASSERT_TRUE(written.ok());
        if (off + data.size() > model.size()) {
          model.resize(off + data.size(), std::byte{0});
        }
        std::copy(data.begin(), data.end(), model.begin() + static_cast<ptrdiff_t>(off));
        break;
      }
      case 1: {  // read
        const uint64_t off = rng.Below(kMaxOff + 100);
        std::vector<std::byte> buf(rng.Between(1, 300));
        const size_t n = file.Read(off, buf);
        size_t expect = 0;
        if (off < model.size()) {
          expect = std::min(buf.size(), model.size() - static_cast<size_t>(off));
        }
        ASSERT_EQ(n, expect) << "step " << step;
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(buf[i], model[off + i]) << "step " << step << " byte " << i;
        }
        break;
      }
      default: {  // truncate
        const uint64_t size = rng.Below(kMaxOff);
        ASSERT_TRUE(file.Truncate(size).ok());
        model.resize(size, std::byte{0});
        break;
      }
    }
    ASSERT_EQ(file.size(), model.size()) << "step " << step;
  }
  ASSERT_EQ(file.ToBytes(), model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FileDataFuzz, ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace atomfs
