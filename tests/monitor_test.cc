// Direct unit tests of the CrlhMonitor event machine: we drive the observer
// API by hand (no file system) and check ghost-state maintenance, the
// AopState life cycle, and the self-diagnostics for malformed event streams.

#include "src/crlh/monitor.h"

#include <gtest/gtest.h>

namespace atomfs {
namespace {

OpCall Mkdir(std::string_view p) { return OpCall::MkdirOf(*ParsePath(p)); }
OpCall Stat(std::string_view p) { return OpCall::StatOf(*ParsePath(p)); }
OpCall Rename(std::string_view s, std::string_view d) {
  return OpCall::RenameOf(*ParsePath(s), *ParsePath(d));
}

OpResult Ok() {
  OpResult r;
  return r;
}

OpResult Err(Errc code) {
  OpResult r;
  r.status = Status(code);
  return r;
}

TEST(MonitorUnit, CleanSingleOpLifecycle) {
  CrlhMonitor m;
  m.OnOpBegin(1, Mkdir("/a"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  m.OnLp(1, /*created_ino=*/7);
  m.OnLockReleased(1, kRootInum);
  m.OnOpEnd(1, Ok());
  EXPECT_TRUE(m.ok()) << m.violations()[0];
  ASSERT_EQ(m.Completed().size(), 1u);
  EXPECT_FALSE(m.Completed()[0].helped);
  // The abstract tree contains /a with the concrete inum.
  auto resolved = m.AbstractState().Resolve(*ParsePath("/a"));
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 7u);
}

TEST(MonitorUnit, RefinementMismatchIsFlagged) {
  CrlhMonitor m;
  m.OnOpBegin(1, Mkdir("/a"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  m.OnLp(1, 7);
  m.OnLockReleased(1, kRootInum);
  m.OnOpEnd(1, Err(Errc::kExist));  // concrete claims EEXIST; abstract said OK
  EXPECT_FALSE(m.ok());
  EXPECT_NE(m.violations()[0].find("REFINEMENT"), std::string::npos);
}

TEST(MonitorUnit, OpEndWithoutLpIsFlagged) {
  CrlhMonitor m;
  m.OnOpBegin(1, Stat("/"));
  m.OnOpEnd(1, Ok());
  EXPECT_FALSE(m.ok());
  EXPECT_NE(m.violations()[0].find("without linearizing"), std::string::npos);
}

TEST(MonitorUnit, DoubleBeginIsFlagged) {
  CrlhMonitor m;
  m.OnOpBegin(1, Stat("/"));
  m.OnOpBegin(1, Stat("/"));
  EXPECT_FALSE(m.ok());
}

TEST(MonitorUnit, DoubleLpIsFlagged) {
  CrlhMonitor m;
  m.OnOpBegin(1, Stat("/"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  m.OnLp(1, kInvalidInum);
  m.OnLp(1, kInvalidInum);
  EXPECT_FALSE(m.ok());
}

TEST(MonitorUnit, EventsWithoutBeginAreFlagged) {
  CrlhMonitor m1;
  m1.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  EXPECT_FALSE(m1.ok());
  CrlhMonitor m2;
  m2.OnLp(1, kInvalidInum);
  EXPECT_FALSE(m2.ok());
  CrlhMonitor m3;
  m3.OnOpEnd(1, Ok());
  EXPECT_FALSE(m3.ok());
}

TEST(MonitorUnit, ReleasingUnheldLockIsFlagged) {
  CrlhMonitor m;
  m.OnOpBegin(1, Stat("/"));
  m.OnLockReleased(1, kRootInum);
  EXPECT_FALSE(m.ok());
}

TEST(MonitorUnit, FinishingWhileHoldingLocksIsFlagged) {
  CrlhMonitor m;
  m.OnOpBegin(1, Stat("/"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  m.OnLp(1, kInvalidInum);
  m.OnOpEnd(1, Ok());
  EXPECT_FALSE(m.ok());
}

TEST(MonitorUnit, LastLockedInvariantFlagsCouplingBreak) {
  CrlhMonitor m;
  m.OnOpBegin(1, Mkdir("/a/b"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  // Releasing the LockPath tip before the LP = coupling violated.
  m.OnLockReleased(1, kRootInum);
  EXPECT_FALSE(m.ok());
  EXPECT_NE(m.violations()[0].find("Last-locked-lockpath"), std::string::npos);
}

TEST(MonitorUnit, HelperLifecycleByHand) {
  // Thread 2: mkdir(/a/b) in flight, holding (root, a). Thread 1:
  // rename(/a, /c) reaches its LP and must help thread 2.
  CrlhMonitor m;
  // Ghost setup: /a exists with inum 5 (created by a prior op).
  m.OnOpBegin(3, Mkdir("/a"));
  m.OnLockAcquired(3, kRootInum, LockPathRole::kSingle);
  m.OnLp(3, 5);
  m.OnLockReleased(3, kRootInum);
  m.OnOpEnd(3, Ok());

  m.OnOpBegin(2, Mkdir("/a/b"));
  m.OnLockAcquired(2, kRootInum, LockPathRole::kSingle);
  m.OnLockAcquired(2, 5, LockPathRole::kSingle);
  m.OnLockReleased(2, kRootInum);

  m.OnOpBegin(1, Rename("/a", "/c"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kRenameCommon);
  m.OnLockAcquired(1, 5, LockPathRole::kRenameSrc);  // snode
  m.OnLp(1, kInvalidInum);
  EXPECT_EQ(m.helped_ops(), 1u);
  EXPECT_EQ(m.Helplist().size(), 1u);
  EXPECT_EQ(m.Helplist()[0], 2u);
  {
    auto d = m.GetDescriptor(2);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->state, AopState::kHelped);
    EXPECT_EQ(d->helper, 1u);
    EXPECT_FALSE(d->effects.empty());
    EXPECT_NE(d->placeholder, kInvalidInum);
  }
  m.OnLockReleased(1, 5);
  m.OnLockReleased(1, kRootInum);
  m.OnOpEnd(1, Ok());

  // Thread 2 finishes: concrete insert created inum 9.
  m.OnLp(2, 9);
  EXPECT_TRUE(m.Helplist().empty());
  m.OnLockReleased(2, 5);
  m.OnOpEnd(2, Ok());

  ASSERT_TRUE(m.ok()) << m.violations()[0];
  // Placeholder was remapped: /c/b has the concrete inum 9.
  auto resolved = m.AbstractState().Resolve(*ParsePath("/c/b"));
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 9u);
  auto recs = m.Completed();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_TRUE(recs[2].helped);  // the mkdir(/a/b)
  EXPECT_EQ(recs[2].helper, 1u);
}

TEST(MonitorUnit, FixedLpModeDoesNotHelp) {
  CrlhMonitor::Options opts;
  opts.fixed_lp_mode = true;
  CrlhMonitor m(opts);
  m.OnOpBegin(3, Mkdir("/a"));
  m.OnLockAcquired(3, kRootInum, LockPathRole::kSingle);
  m.OnLp(3, 5);
  m.OnLockReleased(3, kRootInum);
  m.OnOpEnd(3, Ok());

  m.OnOpBegin(2, Mkdir("/a/b"));
  m.OnLockAcquired(2, kRootInum, LockPathRole::kSingle);
  m.OnLockAcquired(2, 5, LockPathRole::kSingle);
  m.OnLockReleased(2, kRootInum);

  m.OnOpBegin(1, Rename("/a", "/c"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kRenameCommon);
  m.OnLockAcquired(1, 5, LockPathRole::kRenameSrc);
  m.OnLp(1, kInvalidInum);
  EXPECT_EQ(m.helped_ops(), 0u);
  EXPECT_TRUE(m.Helplist().empty());
}

TEST(MonitorUnit, RecordHistoryOffKeepsNoRecords) {
  CrlhMonitor::Options opts;
  opts.record_history = false;
  CrlhMonitor m(opts);
  m.OnOpBegin(1, Stat("/"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  m.OnLp(1, kInvalidInum);
  m.OnLockReleased(1, kRootInum);
  OpResult stat_ok;
  stat_ok.attr.type = FileType::kDir;
  m.OnOpEnd(1, stat_ok);
  EXPECT_TRUE(m.ok()) << m.violations()[0];
  EXPECT_TRUE(m.Completed().empty());
}

TEST(MonitorUnit, QuiescentMismatchDetected) {
  CrlhMonitor m;
  m.OnOpBegin(1, Mkdir("/a"));
  m.OnLockAcquired(1, kRootInum, LockPathRole::kSingle);
  m.OnLp(1, 7);
  m.OnLockReleased(1, kRootInum);
  m.OnOpEnd(1, Ok());
  SpecFs empty_tree;  // does not contain /a
  EXPECT_FALSE(m.CheckQuiescent(empty_tree));
}

}  // namespace
}  // namespace atomfs
