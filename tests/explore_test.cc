// Exhaustive schedule exploration tests: for small concurrent programs,
// *every* interleaving of the real AtomFS code must pass the full CRL-H
// verification (refinement, invariants, quiescent consistency). This is the
// closest a runtime checker gets to the paper's all-executions guarantee.

#include "src/crlh/explore.h"

#include "src/biglock/big_lock_fs.h"
#include "src/retryfs/retry_fs.h"

#include <gtest/gtest.h>

namespace atomfs {
namespace {

OpCall Mkdir(std::string_view p) { return OpCall::MkdirOf(*ParsePath(p)); }
OpCall Mknod(std::string_view p) { return OpCall::MknodOf(*ParsePath(p)); }
OpCall Rmdir(std::string_view p) { return OpCall::RmdirOf(*ParsePath(p)); }
OpCall Unlink(std::string_view p) { return OpCall::UnlinkOf(*ParsePath(p)); }
OpCall Stat(std::string_view p) { return OpCall::StatOf(*ParsePath(p)); }
OpCall Rename(std::string_view s, std::string_view d) {
  return OpCall::RenameOf(*ParsePath(s), *ParsePath(d));
}
OpCall Exchange(std::string_view a, std::string_view b) {
  return OpCall::ExchangeOf(*ParsePath(a), *ParsePath(b));
}

// Figure 1 as a program: every interleaving of mkdir(/a/b/c) and
// rename(/a, /e) must verify, and some schedules must require helping.
TEST(ExploreExhaustive, Fig1AllInterleavings) {
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/a/b").ok());
  };
  program.threads = {{Mkdir("/a/b/c")}, {Rename("/a", "/e")}};

  ExploreOptions options;
  options.wing_gong = true;
  auto stats = ExploreSchedules(program, options);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(stats.all_ok) << (stats.failure_messages.empty()
                                    ? "?"
                                    : stats.failure_messages[0]);
  EXPECT_GT(stats.executions, 1u);
  EXPECT_GT(stats.schedules_with_helping, 0u);
}

// Figure 4(a): disjoint ins/del — no schedule needs helping.
TEST(ExploreExhaustive, DisjointOpsNeverHelp) {
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/d").ok());
  };
  program.threads = {{Mkdir("/a/c")}, {Rmdir("/d")}};
  auto stats = ExploreSchedules(program);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(stats.all_ok);
  EXPECT_EQ(stats.schedules_with_helping, 0u);
}

// Two concurrent renames with crossing paths.
TEST(ExploreExhaustive, ConcurrentRenames) {
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/a/b").ok());
    ASSERT_TRUE(fs.Mkdir("/c").ok());
  };
  program.threads = {{Rename("/a/b", "/c/b2")}, {Rename("/a", "/z")}};
  ExploreOptions options;
  options.wing_gong = true;
  auto stats = ExploreSchedules(program, options);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(stats.all_ok) << (stats.failure_messages.empty()
                                    ? "?"
                                    : stats.failure_messages[0]);
}

// rename + del + ins (the Figure 8 triple under SAFE lock coupling): every
// interleaving is linearizable.
TEST(ExploreExhaustive, Fig8TripleUnderCoupling) {
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/a/b").ok());
    ASSERT_TRUE(fs.Mkdir("/a/b/c").ok());
  };
  program.threads = {{Mkdir("/a/b/c/d")}, {Rename("/a", "/i"), Rmdir("/i/b/c")}};
  ExploreOptions options;
  options.wing_gong = true;
  auto stats = ExploreSchedules(program, options);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(stats.all_ok) << (stats.failure_messages.empty()
                                    ? "?"
                                    : stats.failure_messages[0]);
}

// Exchange against operations in both of its subtrees.
TEST(ExploreExhaustive, ExchangeBothSides) {
  // The racing creations must sit one level below the exchanged entries:
  // with lock coupling, an op whose parent *is* the exchanged node
  // serializes against the exchange instead of being helped.
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/l").ok());
    ASSERT_TRUE(fs.Mkdir("/l/s").ok());
    ASSERT_TRUE(fs.Mkdir("/r").ok());
    ASSERT_TRUE(fs.Mkdir("/r/s").ok());
  };
  program.threads = {{Mknod("/l/s/x")}, {Mknod("/r/s/y")}, {Exchange("/l", "/r")}};
  ExploreOptions options;
  options.max_executions = 60000;
  auto stats = ExploreSchedules(program, options);
  EXPECT_TRUE(stats.all_ok) << (stats.failure_messages.empty()
                                    ? "?"
                                    : stats.failure_messages[0]);
  EXPECT_GT(stats.schedules_with_helping, 0u);
}

// Writer vs. reader vs. rename: read results must always be justified.
TEST(ExploreExhaustive, ReadWriteRenameTriangle) {
  std::vector<std::byte> payload{std::byte{'x'}, std::byte{'y'}};
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/d").ok());
    ASSERT_TRUE(fs.Mknod("/d/f").ok());
  };
  program.threads = {
      {OpCall::WriteOf(*ParsePath("/d/f"), 0, payload)},
      {OpCall::ReadOf(*ParsePath("/d/f"), 0, 4)},
      {Rename("/d", "/e")},
  };
  ExploreOptions options;
  options.max_executions = 60000;
  options.wing_gong = true;
  auto stats = ExploreSchedules(program, options);
  EXPECT_TRUE(stats.all_ok) << (stats.failure_messages.empty()
                                    ? "?"
                                    : stats.failure_messages[0]);
}

// Deletion racing a stat through the same directory.
TEST(ExploreExhaustive, DeleteVsStat) {
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/d").ok());
    ASSERT_TRUE(fs.Mknod("/d/f").ok());
  };
  program.threads = {{Unlink("/d/f")}, {Stat("/d/f")}};
  ExploreOptions options;
  options.wing_gong = true;
  auto stats = ExploreSchedules(program, options);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(stats.all_ok);
}

// The negative direction: with lock coupling disabled, exploration must
// AUTOMATICALLY find the paper's Figure 8 violation — no hand-crafted
// schedule required. This is the model-checking payoff: the same program
// that is clean under coupling (Fig8TripleUnderCoupling) has a discoverable
// non-linearizable schedule without it.
TEST(ExploreExhaustive, FindsFig8BugWithoutCoupling) {
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/a/b").ok());
    ASSERT_TRUE(fs.Mkdir("/a/b/c").ok());
  };
  program.threads = {{Mkdir("/a/b/c/d")}, {Rename("/a", "/i"), Rmdir("/i/b/c")}};
  program.unsafe_no_coupling = true;
  ExploreOptions options;
  // Last-locked-lockpath fires on every uncoupled schedule by construction;
  // disable invariants so the first recorded failure is the interesting
  // (non-linearizable) schedule.
  options.check_invariants = false;
  auto stats = ExploreSchedules(program, options);
  EXPECT_FALSE(stats.all_ok);
  ASSERT_FALSE(stats.failure_messages.empty());
  // The discovered failure is the one the paper predicts.
  bool found_expected = false;
  for (const auto& msg : stats.failure_messages) {
    if (msg.find("REFINEMENT") != std::string::npos ||
        msg.find("quiescent") != std::string::npos) {
      found_expected = true;
    }
  }
  EXPECT_TRUE(found_expected) << stats.failure_messages[0];
  EXPECT_FALSE(stats.failing_script.empty());
}

// Generic (Wing&Gong-based) exploration: RetryFs has no CRL-H events, so
// its schedules are verified purely from invoke/response histories. A clean
// exhaustive run doubles as a deadlock-freedom certificate (the simulator
// aborts on deadlock).
TEST(ExploreGenericWingGong, RetryFsRenameVsMkdirAllSchedules) {
  GenericFs factory;
  factory.make = [](Executor* ex) {
    RetryFs::Options o;
    o.executor = ex;
    return std::make_unique<RetryFs>(o);
  };
  ConcurrentProgram program;
  program.setup_ops = {Mkdir("/a"), Mkdir("/a/b")};
  program.threads = {{Mkdir("/a/b/c")}, {Rename("/a", "/e")}};
  auto stats = ExploreSchedulesWingGong(factory, program);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(stats.all_ok) << (stats.failure_messages.empty()
                                    ? "?"
                                    : stats.failure_messages[0]);
  EXPECT_GT(stats.executions, 1u);
}

TEST(ExploreGenericWingGong, BigLockFsIsTriviallyLinearizable) {
  GenericFs factory;
  factory.make = [](Executor* ex) {
    BigLockFs::Options o;
    o.executor = ex;
    return std::make_unique<BigLockFs>(o);
  };
  ConcurrentProgram program;
  program.setup_ops = {Mkdir("/a"), Mkdir("/a/b")};
  program.threads = {{Mkdir("/a/b/c"), Unlink("/a/b/c")}, {Rename("/a", "/e")}};
  auto stats = ExploreSchedulesWingGong(factory, program);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(stats.all_ok) << (stats.failure_messages.empty()
                                    ? "?"
                                    : stats.failure_messages[0]);
}

// Deadlock-freedom of the rename locking protocol: two renames whose source
// and destination subtrees CROSS (the classic two-lock inversion pattern) —
// every schedule must complete (no simulator deadlock abort) and be
// linearizable. AtomFS avoids the inversion by holding the last common
// inode while acquiring both parents (Sec. 5.2).
TEST(ExploreExhaustive, CrossingRenamesAreDeadlockFree) {
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/a/x").ok());
    ASSERT_TRUE(fs.Mkdir("/b").ok());
    ASSERT_TRUE(fs.Mkdir("/b/y").ok());
  };
  program.threads = {{Rename("/a/x", "/b/x2")}, {Rename("/b/y", "/a/y2")}};
  ExploreOptions options;
  options.wing_gong = true;
  auto stats = ExploreSchedules(program, options);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(stats.all_ok) << (stats.failure_messages.empty()
                                    ? "?"
                                    : stats.failure_messages[0]);
}

// Larger program: random schedule fuzzing (the tree is too big to exhaust).
TEST(ExploreRandomized, ThreeThreadChurn) {
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    ASSERT_TRUE(fs.Mkdir("/a").ok());
    ASSERT_TRUE(fs.Mkdir("/a/b").ok());
    ASSERT_TRUE(fs.Mkdir("/c").ok());
  };
  program.threads = {
      {Mkdir("/a/b/x"), Stat("/a/b"), Unlink("/a/b/x")},
      {Rename("/a", "/t"), Rename("/t", "/a")},
      {Exchange("/a", "/c"), Stat("/c/b")},
  };
  auto stats = ExploreRandom(program, /*runs=*/300, /*base_seed=*/7, /*wing_gong=*/true);
  EXPECT_EQ(stats.executions, 300u);
  EXPECT_TRUE(stats.all_ok) << (stats.failure_messages.empty()
                                    ? "?"
                                    : stats.failure_messages[0]);
  EXPECT_GT(stats.schedules_with_helping, 0u);
}

}  // namespace
}  // namespace atomfs
