// Systematic semantic matrices for the two multi-path operations: every
// (source state x destination state) combination of rename and exchange is
// checked on every file system against the abstract specification, with the
// exact error code pinned. This is the enumerated, human-readable complement
// of the randomized differential tests.

#include <gtest/gtest.h>

#include "src/afs/op.h"
#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/naive/naive_fs.h"
#include "src/retryfs/retry_fs.h"

namespace atomfs {
namespace {

// The state an endpoint path can be in before the operation.
enum class NodeState {
  kMissing,        // entry absent (parent exists)
  kMissingParent,  // parent directory itself absent
  kFileParent,     // a file where the parent directory should be
  kFile,
  kEmptyDir,
  kNonEmptyDir,
};

const char* NodeStateName(NodeState s) {
  switch (s) {
    case NodeState::kMissing:
      return "missing";
    case NodeState::kMissingParent:
      return "missing-parent";
    case NodeState::kFileParent:
      return "file-parent";
    case NodeState::kFile:
      return "file";
    case NodeState::kEmptyDir:
      return "empty-dir";
    case NodeState::kNonEmptyDir:
      return "nonempty-dir";
  }
  return "?";
}

// Materializes `state` at /<stem>/x (except the parent-error states, which
// sabotage /<stem> itself) and returns the endpoint path.
std::string Materialize(FileSystem& fs, const std::string& stem, NodeState state) {
  const std::string parent = "/" + stem;
  const std::string path = parent + "/x";
  switch (state) {
    case NodeState::kMissingParent:
      return path;  // create nothing
    case NodeState::kFileParent:
      EXPECT_TRUE(fs.Mknod(parent).ok());
      return path;
    case NodeState::kMissing:
      EXPECT_TRUE(fs.Mkdir(parent).ok());
      return path;
    case NodeState::kFile:
      EXPECT_TRUE(fs.Mkdir(parent).ok());
      EXPECT_TRUE(fs.Mknod(path).ok());
      return path;
    case NodeState::kEmptyDir:
      EXPECT_TRUE(fs.Mkdir(parent).ok());
      EXPECT_TRUE(fs.Mkdir(path).ok());
      return path;
    case NodeState::kNonEmptyDir:
      EXPECT_TRUE(fs.Mkdir(parent).ok());
      EXPECT_TRUE(fs.Mkdir(path).ok());
      EXPECT_TRUE(fs.Mknod(path + "/inner").ok());
      return path;
  }
  return path;
}

constexpr NodeState kAllStates[] = {NodeState::kMissing, NodeState::kMissingParent,
                                    NodeState::kFileParent, NodeState::kFile,
                                    NodeState::kEmptyDir, NodeState::kNonEmptyDir};

using MatrixParam = std::tuple<NodeState, NodeState>;

std::string ParamName(const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string name = std::string(NodeStateName(std::get<0>(info.param))) + "_to_" +
                     NodeStateName(std::get<1>(info.param));
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

template <typename Fs>
void CheckAgainstSpec(OpKind kind, NodeState src_state, NodeState dst_state) {
  Fs fs;
  SpecFs spec;
  const std::string src_fs = Materialize(fs, "s", src_state);
  const std::string src_spec = Materialize(spec, "s", src_state);
  const std::string dst_fs = Materialize(fs, "d", dst_state);
  const std::string dst_spec = Materialize(spec, "d", dst_state);
  ASSERT_EQ(src_fs, src_spec);
  ASSERT_EQ(dst_fs, dst_spec);

  const Status concrete = kind == OpKind::kRename ? fs.Rename(src_fs, dst_fs)
                                                  : fs.Exchange(src_fs, dst_fs);
  const Status abstract = kind == OpKind::kRename ? spec.Rename(src_spec, dst_spec)
                                                  : spec.Exchange(src_spec, dst_spec);
  EXPECT_EQ(concrete.code(), abstract.code())
      << OpKindName(kind) << "(" << NodeStateName(src_state) << " -> "
      << NodeStateName(dst_state) << "): concrete=" << ErrcName(concrete.code())
      << " abstract=" << ErrcName(abstract.code());
  EXPECT_TRUE(StructurallyEqual(fs.SnapshotSpec(), spec));
}

class RenameMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(RenameMatrixTest, AtomFs) {
  CheckAgainstSpec<AtomFs>(OpKind::kRename, std::get<0>(GetParam()), std::get<1>(GetParam()));
}

TEST_P(RenameMatrixTest, BigLockFs) {
  CheckAgainstSpec<BigLockFs>(OpKind::kRename, std::get<0>(GetParam()),
                              std::get<1>(GetParam()));
}

TEST_P(RenameMatrixTest, RetryFs) {
  CheckAgainstSpec<RetryFs>(OpKind::kRename, std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Matrix, RenameMatrixTest,
                         ::testing::Combine(::testing::ValuesIn(kAllStates),
                                            ::testing::ValuesIn(kAllStates)),
                         ParamName);

class ExchangeMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ExchangeMatrixTest, AtomFs) {
  CheckAgainstSpec<AtomFs>(OpKind::kExchange, std::get<0>(GetParam()),
                           std::get<1>(GetParam()));
}

TEST_P(ExchangeMatrixTest, RetryFs) {
  CheckAgainstSpec<RetryFs>(OpKind::kExchange, std::get<0>(GetParam()),
                            std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Matrix, ExchangeMatrixTest,
                         ::testing::Combine(::testing::ValuesIn(kAllStates),
                                            ::testing::ValuesIn(kAllStates)),
                         ParamName);

// A few exact-code anchors so the matrix cannot silently drift together with
// a spec bug: these are POSIX-documented outcomes.
TEST(RenameMatrixAnchors, PosixPinnedCodes) {
  AtomFs fs;
  Materialize(fs, "s", NodeState::kNonEmptyDir);
  Materialize(fs, "d", NodeState::kNonEmptyDir);
  EXPECT_EQ(fs.Rename("/s/x", "/d/x").code(), Errc::kNotEmpty);
  AtomFs fs2;
  Materialize(fs2, "s", NodeState::kEmptyDir);
  Materialize(fs2, "d", NodeState::kFile);
  EXPECT_EQ(fs2.Rename("/s/x", "/d/x").code(), Errc::kNotDir);
  AtomFs fs3;
  Materialize(fs3, "s", NodeState::kFile);
  Materialize(fs3, "d", NodeState::kEmptyDir);
  EXPECT_EQ(fs3.Rename("/s/x", "/d/x").code(), Errc::kIsDir);
  AtomFs fs4;
  Materialize(fs4, "s", NodeState::kMissing);
  Materialize(fs4, "d", NodeState::kFile);
  EXPECT_EQ(fs4.Rename("/s/x", "/d/x").code(), Errc::kNoEnt);
}

}  // namespace
}  // namespace atomfs
