// Unit tests for path parsing and normalization (src/vfs/path.h).

#include "src/vfs/path.h"

#include <gtest/gtest.h>

namespace atomfs {
namespace {

TEST(ParsePath, Root) {
  auto p = ParsePath("/");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsRoot());
  EXPECT_EQ(p->ToString(), "/");
}

TEST(ParsePath, Simple) {
  auto p = ParsePath("/a/b/c");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->parts.size(), 3u);
  EXPECT_EQ(p->parts[0], "a");
  EXPECT_EQ(p->parts[1], "b");
  EXPECT_EQ(p->parts[2], "c");
  EXPECT_EQ(p->ToString(), "/a/b/c");
}

TEST(ParsePath, CollapsesRepeatedSlashes) {
  auto p = ParsePath("//a///b//");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "/a/b");
}

TEST(ParsePath, TrailingSlash) {
  auto p = ParsePath("/a/b/");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "/a/b");
}

TEST(ParsePath, DotIsSkipped) {
  auto p = ParsePath("/a/./b/.");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "/a/b");
}

TEST(ParsePath, DotDotResolvesLexically) {
  auto p = ParsePath("/a/b/../c");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "/a/c");
}

TEST(ParsePath, DotDotAtRootStaysAtRoot) {
  auto p = ParsePath("/../..");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsRoot());
}

TEST(ParsePath, RejectsEmpty) {
  EXPECT_EQ(ParsePath("").status().code(), Errc::kInval);
}

TEST(ParsePath, RejectsRelative) {
  EXPECT_EQ(ParsePath("a/b").status().code(), Errc::kInval);
}

TEST(ParsePath, RejectsOverlongName) {
  std::string name(kMaxNameLen + 1, 'x');
  EXPECT_EQ(ParsePath("/" + name).status().code(), Errc::kNameTooLong);
}

TEST(ParsePath, AcceptsMaxLenName) {
  std::string name(kMaxNameLen, 'x');
  EXPECT_TRUE(ParsePath("/" + name).ok());
}

TEST(ParsePath, RejectsOverlongPath) {
  std::string path;
  while (path.size() <= kMaxPathLen) {
    path += "/abcdefg";
  }
  EXPECT_EQ(ParsePath(path).status().code(), Errc::kNameTooLong);
}

TEST(Path, DirAndBase) {
  auto p = ParsePath("/a/b/c");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Base(), "c");
  EXPECT_EQ(p->Dir().ToString(), "/a/b");
  EXPECT_EQ(p->Dir().Dir().ToString(), "/a");
  EXPECT_TRUE(p->Dir().Dir().Dir().IsRoot());
}

TEST(Path, IsPrefixOf) {
  auto a = ParsePath("/a");
  auto ab = ParsePath("/a/b");
  auto ac = ParsePath("/a/c");
  auto root = ParsePath("/");
  EXPECT_TRUE(a->IsPrefixOf(*ab));
  EXPECT_TRUE(a->IsPrefixOf(*a));
  EXPECT_FALSE(ab->IsPrefixOf(*a));
  EXPECT_FALSE(ab->IsPrefixOf(*ac));
  EXPECT_TRUE(root->IsPrefixOf(*ab));
}

TEST(ValidateName, Rules) {
  EXPECT_TRUE(ValidateName("ok").ok());
  EXPECT_FALSE(ValidateName("").ok());
  EXPECT_FALSE(ValidateName(".").ok());
  EXPECT_FALSE(ValidateName("..").ok());
  EXPECT_FALSE(ValidateName("a/b").ok());
  EXPECT_EQ(ValidateName(std::string(kMaxNameLen + 1, 'a')).code(), Errc::kNameTooLong);
}

}  // namespace
}  // namespace atomfs
