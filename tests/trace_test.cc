// Tests for the trace format: parse/format round trips, error handling,
// recording via the observer, and record-then-replay equivalence across
// implementations.

#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/atom_fs.h"
#include "src/naive/naive_fs.h"
#include "src/util/rand.h"
#include "src/workload/apps.h"

namespace atomfs {
namespace {

TEST(TraceFormat, RoundTripsEveryKind) {
  std::vector<OpCall> calls = {
      OpCall::MkdirOf(*ParsePath("/d")),
      OpCall::MknodOf(*ParsePath("/d/f")),
      OpCall::RmdirOf(*ParsePath("/d/sub")),
      OpCall::UnlinkOf(*ParsePath("/d/f")),
      OpCall::RenameOf(*ParsePath("/d"), *ParsePath("/e")),
      OpCall::ExchangeOf(*ParsePath("/x"), *ParsePath("/y")),
      OpCall::StatOf(*ParsePath("/e")),
      OpCall::ReadDirOf(*ParsePath("/")),
      OpCall::ReadOf(*ParsePath("/e/f"), 128, 4096),
      OpCall::WriteOf(*ParsePath("/e/f"), 7, {std::byte{0xde}, std::byte{0xad}}),
      OpCall::TruncateOf(*ParsePath("/e/f"), 99),
  };
  std::ostringstream out;
  WriteTrace(calls, out);
  std::istringstream in(out.str());
  auto parsed = ParseTrace(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), calls.size());
  for (size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(FormatTraceLine((*parsed)[i]), FormatTraceLine(calls[i])) << i;
    EXPECT_EQ((*parsed)[i].kind, calls[i].kind);
    EXPECT_EQ((*parsed)[i].a, calls[i].a);
    EXPECT_EQ((*parsed)[i].b, calls[i].b);
    EXPECT_EQ((*parsed)[i].offset, calls[i].offset);
    EXPECT_EQ((*parsed)[i].data, calls[i].data);
  }
}

TEST(TraceFormat, EmptyWritePayload) {
  auto call = ParseTraceLine("write /f 0 -");
  ASSERT_TRUE(call.ok());
  EXPECT_TRUE(call->data.empty());
  EXPECT_EQ(FormatTraceLine(*call), "write /f 0 -");
}

TEST(TraceFormat, CommentsAndBlanksSkipped) {
  std::istringstream in("# a comment\n\n  \t\nmkdir /a\n# another\nstat /a\n");
  auto parsed = ParseTrace(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(TraceFormat, MalformedLinesRejected) {
  EXPECT_FALSE(ParseTraceLine("").ok());
  EXPECT_FALSE(ParseTraceLine("frobnicate /a").ok());
  EXPECT_FALSE(ParseTraceLine("mkdir").ok());
  EXPECT_FALSE(ParseTraceLine("mkdir relative/path").ok());
  EXPECT_FALSE(ParseTraceLine("rename /a").ok());
  EXPECT_FALSE(ParseTraceLine("read /f zero 4").ok());
  EXPECT_FALSE(ParseTraceLine("write /f 0 xyz").ok());   // bad hex
  EXPECT_FALSE(ParseTraceLine("write /f 0 abc").ok());   // odd length
  EXPECT_FALSE(ParseTraceLine("truncate /f").ok());
}

TEST(TraceReplay, ReplayReproducesState) {
  std::istringstream in(
      "mkdir /d\n"
      "mknod /d/f\n"
      "write /d/f 0 68690a\n"  // "hi\n"
      "rename /d/f /d/g\n"
      "stat /d/g\n");
  auto calls = ParseTrace(in);
  ASSERT_TRUE(calls.ok());
  AtomFs fs;
  auto stats = ReplayTrace(fs, *calls);
  EXPECT_EQ(stats.ops, 5u);
  EXPECT_EQ(stats.failed_ops, 0u);
  EXPECT_EQ(ReadString(fs, "/d/g").value(), "hi\n");
}

TEST(TraceReplay, FailedOpsCounted) {
  std::istringstream in("rmdir /missing\nmkdir /ok\n");
  auto calls = ParseTrace(in);
  ASSERT_TRUE(calls.ok());
  AtomFs fs;
  auto stats = ReplayTrace(fs, *calls);
  EXPECT_EQ(stats.ops, 2u);
  EXPECT_EQ(stats.failed_ops, 1u);
}

TEST(TraceRecorderTest, RecordsCompletedOps) {
  TraceRecorder recorder;
  AtomFs::Options opts;
  opts.observer = &recorder;
  AtomFs fs(std::move(opts));
  EXPECT_TRUE(fs.Mkdir("/a").ok());
  EXPECT_TRUE(fs.Mknod("/a/f").ok());
  EXPECT_TRUE(fs.Rename("/a/f", "/a/g").ok());
  auto calls = recorder.Take();
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(FormatTraceLine(calls[0]), "mkdir /a");
  EXPECT_EQ(FormatTraceLine(calls[2]), "rename /a/f /a/g");
  EXPECT_TRUE(recorder.Take().empty());
}

// Record a run on AtomFs, serialize, parse, replay on NaiveFs: final trees
// must match (the trace is a faithful, portable reproduction of the run).
TEST(TraceRecorderTest, RecordSerializeReplayAcrossImplementations) {
  TraceRecorder recorder;
  AtomFs::Options opts;
  opts.observer = &recorder;
  AtomFs original(std::move(opts));
  TreeSpec spec;
  spec.dirs = 4;
  spec.files_per_dir = 3;
  spec.max_file_bytes = 512;
  BuildTree(original, "/src", spec);
  ASSERT_TRUE(original.Rename("/src/d0", "/src/renamed").ok());
  ASSERT_TRUE(original.Exchange("/src/d1", "/src/d2").ok());

  std::ostringstream serialized;
  WriteTrace(recorder.Take(), serialized);
  std::istringstream in(serialized.str());
  auto calls = ParseTrace(in);
  ASSERT_TRUE(calls.ok());

  NaiveFs replayed;
  auto stats = ReplayTrace(replayed, *calls);
  EXPECT_EQ(stats.failed_ops, 0u);
  EXPECT_TRUE(StructurallyEqual(original.SnapshotSpec(), replayed.SnapshotSpec()));
}

// Random op streams survive the round trip byte-for-byte.
TEST(TraceFormat, FuzzRoundTrip) {
  Rng rng(424242);
  static const char* kNames[] = {"alpha", "beta", "gamma"};
  auto random_path = [&rng]() {
    Path p;
    const size_t depth = rng.Between(1, 4);
    for (size_t i = 0; i < depth; ++i) {
      p.parts.emplace_back(kNames[rng.Below(3)]);
    }
    return p;
  };
  std::vector<OpCall> calls;
  for (int i = 0; i < 500; ++i) {
    switch (rng.Below(6)) {
      case 0:
        calls.push_back(OpCall::MkdirOf(random_path()));
        break;
      case 1:
        calls.push_back(OpCall::RenameOf(random_path(), random_path()));
        break;
      case 2:
        calls.push_back(OpCall::ReadOf(random_path(), rng.Below(1 << 20), rng.Below(1 << 16)));
        break;
      case 3: {
        std::vector<std::byte> data(rng.Below(64));
        for (auto& b : data) {
          b = static_cast<std::byte>(rng.Below(256));
        }
        calls.push_back(OpCall::WriteOf(random_path(), rng.Below(4096), std::move(data)));
        break;
      }
      case 4:
        calls.push_back(OpCall::TruncateOf(random_path(), rng.Below(1 << 20)));
        break;
      default:
        calls.push_back(OpCall::ExchangeOf(random_path(), random_path()));
        break;
    }
  }
  std::ostringstream out;
  WriteTrace(calls, out);
  std::istringstream in(out.str());
  auto parsed = ParseTrace(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), calls.size());
  std::ostringstream out2;
  WriteTrace(*parsed, out2);
  EXPECT_EQ(out.str(), out2.str());
}

// State snapshots: export the tree as a trace, replay onto a fresh FS, and
// get a structurally identical tree back.
TEST(TraceExport, SnapshotRoundTrip) {
  AtomFs fs;
  TreeSpec spec;
  spec.dirs = 5;
  spec.files_per_dir = 4;
  spec.max_file_bytes = 600;
  BuildTree(fs, "/data", spec);
  ASSERT_TRUE(fs.Rename("/data/d0", "/data/moved").ok());

  auto calls = ExportAsTrace(fs.SnapshotSpec());
  AtomFs restored;
  auto stats = ReplayTrace(restored, calls);
  EXPECT_EQ(stats.failed_ops, 0u);
  EXPECT_TRUE(StructurallyEqual(fs.SnapshotSpec(), restored.SnapshotSpec()));

  // And it survives serialization.
  std::ostringstream out;
  WriteTrace(calls, out);
  std::istringstream in(out.str());
  auto parsed = ParseTrace(in);
  ASSERT_TRUE(parsed.ok());
  AtomFs restored2;
  ReplayTrace(restored2, *parsed);
  EXPECT_TRUE(StructurallyEqual(fs.SnapshotSpec(), restored2.SnapshotSpec()));
}

TEST(TraceExport, EmptyTreeExportsNothing) {
  SpecFs empty;
  EXPECT_TRUE(ExportAsTrace(empty).empty());
}

}  // namespace
}  // namespace atomfs
