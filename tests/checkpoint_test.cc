// Tests for WAL checkpointing + compaction (src/journal/checkpoint.h): the
// checkpoint file format, the write-temp / fdatasync / atomic-rename publish
// protocol, and RecoverJournal across every intermediate crash state the
// protocol can leave behind — plus fallback to the previous checkpoint when
// the newest is corrupt, and repair-mode normalization.

#include "src/journal/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/core/atom_fs.h"
#include "src/txn/txn.h"

namespace atomfs {
namespace {

// A journal path plus all its sidecar files, cleaned up on both ends.
class TempJournal {
 public:
  explicit TempJournal(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    RemoveAll();
  }
  ~TempJournal() { RemoveAll(); }

  const std::string& path() const { return path_; }

  void RemoveAll() const {
    for (const std::string& p :
         {path_, PrevWalPath(path_), CheckpointPath(path_), PrevCheckpointPath(path_),
          TmpCheckpointPath(path_)}) {
      std::remove(p.c_str());
    }
  }

  static std::string ReadFile(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

  static void WriteFile(const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  static void FlipByte(const std::string& p, size_t offset_from_end) {
    std::string bytes = ReadFile(p);
    ASSERT_GT(bytes.size(), offset_from_end);
    const size_t i = bytes.size() - 1 - offset_from_end;
    bytes[i] = static_cast<char>(~bytes[i]);
    WriteFile(p, bytes);
  }

 private:
  std::string path_;
};

Checkpoint SampleCheckpoint() {
  SpecFs state;
  EXPECT_TRUE(RunOp(state, OpCall::MkdirOf(*ParsePath("/d"))).status.ok());
  EXPECT_TRUE(RunOp(state, OpCall::MknodOf(*ParsePath("/d/f"))).status.ok());
  std::vector<std::byte> payload{std::byte{'h'}, std::byte{'i'}};
  EXPECT_TRUE(RunOp(state, OpCall::WriteOf(*ParsePath("/d/f"), 0, payload)).status.ok());
  return BuildCheckpoint(state, /*ckpt_id=*/3, /*max_txid=*/17, /*committed_units=*/9);
}

TEST(CheckpointFormat, RoundTrips) {
  const Checkpoint c = SampleCheckpoint();
  const std::string bytes = FormatCheckpoint(c);
  auto parsed = ParseCheckpoint(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ckpt_id, 3u);
  EXPECT_EQ(parsed->max_txid, 17u);
  EXPECT_EQ(parsed->committed_units, 9u);
  ASSERT_EQ(parsed->ops.size(), c.ops.size());
  // Replaying the parsed ops recreates the state bit-for-bit.
  SpecFs replayed;
  for (const OpCall& op : parsed->ops) {
    ASSERT_TRUE(RunOp(replayed, op).status.ok());
  }
  SpecFs original;
  for (const OpCall& op : c.ops) {
    ASSERT_TRUE(RunOp(original, op).status.ok());
  }
  EXPECT_TRUE(StructurallyEqual(replayed, original));
}

TEST(CheckpointFormat, RejectsCorruption) {
  const std::string good = FormatCheckpoint(SampleCheckpoint());
  // Bit rot anywhere in the body breaks the checksum.
  for (size_t i : {size_t{0}, good.size() / 2, good.size() - 2}) {
    std::string bad = good;
    bad[i] = static_cast<char>(~bad[i]);
    EXPECT_EQ(ParseCheckpoint(bad).status().code(), Errc::kInval) << "flip at " << i;
  }
  // A truncated file (torn checkpoint write) is rejected at every cut.
  for (size_t cut = 0; cut < good.size(); cut += 7) {
    EXPECT_EQ(ParseCheckpoint(good.substr(0, cut)).status().code(), Errc::kInval)
        << "cut at " << cut;
  }
  EXPECT_EQ(ParseCheckpoint("").status().code(), Errc::kInval);
  EXPECT_EQ(ParseCheckpoint("# not-a-checkpoint\n").status().code(), Errc::kInval);
}

// Drives `n` direct mkdirs through a journaled TxnManager rooted at /u<i>.
void RunUnits(TxnManager& txn, int from, int n) {
  for (int i = from; i < from + n; ++i) {
    ASSERT_TRUE(txn.Mkdir("/u" + std::to_string(i)).ok()) << i;
  }
}

TEST(CheckpointRecovery, CheckpointPlusWalSuffix) {
  TempJournal j("atomfs_ckpt_suffix.wal");
  AtomFs inner;
  {
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    TxnManager txn(topt);
    RunUnits(txn, 0, 4);
    ASSERT_TRUE(txn.TakeCheckpoint().ok());
    EXPECT_EQ(txn.checkpoints_taken(), 1u);
    RunUnits(txn, 4, 3);  // the post-checkpoint WAL suffix
  }
  AtomFs recovered;
  auto stats = RecoverJournal(j.path(), recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->used_checkpoint);
  EXPECT_FALSE(stats->fell_back_to_prev);
  EXPECT_GT(stats->checkpoint_ops, 0u);
  EXPECT_EQ(stats->wal.committed, 3u);  // only the suffix came from the WAL
  EXPECT_EQ(stats->committed_units, 7u);
  EXPECT_EQ(stats->generation, 1u);
  EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), inner.SnapshotSpec()));
}

TEST(CheckpointRecovery, CompactionBoundsTheReplay) {
  TempJournal j("atomfs_ckpt_compact.wal");
  AtomFs inner;
  {
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    TxnManager txn(topt);
    RunUnits(txn, 0, 50);
    ASSERT_TRUE(txn.TakeCheckpoint().ok());
    RunUnits(txn, 50, 2);
  }
  AtomFs recovered;
  auto stats = RecoverJournal(j.path(), recovered);
  ASSERT_TRUE(stats.ok());
  // 50 units of history replay as 50 checkpoint ops (state-sized), and the
  // WAL replay is just the 2-unit suffix — recovery cost is bounded by the
  // checkpoint interval, not total history.
  EXPECT_EQ(stats->wal.committed, 2u);
  EXPECT_EQ(stats->wal.applied_ops, 2u);
  EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), inner.SnapshotSpec()));
}

TEST(CheckpointRecovery, ThresholdsTriggerAutomaticCheckpoints) {
  TempJournal j("atomfs_ckpt_auto.wal");
  AtomFs inner;
  TxnManager::Options topt;
  topt.inner = &inner;
  topt.wal_path = j.path();
  topt.checkpoint_units = 4;
  TxnManager txn(topt);
  RunUnits(txn, 0, 4);
  EXPECT_EQ(txn.checkpoints_taken(), 1u);
  RunUnits(txn, 4, 3);
  EXPECT_EQ(txn.checkpoints_taken(), 1u);
  RunUnits(txn, 7, 1);
  EXPECT_EQ(txn.checkpoints_taken(), 2u);
  AtomFs recovered;
  auto stats = RecoverJournal(j.path(), recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->generation, 2u);
  EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), inner.SnapshotSpec()));
}

TEST(CheckpointRecovery, ByteThresholdTriggers) {
  TempJournal j("atomfs_ckpt_bytes.wal");
  AtomFs inner;
  TxnManager::Options topt;
  topt.inner = &inner;
  topt.wal_path = j.path();
  topt.checkpoint_bytes = 1;  // every committed unit trips the trigger
  TxnManager txn(topt);
  RunUnits(txn, 0, 3);
  EXPECT_EQ(txn.checkpoints_taken(), 3u);
  AtomFs recovered;
  ASSERT_TRUE(RecoverJournal(j.path(), recovered).ok());
  EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), inner.SnapshotSpec()));
}

// --- intermediate crash states of the write protocol ------------------------

// Crash mid-step-1: a partial (or even complete) P.ckpt.tmp is never read;
// recovery uses the WAL alone, and repair deletes the stale tmp.
TEST(CheckpointRecovery, TmpCheckpointIsIgnoredAndRepairedAway) {
  TempJournal j("atomfs_ckpt_tmp.wal");
  AtomFs inner;
  {
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    TxnManager txn(topt);
    RunUnits(txn, 0, 3);
  }
  const std::string tmp_bytes = FormatCheckpoint(SampleCheckpoint());
  for (const std::string& variant :
       {tmp_bytes.substr(0, tmp_bytes.size() / 2), tmp_bytes}) {
    TempJournal::WriteFile(TmpCheckpointPath(j.path()), variant);
    AtomFs recovered;
    auto stats = RecoverJournal(j.path(), recovered, /*repair=*/true);
    ASSERT_TRUE(stats.ok());
    EXPECT_FALSE(stats->used_checkpoint);
    EXPECT_EQ(stats->wal.committed, 3u);
    EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), inner.SnapshotSpec()));
    EXPECT_FALSE(std::filesystem::exists(TmpCheckpointPath(j.path())));
  }
}

// Crash between publishing P.ckpt and rotating the WAL: the live WAL's
// generation predates the checkpoint, so it is fully covered and skipped.
TEST(CheckpointRecovery, PublishedCheckpointUnrotatedWalIsSkipped) {
  TempJournal j("atomfs_ckpt_unrotated.wal");
  AtomFs inner;
  {
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    TxnManager txn(topt);
    RunUnits(txn, 0, 3);
  }
  // Publish a checkpoint of the full state by hand; the WAL (generation 0,
  // no head marker) now predates checkpoint id 1.
  const Checkpoint c =
      BuildCheckpoint(inner.SnapshotSpec(), /*ckpt_id=*/1, /*max_txid=*/0, /*units=*/3);
  ASSERT_TRUE(WriteCheckpointFile(j.path(), c).ok());
  AtomFs recovered;
  auto stats = RecoverJournal(j.path(), recovered, /*repair=*/true);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->used_checkpoint);
  EXPECT_EQ(stats->wal.applied_ops, 0u);  // nothing replayed twice
  EXPECT_EQ(stats->committed_units, 3u);
  EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), inner.SnapshotSpec()));
}

// Crash inside Rotate, after renaming P aside but before creating the fresh
// P: recovery still answers from the checkpoint, and repair completes the
// rotation so an appending writer reopens a well-formed generation.
TEST(CheckpointRecovery, InterruptedRotationIsCompleted) {
  TempJournal j("atomfs_ckpt_midrotate.wal");
  AtomFs inner;
  {
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    TxnManager txn(topt);
    RunUnits(txn, 0, 3);
  }
  const Checkpoint c =
      BuildCheckpoint(inner.SnapshotSpec(), /*ckpt_id=*/1, /*max_txid=*/0, /*units=*/3);
  ASSERT_TRUE(WriteCheckpointFile(j.path(), c).ok());
  std::filesystem::rename(j.path(), PrevWalPath(j.path()));
  AtomFs recovered;
  auto stats = RecoverJournal(j.path(), recovered, /*repair=*/true);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->used_checkpoint);
  EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), inner.SnapshotSpec()));
  // Repair created the fresh generation-1 live WAL; appending to it and
  // recovering again extends the same state.
  ASSERT_TRUE(std::filesystem::exists(j.path()));
  {
    AtomFs inner2;
    ASSERT_TRUE(RecoverJournal(j.path(), inner2).ok());
    TxnManager::Options topt;
    topt.inner = &inner2;
    topt.wal_path = j.path();
    topt.first_ckpt_id = stats->generation + 1;
    topt.recovered_units = stats->committed_units;
    TxnManager txn(topt);
    ASSERT_TRUE(txn.Mkdir("/after_repair").ok());
  }
  AtomFs again;
  auto stats2 = RecoverJournal(j.path(), again);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->committed_units, 4u);
  EXPECT_TRUE(again.Stat("/after_repair").ok());
  EXPECT_TRUE(again.Stat("/u0").ok());
}

TEST(CheckpointRecovery, CorruptNewestFallsBackToPrev) {
  TempJournal j("atomfs_ckpt_fallback.wal");
  AtomFs inner;
  {
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    TxnManager txn(topt);
    RunUnits(txn, 0, 2);
    ASSERT_TRUE(txn.TakeCheckpoint().ok());  // ckpt 1
    RunUnits(txn, 2, 2);
    ASSERT_TRUE(txn.TakeCheckpoint().ok());  // ckpt 2 (ckpt 1 -> .prev)
    RunUnits(txn, 4, 2);
  }
  // Rot the newest checkpoint: recovery must fall back to .prev and replay
  // BOTH WAL generations (prevwal carries ckpt-1..ckpt-2 history, live the
  // rest) to reach the same state.
  TempJournal::FlipByte(CheckpointPath(j.path()), 2);
  AtomFs recovered;
  auto stats = RecoverJournal(j.path(), recovered);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->used_checkpoint);
  EXPECT_TRUE(stats->fell_back_to_prev);
  EXPECT_EQ(stats->wal.committed, 4u);  // 2 units per surviving generation
  EXPECT_EQ(stats->committed_units, 6u);
  EXPECT_TRUE(StructurallyEqual(recovered.SnapshotSpec(), inner.SnapshotSpec()));
}

TEST(CheckpointRecovery, BothCheckpointsCorruptIsLoud) {
  TempJournal j("atomfs_ckpt_bothbad.wal");
  AtomFs inner;
  {
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    TxnManager txn(topt);
    RunUnits(txn, 0, 2);
    ASSERT_TRUE(txn.TakeCheckpoint().ok());
    RunUnits(txn, 2, 2);
    ASSERT_TRUE(txn.TakeCheckpoint().ok());
  }
  TempJournal::FlipByte(CheckpointPath(j.path()), 2);
  TempJournal::FlipByte(PrevCheckpointPath(j.path()), 2);
  // The live WAL demands generation 2, no readable checkpoint provides it:
  // better a loud kIo than a silently partial recovery.
  AtomFs recovered;
  EXPECT_EQ(RecoverJournal(j.path(), recovered).status().code(), Errc::kIo);
}

TEST(CheckpointRecovery, MissingCheckpointWithRotatedWalIsLoud) {
  TempJournal j("atomfs_ckpt_missing.wal");
  AtomFs inner;
  {
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    TxnManager txn(topt);
    RunUnits(txn, 0, 2);
    ASSERT_TRUE(txn.TakeCheckpoint().ok());
  }
  std::remove(CheckpointPath(j.path()).c_str());
  std::remove(PrevCheckpointPath(j.path()).c_str());
  AtomFs recovered;
  EXPECT_EQ(RecoverJournal(j.path(), recovered).status().code(), Errc::kIo);
}

TEST(CheckpointRecovery, RepairTruncatesTornLiveTail) {
  TempJournal j("atomfs_ckpt_torn.wal");
  AtomFs inner;
  {
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    TxnManager txn(topt);
    RunUnits(txn, 0, 2);
    ASSERT_TRUE(txn.TakeCheckpoint().ok());
    RunUnits(txn, 2, 2);
  }
  // Tear the live WAL mid-record.
  std::string live = TempJournal::ReadFile(j.path());
  TempJournal::WriteFile(j.path(), live.substr(0, live.size() - 3));
  AtomFs recovered;
  auto stats = RecoverJournal(j.path(), recovered, /*repair=*/true);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->wal.torn_tail);
  EXPECT_EQ(stats->wal.committed, 1u);  // /u3's record was torn off
  // The torn bytes are gone from disk: an O_APPEND writer reopening the log
  // appends readable records, and a second recovery sees a clean log.
  {
    AtomFs inner2;
    ASSERT_TRUE(RecoverJournal(j.path(), inner2).ok());
    TxnManager::Options topt;
    topt.inner = &inner2;
    topt.wal_path = j.path();
    topt.first_ckpt_id = stats->generation + 1;
    TxnManager txn(topt);
    ASSERT_TRUE(txn.Mkdir("/post_tear").ok());
  }
  AtomFs again;
  auto stats2 = RecoverJournal(j.path(), again);
  ASSERT_TRUE(stats2.ok());
  EXPECT_FALSE(stats2->wal.torn_tail);
  EXPECT_TRUE(again.Stat("/u2").ok());
  EXPECT_TRUE(again.Stat("/post_tear").ok());
  EXPECT_EQ(again.Stat("/u3").status().code(), Errc::kNoEnt);
}

// Checkpointing composes with transactions and the reopen cycle: txid and
// checkpoint-id floors carry across restarts.
TEST(CheckpointRecovery, ReopenCycleKeepsIdsMonotonic) {
  TempJournal j("atomfs_ckpt_reopen.wal");
  uint64_t units = 0;
  for (int round = 0; round < 3; ++round) {
    AtomFs inner;
    auto stats = RecoverJournal(j.path(), inner, /*repair=*/true);
    TxnManager::Options topt;
    topt.inner = &inner;
    topt.wal_path = j.path();
    if (stats.ok()) {
      topt.initial = inner.SnapshotSpec();
      topt.first_txid = stats->max_txid + 1;
      topt.first_ckpt_id = stats->generation + 1;
      topt.recovered_units = stats->committed_units;
    } else {
      ASSERT_EQ(stats.status().code(), Errc::kNoEnt);
    }
    TxnManager txn(topt);
    auto id = txn.Begin();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(
        txn.Apply(*id, OpCall::MkdirOf(*ParsePath("/r" + std::to_string(round)))).status.ok());
    ASSERT_TRUE(txn.Commit(*id).ok());
    ASSERT_TRUE(txn.TakeCheckpoint().ok());
    ++units;
  }
  AtomFs fin;
  auto stats = RecoverJournal(j.path(), fin);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->generation, 3u);
  EXPECT_EQ(stats->committed_units, units);
  EXPECT_EQ(stats->wal.applied_ops, 0u);  // every round ended checkpointed
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(fin.Stat("/r" + std::to_string(round)).ok()) << round;
  }
}

}  // namespace
}  // namespace atomfs
