// Tests for the virtual-time multicore simulator (src/sim/executor.h).

#include "src/sim/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace atomfs {
namespace {

TEST(RealExecutor, LockRoundTrip) {
  auto lock = Executor::Real().CreateLock();
  lock->Lock();
  lock->Unlock();
  Executor::Real().Work(100);  // no-op, must not crash
  EXPECT_GT(Executor::Real().NowNanos(), 0u);
}

TEST(SimExecutor, SingleThreadAccumulatesWork) {
  SimExecutor sim(1);
  RunInSim(sim, [&] {
    sim.Work(1000);
    sim.Work(500);
  });
  EXPECT_EQ(sim.GlobalVirtualNanos(), 1500u);
  EXPECT_EQ(sim.TotalWorkNanos(), 1500u);
}

TEST(SimExecutor, IndependentWorkScalesWithCores) {
  // 4 threads x 1000ns of independent work: one core => 4000ns makespan,
  // four cores => 1000ns.
  for (uint32_t cores : {1u, 2u, 4u}) {
    SimExecutor sim(cores);
    for (int t = 0; t < 4; ++t) {
      sim.Spawn([&] { sim.Work(1000); });
    }
    sim.Run();
    EXPECT_EQ(sim.GlobalVirtualNanos(), 4000u / cores) << cores << " cores";
  }
}

TEST(SimExecutor, WorkSplitsDoNotChangeMakespan) {
  SimExecutor a(2);
  for (int t = 0; t < 2; ++t) {
    a.Spawn([&] { a.Work(1000); });
  }
  a.Run();
  SimExecutor b(2);
  for (int t = 0; t < 2; ++t) {
    b.Spawn([&] {
      for (int i = 0; i < 10; ++i) {
        b.Work(100);
      }
    });
  }
  b.Run();
  EXPECT_EQ(a.GlobalVirtualNanos(), b.GlobalVirtualNanos());
}

TEST(SimExecutor, LockSerializesCriticalSections) {
  // 4 threads, 4 cores, all work inside one lock => serialized makespan.
  SimExecutor sim(4);
  auto lock = sim.CreateLock();
  std::atomic<int> in_cs{0};
  std::atomic<int> max_in_cs{0};
  for (int t = 0; t < 4; ++t) {
    sim.Spawn([&] {
      lock->Lock();
      int now = ++in_cs;
      int prev = max_in_cs.load();
      while (now > prev && !max_in_cs.compare_exchange_weak(prev, now)) {
      }
      sim.Work(1000);
      --in_cs;
      lock->Unlock();
    });
  }
  sim.Run();
  EXPECT_EQ(max_in_cs.load(), 1);
  // 4 x 1000ns critical sections serialize (plus small lock costs).
  EXPECT_GE(sim.GlobalVirtualNanos(), 4000u);
  EXPECT_LT(sim.GlobalVirtualNanos(), 4600u);
}

TEST(SimExecutor, DisjointLocksRunInParallel) {
  SimExecutor sim(4);
  auto l1 = sim.CreateLock();
  auto l2 = sim.CreateLock();
  auto worker = [&](Lockable* lock) {
    for (int i = 0; i < 5; ++i) {
      lock->Lock();
      sim.Work(1000);
      lock->Unlock();
    }
  };
  sim.Spawn([&] { worker(l1.get()); });
  sim.Spawn([&] { worker(l2.get()); });
  sim.Run();
  // Two disjoint 5000ns lock streams on 4 cores: ~5000ns, not ~10000ns.
  EXPECT_LT(sim.GlobalVirtualNanos(), 6000u);
}

TEST(SimExecutor, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimExecutor sim(2);
    auto lock = sim.CreateLock();
    for (int t = 0; t < 3; ++t) {
      sim.Spawn([&sim, &lock, t] {
        for (int i = 0; i < 20; ++i) {
          sim.Work(static_cast<uint64_t>(50 + 13 * t));
          lock->Lock();
          sim.Work(30);
          lock->Unlock();
        }
      });
    }
    sim.Run();
    return sim.GlobalVirtualNanos();
  };
  const uint64_t first = run_once();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(run_once(), first);
  }
}

TEST(SimExecutor, SpawnAfterRunContinuesFromMakespan) {
  SimExecutor sim(1);
  RunInSim(sim, [&] { sim.Work(1000); });
  const uint64_t after_setup = sim.GlobalVirtualNanos();
  sim.Spawn([&] { sim.Work(500); });
  sim.Run();
  EXPECT_EQ(sim.GlobalVirtualNanos(), after_setup + 500);
}

TEST(SimExecutor, ManyThreadsOnFewCores) {
  SimExecutor sim(2);
  for (int t = 0; t < 16; ++t) {
    sim.Spawn([&] { sim.Work(100); });
  }
  sim.Run();
  EXPECT_EQ(sim.GlobalVirtualNanos(), 16 * 100 / 2);
}

TEST(SimExecutor, NowNanosTracksThreadTime) {
  SimExecutor sim(1);
  std::vector<uint64_t> times;
  RunInSim(sim, [&] {
    times.push_back(sim.NowNanos());
    sim.Work(777);
    times.push_back(sim.NowNanos());
  });
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[1] - times[0], 777u);
}

TEST(SimExecutorPolicy, ScriptedRecordsTraceAndFanouts) {
  ScheduleOptions sched;
  sched.policy = SchedulePolicy::kScripted;
  SimExecutor sim(1, sched);
  auto lock = sim.CreateLock();
  for (int t = 0; t < 2; ++t) {
    sim.Spawn([&] {
      for (int i = 0; i < 3; ++i) {
        lock->Lock();
        sim.Work(10);
        lock->Unlock();
      }
    });
  }
  sim.Run();
  // With two threads there were scheduling points; every decision defaulted
  // to index 0 and each recorded fanout is >= 2.
  ASSERT_FALSE(sim.ScheduleTrace().empty());
  ASSERT_EQ(sim.ScheduleTrace().size(), sim.ScheduleFanouts().size());
  for (size_t i = 0; i < sim.ScheduleTrace().size(); ++i) {
    EXPECT_EQ(sim.ScheduleTrace()[i], 0u);
    EXPECT_GE(sim.ScheduleFanouts()[i], 2u);
  }
}

TEST(SimExecutorPolicy, ScriptReplayIsDeterministic) {
  auto run = [](std::vector<uint32_t> script) {
    ScheduleOptions sched;
    sched.policy = SchedulePolicy::kScripted;
    sched.script = std::move(script);
    SimExecutor sim(1, sched);
    auto lock = sim.CreateLock();
    std::vector<int> order;
    for (int t = 0; t < 2; ++t) {
      sim.Spawn([&, t] {
        lock->Lock();
        order.push_back(t);
        lock->Unlock();
      });
    }
    sim.Run();
    return order;
  };
  // Following the default script twice gives the same order; flipping the
  // first decision flips which thread goes first.
  const auto base = run({});
  EXPECT_EQ(run({}), base);
  const auto flipped = run({1});
  EXPECT_NE(flipped, base);
  EXPECT_EQ(run({1}), flipped);
}

TEST(SimExecutorPolicy, RandomPolicyIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    ScheduleOptions sched;
    sched.policy = SchedulePolicy::kRandom;
    sched.seed = seed;
    SimExecutor sim(1, sched);
    auto lock = sim.CreateLock();
    std::vector<int> order;
    for (int t = 0; t < 3; ++t) {
      sim.Spawn([&, t] {
        for (int i = 0; i < 4; ++i) {
          lock->Lock();
          order.push_back(t);
          lock->Unlock();
        }
      });
    }
    sim.Run();
    return order;
  };
  EXPECT_EQ(run(5), run(5));
  // Different seeds almost surely differ for 12 interleaved sections.
  bool any_differs = false;
  const auto base = run(5);
  for (uint64_t seed = 6; seed < 12 && !any_differs; ++seed) {
    any_differs = run(seed) != base;
  }
  EXPECT_TRUE(any_differs);
}

TEST(SimExecutorPolicy, NoYieldOnWorkStillChargesTime) {
  ScheduleOptions sched;
  sched.yield_on_work = false;
  SimExecutor sim(1, sched);
  RunInSim(sim, [&] {
    sim.Work(500);
    sim.Work(250);
  });
  EXPECT_EQ(sim.TotalWorkNanos(), 750u);
}

}  // namespace
}  // namespace atomfs
