// Tests for the Table-1 invariant checkers.
//
// Positive direction: under lock coupling the invariants hold on adversarial
// schedules (covered throughout scenario_test and stress_test). This file
// exercises the *negative* direction: with `unsafe_release_before_lock`
// (traversal releases the parent before locking the child, violating the
// non-bypassable criterion) the checkers must detect the paper's Figure 8
// failure — an unhelped del bypassing a helped ins, yielding a
// non-linearizable execution.

#include <gtest/gtest.h>

#include "src/core/atom_fs.h"
#include "src/crlh/gate.h"
#include "src/crlh/lin_check.h"
#include "src/crlh/monitor.h"
#include "src/crlh/op_thread.h"

namespace atomfs {
namespace {

bool AnyViolationContains(const CrlhMonitor& monitor, std::string_view needle) {
  for (const auto& v : monitor.violations()) {
    if (v.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

class UnsafeModeTest : public ::testing::Test {
 protected:
  void Build() {
    monitor_ = std::make_unique<CrlhMonitor>();
    tee_ = std::make_unique<TeeObserver>(monitor_.get(), &gate_);
    AtomFs::Options opts;
    opts.observer = tee_.get();
    opts.unsafe_release_before_lock = true;
    fs_ = std::make_unique<AtomFs>(std::move(opts));
  }

  Inum InoOf(std::string_view path) {
    auto attr = fs_->Stat(path);
    EXPECT_TRUE(attr.ok()) << path;
    return attr->ino;
  }

  GateObserver gate_;
  std::unique_ptr<CrlhMonitor> monitor_;
  std::unique_ptr<TeeObserver> tee_;
  std::unique_ptr<AtomFs> fs_;
};

// Sanity: sequential execution is clean even in unsafe mode (bypasses need
// concurrency).
TEST_F(UnsafeModeTest, SequentialExecutionStillClean) {
  Build();
  EXPECT_TRUE(fs_->Mkdir("/a").ok());
  EXPECT_TRUE(fs_->Mknod("/a/f").ok());
  EXPECT_TRUE(fs_->Unlink("/a/f").ok());
  EXPECT_TRUE(fs_->Rmdir("/a").ok());
  // Pre-LP, unsafe traversal releases the LockPath tip (the parent) before
  // locking the child: the Last-locked-lockpath invariant flags exactly
  // that, even without any concurrent interference.
  EXPECT_TRUE(AnyViolationContains(*monitor_, "Last-locked-lockpath"));
  // But refinement is still fine sequentially.
  EXPECT_FALSE(AnyViolationContains(*monitor_, "REFINEMENT"));
}

// Figure 8: ins(/a/b/c, d) is helped by rename(/a, /i); del(/i/b, c) then
// bypasses the parked ins (impossible under lock coupling) and succeeds
// concretely although its abstract operation must fail — the checkers flag
// both the bypass and the refinement break.
TEST_F(UnsafeModeTest, Fig8BypassIsDetected) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b/c").ok());
  const Inum ino_b = InoOf("/a/b");
  const Inum ino_c = InoOf("/a/b/c");

  // ins parks after releasing b, before locking c: it holds no lock at all
  // (only possible because coupling is off).
  OpThread ins([&] { EXPECT_TRUE(fs_->Mkdir("/a/b/c/d").ok()); });
  gate_.Arm(ins.tid(), GateObserver::Point::kLockReleased, ino_b);
  ins.Go();
  gate_.WaitParked(ins.tid());

  // rename completes; it must help the parked ins (LockPath (root,a,b)
  // contains its SrcPath (root,a)), predicting ins will lock c next.
  EXPECT_TRUE(fs_->Rename("/a", "/i").ok());
  EXPECT_EQ(monitor_->helped_ops(), 1u);
  {
    auto d = monitor_->GetDescriptor(ins.tid());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->state, AopState::kHelped);
    ASSERT_TRUE(d->fut_tracked);
    ASSERT_EQ(d->fut_lock_path.size(), 1u);
    EXPECT_EQ(d->fut_lock_path.front(), ino_c);
  }

  // del bypasses the helped ins: it locks c (in ins's FutLockPath) and
  // concretely succeeds because d is not yet inserted.
  EXPECT_TRUE(fs_->Rmdir("/i/b/c").ok());
  EXPECT_TRUE(AnyViolationContains(*monitor_, "Unhelped-non-bypassable"));
  // Abstractly the del must fail (the helped ins already put d inside c):
  // refinement is broken on the del.
  EXPECT_TRUE(AnyViolationContains(*monitor_, "REFINEMENT"));

  gate_.Open(ins.tid());
  ins.Join();

  EXPECT_FALSE(monitor_->ok());
  // Ground truth: the recorded concurrent history is NOT linearizable.
  auto recs = monitor_->Completed();
  EXPECT_FALSE(CheckLinearizable(HistoryFromRecords(recs)).linearizable);
}

// The quiescent abstract-concrete check also exposes the divergence left
// behind by the Figure 8 execution.
TEST_F(UnsafeModeTest, Fig8LeavesDivergedTrees) {
  Build();
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b/c").ok());
  const Inum ino_b = InoOf("/a/b");

  OpThread ins([&] { EXPECT_TRUE(fs_->Mkdir("/a/b/c/d").ok()); });
  gate_.Arm(ins.tid(), GateObserver::Point::kLockReleased, ino_b);
  ins.Go();
  gate_.WaitParked(ins.tid());
  EXPECT_TRUE(fs_->Rename("/a", "/i").ok());
  EXPECT_TRUE(fs_->Rmdir("/i/b/c").ok());
  gate_.Open(ins.tid());
  ins.Join();

  // Abstract tree: /i/b/c/d exists. Concrete tree: /i/b is empty (c was
  // removed; d went into the zombie c).
  EXPECT_FALSE(monitor_->CheckQuiescent(fs_->SnapshotSpec()));
}

// Under SAFE lock coupling the same schedule cannot even be forced: the del
// blocks until the ins finishes, and everything stays clean. This is the
// positive direction of the non-bypassable criterion on real code.
TEST(LockCouplingTest, Fig8ScheduleImpossibleUnderCoupling) {
  CrlhMonitor monitor;
  GateObserver gate;
  TeeObserver tee(&monitor, &gate);
  AtomFs::Options opts;
  opts.observer = &tee;
  AtomFs fs(std::move(opts));
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/a/b").ok());
  ASSERT_TRUE(fs.Mkdir("/a/b/c").ok());
  const Inum ino_b = fs.Stat("/a/b")->ino;

  // Park ins while it holds c's parent-to-be (LockPath root,a,b,c... here it
  // holds c after releasing b).
  OpThread ins([&] { EXPECT_TRUE(fs.Mkdir("/a/b/c/d").ok()); });
  gate.Arm(ins.tid(), GateObserver::Point::kLockReleased, ino_b);
  ins.Go();
  gate.WaitParked(ins.tid());

  EXPECT_TRUE(fs.Rename("/a", "/i").ok());

  // The del must block on c's lock until ins completes; run it on a thread
  // and release ins shortly after.
  OpThread del([&] { EXPECT_EQ(fs.Rmdir("/i/b/c").code(), Errc::kNotEmpty); });
  del.Go();
  // Give the del a moment to reach c's lock, then release the ins.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open(ins.tid());
  ins.Join();
  del.Join();

  EXPECT_TRUE(monitor.ok()) << monitor.violations()[0];
  EXPECT_TRUE(monitor.CheckQuiescent(fs.SnapshotSpec()));
  EXPECT_TRUE(fs.Stat("/i/b/c/d").ok());
}

}  // namespace
}  // namespace atomfs
