// Race-hunt stress harness: deterministic-seed workloads shaped to provoke
// the thread interleavings TSan/ASan need to observe (docs/SANITIZERS.md).
//
// Every case follows the same recipe: a RaceBarrier aligns the cohort so the
// contended window opens with maximal overlap, and a per-thread
// ScheduleShaker (seeded from ATOMFS_STRESS_SEED, default 1) perturbs the
// schedule between operations — yields and short sleeps on a single core are
// what force preemption *inside* critical windows. The same seed replays the
// same perturbation sequence, which is how a sanitizer report from this
// binary is reproduced deterministically.
//
// Targets, matching the repo's cross-thread handoffs:
//   * AtomFS lock coupling under a rename/lookup/unlink path-interdependency
//     mix, with the CRL-H monitor attached (ghost state is itself shared).
//   * MetricsRegistry: snapshot readers racing sharded writers, asserting
//     the count/sum coherence the release/acquire bucket protocol promises.
//   * TraceRing: concurrent writers vs. snapshot readers, asserting events
//     are never torn (the seqlock regression).
//   * A live AtomFsServer: pipelined ClientSessions across threads, Stop()
//     with traffic inflight, and idle-reap racing a client mid-flush.
//
// The sanitizer builds define ATOMFS_SANITIZE_THREAD/ATOMFS_SANITIZE_ADDRESS
// and run 5-15x slower, so iteration counts scale down there; the assertions
// are identical in every mode.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/core/atom_fs.h"
#include "src/crlh/monitor.h"
#include "src/net/wire.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/sink.h"
#include "src/obs/trace.h"
#include "src/obs/tracer.h"
#include "src/server/server.h"
#include "src/sim/stress.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

#if defined(ATOMFS_SANITIZE_THREAD)
constexpr int kScale = 4;  // TSan: ~5-15x slowdown, keep wall time in check
#elif defined(ATOMFS_SANITIZE_ADDRESS)
constexpr int kScale = 2;
#else
constexpr int kScale = 1;
#endif

uint64_t StressSeed() {
  const char* env = std::getenv("ATOMFS_STRESS_SEED");
  return env != nullptr && *env != '\0' ? std::strtoull(env, nullptr, 10) : 1;
}

// Small namespace, heavy on renames of inner directories, so LockPaths
// constantly cross and the helper machinery engages.
Path RandomPath(Rng& rng, size_t max_depth = 4) {
  static const char* kNames[] = {"a", "b", "c", "d", "e"};
  Path p;
  const size_t depth = rng.Between(1, max_depth);
  for (size_t i = 0; i < depth; ++i) {
    p.parts.emplace_back(kNames[rng.Below(5)]);
  }
  return p;
}

OpCall RandomCall(Rng& rng) {
  switch (rng.Below(10)) {
    case 0:
    case 1:
      return OpCall::MkdirOf(RandomPath(rng));
    case 2:
      return OpCall::MknodOf(RandomPath(rng));
    case 3:
      return OpCall::UnlinkOf(RandomPath(rng));
    case 4:
      return OpCall::RmdirOf(RandomPath(rng));
    case 5:
    case 6:
    case 7:
      return OpCall::RenameOf(RandomPath(rng), RandomPath(rng));
    default:
      return OpCall::StatOf(RandomPath(rng));
  }
}

// --- AtomFS + CRL-H monitor --------------------------------------------------

TEST(RaceStress, MonitoredPathInterdependencyMix) {
  const uint64_t seed = StressSeed();
  const int threads = 8;
  const int ops = 400 / kScale;

  CrlhMonitor monitor;
  AtomFs::Options opts;
  opts.observer = &monitor;
  AtomFs fs(std::move(opts));

  RaceBarrier barrier(threads);
  std::vector<std::thread> cohort;
  cohort.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    cohort.emplace_back([&, t] {
      Rng rng(seed * 1000003 + t);
      ScheduleShaker shaker(seed, static_cast<uint32_t>(t));
      barrier.Arrive();
      // Every thread runs the same op count, so the periodic re-alignment
      // arrives the same number of times on every thread — no straggler
      // bookkeeping needed.
      for (int i = 0; i < ops; ++i) {
        RunOp(fs, RandomCall(rng));
        shaker.Perturb();
        if (i % 64 == 0) {
          barrier.Arrive();  // re-align the cohort: fresh overlap window
        }
      }
    });
  }
  for (auto& th : cohort) {
    th.join();
  }
  ASSERT_TRUE(monitor.ok()) << monitor.violations()[0];
  EXPECT_TRUE(monitor.CheckQuiescent(fs.SnapshotSpec()));
}

// The optimistic (RCU) walk's hot loop: readers resolve stat/readdir/read
// lock-free while mutators rename, unlink, and recreate the very directories
// under them. Version-chain validation is the only thing standing between a
// reader and a stale result, so the monitored run must stay violation-free,
// and the core.rcuwalk.* counters must balance exactly: every reader op ends
// in either one passing validation or one fallback, with failed attempts as
// interior steps (attempts - validation_failures + fallbacks == reader ops).
TEST(RaceStress, RcuWalkReadersVsRenameUnlinkChurn) {
  const uint64_t seed = StressSeed();
  const int mutators = 4;
  const int readers = 4;
  const int ops = 400 / kScale;

  CrlhMonitor monitor;
  MetricsRegistry registry;
  TracingObserver tracer(&registry);
  TeeObserver tee(&monitor, &tracer);
  AtomFs::Options opts;
  opts.observer = &tee;
  opts.enable_rcu_walk = true;
  AtomFs fs(std::move(opts));

  RaceBarrier barrier(mutators + readers);
  std::vector<std::thread> cohort;
  cohort.reserve(static_cast<size_t>(mutators + readers));
  for (int t = 0; t < mutators; ++t) {
    cohort.emplace_back([&, t] {
      Rng rng(seed * 1000003 + t);
      ScheduleShaker shaker(seed, static_cast<uint32_t>(t));
      barrier.Arrive();
      for (int i = 0; i < ops; ++i) {
        switch (rng.Below(6)) {
          case 0:
            RunOp(fs, OpCall::MkdirOf(RandomPath(rng)));
            break;
          case 1:
            RunOp(fs, OpCall::MknodOf(RandomPath(rng)));
            break;
          case 2:
            RunOp(fs, OpCall::UnlinkOf(RandomPath(rng)));
            break;
          default:
            RunOp(fs, OpCall::RenameOf(RandomPath(rng), RandomPath(rng)));
            break;
        }
        shaker.Perturb();
        if (i % 64 == 0) {
          barrier.Arrive();
        }
      }
    });
  }
  for (int r = 0; r < readers; ++r) {
    cohort.emplace_back([&, r] {
      Rng rng(seed * 7777 + r);
      ScheduleShaker shaker(seed, static_cast<uint32_t>(mutators + r));
      barrier.Arrive();
      for (int i = 0; i < ops; ++i) {
        switch (rng.Below(3)) {
          case 0:
            RunOp(fs, OpCall::StatOf(RandomPath(rng)));
            break;
          case 1:
            RunOp(fs, OpCall::ReadDirOf(RandomPath(rng)));
            break;
          default:
            RunOp(fs, OpCall::ReadOf(RandomPath(rng), 0, 16));
            break;
        }
        shaker.Perturb();
        if (i % 64 == 0) {
          barrier.Arrive();
        }
      }
    });
  }
  for (auto& th : cohort) {
    th.join();
  }

  ASSERT_TRUE(monitor.ok()) << monitor.violations()[0];
  EXPECT_TRUE(monitor.CheckQuiescent(fs.SnapshotSpec()));

  const MetricsSnapshot snap = registry.Snapshot();
  const uint64_t attempts = snap.CounterValue("core.rcuwalk.attempts");
  const uint64_t failures = snap.CounterValue("core.rcuwalk.validation_failures");
  const uint64_t fallbacks = snap.CounterValue("core.rcuwalk.fallbacks");
  EXPECT_GT(attempts, 0u) << "the optimistic path never engaged";
  EXPECT_EQ(snap.CounterValue("core.rcuwalk.unvalidated_reads"), 0u);
  EXPECT_EQ(attempts - failures + fallbacks,
            static_cast<uint64_t>(readers) * static_cast<uint64_t>(ops))
      << "event accounting broke: attempts=" << attempts << " failures=" << failures
      << " fallbacks=" << fallbacks;
}

// --- MetricsRegistry snapshot vs. writers ------------------------------------

TEST(RaceStress, MetricsSnapshotVsWriters) {
  const uint64_t seed = StressSeed();
  const int writers = 6;
  const int rounds = 4000 / kScale;
  constexpr uint64_t kValue = 1024;  // constant so sum/count coherence is exact

  MetricsRegistry registry;
  RaceBarrier barrier(writers + 1);
  std::atomic<bool> done{false};
  std::vector<std::thread> cohort;
  for (int t = 0; t < writers; ++t) {
    cohort.emplace_back([&, t] {
      Counter c = registry.GetCounter("stress.events");
      Gauge g = registry.GetGauge("stress.level");
      Histogram h = registry.GetHistogram("stress.latency");
      ScheduleShaker shaker(seed, static_cast<uint32_t>(t));
      barrier.Arrive();
      for (int i = 0; i < rounds; ++i) {
        c.Inc();
        g.Add(1);
        h.Record(kValue);
        g.Sub(1);
        if (i % 128 == 0) {
          shaker.Perturb();
        }
      }
    });
  }
  std::thread reader([&] {
    barrier.Arrive();
    uint64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = registry.Snapshot();
      const uint64_t count = snap.CounterValue("stress.events");
      EXPECT_GE(count, last_count) << "counter went backwards";
      last_count = count;
      const HistogramSnapshot* h = snap.FindHistogram("stress.latency");
      if (h != nullptr) {
        // The release/acquire bucket protocol: every counted event's sum
        // contribution is visible, so sum >= count * value always.
        EXPECT_GE(h->sum, h->count * kValue) << "histogram counted an event whose sum is missing";
        (void)snap.ToText();  // the --metrics-dump path, concurrently
      }
    }
  });
  for (auto& th : cohort) {
    th.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  const MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.CounterValue("stress.events"),
            static_cast<uint64_t>(writers) * rounds);
  EXPECT_EQ(final_snap.GaugeValue("stress.level"), 0);
  const HistogramSnapshot* h = final_snap.FindHistogram("stress.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<uint64_t>(writers) * rounds);
  EXPECT_EQ(h->sum, static_cast<uint64_t>(writers) * rounds * kValue);
}

// --- TraceRing concurrent writers vs. snapshot readers -----------------------

TEST(RaceStress, TraceRingNeverTearsEvents) {
  const uint64_t seed = StressSeed();
  const int writers = 4;
  const int appends = 20000 / kScale;

  // Small ring: constant wrap pressure, so slot reuse races with readers.
  TraceRing ring(256);
  RaceBarrier barrier(writers + 1);
  std::atomic<bool> done{false};

  // Every field of a writer's event is derived from one value, so a torn
  // copy (fields from two different writes) is detectable.
  auto make_event = [](uint32_t tid, uint64_t i) {
    TraceEvent e;
    e.tid = tid;
    e.type = TraceEventType::kLockAcquired;
    e.ino = i * 1000 + tid;
    e.arg = i * 1000 + tid;
    e.depth = static_cast<uint16_t>(i % 1000);
    return e;
  };

  std::vector<std::thread> cohort;
  for (int t = 0; t < writers; ++t) {
    cohort.emplace_back([&, t] {
      ScheduleShaker shaker(seed, static_cast<uint32_t>(t));
      barrier.Arrive();
      for (int i = 0; i < appends; ++i) {
        ring.Append(make_event(static_cast<uint32_t>(t), static_cast<uint64_t>(i)));
        if (i % 256 == 0) {
          shaker.Perturb();
        }
      }
    });
  }
  std::thread reader([&] {
    barrier.Arrive();
    while (!done.load(std::memory_order_acquire)) {
      for (const TraceEvent& e : ring.Snapshot()) {
        ASSERT_EQ(e.ino, e.arg) << "torn event: ino and arg written together";
        ASSERT_EQ(e.ino % 1000, e.tid) << "torn event: ino from a different writer than tid";
        ASSERT_EQ(e.depth, (e.ino / 1000) % 1000) << "torn event: depth from a different append";
      }
    }
  });
  for (auto& th : cohort) {
    th.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(ring.total_appended(), static_cast<uint64_t>(writers) * appends);
  // Quiesced: a final snapshot is consistent and near-capacity (concurrent
  // wrap losers may leave a few stale slots, never torn ones).
  const auto final_events = ring.Snapshot();
  EXPECT_LE(final_events.size(), ring.capacity());
  EXPECT_GE(final_events.size(), ring.capacity() / 2);
}

// Flight-recorder hot loop: writers hammer the ring with the ghost-event
// types the CrlhMonitor instrumentation emits (kHelp carrying flags/aux,
// kHelpedRetired, kInvariant) while readers concurrently Snapshot and render
// the slice through ExportChromeTrace — the exact reader the TRACE wire op
// and `atomfsd --trace-out` run against a live ring. Exercises the seqlock
// protocol over the full 56-byte event (the `aux` word is the newest field)
// and the exporter's tolerance for slices that start mid-operation.
TEST(RaceStress, GhostEventRingExportUnderWriteLoad) {
  const uint64_t seed = StressSeed();
  const int writers = 4;
  const int readers = 2;
  const int appends = 12000 / kScale;

  TraceRing ring(512);  // wrap pressure: exporters always see a torn window
  RaceBarrier barrier(writers + readers);
  std::atomic<bool> done{false};

  // Every field derives from (tid, i) so readers can detect torn copies.
  auto make_event = [](uint32_t tid, uint64_t i) {
    TraceEvent e;
    e.tid = tid;
    switch (i % 3) {
      case 0:
        e.type = TraceEventType::kHelp;
        e.flags = i % 2 == 0 ? kTraceHelpReasonSrcPrefix : kTraceHelpReasonLockPathPrefix;
        e.depth = static_cast<uint16_t>(i % 7 + 1);
        break;
      case 1:
        e.type = TraceEventType::kHelpedRetired;
        break;
      default:
        e.type = TraceEventType::kInvariant;
        e.op = static_cast<uint8_t>(i % kInvariantKindCount);
        break;
    }
    e.ino = i * 1000 + tid;
    e.arg = i * 1000 + tid;
    e.aux = i * 1000 + tid;
    return e;
  };

  std::vector<std::thread> cohort;
  for (int t = 0; t < writers; ++t) {
    cohort.emplace_back([&, t] {
      ScheduleShaker shaker(seed, static_cast<uint32_t>(t));
      barrier.Arrive();
      for (int i = 0; i < appends; ++i) {
        ring.Append(make_event(static_cast<uint32_t>(t), static_cast<uint64_t>(i)));
        if (i % 256 == 0) {
          shaker.Perturb();
        }
      }
    });
  }
  std::vector<std::thread> exporters;
  for (int r = 0; r < readers; ++r) {
    exporters.emplace_back([&, r] {
      ScheduleShaker shaker(seed, static_cast<uint32_t>(100 + r));
      barrier.Arrive();
      while (!done.load(std::memory_order_acquire)) {
        const auto events = ring.Snapshot();
        for (const TraceEvent& e : events) {
          ASSERT_EQ(e.ino, e.arg) << "torn event: ino and arg written together";
          ASSERT_EQ(e.ino, e.aux) << "torn event: aux from a different append";
          ASSERT_EQ(e.ino % 1000, e.tid) << "torn event: ino from a different writer than tid";
        }
        const std::string json = ExportChromeTrace(events);
        ASSERT_FALSE(json.empty());
        ASSERT_EQ(json.front(), '{');
        ASSERT_EQ(json.back(), '}');
        shaker.Perturb();
      }
    });
  }
  for (auto& th : cohort) {
    th.join();
  }
  done.store(true, std::memory_order_release);
  for (auto& th : exporters) {
    th.join();
  }
  EXPECT_EQ(ring.total_appended(), static_cast<uint64_t>(writers) * appends);
}

// --- live server: pipelining, Stop() mid-traffic, idle-reap vs. flush --------

std::string StressSocketPath(const char* tag) {
  static int counter = 0;
  return "/tmp/atomfs_race_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(counter++) + ".sock";
}

TEST(RaceStress, ServerPipelinedTrafficWithConcurrentStop) {
  const uint64_t seed = StressSeed();
  const int client_threads = 4;
  const int rounds = 60 / kScale;

  AtomFs fs;
  MetricsRegistry registry;  // outlives the server (ServerOptions::metrics rule)
  ServerOptions options;
  options.unix_path = StressSocketPath("stop");
  options.shards = 2;
  options.workers = 3;
  options.metrics = &registry;
  AtomFsServer server(&fs, options);
  ASSERT_TRUE(server.Start().ok());

  RaceBarrier barrier(client_threads + 1);
  std::vector<std::thread> cohort;
  std::atomic<int> io_failures{0};
  for (int t = 0; t < client_threads; ++t) {
    cohort.emplace_back([&, t] {
      Rng rng(seed * 77 + t);
      ScheduleShaker shaker(seed, static_cast<uint32_t>(t));
      barrier.Arrive();
      auto client = AtomFsClient::ConnectUnix(options.unix_path);
      if (!client.ok()) {
        io_failures.fetch_add(1, std::memory_order_relaxed);
        return;  // raced with Stop before the handshake — acceptable
      }
      for (int i = 0; i < rounds; ++i) {
        // Pipelined burst on the session, then a metrics snapshot over the
        // wire (exercises registry Snapshot vs. the server's own writers).
        ClientSession& session = (*client)->session();
        std::vector<ClientSession::Future> futures;
        for (int b = 0; b < 8; ++b) {
          WireRequest req;
          req.op = WireOp::kMkdir;
          req.path_a = "/t" + std::to_string(t) + "_" + std::to_string(rng.Below(32));
          futures.push_back(session.Submit(req));
        }
        if (!session.Flush().ok()) {
          io_failures.fetch_add(1, std::memory_order_relaxed);
          break;  // server stopped underneath us: every future must still resolve
        }
        for (auto& f : futures) {
          (void)f.Wait();  // must never hang or crash, whatever Stop did
        }
        shaker.Perturb();
      }
    });
  }
  // Let traffic build, then stop the server with requests inflight.
  barrier.Arrive();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Stop();
  for (auto& th : cohort) {
    th.join();
  }
  // The run is about surviving the race; clients may or may not have seen
  // the shutdown depending on timing.
  SUCCEED();
}

TEST(RaceStress, IdleReapRacesClientFlush) {
  const uint64_t seed = StressSeed();
  const int client_threads = 3;
  const int rounds = 20 / (kScale > 2 ? 2 : 1);

  AtomFs fs;
  MetricsRegistry registry;
  ServerOptions options;
  options.unix_path = StressSocketPath("reap");
  options.shards = 2;
  options.workers = 2;
  options.idle_timeout_ms = 5;  // aggressive: reap constantly
  options.metrics = &registry;
  AtomFsServer server(&fs, options);
  ASSERT_TRUE(server.Start().ok());

  RaceBarrier barrier(client_threads);
  std::vector<std::thread> cohort;
  for (int t = 0; t < client_threads; ++t) {
    cohort.emplace_back([&, t] {
      Rng rng(seed * 13 + t);
      ScheduleShaker shaker(seed, static_cast<uint32_t>(t));
      barrier.Arrive();
      for (int i = 0; i < rounds; ++i) {
        auto client = AtomFsClient::ConnectUnix(options.unix_path);
        if (!client.ok()) {
          continue;
        }
        ClientSession& session = (*client)->session();
        std::vector<ClientSession::Future> futures;
        for (int b = 0; b < 4; ++b) {
          WireRequest req;
          req.op = WireOp::kStat;
          req.path_a = "/";
          futures.push_back(session.Submit(req));
        }
        // Sometimes dawdle past the idle timeout with requests staged, so
        // the server's reaper runs while we are about to flush — the
        // ETIMEDOUT courtesy frame then races our MSGBATCH.
        if (rng.Chance(1, 2)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(8));
        }
        (void)session.Flush();
        for (auto& f : futures) {
          const auto r = f.Wait();
          if (!r.ok()) {
            // Reaped mid-conversation: kTimedOut (courtesy frame landed),
            // kIo (hard close won), or kProto are all legal; a hang or
            // crash is the bug this test exists to catch.
            EXPECT_TRUE(r.status().code() == Errc::kTimedOut ||
                        r.status().code() == Errc::kIo ||
                        r.status().code() == Errc::kProto)
                << ErrcName(r.status().code());
          }
        }
        shaker.Perturb();
      }
    });
  }
  for (auto& th : cohort) {
    th.join();
  }
  server.Stop();
}

// One session shared across threads: Submit/Flush/Wait interleave under the
// session mutex while the server pipelines — the client-side counterpart of
// the server's loop<->worker handoff.
TEST(RaceStress, SharedSessionConcurrentSubmitters) {
  const uint64_t seed = StressSeed();
  const int threads = 4;
  const int rounds = 80 / kScale;

  AtomFs fs;
  MetricsRegistry registry;
  ServerOptions options;
  options.unix_path = StressSocketPath("shared");
  options.shards = 1;
  options.workers = 2;
  options.metrics = &registry;
  AtomFsServer server(&fs, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = AtomFsClient::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  ClientSession& session = (*client)->session();

  RaceBarrier barrier(threads);
  std::vector<std::thread> cohort;
  for (int t = 0; t < threads; ++t) {
    cohort.emplace_back([&, t] {
      Rng rng(seed * 31 + t);
      ScheduleShaker shaker(seed, static_cast<uint32_t>(t));
      barrier.Arrive();
      for (int i = 0; i < rounds; ++i) {
        WireRequest req;
        req.op = WireOp::kMkdir;
        req.path_a = "/s" + std::to_string(rng.Below(64));
        auto future = session.Submit(req);
        if (rng.Chance(1, 3)) {
          shaker.Perturb();  // leave it staged a while; another thread flushes
        }
        const auto r = future.Wait();
        ASSERT_TRUE(r.ok() || r.status().code() == Errc::kExist ||
                    r.status().code() == Errc::kNotDir)
            << ErrcName(r.status().code());
      }
    });
  }
  for (auto& th : cohort) {
    th.join();
  }
  server.Stop();
}

}  // namespace
}  // namespace atomfs
