// End-to-end tests for the atomfsd serving layer: loopback round-trips of
// every FileSystem and descriptor op through AtomFsClient, a POSIX
// conformance subset run against the remote mount, survival under malformed
// byte streams, graceful shutdown, and a multi-client concurrent stress with
// the CRL-H monitor attached server-side (zero violations expected — the
// serving layer must not weaken the linearizability the backend provides).

#include "src/server/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/core/atom_fs.h"
#include "src/crlh/monitor.h"
#include "src/obs/metrics.h"
#include "src/txn/txn.h"
#include "src/util/rand.h"
#include "src/workload/filebench.h"

namespace atomfs {
namespace {

std::span<const std::byte> Bytes(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

std::string UniqueSocketPath(const char* tag) {
  static int counter = 0;
  return "/tmp/atomfs_test_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(counter++) + ".sock";
}

// Raw client socket for sending hand-crafted (malformed) byte streams.
int RawConnect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

class ServerTest : public ::testing::Test {
 protected:
  void StartUnix(FileSystem* fs, int workers = 4) {
    sock_path_ = UniqueSocketPath("srv");
    ServerOptions options;
    options.unix_path = sock_path_;
    options.workers = workers;
    server_ = std::make_unique<AtomFsServer>(fs, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<AtomFsClient> Client() {
    auto c = AtomFsClient::ConnectUnix(sock_path_);
    EXPECT_TRUE(c.ok());
    return std::move(*c);
  }

  std::string sock_path_;
  std::unique_ptr<AtomFsServer> server_;
};

// --- basic lifecycle ---------------------------------------------------------

TEST_F(ServerTest, StartAndStopIsClean) {
  AtomFs fs;
  StartUnix(&fs);
  EXPECT_TRUE(server_->running());
  server_->Stop();
  EXPECT_FALSE(server_->running());
  server_->Stop();  // idempotent
}

TEST_F(ServerTest, StartWithoutListenersFails) {
  AtomFs fs;
  AtomFsServer server(&fs, ServerOptions{});
  EXPECT_EQ(server.Start().code(), Errc::kInval);
}

TEST_F(ServerTest, StopUnblocksIdleConnection) {
  AtomFs fs;
  StartUnix(&fs);
  auto client = Client();
  ASSERT_TRUE(client->Ping().ok());
  server_->Stop();  // must not hang on the parked worker
  EXPECT_EQ(client->Ping().code(), Errc::kIo);
}

// --- full-interface round-trip over Unix-domain ------------------------------

TEST_F(ServerTest, RoundTripsEveryOperation) {
  AtomFs fs;
  StartUnix(&fs);
  auto client = Client();

  // Tree ops.
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Mkdir("/d").ok());
  EXPECT_TRUE(client->Mkdir("/d/sub").ok());
  EXPECT_TRUE(client->Mknod("/d/f").ok());
  EXPECT_TRUE(client->Rename("/d/f", "/d/g").ok());
  EXPECT_TRUE(client->Mknod("/d/h").ok());
  EXPECT_TRUE(client->Exchange("/d/g", "/d/h").ok());

  // Data plane via paths.
  EXPECT_TRUE(WriteString(*client, "/d/g", "remote bytes").ok());
  auto text = ReadString(*client, "/d/g");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "remote bytes");
  EXPECT_TRUE(client->Truncate("/d/g", 6).ok());
  auto attr = client->Stat("/d/g");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 6u);
  EXPECT_EQ(attr->type, FileType::kFile);

  auto entries = client->ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);  // sub, g, h

  // Descriptor plane.
  auto fd = client->Open("/d/g", OpenFlags::kRead | OpenFlags::kWrite);
  ASSERT_TRUE(fd.ok());
  auto fstat = client->Fstat(*fd);
  ASSERT_TRUE(fstat.ok());
  EXPECT_EQ(fstat->ino, attr->ino);
  std::byte buf[16];
  auto n = client->FdRead(*fd, std::span<std::byte>(buf, 6));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 6u);
  EXPECT_EQ(std::memcmp(buf, "remote", 6), 0);
  auto pos = client->Seek(*fd, 0);
  ASSERT_TRUE(pos.ok());
  auto wrote = client->FdWrite(*fd, Bytes("REMOTE"));
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 6u);
  auto pread = client->Pread(*fd, 0, std::span<std::byte>(buf, 6));
  ASSERT_TRUE(pread.ok());
  EXPECT_EQ(std::memcmp(buf, "REMOTE", 6), 0);
  EXPECT_TRUE(client->Pwrite(*fd, 2, Bytes("xx")).ok());
  EXPECT_TRUE(client->Ftruncate(*fd, 4).ok());
  auto after = client->Fstat(*fd);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size, 4u);
  EXPECT_TRUE(client->Close(*fd).ok());
  EXPECT_EQ(client->Close(*fd).code(), Errc::kBadFd);

  // Directory descriptor.
  auto dfd = client->Open("/d", OpenFlags::kRead);
  ASSERT_TRUE(dfd.ok());
  auto dentries = client->ReadDirFd(*dfd);
  ASSERT_TRUE(dentries.ok());
  EXPECT_EQ(dentries->size(), 3u);
  EXPECT_TRUE(client->Close(*dfd).ok());

  // Cleanup ops.
  EXPECT_TRUE(client->Unlink("/d/g").ok());
  EXPECT_TRUE(client->Unlink("/d/h").ok());
  EXPECT_TRUE(client->Rmdir("/d/sub").ok());
  EXPECT_TRUE(client->Rmdir("/d").ok());

  // Admin stats: every op family exercised above must show up.
  auto stats = client->FetchStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->connections_accepted, 1u);
  EXPECT_EQ(stats->protocol_errors, 0u);
  EXPECT_GT(stats->ops.size(), 15u);
  for (const WireOpStats& s : stats->ops) {
    EXPECT_GT(s.count, 0u) << WireOpName(static_cast<WireOp>(s.op));
  }
}

TEST_F(ServerTest, TcpRoundTrip) {
  AtomFs fs;
  ServerOptions options;
  options.tcp_listen = true;  // ephemeral port
  server_ = std::make_unique<AtomFsServer>(&fs, options);
  ASSERT_TRUE(server_->Start().ok());
  ASSERT_NE(server_->BoundTcpPort(), 0);

  auto client = AtomFsClient::ConnectTcp(server_->BoundTcpPort());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Mkdir("/t").ok());
  EXPECT_TRUE(WriteString(**client, "/t/f", "over tcp").ok());
  auto text = ReadString(**client, "/t/f");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "over tcp");
}

TEST_F(ServerTest, ErrorsCrossTheWireFaithfully) {
  AtomFs fs;
  StartUnix(&fs);
  auto client = Client();
  EXPECT_EQ(client->Stat("/missing").status().code(), Errc::kNoEnt);
  ASSERT_TRUE(client->Mkdir("/d").ok());
  EXPECT_EQ(client->Mkdir("/d").code(), Errc::kExist);
  ASSERT_TRUE(client->Mknod("/d/f").ok());
  EXPECT_EQ(client->Rmdir("/d").code(), Errc::kNotEmpty);
  EXPECT_EQ(client->ReadDir("/d/f").status().code(), Errc::kNotDir);
  EXPECT_EQ(client->Rmdir("/d/f").code(), Errc::kNotDir);
  EXPECT_EQ(client->Fstat(999).status().code(), Errc::kBadFd);
  EXPECT_EQ(client->Mkdir("relative/path").code(), Errc::kInval);
}

TEST_F(ServerTest, DescriptorTablesArePerConnection) {
  AtomFs fs;
  StartUnix(&fs);
  auto a = Client();
  auto b = Client();
  ASSERT_TRUE(a->Mknod("/f").ok());
  auto fd = a->Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  // The same numeric descriptor means nothing on another connection.
  EXPECT_EQ(b->Fstat(*fd).status().code(), Errc::kBadFd);
  EXPECT_TRUE(a->Fstat(*fd).ok());
}

// --- POSIX conformance subset through the remote mount -----------------------

TEST_F(ServerTest, ConformanceSubsetOverTheWire) {
  AtomFs fs;
  StartUnix(&fs);
  auto client = Client();
  FileSystem& remote = *client;  // the whole point: a FileSystem like any other

  // mkdir/mknod semantics.
  ASSERT_TRUE(remote.Mkdir("/d").ok());
  EXPECT_EQ(remote.Mkdir("/d").code(), Errc::kExist);
  EXPECT_EQ(remote.Mkdir("/no/dir").code(), Errc::kNoEnt);
  ASSERT_TRUE(remote.Mknod("/d/f").ok());
  EXPECT_EQ(remote.Mkdir("/d/f/x").code(), Errc::kNotDir);
  EXPECT_EQ(remote.Mknod("/d/f").code(), Errc::kExist);

  // unlink/rmdir.
  EXPECT_EQ(remote.Unlink("/d").code(), Errc::kIsDir);
  EXPECT_EQ(remote.Rmdir("/").code(), Errc::kBusy);

  // rename semantics: into descendant fails, over empty dir works.
  ASSERT_TRUE(remote.Mkdir("/d/sub").ok());
  EXPECT_EQ(remote.Rename("/d", "/d/sub/x").code(), Errc::kInval);
  ASSERT_TRUE(remote.Mkdir("/e").ok());
  EXPECT_TRUE(remote.Rename("/e", "/d/sub2").ok());
  EXPECT_EQ(remote.Stat("/e").status().code(), Errc::kNoEnt);

  // exchange requires both ends.
  EXPECT_EQ(remote.Exchange("/d/f", "/nope").code(), Errc::kNoEnt);
  ASSERT_TRUE(remote.Mknod("/d/g").ok());
  EXPECT_TRUE(remote.Exchange("/d/f", "/d/g").ok());

  // read/write/truncate.
  ASSERT_TRUE(WriteString(remote, "/d/f", "0123456789").ok());
  std::byte buf[4];
  auto r = remote.Read("/d/f", 8, std::span<std::byte>(buf, 4));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);  // short read at EOF
  EXPECT_TRUE(remote.Truncate("/d/f", 3).ok());
  auto text = ReadString(remote, "/d/f");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "012");
  EXPECT_EQ(remote.Read("/d", 0, std::span<std::byte>(buf, 4)).status().code(), Errc::kIsDir);

  // Directory listings reflect all of the above.
  auto entries = remote.ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 4u);  // f, g, sub, sub2
}

// --- malformed frames --------------------------------------------------------

TEST_F(ServerTest, SurvivesGarbageAndStaysServiceable) {
  AtomFs fs;
  StartUnix(&fs);

  // 1. A frame whose payload is garbage: server answers EPROTO and closes.
  {
    const int raw = RawConnect(sock_path_);
    std::vector<std::byte> garbage(32, std::byte{0xee});
    ASSERT_TRUE(SendFrame(raw, garbage).ok());
    auto response = RecvFrame(raw);
    ASSERT_TRUE(response.ok());
    WireReader r(*response);
    uint8_t status = 0;
    ASSERT_TRUE(r.U8(&status));
    EXPECT_EQ(ErrcOfWireStatus(status), Errc::kProto);
    // Connection is closed afterwards.
    EXPECT_EQ(RecvFrame(raw).status().code(), Errc::kNoEnt);
    close(raw);
  }

  // 2. An oversized declared length: EPROTO, closed.
  {
    const int raw = RawConnect(sock_path_);
    WireWriter header;
    header.U32(kWireMaxFrameBytes + 1);
    ASSERT_EQ(send(raw, header.buf().data(), header.buf().size(), MSG_NOSIGNAL), 4);
    auto response = RecvFrame(raw);
    ASSERT_TRUE(response.ok());
    WireReader r(*response);
    uint8_t status = 0;
    ASSERT_TRUE(r.U8(&status));
    EXPECT_EQ(ErrcOfWireStatus(status), Errc::kProto);
    close(raw);
  }

  // 3. A truncated frame (header promises more than we send) then close.
  {
    const int raw = RawConnect(sock_path_);
    WireWriter header;
    header.U32(100);
    ASSERT_EQ(send(raw, header.buf().data(), header.buf().size(), MSG_NOSIGNAL), 4);
    close(raw);  // server sees EOF mid-frame and must just drop the conn
  }

  // 4. Fuzz volley: random byte blasts on fresh connections.
  Rng rng(0x5eed);
  for (int iter = 0; iter < 50; ++iter) {
    const int raw = RawConnect(sock_path_);
    std::vector<std::byte> noise(1 + rng.Below(256));
    for (auto& b : noise) {
      b = static_cast<std::byte>(rng.Below(256));
    }
    send(raw, noise.data(), noise.size(), MSG_NOSIGNAL);
    close(raw);
  }

  // The server is still fully serviceable for a well-behaved client...
  auto client = Client();
  EXPECT_TRUE(client->Mkdir("/alive").ok());
  EXPECT_TRUE(client->Stat("/alive").ok());
  auto stats = client->FetchStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->protocol_errors, 2u);  // cases 1 and 2 at minimum
  // ...and still shuts down cleanly (no leaked blocked connections).
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

// --- protocol v2: HELLO, pipelining, windows, backpressure, timeouts ---------

// Prepends the 4-byte length header, so several frames can go in one send().
std::vector<std::byte> Framed(std::span<const std::byte> payload) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  std::vector<std::byte> out(w.buf().begin(), w.buf().end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::byte> FramedRequest(const WireRequest& req) {
  return Framed(EncodeRequest(req));
}

void Append(std::vector<std::byte>& out, const std::vector<std::byte>& more) {
  out.insert(out.end(), more.begin(), more.end());
}

// Reads one response frame and returns its leading wire status; kIo when the
// peer closed instead of replying.
Errc RecvStatus(int fd) {
  auto response = RecvFrame(fd);
  if (!response.ok()) {
    return Errc::kIo;
  }
  WireReader r(*response);
  uint8_t status = 0;
  return r.U8(&status) ? ErrcOfWireStatus(status) : Errc::kIo;
}

WireRequest HelloRequest(uint32_t version, uint32_t want) {
  WireRequest req;
  req.op = WireOp::kHello;
  req.proto_version = version;
  req.max_inflight = want;
  return req;
}

TEST_F(ServerTest, HelloNegotiatesWindowAndSurvivesUnknownVersion) {
  AtomFs fs;
  StartUnix(&fs);
  const int raw = RawConnect(sock_path_);

  ASSERT_TRUE(SendFrame(raw, EncodeRequest(HelloRequest(kWireProtoVersion, 4))).ok());
  auto response = RecvFrame(raw);
  ASSERT_TRUE(response.ok());
  WireReader r(*response);
  uint8_t status = 0;
  ASSERT_TRUE(r.U8(&status));
  EXPECT_EQ(ErrcOfWireStatus(status), Errc::kOk);
  WireHello granted;
  ASSERT_TRUE(ParseHello(r, &granted));
  EXPECT_EQ(granted.version, kWireProtoVersion);
  EXPECT_EQ(granted.max_inflight, 4u);

  // An unknown version earns a clean EPROTO reply — and the connection
  // stays open and serviceable, it is NOT dropped.
  ASSERT_TRUE(SendFrame(raw, EncodeRequest(HelloRequest(999, 4))).ok());
  EXPECT_EQ(RecvStatus(raw), Errc::kProto);
  WireRequest ping;
  ping.op = WireOp::kPing;
  ASSERT_TRUE(SendFrame(raw, EncodeRequest(ping)).ok());
  EXPECT_EQ(RecvStatus(raw), Errc::kOk);
  close(raw);
}

TEST_F(ServerTest, PipelinedRepliesPreserveSubmissionOrder) {
  AtomFs fs;
  StartUnix(&fs);
  {
    auto setup = Client();
    for (int i = 1; i <= 5; ++i) {
      const std::string path = "/f" + std::to_string(i);
      ASSERT_TRUE(setup->Mknod(path).ok());
      ASSERT_TRUE(WriteString(*setup, path, std::string(static_cast<size_t>(i), 'x')).ok());
    }
  }

  // HELLO plus five stats in a single send: the replies must come back in
  // submission order, distinguishable by the five distinct file sizes.
  const int raw = RawConnect(sock_path_);
  std::vector<std::byte> burst = FramedRequest(HelloRequest(kWireProtoVersion, 8));
  for (int i = 1; i <= 5; ++i) {
    WireRequest stat;
    stat.op = WireOp::kStat;
    stat.path_a = "/f" + std::to_string(i);
    Append(burst, FramedRequest(stat));
  }
  ASSERT_EQ(send(raw, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));

  EXPECT_EQ(RecvStatus(raw), Errc::kOk);  // HELLO
  for (int i = 1; i <= 5; ++i) {
    auto response = RecvFrame(raw);
    ASSERT_TRUE(response.ok());
    WireReader r(*response);
    uint8_t status = 0;
    ASSERT_TRUE(r.U8(&status));
    ASSERT_EQ(ErrcOfWireStatus(status), Errc::kOk);
    Attr attr;
    ASSERT_TRUE(ParseAttr(r, &attr));
    EXPECT_EQ(attr.size, static_cast<uint64_t>(i)) << "reply " << i << " out of order";
  }
  close(raw);
}

TEST_F(ServerTest, WindowEnforcementStopsReadingAndCountsStalls) {
  AtomFs fs;
  MetricsRegistry registry;
  sock_path_ = UniqueSocketPath("win");
  ServerOptions options;
  options.unix_path = sock_path_;
  options.metrics = &registry;
  server_ = std::make_unique<AtomFsServer>(&fs, options);
  ASSERT_TRUE(server_->Start().ok());

  const int raw = RawConnect(sock_path_);
  ASSERT_TRUE(SendFrame(raw, EncodeRequest(HelloRequest(kWireProtoVersion, 2))).ok());
  EXPECT_EQ(RecvStatus(raw), Errc::kOk);

  // Ten pings in one send against a window of two: the server may only parse
  // up to the window, must stall the rest in its read buffer, and resume as
  // replies drain — every request still gets its reply, in order.
  WireRequest ping;
  ping.op = WireOp::kPing;
  std::vector<std::byte> burst;
  for (int i = 0; i < 10; ++i) {
    Append(burst, FramedRequest(ping));
  }
  ASSERT_EQ(send(raw, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(RecvStatus(raw), Errc::kOk) << "ping " << i;
  }
  close(raw);

  EXPECT_GE(registry.Snapshot().CounterValue("server.backpressure_stalls"), 1u);
  server_->Stop();  // the local registry must outlive every server thread
}

TEST_F(ServerTest, IdleConnectionsAreReapedWithTimedOutFrame) {
  AtomFs fs;
  MetricsRegistry registry;
  sock_path_ = UniqueSocketPath("idle");
  ServerOptions options;
  options.unix_path = sock_path_;
  options.metrics = &registry;
  options.idle_timeout_ms = 50;
  server_ = std::make_unique<AtomFsServer>(&fs, options);
  ASSERT_TRUE(server_->Start().ok());

  // A connection that never sends anything (half-open in spirit) gets a
  // courtesy ETIMEDOUT frame and then EOF.
  const int raw = RawConnect(sock_path_);
  EXPECT_EQ(RecvStatus(raw), Errc::kTimedOut);
  EXPECT_FALSE(RecvFrame(raw).ok());
  close(raw);
  EXPECT_GE(registry.Snapshot().CounterValue("server.idle_timeouts"), 1u);
  server_->Stop();  // the local registry must outlive every server thread
}

TEST_F(ServerTest, MalformedFrameMidPipelineDrainsEarlierRepliesFirst) {
  AtomFs fs;
  StartUnix(&fs);
  const int raw = RawConnect(sock_path_);

  // Two good requests, then a garbage frame, then another request — all in
  // one send. The server must answer the two good ones in order, then a
  // clean EPROTO for the garbage, then close; the trailing request is never
  // executed.
  WireRequest ping;
  ping.op = WireOp::kPing;
  std::vector<std::byte> burst = FramedRequest(ping);
  Append(burst, FramedRequest(ping));
  Append(burst, Framed(std::vector<std::byte>(24, std::byte{0xee})));
  Append(burst, FramedRequest(ping));
  ASSERT_EQ(send(raw, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));

  EXPECT_EQ(RecvStatus(raw), Errc::kOk);
  EXPECT_EQ(RecvStatus(raw), Errc::kOk);
  EXPECT_EQ(RecvStatus(raw), Errc::kProto);
  EXPECT_FALSE(RecvFrame(raw).ok());  // closed after the poison reply
  close(raw);
}

TEST_F(ServerTest, OverWindowBatchIsShedWithBackpressure) {
  AtomFs fs;
  StartUnix(&fs);
  const int raw = RawConnect(sock_path_);
  ASSERT_TRUE(SendFrame(raw, EncodeRequest(HelloRequest(kWireProtoVersion, 2))).ok());
  EXPECT_EQ(RecvStatus(raw), Errc::kOk);

  // A MSGBATCH of five against a window of two overcommits the negotiated
  // window in one frame: every sub-request is answered EBACKPRESSURE and
  // none executes, but the connection stays usable.
  WireRequest batch;
  batch.op = WireOp::kMsgBatch;
  WireRequest sub;
  sub.op = WireOp::kMkdir;
  for (int i = 0; i < 5; ++i) {
    sub.path_a = "/shed" + std::to_string(i);
    batch.batch.push_back(sub);
  }
  ASSERT_TRUE(SendFrame(raw, EncodeRequest(batch)).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(RecvStatus(raw), Errc::kBackpressure) << "sub " << i;
  }
  WireRequest stat;
  stat.op = WireOp::kStat;
  stat.path_a = "/shed0";
  ASSERT_TRUE(SendFrame(raw, EncodeRequest(stat)).ok());
  EXPECT_EQ(RecvStatus(raw), Errc::kNoEnt);  // shed mkdir never executed
  close(raw);
}

TEST_F(ServerTest, ClientSessionPipelinesAndResolvesFuturesInOrder) {
  AtomFs fs;
  StartUnix(&fs);
  auto client = Client();
  EXPECT_EQ(client->protocol_version(), kWireProtoVersion);
  EXPECT_GE(client->max_inflight(), 1u);

  ClientSession& session = client->session();
  std::vector<ClientSession::Future> futures;
  for (int i = 0; i < 6; ++i) {
    WireRequest req;
    req.op = WireOp::kMkdir;
    req.path_a = "/p" + std::to_string(i);
    futures.push_back(session.Submit(req));
  }
  ASSERT_TRUE(session.Flush().ok());
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    EXPECT_TRUE(f.Wait().ok());
  }
  // Waiting twice returns the stored result.
  EXPECT_TRUE(futures.front().Wait().ok());

  // Far more submissions than any window: Flush must interleave sends and
  // reply reads without deadlock, and every future resolves.
  futures.clear();
  WireRequest stat;
  stat.op = WireOp::kStat;
  stat.path_a = "/p0";
  for (int i = 0; i < 300; ++i) {
    futures.push_back(session.Submit(stat));
  }
  ASSERT_TRUE(session.Flush().ok());
  for (auto& f : futures) {
    EXPECT_TRUE(f.Wait().ok());
  }
  // All of it really happened on the server.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(client->Stat("/p" + std::to_string(i)).ok());
  }
}

TEST_F(ServerTest, FlushFailureAcrossWindowGroupsBreaksEveryFuture) {
  // Regression: with a window smaller than the staged backlog, Flush packs
  // several MSGBATCH groups and drains replies between them; a transport
  // failure in that inter-group drain used to crash on the moved-from
  // entries still sitting in the staged queue. Every future must instead
  // resolve with the transport error.
  AtomFs fs;
  sock_path_ = UniqueSocketPath("brk");
  ServerOptions options;
  options.unix_path = sock_path_;
  options.max_inflight = 2;
  options.default_inflight = 2;
  server_ = std::make_unique<AtomFsServer>(&fs, options);
  ASSERT_TRUE(server_->Start().ok());

  auto client = Client();
  ASSERT_EQ(client->max_inflight(), 2u);
  server_->Stop();  // closes the connection under the client

  ClientSession& session = client->session();
  WireRequest ping;
  ping.op = WireOp::kPing;
  std::vector<ClientSession::Future> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(session.Submit(ping));
  }
  EXPECT_FALSE(session.Flush().ok());
  for (auto& f : futures) {
    EXPECT_EQ(f.Wait().status().code(), Errc::kIo);
  }
}

TEST_F(ServerTest, FuturesOutliveTheirSession) {
  AtomFs fs;
  StartUnix(&fs);
  ClientSession::Future resolved;
  ClientSession::Future unresolved;
  {
    auto client = Client();
    WireRequest ping;
    ping.op = WireOp::kPing;
    resolved = client->session().Submit(ping);
    ASSERT_TRUE(resolved.Wait().ok());
    unresolved = client->session().Submit(ping);  // never flushed
  }
  // A resolved future returns its stored result without touching the dead
  // session; an unresolved one was broken with kIo by the destructor.
  EXPECT_TRUE(resolved.Wait().ok());
  EXPECT_EQ(unresolved.Wait().status().code(), Errc::kIo);
}

TEST_F(ServerTest, SessionDestroyedWithStagedPendingsDuringIdleReap) {
  // Teardown-ordering race: the server's idle sweep reaps the connection
  // (sending a best-effort ETIMEDOUT and closing the socket) under a session
  // that still holds staged, never-flushed pendings — and the session object
  // is then destroyed while that reap may still be in flight. Nothing may
  // crash, and every unflushed future must resolve with a sticky kIo from
  // the destructor's BreakLocked, not hang or read freed session state.
  AtomFs fs;
  sock_path_ = UniqueSocketPath("reap");
  ServerOptions options;
  options.unix_path = sock_path_;
  options.idle_timeout_ms = 5;
  server_ = std::make_unique<AtomFsServer>(&fs, options);
  ASSERT_TRUE(server_->Start().ok());

  std::vector<ClientSession::Future> futures;
  {
    auto client = Client();
    ASSERT_TRUE(client->Ping().ok());  // connection live, last_activity stamped
    WireRequest ping;
    ping.op = WireOp::kPing;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(client->session().Submit(ping));  // staged, never flushed
    }
    // Let the idle sweep (period = timeout/4) reap the connection while the
    // staged queue is still full, then drop the session on the way out.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.Wait().status().code(), Errc::kIo);
  }
  server_->Stop();
}

TEST_F(ServerTest, BatchParksUntilItFitsTheWindowWhole) {
  // Regression: a MSGBATCH arriving with requests already inflight used to
  // be admitted whenever inflight < window, overcommitting the window by up
  // to the batch size. It must park (a backpressure stall) until it fits
  // whole, then execute normally.
  AtomFs fs;
  MetricsRegistry registry;
  sock_path_ = UniqueSocketPath("park");
  ServerOptions options;
  options.unix_path = sock_path_;
  options.metrics = &registry;
  options.max_inflight = 2;
  options.default_inflight = 2;
  server_ = std::make_unique<AtomFsServer>(&fs, options);
  ASSERT_TRUE(server_->Start().ok());

  const int raw = RawConnect(sock_path_);
  WireRequest ping;
  ping.op = WireOp::kPing;
  WireRequest batch;
  batch.op = WireOp::kMsgBatch;
  WireRequest sub;
  sub.op = WireOp::kMkdir;
  for (int i = 0; i < 2; ++i) {
    sub.path_a = "/park" + std::to_string(i);
    batch.batch.push_back(sub);
  }
  // One send: a ping occupies the window, so the two-wide batch cannot fit
  // whole until the ping's reply drains.
  std::vector<std::byte> burst = FramedRequest(ping);
  Append(burst, FramedRequest(batch));
  ASSERT_EQ(send(raw, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));

  EXPECT_EQ(RecvStatus(raw), Errc::kOk);  // ping
  EXPECT_EQ(RecvStatus(raw), Errc::kOk);  // mkdir /park0
  EXPECT_EQ(RecvStatus(raw), Errc::kOk);  // mkdir /park1
  close(raw);

  EXPECT_GE(registry.Snapshot().CounterValue("server.backpressure_stalls"), 1u);
  {
    auto client = Client();
    EXPECT_TRUE(client->Stat("/park0").ok());
    EXPECT_TRUE(client->Stat("/park1").ok());
  }
  server_->Stop();  // the local registry must outlive every server thread
}

TEST_F(ServerTest, StopWhileTrafficInFlightShutsDownCleanly) {
  AtomFs fs;
  StartUnix(&fs);
  std::atomic<bool> go{true};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      auto client = AtomFsClient::ConnectUnix(sock_path_);
      if (!client.ok()) {
        return;
      }
      while (go.load(std::memory_order_relaxed)) {
        if (!(*client)->Ping().ok()) {
          return;  // server went away mid-conversation: expected
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server_->Stop();  // races MaybeSchedule against the work-queue teardown
  go.store(false, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(server_->running());
}

// --- multi-client concurrent stress with the CRL-H monitor -------------------

TEST_F(ServerTest, MultiClientStressUnderMonitorHasNoViolations) {
  CrlhMonitor monitor;
  AtomFs::Options fs_options;
  fs_options.observer = &monitor;
  AtomFs fs(std::move(fs_options));
  StartUnix(&fs, /*workers=*/8);

  // A small filebench population shared by all clients.
  FilebenchProfile profile;
  profile.name = "stress";
  profile.dirs = 8;
  profile.files = 64;
  profile.file_bytes = 512;
  profile.io_bytes = 256;
  {
    auto setup = Client();
    FilebenchSetup(*setup, profile, /*seed=*/3);
  }

  constexpr int kClients = 6;
  constexpr uint64_t kOpsPerClient = 120;
  std::vector<std::thread> threads;
  std::vector<WorkerStats> stats(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = AtomFsClient::ConnectUnix(sock_path_);
      ASSERT_TRUE(client.ok());
      if (c % 3 == 2) {
        // Every third client hammers cross-directory renames/exchanges so
        // the helper mechanism actually fires under served concurrency.
        Rng rng(static_cast<uint64_t>(c) * 131 + 7);
        for (uint64_t i = 0; i < kOpsPerClient; ++i) {
          const std::string a = "/fb/d" + std::to_string(rng.Below(profile.dirs));
          const std::string b = "/fb/d" + std::to_string(rng.Below(profile.dirs));
          const std::string fa = a + "/f" + std::to_string(rng.Below(profile.files));
          const std::string fb = b + "/f" + std::to_string(rng.Below(profile.files));
          if (rng.Chance(1, 2)) {
            (*client)->Rename(fa, fb);
          } else {
            (*client)->Exchange(fa, fb);
          }
          (*client)->Stat(fb);
        }
      } else {
        stats[static_cast<size_t>(c)] = FilebenchWorker(
            **client, profile, /*seed=*/500 + static_cast<uint64_t>(c), kOpsPerClient);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  uint64_t total_ops = 0;
  for (const WorkerStats& s : stats) {
    total_ops += s.ops;
  }
  EXPECT_GT(total_ops, 0u);

  server_->Stop();

  // The serving layer preserved linearizability: the monitor saw every
  // operation the workers issued and found no refinement or invariant
  // violation; at quiescence abstract and concrete trees agree.
  EXPECT_TRUE(monitor.CheckQuiescent(fs.SnapshotSpec()));
  EXPECT_TRUE(monitor.ok()) << monitor.violations().front();
  EXPECT_TRUE(monitor.violations().empty());
}

// --- transactions over the wire ----------------------------------------------

class TxnServerTest : public ServerTest {
 protected:
  // The server's fs pointer IS the TxnManager, so direct ops (no open txn)
  // are conflict-tracked too — the same wiring atomfsd --journal uses.
  void StartUnixWithTxn(TxnManager* txn) {
    sock_path_ = UniqueSocketPath("srvtx");
    ServerOptions options;
    options.unix_path = sock_path_;
    options.workers = 4;
    options.txn = txn;
    server_ = std::make_unique<AtomFsServer>(txn, options);
    ASSERT_TRUE(server_->Start().ok());
  }
};

TEST_F(TxnServerTest, CommitIsAtomicAcrossConnections) {
  AtomFs fs;
  TxnManager::Options topt;
  topt.inner = &fs;
  TxnManager txn(topt);
  StartUnixWithTxn(&txn);
  auto writer = Client();
  auto reader = Client();

  auto txid = writer->TxBegin();
  ASSERT_TRUE(txid.ok());
  EXPECT_GT(*txid, 0u);
  EXPECT_TRUE(writer->Mkdir("/cfg").ok());
  EXPECT_TRUE(writer->Mknod("/cfg/a").ok());
  EXPECT_TRUE(WriteString(*writer, "/cfg/a", "v1").ok());
  // Read-your-writes on the transaction's connection...
  EXPECT_EQ(ReadString(*writer, "/cfg/a").value(), "v1");
  // ...total invisibility on every other connection.
  EXPECT_EQ(reader->Stat("/cfg").status().code(), Errc::kNoEnt);

  ASSERT_TRUE(writer->TxCommit().ok());
  EXPECT_TRUE(reader->Stat("/cfg/a").ok());
  EXPECT_EQ(ReadString(*reader, "/cfg/a").value(), "v1");
  server_->Stop();
}

TEST_F(TxnServerTest, ConflictingCommitLosesWithTxConflict) {
  AtomFs fs;
  TxnManager::Options topt;
  topt.inner = &fs;
  TxnManager txn(topt);
  StartUnixWithTxn(&txn);
  auto a = Client();
  auto b = Client();
  ASSERT_TRUE(a->Mkdir("/d").ok());  // direct, auto-committed

  ASSERT_TRUE(a->TxBegin().ok());
  ASSERT_TRUE(b->TxBegin().ok());
  EXPECT_TRUE(a->Mknod("/d/f").ok());
  EXPECT_TRUE(b->Mknod("/d/f").ok());
  EXPECT_TRUE(a->TxCommit().ok());
  EXPECT_EQ(b->TxCommit().code(), Errc::kTxConflict);
  EXPECT_TRUE(a->Stat("/d/f").ok());
  // The losing connection is free again: a retry commits cleanly.
  ASSERT_TRUE(b->TxBegin().ok());
  EXPECT_TRUE(b->Mknod("/d/g").ok());
  EXPECT_TRUE(b->TxCommit().ok());
  EXPECT_TRUE(a->Stat("/d/g").ok());
  server_->Stop();
}

TEST_F(TxnServerTest, TxOpsWithoutTxnLayerAnswerInval) {
  AtomFs fs;
  StartUnix(&fs);
  auto c = Client();
  EXPECT_EQ(c->TxBegin().status().code(), Errc::kInval);
  EXPECT_EQ(c->TxCommit(7).code(), Errc::kInval);
  EXPECT_EQ(c->TxAbort(7).code(), Errc::kInval);
  server_->Stop();
}

TEST_F(TxnServerTest, OneTransactionPerConnectionAndIdChecks) {
  AtomFs fs;
  TxnManager::Options topt;
  topt.inner = &fs;
  TxnManager txn(topt);
  StartUnixWithTxn(&txn);
  auto c = Client();
  auto txid = c->TxBegin();
  ASSERT_TRUE(txid.ok());
  EXPECT_EQ(c->TxBegin().status().code(), Errc::kBusy);    // already open
  EXPECT_EQ(c->TxCommit(*txid + 99).code(), Errc::kInval); // not this conn's txn
  EXPECT_TRUE(c->TxAbort(*txid).ok());                     // explicit id works
  EXPECT_EQ(c->TxCommit().code(), Errc::kInval);           // nothing open now
  ASSERT_TRUE(c->TxBegin().ok());                          // fresh txn allowed
  EXPECT_TRUE(c->TxAbort().ok());
  server_->Stop();
}

TEST_F(TxnServerTest, DescriptorOpsRefusedInsideTransaction) {
  AtomFs fs;
  TxnManager::Options topt;
  topt.inner = &fs;
  TxnManager txn(topt);
  StartUnixWithTxn(&txn);
  auto c = Client();
  ASSERT_TRUE(c->Mkdir("/d").ok());
  ASSERT_TRUE(c->Mknod("/d/f").ok());
  ASSERT_TRUE(c->TxBegin().ok());
  EXPECT_EQ(c->Open("/d/f", OpenFlags::kRead).status().code(), Errc::kBusy);
  EXPECT_TRUE(c->TxAbort().ok());
  EXPECT_TRUE(c->Open("/d/f", OpenFlags::kRead).ok());
  server_->Stop();
}

TEST_F(TxnServerTest, DroppedConnectionAbortsItsTransaction) {
  AtomFs fs;
  TxnManager::Options topt;
  topt.inner = &fs;
  TxnManager txn(topt);
  StartUnixWithTxn(&txn);
  {
    auto c = Client();
    ASSERT_TRUE(c->TxBegin().ok());
    EXPECT_TRUE(c->Mkdir("/never").ok());
    EXPECT_EQ(txn.open_txns(), 1u);
  }  // connection dropped with the transaction open
  for (int i = 0; i < 500 && txn.open_txns() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(txn.open_txns(), 0u);
  auto c2 = Client();
  EXPECT_EQ(c2->Stat("/never").status().code(), Errc::kNoEnt);
  server_->Stop();
}

TEST_F(TxnServerTest, BatchedTransactionCommitsInOneFlush) {
  AtomFs fs;
  TxnManager::Options topt;
  topt.inner = &fs;
  TxnManager txn(topt);
  StartUnixWithTxn(&txn);
  auto c = Client();

  // The whole atomic sequence staged and flushed as one MSGBATCH: TXBEGIN,
  // ops, TXCOMMIT. Replies resolve in order; the commit's reply is the
  // transaction's outcome.
  ClientSession& s = c->session();
  WireRequest begin;
  begin.op = WireOp::kTxBegin;
  WireRequest mk;
  mk.op = WireOp::kMkdir;
  mk.path_a = "/batched";
  WireRequest mk2;
  mk2.op = WireOp::kMknod;
  mk2.path_a = "/batched/f";
  WireRequest commit;
  commit.op = WireOp::kTxCommit;
  auto f_begin = s.Submit(begin);
  auto f_mk = s.Submit(mk);
  auto f_mk2 = s.Submit(mk2);
  auto f_commit = s.Submit(commit);
  ASSERT_TRUE(s.Flush().ok());
  EXPECT_TRUE(f_begin.Wait().ok());
  EXPECT_TRUE(f_mk.Wait().ok());
  EXPECT_TRUE(f_mk2.Wait().ok());
  EXPECT_TRUE(f_commit.Wait().ok());
  EXPECT_TRUE(c->Stat("/batched/f").ok());
  server_->Stop();
}

}  // namespace
}  // namespace atomfs
