// POSIX-semantics conformance suite — the xfstests analog from §6, run
// against every file system in the repository through the common interface.
// Each check pins one observable behaviour (success effect or error code).

#include <gtest/gtest.h>

#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/naive/naive_fs.h"
#include "src/retryfs/retry_fs.h"

namespace atomfs {
namespace {

std::span<const std::byte> Bytes(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

template <typename Fs>
class ConformanceTest : public ::testing::Test {
 protected:
  Fs fs_;
};

using AllFileSystems = ::testing::Types<AtomFs, BigLockFs, NaiveFs, RetryFs>;
TYPED_TEST_SUITE(ConformanceTest, AllFileSystems);

// --- mkdir -------------------------------------------------------------------

TYPED_TEST(ConformanceTest, MkdirCreatesEmptyDirectory) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  auto entries = this->fs_.ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TYPED_TEST(ConformanceTest, MkdirExistingFails) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  EXPECT_EQ(this->fs_.Mkdir("/d").code(), Errc::kExist);
}

TYPED_TEST(ConformanceTest, MkdirOverFileFails) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  EXPECT_EQ(this->fs_.Mkdir("/f").code(), Errc::kExist);
}

TYPED_TEST(ConformanceTest, MkdirMissingParent) {
  EXPECT_EQ(this->fs_.Mkdir("/no/dir").code(), Errc::kNoEnt);
}

TYPED_TEST(ConformanceTest, MkdirThroughFile) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  EXPECT_EQ(this->fs_.Mkdir("/f/d").code(), Errc::kNotDir);
}

TYPED_TEST(ConformanceTest, MkdirRoot) {
  EXPECT_EQ(this->fs_.Mkdir("/").code(), Errc::kExist);
}

TYPED_TEST(ConformanceTest, MkdirDeepNesting) {
  std::string path;
  for (int i = 0; i < 24; ++i) {
    path += "/d" + std::to_string(i);
    ASSERT_TRUE(this->fs_.Mkdir(path).ok()) << path;
  }
  EXPECT_TRUE(this->fs_.Stat(path).ok());
}

// --- mknod / unlink ------------------------------------------------------------

TYPED_TEST(ConformanceTest, MknodCreatesEmptyFile) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  auto attr = this->fs_.Stat("/f");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, FileType::kFile);
  EXPECT_EQ(attr->size, 0u);
}

TYPED_TEST(ConformanceTest, UnlinkRemovesFile) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  ASSERT_TRUE(this->fs_.Unlink("/f").ok());
  EXPECT_EQ(this->fs_.Stat("/f").status().code(), Errc::kNoEnt);
}

TYPED_TEST(ConformanceTest, UnlinkDirectoryFails) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  EXPECT_EQ(this->fs_.Unlink("/d").code(), Errc::kIsDir);
}

TYPED_TEST(ConformanceTest, UnlinkMissing) {
  EXPECT_EQ(this->fs_.Unlink("/f").code(), Errc::kNoEnt);
}

TYPED_TEST(ConformanceTest, NameReusableAfterUnlink) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  ASSERT_TRUE(this->fs_.Write("/f", 0, Bytes("old")).ok());
  ASSERT_TRUE(this->fs_.Unlink("/f").ok());
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  EXPECT_EQ(this->fs_.Stat("/f")->size, 0u);
}

// --- rmdir ---------------------------------------------------------------------

TYPED_TEST(ConformanceTest, RmdirEmptyDir) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  ASSERT_TRUE(this->fs_.Rmdir("/d").ok());
  EXPECT_EQ(this->fs_.Stat("/d").status().code(), Errc::kNoEnt);
}

TYPED_TEST(ConformanceTest, RmdirNonEmptyFails) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  ASSERT_TRUE(this->fs_.Mknod("/d/f").ok());
  EXPECT_EQ(this->fs_.Rmdir("/d").code(), Errc::kNotEmpty);
  ASSERT_TRUE(this->fs_.Unlink("/d/f").ok());
  EXPECT_TRUE(this->fs_.Rmdir("/d").ok());
}

TYPED_TEST(ConformanceTest, RmdirFileFails) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  EXPECT_EQ(this->fs_.Rmdir("/f").code(), Errc::kNotDir);
}

TYPED_TEST(ConformanceTest, RmdirRootFails) {
  EXPECT_EQ(this->fs_.Rmdir("/").code(), Errc::kBusy);
}

// --- rename ---------------------------------------------------------------------

TYPED_TEST(ConformanceTest, RenameFilePreservesContent) {
  ASSERT_TRUE(WriteString(this->fs_, "/f", "content").ok());
  ASSERT_TRUE(this->fs_.Rename("/f", "/g").ok());
  EXPECT_EQ(ReadString(this->fs_, "/g").value(), "content");
  EXPECT_EQ(this->fs_.Stat("/f").status().code(), Errc::kNoEnt);
}

TYPED_TEST(ConformanceTest, RenameDirMovesSubtree) {
  ASSERT_TRUE(this->fs_.Mkdir("/a").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/a/b").ok());
  ASSERT_TRUE(WriteString(this->fs_, "/a/b/f", "x").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/dst").ok());
  ASSERT_TRUE(this->fs_.Rename("/a", "/dst/a").ok());
  EXPECT_EQ(ReadString(this->fs_, "/dst/a/b/f").value(), "x");
}

TYPED_TEST(ConformanceTest, RenameReplacesExistingFile) {
  ASSERT_TRUE(WriteString(this->fs_, "/f", "new").ok());
  ASSERT_TRUE(WriteString(this->fs_, "/g", "old").ok());
  ASSERT_TRUE(this->fs_.Rename("/f", "/g").ok());
  EXPECT_EQ(ReadString(this->fs_, "/g").value(), "new");
}

TYPED_TEST(ConformanceTest, RenameDirOntoEmptyDir) {
  ASSERT_TRUE(this->fs_.Mkdir("/a").ok());
  ASSERT_TRUE(this->fs_.Mknod("/a/f").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/b").ok());
  ASSERT_TRUE(this->fs_.Rename("/a", "/b").ok());
  EXPECT_TRUE(this->fs_.Stat("/b/f").ok());
}

TYPED_TEST(ConformanceTest, RenameDirOntoNonEmptyDirFails) {
  ASSERT_TRUE(this->fs_.Mkdir("/a").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/b").ok());
  ASSERT_TRUE(this->fs_.Mknod("/b/f").ok());
  EXPECT_EQ(this->fs_.Rename("/a", "/b").code(), Errc::kNotEmpty);
}

TYPED_TEST(ConformanceTest, RenameTypeMismatchErrors) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  EXPECT_EQ(this->fs_.Rename("/d", "/f").code(), Errc::kNotDir);
  EXPECT_EQ(this->fs_.Rename("/f", "/d").code(), Errc::kIsDir);
}

TYPED_TEST(ConformanceTest, RenameIntoOwnSubtreeFails) {
  ASSERT_TRUE(this->fs_.Mkdir("/a").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/a/b").ok());
  EXPECT_EQ(this->fs_.Rename("/a", "/a/b/c").code(), Errc::kInval);
}

TYPED_TEST(ConformanceTest, RenameAncestorOntoDescendantParent) {
  ASSERT_TRUE(this->fs_.Mkdir("/a").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/a/b").ok());
  EXPECT_EQ(this->fs_.Rename("/a/b", "/a").code(), Errc::kNotEmpty);
}

TYPED_TEST(ConformanceTest, RenameSelfNoOp) {
  ASSERT_TRUE(WriteString(this->fs_, "/f", "zz").ok());
  EXPECT_TRUE(this->fs_.Rename("/f", "/f").ok());
  EXPECT_EQ(ReadString(this->fs_, "/f").value(), "zz");
}

TYPED_TEST(ConformanceTest, RenameMissingSource) {
  EXPECT_EQ(this->fs_.Rename("/nope", "/x").code(), Errc::kNoEnt);
}

TYPED_TEST(ConformanceTest, RenameMissingDestParent) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  EXPECT_EQ(this->fs_.Rename("/f", "/no/x").code(), Errc::kNoEnt);
}

TYPED_TEST(ConformanceTest, RenameRootForbidden) {
  EXPECT_EQ(this->fs_.Rename("/", "/x").code(), Errc::kBusy);
  EXPECT_EQ(this->fs_.Rename("/x", "/").code(), Errc::kBusy);
}

TYPED_TEST(ConformanceTest, RenameSameParentSwapNames) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  ASSERT_TRUE(WriteString(this->fs_, "/d/a", "A").ok());
  ASSERT_TRUE(this->fs_.Rename("/d/a", "/d/b").ok());
  EXPECT_EQ(ReadString(this->fs_, "/d/b").value(), "A");
  EXPECT_EQ(this->fs_.Stat("/d/a").status().code(), Errc::kNoEnt);
}

// --- stat / readdir ---------------------------------------------------------------

TYPED_TEST(ConformanceTest, StatRoot) {
  auto attr = this->fs_.Stat("/");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, FileType::kDir);
}

TYPED_TEST(ConformanceTest, StatSizeIsEntryCountForDirs) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  ASSERT_TRUE(this->fs_.Mknod("/d/a").ok());
  ASSERT_TRUE(this->fs_.Mkdir("/d/b").ok());
  EXPECT_EQ(this->fs_.Stat("/d")->size, 2u);
}

TYPED_TEST(ConformanceTest, ReadDirSortedByName) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  for (const char* n : {"zz", "mm", "aa"}) {
    ASSERT_TRUE(this->fs_.Mknod(std::string("/d/") + n).ok());
  }
  auto entries = this->fs_.ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "aa");
  EXPECT_EQ((*entries)[1].name, "mm");
  EXPECT_EQ((*entries)[2].name, "zz");
}

TYPED_TEST(ConformanceTest, ReadDirOnFileFails) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  EXPECT_EQ(this->fs_.ReadDir("/f").status().code(), Errc::kNotDir);
}

TYPED_TEST(ConformanceTest, StatThroughFileComponentFails) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  EXPECT_EQ(this->fs_.Stat("/f/x").status().code(), Errc::kNotDir);
}

// --- read / write / truncate ---------------------------------------------------------

TYPED_TEST(ConformanceTest, WriteExtendsAndReadsBack) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  ASSERT_TRUE(this->fs_.Write("/f", 0, Bytes("0123456789")).ok());
  std::vector<std::byte> buf(4);
  auto n = this->fs_.Read("/f", 3, std::span<std::byte>(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf.data()), 4), "3456");
}

TYPED_TEST(ConformanceTest, SparseWriteZeroFills) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  ASSERT_TRUE(this->fs_.Write("/f", 100, Bytes("end")).ok());
  EXPECT_EQ(this->fs_.Stat("/f")->size, 103u);
  std::vector<std::byte> buf(100);
  auto n = this->fs_.Read("/f", 0, std::span<std::byte>(buf));
  ASSERT_TRUE(n.ok());
  for (auto b : buf) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TYPED_TEST(ConformanceTest, ReadMissingFile) {
  std::vector<std::byte> buf(4);
  EXPECT_EQ(this->fs_.Read("/f", 0, std::span<std::byte>(buf)).status().code(), Errc::kNoEnt);
}

TYPED_TEST(ConformanceTest, DataOpsOnDirectoryFail) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  std::vector<std::byte> buf(4);
  EXPECT_EQ(this->fs_.Read("/d", 0, std::span<std::byte>(buf)).status().code(), Errc::kIsDir);
  EXPECT_EQ(this->fs_.Write("/d", 0, Bytes("x")).status().code(), Errc::kIsDir);
  EXPECT_EQ(this->fs_.Truncate("/d", 0).code(), Errc::kIsDir);
}

TYPED_TEST(ConformanceTest, TruncateGrowAndShrink) {
  ASSERT_TRUE(WriteString(this->fs_, "/f", "abcdef").ok());
  ASSERT_TRUE(this->fs_.Truncate("/f", 3).ok());
  EXPECT_EQ(ReadString(this->fs_, "/f").value(), "abc");
  ASSERT_TRUE(this->fs_.Truncate("/f", 5).ok());
  EXPECT_EQ(ReadString(this->fs_, "/f").value(), std::string("abc\0\0", 5));
}

TYPED_TEST(ConformanceTest, EnospcAtMaxFileSize) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  EXPECT_EQ(this->fs_.Write("/f", kMaxFileSize, Bytes("x")).status().code(), Errc::kNoSpace);
}

TYPED_TEST(ConformanceTest, LargeWriteRoundTrip) {
  ASSERT_TRUE(this->fs_.Mknod("/f").ok());
  std::vector<std::byte> data(3 * kBlockSize + 123);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31 % 251);
  }
  auto w = this->fs_.Write("/f", 0, std::span<const std::byte>(data));
  ASSERT_TRUE(w.ok());
  std::vector<std::byte> back(data.size());
  auto r = this->fs_.Read("/f", 0, std::span<std::byte>(back));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data.size());
  EXPECT_EQ(back, data);
}

// --- path handling ------------------------------------------------------------------

TYPED_TEST(ConformanceTest, PathNormalization) {
  ASSERT_TRUE(this->fs_.Mkdir("/d").ok());
  ASSERT_TRUE(this->fs_.Mknod("/d/f").ok());
  EXPECT_TRUE(this->fs_.Stat("//d///f").ok());
  EXPECT_TRUE(this->fs_.Stat("/d/./f").ok());
  EXPECT_TRUE(this->fs_.Stat("/d/../d/f").ok());
  EXPECT_TRUE(this->fs_.Stat("/d/f/").ok());
}

TYPED_TEST(ConformanceTest, RelativePathRejected) {
  EXPECT_EQ(this->fs_.Mkdir("d").code(), Errc::kInval);
  EXPECT_EQ(this->fs_.Stat("").status().code(), Errc::kInval);
}

TYPED_TEST(ConformanceTest, LongNameRejected) {
  const std::string name(kMaxNameLen + 1, 'n');
  EXPECT_EQ(this->fs_.Mkdir("/" + name).code(), Errc::kNameTooLong);
}

TYPED_TEST(ConformanceTest, ManyEntriesInOneDirectory) {
  ASSERT_TRUE(this->fs_.Mkdir("/big").ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(this->fs_.Mknod("/big/f" + std::to_string(i)).ok());
  }
  EXPECT_EQ(this->fs_.Stat("/big")->size, 500u);
  auto entries = this->fs_.ReadDir("/big");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 500u);
  for (int i = 0; i < 500; i += 7) {
    ASSERT_TRUE(this->fs_.Unlink("/big/f" + std::to_string(i)).ok());
  }
  EXPECT_EQ(this->fs_.Stat("/big")->size, 500u - (500 + 6) / 7);
}

}  // namespace
}  // namespace atomfs
