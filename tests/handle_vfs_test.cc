// Tests for HandleVfs: the fd layer over pinned inode handles. Pairs with
// vfs_test.cc, which tests the path-based layer — the same flows show the
// two designs' *different* semantics around renames and unlinks.

#include "src/retryfs/handle_vfs.h"

#include <gtest/gtest.h>

namespace atomfs {
namespace {

std::span<const std::byte> Bytes(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

class HandleVfsTest : public ::testing::Test {
 protected:
  HandleVfsTest() : vfs_(&fs_) {}

  std::string ReadAll(Fd fd, size_t cap = 256) {
    std::string out(cap, '\0');
    auto n = vfs_.Pread(fd, 0, std::as_writable_bytes(std::span<char>(out.data(), out.size())));
    EXPECT_TRUE(n.ok());
    out.resize(*n);
    return out;
  }

  RetryFs fs_;
  HandleVfs vfs_;
};

TEST_F(HandleVfsTest, OpenCreateWriteReadClose) {
  auto fd = vfs_.Open("/f", OpenFlags::kCreate | OpenFlags::kWrite | OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("hello")).ok());
  EXPECT_EQ(ReadAll(*fd), "hello");
  EXPECT_TRUE(vfs_.Close(*fd).ok());
  EXPECT_EQ(vfs_.OpenCount(), 0u);
  EXPECT_EQ(vfs_.Close(*fd).code(), Errc::kBadFd);
}

TEST_F(HandleVfsTest, OpenFlagSemantics) {
  ASSERT_TRUE(fs_.Mknod("/f").ok());
  EXPECT_EQ(vfs_.Open("/f", OpenFlags::kCreate | OpenFlags::kExcl).status().code(),
            Errc::kExist);
  EXPECT_EQ(vfs_.Open("/missing", OpenFlags::kRead).status().code(), Errc::kNoEnt);
  ASSERT_TRUE(WriteString(fs_, "/f", "stale").ok());
  auto fd = vfs_.Open("/f", OpenFlags::kWrite | OpenFlags::kTrunc);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fs_.Stat("/f")->size, 0u);
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  EXPECT_EQ(vfs_.Open("/d", OpenFlags::kWrite).status().code(), Errc::kIsDir);
  auto ro = vfs_.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(vfs_.Write(*ro, Bytes("x")).status().code(), Errc::kAccess);
}

TEST_F(HandleVfsTest, CursorSemantics) {
  auto fd = vfs_.Open("/f", OpenFlags::kCreate | OpenFlags::kWrite | OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("abc")).ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("def")).ok());
  ASSERT_TRUE(vfs_.Seek(*fd, 2).ok());
  std::string buf(3, '\0');
  ASSERT_TRUE(vfs_.Read(*fd, std::as_writable_bytes(std::span<char>(buf.data(), 3))).ok());
  EXPECT_EQ(buf, "cde");
}

TEST_F(HandleVfsTest, AppendMode) {
  auto fd = vfs_.Open("/log", OpenFlags::kCreate | OpenFlags::kWrite | OpenFlags::kAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("one")).ok());
  ASSERT_TRUE(fs_.Write("/log", 3, Bytes("two")).ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("!")).ok());
  EXPECT_EQ(ReadString(fs_, "/log").value(), "onetwo!");
}

// The defining difference from the path-based Vfs: the fd tracks the INODE.
TEST_F(HandleVfsTest, FdSurvivesRenameUnlikePathVfs) {
  ASSERT_TRUE(WriteString(fs_, "/f", "original").ok());
  auto fd = vfs_.Open("/f", OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_.Rename("/f", "/g").ok());
  // Path-based Vfs would return ENOENT here (vfs_test.cc); the handle works.
  EXPECT_EQ(ReadAll(*fd), "original");
  // A new file at the old path is NOT what the fd sees.
  ASSERT_TRUE(WriteString(fs_, "/f", "impostor").ok());
  EXPECT_EQ(ReadAll(*fd), "original");
}

TEST_F(HandleVfsTest, UnlinkedButOpenPosixSemantics) {
  auto fd = vfs_.Open("/tmp", OpenFlags::kCreate | OpenFlags::kWrite | OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_.Write(*fd, Bytes("scratch")).ok());
  ASSERT_TRUE(fs_.Unlink("/tmp").ok());
  EXPECT_EQ(fs_.Stat("/tmp").status().code(), Errc::kNoEnt);
  EXPECT_EQ(ReadAll(*fd), "scratch");
  ASSERT_TRUE(vfs_.Ftruncate(*fd, 3).ok());
  EXPECT_EQ(vfs_.Fstat(*fd)->size, 3u);
  EXPECT_TRUE(vfs_.Close(*fd).ok());  // last reference frees the inode
}

TEST_F(HandleVfsTest, DirectoryFdReaddir) {
  ASSERT_TRUE(fs_.Mkdir("/d").ok());
  ASSERT_TRUE(fs_.Mknod("/d/one").ok());
  auto fd = vfs_.Open("/d", OpenFlags::kRead);
  ASSERT_TRUE(fd.ok());
  auto entries = vfs_.ReadDirFd(*fd);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  // Entries added after open are visible (it is the live inode).
  ASSERT_TRUE(fs_.Mknod("/d/two").ok());
  EXPECT_EQ(vfs_.ReadDirFd(*fd)->size(), 2u);
}

TEST_F(HandleVfsTest, BadFdEverywhere) {
  std::byte buf[4];
  EXPECT_EQ(vfs_.Read(42, buf).status().code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Write(42, Bytes("x")).status().code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Pread(42, 0, buf).status().code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Pwrite(42, 0, Bytes("x")).status().code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Fstat(42).status().code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.ReadDirFd(42).status().code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Ftruncate(42, 0).code(), Errc::kBadFd);
  EXPECT_EQ(vfs_.Seek(42, 0).status().code(), Errc::kBadFd);
}

TEST_F(HandleVfsTest, CreateRace) {
  // kCreate without kExcl tolerates a concurrent creator (simulated by
  // pre-creating).
  ASSERT_TRUE(fs_.Mknod("/racy").ok());
  auto fd = vfs_.Open("/racy", OpenFlags::kCreate | OpenFlags::kRead);
  EXPECT_TRUE(fd.ok());
}

}  // namespace
}  // namespace atomfs
