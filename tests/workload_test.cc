// Smoke and correctness tests for the workload drivers (src/workload),
// including running the Filebench profiles on the virtual-time simulator.

#include <gtest/gtest.h>

#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/sim/executor.h"
#include "src/workload/apps.h"
#include "src/workload/filebench.h"
#include "src/workload/lfs.h"

namespace atomfs {
namespace {

TEST(LfsWorkload, LargeFileWritesAndReadsAllBytes) {
  AtomFs fs;
  auto stats = RunLargeFile(fs, /*file_bytes=*/1 << 20, /*chunk=*/64 << 10);
  EXPECT_EQ(stats.bytes, 2u << 20);  // written + read
  // The benchmark cleans up after itself.
  EXPECT_EQ(fs.Stat("/largefile").status().code(), Errc::kNoEnt);
  EXPECT_EQ(fs.InodeCount(), 1u);
}

TEST(LfsWorkload, SmallFileCreatesReadsDeletes) {
  AtomFs fs;
  auto stats = RunSmallFile(fs, /*files=*/100, /*file_bytes=*/1024);
  EXPECT_EQ(stats.bytes, 2u * 100 * 1024);
  EXPECT_EQ(fs.InodeCount(), 1u);
}

TEST(AppWorkload, BuildTreeShape) {
  AtomFs fs;
  TreeSpec spec;
  spec.dirs = 4;
  spec.files_per_dir = 3;
  BuildTree(fs, "/src", spec);
  EXPECT_EQ(fs.Stat("/src")->size, 4u);
  auto entries = fs.ReadDir("/src/d0");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
}

TEST(AppWorkload, GitCloneCreatesWorkTree) {
  AtomFs fs;
  TreeSpec spec;
  spec.dirs = 3;
  spec.files_per_dir = 2;
  spec.max_file_bytes = 2048;
  auto stats = RunGitClone(fs, "/repo", spec);
  EXPECT_GT(stats.ops, 0u);
  EXPECT_TRUE(fs.Stat("/repo").ok());
  EXPECT_TRUE(fs.Stat("/repo-git").ok());
  EXPECT_TRUE(fs.Stat("/repo/d0").ok());
}

TEST(AppWorkload, MakeBuildEmitsObjectsAndBinary) {
  AtomFs fs;
  TreeSpec spec;
  spec.dirs = 2;
  spec.files_per_dir = 2;
  BuildTree(fs, "/src", spec);
  auto stats = RunMakeBuild(fs, "/src");
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_TRUE(fs.Stat("/src/bin").ok());
  EXPECT_TRUE(fs.Stat("/src/d0/src0.c.o").ok());
}

TEST(AppWorkload, CopyTreeIsFaithful) {
  AtomFs fs;
  TreeSpec spec;
  spec.dirs = 3;
  spec.files_per_dir = 2;
  BuildTree(fs, "/src", spec);
  RunCopyTree(fs, "/src", "/dst");
  auto src_file = ReadString(fs, "/src/d1/src1.c");
  auto dst_file = ReadString(fs, "/dst/d1/src1.c");
  ASSERT_TRUE(src_file.ok());
  ASSERT_TRUE(dst_file.ok());
  EXPECT_EQ(*src_file, *dst_file);
}

TEST(AppWorkload, GrepFindsPlantedNeedles) {
  AtomFs fs;
  TreeSpec spec;
  spec.dirs = 4;
  spec.files_per_dir = 4;
  spec.min_file_bytes = 4096;
  spec.max_file_bytes = 8192;
  BuildTree(fs, "/src", spec);
  auto stats = RunGrep(fs, "/src", "needle");
  EXPECT_GT(stats.matches, 0u);  // MakeContent plants the word
  EXPECT_GT(stats.bytes, 0u);
}

TEST(Filebench, SetupPopulatesProfile) {
  AtomFs fs;
  FilebenchProfile profile;
  profile.name = "mini";
  profile.dirs = 4;
  profile.files = 32;
  profile.file_bytes = 1024;
  FilebenchSetup(fs, profile, 1);
  EXPECT_EQ(fs.Stat("/fb")->size, 4u);
  uint64_t files = 0;
  for (uint32_t d = 0; d < profile.dirs; ++d) {
    files += fs.Stat("/fb/d" + std::to_string(d))->size;
  }
  EXPECT_EQ(files, 32u);
}

TEST(Filebench, WorkerRunsRequestedOps) {
  AtomFs fs;
  FilebenchProfile profile;
  profile.name = "mini";
  profile.dirs = 4;
  profile.files = 32;
  profile.file_bytes = 1024;
  profile.io_bytes = 512;
  FilebenchSetup(fs, profile, 1);
  auto stats = FilebenchWorker(fs, profile, 7, 200);
  EXPECT_GE(stats.ops, 200u);
  EXPECT_LT(stats.failures, stats.ops);
  EXPECT_TRUE(fs.SnapshotSpec().WellFormed());
}

TEST(Filebench, VarmailProfileRuns) {
  AtomFs fs;
  FilebenchProfile profile = FilebenchProfile::Varmail();
  profile.files = 64;  // shrink for a unit test
  profile.dirs = 4;
  FilebenchSetup(fs, profile, 5);
  auto stats = FilebenchWorker(fs, profile, 13, 200);
  EXPECT_GE(stats.ops, 200u);
  EXPECT_TRUE(fs.SnapshotSpec().WellFormed());
}

TEST(Filebench, WebproxyProfileRuns) {
  AtomFs fs;
  FilebenchProfile profile = FilebenchProfile::Webproxy();
  profile.files = 64;  // shrink for a unit test
  FilebenchSetup(fs, profile, 2);
  auto stats = FilebenchWorker(fs, profile, 11, 200);
  EXPECT_GE(stats.ops, 200u);
  EXPECT_TRUE(fs.SnapshotSpec().WellFormed());
}

// The whole point: workloads run unmodified on the simulator, and adding
// threads on more cores reduces the virtual makespan.
TEST(Filebench, SimulatedScalingOnAtomFs) {
  FilebenchProfile profile;
  profile.name = "mini-fileserver";
  profile.dirs = 32;
  profile.files = 256;
  profile.file_bytes = 4096;
  profile.io_bytes = 4096;

  auto run = [&](uint32_t cores, int threads) {
    SimExecutor sim(cores);
    AtomFs::Options opts;
    opts.executor = &sim;
    AtomFs fs(std::move(opts));
    RunInSim(sim, [&] { FilebenchSetup(fs, profile, 3); });
    const uint64_t start = sim.GlobalVirtualNanos();
    for (int t = 0; t < threads; ++t) {
      sim.Spawn([&fs, &profile, t] { FilebenchWorker(fs, profile, 100 + t, 400); });
    }
    sim.Run();
    return sim.GlobalVirtualNanos() - start;
  };

  const uint64_t t1 = run(16, 1);
  const uint64_t t8 = run(16, 8);
  // 8 threads do 8x the operations; near-linear scaling keeps the makespan
  // well under 8x (we only require > 2x concurrency gain here).
  EXPECT_LT(t8, 4 * t1);
}

TEST(Filebench, BigLockDoesNotScale) {
  // Same workload on BigLockFs: 8 threads' makespan is ~8x one thread's.
  FilebenchProfile profile;
  profile.name = "mini-fileserver";
  profile.dirs = 32;
  profile.files = 256;
  profile.file_bytes = 4096;
  profile.io_bytes = 4096;

  auto run = [&](int threads) {
    SimExecutor sim(16);
    BigLockFs::Options opts;
    opts.executor = &sim;
    BigLockFs fs(opts);
    RunInSim(sim, [&] { FilebenchSetup(fs, profile, 3); });
    const uint64_t start = sim.GlobalVirtualNanos();
    for (int t = 0; t < threads; ++t) {
      sim.Spawn([&fs, &profile, t] { FilebenchWorker(fs, profile, 100 + t, 400); });
    }
    sim.Run();
    return sim.GlobalVirtualNanos() - start;
  };

  const uint64_t t1 = run(1);
  const uint64_t t8 = run(8);
  EXPECT_GT(t8, 6 * t1);  // serialized: ~8x
}

}  // namespace
}  // namespace atomfs
