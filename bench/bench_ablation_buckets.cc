// Ablation: directory hash-table bucket count (DESIGN.md design knob).
// AtomFS stores directory entries in a hash table of chained buckets; with
// too few buckets, lookups in large directories degenerate into list walks.
// Measures single-threaded stat throughput on a 4096-entry directory across
// bucket counts (real time, real executor).

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/atom_fs.h"
#include "src/util/rand.h"
#include "src/util/stats.h"

int main() {
  using namespace atomfs;
  constexpr int kFiles = 4096;
  constexpr int kLookups = 200000;

  std::printf("Ablation: directory hash buckets, %d-entry directory, %d lookups\n\n", kFiles,
              kLookups);
  std::printf("%10s %16s %14s\n", "buckets", "lookups/sec", "vs 1 bucket");
  double base = 0;
  for (uint32_t buckets : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    AtomFs::Options opts;
    opts.dir_buckets = buckets;
    AtomFs fs(std::move(opts));
    fs.Mkdir("/big");
    for (int i = 0; i < kFiles; ++i) {
      fs.Mknod("/big/f" + std::to_string(i));
    }
    Rng rng(7);
    // Pre-generate paths so string formatting stays out of the timed loop.
    std::vector<std::string> paths;
    paths.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      paths.push_back("/big/f" + std::to_string(rng.Below(kFiles)));
    }
    WallTimer timer;
    for (int i = 0; i < kLookups; ++i) {
      auto attr = fs.Stat(paths[static_cast<size_t>(i) & 1023]);
      if (!attr.ok()) {
        std::fprintf(stderr, "lookup failed\n");
        return 1;
      }
    }
    const double rate = kLookups / timer.ElapsedSeconds();
    if (buckets == 1) {
      base = rate;
    }
    std::printf("%10u %16.0f %13.1fx\n", buckets, rate, rate / base);
  }
  std::printf("\nExpected shape: throughput rises with buckets until chains are short,\n");
  std::printf("then flattens (the paper's prototype uses a hash table for this reason).\n");
  return 0;
}
