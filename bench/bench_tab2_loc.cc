// Table 2 analog: lines of code per component.
//
// The paper's Table 2 reports the Coq development sizes (abstraction/Aops
// 344, invariants 1397, R-G conditions 451, verified code 673, proof
// 60,324). This repository has no Coq proof; the analogous inventory is the
// executable artifact: the abstract specification, the concrete file
// systems, and the CRL-H runtime verification layer. This binary counts
// non-blank lines under each component directory and prints the comparison.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#ifndef ATOMFS_SOURCE_DIR
#define ATOMFS_SOURCE_DIR "."
#endif

namespace {

uint64_t CountLines(const std::filesystem::path& dir) {
  uint64_t lines = 0;
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(dir, ec);
       it != std::filesystem::recursive_directory_iterator(); it.increment(ec)) {
    if (ec || !it->is_regular_file()) {
      continue;
    }
    const auto ext = it->path().extension();
    if (ext != ".cc" && ext != ".h" && ext != ".cpp") {
      continue;
    }
    std::ifstream in(it->path());
    std::string line;
    while (std::getline(in, line)) {
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos != std::string::npos) {
        ++lines;
      }
    }
  }
  return lines;
}

}  // namespace

int main() {
  const std::filesystem::path root = ATOMFS_SOURCE_DIR;
  struct Row {
    const char* component;
    const char* paper_counterpart;
    uint64_t paper_loc;
    std::vector<const char*> dirs;
  };
  const std::vector<Row> rows = {
      {"Abstraction and Aops (src/afs)", "Abstraction and Aops", 344, {"src/afs"}},
      {"CRL-H runtime: ghost/helper/invariants/rollback/checkers (src/crlh)",
       "Invariants + R-G conditions + proof", 1397 + 451 + 60324, {"src/crlh"}},
      {"Verified code: AtomFS core (src/core)", "Verified code", 673, {"src/core"}},
      {"Substrates: vfs/sim/util (FUSE+VFS+testbed analogs)", "(trusted: FUSE, VFS, libc)", 0,
       {"src/vfs", "src/sim", "src/util"}},
      {"Durability: journal (op-log + recovery)", "(future work in the paper)", 0,
       {"src/journal"}},
      {"Baselines: biglock/naive/retryfs", "(biglock baseline of Sec. 7.3)", 0,
       {"src/biglock", "src/naive", "src/retryfs"}},
      {"Workloads (src/workload)", "(LFS/Filebench/apps)", 0, {"src/workload"}},
      {"Tests", "(xfstests role)", 0, {"tests"}},
      {"Benches + examples + tools", "(evaluation scripts)", 0,
       {"bench", "examples", "tools"}},
  };

  std::printf("Table 2 analog: lines of code per component (non-blank .h/.cc/.cpp)\n");
  std::printf("(the paper's column counts Coq lines; this repo's verification layer is an\n");
  std::printf(" executable runtime checker, so the numbers are not comparable in kind)\n\n");
  std::printf("%-70s %10s %14s\n", "component", "this repo", "paper (Coq)");
  uint64_t total = 0;
  for (const auto& row : rows) {
    uint64_t lines = 0;
    for (const char* dir : row.dirs) {
      lines += CountLines(root / dir);
    }
    total += lines;
    if (row.paper_loc > 0) {
      std::printf("%-70s %10llu %14llu\n", row.component,
                  static_cast<unsigned long long>(lines),
                  static_cast<unsigned long long>(row.paper_loc));
    } else {
      std::printf("%-70s %10llu %14s\n", row.component,
                  static_cast<unsigned long long>(lines), row.paper_counterpart);
    }
  }
  std::printf("%-70s %10llu %14llu\n", "Total", static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(63099));
  return 0;
}
