// Figure 11(a): Fileserver scalability — AtomFS vs AtomFS-biglock (and the
// traversal-retry variant) on 16 simulated cores. The fileserver profile
// spreads work over ~526 directories and 10000 files, so per-inode locking
// pays off (the paper reports 1.46x over big-lock at 16 threads).

#include "bench/fig11_common.h"

int main() {
  atomfs::RunFig11(atomfs::FilebenchProfile::Fileserver());
  return 0;
}
