// Ablation: cost of runtime verification. Measures AtomFS operation
// throughput with (a) no observer, (b) the CRL-H monitor with invariant
// checking off, and (c) the full monitor. This quantifies what "verification
// as a runtime layer" costs compared to the paper's static proofs (whose
// runtime cost is zero).

#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/atom_fs.h"
#include "src/crlh/monitor.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

enum class Mode { kUnmonitored, kMonitorNoInvariants, kMonitorFull };

std::unique_ptr<CrlhMonitor> MakeMonitor(Mode mode) {
  if (mode == Mode::kUnmonitored) {
    return nullptr;
  }
  CrlhMonitor::Options opts;
  opts.check_invariants = mode == Mode::kMonitorFull;
  opts.record_history = false;  // unbounded histories are a test feature
  return std::make_unique<CrlhMonitor>(opts);
}

void BM_MixedOps(benchmark::State& state) {
  const Mode mode = static_cast<Mode>(state.range(0));
  auto monitor = MakeMonitor(mode);
  AtomFs::Options opts;
  opts.observer = monitor.get();
  AtomFs fs(std::move(opts));
  fs.Mkdir("/d");
  for (int i = 0; i < 64; ++i) {
    fs.Mknod("/d/f" + std::to_string(i));
  }
  Rng rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string path = "/d/f" + std::to_string(rng.Below(64));
    switch (i++ % 4) {
      case 0:
        benchmark::DoNotOptimize(fs.Stat(path));
        break;
      case 1:
        fs.Mknod("/d/new");
        break;
      case 2:
        fs.Unlink("/d/new");
        break;
      default:
        fs.Rename(path, "/d/tmp");
        fs.Rename("/d/tmp", path);
        break;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_MixedOps)
    ->Arg(static_cast<int>(Mode::kUnmonitored))
    ->Arg(static_cast<int>(Mode::kMonitorNoInvariants))
    ->Arg(static_cast<int>(Mode::kMonitorFull))
    ->ArgNames({"mode(0=off,1=ghost,2=full)"});

}  // namespace
}  // namespace atomfs

BENCHMARK_MAIN();
