// Figure 11(b): Webproxy scalability. The webproxy profile concentrates all
// directory operations on two directories, so lock coupling gains much less
// over the big lock (the paper reports only 1.16x at 16 threads).

#include "bench/fig11_common.h"

int main() {
  atomfs::RunFig11(atomfs::FilebenchProfile::Webproxy());
  return 0;
}
