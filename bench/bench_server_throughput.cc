// bench_server_throughput: closed-loop multi-client load generator for the
// atomfsd serving layer.
//
// For each requested Filebench profile it starts an in-process AtomFsServer
// (fresh backend each time), connects N clients — one connection and one
// thread per client — and drives the profile's op mix through AtomFsClient,
// i.e. over the real wire protocol. Every FileSystem call is timed
// client-side into an atomtrace metrics registry, so the reported
// p50/p99/p999 use the same bucket math as the server's own histograms (a
// client and a `METRICS` fetch can never disagree about a percentile).
//
// The primary pass runs with a TracingObserver attached to the backend
// (atomfs/biglock), and the report carries the lock-coupling profile —
// per-depth hold/step histograms — and helper counters pulled over the wire
// via the METRICS op. For the fileserver profile the run doubles as the
// tracing-overhead experiment: two servers over identical datasets (one
// untraced, one traced) take load in alternating paired slices, and the
// median traced/untraced throughput ratio yields `tracing_overhead_pct`
// plus the hardware-independent `tracing_overhead_ns_per_op` (suppressed
// under --monitor, where verification — not tracing — dominates). The same
// paired-slice harness then runs a second instrument — tracer-without-ring
// vs tracer-with-ring — whose `ghost_overhead_pct`/`ghost_overhead_ns_per_op`
// price the flight-recorder ring alone (the `flight_recorder` JSON block).
//
// A second mode exercises the pipelined request API: `--connections M
// --pipeline N` runs M concurrent connections for a fixed wall-time window,
// each in a closed submit-N / flush / wait-all loop over its own files
// (stat/read/write through ClientSession). The run always takes two passes —
// depth 1 (one request per round trip, protocol v2's lower bound) and depth
// N — so the report carries a pipelined-vs-unpipelined throughput pair plus
// per-connection fairness (min/max completed ops across connections).
// `--check` turns the report into a gate: any non-OK reply or a fairness
// ratio above 10x exits nonzero (run_tier1.sh uses this as the serving-layer
// smoke). `--connect ENDPOINT` points both passes at an already-running
// atomfsd instead of an in-process server.
//
// The profile run also emits a top-level `txn` block: transaction commit
// throughput over the wire against a journaled TxnManager (TXBEGIN / writes /
// TXCOMMIT per connection, with a shared-file slice to exercise the
// conflict/retry path), then recovery time replaying 25% / 50% / 100%
// prefixes of the journal that load produced.
//
// A top-level `rcu_walk` block prices the optimistic read path (atomfs
// backend, no --monitor): the same paired-slice harness drives a
// lock-coupled AtomFs against one with `enable_rcu_walk`, reporting the
// median throughput ratio as `speedup` plus the core.rcuwalk.* counters and
// the derived `fallback_rate`. `--rcu-smoke` runs a short version as a gate
// instead: exit nonzero unless the optimistic path engaged (attempts > 0)
// with zero unvalidated reads (run_tier1.sh's rcu-walk smoke stage).
//
//   bench_server_throughput [--clients N]     concurrent clients (default 4)
//                           [--ops N]         filebench ops per client (default 800)
//                           [--profile fileserver|webproxy|both]   (default both)
//                           [--backend atomfs|biglock|retryfs|naive]
//                           [--transport unix|tcp]                 (default unix)
//                           [--monitor]       attach the CRL-H monitor too
//                           [--json PATH]     output file (default BENCH_server.json)
//                           [--rcu-smoke]     short rcu-walk gate; no JSON
//   pipeline mode:          [--connections M] concurrent connections
//                           [--pipeline N]    requests in flight per connection
//                           [--seconds S]     wall time per pass (default 2)
//                           [--connect unix:PATH|tcp:PORT]  use a running daemon
//                           [--check]         exit nonzero on non-OK / unfairness
//                           [--fairness-limit X]  max per-conn max/min ratio the
//                                             check allows (default 10; raise under
//                                             sanitizer instrumentation, where
//                                             scheduling skew is not meaningful)

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/biglock/big_lock_fs.h"
#include "src/client/client.h"
#include "src/core/atom_fs.h"
#include "src/crlh/monitor.h"
#include "src/journal/checkpoint.h"
#include "src/journal/wal.h"
#include "src/naive/naive_fs.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/tracer.h"
#include "src/retryfs/retry_fs.h"
#include "src/server/server.h"
#include "src/shard/sharded_fs.h"
#include "src/txn/txn.h"
#include "src/util/json.h"
#include "src/util/rand.h"
#include "src/util/stats.h"
#include "src/workload/filebench.h"

namespace atomfs {
namespace {

// The path-based ops a filebench worker can issue, for per-op bucketing.
enum OpKind : int {
  kOpMkdir,
  kOpMknod,
  kOpRmdir,
  kOpUnlink,
  kOpRename,
  kOpExchange,
  kOpStat,
  kOpReadDir,
  kOpRead,
  kOpWrite,
  kOpTruncate,
  kOpKindCount,
};

const char* OpKindName(int k) {
  static const char* kNames[kOpKindCount] = {"mkdir",  "mknod",    "rmdir", "unlink",
                                             "rename", "exchange", "stat",  "readdir",
                                             "read",   "write",    "truncate"};
  return kNames[k];
}

// FileSystem decorator that timestamps every call into shared registry
// histograms ("client.op.<kind>.latency_ns"). The registry shards by thread,
// and each client runs on its own thread, so recording stays contention-free.
class LatencyRecordingFs : public FileSystem {
 public:
  LatencyRecordingFs(FileSystem* inner, MetricsRegistry* registry) : inner_(inner) {
    for (int k = 0; k < kOpKindCount; ++k) {
      hist_[k] =
          registry->GetHistogram(std::string("client.op.") + OpKindName(k) + ".latency_ns");
    }
  }

  // Defined before its uses: auto return deduction needs the body in scope.
  template <typename Fn>
  auto Timed(int kind, Fn&& fn) {
    WallTimer timer;
    auto result = fn();
    hist_[kind].Record(timer.ElapsedNanos());
    return result;
  }

  Status Mkdir(const Path& p) override { return Timed(kOpMkdir, [&] { return inner_->Mkdir(p); }); }
  Status Mknod(const Path& p) override { return Timed(kOpMknod, [&] { return inner_->Mknod(p); }); }
  Status Rmdir(const Path& p) override { return Timed(kOpRmdir, [&] { return inner_->Rmdir(p); }); }
  Status Unlink(const Path& p) override {
    return Timed(kOpUnlink, [&] { return inner_->Unlink(p); });
  }
  Status Rename(const Path& s, const Path& d) override {
    return Timed(kOpRename, [&] { return inner_->Rename(s, d); });
  }
  Status Exchange(const Path& a, const Path& b) override {
    return Timed(kOpExchange, [&] { return inner_->Exchange(a, b); });
  }
  Result<Attr> Stat(const Path& p) override {
    return Timed(kOpStat, [&] { return inner_->Stat(p); });
  }
  Result<std::vector<DirEntry>> ReadDir(const Path& p) override {
    return Timed(kOpReadDir, [&] { return inner_->ReadDir(p); });
  }
  Result<size_t> Read(const Path& p, uint64_t off, std::span<std::byte> out) override {
    return Timed(kOpRead, [&] { return inner_->Read(p, off, out); });
  }
  Result<size_t> Write(const Path& p, uint64_t off, std::span<const std::byte> data) override {
    return Timed(kOpWrite, [&] { return inner_->Write(p, off, data); });
  }
  Status Truncate(const Path& p, uint64_t size) override {
    return Timed(kOpTruncate, [&] { return inner_->Truncate(p, size); });
  }

 private:
  FileSystem* inner_;
  Histogram hist_[kOpKindCount];
};

bool BackendObservable(const std::string& name) { return name == "atomfs" || name == "biglock"; }

std::unique_ptr<FileSystem> MakeBackend(const std::string& name, FsObserver* observer) {
  if (name == "atomfs") {
    AtomFs::Options o;
    o.observer = observer;
    return std::make_unique<AtomFs>(std::move(o));
  }
  if (name == "biglock") {
    BigLockFs::Options o;
    o.observer = observer;
    return std::make_unique<BigLockFs>(o);
  }
  if (name == "retryfs") {
    return std::make_unique<RetryFs>();
  }
  if (name == "naive") {
    return std::make_unique<NaiveFs>();
  }
  return nullptr;
}

struct ProfileResult {
  std::string name;
  bool traced = false;
  double wall_seconds = 0;
  uint64_t fs_calls = 0;
  uint64_t filebench_ops = 0;
  uint64_t worker_failures = 0;
  double ops_per_sec = 0;
  // Per-connection fairness: completed filebench ops on the least- and
  // most-served connection. A ratio far above 1 means the server starves
  // some connections under contention.
  uint64_t min_conn_ops = 0;
  uint64_t max_conn_ops = 0;
  // Client-side registry snapshot: client.op.<kind>.latency_ns histograms.
  MetricsSnapshot client;
  // Server-side registry, fetched over the wire with the METRICS op; carries
  // the lock-coupling profile and helper counters when `traced`.
  MetricsSnapshot remote;
  WireServerStats server;
};

ProfileResult RunProfile(const FilebenchProfile& profile, const std::string& backend,
                         const std::string& transport, int clients, uint64_t ops_per_client,
                         bool traced, bool with_monitor) {
  ProfileResult result;
  result.name = profile.name;
  result.traced = traced;

  // Server-side observability: the registry always backs the METRICS op; the
  // tracer (and optionally the CRL-H monitor) only attach on a traced pass.
  MetricsRegistry server_registry;
  std::unique_ptr<TracingObserver> tracer;
  std::unique_ptr<CrlhMonitor> monitor;
  std::unique_ptr<TeeObserver> tee;
  FsObserver* observer = nullptr;
  if (traced && BackendObservable(backend)) {
    tracer = std::make_unique<TracingObserver>(&server_registry, /*ring=*/nullptr);
    observer = tracer.get();
    if (with_monitor) {
      CrlhMonitor::Options mopts;
      mopts.obs = tracer.get();
      monitor = std::make_unique<CrlhMonitor>(mopts);
      tee = std::make_unique<TeeObserver>(monitor.get(), tracer.get());
      observer = tee.get();
    }
  }

  std::unique_ptr<FileSystem> fs = MakeBackend(backend, observer);
  const std::string sock_path =
      "/tmp/atomfs_bench_" + std::to_string(getpid()) + "_" + profile.name + ".sock";
  ServerOptions options;
  options.workers = clients;
  options.metrics = &server_registry;
  if (transport == "tcp") {
    options.tcp_listen = true;  // ephemeral port
  } else {
    options.unix_path = sock_path;
  }
  AtomFsServer server(fs.get(), options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "cannot start server for %s\n", profile.name.c_str());
    std::exit(1);
  }
  auto connect = [&]() {
    return transport == "tcp" ? AtomFsClient::ConnectTcp(server.BoundTcpPort())
                              : AtomFsClient::ConnectUnix(sock_path);
  };

  // Populate directly on the backend — setup is not what we measure.
  FilebenchSetup(*fs, profile, /*seed=*/7);

  MetricsRegistry client_registry;
  std::vector<std::unique_ptr<AtomFsClient>> conns;
  std::vector<std::unique_ptr<LatencyRecordingFs>> recorders;
  for (int c = 0; c < clients; ++c) {
    auto conn = connect();
    if (!conn.ok()) {
      std::fprintf(stderr, "client %d cannot connect\n", c);
      std::exit(1);
    }
    conns.push_back(std::move(*conn));
    recorders.push_back(
        std::make_unique<LatencyRecordingFs>(conns.back().get(), &client_registry));
  }

  std::vector<WorkerStats> worker_stats(static_cast<size_t>(clients));
  WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      worker_stats[static_cast<size_t>(c)] =
          FilebenchWorker(*recorders[static_cast<size_t>(c)], profile,
                          /*seed=*/1000 + static_cast<uint64_t>(c), ops_per_client);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.wall_seconds = wall.ElapsedSeconds();

  for (int c = 0; c < clients; ++c) {
    const uint64_t ops = worker_stats[static_cast<size_t>(c)].ops;
    result.filebench_ops += ops;
    result.worker_failures += worker_stats[static_cast<size_t>(c)].failures;
    result.min_conn_ops = c == 0 ? ops : std::min(result.min_conn_ops, ops);
    result.max_conn_ops = std::max(result.max_conn_ops, ops);
  }
  result.client = client_registry.Snapshot();
  for (const HistogramSnapshot& h : result.client.histograms) {
    result.fs_calls += h.count;
  }
  result.ops_per_sec = static_cast<double>(result.fs_calls) / result.wall_seconds;

  // Pull the server registry over the real wire — this is the same bytes an
  // operator would get from fsshell's `metrics` command.
  if (auto remote = conns.front()->FetchMetrics(); remote.ok()) {
    result.remote = std::move(*remote);
  } else {
    std::fprintf(stderr, "METRICS fetch failed for %s\n", profile.name.c_str());
    std::exit(1);
  }

  result.server = server.StatsSnapshot();
  server.Stop();

  if (monitor) {
    if (auto* atom = dynamic_cast<AtomFs*>(fs.get()); atom != nullptr) {
      monitor->CheckQuiescent(atom->SnapshotSpec());
    }
    if (!monitor->ok()) {
      std::fprintf(stderr, "CRL-H VIOLATIONS during %s:\n", profile.name.c_str());
      for (const auto& v : monitor->violations()) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
      std::exit(1);
    }
    std::printf("monitor: every op linearizable (%llu helped)\n",
                static_cast<unsigned long long>(monitor->helped_ops()));
  }
  return result;
}

// The tracing-overhead experiment. Sequential untraced-then-traced passes
// cannot resolve a few-percent effect: every freshly built server gets its
// own allocation layout and scheduler luck, and pass-to-pass throughput
// varies by more than the tracer costs. So both servers are built ONCE —
// identical datasets, one untraced, one traced — and the load alternates
// between them in back-to-back slices driven with the same seeds. Layout
// differences freeze for the whole experiment, adjacent slices share the
// machine's conditions, and each pair yields one traced/untraced throughput
// ratio; the reported overhead comes from the median ratio. Both sides go
// through identical LatencyRecordingFs decorators so recorder cost cancels.
struct OverheadOutcome {
  ProfileResult traced;  // aggregated over the traced slices
  double untraced_ops_per_sec = 0;
  double overhead_pct = 0;
  double overhead_ns_per_op = 0;  // added machine time per FileSystem call
  int pairs = 0;
};

// The generic side of the harness: callers build the two FileSystem
// instances (with whatever observers/options the comparison is about) plus
// their server registries, and this drives the paired slices. Four
// instruments share it: the tracing experiment (side A bare, side B carrying
// a TracingObserver), the flight-recorder experiment (both sides traced,
// side B additionally streaming every event into a TraceRing), the rcu-walk
// experiment (both sides traced AtomFs, side B resolving read-only ops
// optimistically) and the sharding experiment (side A a 1-shard ShardedFs,
// side B an N-shard one). `label_a`/`label_b` name the sides in the per-pair
// printout; `sock_tag` keeps concurrent experiments' sockets distinct.
// `setup`, when set, replaces the single-tree FilebenchSetup (the sharding
// experiment populates one tenant tree per client); `worker`, when set,
// replaces the plain FilebenchWorker slice body — it must be deterministic
// in (client, seed) so both sides' datasets stay byte-for-byte comparable.
using SliceWorker = std::function<WorkerStats(FileSystem& fs, int client, uint64_t seed)>;

OverheadOutcome RunPairedSliceExperiment(FileSystem* fs_a_raw, FileSystem* fs_b_raw,
                                         MetricsRegistry* registry_a_ptr,
                                         MetricsRegistry* registry_b_ptr,
                                         const char* sock_tag, const FilebenchProfile& profile,
                                         const std::string& transport, int clients,
                                         uint64_t ops_per_client, int pairs, const char* label_a,
                                         const char* label_b,
                                         const std::function<void(FileSystem&)>& setup = {},
                                         const SliceWorker& worker = {}) {
  const int kPairs = pairs;
  OverheadOutcome out;

  MetricsRegistry& registry_a = *registry_a_ptr;  // baseline server
  MetricsRegistry& registry_b = *registry_b_ptr;  // instrumented server

  const std::string sock_base =
      "/tmp/atomfs_bench_" + std::to_string(getpid()) + "_" + profile.name + sock_tag;

  struct Side {
    std::unique_ptr<AtomFsServer> server;
    std::string sock_path;
    MetricsRegistry client_registry;
    std::vector<std::unique_ptr<AtomFsClient>> conns;
    std::vector<std::unique_ptr<LatencyRecordingFs>> recorders;
    double wall = 0;
    uint64_t filebench_ops = 0;
    uint64_t failures = 0;
    std::vector<uint64_t> per_conn_ops;
  };
  Side side_a;
  Side side_b;

  auto start_side = [&](Side& side, FileSystem* fs, MetricsRegistry* registry,
                        const std::string& suffix) {
    ServerOptions options;
    options.workers = clients;
    options.metrics = registry;
    if (transport == "tcp") {
      options.tcp_listen = true;
    } else {
      side.sock_path = sock_base + suffix + ".sock";
      options.unix_path = side.sock_path;
    }
    side.server = std::make_unique<AtomFsServer>(fs, options);
    if (!side.server->Start().ok()) {
      std::fprintf(stderr, "cannot start overhead server for %s\n", profile.name.c_str());
      std::exit(1);
    }
    if (setup) {
      setup(*fs);
    } else {
      FilebenchSetup(*fs, profile, /*seed=*/7);
    }
    for (int c = 0; c < clients; ++c) {
      auto conn = transport == "tcp" ? AtomFsClient::ConnectTcp(side.server->BoundTcpPort())
                                     : AtomFsClient::ConnectUnix(side.sock_path);
      if (!conn.ok()) {
        std::fprintf(stderr, "overhead client %d cannot connect\n", c);
        std::exit(1);
      }
      side.conns.push_back(std::move(*conn));
      side.recorders.push_back(
          std::make_unique<LatencyRecordingFs>(side.conns.back().get(), &side.client_registry));
    }
  };
  start_side(side_a, fs_a_raw, &registry_a, "_a");
  start_side(side_b, fs_b_raw, &registry_b, "_b");

  // One slice = every client running the profile once against one side. The
  // same seeds drive both sides of a pair, so the two datasets stay
  // byte-for-byte comparable as the experiment mutates them.
  auto drive = [&](Side& side, uint64_t seed_base) {
    std::vector<WorkerStats> stats(static_cast<size_t>(clients));
    WallTimer wall;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        FileSystem& rec = *side.recorders[static_cast<size_t>(c)];
        const uint64_t seed = seed_base + static_cast<uint64_t>(c);
        stats[static_cast<size_t>(c)] =
            worker ? worker(rec, c, seed) : FilebenchWorker(rec, profile, seed, ops_per_client);
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    const double secs = wall.ElapsedSeconds();
    side.wall += secs;
    side.per_conn_ops.resize(static_cast<size_t>(clients), 0);
    for (int c = 0; c < clients; ++c) {
      const WorkerStats& s = stats[static_cast<size_t>(c)];
      side.filebench_ops += s.ops;
      side.failures += s.failures;
      side.per_conn_ops[static_cast<size_t>(c)] += s.ops;
    }
    return secs;
  };

  // One untimed warm-up slice per side, driven through the raw connections
  // so the client-side registries stay clean: a freshly built server's
  // first slice is dominated by cold caches and lazy allocation, which
  // would otherwise bias the first pair. The same seed mutates both
  // datasets identically.
  auto warm = [&](Side& side) {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        FileSystem& conn = *side.conns[static_cast<size_t>(c)];
        const uint64_t seed = 500 + static_cast<uint64_t>(c);
        if (worker) {
          worker(conn, c, seed);
        } else {
          FilebenchWorker(conn, profile, seed, ops_per_client);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  };
  warm(side_a);
  warm(side_b);

  std::vector<double> ratios;
  for (int pair = 0; pair < kPairs; ++pair) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(pair) * 977;
    double wall_a = 0;
    double wall_b = 0;
    // Alternate which side goes first so drift inside a pair cancels too.
    if (pair % 2 == 0) {
      wall_a = drive(side_a, seed);
      wall_b = drive(side_b, seed);
    } else {
      wall_b = drive(side_b, seed);
      wall_a = drive(side_a, seed);
    }
    // Equal op counts per slice, so the throughput ratio is the wall ratio.
    ratios.push_back(wall_a / wall_b);
    std::printf("overhead pair %d: %s %.3fs %s %.3fs (%s/%s throughput %.3f)\n", pair, label_a,
                wall_a, label_b, wall_b, label_b, label_a, wall_a / wall_b);
  }

  std::sort(ratios.begin(), ratios.end());
  const double median_ratio = ratios[ratios.size() / 2];

  uint64_t calls_a = 0;
  for (const HistogramSnapshot& h : side_a.client_registry.Snapshot().histograms) {
    calls_a += h.count;
  }
  out.untraced_ops_per_sec = static_cast<double>(calls_a) / side_a.wall;
  out.overhead_pct = (1.0 - median_ratio) * 100.0;
  // The percentage depends on how much CPU an op costs on this machine (on a
  // single-core container every tracer nanosecond is throughput-critical);
  // the added time per op is the hardware-comparable number.
  out.overhead_ns_per_op =
      (1.0 / (out.untraced_ops_per_sec * median_ratio) - 1.0 / out.untraced_ops_per_sec) * 1e9;
  out.pairs = kPairs;

  ProfileResult& r = out.traced;
  r.name = profile.name;
  r.traced = true;
  r.wall_seconds = side_b.wall;
  r.filebench_ops = side_b.filebench_ops;
  r.worker_failures = side_b.failures;
  if (!side_b.per_conn_ops.empty()) {
    r.min_conn_ops = *std::min_element(side_b.per_conn_ops.begin(), side_b.per_conn_ops.end());
    r.max_conn_ops = *std::max_element(side_b.per_conn_ops.begin(), side_b.per_conn_ops.end());
  }
  r.client = side_b.client_registry.Snapshot();
  for (const HistogramSnapshot& h : r.client.histograms) {
    r.fs_calls += h.count;
  }
  // Ratio-consistent throughput so the JSON overhead field reproduces the
  // printed number exactly.
  r.ops_per_sec = out.untraced_ops_per_sec * median_ratio;
  if (auto remote = side_b.conns.front()->FetchMetrics(); remote.ok()) {
    r.remote = std::move(*remote);
  } else {
    std::fprintf(stderr, "METRICS fetch failed for %s\n", profile.name.c_str());
    std::exit(1);
  }
  r.server = side_b.server->StatsSnapshot();
  side_a.server->Stop();
  side_b.server->Stop();
  return out;
}

// The tracing / flight-recorder instruments: side A optionally traced
// (`baseline_traced`), side B always traced and optionally streaming into
// `ring`. Backends come from MakeBackend, so this covers atomfs and biglock.
OverheadOutcome RunOverheadExperiment(const FilebenchProfile& profile, const std::string& backend,
                                      const std::string& transport, int clients,
                                      uint64_t ops_per_client, bool baseline_traced,
                                      TraceRing* ring, const char* label_a,
                                      const char* label_b) {
  MetricsRegistry registry_a;
  MetricsRegistry registry_b;
  std::unique_ptr<TracingObserver> tracer_a;
  if (baseline_traced) {
    tracer_a = std::make_unique<TracingObserver>(&registry_a, /*ring=*/nullptr);
  }
  TracingObserver tracer(&registry_b, ring);
  std::unique_ptr<FileSystem> fs_a = MakeBackend(backend, tracer_a.get());
  std::unique_ptr<FileSystem> fs_b = MakeBackend(backend, &tracer);
  return RunPairedSliceExperiment(fs_a.get(), fs_b.get(), &registry_a, &registry_b,
                                  ring != nullptr ? "_ring" : "", profile, transport, clients,
                                  ops_per_client, /*pairs=*/9, label_a, label_b);
}

// --- rcu-walk experiment -----------------------------------------------------

// The optimistic-walk experiment: what does the RCU-style read path buy over
// lock-coupled resolution, and how often does validation send it back? Same
// paired-slice methodology — side A is an AtomFs running the lock-coupled
// walk for every op, side B an AtomFs with `enable_rcu_walk` resolving
// read-only ops (stat/readdir/read) optimistically. Both sides carry a
// TracingObserver so instrumentation cost cancels, and side B's registry —
// fetched over the wire like any METRICS reply — supplies the
// core.rcuwalk.* counters the fallback rate is computed from.
struct RcuWalkOutcome {
  double speedup = 0;        // median paired-slice rcu/locked throughput ratio
  double fallback_rate = 0;  // fallbacks / optimistically-attempted ops
  double locked_ops_per_sec = 0;
  double rcu_ops_per_sec = 0;
  uint64_t attempts = 0;  // OptimisticAttempt calls, retries included
  uint64_t validation_failures = 0;
  uint64_t fallbacks = 0;
  uint64_t unvalidated_reads = 0;  // must be 0: the unsafe hook is test-only
  uint64_t worker_failures = 0;
  int pairs = 0;
};

RcuWalkOutcome RunRcuWalkExperiment(const FilebenchProfile& profile, const std::string& transport,
                                    int clients, uint64_t ops_per_client, int pairs) {
  MetricsRegistry registry_a;
  MetricsRegistry registry_b;
  TracingObserver tracer_a(&registry_a, /*ring=*/nullptr);
  TracingObserver tracer_b(&registry_b, /*ring=*/nullptr);
  AtomFs::Options locked;
  locked.observer = &tracer_a;
  AtomFs::Options rcu;
  rcu.observer = &tracer_b;
  rcu.enable_rcu_walk = true;
  auto fs_a = std::make_unique<AtomFs>(std::move(locked));
  auto fs_b = std::make_unique<AtomFs>(std::move(rcu));
  OverheadOutcome out =
      RunPairedSliceExperiment(fs_a.get(), fs_b.get(), &registry_a, &registry_b, "_rcu", profile,
                               transport, clients, ops_per_client, pairs, "locked", "rcu");

  RcuWalkOutcome rw;
  rw.pairs = out.pairs;
  rw.locked_ops_per_sec = out.untraced_ops_per_sec;
  rw.rcu_ops_per_sec = out.traced.ops_per_sec;
  rw.speedup =
      rw.locked_ops_per_sec > 0 ? rw.rcu_ops_per_sec / rw.locked_ops_per_sec : 0;
  rw.worker_failures = out.traced.worker_failures;
  const MetricsSnapshot& remote = out.traced.remote;
  rw.attempts = remote.CounterValue("core.rcuwalk.attempts");
  rw.validation_failures = remote.CounterValue("core.rcuwalk.validation_failures");
  rw.fallbacks = remote.CounterValue("core.rcuwalk.fallbacks");
  rw.unvalidated_reads = remote.CounterValue("core.rcuwalk.unvalidated_reads");
  // Every optimistically-attempted op ends in exactly one validation pass
  // (or skip) or one fallback; failed attempts that were retried are
  // interior steps. So ops = attempts - validation_failures + fallbacks.
  const uint64_t optimistic_ops = rw.attempts - rw.validation_failures + rw.fallbacks;
  rw.fallback_rate = optimistic_ops > 0
                         ? static_cast<double>(rw.fallbacks) / static_cast<double>(optimistic_ops)
                         : 0.0;
  return rw;
}

void PrintRcuWalk(const RcuWalkOutcome& rw) {
  std::printf(
      "rcu walk: %.3fx locked throughput (%.0f vs %.0f ops/sec, median over %d pairs); "
      "%llu attempt(s), %llu validation failure(s), %llu fallback(s) "
      "(fallback rate %.4f), %llu unvalidated read(s)\n",
      rw.speedup, rw.rcu_ops_per_sec, rw.locked_ops_per_sec, rw.pairs,
      static_cast<unsigned long long>(rw.attempts),
      static_cast<unsigned long long>(rw.validation_failures),
      static_cast<unsigned long long>(rw.fallbacks), rw.fallback_rate,
      static_cast<unsigned long long>(rw.unvalidated_reads));
}

void JsonRcuWalk(JsonWriter& json, const RcuWalkOutcome& rw) {
  json.Key("rcu_walk").BeginObject();
  json.Field("speedup", rw.speedup);
  json.Field("fallback_rate", rw.fallback_rate);
  json.Field("ops_per_sec_locked", rw.locked_ops_per_sec);
  json.Field("ops_per_sec_rcu", rw.rcu_ops_per_sec);
  json.Field("attempts", rw.attempts);
  json.Field("validation_failures", rw.validation_failures);
  json.Field("fallbacks", rw.fallbacks);
  json.Field("unvalidated_reads", rw.unvalidated_reads);
  json.Field("worker_failures", rw.worker_failures);
  json.Field("pairs", static_cast<uint64_t>(rw.pairs));
  json.EndObject();
}

// The --rcu-smoke gate (run_tier1.sh): a short paired-slice run must show
// the optimistic path actually engaging and never bypassing validation.
int RcuSmokeGate(const RcuWalkOutcome& rw) {
  int rc = 0;
  if (rw.attempts == 0) {
    std::fprintf(stderr, "RCU SMOKE FAILED: no optimistic walk attempts recorded\n");
    rc = 1;
  }
  if (rw.unvalidated_reads != 0) {
    std::fprintf(stderr,
                 "RCU SMOKE FAILED: %llu unvalidated optimistic read(s) — the unsafe "
                 "skip-validation hook must never be live outside tests\n",
                 static_cast<unsigned long long>(rw.unvalidated_reads));
    rc = 1;
  }
  if (rc == 0) {
    std::printf("rcu smoke: ok (%llu attempts, 0 unvalidated reads)\n",
                static_cast<unsigned long long>(rw.attempts));
  }
  return rc;
}

// --- sharding experiment -----------------------------------------------------

// Namespace-scaling: the same multi-tenant fileserver load — one tenant tree
// per client, tenant roots spread round-robin over the shards, plus a <5%
// cross-shard rename mix — drives a 1-shard ShardedFs (side A: every tenant
// serialized through one AtomFs) against an N-shard one (side B). The
// paired-slice median ratio is the scaling factor at N; side B's migration
// counters show how much of the load ran the two-shard commit protocol.
struct ShardingPoint {
  uint32_t shards = 1;
  double ops_per_sec = 0;
  double speedup = 0;  // vs the 1-shard side of the same experiment
  uint64_t migrations_completed = 0;
  uint64_t migrations_aborted = 0;
  uint64_t cross_shard_help_edges = 0;
  uint64_t stale_route_retries = 0;
  uint64_t worker_failures = 0;
  int pairs = 0;
};

struct ShardingOutcome {
  std::vector<ShardingPoint> points;  // shards = 1, then each requested N
  double cross_shard_mix_pct = 0;
};

ShardingOutcome RunShardingExperiment(const std::string& transport, int clients,
                                      uint64_t ops_per_client,
                                      const std::vector<uint32_t>& shard_counts, int pairs) {
  ShardingOutcome out;

  // One scaled-down fileserver tree per client: the worker mix is the
  // fileserver personality, the sizes shrink so per-side setup stays a small
  // fraction of the measured slices.
  FilebenchProfile base = FilebenchProfile::Fileserver();
  base.dirs = 32;
  base.files = 1000;

  // Per slice each client runs `ops_per_client` filebench ops on its own
  // tenant, then `cross_pairs` rename round-trips into the next client's
  // tenant — 2*cross_pairs/(ops+2*cross_pairs) of the slice, kept under 5%.
  const uint64_t cross_pairs = std::max<uint64_t>(1, ops_per_client / 64);
  out.cross_shard_mix_pct = 100.0 * static_cast<double>(2 * cross_pairs) /
                            static_cast<double>(ops_per_client + 2 * cross_pairs);

  for (const uint32_t n : shard_counts) {
    // Tenant roots chosen so client c's tenant homes on shard c % n (the
    // router hash is stable, so scanning candidate names terminates fast).
    ShardRouter router(n);
    std::vector<std::string> roots;
    int candidate = 0;
    for (int c = 0; c < clients; ++c) {
      const uint32_t want = static_cast<uint32_t>(c) % n;
      for (;; ++candidate) {
        const std::string name = "t" + std::to_string(candidate);
        if (router.Route(name) == want) {
          roots.push_back("/" + name);
          ++candidate;
          break;
        }
      }
    }
    std::vector<FilebenchProfile> tenants;
    for (int c = 0; c < clients; ++c) {
      FilebenchProfile p = base;
      p.root = roots[static_cast<size_t>(c)];
      tenants.push_back(std::move(p));
    }

    auto setup = [&](FileSystem& fs) {
      for (int c = 0; c < clients; ++c) {
        FilebenchSetup(fs, tenants[static_cast<size_t>(c)], /*seed=*/7);
      }
    };
    // Deterministic in (client, seed) so both sides' datasets stay
    // comparable: a file already deleted by this client's own filebench
    // pass fails its rename identically on both sides.
    auto worker = [&](FileSystem& fs, int c, uint64_t seed) {
      WorkerStats st = FilebenchWorker(fs, tenants[static_cast<size_t>(c)], seed, ops_per_client);
      const std::string& src_root = roots[static_cast<size_t>(c)];
      const std::string& dst_root = roots[static_cast<size_t>((c + 1) % clients)];
      Rng rng(seed * 0x9e3779b9ULL + static_cast<uint64_t>(c));
      for (uint64_t k = 0; k < cross_pairs; ++k) {
        const uint32_t idx = static_cast<uint32_t>(rng.Below(base.files));
        const std::string src = src_root + "/d" + std::to_string(idx % base.dirs) + "/f" +
                                std::to_string(idx);
        const std::string parked =
            dst_root + "/x" + std::to_string(c) + "_" + std::to_string(k);
        ++st.ops;
        if (!fs.Rename(src, parked).ok()) {
          ++st.failures;
          continue;
        }
        ++st.ops;
        if (!fs.Rename(parked, src).ok()) {
          ++st.failures;
        }
      }
      return st;
    };

    MetricsRegistry registry_a;
    MetricsRegistry registry_b;
    ShardedFs::Options oa;
    oa.shards = 1;
    oa.record_history = false;  // throughput run; nothing replays this
    ShardedFs::Options ob;
    ob.shards = n;
    ob.record_history = false;
    ob.metrics = &registry_b;
    auto fs_a = std::make_unique<ShardedFs>(std::move(oa));
    auto fs_b = std::make_unique<ShardedFs>(std::move(ob));
    const std::string tag = "_shard" + std::to_string(n);
    const std::string label_b = std::to_string(n) + "-shard";
    const OverheadOutcome res = RunPairedSliceExperiment(
        fs_a.get(), fs_b.get(), &registry_a, &registry_b, tag.c_str(), base, transport, clients,
        ops_per_client, pairs, "1-shard", label_b.c_str(), setup, worker);

    if (out.points.empty()) {
      ShardingPoint p1;
      p1.shards = 1;
      p1.ops_per_sec = res.untraced_ops_per_sec;
      p1.speedup = 1.0;
      p1.pairs = res.pairs;
      out.points.push_back(p1);
    }
    ShardingPoint p;
    p.shards = n;
    p.ops_per_sec = res.traced.ops_per_sec;
    p.speedup =
        res.untraced_ops_per_sec > 0 ? res.traced.ops_per_sec / res.untraced_ops_per_sec : 0;
    p.migrations_completed = fs_b->migrations_completed();
    p.migrations_aborted = fs_b->migrations_aborted();
    p.cross_shard_help_edges = fs_b->cross_shard_help_edges();
    p.stale_route_retries = fs_b->stale_route_retries();
    p.worker_failures = res.traced.worker_failures;
    p.pairs = res.pairs;
    out.points.push_back(p);
    std::printf(
        "sharding %u: %.2fx 1-shard throughput (%.0f vs %.0f ops/sec, median over %d pairs); "
        "%llu migration(s), %llu aborted, %llu cross-shard help edge(s), %llu stale retrie(s)\n",
        n, p.speedup, p.ops_per_sec, res.untraced_ops_per_sec, p.pairs,
        static_cast<unsigned long long>(p.migrations_completed),
        static_cast<unsigned long long>(p.migrations_aborted),
        static_cast<unsigned long long>(p.cross_shard_help_edges),
        static_cast<unsigned long long>(p.stale_route_retries));
  }
  return out;
}

void JsonSharding(JsonWriter& json, const ShardingOutcome& sh, int clients) {
  json.Key("sharding").BeginObject();
  json.Field("profile", "fileserver");
  json.Field("tenants", static_cast<uint64_t>(clients));
  json.Field("cross_shard_mix_pct", sh.cross_shard_mix_pct);
  json.Key("points").BeginArray();
  for (const ShardingPoint& p : sh.points) {
    json.BeginObject();
    json.Field("shards", static_cast<uint64_t>(p.shards));
    json.Field("ops_per_sec", p.ops_per_sec);
    json.Field("speedup", p.speedup);
    json.Field("migrations_completed", p.migrations_completed);
    json.Field("migrations_aborted", p.migrations_aborted);
    json.Field("cross_shard_help_edges", p.cross_shard_help_edges);
    json.Field("stale_route_retries", p.stale_route_retries);
    json.Field("worker_failures", p.worker_failures);
    json.Field("pairs", static_cast<uint64_t>(p.pairs));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

void PrintProfile(const ProfileResult& r, int clients) {
  std::printf("\n=== %s%s: %d client(s), %llu wire calls in %s s => %.0f ops/sec ===\n",
              r.name.c_str(), r.traced ? "" : " (untraced baseline)", clients,
              static_cast<unsigned long long>(r.fs_calls), FormatSeconds(r.wall_seconds).c_str(),
              r.ops_per_sec);
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "op", "count", "mean_us", "p50_us", "p99_us",
              "p999_us");
  auto us = [](uint64_t ns) { return static_cast<double>(ns) / 1000.0; };
  for (int k = 0; k < kOpKindCount; ++k) {
    const HistogramSnapshot* h =
        r.client.FindHistogram(std::string("client.op.") + OpKindName(k) + ".latency_ns");
    if (h == nullptr || h->count == 0) {
      continue;
    }
    std::printf("%-10s %10llu %10.1f %10.1f %10.1f %10.1f\n", OpKindName(k),
                static_cast<unsigned long long>(h->count), h->Mean() / 1000.0,
                us(h->Percentile(0.50)), us(h->Percentile(0.99)), us(h->Percentile(0.999)));
  }
  std::printf("server: %llu connection(s), %llu protocol error(s)\n",
              static_cast<unsigned long long>(r.server.connections_accepted),
              static_cast<unsigned long long>(r.server.protocol_errors));
  if (const uint64_t acq = r.remote.CounterValue("lock.acquires"); acq > 0) {
    std::printf("lock coupling: %llu acquire(s); per-depth hold-time p99:\n",
                static_cast<unsigned long long>(acq));
    for (unsigned d = 1; d <= kMaxTrackedDepth; ++d) {
      char name[48];
      std::snprintf(name, sizeof(name), "lock.depth%02u.hold_ns", d);
      const HistogramSnapshot* h = r.remote.FindHistogram(name);
      if (h == nullptr || h->count == 0) {
        continue;
      }
      std::printf("  depth %2u: count=%-8llu hold p99=%.1fus\n", d,
                  static_cast<unsigned long long>(h->count), us(h->Percentile(0.99)));
    }
  }
  if (const uint64_t helps = r.remote.CounterValue("crlh.help_events"); helps > 0) {
    std::printf("helpers: %llu help event(s), %llu helped op(s)\n",
                static_cast<unsigned long long>(helps),
                static_cast<unsigned long long>(r.remote.CounterValue("crlh.helped_ops")));
  }
}

// Emits count/mean/p50/p99/p999 fields from a registry histogram.
void JsonHistogram(JsonWriter& json, const HistogramSnapshot& h) {
  json.Field("count", h.count);
  json.Field("mean_ns", h.Mean());
  json.Field("p50_ns", h.Percentile(0.50));
  json.Field("p99_ns", h.Percentile(0.99));
  json.Field("p999_ns", h.Percentile(0.999));
}

// `ghost`, when non-null, is the flight-recorder overhead experiment's
// outcome (tracer-without-ring vs tracer-with-ring) riding along on the
// same profile entry.
void JsonProfile(JsonWriter& json, const ProfileResult& r, double untraced_ops_per_sec,
                 const OverheadOutcome* ghost = nullptr, uint64_t ghost_ring_events = 0,
                 uint64_t ghost_ring_appended = 0) {
  json.BeginObject();
  json.Field("name", r.name);
  json.Field("traced", r.traced);
  json.Field("wall_seconds", r.wall_seconds);
  json.Field("fs_calls", r.fs_calls);
  json.Field("filebench_ops", r.filebench_ops);
  json.Field("worker_failures", r.worker_failures);
  json.Field("ops_per_sec", r.ops_per_sec);
  if (untraced_ops_per_sec > 0) {
    json.Field("ops_per_sec_untraced", untraced_ops_per_sec);
    json.Field("tracing_overhead_pct",
               (untraced_ops_per_sec - r.ops_per_sec) / untraced_ops_per_sec * 100.0);
    // Added machine time per FileSystem call — comparable across hosts,
    // unlike the percentage, whose denominator is this machine's CPU cost
    // per op (see the RunOverheadExperiment comment).
    json.Field("tracing_overhead_ns_per_op",
               (1.0 / r.ops_per_sec - 1.0 / untraced_ops_per_sec) * 1e9);
  }
  if (ghost != nullptr) {
    // Marginal cost of the flight-recorder ring on top of an already-traced
    // server: same paired-slice methodology, both sides carrying a
    // TracingObserver, side B streaming every event into the ghost ring.
    json.Key("flight_recorder").BeginObject();
    json.Field("ring_events", ghost_ring_events);
    json.Field("ring_events_appended", ghost_ring_appended);
    json.Field("ops_per_sec_recorder_off", ghost->untraced_ops_per_sec);
    json.Field("ops_per_sec_recorder_on", ghost->traced.ops_per_sec);
    json.Field("ghost_overhead_pct", ghost->overhead_pct);
    json.Field("ghost_overhead_ns_per_op", ghost->overhead_ns_per_op);
    json.Field("pairs", static_cast<uint64_t>(ghost->pairs));
    json.EndObject();
  }
  json.Field("server_connections", r.server.connections_accepted);
  json.Field("server_protocol_errors", r.server.protocol_errors);
  json.Field("min_conn_ops", r.min_conn_ops);
  json.Field("max_conn_ops", r.max_conn_ops);
  json.Field("fairness_ratio", r.min_conn_ops > 0 ? static_cast<double>(r.max_conn_ops) /
                                                        static_cast<double>(r.min_conn_ops)
                                                  : 0.0);

  json.Key("per_op").BeginArray();
  for (int k = 0; k < kOpKindCount; ++k) {
    const HistogramSnapshot* h =
        r.client.FindHistogram(std::string("client.op.") + OpKindName(k) + ".latency_ns");
    if (h == nullptr || h->count == 0) {
      continue;
    }
    json.BeginObject();
    json.Field("op", OpKindName(k));
    JsonHistogram(json, *h);
    json.EndObject();
  }
  json.EndArray();

  // Lock-coupling profile from the server registry (over the wire). Only
  // present on traced passes against observer-capable backends.
  json.Field("lock_acquires", r.remote.CounterValue("lock.acquires"));
  json.Field("lock_releases", r.remote.CounterValue("lock.releases"));
  json.Key("lock_depths").BeginArray();
  for (unsigned d = 1; d <= kMaxTrackedDepth; ++d) {
    char hold[48];
    char step[48];
    std::snprintf(hold, sizeof(hold), "lock.depth%02u.hold_ns", d);
    std::snprintf(step, sizeof(step), "lock.depth%02u.step_ns", d);
    const HistogramSnapshot* hh = r.remote.FindHistogram(hold);
    if (hh == nullptr || hh->count == 0) {
      continue;
    }
    json.BeginObject();
    json.Field("depth", static_cast<uint64_t>(d));
    json.Field("hold_count", hh->count);
    json.Field("hold_mean_ns", hh->Mean());
    json.Field("hold_p99_ns", hh->Percentile(0.99));
    if (const HistogramSnapshot* hs = r.remote.FindHistogram(step);
        hs != nullptr && hs->count > 0) {
      json.Field("step_mean_ns", hs->Mean());
      json.Field("step_p99_ns", hs->Percentile(0.99));
    }
    json.EndObject();
  }
  json.EndArray();

  json.Key("helpers").BeginObject();
  json.Field("help_events", r.remote.CounterValue("crlh.help_events"));
  json.Field("helped_ops", r.remote.CounterValue("crlh.helped_ops"));
  json.Field("rollback_checks", r.remote.CounterValue("crlh.rollback_checks"));
  json.Field("rolled_back_ops", r.remote.CounterValue("crlh.rolled_back_ops"));
  if (const HistogramSnapshot* h = r.remote.FindHistogram("crlh.help_set_size");
      h != nullptr && h->count > 0) {
    json.Field("help_set_size_mean", h->Mean());
  }
  json.EndObject();

  json.EndObject();
}

// --- transaction mode --------------------------------------------------------

// The txn block of BENCH_server.json: commit throughput through a journaled
// TxnManager over the real wire, then recovery time as a function of journal
// length, replayed from prefixes of the very journal the load produced.
struct TxnConnStats {
  uint64_t commits = 0;
  uint64_t conflicts = 0;
  uint64_t ops = 0;  // path ops committed inside transactions
  uint64_t failures = 0;
  bool connect_failed = false;
};

TxnConnStats RunTxnConn(const std::string& endpoint, int conn_index,
                        std::chrono::steady_clock::time_point deadline) {
  TxnConnStats st;
  auto client = AtomFsClient::Connect(endpoint);
  if (!client.ok()) {
    st.connect_failed = true;
    return st;
  }
  AtomFsClient& c = **client;
  const std::string dir = "/txbench_c" + std::to_string(conn_index);
  if (!c.Mkdir(dir).ok()) {
    ++st.failures;
    return st;
  }
  uint64_t round = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!c.TxBegin().ok()) {
      ++st.failures;
      break;
    }
    // Four private writes per transaction; every eighth transaction also
    // touches a shared file so the run exercises (and prices) the
    // conflict/retry path instead of only the embarrassingly parallel one.
    bool ok = true;
    uint64_t ops = 0;
    for (int k = 0; k < 4 && ok; ++k, ++ops) {
      ok = WriteString(c, dir + "/f" + std::to_string(k), "txn payload " +
                       std::to_string(round)).ok();
    }
    if (ok && round % 8 == 0) {
      ok = WriteString(c, "/txbench_shared", "round " + std::to_string(round)).ok();
      ++ops;
    }
    if (!ok) {
      ++st.failures;
      (void)c.TxAbort();
      continue;
    }
    const Status commit = c.TxCommit();
    if (commit.ok()) {
      ++st.commits;
      st.ops += ops;
    } else if (commit.code() == Errc::kTxConflict) {
      ++st.conflicts;  // whole-transaction retry is the contract; just loop
    } else {
      ++st.failures;
    }
    ++round;
  }
  return st;
}

void RunTxnExperiment(JsonWriter& json, int connections, double seconds) {
  const std::string journal =
      "/tmp/atomfs_bench_txn_" + std::to_string(getpid()) + ".wal";
  std::remove(journal.c_str());

  AtomFs fs;
  TxnManager::Options topt;
  topt.inner = &fs;
  topt.wal_path = journal;
  topt.record_commit_log = true;  // the checkpointed recovery curve replays it
  TxnManager txn(topt);
  const std::string sock_path =
      "/tmp/atomfs_bench_txn_" + std::to_string(getpid()) + ".sock";
  ServerOptions options;
  options.workers = connections;
  options.unix_path = sock_path;
  options.txn = &txn;
  AtomFsServer server(&txn, options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "cannot start txn-mode server\n");
    std::exit(1);
  }
  const std::string endpoint = "unix:" + sock_path;

  std::vector<TxnConnStats> stats(static_cast<size_t>(connections));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000.0));
  WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back(
        [&, c] { stats[static_cast<size_t>(c)] = RunTxnConn(endpoint, c, deadline); });
  }
  for (auto& t : threads) {
    t.join();
  }
  const double wall_seconds = wall.ElapsedSeconds();
  server.Stop();

  TxnConnStats total;
  for (const TxnConnStats& s : stats) {
    total.commits += s.commits;
    total.conflicts += s.conflicts;
    total.ops += s.ops;
    total.failures += s.failures;
    total.connect_failed = total.connect_failed || s.connect_failed;
  }
  if (total.connect_failed || total.failures > 0 || total.commits == 0) {
    std::fprintf(stderr, "txn experiment failed (%llu failure(s), %llu commit(s))\n",
                 static_cast<unsigned long long>(total.failures),
                 static_cast<unsigned long long>(total.commits));
    std::exit(1);
  }
  const double commits_per_sec = static_cast<double>(total.commits) / wall_seconds;
  std::printf("\n=== txn: %d connection(s), %.1fs => %.0f commits/sec "
              "(%llu commits, %llu conflicts, %llu committed ops) ===\n",
              connections, wall_seconds, commits_per_sec,
              static_cast<unsigned long long>(total.commits),
              static_cast<unsigned long long>(total.conflicts),
              static_cast<unsigned long long>(total.ops));

  // Recovery cost vs journal length, from the journal this very load wrote:
  // replay the longest prefix ending at 25% / 50% / 100% of its records.
  std::string bytes;
  {
    std::ifstream in(journal, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
  }
  const WalScan scan = ScanWalBytes(bytes);
  if (scan.records.empty()) {
    std::fprintf(stderr, "txn experiment produced an empty journal\n");
    std::exit(1);
  }

  json.Key("txn").BeginObject();
  json.Field("connections", static_cast<uint64_t>(connections));
  json.Field("wall_seconds", wall_seconds);
  json.Field("commits", total.commits);
  json.Field("conflicts", total.conflicts);
  json.Field("committed_ops", total.ops);
  json.Field("commits_per_sec", commits_per_sec);
  json.Field("committed_ops_per_sec", static_cast<double>(total.ops) / wall_seconds);
  json.Field("conflict_pct",
             static_cast<double>(total.conflicts) /
                 static_cast<double>(total.commits + total.conflicts) * 100.0);
  json.Field("journal_bytes", static_cast<uint64_t>(bytes.size()));
  json.Field("journal_records", static_cast<uint64_t>(scan.records.size()));
  json.Key("recovery").BeginArray();
  for (const double frac : {0.25, 0.5, 1.0}) {
    const size_t idx =
        std::min(scan.records.size() - 1,
                 static_cast<size_t>(static_cast<double>(scan.records.size()) * frac) == 0
                     ? 0
                     : static_cast<size_t>(static_cast<double>(scan.records.size()) * frac) - 1);
    const std::string_view prefix(bytes.data(), scan.records[idx].end_offset);
    AtomFs replay;
    WallTimer timer;
    const WalRecoveryStats rstats = RecoverWalBytes(prefix, replay);
    const double ms = static_cast<double>(timer.ElapsedNanos()) / 1e6;
    std::printf("recovery %3.0f%%: %8llu bytes, %6llu unit(s), %6llu op(s) in %.2f ms\n",
                frac * 100.0, static_cast<unsigned long long>(prefix.size()),
                static_cast<unsigned long long>(rstats.committed),
                static_cast<unsigned long long>(rstats.applied_ops), ms);
    json.BeginObject();
    json.Field("journal_fraction", frac);
    json.Field("bytes", static_cast<uint64_t>(prefix.size()));
    json.Field("committed_units", rstats.committed);
    json.Field("replayed_ops", rstats.applied_ops);
    json.Field("recover_ms", ms);
    json.EndObject();
  }
  json.EndArray();

  // The same curve under checkpointing + compaction: re-journal the first k
  // committed units through a fresh TxnManager that checkpoints every 64 KiB
  // of WAL, then time full journal recovery (newest checkpoint + suffix,
  // RecoverJournal). This is the compaction claim in numbers: recovery cost
  // tracks the checkpoint interval and the live state's size, not history
  // length, so the 100% point stays flat against the 25% point instead of 4x.
  const std::vector<CommitDescriptor> commit_log = txn.commit_log();
  const std::string rec_path = journal + ".rec";
  auto remove_rec_files = [&rec_path] {
    for (const std::string& p : {rec_path, PrevWalPath(rec_path), CheckpointPath(rec_path),
                                 PrevCheckpointPath(rec_path), TmpCheckpointPath(rec_path)}) {
      std::remove(p.c_str());
    }
  };
  json.Key("recovery_checkpointed").BeginArray();
  for (const double frac : {0.25, 0.5, 1.0}) {
    const size_t units = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(commit_log.size()) * frac));
    remove_rec_files();
    MetricsRegistry rec_metrics;
    uint64_t checkpoints = 0;
    {
      AtomFs rec_inner;
      TxnManager::Options ropt;
      ropt.inner = &rec_inner;
      ropt.wal_path = rec_path;
      ropt.metrics = &rec_metrics;
      ropt.checkpoint_bytes = 64 << 10;
      TxnManager rec(ropt);
      bool ok = true;
      for (size_t u = 0; u < units && ok; ++u) {
        auto id = rec.Begin();
        ok = id.ok();
        for (const OpCall& op : commit_log[u].ops) {
          if (!ok) {
            break;
          }
          ok = rec.Apply(*id, op).status.ok();
        }
        ok = ok && rec.Commit(*id).ok();
      }
      if (!ok) {
        std::fprintf(stderr, "checkpointed re-journal failed\n");
        std::exit(1);
      }
      checkpoints = rec.checkpoints_taken();
    }
    const MetricsSnapshot rsnap = rec_metrics.Snapshot();
    const HistogramSnapshot* ckpt_ms = rsnap.FindHistogram("journal.checkpoint.ms");
    const double checkpoint_ms_total =
        ckpt_ms != nullptr ? ckpt_ms->Mean() * static_cast<double>(ckpt_ms->count) : 0.0;
    uint64_t live_wal_bytes = 0;
    {
      std::ifstream in(rec_path, std::ios::binary | std::ios::ate);
      live_wal_bytes = in.good() ? static_cast<uint64_t>(in.tellg()) : 0;
    }
    AtomFs replay;
    WallTimer timer;
    auto rstats = RecoverJournal(rec_path, replay);
    const double ms = static_cast<double>(timer.ElapsedNanos()) / 1e6;
    if (!rstats.ok()) {
      std::fprintf(stderr, "checkpointed recovery failed\n");
      std::exit(1);
    }
    std::printf("recovery+ckpt %3.0f%%: %6llu unit(s), %3llu checkpoint(s) "
                "(%.2f ms writing them), %6llu ckpt op(s) + %6llu WAL op(s), "
                "%8llu live WAL byte(s), recovered in %.2f ms\n",
                frac * 100.0, static_cast<unsigned long long>(units),
                static_cast<unsigned long long>(checkpoints), checkpoint_ms_total,
                static_cast<unsigned long long>(rstats->checkpoint_ops),
                static_cast<unsigned long long>(rstats->wal.applied_ops),
                static_cast<unsigned long long>(live_wal_bytes), ms);
    json.BeginObject();
    json.Field("history_fraction", frac);
    json.Field("committed_units", static_cast<uint64_t>(units));
    json.Field("checkpoints", checkpoints);
    json.Field("checkpoint_ms_total", checkpoint_ms_total);
    json.Field("checkpoint_bytes",
               rsnap.CounterValue("journal.checkpoint.bytes"));
    json.Field("checkpoint_ops", rstats->checkpoint_ops);
    json.Field("wal_replayed_ops", rstats->wal.applied_ops);
    json.Field("live_wal_bytes", live_wal_bytes);
    json.Field("recover_ms", ms);
    json.EndObject();
  }
  json.EndArray();
  remove_rec_files();
  json.EndObject();
  std::remove(journal.c_str());
}

// --- pipeline mode -----------------------------------------------------------

struct PipeConnStats {
  uint64_t ops = 0;     // completed (replied-to) requests
  uint64_t non_ok = 0;  // replies that carried an error status
  bool connect_failed = false;
};

// One connection's closed loop: submit `depth` requests, flush, wait for all
// replies, repeat until the deadline. Each connection works its own file so
// the passes measure the serving layer, not directory contention, and the
// dir name carries the pass depth so back-to-back passes never collide.
PipeConnStats RunPipelineConn(const std::string& endpoint, int depth, int conn_index,
                              std::chrono::steady_clock::time_point deadline) {
  PipeConnStats st;
  auto client = AtomFsClient::Connect(endpoint);
  if (!client.ok()) {
    st.connect_failed = true;
    return st;
  }
  AtomFsClient& c = **client;
  const std::string dir =
      "/pipebench_d" + std::to_string(depth) + "_c" + std::to_string(conn_index);
  const std::string file = dir + "/f";
  if (!c.Mkdir(dir).ok() || !c.Mknod(file).ok() ||
      !WriteString(c, file, "pipelined payload").ok()) {
    ++st.non_ok;
    return st;
  }

  std::vector<std::byte> blob(64);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::byte>(i);
  }
  ClientSession& session = c.session();
  std::vector<ClientSession::Future> futures;
  futures.reserve(static_cast<size_t>(depth));
  uint64_t seq = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    futures.clear();
    for (int k = 0; k < depth; ++k, ++seq) {
      WireRequest req;
      req.path_a = file;
      switch (seq % 3) {
        case 0:
          req.op = WireOp::kStat;
          break;
        case 1:
          req.op = WireOp::kRead;
          req.offset = 0;
          req.count = 16;
          break;
        default:
          req.op = WireOp::kWrite;
          req.offset = 0;
          req.data = blob;
          break;
      }
      futures.push_back(session.Submit(req));
    }
    if (!session.Flush().ok()) {
      st.non_ok += static_cast<uint64_t>(depth);
      break;
    }
    for (ClientSession::Future& f : futures) {
      ++st.ops;
      if (!f.Wait().ok()) {
        ++st.non_ok;
      }
    }
  }
  return st;
}

struct PipelinePass {
  int depth = 0;
  double wall_seconds = 0;
  uint64_t total_ops = 0;
  uint64_t non_ok = 0;
  uint64_t min_conn_ops = 0;
  uint64_t max_conn_ops = 0;
  double ops_per_sec = 0;
  double fairness_ratio = 0;  // max/min; 0 when a connection finished no op
  bool connect_failures = false;
};

PipelinePass RunPipelinePass(const std::string& endpoint, int connections, int depth,
                             double seconds) {
  PipelinePass pass;
  pass.depth = depth;
  std::vector<PipeConnStats> stats(static_cast<size_t>(connections));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000.0));
  WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      stats[static_cast<size_t>(c)] = RunPipelineConn(endpoint, depth, c, deadline);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  pass.wall_seconds = wall.ElapsedSeconds();
  for (int c = 0; c < connections; ++c) {
    const PipeConnStats& s = stats[static_cast<size_t>(c)];
    pass.total_ops += s.ops;
    pass.non_ok += s.non_ok;
    pass.connect_failures = pass.connect_failures || s.connect_failed;
    pass.min_conn_ops = c == 0 ? s.ops : std::min(pass.min_conn_ops, s.ops);
    pass.max_conn_ops = std::max(pass.max_conn_ops, s.ops);
  }
  pass.ops_per_sec = static_cast<double>(pass.total_ops) / pass.wall_seconds;
  if (pass.min_conn_ops > 0) {
    pass.fairness_ratio =
        static_cast<double>(pass.max_conn_ops) / static_cast<double>(pass.min_conn_ops);
  }
  return pass;
}

void JsonPipelinePass(JsonWriter& json, const char* key, const PipelinePass& p) {
  json.Key(key).BeginObject();
  json.Field("pipeline", static_cast<uint64_t>(p.depth));
  json.Field("wall_seconds", p.wall_seconds);
  json.Field("total_ops", p.total_ops);
  json.Field("non_ok_replies", p.non_ok);
  json.Field("ops_per_sec", p.ops_per_sec);
  json.Field("min_conn_ops", p.min_conn_ops);
  json.Field("max_conn_ops", p.max_conn_ops);
  json.Field("fairness_ratio", p.fairness_ratio);
  json.EndObject();
}

int RunPipelineMode(int connections, int pipeline, double seconds, const std::string& connect,
                    const std::string& backend, bool with_monitor, const std::string& json_path,
                    bool check, double fairness_limit) {
  // Either point at a running daemon or stand a server up in-process.
  std::string endpoint = connect;
  MetricsRegistry registry;
  std::unique_ptr<TracingObserver> tracer;
  std::unique_ptr<CrlhMonitor> monitor;
  std::unique_ptr<TeeObserver> tee;
  std::unique_ptr<FileSystem> fs;
  std::unique_ptr<AtomFsServer> server;
  std::string sock_path;
  if (endpoint.empty()) {
    FsObserver* observer = nullptr;
    if (BackendObservable(backend)) {
      tracer = std::make_unique<TracingObserver>(&registry, /*ring=*/nullptr);
      observer = tracer.get();
      if (with_monitor) {
        CrlhMonitor::Options mopts;
        mopts.obs = tracer.get();
        monitor = std::make_unique<CrlhMonitor>(mopts);
        tee = std::make_unique<TeeObserver>(monitor.get(), tracer.get());
        observer = tee.get();
      }
    }
    fs = MakeBackend(backend, observer);
    sock_path = "/tmp/atomfs_pipebench_" + std::to_string(getpid()) + ".sock";
    ServerOptions options;
    options.unix_path = sock_path;
    options.metrics = &registry;
    server = std::make_unique<AtomFsServer>(fs.get(), options);
    if (!server->Start().ok()) {
      std::fprintf(stderr, "cannot start pipeline-mode server\n");
      return 1;
    }
    endpoint = "unix:" + sock_path;
  }

  std::printf("pipeline mode: %d connection(s), depth %d, %.1fs per pass, endpoint %s\n",
              connections, pipeline, seconds, endpoint.c_str());
  const PipelinePass unpipelined = RunPipelinePass(endpoint, connections, 1, seconds);
  const PipelinePass pipelined = pipeline > 1
                                     ? RunPipelinePass(endpoint, connections, pipeline, seconds)
                                     : unpipelined;
  const double speedup =
      unpipelined.ops_per_sec > 0 ? pipelined.ops_per_sec / unpipelined.ops_per_sec : 0;

  auto print_pass = [](const char* label, const PipelinePass& p) {
    std::printf("%-12s depth=%-3d %8llu ops in %.2fs => %9.0f ops/sec  per-conn min=%llu "
                "max=%llu fairness=%.2fx non_ok=%llu\n",
                label, p.depth, static_cast<unsigned long long>(p.total_ops), p.wall_seconds,
                p.ops_per_sec, static_cast<unsigned long long>(p.min_conn_ops),
                static_cast<unsigned long long>(p.max_conn_ops), p.fairness_ratio,
                static_cast<unsigned long long>(p.non_ok));
  };
  print_pass("unpipelined", unpipelined);
  print_pass("pipelined", pipelined);
  std::printf("pipelining speedup: %.2fx\n", speedup);

  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", "server_pipeline");
  json.Field("endpoint", endpoint);
  json.Field("connections", static_cast<uint64_t>(connections));
  json.Field("pipeline", static_cast<uint64_t>(pipeline));
  json.Field("seconds_per_pass", seconds);
  JsonPipelinePass(json, "unpipelined", unpipelined);
  JsonPipelinePass(json, "pipelined", pipelined);
  json.Field("speedup", speedup);
  json.EndObject();
  if (!json.WriteFile(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  int rc = 0;
  if (check) {
    if (unpipelined.connect_failures || pipelined.connect_failures) {
      std::fprintf(stderr, "CHECK FAILED: connection failures\n");
      rc = 1;
    }
    if (unpipelined.non_ok + pipelined.non_ok > 0) {
      std::fprintf(stderr, "CHECK FAILED: %llu non-OK repl(y/ies)\n",
                   static_cast<unsigned long long>(unpipelined.non_ok + pipelined.non_ok));
      rc = 1;
    }
    if (pipelined.fairness_ratio > fairness_limit || pipelined.fairness_ratio == 0.0) {
      std::fprintf(stderr, "CHECK FAILED: fairness ratio %.2f (min=%llu max=%llu)\n",
                   pipelined.fairness_ratio,
                   static_cast<unsigned long long>(pipelined.min_conn_ops),
                   static_cast<unsigned long long>(pipelined.max_conn_ops));
      rc = 1;
    }
  }

  if (server) {
    server->Stop();
  }
  if (monitor) {
    if (auto* atom = dynamic_cast<AtomFs*>(fs.get()); atom != nullptr) {
      monitor->CheckQuiescent(atom->SnapshotSpec());
    }
    if (!monitor->ok()) {
      std::fprintf(stderr, "CRL-H VIOLATIONS under pipelined load:\n");
      for (const auto& v : monitor->violations()) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
      return 1;
    }
    std::printf("monitor: every op linearizable (%llu helped)\n",
                static_cast<unsigned long long>(monitor->helped_ops()));
  }
  return rc;
}

}  // namespace
}  // namespace atomfs

int main(int argc, char** argv) {
  using namespace atomfs;

  int clients = 4;
  uint64_t ops_per_client = 800;
  std::string profile_arg = "both";
  std::string backend = "atomfs";
  std::string transport = "unix";
  std::string json_path = "BENCH_server.json";
  bool with_monitor = false;
  int connections = 0;
  int pipeline = 0;
  double seconds = 2.0;
  std::string connect;
  bool check = false;
  bool rcu_smoke = false;
  double fairness_limit = 10.0;

  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name) { return std::strcmp(argv[i], name) == 0; };
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg("--clients")) {
      clients = std::atoi(next());
    } else if (arg("--connections")) {
      connections = std::atoi(next());
    } else if (arg("--pipeline")) {
      pipeline = std::atoi(next());
    } else if (arg("--seconds")) {
      seconds = std::atof(next());
    } else if (arg("--connect")) {
      connect = next();
    } else if (arg("--check")) {
      check = true;
    } else if (arg("--rcu-smoke")) {
      rcu_smoke = true;
    } else if (arg("--fairness-limit")) {
      fairness_limit = std::atof(next());
    } else if (arg("--ops")) {
      ops_per_client = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg("--profile")) {
      profile_arg = next();
    } else if (arg("--backend")) {
      backend = next();
    } else if (arg("--transport")) {
      transport = next();
    } else if (arg("--monitor")) {
      with_monitor = true;
    } else if (arg("--json")) {
      // PATH is optional: bare --json (or --json followed by another flag)
      // keeps the default output name.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        json_path = next();
      }
    } else {
      std::fprintf(stderr, "unknown option %s (see header comment for usage)\n", argv[i]);
      return 2;
    }
  }
  if (MakeBackend(backend, nullptr) == nullptr) {
    std::fprintf(stderr, "unknown backend %s\n", backend.c_str());
    return 2;
  }

  // --rcu-smoke: the tier-1 gate. A short rcu-walk paired-slice run; exits
  // nonzero unless the optimistic path engaged and every optimistic read was
  // validated. No JSON output — this mode is a check, not a measurement.
  if (rcu_smoke) {
    const RcuWalkOutcome rw = RunRcuWalkExperiment(FilebenchProfile::Fileserver(), transport,
                                                   clients, ops_per_client, /*pairs=*/3);
    PrintRcuWalk(rw);
    return RcuSmokeGate(rw);
  }

  // --connections / --pipeline select the pipelined-serving mode; the
  // filebench profile machinery below is bypassed entirely.
  if (connections > 0 || pipeline > 0) {
    if (connections <= 0) {
      connections = 4;
    }
    if (pipeline <= 0) {
      pipeline = 8;
    }
    return RunPipelineMode(connections, pipeline, seconds, connect, backend, with_monitor,
                           json_path, check, fairness_limit);
  }

  std::vector<FilebenchProfile> profiles;
  if (profile_arg == "fileserver" || profile_arg == "both") {
    profiles.push_back(FilebenchProfile::Fileserver());
  }
  if (profile_arg == "webproxy" || profile_arg == "both") {
    profiles.push_back(FilebenchProfile::Webproxy());
  }
  if (profiles.empty()) {
    std::fprintf(stderr, "unknown profile %s\n", profile_arg.c_str());
    return 2;
  }

  std::printf("atomfsd throughput: backend=%s transport=%s clients=%d ops/client=%llu\n",
              backend.c_str(), transport.c_str(), clients,
              static_cast<unsigned long long>(ops_per_client));

  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", "server_throughput");
  json.Field("backend", backend);
  json.Field("transport", transport);
  json.Field("clients", clients);
  json.Field("ops_per_client", ops_per_client);
  json.Key("profiles").BeginArray();

  for (const FilebenchProfile& profile : profiles) {
    // The fileserver profile doubles as the tracing-overhead experiment
    // (see RunOverheadExperiment). The comparison is only meaningful when
    // the two sides differ in nothing but the tracer, so --monitor (which
    // serializes every event on the ghost mutex and runs the invariant
    // checkers) suppresses it rather than billing verification cost to the
    // tracing layer.
    const bool measure_overhead =
        profile.name == "fileserver" && BackendObservable(backend) && !with_monitor;
    double untraced_ops_per_sec = 0;
    ProfileResult r;
    bool have_ghost = false;
    OverheadOutcome ghost;
    constexpr size_t kGhostRingEvents = 1 << 16;
    uint64_t ghost_appended = 0;
    if (measure_overhead) {
      OverheadOutcome outcome =
          RunOverheadExperiment(profile, backend, transport, clients, ops_per_client,
                                /*baseline_traced=*/false, /*ring=*/nullptr,
                                "untraced", "traced");
      r = std::move(outcome.traced);
      untraced_ops_per_sec = outcome.untraced_ops_per_sec;
      PrintProfile(r, clients);
      std::printf(
          "tracing overhead: %.2f%% of single-core throughput = %.0f ns per op "
          "(median paired-slice ratio over %d pairs; untraced %.0f ops/sec)\n",
          outcome.overhead_pct, outcome.overhead_ns_per_op, outcome.pairs, untraced_ops_per_sec);
      // Second instrument, same methodology: what does the flight-recorder
      // ring add on top of a server that is already traced? Both sides run
      // a TracingObserver; side B streams every event into the ghost ring.
      TraceRing ring(kGhostRingEvents);
      ghost = RunOverheadExperiment(profile, backend, transport, clients, ops_per_client,
                                    /*baseline_traced=*/true, &ring, "recorder-off",
                                    "recorder-on");
      have_ghost = true;
      ghost_appended = ring.total_appended();
      std::printf(
          "flight-recorder overhead: %.2f%% = %.0f ns per op on top of tracing "
          "(median over %d pairs; %llu event(s) recorded into a %zu-event ring)\n",
          ghost.overhead_pct, ghost.overhead_ns_per_op, ghost.pairs,
          static_cast<unsigned long long>(ghost_appended), kGhostRingEvents);
    } else {
      r = RunProfile(profile, backend, transport, clients, ops_per_client,
                     /*traced=*/true, with_monitor);
      PrintProfile(r, clients);
      if (profile.name == "fileserver" && with_monitor) {
        std::printf(
            "tracing overhead: not measured under --monitor (verification cost dominates)\n");
      }
    }
    JsonProfile(json, r, untraced_ops_per_sec, have_ghost ? &ghost : nullptr,
                kGhostRingEvents, ghost_appended);
  }

  json.EndArray();

  // The rcu_walk block: optimistic-vs-locked read-path throughput on the
  // fileserver profile (see RunRcuWalkExperiment). Like the tracing
  // experiment it needs both sides identical but for the variable under
  // test, so --monitor suppresses it; it is also atomfs-specific.
  if (backend == "atomfs" && !with_monitor &&
      (profile_arg == "fileserver" || profile_arg == "both")) {
    const RcuWalkOutcome rw = RunRcuWalkExperiment(FilebenchProfile::Fileserver(), transport,
                                                   clients, ops_per_client, /*pairs=*/9);
    PrintRcuWalk(rw);
    JsonRcuWalk(json, rw);
  }

  // The sharding block: multi-tenant fileserver scaling on ShardedFs at
  // shard counts 1/2/4 with a <5% cross-shard rename mix (see
  // RunShardingExperiment). Unmonitored by construction — the monitored
  // cross-shard protocol is covered by shard_test and tools/shard_smoke.sh.
  if (backend == "atomfs" && !with_monitor &&
      (profile_arg == "fileserver" || profile_arg == "both")) {
    const ShardingOutcome sh =
        RunShardingExperiment(transport, clients, ops_per_client, {2, 4}, /*pairs=*/5);
    JsonSharding(json, sh, clients);
  }

  // The txn block: commit throughput through a journaled TxnManager over the
  // wire, plus recovery time vs journal length (see RunTxnExperiment).
  RunTxnExperiment(json, clients, /*seconds=*/1.0);

  json.EndObject();
  if (!json.WriteFile(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
