// bench_server_throughput: closed-loop multi-client load generator for the
// atomfsd serving layer.
//
// For each requested Filebench profile it starts an in-process AtomFsServer
// (fresh backend each time), connects N clients — one connection and one
// thread per client — and drives the profile's op mix through AtomFsClient,
// i.e. over the real wire protocol. Every FileSystem call is timed
// client-side; the report gives per-op count, mean and exact p50/p99/p999
// latency plus aggregate ops/sec, and the same numbers are written to a
// machine-readable JSON file (default BENCH_server.json).
//
//   bench_server_throughput [--clients N]     concurrent clients (default 4)
//                           [--ops N]         filebench ops per client (default 800)
//                           [--profile fileserver|webproxy|both]   (default both)
//                           [--backend atomfs|biglock|retryfs|naive]
//                           [--transport unix|tcp]                 (default unix)
//                           [--json PATH]     output file (default BENCH_server.json)

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/biglock/big_lock_fs.h"
#include "src/client/client.h"
#include "src/core/atom_fs.h"
#include "src/naive/naive_fs.h"
#include "src/retryfs/retry_fs.h"
#include "src/server/server.h"
#include "src/util/json.h"
#include "src/util/stats.h"
#include "src/workload/filebench.h"

namespace atomfs {
namespace {

// The path-based ops a filebench worker can issue, for per-op bucketing.
enum OpKind : int {
  kOpMkdir,
  kOpMknod,
  kOpRmdir,
  kOpUnlink,
  kOpRename,
  kOpExchange,
  kOpStat,
  kOpReadDir,
  kOpRead,
  kOpWrite,
  kOpTruncate,
  kOpKindCount,
};

const char* OpKindName(int k) {
  static const char* kNames[kOpKindCount] = {"mkdir", "mknod",   "rmdir", "unlink",
                                             "rename", "exchange", "stat",  "readdir",
                                             "read",   "write",    "truncate"};
  return kNames[k];
}

// FileSystem decorator that timestamps every call into per-kind sample
// vectors. One instance per client thread, so recording is contention-free
// and percentiles are exact.
class LatencyRecordingFs : public FileSystem {
 public:
  explicit LatencyRecordingFs(FileSystem* inner) : inner_(inner) {}

  std::vector<std::vector<uint64_t>>& samples() { return samples_; }

  // Defined before its uses: auto return deduction needs the body in scope.
  template <typename Fn>
  auto Timed(int kind, Fn&& fn) {
    WallTimer timer;
    auto result = fn();
    samples_[static_cast<size_t>(kind)].push_back(timer.ElapsedNanos());
    return result;
  }

  Status Mkdir(const Path& p) override { return Timed(kOpMkdir, [&] { return inner_->Mkdir(p); }); }
  Status Mknod(const Path& p) override { return Timed(kOpMknod, [&] { return inner_->Mknod(p); }); }
  Status Rmdir(const Path& p) override { return Timed(kOpRmdir, [&] { return inner_->Rmdir(p); }); }
  Status Unlink(const Path& p) override {
    return Timed(kOpUnlink, [&] { return inner_->Unlink(p); });
  }
  Status Rename(const Path& s, const Path& d) override {
    return Timed(kOpRename, [&] { return inner_->Rename(s, d); });
  }
  Status Exchange(const Path& a, const Path& b) override {
    return Timed(kOpExchange, [&] { return inner_->Exchange(a, b); });
  }
  Result<Attr> Stat(const Path& p) override {
    return Timed(kOpStat, [&] { return inner_->Stat(p); });
  }
  Result<std::vector<DirEntry>> ReadDir(const Path& p) override {
    return Timed(kOpReadDir, [&] { return inner_->ReadDir(p); });
  }
  Result<size_t> Read(const Path& p, uint64_t off, std::span<std::byte> out) override {
    return Timed(kOpRead, [&] { return inner_->Read(p, off, out); });
  }
  Result<size_t> Write(const Path& p, uint64_t off, std::span<const std::byte> data) override {
    return Timed(kOpWrite, [&] { return inner_->Write(p, off, data); });
  }
  Status Truncate(const Path& p, uint64_t size) override {
    return Timed(kOpTruncate, [&] { return inner_->Truncate(p, size); });
  }

 private:
  FileSystem* inner_;
  std::vector<std::vector<uint64_t>> samples_{kOpKindCount};
};

std::unique_ptr<FileSystem> MakeBackend(const std::string& name) {
  if (name == "atomfs") {
    return std::make_unique<AtomFs>();
  }
  if (name == "biglock") {
    return std::make_unique<BigLockFs>();
  }
  if (name == "retryfs") {
    return std::make_unique<RetryFs>();
  }
  if (name == "naive") {
    return std::make_unique<NaiveFs>();
  }
  return nullptr;
}

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const size_t idx = std::min(sorted.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

struct ProfileResult {
  std::string name;
  double wall_seconds = 0;
  uint64_t fs_calls = 0;
  uint64_t filebench_ops = 0;
  uint64_t worker_failures = 0;
  // Per op kind: merged, sorted samples.
  std::vector<std::vector<uint64_t>> samples{kOpKindCount};
  WireServerStats server;
};

ProfileResult RunProfile(const FilebenchProfile& profile, const std::string& backend,
                         const std::string& transport, int clients, uint64_t ops_per_client) {
  ProfileResult result;
  result.name = profile.name;

  std::unique_ptr<FileSystem> fs = MakeBackend(backend);
  const std::string sock_path =
      "/tmp/atomfs_bench_" + std::to_string(getpid()) + "_" + profile.name + ".sock";
  ServerOptions options;
  options.workers = clients;
  if (transport == "tcp") {
    options.tcp_listen = true;  // ephemeral port
  } else {
    options.unix_path = sock_path;
  }
  AtomFsServer server(fs.get(), options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "cannot start server for %s\n", profile.name.c_str());
    std::exit(1);
  }
  auto connect = [&]() {
    return transport == "tcp" ? AtomFsClient::ConnectTcp(server.BoundTcpPort())
                              : AtomFsClient::ConnectUnix(sock_path);
  };

  // Populate directly on the backend — setup is not what we measure.
  FilebenchSetup(*fs, profile, /*seed=*/7);

  std::vector<std::unique_ptr<AtomFsClient>> conns;
  std::vector<std::unique_ptr<LatencyRecordingFs>> recorders;
  for (int c = 0; c < clients; ++c) {
    auto conn = connect();
    if (!conn.ok()) {
      std::fprintf(stderr, "client %d cannot connect\n", c);
      std::exit(1);
    }
    conns.push_back(std::move(*conn));
    recorders.push_back(std::make_unique<LatencyRecordingFs>(conns.back().get()));
  }

  std::vector<WorkerStats> worker_stats(static_cast<size_t>(clients));
  WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      worker_stats[static_cast<size_t>(c)] =
          FilebenchWorker(*recorders[static_cast<size_t>(c)], profile,
                          /*seed=*/1000 + static_cast<uint64_t>(c), ops_per_client);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.wall_seconds = wall.ElapsedSeconds();

  for (int c = 0; c < clients; ++c) {
    result.filebench_ops += worker_stats[static_cast<size_t>(c)].ops;
    result.worker_failures += worker_stats[static_cast<size_t>(c)].failures;
    auto& per_client = recorders[static_cast<size_t>(c)]->samples();
    for (int k = 0; k < kOpKindCount; ++k) {
      auto& merged = result.samples[static_cast<size_t>(k)];
      merged.insert(merged.end(), per_client[static_cast<size_t>(k)].begin(),
                    per_client[static_cast<size_t>(k)].end());
      result.fs_calls += per_client[static_cast<size_t>(k)].size();
    }
  }
  for (auto& s : result.samples) {
    std::sort(s.begin(), s.end());
  }
  result.server = server.StatsSnapshot();
  server.Stop();
  return result;
}

void PrintProfile(const ProfileResult& r, int clients) {
  std::printf("\n=== %s: %d client(s), %llu wire calls in %s s => %.0f ops/sec ===\n",
              r.name.c_str(), clients, static_cast<unsigned long long>(r.fs_calls),
              FormatSeconds(r.wall_seconds).c_str(),
              static_cast<double>(r.fs_calls) / r.wall_seconds);
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "op", "count", "mean_us", "p50_us", "p99_us",
              "p999_us");
  for (int k = 0; k < kOpKindCount; ++k) {
    const auto& s = r.samples[static_cast<size_t>(k)];
    if (s.empty()) {
      continue;
    }
    double sum = 0;
    for (uint64_t v : s) {
      sum += static_cast<double>(v);
    }
    auto us = [](uint64_t ns) { return static_cast<double>(ns) / 1000.0; };
    std::printf("%-10s %10zu %10.1f %10.1f %10.1f %10.1f\n", OpKindName(k), s.size(),
                sum / static_cast<double>(s.size()) / 1000.0,
                us(Percentile(const_cast<std::vector<uint64_t>&>(s), 0.50)),
                us(Percentile(const_cast<std::vector<uint64_t>&>(s), 0.99)),
                us(Percentile(const_cast<std::vector<uint64_t>&>(s), 0.999)));
  }
  std::printf("server: %llu connection(s), %llu protocol error(s)\n",
              static_cast<unsigned long long>(r.server.connections_accepted),
              static_cast<unsigned long long>(r.server.protocol_errors));
}

}  // namespace
}  // namespace atomfs

int main(int argc, char** argv) {
  using namespace atomfs;

  int clients = 4;
  uint64_t ops_per_client = 800;
  std::string profile_arg = "both";
  std::string backend = "atomfs";
  std::string transport = "unix";
  std::string json_path = "BENCH_server.json";

  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* name) { return std::strcmp(argv[i], name) == 0; };
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg("--clients")) {
      clients = std::atoi(next());
    } else if (arg("--ops")) {
      ops_per_client = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg("--profile")) {
      profile_arg = next();
    } else if (arg("--backend")) {
      backend = next();
    } else if (arg("--transport")) {
      transport = next();
    } else if (arg("--json")) {
      // PATH is optional: bare --json (or --json followed by another flag)
      // keeps the default output name.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        json_path = next();
      }
    } else {
      std::fprintf(stderr, "unknown option %s (see header comment for usage)\n", argv[i]);
      return 2;
    }
  }
  if (MakeBackend(backend) == nullptr) {
    std::fprintf(stderr, "unknown backend %s\n", backend.c_str());
    return 2;
  }

  std::vector<FilebenchProfile> profiles;
  if (profile_arg == "fileserver" || profile_arg == "both") {
    profiles.push_back(FilebenchProfile::Fileserver());
  }
  if (profile_arg == "webproxy" || profile_arg == "both") {
    profiles.push_back(FilebenchProfile::Webproxy());
  }
  if (profiles.empty()) {
    std::fprintf(stderr, "unknown profile %s\n", profile_arg.c_str());
    return 2;
  }

  std::printf("atomfsd throughput: backend=%s transport=%s clients=%d ops/client=%llu\n",
              backend.c_str(), transport.c_str(), clients,
              static_cast<unsigned long long>(ops_per_client));

  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", "server_throughput");
  json.Field("backend", backend);
  json.Field("transport", transport);
  json.Field("clients", clients);
  json.Field("ops_per_client", ops_per_client);
  json.Key("profiles").BeginArray();

  for (const FilebenchProfile& profile : profiles) {
    ProfileResult r = RunProfile(profile, backend, transport, clients, ops_per_client);
    PrintProfile(r, clients);

    json.BeginObject();
    json.Field("name", r.name);
    json.Field("wall_seconds", r.wall_seconds);
    json.Field("fs_calls", r.fs_calls);
    json.Field("filebench_ops", r.filebench_ops);
    json.Field("worker_failures", r.worker_failures);
    json.Field("ops_per_sec", static_cast<double>(r.fs_calls) / r.wall_seconds);
    json.Field("server_connections", r.server.connections_accepted);
    json.Field("server_protocol_errors", r.server.protocol_errors);
    json.Key("per_op").BeginArray();
    for (int k = 0; k < kOpKindCount; ++k) {
      auto& s = r.samples[static_cast<size_t>(k)];
      if (s.empty()) {
        continue;
      }
      double sum = 0;
      for (uint64_t v : s) {
        sum += static_cast<double>(v);
      }
      json.BeginObject();
      json.Field("op", OpKindName(k));
      json.Field("count", static_cast<uint64_t>(s.size()));
      json.Field("mean_ns", sum / static_cast<double>(s.size()));
      json.Field("p50_ns", Percentile(s, 0.50));
      json.Field("p99_ns", Percentile(s, 0.99));
      json.Field("p999_ns", Percentile(s, 0.999));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  json.EndArray();
  json.EndObject();
  if (!json.WriteFile(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
