// Micro-benchmarks: single-operation latency of each file system variant
// (google-benchmark). Useful for spotting constant-factor regressions in the
// data structures (hash-table directories, block store, lock coupling).

#include <benchmark/benchmark.h>

#include <memory>

#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/naive/naive_fs.h"
#include "src/retryfs/retry_fs.h"

namespace atomfs {
namespace {

enum class Which { kAtom, kBigLock, kNaive, kRetry };

std::unique_ptr<FileSystem> MakeFs(Which which) {
  switch (which) {
    case Which::kAtom:
      return std::make_unique<AtomFs>();
    case Which::kBigLock:
      return std::make_unique<BigLockFs>();
    case Which::kNaive:
      return std::make_unique<NaiveFs>();
    case Which::kRetry:
      return std::make_unique<RetryFs>();
  }
  return nullptr;
}

void SetupDeepTree(FileSystem& fs) {
  fs.Mkdir("/a");
  fs.Mkdir("/a/b");
  fs.Mkdir("/a/b/c");
  fs.Mknod("/a/b/c/f");
}

void BM_StatDeep(benchmark::State& state) {
  auto fs = MakeFs(static_cast<Which>(state.range(0)));
  SetupDeepTree(*fs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs->Stat("/a/b/c/f"));
  }
}
BENCHMARK(BM_StatDeep)->DenseRange(0, 3)->ArgNames({"fs"});

void BM_CreateUnlink(benchmark::State& state) {
  auto fs = MakeFs(static_cast<Which>(state.range(0)));
  fs->Mkdir("/d");
  for (auto _ : state) {
    fs->Mknod("/d/f");
    fs->Unlink("/d/f");
  }
}
BENCHMARK(BM_CreateUnlink)->DenseRange(0, 3)->ArgNames({"fs"});

void BM_RenamePingPong(benchmark::State& state) {
  auto fs = MakeFs(static_cast<Which>(state.range(0)));
  fs->Mkdir("/x");
  fs->Mkdir("/y");
  fs->Mknod("/x/f");
  bool at_x = true;
  for (auto _ : state) {
    if (at_x) {
      fs->Rename("/x/f", "/y/f");
    } else {
      fs->Rename("/y/f", "/x/f");
    }
    at_x = !at_x;
  }
}
BENCHMARK(BM_RenamePingPong)->DenseRange(0, 3)->ArgNames({"fs"});

void BM_Write4K(benchmark::State& state) {
  auto fs = MakeFs(static_cast<Which>(state.range(0)));
  fs->Mknod("/f");
  std::vector<std::byte> buf(4096, std::byte{0x11});
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs->Write("/f", off % (1 << 20), std::span<const std::byte>(buf)));
    off += 4096;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Write4K)->DenseRange(0, 3)->ArgNames({"fs"});

void BM_ReadDir64(benchmark::State& state) {
  auto fs = MakeFs(static_cast<Which>(state.range(0)));
  fs->Mkdir("/d");
  for (int i = 0; i < 64; ++i) {
    fs->Mknod("/d/f" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs->ReadDir("/d"));
  }
}
BENCHMARK(BM_ReadDir64)->DenseRange(0, 3)->ArgNames({"fs"});

}  // namespace
}  // namespace atomfs

BENCHMARK_MAIN();
