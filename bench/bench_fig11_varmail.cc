// Figure 11 extension: Varmail scalability (not in the paper's evaluation;
// a third Filebench personality between fileserver's many directories and
// webproxy's two). Same harness and series as Figure 11(a)/(b).

#include "bench/fig11_common.h"

int main() {
  atomfs::RunFig11(atomfs::FilebenchProfile::Varmail());
  return 0;
}
