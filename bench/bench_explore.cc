// Exhaustive schedule exploration summary — the model-checking counterpart
// of the paper's per-figure interleaving arguments. For each small
// concurrent program, EVERY schedule of the real AtomFS code is executed
// and verified by the CRL-H monitor; the table reports how many schedules
// exist, how many needed the helper mechanism, and the verdict. The last
// row removes lock coupling and shows the explorer *discovering* the
// paper's Figure 8 violation automatically.

#include <cstdio>

#include "src/crlh/explore.h"
#include "src/util/stats.h"

namespace atomfs {
namespace {

OpCall Mkdir(std::string_view p) { return OpCall::MkdirOf(*ParsePath(p)); }
OpCall Mknod(std::string_view p) { return OpCall::MknodOf(*ParsePath(p)); }
OpCall Rmdir(std::string_view p) { return OpCall::RmdirOf(*ParsePath(p)); }
OpCall Stat(std::string_view p) { return OpCall::StatOf(*ParsePath(p)); }
OpCall Rename(std::string_view s, std::string_view d) {
  return OpCall::RenameOf(*ParsePath(s), *ParsePath(d));
}
OpCall Exchange(std::string_view a, std::string_view b) {
  return OpCall::ExchangeOf(*ParsePath(a), *ParsePath(b));
}

void Report(const char* name, const ConcurrentProgram& program, bool expect_ok,
            bool check_invariants = true) {
  ExploreOptions options;
  options.max_executions = 100000;
  options.check_invariants = check_invariants;
  WallTimer timer;
  auto stats = ExploreSchedules(program, options);
  const char* verdict = stats.all_ok ? "all linearizable" : "VIOLATION FOUND";
  std::printf("%-28s %10llu %s %10llu %8llu   %-18s %6.1fs %s\n", name,
              static_cast<unsigned long long>(stats.executions),
              stats.exhausted ? "(all)" : "(cap)",
              static_cast<unsigned long long>(stats.schedules_with_helping),
              static_cast<unsigned long long>(stats.max_decision_points), verdict,
              timer.ElapsedSeconds(),
              stats.all_ok == expect_ok ? "" : "  << UNEXPECTED");
}

}  // namespace
}  // namespace atomfs

int main() {
  using namespace atomfs;
  std::printf("Exhaustive schedule exploration (bounded model checking of AtomFS under\n");
  std::printf("the CRL-H monitor; every schedule must pass refinement + invariants)\n\n");
  std::printf("%-28s %10s %5s %10s %8s   %-18s %7s\n", "program", "schedules", "", "w/helping",
              "maxdec", "verdict", "time");

  {
    ConcurrentProgram p;
    p.setup = [](FileSystem& fs) {
      fs.Mkdir("/a");
      fs.Mkdir("/a/b");
    };
    p.threads = {{Mkdir("/a/b/c")}, {Rename("/a", "/e")}};
    Report("fig1: mkdir || rename", p, /*expect_ok=*/true);
  }
  {
    ConcurrentProgram p;
    p.setup = [](FileSystem& fs) {
      fs.Mkdir("/a");
      fs.Mkdir("/d");
    };
    p.threads = {{Mkdir("/a/c")}, {Rmdir("/d")}};
    Report("fig4a: disjoint ins || del", p, true);
  }
  {
    ConcurrentProgram p;
    p.setup = [](FileSystem& fs) {
      fs.Mkdir("/a");
      fs.Mkdir("/a/b");
      fs.Mknod("/a/b/f");
    };
    p.threads = {{Stat("/a/b/f")}, {Rename("/a/b", "/g")}};
    Report("fig4b: stat || rename", p, true);
  }
  {
    ConcurrentProgram p;
    p.setup = [](FileSystem& fs) {
      fs.Mkdir("/a");
      fs.Mkdir("/a/b");
      fs.Mkdir("/a/b/c");
    };
    p.threads = {{Mkdir("/a/b/c/d")}, {Rename("/a", "/i"), Rmdir("/i/b/c")}};
    Report("fig8: ins || rename;del", p, true);
  }
  {
    ConcurrentProgram p;
    p.setup = [](FileSystem& fs) {
      fs.Mkdir("/l");
      fs.Mkdir("/l/s");
      fs.Mkdir("/r");
      fs.Mkdir("/r/s");
    };
    p.threads = {{Mknod("/l/s/x")}, {Mknod("/r/s/y")}, {Exchange("/l", "/r")}};
    // Three threads explode the tree; a 30k-schedule sample is plenty here.
    ExploreOptions capped;
    capped.max_executions = 30000;
    WallTimer timer;
    auto stats = ExploreSchedules(p, capped);
    std::printf("%-28s %10llu %s %10llu %8llu   %-18s %6.1fs\n", "ext: ins || ins || exchange",
                static_cast<unsigned long long>(stats.executions),
                stats.exhausted ? "(all)" : "(cap)",
                static_cast<unsigned long long>(stats.schedules_with_helping),
                static_cast<unsigned long long>(stats.max_decision_points),
                stats.all_ok ? "all linearizable" : "VIOLATION FOUND", timer.ElapsedSeconds());
  }
  {
    // The negative control: same Figure 8 program, lock coupling removed.
    ConcurrentProgram p;
    p.setup = [](FileSystem& fs) {
      fs.Mkdir("/a");
      fs.Mkdir("/a/b");
      fs.Mkdir("/a/b/c");
    };
    p.threads = {{Mkdir("/a/b/c/d")}, {Rename("/a", "/i"), Rmdir("/i/b/c")}};
    p.unsafe_no_coupling = true;
    Report("fig8 WITHOUT coupling", p, /*expect_ok=*/false, /*check_invariants=*/false);
  }

  std::printf("\nThe final row demonstrates the checkers' discrimination: removing lock\n");
  std::printf("coupling (the non-bypassable criterion) makes the explorer find the\n");
  std::printf("paper's Figure 8 non-linearizable schedule automatically.\n");
  return 0;
}
