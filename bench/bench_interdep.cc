// §3.2 generality study reproduction: path inter-dependency across
// rename + op combinations.
//
// The paper instruments nine file systems, runs rename concurrently with
// each of {create, unlink, mkdir, rmdir, stat}, and reports that every
// combination exhibits path inter-dependency (the rename completes while the
// other operation sits inside its critical section with a traversed path the
// rename just broke). Here the schedule is *forced* deterministically on
// AtomFS with the gate observer, and the CRL-H monitor confirms that each
// combination (a) exhibits the inter-dependency, (b) is resolved by the
// helper mechanism, and (c) remains linearizable.

#include <cstdio>
#include <future>
#include <memory>
#include <thread>

#include "src/core/atom_fs.h"
#include "src/crlh/gate.h"
#include "src/crlh/monitor.h"

namespace atomfs {
namespace {

struct ComboResult {
  bool interdependency = false;
  bool helped = false;
  bool clean = false;
};

ComboResult RunCombo(const char* op_name) {
  CrlhMonitor monitor;
  GateObserver gate;
  TeeObserver tee(&monitor, &gate);
  AtomFs::Options opts;
  opts.observer = &tee;
  AtomFs fs(std::move(opts));

  // Tree: /a/b with a victim file /a/b/x and an empty victim dir /a/b/d.
  fs.Mkdir("/a");
  fs.Mkdir("/a/b");
  fs.Mknod("/a/b/x");
  fs.Mkdir("/a/b/d");
  const Inum ino_a = fs.Stat("/a")->ino;

  // The op traverses through /a and parks inside its critical section. A
  // start latch ensures the gate is armed before the traversal begins.
  std::promise<Tid> tid_promise;
  std::promise<void> go;
  std::shared_future<void> go_future = go.get_future();
  std::thread op_thread([&] {
    tid_promise.set_value(CurrentTid());
    go_future.wait();
    const std::string op(op_name);
    if (op == "create") {
      fs.Mknod("/a/b/new");
    } else if (op == "unlink") {
      fs.Unlink("/a/b/x");
    } else if (op == "mkdir") {
      fs.Mkdir("/a/b/new");
    } else if (op == "rmdir") {
      fs.Rmdir("/a/b/d");
    } else {
      fs.Stat("/a/b/x");
    }
  });
  const Tid op_tid = tid_promise.get_future().get();
  gate.Arm(op_tid, GateObserver::Point::kLockReleased, ino_a);
  go.set_value();
  gate.WaitParked(op_tid);

  // rename breaks the op's traversed path and completes first.
  const bool rename_done_during_cs = fs.Rename("/a", "/z").ok() && gate.IsParked(op_tid);
  const uint64_t helped = monitor.helped_ops();

  gate.Open(op_tid);
  op_thread.join();

  ComboResult result;
  result.interdependency = rename_done_during_cs;
  result.helped = helped == 1;
  result.clean = monitor.ok() && monitor.CheckQuiescent(fs.SnapshotSpec());
  return result;
}

}  // namespace
}  // namespace atomfs

int main() {
  using namespace atomfs;
  std::printf("Section 3.2 generality study: rename + op path inter-dependency\n");
  std::printf("(paper: all 5 combinations show the phenomenon on all 9 file systems;\n");
  std::printf(" here: forced deterministically on AtomFS and checked by CRL-H)\n\n");
  std::printf("%-18s%-20s%-12s%-14s\n", "combination", "inter-dependency", "helped",
              "linearizable");
  bool all = true;
  for (const char* op : {"create", "unlink", "mkdir", "rmdir", "stat"}) {
    ComboResult r = RunCombo(op);
    std::printf("rename + %-9s%-20s%-12s%-14s\n", op, r.interdependency ? "yes" : "NO",
                r.helped ? "yes" : "NO", r.clean ? "yes" : "NO");
    all = all && r.interdependency && r.helped && r.clean;
  }
  std::printf("\n%s\n", all ? "All combinations exhibit path inter-dependency and are "
                              "resolved by the helper mechanism."
                            : "UNEXPECTED: some combination failed!");
  return all ? 0 : 1;
}
