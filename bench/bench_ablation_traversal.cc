// Ablation: lock coupling (AtomFS) vs. traversal retry (RetryFS, the Linux
// VFS design of §5.1) vs. big lock, under a rename-heavy workload where the
// two fine-grained designs pay their respective costs: coupling serializes
// on shared path prefixes, retry redoes lookups whenever a rename lands.
//
// Reports throughput on 16 simulated cores across thread counts, plus the
// retry rate of RetryFS.

#include <cstdio>
#include <memory>
#include <string>

#include "src/biglock/big_lock_fs.h"
#include "src/core/atom_fs.h"
#include "src/retryfs/retry_fs.h"
#include "src/sim/executor.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

constexpr uint32_t kCores = 16;
constexpr int kDirs = 32;
constexpr int kFilesPerDir = 32;
constexpr uint64_t kOpsPerThread = 3000;

std::string FileAt(Rng& rng) {
  return "/d" + std::to_string(rng.Below(kDirs)) + "/f" + std::to_string(rng.Below(kFilesPerDir));
}

void Setup(FileSystem& fs) {
  for (int d = 0; d < kDirs; ++d) {
    fs.Mkdir("/d" + std::to_string(d));
    for (int f = 0; f < kFilesPerDir; ++f) {
      fs.Mknod("/d" + std::to_string(d) + "/f" + std::to_string(f));
    }
  }
}

void Worker(FileSystem& fs, uint64_t seed) {
  Rng rng(seed);
  for (uint64_t i = 0; i < kOpsPerThread; ++i) {
    const uint64_t dice = rng.Below(10);
    if (dice < 2) {
      fs.Rename(FileAt(rng), FileAt(rng));  // 20% renames: heavy inter-dependency
    } else if (dice < 4) {
      fs.Mknod(FileAt(rng));
    } else if (dice < 5) {
      fs.Unlink(FileAt(rng));
    } else {
      fs.Stat(FileAt(rng));
    }
  }
}

template <typename MakeFs>
double Throughput(int threads, MakeFs make_fs, uint64_t* retries_out = nullptr) {
  SimExecutor sim(kCores);
  auto fs = make_fs(&sim);
  RunInSim(sim, [&] { Setup(*fs); });
  const uint64_t start = sim.GlobalVirtualNanos();
  for (int t = 0; t < threads; ++t) {
    sim.Spawn([&fs, t] { Worker(*fs, 555 + t); });
  }
  sim.Run();
  const double secs = static_cast<double>(sim.GlobalVirtualNanos() - start) * 1e-9;
  if (retries_out != nullptr) {
    if (auto* retry_fs = dynamic_cast<RetryFs*>(fs.get())) {
      *retries_out = retry_fs->RetryCount();
    }
  }
  return static_cast<double>(kOpsPerThread) * threads / secs;
}

}  // namespace
}  // namespace atomfs

int main() {
  using namespace atomfs;
  std::printf("Ablation: traversal strategy under a rename-heavy mix (20%% renames)\n");
  std::printf("throughput in Mops per virtual second, 16 simulated cores\n\n");
  std::printf("%8s %16s %16s %16s %14s\n", "threads", "lock-coupling", "traversal-retry",
              "big-lock", "retry-rate");
  for (int threads : {1, 2, 4, 8, 16}) {
    const double atom = Throughput(threads, [](Executor* ex) {
      AtomFs::Options o;
      o.executor = ex;
      return std::make_unique<AtomFs>(std::move(o));
    });
    uint64_t retries = 0;
    const double retry = Throughput(
        threads,
        [](Executor* ex) {
          RetryFs::Options o;
          o.executor = ex;
          return std::make_unique<RetryFs>(o);
        },
        &retries);
    const double big = Throughput(threads, [](Executor* ex) {
      BigLockFs::Options o;
      o.executor = ex;
      return std::make_unique<BigLockFs>(o);
    });
    const double total_ops = static_cast<double>(kOpsPerThread) * threads;
    std::printf("%8d %16.2f %16.2f %16.2f %13.1f%%\n", threads, atom * 1e-6, retry * 1e-6,
                big * 1e-6, 100.0 * static_cast<double>(retries) / total_ops);
  }
  std::printf("\nExpected shape: both fine-grained designs scale, big-lock flattens;\n");
  std::printf("retry pays a growing redo rate as rename frequency x threads rises.\n");
  return 0;
}
