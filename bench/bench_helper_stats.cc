// Helper-mechanism characterization: how often does helping actually happen?
//
// The paper motivates the helper mechanism qualitatively; this bench
// quantifies it: random workloads over a small shared namespace run under
// randomized schedules (the adversarial sim scheduler) with the CRL-H
// monitor counting (a) renames/exchanges that helped at least one thread and
// (b) operations that were linearized by a helper, as the thread count and
// the rename fraction vary.

#include <cstdio>

#include "src/crlh/explore.h"
#include "src/util/rand.h"

namespace atomfs {
namespace {

Path RandomPath(Rng& rng) {
  static const char* kNames[] = {"a", "b", "c", "d"};
  Path p;
  const size_t depth = rng.Between(1, 3);
  for (size_t i = 0; i < depth; ++i) {
    p.parts.emplace_back(kNames[rng.Below(4)]);
  }
  return p;
}

ConcurrentProgram MakeProgram(int threads, int ops_per_thread, uint32_t rename_percent,
                              uint64_t seed) {
  ConcurrentProgram program;
  program.setup = [](FileSystem& fs) {
    fs.Mkdir("/a");
    fs.Mkdir("/a/b");
    fs.Mkdir("/c");
    fs.Mknod("/a/b/f");
  };
  Rng rng(seed);
  for (int t = 0; t < threads; ++t) {
    std::vector<OpCall> ops;
    for (int i = 0; i < ops_per_thread; ++i) {
      if (rng.Below(100) < rename_percent) {
        ops.push_back(OpCall::RenameOf(RandomPath(rng), RandomPath(rng)));
      } else {
        switch (rng.Below(4)) {
          case 0:
            ops.push_back(OpCall::MkdirOf(RandomPath(rng)));
            break;
          case 1:
            ops.push_back(OpCall::StatOf(RandomPath(rng)));
            break;
          case 2:
            ops.push_back(OpCall::MknodOf(RandomPath(rng)));
            break;
          default:
            ops.push_back(OpCall::UnlinkOf(RandomPath(rng)));
            break;
        }
      }
    }
    program.threads.push_back(std::move(ops));
  }
  return program;
}

}  // namespace
}  // namespace atomfs

int main() {
  using namespace atomfs;
  constexpr int kOpsPerThread = 8;
  constexpr uint64_t kRuns = 150;

  std::printf("Helper-mechanism frequency under randomized schedules\n");
  std::printf("(%llu random schedules per cell, %d ops/thread, CRL-H verified)\n\n",
              static_cast<unsigned long long>(kRuns), kOpsPerThread);
  std::printf("%8s %10s %18s %18s %10s\n", "threads", "rename%", "helped ops/1k ops",
              "schedules w/help", "verdict");
  // Each cell averages over several independently generated programs so
  // that one unlucky op mix does not dominate.
  constexpr int kProgramsPerCell = 6;
  for (int threads : {2, 3, 4}) {
    for (uint32_t rename_pct : {10u, 30u, 60u}) {
      uint64_t helped_ops = 0;
      uint64_t helping_schedules = 0;
      bool all_ok = true;
      for (int prog = 0; prog < kProgramsPerCell; ++prog) {
        ConcurrentProgram program = MakeProgram(
            threads, kOpsPerThread, rename_pct,
            1000 + threads * 100 + rename_pct + 31 * static_cast<uint64_t>(prog));
        auto stats =
            ExploreRandom(program, kRuns, /*base_seed=*/17 + prog, /*wing_gong=*/false);
        helped_ops += stats.total_helped_ops;
        helping_schedules += stats.schedules_with_helping;
        all_ok = all_ok && stats.all_ok;
      }
      const double runs = static_cast<double>(kRuns) * kProgramsPerCell;
      const double total_ops = runs * threads * kOpsPerThread;
      std::printf("%8d %9u%% %18.1f %17.1f%% %10s\n", threads, rename_pct,
                  1000.0 * static_cast<double>(helped_ops) / total_ops,
                  100.0 * static_cast<double>(helping_schedules) / runs,
                  all_ok ? "clean" : "VIOLATION");
    }
  }
  std::printf("\nHelping rises with both concurrency and rename frequency — the paper's\n");
  std::printf("path inter-dependency is common, not a corner case, on shared namespaces.\n");
  return 0;
}
