// Shared harness for the Figure 11 scalability reproduction: runs a
// Filebench profile on the virtual-time simulator (16 cores, as in the
// paper's testbed) for 1..16 threads over AtomFs, the big-lock AtomFs
// baseline, and the traversal-retry variant, and prints speedup curves.
//
// Speedup(n) = throughput(n threads) / throughput(1 thread), with
// throughput = completed ops / virtual makespan — the same quantity Figure
// 11 plots. ext4 is not reproducible here (in-kernel); RetryFs stands in as
// the "scalable comparator" series and the gap is discussed in
// EXPERIMENTS.md.

#ifndef ATOMFS_BENCH_FIG11_COMMON_H_
#define ATOMFS_BENCH_FIG11_COMMON_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/biglock/big_lock_fs.h"
#include "src/crlh/monitor.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/util/json.h"
#include "src/core/atom_fs.h"
#include "src/retryfs/retry_fs.h"
#include "src/sim/executor.h"
#include "src/vfs/overhead_fs.h"
#include "src/workload/filebench.h"

namespace atomfs {

inline constexpr uint32_t kFig11Cores = 16;
inline constexpr uint64_t kFig11OpsPerThread = 4000;

// Per-operation cost of the VFS + FUSE layers *above* the file system,
// charged outside any FS lock (it parallelizes perfectly). The paper's §7.3
// observes that "the big-lock version of AtomFS still scales when the thread
// number increases to 8" precisely because these VFS-level path lookups are
// concurrent; without this term the big-lock curve would be flat at 1.
inline constexpr uint64_t kFig11VfsCrossingNs = 6000;

// Runs `threads` workers of `profile` on a fresh fs created by `make_fs`
// (which receives the executor); returns throughput in ops per virtual
// second.
inline double RunOneConfig(
    const FilebenchProfile& profile, int threads,
    const std::function<std::unique_ptr<FileSystem>(Executor*)>& make_fs, uint64_t seed) {
  SimExecutor sim(kFig11Cores);
  std::unique_ptr<FileSystem> inner = make_fs(&sim);
  OverheadFs fs(inner.get(), &sim, kFig11VfsCrossingNs);
  RunInSim(sim, [&] { FilebenchSetup(fs, profile, seed); });
  const uint64_t start = sim.GlobalVirtualNanos();
  for (int t = 0; t < threads; ++t) {
    sim.Spawn([&fs, &profile, seed, t] {
      FilebenchWorker(fs, profile, seed * 977 + t, kFig11OpsPerThread);
    });
  }
  sim.Run();
  const double virtual_secs = static_cast<double>(sim.GlobalVirtualNanos() - start) * 1e-9;
  return static_cast<double>(kFig11OpsPerThread) * threads / virtual_secs;
}

inline void RunFig11(const FilebenchProfile& profile) {
  struct Series {
    const char* name;
    std::function<std::unique_ptr<FileSystem>(Executor*)> make;
    double base = 0;
  };
  std::vector<Series> series;
  series.push_back({"AtomFS",
                    [](Executor* ex) {
                      AtomFs::Options o;
                      o.executor = ex;
                      return std::make_unique<AtomFs>(std::move(o));
                    },
                    0});
  series.push_back({"AtomFS-biglock",
                    [](Executor* ex) {
                      BigLockFs::Options o;
                      o.executor = ex;
                      return std::make_unique<BigLockFs>(o);
                    },
                    0});
  series.push_back({"RetryFS",
                    [](Executor* ex) {
                      RetryFs::Options o;
                      o.executor = ex;
                      return std::make_unique<RetryFs>(o);
                    },
                    0});

  std::printf("Figure 11 (%s): speedup vs. 1 thread, %u simulated cores\n", profile.name.c_str(),
              kFig11Cores);
  std::printf("(paper series: AtomFS, AtomFS-biglock, ext4; RetryFS replaces the\n");
  std::printf(" unreproducible in-kernel ext4 series — see EXPERIMENTS.md)\n\n");
  std::printf("%8s", "threads");
  for (auto& s : series) {
    std::printf("%18s", s.name);
  }
  std::printf("\n");

  const std::vector<int> thread_counts = {1, 2, 4, 6, 8, 10, 12, 14, 16};
  std::vector<std::vector<double>> speedups(series.size());
  for (size_t si = 0; si < series.size(); ++si) {
    for (int threads : thread_counts) {
      const double tput = RunOneConfig(profile, threads, series[si].make, 42);
      if (threads == 1) {
        series[si].base = tput;
      }
      speedups[si].push_back(tput / series[si].base);
    }
  }
  for (size_t row = 0; row < thread_counts.size(); ++row) {
    std::printf("%8d", thread_counts[row]);
    for (size_t si = 0; si < series.size(); ++si) {
      std::printf("%18.2f", speedups[si][row]);
    }
    std::printf("\n");
  }
  const size_t last = thread_counts.size() - 1;
  const char* paper_number = profile.name == "fileserver" ? "1.46x"
                             : profile.name == "webproxy" ? "1.16x"
                                                          : "n/a - extension profile";
  std::printf("\nAtomFS vs biglock at 16 threads: %.2fx higher speedup (paper: %s)\n",
              speedups[0][last] / speedups[1][last], paper_number);

  // Machine-readable mirror of the table, for cross-PR perf tracking.
  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", "fig11");
  json.Field("profile", profile.name);
  json.Field("simulated_cores", kFig11Cores);
  json.Field("ops_per_thread", kFig11OpsPerThread);
  json.Key("threads").BeginArray();
  for (int t : thread_counts) {
    json.Value(t);
  }
  json.EndArray();
  json.Key("series").BeginArray();
  for (size_t si = 0; si < series.size(); ++si) {
    json.BeginObject();
    json.Field("name", series[si].name);
    json.Field("base_ops_per_sec", series[si].base);
    json.Key("speedup").BeginArray();
    for (double v : speedups[si]) {
      json.Value(v);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  // Instrumented pass: re-run AtomFS at the widest thread count with the
  // atomtrace lock-coupling profiler (plus the CRL-H runtime for helper
  // counts, with invariant checking and history dialed off so the ghost
  // bookkeeping stays cheap). This runs *after* the speedup matrix above,
  // which stays observer-free — the published speedup numbers are never
  // perturbed by instrumentation.
  MetricsRegistry registry;
  TracingObserver tracer(&registry, /*ring=*/nullptr);
  CrlhMonitor::Options mopts;
  mopts.check_invariants = false;
  mopts.record_history = false;
  mopts.obs = &tracer;
  CrlhMonitor monitor(mopts);
  TeeObserver tee(&monitor, &tracer);
  const int max_threads = thread_counts.back();
  RunOneConfig(profile, max_threads,
               [&tee](Executor* ex) {
                 AtomFs::Options o;
                 o.executor = ex;
                 o.observer = &tee;
                 return std::make_unique<AtomFs>(std::move(o));
               },
               42);
  const MetricsSnapshot snap = registry.Snapshot();

  std::printf("\nlock-coupling profile (AtomFS, %d threads, instrumented pass):\n", max_threads);
  std::printf("%8s %12s %14s %14s\n", "depth", "acquires", "hold_p99_us", "step_p99_us");
  json.Key("lock_profile").BeginObject();
  json.Field("threads", max_threads);
  json.Field("lock_acquires", snap.CounterValue("lock.acquires"));
  json.Key("depths").BeginArray();
  for (unsigned d = 1; d <= kMaxTrackedDepth; ++d) {
    char hold[48];
    char step[48];
    std::snprintf(hold, sizeof(hold), "lock.depth%02u.hold_ns", d);
    std::snprintf(step, sizeof(step), "lock.depth%02u.step_ns", d);
    const HistogramSnapshot* hh = snap.FindHistogram(hold);
    const HistogramSnapshot* hs = snap.FindHistogram(step);
    if (hh == nullptr || hh->count == 0) {
      continue;
    }
    std::printf("%8u %12llu %14.1f %14.1f\n", d, static_cast<unsigned long long>(hh->count),
                static_cast<double>(hh->Percentile(0.99)) / 1000.0,
                hs != nullptr ? static_cast<double>(hs->Percentile(0.99)) / 1000.0 : 0.0);
    json.BeginObject();
    json.Field("depth", static_cast<uint64_t>(d));
    json.Field("hold_count", hh->count);
    json.Field("hold_mean_ns", hh->Mean());
    json.Field("hold_p99_ns", hh->Percentile(0.99));
    if (hs != nullptr && hs->count > 0) {
      json.Field("step_mean_ns", hs->Mean());
      json.Field("step_p99_ns", hs->Percentile(0.99));
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("helpers").BeginObject();
  json.Field("help_events", snap.CounterValue("crlh.help_events"));
  json.Field("helped_ops", snap.CounterValue("crlh.helped_ops"));
  json.Field("rollback_checks", snap.CounterValue("crlh.rollback_checks"));
  json.EndObject();
  json.EndObject();
  std::printf("helpers: %llu help event(s), %llu helped op(s)\n",
              static_cast<unsigned long long>(snap.CounterValue("crlh.help_events")),
              static_cast<unsigned long long>(snap.CounterValue("crlh.helped_ops")));

  json.EndObject();
  const std::string path = "BENCH_fig11_" + profile.name + ".json";
  if (json.WriteFile(path)) {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace atomfs

#endif  // ATOMFS_BENCH_FIG11_COMMON_H_
