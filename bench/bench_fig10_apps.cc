// Figure 10 reproduction: application-workload running time across file
// systems.
//
// Paper setup: dfscq / atomfs / tmpfs / ext4 on a ramdisk, workloads
// largefile, smallfile, git-clone, make-xv6, cp-qemu, ripgrep. This harness
// substitutes (see DESIGN.md / EXPERIMENTS.md):
//   dfscq-like  = NaiveFs + modeled Haskell-extraction overhead
//   atomfs      = AtomFs behind a modeled FUSE crossing
//   tmpfs-like  = AtomFs raw (in-kernel in-memory FS)
//   ext4-like   = AtomFs raw + modeled journaling cost
// The paper's reported *shape* — dfscq 1.38-2.52x slower than atomfs; tmpfs
// and ext4 faster than atomfs because FUSE is out of the way — is what this
// binary regenerates. Absolute numbers depend on the host.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/atom_fs.h"
#include "src/naive/naive_fs.h"
#include "src/util/stats.h"
#include "src/vfs/overhead_fs.h"
#include "src/workload/apps.h"
#include "src/workload/lfs.h"

namespace atomfs {
namespace {

// Modeled constant overheads (ns per operation).
constexpr uint64_t kFuseCrossingNs = 4000;
constexpr uint64_t kHaskellOverheadNs = 9000;
constexpr uint64_t kJournalNs = 800;

struct Candidate {
  std::string name;
  // Returns (fs-to-drive, owning holders kept alive by caller scope).
  std::function<std::unique_ptr<FileSystem>()> make_inner;
  uint64_t overhead_ns;
};

double RunWorkload(const std::string& workload, FileSystem& fs) {
  WallTimer timer;
  if (workload == "largefile") {
    RunLargeFile(fs, 10ull << 20);
  } else if (workload == "smallfile") {
    RunSmallFile(fs, 10000, 1 << 10);
  } else if (workload == "git-clone") {
    TreeSpec spec;
    spec.dirs = 24;
    spec.files_per_dir = 10;
    spec.max_file_bytes = 12 << 10;
    RunGitClone(fs, "/xv6", spec);
  } else if (workload == "make-xv6") {
    TreeSpec spec;
    spec.dirs = 24;
    spec.files_per_dir = 10;
    spec.max_file_bytes = 12 << 10;
    BuildTree(fs, "/xv6src", spec);
    timer.Reset();  // the build, not the checkout, is measured
    RunMakeBuild(fs, "/xv6src");
  } else if (workload == "cp-qemu") {
    TreeSpec spec;
    spec.dirs = 64;
    spec.files_per_dir = 12;
    spec.max_file_bytes = 16 << 10;
    BuildTree(fs, "/qemu", spec);
    timer.Reset();
    RunCopyTree(fs, "/qemu", "/qemu-copy");
  } else if (workload == "ripgrep") {
    TreeSpec spec;
    spec.dirs = 64;
    spec.files_per_dir = 12;
    spec.max_file_bytes = 16 << 10;
    BuildTree(fs, "/corpus", spec);
    timer.Reset();
    RunGrep(fs, "/corpus", "needle");
  }
  return timer.ElapsedSeconds();
}

}  // namespace
}  // namespace atomfs

int main() {
  using namespace atomfs;

  std::vector<Candidate> candidates = {
      {"dfscq-like", [] { return std::make_unique<NaiveFs>(); }, kHaskellOverheadNs},
      {"atomfs", [] { return std::make_unique<AtomFs>(); }, kFuseCrossingNs},
      {"tmpfs-like", [] { return std::make_unique<AtomFs>(); }, 0},
      {"ext4-like", [] { return std::make_unique<AtomFs>(); }, kJournalNs},
  };
  const std::vector<std::string> workloads = {"largefile", "smallfile", "git-clone",
                                              "make-xv6",  "cp-qemu",   "ripgrep"};

  std::printf("Figure 10: application workloads, running time in seconds\n");
  std::printf("(paper: dfscq / atomfs / tmpfs / ext4 on ramdisk; here: modeled stand-ins,\n");
  std::printf(" see EXPERIMENTS.md -- compare shapes, not absolute values)\n\n");
  std::printf("%-12s", "workload");
  for (const auto& c : candidates) {
    std::printf("%12s", c.name.c_str());
  }
  std::printf("%16s\n", "dfscq/atomfs");

  for (const auto& workload : workloads) {
    std::printf("%-12s", workload.c_str());
    double atomfs_time = 0;
    double dfscq_time = 0;
    for (const auto& c : candidates) {
      auto inner = c.make_inner();
      OverheadFs fs(inner.get(), &Executor::Real(), c.overhead_ns);
      const double secs = RunWorkload(workload, fs);
      if (c.name == "atomfs") {
        atomfs_time = secs;
      }
      if (c.name == "dfscq-like") {
        dfscq_time = secs;
      }
      std::printf("%12s", FormatSeconds(secs).c_str());
    }
    std::printf("%15.2fx\n", atomfs_time > 0 ? dfscq_time / atomfs_time : 0.0);
  }
  std::printf("\nExpected shape: dfscq-like slowest (paper: 1.38x-2.52x of atomfs);\n");
  std::printf("tmpfs-like and ext4-like faster than atomfs (no FUSE crossing).\n");
  return 0;
}
