#include "src/vfs/path.h"

#include "src/util/check.h"

namespace atomfs {

Path Path::Dir() const {
  ATOMFS_CHECK(!IsRoot());
  Path d;
  d.parts.assign(parts.begin(), parts.end() - 1);
  return d;
}

bool Path::IsPrefixOf(const Path& other) const {
  if (parts.size() > other.parts.size()) {
    return false;
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] != other.parts[i]) {
      return false;
    }
  }
  return true;
}

std::string Path::ToString() const {
  if (IsRoot()) {
    return "/";
  }
  std::string s;
  for (const auto& p : parts) {
    s.push_back('/');
    s.append(p);
  }
  return s;
}

Result<Path> ParsePath(std::string_view raw) {
  if (raw.empty() || raw.front() != '/') {
    return Errc::kInval;
  }
  if (raw.size() > kMaxPathLen) {
    return Errc::kNameTooLong;
  }
  Path path;
  size_t i = 1;
  while (i <= raw.size()) {
    size_t j = raw.find('/', i);
    if (j == std::string_view::npos) {
      j = raw.size();
    }
    std::string_view comp = raw.substr(i, j - i);
    i = j + 1;
    if (comp.empty() || comp == ".") {
      continue;
    }
    if (comp == "..") {
      // Lexical parent; ".." at the root stays at the root, as in POSIX
      // pathname resolution.
      if (!path.parts.empty()) {
        path.parts.pop_back();
      }
      continue;
    }
    if (comp.size() > kMaxNameLen) {
      return Errc::kNameTooLong;
    }
    path.parts.emplace_back(comp);
  }
  return path;
}

Status ValidateName(std::string_view name) {
  if (name.empty() || name == "." || name == ".." ||
      name.find('/') != std::string_view::npos) {
    return Status(Errc::kInval);
  }
  if (name.size() > kMaxNameLen) {
    return Status(Errc::kNameTooLong);
  }
  return Status::Ok();
}

}  // namespace atomfs
