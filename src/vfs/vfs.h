// Vfs: the file-descriptor layer above a path-based FileSystem.
//
// The paper's AtomFS runs under FUSE/VFS, which maintain the mapping from a
// file descriptor to the path of an inode; AtomFS then resolves the full
// path even for FD-based interfaces so that *all* its interfaces stay
// linearizable (§5.4). This class is that substrate: it keeps an fd -> path
// table plus a file cursor, and forwards every data access as a path-based
// call on the underlying FileSystem. Consequently an open fd observes
// renames of its path (the call simply resolves whatever the path names
// now), exactly like the paper's prototype — and tests/fd_test.cc checks the
// Figure 9 semantics.

#ifndef ATOMFS_SRC_VFS_VFS_H_
#define ATOMFS_SRC_VFS_VFS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/util/status.h"
#include "src/vfs/filesystem.h"
#include "src/vfs/path.h"

namespace atomfs {

// open() flag bits.
struct OpenFlags {
  static constexpr uint32_t kRead = 1u << 0;
  static constexpr uint32_t kWrite = 1u << 1;
  static constexpr uint32_t kCreate = 1u << 2;
  static constexpr uint32_t kTrunc = 1u << 3;
  static constexpr uint32_t kExcl = 1u << 4;
  static constexpr uint32_t kAppend = 1u << 5;
};

using Fd = int32_t;

class Vfs {
 public:
  explicit Vfs(FileSystem* fs);

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  FileSystem& fs() { return *fs_; }

  // --- descriptor lifecycle ------------------------------------------------
  Result<Fd> Open(std::string_view path, uint32_t flags);
  Status Close(Fd fd);
  // Number of currently open descriptors.
  size_t OpenCount() const;

  // --- FD-based data plane (all re-resolve the stored path) -----------------
  Result<size_t> Read(Fd fd, std::span<std::byte> out);      // advances cursor
  Result<size_t> Write(Fd fd, std::span<const std::byte> data);
  Result<size_t> Pread(Fd fd, uint64_t offset, std::span<std::byte> out);
  Result<size_t> Pwrite(Fd fd, uint64_t offset, std::span<const std::byte> data);
  Result<Attr> Fstat(Fd fd);
  Result<std::vector<DirEntry>> ReadDirFd(Fd fd);
  Status Ftruncate(Fd fd, uint64_t size);
  Result<uint64_t> Seek(Fd fd, uint64_t offset);

  // --- path-based control plane (forwarded) ---------------------------------
  Status Mkdir(std::string_view path) { return fs_->Mkdir(path); }
  Status Rmdir(std::string_view path) { return fs_->Rmdir(path); }
  Status Unlink(std::string_view path) { return fs_->Unlink(path); }
  Status Rename(std::string_view src, std::string_view dst) { return fs_->Rename(src, dst); }
  Status Exchange(std::string_view a, std::string_view b) { return fs_->Exchange(a, b); }
  Result<Attr> Stat(std::string_view path) { return fs_->Stat(path); }
  Result<std::vector<DirEntry>> ReadDir(std::string_view path) { return fs_->ReadDir(path); }

 private:
  struct FdEntry {
    Path path;
    uint32_t flags = 0;
    uint64_t cursor = 0;
    bool is_dir = false;
  };

  // Returns a copy of the entry (the data plane works on the stored path,
  // never on cached inode state).
  Result<FdEntry> Lookup(Fd fd) const;

  FileSystem* fs_;
  mutable std::mutex mu_;
  std::map<Fd, FdEntry> table_;
  Fd next_fd_ = 3;  // 0-2 reserved, as a nod to POSIX
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_VFS_VFS_H_
