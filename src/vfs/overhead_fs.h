// OverheadFs: a FileSystem decorator that adds a fixed modeled cost to every
// operation. The Figure 10 harness uses it to represent constant-factor
// overheads this repository cannot reproduce natively:
//   * the FUSE user-kernel crossing in front of AtomFS,
//   * DFSCQ's Haskell-extraction interpreter overhead,
//   * ext4's journaling work.
// Under RealExecutor the cost is a calibrated busy-wait; under SimExecutor
// it is charged as virtual work.

#ifndef ATOMFS_SRC_VFS_OVERHEAD_FS_H_
#define ATOMFS_SRC_VFS_OVERHEAD_FS_H_

#include <chrono>

#include "src/sim/executor.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

class OverheadFs : public FileSystem {
 public:
  OverheadFs(FileSystem* inner, Executor* executor, uint64_t per_op_ns)
      : inner_(inner), executor_(executor), per_op_ns_(per_op_ns) {}

  Status Mkdir(const Path& path) override {
    Charge();
    return inner_->Mkdir(path);
  }
  Status Mknod(const Path& path) override {
    Charge();
    return inner_->Mknod(path);
  }
  Status Rmdir(const Path& path) override {
    Charge();
    return inner_->Rmdir(path);
  }
  Status Unlink(const Path& path) override {
    Charge();
    return inner_->Unlink(path);
  }
  Status Rename(const Path& src, const Path& dst) override {
    Charge();
    return inner_->Rename(src, dst);
  }
  Status Exchange(const Path& a, const Path& b) override {
    Charge();
    return inner_->Exchange(a, b);
  }
  Result<Attr> Stat(const Path& path) override {
    Charge();
    return inner_->Stat(path);
  }
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override {
    Charge();
    return inner_->ReadDir(path);
  }
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override {
    Charge();
    return inner_->Read(path, offset, out);
  }
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override {
    Charge();
    return inner_->Write(path, offset, data);
  }
  Status Truncate(const Path& path, uint64_t size) override {
    Charge();
    return inner_->Truncate(path, size);
  }
  using FileSystem::Exchange;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Read;
  using FileSystem::ReadDir;
  using FileSystem::Rename;
  using FileSystem::Rmdir;
  using FileSystem::Stat;
  using FileSystem::Truncate;
  using FileSystem::Unlink;
  using FileSystem::Write;

 private:
  void Charge() {
    if (per_op_ns_ == 0) {
      return;
    }
    if (executor_ == &Executor::Real()) {
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::nanoseconds(per_op_ns_);
      while (std::chrono::steady_clock::now() < until) {
      }
    } else {
      executor_->Work(per_op_ns_);
    }
  }

  FileSystem* inner_;
  Executor* executor_;
  uint64_t per_op_ns_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_VFS_OVERHEAD_FS_H_
