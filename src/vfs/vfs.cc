#include "src/vfs/vfs.h"

#include "src/util/check.h"

namespace atomfs {

Vfs::Vfs(FileSystem* fs) : fs_(fs) { ATOMFS_CHECK(fs != nullptr); }

Result<Fd> Vfs::Open(std::string_view raw, uint32_t flags) {
  auto parsed = ParsePath(raw);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Path& path = *parsed;

  auto attr = fs_->Stat(path);
  bool is_dir = false;
  if (attr.ok()) {
    if ((flags & OpenFlags::kCreate) != 0 && (flags & OpenFlags::kExcl) != 0) {
      return Errc::kExist;
    }
    is_dir = attr->type == FileType::kDir;
    if (is_dir && (flags & OpenFlags::kWrite) != 0) {
      return Errc::kIsDir;
    }
    if (!is_dir && (flags & OpenFlags::kTrunc) != 0) {
      Status st = fs_->Truncate(path, 0);
      if (!st.ok()) {
        return st;
      }
    }
  } else if (attr.status().code() == Errc::kNoEnt && (flags & OpenFlags::kCreate) != 0) {
    Status st = fs_->Mknod(path);
    // A concurrent creator may win the race; kExist is then only an error
    // under O_EXCL.
    if (!st.ok() && !(st.code() == Errc::kExist && (flags & OpenFlags::kExcl) == 0)) {
      return st;
    }
  } else {
    return attr.status();
  }

  std::lock_guard<std::mutex> lk(mu_);
  const Fd fd = next_fd_++;
  FdEntry entry;
  entry.path = path;
  entry.flags = flags;
  entry.is_dir = is_dir;
  table_.emplace(fd, std::move(entry));
  return fd;
}

Status Vfs::Close(Fd fd) {
  std::lock_guard<std::mutex> lk(mu_);
  return table_.erase(fd) != 0 ? Status::Ok() : Status(Errc::kBadFd);
}

size_t Vfs::OpenCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return table_.size();
}

Result<Vfs::FdEntry> Vfs::Lookup(Fd fd) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(fd);
  if (it == table_.end()) {
    return Errc::kBadFd;
  }
  return it->second;
}

Result<size_t> Vfs::Read(Fd fd, std::span<std::byte> out) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  auto n = fs_->Read(entry->path, entry->cursor, out);
  if (n.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(fd);
    if (it != table_.end()) {
      it->second.cursor = entry->cursor + *n;
    }
  }
  return n;
}

Result<size_t> Vfs::Write(Fd fd, std::span<const std::byte> data) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  if ((entry->flags & OpenFlags::kWrite) == 0) {
    return Errc::kAccess;
  }
  uint64_t offset = entry->cursor;
  if ((entry->flags & OpenFlags::kAppend) != 0) {
    auto attr = fs_->Stat(entry->path);
    if (!attr.ok()) {
      return attr.status();
    }
    offset = attr->size;
  }
  auto n = fs_->Write(entry->path, offset, data);
  if (n.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(fd);
    if (it != table_.end()) {
      it->second.cursor = offset + *n;
    }
  }
  return n;
}

Result<size_t> Vfs::Pread(Fd fd, uint64_t offset, std::span<std::byte> out) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  return fs_->Read(entry->path, offset, out);
}

Result<size_t> Vfs::Pwrite(Fd fd, uint64_t offset, std::span<const std::byte> data) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  if ((entry->flags & OpenFlags::kWrite) == 0) {
    return Errc::kAccess;
  }
  return fs_->Write(entry->path, offset, data);
}

Result<Attr> Vfs::Fstat(Fd fd) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  return fs_->Stat(entry->path);
}

Result<std::vector<DirEntry>> Vfs::ReadDirFd(Fd fd) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  return fs_->ReadDir(entry->path);
}

Status Vfs::Ftruncate(Fd fd, uint64_t size) {
  auto entry = Lookup(fd);
  if (!entry.ok()) {
    return entry.status();
  }
  if ((entry->flags & OpenFlags::kWrite) == 0) {
    return Status(Errc::kAccess);
  }
  return fs_->Truncate(entry->path, size);
}

Result<uint64_t> Vfs::Seek(Fd fd, uint64_t offset) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(fd);
  if (it == table_.end()) {
    return Errc::kBadFd;
  }
  it->second.cursor = offset;
  return offset;
}

}  // namespace atomfs
