// The public file-system interface implemented by AtomFS and its baselines.
//
// All operations are path-based, mirroring the paper's AtomFS prototype
// (§5.4: even FD-based calls resolve a full path; the Vfs layer maintains the
// FD -> path mapping). Each virtual method is required to be *linearizable*:
// it must appear to take effect atomically between invocation and return.
// That contract is exactly what the CRL-H runtime (src/crlh) checks.

#ifndef ATOMFS_SRC_VFS_FILESYSTEM_H_
#define ATOMFS_SRC_VFS_FILESYSTEM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/vfs/path.h"

namespace atomfs {

// Inode numbers. The root is always inode 1.
using Inum = uint64_t;
inline constexpr Inum kRootInum = 1;
inline constexpr Inum kInvalidInum = 0;

enum class FileType : uint8_t {
  kFile,
  kDir,
};

// stat() payload.
struct Attr {
  Inum ino = kInvalidInum;
  FileType type = FileType::kFile;
  uint64_t size = 0;  // bytes for files, entry count for directories

  friend bool operator==(const Attr& a, const Attr& b) {
    return a.ino == b.ino && a.type == b.type && a.size == b.size;
  }
};

// readdir() payload entry.
struct DirEntry {
  std::string name;
  Inum ino = kInvalidInum;
  FileType type = FileType::kFile;

  friend bool operator==(const DirEntry& a, const DirEntry& b) {
    return a.name == b.name && a.ino == b.ino && a.type == b.type;
  }
};

// --- capability discovery ----------------------------------------------------
// Feature bits a FileSystem advertises so callers (and remote clients, via
// the HELLO handshake) discover support instead of probing with EINVAL.
// Append-only: the bitmask travels on the wire.
inline constexpr uint32_t kFsCapTxn = 1u << 0;       // transactional host attached
inline constexpr uint32_t kFsCapRcuWalk = 1u << 1;   // optimistic lock-free reads
inline constexpr uint32_t kFsCapSharding = 1u << 2;  // sharded namespace router

// "txn,rcu_walk,sharding" for the set bits; "-" for none.
std::string FsCapsToString(uint32_t caps);

// --- routable op descriptor --------------------------------------------------
// The one reified representation of a file-system operation shared by the
// shard router, the workload replayer, and the server dispatch (previously
// three parallel switch statements). Paths are parsed once at the boundary;
// the write payload is a view into the caller's buffer, valid only for the
// duration of the Dispatch call.

enum class OpKind : uint8_t {
  kMkdir,
  kMknod,
  kRmdir,
  kUnlink,
  kRename,
  kExchange,
  kStat,
  kReadDir,
  kRead,
  kWrite,
  kTruncate,
};

std::string_view OpKindName(OpKind kind);

struct FsOp {
  OpKind kind = OpKind::kStat;
  Path a;                               // primary path (src for rename)
  Path b;                               // rename/exchange second path
  uint64_t offset = 0;                  // read/write offset; truncate size
  uint64_t len = 0;                     // read length
  std::span<const std::byte> payload;   // write data (view, not owned)
};

// The union of every operation's observable outcome.
struct FsOpResult {
  Status status;
  Attr attr;                      // stat
  std::vector<DirEntry> entries;  // readdir
  uint64_t nbytes = 0;            // read/write byte count
  std::vector<std::byte> data;    // read payload
};

// Abstract file system. Thread safety: every method may be called
// concurrently from any number of threads.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Feature bits (kFsCap*) this instance supports. The server folds its own
  // bits (e.g. kFsCapTxn when a TxnHost is attached) into the HELLO reply.
  virtual uint32_t Capabilities() const { return 0; }

  // Executes one reified operation. The default implementation is the single
  // kind switch over the virtual methods below; routing layers (ShardedFs)
  // override it to route the descriptor instead.
  virtual FsOpResult Dispatch(const FsOp& op);

  // Directory-tree operations (the paper's six POSIX interfaces; mknod/mkdir
  // are the paper's `ins`, unlink/rmdir its `del`).
  virtual Status Mkdir(const Path& path) = 0;
  virtual Status Mknod(const Path& path) = 0;
  virtual Status Rmdir(const Path& path) = 0;
  virtual Status Unlink(const Path& path) = 0;
  virtual Status Rename(const Path& src, const Path& dst) = 0;
  // Atomically swaps the two entries (RENAME_EXCHANGE-style). Both paths
  // must exist; neither may be an ancestor of the other. An *extension*
  // beyond the paper's six interfaces: exchange breaks the path integrity of
  // two subtrees at once, which exercises the generality of the CRL-H helper
  // mechanism (the paper's Sec. 3.2 anticipates such interfaces).
  virtual Status Exchange(const Path& a, const Path& b) = 0;
  virtual Result<Attr> Stat(const Path& path) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(const Path& path) = 0;

  // File data operations. Read returns the bytes actually read (short reads
  // at EOF); Write extends the file as needed and returns bytes written.
  virtual Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) = 0;
  virtual Result<size_t> Write(const Path& path, uint64_t offset,
                               std::span<const std::byte> data) = 0;
  virtual Status Truncate(const Path& path, uint64_t size) = 0;

  // String-path conveniences: parse then dispatch. Parse errors surface as
  // the operation's status.
  Status Mkdir(std::string_view p) { return WithPath(p, [&](const Path& q) { return Mkdir(q); }); }
  Status Mknod(std::string_view p) { return WithPath(p, [&](const Path& q) { return Mknod(q); }); }
  Status Rmdir(std::string_view p) { return WithPath(p, [&](const Path& q) { return Rmdir(q); }); }
  Status Unlink(std::string_view p) {
    return WithPath(p, [&](const Path& q) { return Unlink(q); });
  }
  Status Rename(std::string_view src, std::string_view dst) {
    auto s = ParsePath(src);
    if (!s.ok()) {
      return s.status();
    }
    auto d = ParsePath(dst);
    if (!d.ok()) {
      return d.status();
    }
    return Rename(*s, *d);
  }
  Status Exchange(std::string_view a, std::string_view b) {
    auto pa = ParsePath(a);
    if (!pa.ok()) {
      return pa.status();
    }
    auto pb = ParsePath(b);
    if (!pb.ok()) {
      return pb.status();
    }
    return Exchange(*pa, *pb);
  }
  Result<Attr> Stat(std::string_view p) {
    auto q = ParsePath(p);
    if (!q.ok()) {
      return q.status();
    }
    return Stat(*q);
  }
  Result<std::vector<DirEntry>> ReadDir(std::string_view p) {
    auto q = ParsePath(p);
    if (!q.ok()) {
      return q.status();
    }
    return ReadDir(*q);
  }
  Result<size_t> Read(std::string_view p, uint64_t off, std::span<std::byte> out) {
    auto q = ParsePath(p);
    if (!q.ok()) {
      return q.status();
    }
    return Read(*q, off, out);
  }
  Result<size_t> Write(std::string_view p, uint64_t off, std::span<const std::byte> data) {
    auto q = ParsePath(p);
    if (!q.ok()) {
      return q.status();
    }
    return Write(*q, off, data);
  }
  Status Truncate(std::string_view p, uint64_t size) {
    return WithPath(p, [&](const Path& q) { return Truncate(q, size); });
  }

 private:
  template <typename Fn>
  Status WithPath(std::string_view raw, Fn&& fn) {
    auto p = ParsePath(raw);
    if (!p.ok()) {
      return p.status();
    }
    return fn(*p);
  }
};

// Convenience helpers used by tests, examples and workloads.
Status WriteString(FileSystem& fs, std::string_view path, std::string_view contents);
Result<std::string> ReadString(FileSystem& fs, std::string_view path);

// Recursively creates all directories along `path` (like `mkdir -p`).
Status MkdirAll(FileSystem& fs, const Path& path);

// Recursively removes `path` and everything under it.
Status RemoveAll(FileSystem& fs, const Path& path);

}  // namespace atomfs

#endif  // ATOMFS_SRC_VFS_FILESYSTEM_H_
