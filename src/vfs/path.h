// Path parsing and normalization.
//
// AtomFS is a path-based file system: every interface receives an absolute
// path. This module turns the string into the component list the
// lock-coupling traversal walks, with POSIX-style lexical handling of ".",
// ".." and repeated slashes. It has no notion of symlinks (AtomFS does not
// support them), so lexical ".." resolution is exact.

#ifndef ATOMFS_SRC_VFS_PATH_H_
#define ATOMFS_SRC_VFS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace atomfs {

// Longest accepted file name and path, mirroring common POSIX limits.
inline constexpr size_t kMaxNameLen = 255;
inline constexpr size_t kMaxPathLen = 4096;

// A parsed absolute path: the component list from the root. Empty components
// means the root itself.
struct Path {
  std::vector<std::string> parts;

  bool IsRoot() const { return parts.empty(); }

  // Last component; requires !IsRoot().
  const std::string& Base() const { return parts.back(); }

  // All but the last component; requires !IsRoot().
  Path Dir() const;

  // True if `this` is a (non-strict) prefix of `other`, i.e. `other` names an
  // inode inside the subtree rooted at `this`. Used by rename legality checks
  // and by the CRL-H SrcPrefix / LockPathPrefix relations.
  bool IsPrefixOf(const Path& other) const;

  std::string ToString() const;

  friend bool operator==(const Path& a, const Path& b) { return a.parts == b.parts; }
};

// Parses an absolute path. Errors:
//   kInval        - empty string or not starting with '/' or ".." escaping root
//   kNameTooLong  - a component longer than kMaxNameLen or path > kMaxPathLen
Result<Path> ParsePath(std::string_view raw);

// Validates a single file name (no '/', not empty, not "." or "..").
Status ValidateName(std::string_view name);

}  // namespace atomfs

#endif  // ATOMFS_SRC_VFS_PATH_H_
