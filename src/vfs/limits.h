// Capacity limits shared by the abstract specification and every concrete
// file system. They are part of the interface contract: the spec and the
// implementations must agree on when ENOSPC fires, otherwise refinement
// checking would flag a spurious divergence.

#ifndef ATOMFS_SRC_VFS_LIMITS_H_
#define ATOMFS_SRC_VFS_LIMITS_H_

#include <cstddef>
#include <cstdint>

namespace atomfs {

// File data is stored in fixed-size blocks addressed through a fixed-size
// index array, as in the paper's prototype ("a fixed-size array of indexes
// for file data storage").
inline constexpr size_t kBlockSize = 4096;
inline constexpr size_t kMaxFileBlocks = 16384;
inline constexpr uint64_t kMaxFileSize =
    static_cast<uint64_t>(kBlockSize) * static_cast<uint64_t>(kMaxFileBlocks);  // 64 MiB

}  // namespace atomfs

#endif  // ATOMFS_SRC_VFS_LIMITS_H_
