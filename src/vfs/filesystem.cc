#include "src/vfs/filesystem.h"

namespace atomfs {

Status WriteString(FileSystem& fs, std::string_view path, std::string_view contents) {
  auto parsed = ParsePath(path);
  if (!parsed.ok()) {
    return parsed.status();
  }
  Status st = fs.Mknod(*parsed);
  if (!st.ok() && st.code() != Errc::kExist) {
    return st;
  }
  if (st.code() == Errc::kExist) {
    // Overwrite semantics: truncate first so leftover bytes do not survive.
    Status t = fs.Truncate(*parsed, 0);
    if (!t.ok()) {
      return t;
    }
  }
  auto bytes = std::as_bytes(std::span<const char>(contents.data(), contents.size()));
  auto written = fs.Write(*parsed, 0, bytes);
  if (!written.ok()) {
    return written.status();
  }
  return written.value() == contents.size() ? Status::Ok() : Status(Errc::kNoSpace);
}

Result<std::string> ReadString(FileSystem& fs, std::string_view path) {
  auto attr = fs.Stat(path);
  if (!attr.ok()) {
    return attr.status();
  }
  if (attr->type != FileType::kFile) {
    return Errc::kIsDir;
  }
  std::string out(attr->size, '\0');
  auto got = fs.Read(path, 0, std::as_writable_bytes(std::span<char>(out.data(), out.size())));
  if (!got.ok()) {
    return got.status();
  }
  out.resize(*got);
  return out;
}

Status MkdirAll(FileSystem& fs, const Path& path) {
  Path prefix;
  for (const auto& part : path.parts) {
    prefix.parts.push_back(part);
    Status st = fs.Mkdir(prefix);
    if (!st.ok() && st.code() != Errc::kExist) {
      return st;
    }
  }
  return Status::Ok();
}

Status RemoveAll(FileSystem& fs, const Path& path) {
  auto attr = fs.Stat(path);
  if (!attr.ok()) {
    return attr.status();
  }
  if (attr->type == FileType::kFile) {
    return fs.Unlink(path);
  }
  auto entries = fs.ReadDir(path);
  if (!entries.ok()) {
    return entries.status();
  }
  for (const auto& e : *entries) {
    Path child = path;
    child.parts.push_back(e.name);
    Status st = RemoveAll(fs, child);
    if (!st.ok() && st.code() != Errc::kNoEnt) {
      return st;
    }
  }
  return fs.Rmdir(path);
}

}  // namespace atomfs
