#include "src/vfs/filesystem.h"

namespace atomfs {

std::string FsCapsToString(uint32_t caps) {
  std::string out;
  auto add = [&out](std::string_view name) {
    if (!out.empty()) {
      out += ',';
    }
    out += name;
  };
  if (caps & kFsCapTxn) {
    add("txn");
  }
  if (caps & kFsCapRcuWalk) {
    add("rcu_walk");
  }
  if (caps & kFsCapSharding) {
    add("sharding");
  }
  return out.empty() ? "-" : out;
}

std::string_view OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kMkdir:
      return "mkdir";
    case OpKind::kMknod:
      return "mknod";
    case OpKind::kRmdir:
      return "rmdir";
    case OpKind::kUnlink:
      return "unlink";
    case OpKind::kRename:
      return "rename";
    case OpKind::kExchange:
      return "exchange";
    case OpKind::kStat:
      return "stat";
    case OpKind::kReadDir:
      return "readdir";
    case OpKind::kRead:
      return "read";
    case OpKind::kWrite:
      return "write";
    case OpKind::kTruncate:
      return "truncate";
  }
  return "?";
}

FsOpResult FileSystem::Dispatch(const FsOp& op) {
  FsOpResult r;
  switch (op.kind) {
    case OpKind::kMkdir:
      r.status = Mkdir(op.a);
      break;
    case OpKind::kMknod:
      r.status = Mknod(op.a);
      break;
    case OpKind::kRmdir:
      r.status = Rmdir(op.a);
      break;
    case OpKind::kUnlink:
      r.status = Unlink(op.a);
      break;
    case OpKind::kRename:
      r.status = Rename(op.a, op.b);
      break;
    case OpKind::kExchange:
      r.status = Exchange(op.a, op.b);
      break;
    case OpKind::kStat: {
      auto attr = Stat(op.a);
      r.status = attr.status();
      if (attr.ok()) {
        r.attr = *attr;
      }
      break;
    }
    case OpKind::kReadDir: {
      auto entries = ReadDir(op.a);
      r.status = entries.status();
      if (entries.ok()) {
        r.entries = std::move(*entries);
      }
      break;
    }
    case OpKind::kRead: {
      r.data.resize(op.len);
      auto n = Read(op.a, op.offset, std::span<std::byte>(r.data));
      r.status = n.status();
      if (n.ok()) {
        r.nbytes = *n;
        r.data.resize(*n);
      } else {
        r.data.clear();
      }
      break;
    }
    case OpKind::kWrite: {
      auto n = Write(op.a, op.offset, op.payload);
      r.status = n.status();
      if (n.ok()) {
        r.nbytes = *n;
      }
      break;
    }
    case OpKind::kTruncate:
      r.status = Truncate(op.a, op.offset);
      break;
  }
  return r;
}

Status WriteString(FileSystem& fs, std::string_view path, std::string_view contents) {
  auto parsed = ParsePath(path);
  if (!parsed.ok()) {
    return parsed.status();
  }
  Status st = fs.Mknod(*parsed);
  if (!st.ok() && st.code() != Errc::kExist) {
    return st;
  }
  if (st.code() == Errc::kExist) {
    // Overwrite semantics: truncate first so leftover bytes do not survive.
    Status t = fs.Truncate(*parsed, 0);
    if (!t.ok()) {
      return t;
    }
  }
  auto bytes = std::as_bytes(std::span<const char>(contents.data(), contents.size()));
  auto written = fs.Write(*parsed, 0, bytes);
  if (!written.ok()) {
    return written.status();
  }
  return written.value() == contents.size() ? Status::Ok() : Status(Errc::kNoSpace);
}

Result<std::string> ReadString(FileSystem& fs, std::string_view path) {
  auto attr = fs.Stat(path);
  if (!attr.ok()) {
    return attr.status();
  }
  if (attr->type != FileType::kFile) {
    return Errc::kIsDir;
  }
  std::string out(attr->size, '\0');
  auto got = fs.Read(path, 0, std::as_writable_bytes(std::span<char>(out.data(), out.size())));
  if (!got.ok()) {
    return got.status();
  }
  out.resize(*got);
  return out;
}

Status MkdirAll(FileSystem& fs, const Path& path) {
  Path prefix;
  for (const auto& part : path.parts) {
    prefix.parts.push_back(part);
    Status st = fs.Mkdir(prefix);
    if (!st.ok() && st.code() != Errc::kExist) {
      return st;
    }
  }
  return Status::Ok();
}

Status RemoveAll(FileSystem& fs, const Path& path) {
  auto attr = fs.Stat(path);
  if (!attr.ok()) {
    return attr.status();
  }
  if (attr->type == FileType::kFile) {
    return fs.Unlink(path);
  }
  auto entries = fs.ReadDir(path);
  if (!entries.ok()) {
    return entries.status();
  }
  for (const auto& e : *entries) {
    Path child = path;
    child.parts.push_back(e.name);
    Status st = RemoveAll(fs, child);
    if (!st.ok() && st.code() != Errc::kNoEnt) {
      return st;
    }
  }
  return fs.Rmdir(path);
}

}  // namespace atomfs
