// AtomFsClient: a remote AtomFS mount speaking the src/net wire protocol.
//
// The client *is a* FileSystem, so every existing workload driver, test
// harness, and conformance suite runs unmodified against a served instance —
// the linearizability the server inherits from its backend is exactly what
// makes this substitution sound. On top of the path interface it mirrors the
// Vfs descriptor ops (the descriptor table lives server-side, scoped to this
// connection).
//
// One connection, synchronous request/response. A mutex serializes
// concurrent callers on the same client; parallel load wants one client per
// thread (see bench/bench_server_throughput.cc). Transport failures surface
// as kIo, server-rejected frames as kProto; neither is ever produced by an
// in-process FileSystem, so remote-only failures are distinguishable.

#ifndef ATOMFS_SRC_CLIENT_CLIENT_H_
#define ATOMFS_SRC_CLIENT_CLIENT_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/net/wire.h"
#include "src/util/status.h"
#include "src/vfs/filesystem.h"
#include "src/vfs/vfs.h"

namespace atomfs {

class AtomFsClient : public FileSystem {
 public:
  static Result<std::unique_ptr<AtomFsClient>> ConnectUnix(const std::string& socket_path);
  // Connects to 127.0.0.1:port (atomfsd only binds loopback).
  static Result<std::unique_ptr<AtomFsClient>> ConnectTcp(uint16_t port);
  // Parses "unix:PATH" or "tcp:PORT" (the form atomfsd and fsshell accept).
  static Result<std::unique_ptr<AtomFsClient>> Connect(const std::string& endpoint);

  ~AtomFsClient() override;

  AtomFsClient(const AtomFsClient&) = delete;
  AtomFsClient& operator=(const AtomFsClient&) = delete;

  // FileSystem interface (remote).
  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Rmdir;
  using FileSystem::Unlink;
  using FileSystem::Rename;
  using FileSystem::Exchange;
  using FileSystem::Stat;
  using FileSystem::ReadDir;
  using FileSystem::Read;
  using FileSystem::Write;
  using FileSystem::Truncate;

  // Remote descriptor ops (server-side per-connection Vfs).
  Result<Fd> Open(std::string_view path, uint32_t flags);
  Status Close(Fd fd);
  Result<size_t> FdRead(Fd fd, std::span<std::byte> out);
  Result<size_t> FdWrite(Fd fd, std::span<const std::byte> data);
  Result<size_t> Pread(Fd fd, uint64_t offset, std::span<std::byte> out);
  Result<size_t> Pwrite(Fd fd, uint64_t offset, std::span<const std::byte> data);
  Result<Attr> Fstat(Fd fd);
  Result<std::vector<DirEntry>> ReadDirFd(Fd fd);
  Status Ftruncate(Fd fd, uint64_t size);
  Result<uint64_t> Seek(Fd fd, uint64_t offset);

  // Admin.
  Status Ping();
  Result<WireServerStats> FetchStats();
  // Full atomtrace registry snapshot (WireOp::kMetrics): server per-op
  // latencies plus, when the server attached a TracingObserver, the
  // lock-coupling and helper metrics. Percentiles computed on the returned
  // snapshot equal the server's (buckets travel whole).
  Result<MetricsSnapshot> FetchMetrics();

 private:
  explicit AtomFsClient(int sock) : sock_(sock) {}

  // Sends `req` and returns the response payload past the status byte.
  Result<std::vector<std::byte>> Call(const WireRequest& req);
  Status CallStatusOnly(const WireRequest& req);

  int sock_;
  std::mutex mu_;  // serializes the request/response conversation
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CLIENT_CLIENT_H_
