// AtomFsClient: a remote AtomFS mount speaking the src/net wire protocol.
//
// The client *is a* FileSystem, so every existing workload driver, test
// harness, and conformance suite runs unmodified against a served instance —
// the linearizability the server inherits from its backend is exactly what
// makes this substitution sound. On top of the path interface it mirrors the
// Vfs descriptor ops (the descriptor table lives server-side, scoped to this
// connection).
//
// Underneath, the connection is a pipelined ClientSession (protocol v2):
// Submit() stages a request and returns a Future, Flush() packs staged
// requests into MSGBATCH frames (respecting the HELLO-negotiated
// `max_inflight` window) and puts them on the wire, Future::Wait() drives
// the socket until that request's reply arrives. Replies always resolve in
// submission order. The synchronous FileSystem methods are thin
// submit+flush+wait wrappers, so they cost one round trip exactly as
// before; pipelined callers grab session() and overlap many.
//
// A mutex serializes concurrent callers on the same session; parallel load
// wants one client per thread (see bench/bench_server_throughput.cc).
// Wire-level failures carry distinct codes: transport failures surface as
// kIo, server-rejected frames as kProto, idle-reaped connections as
// kTimedOut, window-overcommitted batches as kBackpressure. None of these
// is ever produced by an in-process FileSystem, so remote-only failures are
// distinguishable. Once a session sees a transport failure it is broken for
// good: every queued and future request fails with the same code.

#ifndef ATOMFS_SRC_CLIENT_CLIENT_H_
#define ATOMFS_SRC_CLIENT_CLIENT_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/wire.h"
#include "src/util/status.h"
#include "src/vfs/filesystem.h"
#include "src/vfs/vfs.h"

namespace atomfs {

// Inflight window the client asks for in HELLO; the server may grant less.
inline constexpr uint32_t kDefaultClientInflight = 64;

// One pipelined wire conversation over a connected stream socket.
class ClientSession {
 private:
  struct Pending {
    // Resolution is sticky: `result` is written before `done` flips, and an
    // already-done future reads `result` without taking the session lock —
    // which is what lets a resolved Future outlive its session.
    std::atomic<bool> done{false};
    bool staged = true;  // not yet on the wire
    Result<std::vector<std::byte>> result{Errc::kIo};
  };

 public:
  // A handle to one submitted request's eventual reply (the response
  // payload past the status byte; error statuses surface as the Result's
  // status). Wait() drives the session's socket as needed; once resolved,
  // further Wait() calls return the stored result without touching the
  // session. The session destructor resolves every still-pending request
  // with kIo, so Wait() on a future that outlived its session is safe —
  // only Wait() racing the destructor itself is not.
  class Future {
   public:
    Future() = default;
    bool valid() const { return state_ != nullptr; }
    Result<std::vector<std::byte>> Wait();

   private:
    friend class ClientSession;
    Future(ClientSession* session, std::shared_ptr<Pending> state)
        : session_(session), state_(std::move(state)) {}
    ClientSession* session_ = nullptr;
    std::shared_ptr<Pending> state_;
  };

  // Takes ownership of a connected socket (closes it on failure and in the
  // destructor), performs the HELLO handshake asking for `want_inflight`,
  // and returns the negotiated session. kProto if the server rejects the
  // protocol version or answers HELLO malformed.
  static Result<std::unique_ptr<ClientSession>> Negotiate(int sock, uint32_t want_inflight);

  // Resolves every unresolved request with kIo (so outstanding Futures
  // never dangle), then closes the socket.
  ~ClientSession();
  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  // Stages a request; nothing hits the wire until Flush()/Wait()/Call().
  Future Submit(const WireRequest& req);

  // Packs every staged request into frames (MSGBATCH when more than one fits
  // the window) and sends them, reading replies as needed to respect the
  // negotiated window. Returns the session's broken-status on failure.
  Status Flush();

  // Synchronous convenience: submit + flush + wait.
  Result<std::vector<std::byte>> Call(const WireRequest& req);

  // Negotiated session parameters.
  uint32_t max_inflight() const { return window_; }
  uint32_t server_version() const { return server_version_; }
  // Capability bitmask (kFsCap*) from the v3 HELLO reply; 0 from a v2 server.
  uint32_t server_caps() const { return server_caps_; }

 private:
  explicit ClientSession(int sock) : sock_(sock) {}

  struct StagedOp {
    std::vector<std::byte> payload;  // encoded request, unframed
    std::shared_ptr<Pending> pending;
  };

  std::shared_ptr<Pending> SubmitLocked(const WireRequest& req);
  Status FlushLocked();
  Status ReadOneReplyLocked();
  Status BreakLocked(Status st);  // poisons the session and every request
  Result<std::vector<std::byte>> WaitLocked(const std::shared_ptr<Pending>& p);

  std::mutex mu_;  // serializes the whole conversation
  int sock_ = -1;
  uint32_t window_ = 1;  // 1 until HELLO's grant arrives
  uint32_t server_version_ = 0;
  uint32_t server_caps_ = 0;
  Status broken_ = Status::Ok();
  std::vector<StagedOp> staged_;
  std::deque<std::shared_ptr<Pending>> outstanding_;  // on the wire, FIFO
};

class AtomFsClient : public FileSystem {
 public:
  static Result<std::unique_ptr<AtomFsClient>> ConnectUnix(const std::string& socket_path);
  // Connects to 127.0.0.1:port (atomfsd only binds loopback).
  static Result<std::unique_ptr<AtomFsClient>> ConnectTcp(uint16_t port);
  // Parses "unix:PATH" or "tcp:PORT" (the form atomfsd and fsshell accept).
  static Result<std::unique_ptr<AtomFsClient>> Connect(const std::string& endpoint);

  ~AtomFsClient() override;

  AtomFsClient(const AtomFsClient&) = delete;
  AtomFsClient& operator=(const AtomFsClient&) = delete;

  // The pipelined session underneath, for callers that want to overlap
  // requests: session().Submit(...) xN, session().Flush(), futures resolve
  // in order.
  ClientSession& session() { return *session_; }
  uint32_t protocol_version() const { return session_->server_version(); }
  uint32_t max_inflight() const { return session_->max_inflight(); }

  // What the server advertised in HELLO — discovery without EINVAL-probing.
  uint32_t Capabilities() const override { return session_->server_caps(); }

  // FileSystem interface (remote).
  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Rmdir;
  using FileSystem::Unlink;
  using FileSystem::Rename;
  using FileSystem::Exchange;
  using FileSystem::Stat;
  using FileSystem::ReadDir;
  using FileSystem::Read;
  using FileSystem::Write;
  using FileSystem::Truncate;

  // Remote descriptor ops (server-side per-connection Vfs).
  Result<Fd> Open(std::string_view path, uint32_t flags);
  Status Close(Fd fd);
  Result<size_t> FdRead(Fd fd, std::span<std::byte> out);
  Result<size_t> FdWrite(Fd fd, std::span<const std::byte> data);
  Result<size_t> Pread(Fd fd, uint64_t offset, std::span<std::byte> out);
  Result<size_t> Pwrite(Fd fd, uint64_t offset, std::span<const std::byte> data);
  Result<Attr> Fstat(Fd fd);
  Result<std::vector<DirEntry>> ReadDirFd(Fd fd);
  Status Ftruncate(Fd fd, uint64_t size);
  Result<uint64_t> Seek(Fd fd, uint64_t offset);

  // Transactions. TxBegin opens a transaction on this connection (at most
  // one open at a time; the server answers EBUSY otherwise) and returns its
  // id. While open, every path-based op on this client executes inside it:
  // buffered against a private snapshot, invisible to other connections,
  // rolled back wholesale on TxAbort or on connection loss. TxCommit makes
  // the buffered sequence durable and visible atomically — or fails with
  // kTxConflict (retryable: begin again and replay) if a concurrent commit
  // touched the transaction's footprint first. txid 0 means "the
  // connection's current transaction". Descriptor ops are refused (EBUSY)
  // while a transaction is open.
  Result<uint64_t> TxBegin();
  Status TxCommit(uint64_t txid = 0);
  Status TxAbort(uint64_t txid = 0);

  // Admin.
  Status Ping();
  // Ask the server to checkpoint + compact its journal now
  // (WireOp::kCheckpoint). EINVAL on a server without a journaled
  // transaction layer; EIO if the checkpoint write or WAL rotation failed
  // (the server's journal is then fail-stopped — see src/journal/wal.h).
  Status Checkpoint();
  Result<WireServerStats> FetchStats();
  // Full atomtrace registry snapshot (WireOp::kMetrics): server per-op
  // latencies plus, when the server attached a TracingObserver, the
  // lock-coupling and helper metrics. Percentiles computed on the returned
  // snapshot equal the server's (buckets travel whole).
  Result<MetricsSnapshot> FetchMetrics();
  // Chrome trace-event / Perfetto JSON of the server's flight-recorder ring
  // (WireOp::kTraceDump). Valid-but-empty document when the server has no
  // ring attached; the oldest events are dropped server-side if the full
  // window would overflow a wire frame.
  Result<std::string> FetchTraceJson();
  // Prometheus text exposition of the server's metrics registry
  // (WireOp::kProm).
  Result<std::string> FetchPrometheus();

 private:
  explicit AtomFsClient(std::unique_ptr<ClientSession> session)
      : session_(std::move(session)) {}

  static Result<std::unique_ptr<AtomFsClient>> FromSocket(Result<int> fd);

  // Sends `req` and returns the response payload past the status byte
  // (submit + flush + wait on the session).
  Result<std::vector<std::byte>> Call(const WireRequest& req);
  Status CallStatusOnly(const WireRequest& req);

  std::unique_ptr<ClientSession> session_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CLIENT_CLIENT_H_
