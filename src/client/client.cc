#include "src/client/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace atomfs {

namespace {

Result<int> ConnectUnixSocket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Errc::kNameTooLong;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errc::kIo;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    close(fd);
    return Errc::kIo;
  }
  return fd;
}

Result<int> ConnectTcpSocket(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errc::kIo;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    close(fd);
    return Errc::kIo;
  }
  return fd;
}

// Raw send loop (frames are already length-prefixed by the flush packer).
Status SendBytes(int sock, std::span<const std::byte> data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(sock, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status(Errc::kIo);
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

void AppendFrame(std::vector<std::byte>& out, std::span<const std::byte> payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xff));
  }
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

// --- ClientSession -----------------------------------------------------------

Result<std::unique_ptr<ClientSession>> ClientSession::Negotiate(int sock,
                                                                uint32_t want_inflight) {
  std::unique_ptr<ClientSession> session(new ClientSession(sock));
  WireRequest hello;
  hello.op = WireOp::kHello;
  hello.proto_version = kWireProtoVersion;
  hello.max_inflight = want_inflight;
  auto reply = session->Call(hello);  // window_ is 1 here: plain round trip
  if (!reply.ok()) {
    return reply.status();  // session destructor closes the socket
  }
  WireReader r(*reply);
  WireHello granted;
  if (!ParseHello(r, &granted) || !r.AtEnd()) {
    return Errc::kProto;
  }
  session->server_version_ = granted.version;
  session->window_ = std::max<uint32_t>(1, granted.max_inflight);
  session->server_caps_ = granted.caps;
  return session;
}

ClientSession::~ClientSession() {
  {
    // Resolve whatever is still pending (submitted-but-never-flushed, or
    // flushed with the reply never read) so Futures outliving this session
    // hold a result instead of a dangling handle.
    std::lock_guard<std::mutex> lock(mu_);
    BreakLocked(broken_.ok() ? Status(Errc::kIo) : broken_);
  }
  if (sock_ >= 0) {
    close(sock_);
  }
}

std::shared_ptr<ClientSession::Pending> ClientSession::SubmitLocked(const WireRequest& req) {
  auto pending = std::make_shared<Pending>();
  staged_.push_back(StagedOp{EncodeRequest(req), pending});
  return pending;
}

ClientSession::Future ClientSession::Submit(const WireRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  return Future(this, SubmitLocked(req));
}

Status ClientSession::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Result<std::vector<std::byte>> ClientSession::Call(const WireRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!broken_.ok()) {
    return broken_;
  }
  return WaitLocked(SubmitLocked(req));
}

Result<std::vector<std::byte>> ClientSession::Future::Wait() {
  if (state_ == nullptr) {
    return Errc::kInval;
  }
  if (state_->done.load(std::memory_order_acquire)) {
    return state_->result;  // resolved: never touches the (possibly gone) session
  }
  std::lock_guard<std::mutex> lock(session_->mu_);
  return session_->WaitLocked(state_);
}

Result<std::vector<std::byte>> ClientSession::WaitLocked(const std::shared_ptr<Pending>& p) {
  if (p->staged && !p->done) {
    FlushLocked();  // a failure marks p done via BreakLocked
  }
  while (!p->done) {
    if (Status st = ReadOneReplyLocked(); !st.ok()) {
      break;  // BreakLocked marked everything, including p
    }
  }
  return p->result;
}

Status ClientSession::BreakLocked(Status st) {
  broken_ = st;
  for (auto& p : outstanding_) {
    p->result = st;
    p->done.store(true, std::memory_order_release);
  }
  outstanding_.clear();
  for (auto& op : staged_) {
    // FlushLocked moves consumed entries into outstanding_ in place and only
    // clears staged_ once the whole flush is packed, so a mid-flush failure
    // sees the already-moved (null) holders here.
    if (op.pending != nullptr) {
      op.pending->result = st;
      op.pending->done.store(true, std::memory_order_release);
    }
  }
  staged_.clear();
  return st;
}

Status ClientSession::FlushLocked() {
  if (!broken_.ok()) {
    return staged_.empty() ? broken_ : BreakLocked(broken_);
  }
  // Pack staged requests into frames, preserving FIFO order. Consecutive
  // requests coalesce into one MSGBATCH frame up to the window, the batch
  // cap, and the frame cap; a run of one goes unwrapped. Frames accumulate
  // into one buffer so a whole flush is typically a single send(2).
  std::vector<std::byte> wirebuf;
  auto send_buffered = [&]() -> Status {
    if (wirebuf.empty()) {
      return Status::Ok();
    }
    Status st = SendBytes(sock_, wirebuf);
    wirebuf.clear();
    return st.ok() ? st : BreakLocked(st);
  };
  size_t i = 0;
  while (i < staged_.size()) {
    const size_t max_group =
        std::min<size_t>(std::min<uint32_t>(window_, kWireMaxBatchRequests),
                         staged_.size() - i);
    size_t group_bytes = 1 + 4;  // MSGBATCH opcode + count
    size_t j = i;
    while (j - i < max_group && group_bytes + 4 + staged_[j].payload.size() <=
                                    kWireMaxFrameBytes) {
      group_bytes += 4 + staged_[j].payload.size();
      ++j;
      if (j == staged_.size()) {
        break;
      }
    }
    if (j == i) {
      j = i + 1;  // an oversized single still goes out unwrapped
    }
    const size_t units = j - i;
    // Respect the window: drain replies (sending what we buffered first, or
    // the server could never produce them) until the group fits.
    while (outstanding_.size() + units > window_ && !outstanding_.empty()) {
      if (Status st = send_buffered(); !st.ok()) {
        return st;
      }
      if (Status st = ReadOneReplyLocked(); !st.ok()) {
        return st;
      }
    }
    if (units == 1) {
      AppendFrame(wirebuf, staged_[i].payload);
    } else {
      WireWriter w;
      w.U8(static_cast<uint8_t>(WireOp::kMsgBatch));
      w.U32(static_cast<uint32_t>(units));
      for (size_t k = i; k < j; ++k) {
        w.Blob(staged_[k].payload);
      }
      AppendFrame(wirebuf, w.buf());
    }
    for (size_t k = i; k < j; ++k) {
      staged_[k].pending->staged = false;
      outstanding_.push_back(std::move(staged_[k].pending));
    }
    i = j;
  }
  staged_.clear();
  return send_buffered();
}

Status ClientSession::ReadOneReplyLocked() {
  auto frame = RecvFrame(sock_);
  if (!frame.ok()) {
    // A clean server-side close mid-conversation is still a transport
    // failure from the caller's point of view.
    return BreakLocked(
        Status(frame.status().code() == Errc::kProto ? Errc::kProto : Errc::kIo));
  }
  WireReader r(*frame);
  uint8_t wire_status = 0;
  if (!r.U8(&wire_status)) {
    return BreakLocked(Status(Errc::kProto));
  }
  const Errc code = ErrcOfWireStatus(wire_status);
  if (outstanding_.empty()) {
    // Unsolicited frame: the server's idle-timeout courtesy reply carries
    // kTimedOut; anything else means framing drifted.
    return BreakLocked(Status(code != Errc::kOk ? code : Errc::kProto));
  }
  std::shared_ptr<Pending> p = std::move(outstanding_.front());
  outstanding_.pop_front();
  if (code != Errc::kOk) {
    p->result = code;
  } else {
    p->result = std::vector<std::byte>(frame->begin() + 1, frame->end());
  }
  p->done.store(true, std::memory_order_release);
  return Status::Ok();
}

// --- AtomFsClient ------------------------------------------------------------

Result<std::unique_ptr<AtomFsClient>> AtomFsClient::FromSocket(Result<int> fd) {
  if (!fd.ok()) {
    return fd.status();
  }
  auto session = ClientSession::Negotiate(*fd, kDefaultClientInflight);
  if (!session.ok()) {
    return session.status();
  }
  return std::unique_ptr<AtomFsClient>(new AtomFsClient(std::move(*session)));
}

Result<std::unique_ptr<AtomFsClient>> AtomFsClient::ConnectUnix(const std::string& socket_path) {
  return FromSocket(ConnectUnixSocket(socket_path));
}

Result<std::unique_ptr<AtomFsClient>> AtomFsClient::ConnectTcp(uint16_t port) {
  return FromSocket(ConnectTcpSocket(port));
}

Result<std::unique_ptr<AtomFsClient>> AtomFsClient::Connect(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return ConnectUnix(endpoint.substr(5));
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    const int port = std::atoi(endpoint.c_str() + 4);
    if (port <= 0 || port > 65535) {
      return Errc::kInval;
    }
    return ConnectTcp(static_cast<uint16_t>(port));
  }
  return Errc::kInval;
}

AtomFsClient::~AtomFsClient() = default;

Result<std::vector<std::byte>> AtomFsClient::Call(const WireRequest& req) {
  return session_->Call(req);
}

Status AtomFsClient::CallStatusOnly(const WireRequest& req) {
  auto body = Call(req);
  return body.ok() ? Status::Ok() : body.status();
}

// --- path-based FileSystem interface ----------------------------------------

Status AtomFsClient::Mkdir(const Path& path) {
  WireRequest req;
  req.op = WireOp::kMkdir;
  req.path_a = path.ToString();
  return CallStatusOnly(req);
}

Status AtomFsClient::Mknod(const Path& path) {
  WireRequest req;
  req.op = WireOp::kMknod;
  req.path_a = path.ToString();
  return CallStatusOnly(req);
}

Status AtomFsClient::Rmdir(const Path& path) {
  WireRequest req;
  req.op = WireOp::kRmdir;
  req.path_a = path.ToString();
  return CallStatusOnly(req);
}

Status AtomFsClient::Unlink(const Path& path) {
  WireRequest req;
  req.op = WireOp::kUnlink;
  req.path_a = path.ToString();
  return CallStatusOnly(req);
}

Status AtomFsClient::Rename(const Path& src, const Path& dst) {
  WireRequest req;
  req.op = WireOp::kRename;
  req.path_a = src.ToString();
  req.path_b = dst.ToString();
  return CallStatusOnly(req);
}

Status AtomFsClient::Exchange(const Path& a, const Path& b) {
  WireRequest req;
  req.op = WireOp::kExchange;
  req.path_a = a.ToString();
  req.path_b = b.ToString();
  return CallStatusOnly(req);
}

Result<Attr> AtomFsClient::Stat(const Path& path) {
  WireRequest req;
  req.op = WireOp::kStat;
  req.path_a = path.ToString();
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  Attr attr;
  if (!ParseAttr(r, &attr) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return attr;
}

Result<std::vector<DirEntry>> AtomFsClient::ReadDir(const Path& path) {
  WireRequest req;
  req.op = WireOp::kReadDir;
  req.path_a = path.ToString();
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  std::vector<DirEntry> entries;
  if (!ParseDirEntries(r, &entries) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return entries;
}

Result<size_t> AtomFsClient::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  WireRequest req;
  req.op = WireOp::kRead;
  req.path_a = path.ToString();
  req.offset = offset;
  req.count = static_cast<uint32_t>(std::min<size_t>(out.size(), kWireMaxFrameBytes));
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  std::vector<std::byte> data;
  if (!r.Blob(&data, out.size()) || !r.AtEnd()) {
    return Errc::kProto;
  }
  std::copy(data.begin(), data.end(), out.begin());
  return data.size();
}

Result<size_t> AtomFsClient::Write(const Path& path, uint64_t offset,
                                   std::span<const std::byte> data) {
  WireRequest req;
  req.op = WireOp::kWrite;
  req.path_a = path.ToString();
  req.offset = offset;
  req.data.assign(data.begin(), data.end());
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  uint64_t written = 0;
  if (!r.U64(&written) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return static_cast<size_t>(written);
}

Status AtomFsClient::Truncate(const Path& path, uint64_t size) {
  WireRequest req;
  req.op = WireOp::kTruncate;
  req.path_a = path.ToString();
  req.offset = size;
  return CallStatusOnly(req);
}

// --- descriptor ops ----------------------------------------------------------

Result<Fd> AtomFsClient::Open(std::string_view path, uint32_t flags) {
  WireRequest req;
  req.op = WireOp::kOpen;
  req.path_a = std::string(path);
  req.flags = flags;
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  int32_t fd = -1;
  if (!r.I32(&fd) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return Fd{fd};
}

Status AtomFsClient::Close(Fd fd) {
  WireRequest req;
  req.op = WireOp::kClose;
  req.fd = fd;
  return CallStatusOnly(req);
}

namespace {

// FdRead / Pread share the blob-into-span response shape.
Result<size_t> ParseDataInto(Result<std::vector<std::byte>> body, std::span<std::byte> out) {
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  std::vector<std::byte> data;
  if (!r.Blob(&data, out.size()) || !r.AtEnd()) {
    return Errc::kProto;
  }
  std::copy(data.begin(), data.end(), out.begin());
  return data.size();
}

Result<size_t> ParseWritten(Result<std::vector<std::byte>> body) {
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  uint64_t written = 0;
  if (!r.U64(&written) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return static_cast<size_t>(written);
}

}  // namespace

Result<size_t> AtomFsClient::FdRead(Fd fd, std::span<std::byte> out) {
  WireRequest req;
  req.op = WireOp::kFdRead;
  req.fd = fd;
  req.count = static_cast<uint32_t>(std::min<size_t>(out.size(), kWireMaxFrameBytes));
  return ParseDataInto(Call(req), out);
}

Result<size_t> AtomFsClient::FdWrite(Fd fd, std::span<const std::byte> data) {
  WireRequest req;
  req.op = WireOp::kFdWrite;
  req.fd = fd;
  req.data.assign(data.begin(), data.end());
  return ParseWritten(Call(req));
}

Result<size_t> AtomFsClient::Pread(Fd fd, uint64_t offset, std::span<std::byte> out) {
  WireRequest req;
  req.op = WireOp::kFdPread;
  req.fd = fd;
  req.offset = offset;
  req.count = static_cast<uint32_t>(std::min<size_t>(out.size(), kWireMaxFrameBytes));
  return ParseDataInto(Call(req), out);
}

Result<size_t> AtomFsClient::Pwrite(Fd fd, uint64_t offset, std::span<const std::byte> data) {
  WireRequest req;
  req.op = WireOp::kFdPwrite;
  req.fd = fd;
  req.offset = offset;
  req.data.assign(data.begin(), data.end());
  return ParseWritten(Call(req));
}

Result<Attr> AtomFsClient::Fstat(Fd fd) {
  WireRequest req;
  req.op = WireOp::kFstat;
  req.fd = fd;
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  Attr attr;
  if (!ParseAttr(r, &attr) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return attr;
}

Result<std::vector<DirEntry>> AtomFsClient::ReadDirFd(Fd fd) {
  WireRequest req;
  req.op = WireOp::kFdReadDir;
  req.fd = fd;
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  std::vector<DirEntry> entries;
  if (!ParseDirEntries(r, &entries) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return entries;
}

Status AtomFsClient::Ftruncate(Fd fd, uint64_t size) {
  WireRequest req;
  req.op = WireOp::kFtruncate;
  req.fd = fd;
  req.offset = size;
  return CallStatusOnly(req);
}

Result<uint64_t> AtomFsClient::Seek(Fd fd, uint64_t offset) {
  WireRequest req;
  req.op = WireOp::kSeek;
  req.fd = fd;
  req.offset = offset;
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  uint64_t pos = 0;
  if (!r.U64(&pos) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return pos;
}

// --- admin -------------------------------------------------------------------

Status AtomFsClient::Ping() {
  WireRequest req;
  req.op = WireOp::kPing;
  return CallStatusOnly(req);
}

// --- transactions ------------------------------------------------------------

Result<uint64_t> AtomFsClient::TxBegin() {
  WireRequest req;
  req.op = WireOp::kTxBegin;
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  uint64_t txid = 0;
  if (!r.U64(&txid) || !r.AtEnd() || txid == 0) {
    return Errc::kProto;
  }
  return txid;
}

Status AtomFsClient::TxCommit(uint64_t txid) {
  WireRequest req;
  req.op = WireOp::kTxCommit;
  req.txid = txid;
  return CallStatusOnly(req);
}

Status AtomFsClient::TxAbort(uint64_t txid) {
  WireRequest req;
  req.op = WireOp::kTxAbort;
  req.txid = txid;
  return CallStatusOnly(req);
}

Status AtomFsClient::Checkpoint() {
  WireRequest req;
  req.op = WireOp::kCheckpoint;
  return CallStatusOnly(req);
}

Result<WireServerStats> AtomFsClient::FetchStats() {
  WireRequest req;
  req.op = WireOp::kStats;
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  WireServerStats stats;
  if (!ParseServerStats(r, &stats) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return stats;
}

Result<MetricsSnapshot> AtomFsClient::FetchMetrics() {
  WireRequest req;
  req.op = WireOp::kMetrics;
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  MetricsSnapshot snap;
  if (!ParseMetricsSnapshot(r, &snap) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return snap;
}

Result<std::string> AtomFsClient::FetchTraceJson() {
  WireRequest req;
  req.op = WireOp::kTraceDump;
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  std::string json;
  if (!r.Str(&json, kWireMaxFrameBytes) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return json;
}

Result<std::string> AtomFsClient::FetchPrometheus() {
  WireRequest req;
  req.op = WireOp::kProm;
  auto body = Call(req);
  if (!body.ok()) {
    return body.status();
  }
  WireReader r(*body);
  std::string text;
  if (!r.Str(&text, kWireMaxFrameBytes) || !r.AtEnd()) {
    return Errc::kProto;
  }
  return text;
}

}  // namespace atomfs
