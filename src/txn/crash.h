// Crash-injection harness for the transaction WAL: the durability
// refinement checker.
//
// The claim under test: for a WAL produced by a TxnManager, killing the log
// at ANY byte — every record boundary, mid-record (torn write), or with a
// flipped byte (bit rot) — and recovering yields a state structurally equal
// to replaying some PREFIX of the commit-descriptor sequence on SpecFs, and
// specifically the prefix of length `committed` that recovery itself
// reports. That is durability refinement at transaction granularity: no
// committed unit is half-applied, no uncommitted op is ever visible.
//
// BuildCrashMix produces a seeded, deterministic mix of committed
// transactions, aborted transactions, and auto-committed direct ops through
// a real TxnManager journaling to disk, and returns the golden commit order.
// VerifyCrashConsistency then sweeps the crash matrix: for each crash point
// it recovers a fresh concrete AtomFs from the truncated/corrupted bytes and
// compares its abstract snapshot against the golden prefix state.

#ifndef ATOMFS_SRC_TXN_CRASH_H_
#define ATOMFS_SRC_TXN_CRASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/txn/txn.h"
#include "src/util/status.h"

namespace atomfs {

struct CrashMixOptions {
  uint64_t seed = 1;
  // Transactions to run (committed or aborted per `abort_percent`).
  int txns = 24;
  int ops_per_txn = 4;
  // Auto-committed direct ops sprinkled between transactions.
  int direct_ops = 12;
  // Percentage of transactions that abort instead of committing.
  int abort_percent = 25;
};

struct CrashMix {
  // Golden commit order (transactions at their commit point, direct ops at
  // their execution point).
  std::vector<CommitDescriptor> commit_log;
  // The complete WAL bytes the mix produced.
  std::string wal_bytes;
};

// Runs the seeded mix through TxnManager journaling to `wal_path` (the file
// is created; an existing file is appended to, so pass a fresh path).
Result<CrashMix> BuildCrashMix(const std::string& wal_path, const CrashMixOptions& options);

struct CrashVerdict {
  uint64_t crash_points = 0;  // truncation + corruption cases checked
  uint64_t divergences = 0;   // cases where recovery broke prefix consistency
  uint64_t max_committed = 0; // largest recovered prefix observed
  std::vector<std::string> failures;  // one line per divergence (capped)
  // With CrashSweepOptions::bundle_on_divergence, one formatted post-mortem
  // bundle (src/crlh/bundle.h) per divergence, capped at 4: the golden
  // prefix history plus a witness read of the first differing path, with
  // the recovered state's answer recorded as the concrete result — so
  // `atomfs_verify --bundle` / ReplayBundle reproduces the durability
  // violation offline, the same way monitor violations are bundled.
  std::vector<std::string> bundles;
};

struct CrashSweepOptions {
  bool record_boundaries = true;  // cut exactly at each record's end
  bool mid_record = true;         // cut inside each record (torn write)
  bool corruption = true;         // flip one byte per record (checksum test)
  // Cap on crash points actually tested; 0 = unlimited. When capped, points
  // are sampled evenly across the log so the tail is still covered.
  uint64_t max_points = 0;
  // Turn each divergence into a replayable bundle (CrashVerdict::bundles).
  bool bundle_on_divergence = false;
};

// Sweeps the crash matrix over `wal_bytes` against the golden `commit_log`.
// Every case recovers into a fresh AtomFs and compares the recovered
// abstract state to the golden prefix state of length `committed`.
CrashVerdict VerifyCrashConsistency(std::string_view wal_bytes,
                                    const std::vector<CommitDescriptor>& commit_log,
                                    const CrashSweepOptions& options = {});

// Replays the first `count` commit descriptors onto a fresh SpecFs — the
// abstract prefix state recovery must match.
SpecFs PrefixState(const std::vector<CommitDescriptor>& commit_log, uint64_t count);

}  // namespace atomfs

#endif  // ATOMFS_SRC_TXN_CRASH_H_
