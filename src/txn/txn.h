// TxnManager: atomic multi-op transactions over any FileSystem, with
// optimistic concurrency control and write-ahead journaling.
//
// The paper verifies per-op linearizability; this layer adds the two things
// the paper's §6 defers — durability and multi-op atomicity — as a decorator
// above the verified FS, leaving the lock-coupling artifact untouched:
//
//   * TxnManager is itself a FileSystem. Ops called directly on it are
//     auto-committed single-op transactions: they run on the inner FS under
//     the commit lock, are journaled as txid-0 WAL records, and bump the
//     conflict clocks so open transactions observe them.
//   * Begin() clones the committed abstract state (a SpecFs mirror of the
//     inner FS) into a private per-transaction view: snapshot isolation with
//     read-your-writes. Ops applied via Apply() execute against the view and
//     are buffered; nothing touches the real FS until commit.
//   * Commit() is classic OCC backward validation under one commit mutex:
//     the transaction's path footprint (entries read/written, subtrees
//     moved) is checked against two version maps — per-entry versions, and
//     per-subtree versions that rename/exchange/unlink/rmdir bump so a moved
//     ancestor invalidates everything beneath it. A stale footprint returns
//     kTxConflict and the transaction rolls back whole. A valid transaction
//     is dry-run on a copy of the mirror (all-or-nothing: any op failure
//     aborts with that status before anything is applied), then journaled as
//     begin / op* / commit records and flushed — the commit point — and only
//     then applied to the inner FS and the mirror.
//
// Durability refinement (checked by src/txn/crash.h): because the WAL flush
// precedes application and recovery replays whole committed transactions in
// commit order, the state recovered after a crash at ANY byte of the log
// equals replaying a prefix of the commit descriptor sequence on SpecFs —
// incomplete transactions are never partially visible.
//
// The commit point is honest about failure: a WAL append/flush (or, with
// Options::fsync_commits, fdatasync) that fails reports kIo to the
// committing client BEFORE anything is applied, and fail-stops the journal —
// every later mutating call answers kIo too, because a journal that dropped
// bytes can no longer prove anything about durability. Checkpointing
// (TakeCheckpoint / the checkpoint_* thresholds) compacts the log by
// materializing the committed mirror into a sidecar file and rotating the
// WAL, so recovery cost is bounded by the checkpoint interval
// (src/journal/checkpoint.h has the protocol).
//
// Commit order == lock acquisition order == WAL record order, so the commit
// descriptor list is a legal linearization of the transactional history at
// transaction granularity; the ghost events (kTxnBegin/Commit/Abort) fold
// that order into the same flight recorder the CRL-H monitor writes.

#ifndef ATOMFS_SRC_TXN_TXN_H_
#define ATOMFS_SRC_TXN_TXN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/afs/op.h"
#include "src/afs/spec_fs.h"
#include "src/journal/checkpoint.h"
#include "src/journal/wal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/server/txn_host.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

using TxnId = uint64_t;

// One committed atomic unit, in commit order: a transaction (txid > 0) or an
// auto-committed direct op (txid == 0). The crash harness replays prefixes
// of this sequence as the durability refinement oracle.
struct CommitDescriptor {
  TxnId txid = 0;
  uint64_t commit_seq = 0;  // position in commit order, from 0
  std::vector<OpCall> ops;
};

struct TxnStatsSnapshot {
  uint64_t begins = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;     // explicit aborts (not conflicts)
  uint64_t conflicts = 0;  // commits rejected by validation / dry-run
};

class TxnManager : public FileSystem, public TxnHost {
 public:
  struct Options {
    // Committed state; every mutation flows through here. Required.
    FileSystem* inner = nullptr;
    // WAL path; empty disables journaling (transactions stay atomic and
    // isolated, just not durable).
    std::string wal_path;
    // Optional txn.* metrics (txn.begins / commits / aborts / conflicts,
    // txn.commit.ops, txn.commit.latency_ns).
    MetricsRegistry* metrics = nullptr;
    // Optional ghost-event sink (kTxnBegin / kTxnCommit / kTxnAbort).
    TraceRing* trace_ring = nullptr;
    // Abstract mirror seed; must be structurally equal to `inner`'s state
    // (e.g. AtomFs::SnapshotSpec() after WAL recovery). Default: empty FS.
    SpecFs initial;
    // Record every committed unit in commit_log() — required by the crash
    // harness and tests, unbounded memory on a long-running server.
    bool record_commit_log = false;
    // First transaction id to hand out. When reopening an existing WAL this
    // MUST be above every txid already in the log
    // (WalRecoveryStats::max_txid + 1): a discarded transaction's begin
    // record survives in the clean prefix, and reusing its id would read as
    // a duplicate bracket on the next recovery. Values below 1 clamp to 1.
    TxnId first_txid = 1;
    // fdatasync the WAL at every commit point: commits then survive power
    // loss, not just a process kill. Off by default — tests and the crash
    // harness model page-cache loss by cutting the log at byte offsets,
    // which the cheap mode's semantics match exactly.
    bool fsync_commits = false;
    // Automatic checkpoint triggers: take a checkpoint when the live WAL
    // generation exceeds this many bytes / this many committed units since
    // the last checkpoint. 0 disables that trigger; Checkpoint() always
    // works explicitly.
    uint64_t checkpoint_bytes = 0;
    uint64_t checkpoint_units = 0;
    // Id for the next checkpoint. When reopening a journal this MUST be
    // above every generation on disk (JournalRecoveryStats::generation + 1)
    // so checkpoint ids stay monotonic. Values below 1 clamp to 1.
    uint64_t first_ckpt_id = 1;
    // Committed units already folded into the recovered state
    // (JournalRecoveryStats::committed_units) — carried into checkpoint
    // headers so the cumulative count survives compaction.
    uint64_t recovered_units = 0;
    // Forwarded to the WalWriter (fault injection in tests).
    WalWriterOptions wal;
  };

  explicit TxnManager(Options options);
  ~TxnManager() override;

  // --- transaction interface (also the TxnHost the server drives) ----------
  Result<TxnId> Begin();
  Status Commit(TxnId id);
  Status Abort(TxnId id);
  // Runs one op inside the transaction, against its private view. Reads see
  // the transaction's own writes; failed ops are reported but not buffered.
  OpResult Apply(TxnId id, const OpCall& call);

  Result<uint64_t> TxBegin() override { return Begin(); }
  Status TxCommit(uint64_t txid) override { return Commit(txid); }
  Status TxAbort(uint64_t txid) override { return Abort(txid); }
  OpResult TxApply(uint64_t txid, const OpCall& call) override { return Apply(txid, call); }
  Status TxCheckpoint() override { return TakeCheckpoint(); }

  // Checkpoints + compacts the journal now: writes the committed mirror as
  // a checkpoint file (write-temp, fdatasync, atomic rename) and rotates
  // the WAL to a fresh generation. kInval without a journal; kIo if the
  // checkpoint could not be written (journal unaffected) or the rotation
  // failed (journal fail-stopped).
  Status TakeCheckpoint();

  // --- FileSystem interface: auto-committed direct ops ---------------------
  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Exchange;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Read;
  using FileSystem::ReadDir;
  using FileSystem::Rename;
  using FileSystem::Rmdir;
  using FileSystem::Stat;
  using FileSystem::Truncate;
  using FileSystem::Unlink;
  using FileSystem::Write;

  // --- introspection -------------------------------------------------------
  TxnStatsSnapshot stats() const;
  // Copy of the commit-order descriptor list (empty unless
  // Options::record_commit_log).
  std::vector<CommitDescriptor> commit_log() const;
  // Open (begun, not yet finished) transactions.
  size_t open_txns() const;
  // True once a journal write failed: the manager is fail-stopped — every
  // mutating call (Begin/Commit/direct ops) answers kIo from then on.
  bool journal_failed() const;
  // Checkpoints taken by this instance (explicit + threshold-triggered).
  uint64_t checkpoints_taken() const;

 private:
  // The path footprint of one op: entries whose version the op depends on,
  // entries it bumps, and subtrees it moves/destroys.
  struct Footprint {
    std::vector<std::string> reads;     // validated only
    std::vector<std::string> writes;    // validated + entry-bumped at commit
    std::vector<std::string> subtrees;  // validated + subtree-bumped at commit
  };
  static Footprint FootprintOf(const OpCall& call);

  struct Txn {
    TxnId id = 0;
    uint64_t begin_clock = 0;  // commit clock at Begin
    SpecFs view;               // private snapshot + own writes
    std::vector<OpCall> writes;
    Footprint footprint;  // union over every applied op
  };

  bool ValidateLocked(const Txn& txn) const;
  void BumpVersionsLocked(const Footprint& fp);
  // Appends + flushes (and optionally fsyncs) the unit's records — the
  // commit point. kIo poisons the writer: the unit is NOT durable and the
  // caller must not apply it anywhere.
  Status LogCommittedLocked(TxnId id, const std::vector<OpCall>& ops);
  void RecordUnitLocked(TxnId id, const std::vector<OpCall>& ops);
  void GhostEvent(TraceEventType type, TxnId id, uint64_t arg, uint64_t aux);
  Status Direct(const OpCall& call);
  Status CheckpointLocked();
  // Threshold check after each committed unit; best-effort (a failed
  // checkpoint write leaves the journal valid, just uncompacted).
  void MaybeCheckpointLocked();
  bool JournalFailedLocked() const { return wal_ != nullptr && !wal_->ok(); }

  FileSystem* inner_;
  std::unique_ptr<WalWriter> wal_;
  std::string wal_path_;
  TraceRing* ring_;
  bool record_commit_log_;
  bool fsync_commits_;
  uint64_t checkpoint_bytes_;
  uint64_t checkpoint_units_;

  mutable std::mutex mu_;
  SpecFs mirror_;
  uint64_t clock_ = 0;
  TxnId next_txid_ = 1;
  uint64_t commit_seq_ = 0;
  uint64_t next_ckpt_id_ = 1;
  uint64_t recovered_units_ = 0;
  uint64_t units_since_ckpt_ = 0;
  uint64_t checkpoints_taken_ = 0;
  std::unordered_map<TxnId, std::unique_ptr<Txn>> open_;
  std::unordered_map<std::string, uint64_t> entry_ver_;
  std::unordered_map<std::string, uint64_t> subtree_ver_;
  std::vector<CommitDescriptor> commit_log_;
  TxnStatsSnapshot stats_;

  Counter m_begins_, m_commits_, m_aborts_, m_conflicts_;
  Counter m_ckpt_count_, m_ckpt_bytes_, m_fsyncs_;
  Histogram m_commit_ops_, m_commit_latency_, m_ckpt_ms_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_TXN_TXN_H_
