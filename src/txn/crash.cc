#include "src/txn/crash.h"

#include <algorithm>
#include <fstream>

#include "src/core/atom_fs.h"
#include "src/crlh/bundle.h"
#include "src/util/check.h"
#include "src/util/rand.h"
#include "src/vfs/path.h"

namespace atomfs {

namespace {

Path MustParse(const std::string& s) {
  auto p = ParsePath(s);
  ATOMFS_CHECK(p.ok());
  return *p;
}

std::vector<std::byte> BytesOf(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

}  // namespace

Result<CrashMix> BuildCrashMix(const std::string& wal_path, const CrashMixOptions& options) {
  AtomFs fs;
  TxnManager::Options topt;
  topt.inner = &fs;
  topt.wal_path = wal_path;
  topt.record_commit_log = true;
  TxnManager txn(topt);
  Rng rng(options.seed);

  // Base directories, as auto-committed direct ops (they are part of the
  // golden commit order too).
  const int kDirs = 3;
  for (int i = 0; i < kDirs; ++i) {
    if (!txn.Mkdir(MustParse("/d" + std::to_string(i))).ok()) {
      return Errc::kIo;
    }
  }

  int name_counter = 0;
  auto fresh_file = [&] {
    return "/d" + std::to_string(rng.Below(kDirs)) + "/f" + std::to_string(name_counter++);
  };
  std::vector<std::string> committed_files;
  int direct_budget = options.direct_ops;

  for (int t = 0; t < options.txns; ++t) {
    // Sprinkle direct ops between transactions so the log interleaves
    // txid-0 records with transactional brackets.
    if (direct_budget > 0 && rng.Chance(1, 2)) {
      --direct_budget;
      if (!committed_files.empty() && rng.Chance(1, 2)) {
        const std::string& f = committed_files[rng.Below(committed_files.size())];
        (void)txn.Write(MustParse(f), 0, BytesOf("direct:" + std::to_string(t)));
      } else {
        const std::string f = fresh_file();
        if (txn.Mknod(MustParse(f)).ok()) {
          committed_files.push_back(f);
        }
      }
    }

    const TxnId id = *txn.Begin();
    // Track the file set this transaction would leave behind, so later ops
    // in the mix mostly succeed; adopted only if the commit lands.
    std::vector<std::string> local_files = committed_files;
    for (int o = 0; o < options.ops_per_txn; ++o) {
      const uint64_t pick = rng.Below(10);
      if (pick < 4 || local_files.empty()) {
        const std::string f = fresh_file();
        if (txn.Apply(id, OpCall::MknodOf(MustParse(f))).status.ok()) {
          local_files.push_back(f);
        }
      } else if (pick < 7) {
        const std::string& f = local_files[rng.Below(local_files.size())];
        (void)txn.Apply(id, OpCall::WriteOf(MustParse(f), 0,
                                            BytesOf("txn" + std::to_string(id) + ":" +
                                                    std::to_string(o))));
      } else if (pick < 9) {
        const size_t idx = rng.Below(local_files.size());
        const std::string dst = fresh_file();
        if (txn.Apply(id, OpCall::RenameOf(MustParse(local_files[idx]), MustParse(dst)))
                .status.ok()) {
          local_files[idx] = dst;
        }
      } else {
        const size_t idx = rng.Below(local_files.size());
        if (txn.Apply(id, OpCall::UnlinkOf(MustParse(local_files[idx]))).status.ok()) {
          local_files.erase(local_files.begin() + static_cast<ptrdiff_t>(idx));
        }
      }
    }
    if (static_cast<int>(rng.Below(100)) < options.abort_percent) {
      if (!txn.Abort(id).ok()) {
        return Errc::kIo;
      }
    } else {
      if (!txn.Commit(id).ok()) {
        // Sequential mix: commits must not conflict.
        return Errc::kIo;
      }
      committed_files = std::move(local_files);
    }
  }

  CrashMix mix;
  mix.commit_log = txn.commit_log();
  std::ifstream in(wal_path, std::ios::binary);
  if (!in) {
    return Errc::kNoEnt;
  }
  mix.wal_bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
  return mix;
}

SpecFs PrefixState(const std::vector<CommitDescriptor>& commit_log, uint64_t count) {
  SpecFs state;
  for (uint64_t i = 0; i < count && i < commit_log.size(); ++i) {
    for (const OpCall& call : commit_log[i].ops) {
      const Status st = RunOp(state, call).status;
      ATOMFS_CHECK(st.ok() && "golden commit log must replay cleanly on SpecFs");
    }
  }
  return state;
}

namespace {

// Every path in `fs`, depth-first (directories before their children).
void ListPaths(FileSystem& fs, const std::string& dir, std::vector<std::string>& out) {
  auto res = RunOp(fs, OpCall::ReadDirOf(MustParse(dir)));
  if (!res.status.ok()) {
    return;
  }
  for (const DirEntry& e : res.entries) {
    const std::string child = (dir == "/" ? "" : dir) + "/" + e.name;
    out.push_back(child);
    if (e.type == FileType::kDir) {
      ListPaths(fs, child, out);
    }
  }
}

// A read whose answer distinguishes `recovered` from `golden`: a Stat of the
// first path whose existence/type/size differs, falling back to a Read of
// the first file whose content differs. Returns false when the two states
// are indistinguishable through the read API (then no witness exists).
bool FindWitness(FileSystem& recovered, FileSystem& golden, OpCall& witness_call,
                 OpResult& recovered_answer) {
  std::vector<std::string> paths;
  ListPaths(recovered, "/", paths);
  ListPaths(golden, "/", paths);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  for (const std::string& p : paths) {
    const OpCall stat = OpCall::StatOf(MustParse(p));
    OpResult from_recovered = RunOp(recovered, stat);
    OpResult from_golden = RunOp(golden, stat);
    if (!ResultsEquivalent(OpKind::kStat, from_recovered, from_golden)) {
      witness_call = stat;
      recovered_answer = std::move(from_recovered);
      return true;
    }
    if (from_golden.status.ok() && from_golden.attr.type == FileType::kFile) {
      const uint64_t len =
          std::max<uint64_t>(from_golden.attr.size, from_recovered.attr.size);
      if (len == 0) {
        continue;
      }
      const OpCall read = OpCall::ReadOf(MustParse(p), 0, len);
      OpResult r = RunOp(recovered, read);
      OpResult g = RunOp(golden, read);
      if (!ResultsEquivalent(OpKind::kRead, r, g)) {
        witness_call = read;
        recovered_answer = std::move(r);
        return true;
      }
    }
  }
  return false;
}

// Packages a divergence as a post-mortem bundle (src/crlh/bundle.h): the
// golden prefix history with its SpecFs results, plus the witness read with
// the RECOVERED state's answer as the recorded concrete result. Replaying
// the bundle runs that history on a fresh SpecFs and trips on the witness —
// the durability violation, reproduced offline like a monitor violation.
std::string BuildDivergenceBundle(const std::vector<CommitDescriptor>& commit_log,
                                  uint64_t committed, FileSystem& recovered,
                                  const std::string& message) {
  PostMortemBundle bundle;
  bundle.message = message;
  SpecFs golden;
  uint64_t abs_seq = 0;
  for (uint64_t i = 0; i < committed && i < commit_log.size(); ++i) {
    for (const OpCall& call : commit_log[i].ops) {
      BundleHistoryEntry entry;
      entry.tid = static_cast<Tid>(commit_log[i].txid);
      entry.abs_seq = abs_seq++;
      entry.call = call;
      entry.concrete = RunOp(golden, call);
      bundle.history.push_back(std::move(entry));
    }
  }
  OpCall witness = OpCall::StatOf(MustParse("/"));
  OpResult answer;
  if (FindWitness(recovered, golden, witness, answer)) {
    BundleHistoryEntry entry;
    entry.tid = 0;
    entry.abs_seq = abs_seq;
    entry.call = witness;
    entry.concrete = std::move(answer);
    bundle.history.push_back(std::move(entry));
  }
  bundle.seq = abs_seq;
  return FormatBundle(bundle);
}

// One recovery + comparison. Returns true when the recovered state equals
// the golden prefix of the length recovery itself reports.
bool CheckOneCase(std::string_view bytes, const std::vector<SpecFs>& prefix_states,
                  const std::vector<CommitDescriptor>& commit_log,
                  const CrashSweepOptions& options, const char* kind, uint64_t detail,
                  CrashVerdict& verdict) {
  AtomFs recovered;
  const WalRecoveryStats stats = RecoverWalBytes(bytes, recovered);
  ++verdict.crash_points;
  verdict.max_committed = std::max(verdict.max_committed, stats.committed);
  bool ok = stats.committed < prefix_states.size();
  if (ok) {
    ok = StructurallyEqual(recovered.SnapshotSpec(), prefix_states[stats.committed]);
  }
  if (!ok) {
    ++verdict.divergences;
    const std::string message = std::string(kind) + " case at " + std::to_string(detail) +
                                ": recovered state does not match golden prefix of " +
                                std::to_string(stats.committed) + " committed units";
    if (verdict.failures.size() < 32) {
      verdict.failures.push_back(message);
    }
    if (options.bundle_on_divergence && verdict.bundles.size() < 4) {
      verdict.bundles.push_back(
          BuildDivergenceBundle(commit_log, stats.committed, recovered, message));
    }
  }
  return ok;
}

}  // namespace

CrashVerdict VerifyCrashConsistency(std::string_view wal_bytes,
                                    const std::vector<CommitDescriptor>& commit_log,
                                    const CrashSweepOptions& options) {
  CrashVerdict verdict;
  // Golden prefix states, incrementally: states[k] = first k committed units.
  std::vector<SpecFs> prefix_states;
  prefix_states.reserve(commit_log.size() + 1);
  prefix_states.emplace_back();
  for (const CommitDescriptor& unit : commit_log) {
    SpecFs next = prefix_states.back();
    for (const OpCall& call : unit.ops) {
      const Status st = RunOp(next, call).status;
      ATOMFS_CHECK(st.ok() && "golden commit log must replay cleanly on SpecFs");
    }
    prefix_states.push_back(std::move(next));
  }

  const WalScan scan = ScanWalBytes(wal_bytes);

  // Truncation points: the empty log, every record boundary, and (optional)
  // cuts inside each record — one tearing the header, one tearing the
  // payload.
  std::vector<uint64_t> cuts;
  cuts.push_back(0);
  uint64_t prev_end = 0;
  for (const WalRecord& rec : scan.records) {
    if (options.record_boundaries) {
      cuts.push_back(rec.end_offset);
    }
    if (options.mid_record) {
      cuts.push_back(prev_end + 1);                              // torn header
      cuts.push_back(prev_end + kWalHeaderBytes +                // torn payload
                     (rec.end_offset - prev_end - kWalHeaderBytes) / 2);
    }
    prev_end = rec.end_offset;
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  if (options.max_points > 0 && cuts.size() > options.max_points) {
    std::vector<uint64_t> sampled;
    sampled.reserve(options.max_points);
    for (uint64_t i = 0; i < options.max_points; ++i) {
      sampled.push_back(cuts[i * (cuts.size() - 1) / (options.max_points - 1)]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    cuts = std::move(sampled);
  }
  for (uint64_t cut : cuts) {
    CheckOneCase(wal_bytes.substr(0, cut), prefix_states, commit_log, options, "truncate",
                 cut, verdict);
  }

  // Corruption points: flip one byte in the middle of each record; the
  // checksum must cut the clean prefix at that record.
  if (options.corruption) {
    prev_end = 0;
    uint64_t tested = 0;
    for (const WalRecord& rec : scan.records) {
      const uint64_t flip_at = prev_end + (rec.end_offset - prev_end) / 2;
      prev_end = rec.end_offset;
      if (options.max_points > 0 && tested >= options.max_points) {
        break;
      }
      ++tested;
      std::string corrupted(wal_bytes);
      corrupted[flip_at] = static_cast<char>(~corrupted[flip_at]);
      CheckOneCase(corrupted, prefix_states, commit_log, options, "corrupt", flip_at,
                   verdict);
    }
  }
  return verdict;
}

}  // namespace atomfs
