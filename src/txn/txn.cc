#include "src/txn/txn.h"

#include <chrono>
#include <utility>

#include "src/util/check.h"
#include "src/util/tid.h"
#include "src/workload/trace.h"

namespace atomfs {

namespace {

// Reads never buffer; everything else is a state mutation that must be
// journaled and replayed.
bool IsMutation(OpKind kind) {
  return kind != OpKind::kStat && kind != OpKind::kReadDir && kind != OpKind::kRead;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// "/", "/a", "/a/b" for "/a/b" — every subtree a path is inside of.
void AppendAncestors(const std::string& path, std::vector<std::string>& out) {
  out.push_back("/");
  for (size_t pos = path.find('/', 1); pos != std::string::npos; pos = path.find('/', pos + 1)) {
    out.push_back(path.substr(0, pos));
  }
  if (path != "/") {
    out.push_back(path);
  }
}

}  // namespace

TxnManager::TxnManager(Options options)
    : inner_(options.inner),
      wal_path_(options.wal_path),
      ring_(options.trace_ring),
      record_commit_log_(options.record_commit_log),
      fsync_commits_(options.fsync_commits),
      checkpoint_bytes_(options.checkpoint_bytes),
      checkpoint_units_(options.checkpoint_units),
      mirror_(std::move(options.initial)),
      next_txid_(options.first_txid < 1 ? 1 : options.first_txid),
      next_ckpt_id_(options.first_ckpt_id < 1 ? 1 : options.first_ckpt_id),
      recovered_units_(options.recovered_units) {
  ATOMFS_CHECK(inner_ != nullptr);
  if (!options.wal_path.empty()) {
    wal_ = std::make_unique<WalWriter>(options.wal_path, std::move(options.wal));
    ATOMFS_CHECK(wal_->ok() && "cannot open transaction WAL for append");
  }
  if (options.metrics != nullptr) {
    m_begins_ = options.metrics->GetCounter("txn.begins");
    m_commits_ = options.metrics->GetCounter("txn.commits");
    m_aborts_ = options.metrics->GetCounter("txn.aborts");
    m_conflicts_ = options.metrics->GetCounter("txn.conflicts");
    m_commit_ops_ = options.metrics->GetHistogram("txn.commit.ops");
    m_commit_latency_ = options.metrics->GetHistogram("txn.commit.latency_ns");
    m_ckpt_count_ = options.metrics->GetCounter("journal.checkpoint.count");
    m_ckpt_bytes_ = options.metrics->GetCounter("journal.checkpoint.bytes");
    m_fsyncs_ = options.metrics->GetCounter("journal.fsync.count");
    m_ckpt_ms_ = options.metrics->GetHistogram("journal.checkpoint.ms");
  }
}

TxnManager::~TxnManager() = default;

void TxnManager::GhostEvent(TraceEventType type, TxnId id, uint64_t arg, uint64_t aux) {
  if (ring_ == nullptr) {
    return;
  }
  TraceEvent e;
  e.tid = CurrentTid();
  e.type = type;
  e.ino = id;
  e.arg = arg;
  e.aux = aux;
  ring_->Append(e);
}

// --- footprints --------------------------------------------------------------

TxnManager::Footprint TxnManager::FootprintOf(const OpCall& call) {
  Footprint fp;
  const std::string a = call.a.ToString();
  auto parent_of = [](const Path& p) { return p.IsRoot() ? std::string("/") : p.Dir().ToString(); };
  switch (call.kind) {
    case OpKind::kMkdir:
    case OpKind::kMknod:
      // Creation depends on (and changes) the entry and its parent — a
      // parent-entry bump is also how sibling-set changes (e.g. rmdir
      // emptiness) are observed by other transactions.
      fp.writes = {a, parent_of(call.a)};
      break;
    case OpKind::kRmdir:
    case OpKind::kUnlink:
      fp.writes = {a, parent_of(call.a)};
      fp.subtrees = {a};
      break;
    case OpKind::kRename:
    case OpKind::kExchange: {
      const std::string b = call.b.ToString();
      fp.writes = {a, parent_of(call.a), b, parent_of(call.b)};
      fp.subtrees = {a, b};
      break;
    }
    case OpKind::kWrite:
    case OpKind::kTruncate:
      fp.writes = {a};
      break;
    case OpKind::kStat:
    case OpKind::kRead:
    case OpKind::kReadDir:
      fp.reads = {a};
      break;
  }
  return fp;
}

bool TxnManager::ValidateLocked(const Txn& txn) const {
  // Backward validation: every path the transaction touched must be
  // unchanged since its snapshot. An entry changed if its own version moved;
  // it also (transitively) changed if any ancestor subtree was moved or
  // destroyed, which the subtree map records without enumerating
  // descendants.
  auto entry_fresh = [&](const std::string& p) {
    auto it = entry_ver_.find(p);
    return it == entry_ver_.end() || it->second <= txn.begin_clock;
  };
  auto subtree_fresh = [&](const std::string& p) {
    std::vector<std::string> chain;
    AppendAncestors(p, chain);
    for (const std::string& anc : chain) {
      auto it = subtree_ver_.find(anc);
      if (it != subtree_ver_.end() && it->second > txn.begin_clock) {
        return false;
      }
    }
    return true;
  };
  for (const auto* set : {&txn.footprint.reads, &txn.footprint.writes, &txn.footprint.subtrees}) {
    for (const std::string& p : *set) {
      if (!entry_fresh(p) || !subtree_fresh(p)) {
        return false;
      }
    }
  }
  return true;
}

void TxnManager::BumpVersionsLocked(const Footprint& fp) {
  ++clock_;
  for (const std::string& p : fp.writes) {
    entry_ver_[p] = clock_;
  }
  for (const std::string& p : fp.subtrees) {
    subtree_ver_[p] = clock_;
  }
}

Status TxnManager::LogCommittedLocked(TxnId id, const std::vector<OpCall>& ops) {
  if (wal_ == nullptr) {
    return Status::Ok();
  }
  if (id != 0) {
    wal_->Append(WalRecordType::kBegin, id, {});
  }
  for (const OpCall& call : ops) {
    wal_->Append(WalRecordType::kOp, id, FormatTraceLine(call));
  }
  if (id != 0) {
    wal_->Append(WalRecordType::kCommit, id, {});
  }
  // One flush (or fdatasync) per unit: the durability point. A crash before
  // this leaves no trace of the unit (or a torn tail recovery discards); a
  // crash after it replays the unit whole. Appends only buffer, so checking
  // the flush checks them all; a failure means the unit may be torn on disk
  // and the writer is now poisoned — the caller must surface kIo and apply
  // nothing.
  Status s = wal_->Flush();
  if (s.ok() && fsync_commits_) {
    s = wal_->Fsync();
    if (s.ok()) {
      m_fsyncs_.Inc();
    }
  }
  return s.ok() ? Status::Ok() : Status(Errc::kIo);
}

void TxnManager::RecordUnitLocked(TxnId id, const std::vector<OpCall>& ops) {
  if (record_commit_log_) {
    commit_log_.push_back(CommitDescriptor{id, commit_seq_, ops});
  }
  ++commit_seq_;
  ++units_since_ckpt_;
}

// --- checkpointing -----------------------------------------------------------

Status TxnManager::CheckpointLocked() {
  if (wal_ == nullptr) {
    return Status(Errc::kInval);
  }
  if (!wal_->ok()) {
    return Status(Errc::kIo);  // fail-stopped journal: nothing to trust
  }
  const uint64_t t0 = NowNs();
  const uint64_t id = next_ckpt_id_;
  GhostEvent(TraceEventType::kCkptBegin, id, 0, 0);
  // The mirror IS the committed state (the durability refinement keeps it
  // equal to replaying the log), so materializing it as a recreating op
  // sequence is exactly "the log, compacted".
  const auto ckpt =
      BuildCheckpoint(mirror_, id, next_txid_ - 1, recovered_units_ + commit_seq_);
  auto wrote = WriteCheckpointFile(wal_path_, ckpt);
  if (!wrote.ok()) {
    // Not taken: the sidecar temp never became the checkpoint, and the live
    // WAL still covers everything. The journal stays healthy.
    return wrote.status();
  }
  // The checkpoint is durably in place; retire the log bytes it covers.
  Status s = wal_->Rotate(id);
  if (!s.ok()) {
    return Status(Errc::kIo);  // writer poisoned itself
  }
  ++next_ckpt_id_;
  units_since_ckpt_ = 0;
  ++checkpoints_taken_;
  m_ckpt_count_.Inc();
  m_ckpt_bytes_.Inc(*wrote);
  m_ckpt_ms_.Record((NowNs() - t0) / 1000000);
  GhostEvent(TraceEventType::kCkptEnd, id, ckpt.ops.size(), *wrote);
  return Status::Ok();
}

void TxnManager::MaybeCheckpointLocked() {
  if (wal_ == nullptr || !wal_->ok()) {
    return;
  }
  const bool by_bytes = checkpoint_bytes_ > 0 && wal_->bytes() >= checkpoint_bytes_;
  const bool by_units = checkpoint_units_ > 0 && units_since_ckpt_ >= checkpoint_units_;
  if (by_bytes || by_units) {
    // Best-effort: a failed checkpoint write leaves the journal valid (just
    // uncompacted) and will be retried at the next threshold crossing.
    (void)CheckpointLocked();
  }
}

Status TxnManager::TakeCheckpoint() {
  std::lock_guard<std::mutex> lk(mu_);
  return CheckpointLocked();
}

// --- transaction interface ---------------------------------------------------

Result<TxnId> TxnManager::Begin() {
  std::lock_guard<std::mutex> lk(mu_);
  if (JournalFailedLocked()) {
    return Errc::kIo;  // fail-stopped: no new transactions either
  }
  auto txn = std::make_unique<Txn>();
  txn->id = next_txid_++;
  txn->begin_clock = clock_;
  txn->view = mirror_;  // snapshot isolation: a private deep copy
  const TxnId id = txn->id;
  open_.emplace(id, std::move(txn));
  ++stats_.begins;
  m_begins_.Inc();
  GhostEvent(TraceEventType::kTxnBegin, id, 0, 0);
  return id;
}

OpResult TxnManager::Apply(TxnId id, const OpCall& call) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) {
    OpResult r;
    r.status = Status(Errc::kInval);
    return r;
  }
  Txn& txn = *it->second;
  Footprint fp = FootprintOf(call);
  txn.footprint.reads.insert(txn.footprint.reads.end(), fp.reads.begin(), fp.reads.end());
  txn.footprint.writes.insert(txn.footprint.writes.end(), fp.writes.begin(), fp.writes.end());
  txn.footprint.subtrees.insert(txn.footprint.subtrees.end(), fp.subtrees.begin(),
                                fp.subtrees.end());
  OpResult result = RunOp(txn.view, call);
  if (result.status.ok() && IsMutation(call.kind)) {
    txn.writes.push_back(call);
  }
  return result;
}

Status TxnManager::Abort(TxnId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) {
    return Status(Errc::kInval);
  }
  open_.erase(it);
  ++stats_.aborts;
  m_aborts_.Inc();
  GhostEvent(TraceEventType::kTxnAbort, id, /*conflict=*/0, 0);
  return Status::Ok();
}

Status TxnManager::Commit(TxnId id) {
  const uint64_t t0 = NowNs();
  std::lock_guard<std::mutex> lk(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) {
    return Status(Errc::kInval);
  }
  std::unique_ptr<Txn> txn = std::move(it->second);
  open_.erase(it);  // OCC: a failed commit finishes the transaction too

  if (JournalFailedLocked()) {
    return Status(Errc::kIo);  // fail-stopped journal: nothing commits
  }
  if (!ValidateLocked(*txn)) {
    ++stats_.conflicts;
    m_conflicts_.Inc();
    GhostEvent(TraceEventType::kTxnAbort, id, /*conflict=*/1, 0);
    return Status(Errc::kTxConflict);
  }
  // Read-only transactions validate (their reads were of the committed
  // state) and commit without touching the log or the clocks.
  if (txn->writes.empty()) {
    ++stats_.commits;
    m_commits_.Inc();
    GhostEvent(TraceEventType::kTxnCommit, id, 0, commit_seq_);
    return Status::Ok();
  }
  // Dry-run on a scratch copy of the committed mirror: the buffered ops ran
  // against the snapshot, and validation says their footprint is unchanged,
  // but all-or-nothing demands proof before the first real application.
  SpecFs probe = mirror_;
  for (const OpCall& call : txn->writes) {
    if (Status st = RunOp(probe, call).status; !st.ok()) {
      ++stats_.conflicts;
      m_conflicts_.Inc();
      GhostEvent(TraceEventType::kTxnAbort, id, /*conflict=*/1, 0);
      return st;
    }
  }
  // Commit point (WAL flush / fsync). A log failure reaches the client as
  // kIo with NOTHING applied — the inner FS, the mirror, and the clocks are
  // untouched, so the in-memory state never runs ahead of a log that
  // rejected the unit. The poisoned writer fail-stops all later commits.
  if (Status logged = LogCommittedLocked(id, txn->writes); !logged.ok()) {
    return logged;
  }
  for (const OpCall& call : txn->writes) {
    const Status inner_st = RunOp(*inner_, call).status;
    ATOMFS_CHECK(inner_st.ok() && "validated transactional op failed on inner fs");
    const Status mirror_st = RunOp(mirror_, call).status;
    ATOMFS_CHECK(mirror_st.ok());
  }
  BumpVersionsLocked(txn->footprint);
  GhostEvent(TraceEventType::kTxnCommit, id, txn->writes.size(), commit_seq_);
  RecordUnitLocked(id, txn->writes);
  ++stats_.commits;
  m_commits_.Inc();
  m_commit_ops_.Record(txn->writes.size());
  m_commit_latency_.Record(NowNs() - t0);
  MaybeCheckpointLocked();
  return Status::Ok();
}

// --- direct (auto-committed) ops ---------------------------------------------

Status TxnManager::Direct(const OpCall& call) {
  std::lock_guard<std::mutex> lk(mu_);
  if (JournalFailedLocked()) {
    return Status(Errc::kIo);
  }
  OpResult result = RunOp(*inner_, call);
  if (result.status.ok()) {
    // Unlike Commit, the inner op has already run when the append fails:
    // the caller still gets kIo (the mutation is NOT durable), and the
    // poisoned writer fail-stops every later mutation, confining the
    // one-op divergence between memory and log until restart.
    if (Status logged = LogCommittedLocked(/*id=*/0, {call}); !logged.ok()) {
      return logged;
    }
    const Status mirror_st = RunOp(mirror_, call).status;
    ATOMFS_CHECK(mirror_st.ok() && "mirror diverged from inner fs");
    BumpVersionsLocked(FootprintOf(call));
    RecordUnitLocked(/*id=*/0, {call});
    MaybeCheckpointLocked();
  }
  return result.status;
}

Status TxnManager::Mkdir(const Path& path) { return Direct(OpCall::MkdirOf(path)); }
Status TxnManager::Mknod(const Path& path) { return Direct(OpCall::MknodOf(path)); }
Status TxnManager::Rmdir(const Path& path) { return Direct(OpCall::RmdirOf(path)); }
Status TxnManager::Unlink(const Path& path) { return Direct(OpCall::UnlinkOf(path)); }

Status TxnManager::Rename(const Path& src, const Path& dst) {
  return Direct(OpCall::RenameOf(src, dst));
}

Status TxnManager::Exchange(const Path& a, const Path& b) {
  return Direct(OpCall::ExchangeOf(a, b));
}

Status TxnManager::Truncate(const Path& path, uint64_t size) {
  return Direct(OpCall::TruncateOf(path, size));
}

Result<size_t> TxnManager::Write(const Path& path, uint64_t offset,
                                 std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lk(mu_);
  if (JournalFailedLocked()) {
    return Errc::kIo;
  }
  auto written = inner_->Write(path, offset, data);
  if (written.ok()) {
    const OpCall call =
        OpCall::WriteOf(path, offset, std::vector<std::byte>(data.begin(), data.end()));
    if (Status logged = LogCommittedLocked(/*id=*/0, {call}); !logged.ok()) {
      return logged;  // see Direct: not durable, journal fail-stopped
    }
    const Status mirror_st = RunOp(mirror_, call).status;
    ATOMFS_CHECK(mirror_st.ok() && "mirror diverged from inner fs");
    BumpVersionsLocked(FootprintOf(call));
    RecordUnitLocked(/*id=*/0, {call});
    MaybeCheckpointLocked();
  }
  return written;
}

// Direct reads bypass the commit lock: they are linearized by the inner FS
// itself, participate in no footprint, and must not serialize behind
// commits.
Result<Attr> TxnManager::Stat(const Path& path) { return inner_->Stat(path); }

Result<std::vector<DirEntry>> TxnManager::ReadDir(const Path& path) {
  return inner_->ReadDir(path);
}

Result<size_t> TxnManager::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  return inner_->Read(path, offset, out);
}

// --- introspection -----------------------------------------------------------

TxnStatsSnapshot TxnManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<CommitDescriptor> TxnManager::commit_log() const {
  std::lock_guard<std::mutex> lk(mu_);
  return commit_log_;
}

size_t TxnManager::open_txns() const {
  std::lock_guard<std::mutex> lk(mu_);
  return open_.size();
}

bool TxnManager::journal_failed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return JournalFailedLocked();
}

uint64_t TxnManager::checkpoints_taken() const {
  std::lock_guard<std::mutex> lk(mu_);
  return checkpoints_taken_;
}

}  // namespace atomfs
