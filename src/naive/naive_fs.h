// NaiveFs: the abstract specification run directly as an implementation,
// behind one mutex.
//
// Two roles:
//   * A trivially-correct reference implementation for differential tests.
//   * The stand-in for the paper's slower verified comparator (DFSCQ) in the
//     Figure 10 benchmark. DFSCQ's slowdown comes from Haskell extraction
//     overhead; we model that with a configurable per-operation busy-wait
//     (`overhead_ns`), documented in DESIGN.md / EXPERIMENTS.md.

#ifndef ATOMFS_SRC_NAIVE_NAIVE_FS_H_
#define ATOMFS_SRC_NAIVE_NAIVE_FS_H_

#include <memory>

#include "src/afs/spec_fs.h"
#include "src/sim/executor.h"

namespace atomfs {

class NaiveFs : public FileSystem {
 public:
  struct Options {
    Executor* executor = &Executor::Real();
    // Extra modeled cost per operation (0 = plain reference FS). Under
    // RealExecutor this busy-waits for the given wall time; under
    // SimExecutor it charges virtual work.
    uint64_t overhead_ns = 0;
  };

  NaiveFs();
  explicit NaiveFs(Options options);

  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Read;
  using FileSystem::ReadDir;
  using FileSystem::Exchange;
  using FileSystem::Rename;
  using FileSystem::Rmdir;
  using FileSystem::Stat;
  using FileSystem::Truncate;
  using FileSystem::Unlink;
  using FileSystem::Write;

  // Quiescent-only snapshot (copy of the spec state).
  SpecFs SnapshotSpec() const { return spec_; }

 private:
  void ChargeOverhead();

  Options opts_;
  std::unique_ptr<Lockable> lock_;
  SpecFs spec_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_NAIVE_NAIVE_FS_H_
