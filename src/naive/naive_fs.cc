#include "src/naive/naive_fs.h"

#include <chrono>

namespace atomfs {

NaiveFs::NaiveFs() : NaiveFs(Options{}) {}

NaiveFs::NaiveFs(Options options)
    : opts_(options), lock_(opts_.executor->CreateLock()) {}

void NaiveFs::ChargeOverhead() {
  if (opts_.overhead_ns == 0) {
    return;
  }
  if (opts_.executor == &Executor::Real()) {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(opts_.overhead_ns);
    while (std::chrono::steady_clock::now() < until) {
      // busy-wait: models constant-factor interpreter/extraction overhead
    }
  } else {
    opts_.executor->Work(opts_.overhead_ns);
  }
}

Status NaiveFs::Mkdir(const Path& path) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Mkdir(path);
}

Status NaiveFs::Mknod(const Path& path) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Mknod(path);
}

Status NaiveFs::Rmdir(const Path& path) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Rmdir(path);
}

Status NaiveFs::Unlink(const Path& path) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Unlink(path);
}

Status NaiveFs::Rename(const Path& src, const Path& dst) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Rename(src, dst);
}

Status NaiveFs::Exchange(const Path& a, const Path& b) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Exchange(a, b);
}

Result<Attr> NaiveFs::Stat(const Path& path) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Stat(path);
}

Result<std::vector<DirEntry>> NaiveFs::ReadDir(const Path& path) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.ReadDir(path);
}

Result<size_t> NaiveFs::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Read(path, offset, out);
}

Result<size_t> NaiveFs::Write(const Path& path, uint64_t offset,
                              std::span<const std::byte> data) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Write(path, offset, data);
}

Status NaiveFs::Truncate(const Path& path, uint64_t size) {
  LockGuard g(*lock_);
  ChargeOverhead();
  return spec_.Truncate(path, size);
}

}  // namespace atomfs
