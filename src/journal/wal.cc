#include "src/journal/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>

#include "src/afs/op.h"
#include "src/util/check.h"
#include "src/workload/trace.h"

namespace atomfs {

std::string_view WalRecordTypeName(WalRecordType t) {
  switch (t) {
    case WalRecordType::kBegin:
      return "begin";
    case WalRecordType::kOp:
      return "op";
    case WalRecordType::kCommit:
      return "commit";
    case WalRecordType::kAbort:
      return "abort";
    case WalRecordType::kCkpt:
      return "ckpt";
  }
  return "unknown";
}

namespace {

// FNV-1a/32 over (type, txid, payload) — cheap, byte-order-stable, and more
// than enough to catch torn writes and bit rot in a single record.
uint32_t WalChecksum(WalRecordType type, uint64_t txid, std::string_view payload) {
  uint32_t h = 2166136261u;
  auto mix = [&h](uint8_t b) {
    h ^= b;
    h *= 16777619u;
  };
  mix(static_cast<uint8_t>(type));
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<uint8_t>((txid >> (8 * i)) & 0xff));
  }
  for (char c : payload) {
    mix(static_cast<uint8_t>(c));
  }
  return h;
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

}  // namespace

std::string EncodeWalRecord(WalRecordType type, uint64_t txid, std::string_view payload) {
  std::string out;
  out.reserve(kWalHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kWalMagic));
  out.push_back(static_cast<char>(type));
  PutU64(out, txid);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, WalChecksum(type, txid, payload));
  out.append(payload);
  return out;
}

WalWriter::WalWriter(const std::string& path, WalWriterOptions opts)
    : path_(path), opts_(std::move(opts)) {
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    status_ = Status(Errc::kIo);
    return;
  }
  struct stat st{};
  if (::fstat(fd_, &st) == 0) {
    bytes_ = static_cast<uint64_t>(st.st_size);
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status WalWriter::Poison(Status s) {
  if (status_.ok()) {
    status_ = s;
  }
  return status_;
}

Status WalWriter::WriteAll(std::string_view bytes) {
  if (opts_.write_fault) {
    const int err = opts_.write_fault(bytes);
    if (err != 0) {
      // Model a device that tore the record: land a prefix, then fail.
      const size_t n = std::min(opts_.fault_short_bytes, bytes.size());
      if (n > 0) {
        ssize_t ignored = ::write(fd_, bytes.data(), n);
        (void)ignored;
      }
      errno = err;
      return Status(Errc::kIo);
    }
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status(Errc::kIo);
    }
    if (n == 0) {
      return Status(Errc::kIo);  // no forward progress
    }
    off += static_cast<size_t>(n);
  }
  return Status();
}

Status WalWriter::Append(WalRecordType type, uint64_t txid, std::string_view payload) {
  if (!status_.ok()) {
    return status_;
  }
  if (fd_ < 0) {
    return Poison(Status(Errc::kIo));
  }
  const std::string rec = EncodeWalRecord(type, txid, payload);
  buf_.append(rec);
  bytes_ += rec.size();
  return Status();
}

Status WalWriter::Flush() {
  if (!status_.ok()) {
    return status_;
  }
  if (buf_.empty()) {
    return Status();
  }
  Status s = WriteAll(buf_);
  if (!s.ok()) {
    // The buffer may be partially on disk as a torn record; nothing after
    // this point can be trusted to line up with the file. Fail-stop.
    return Poison(s);
  }
  buf_.clear();
  return Status();
}

Status WalWriter::Fsync() {
  if (!status_.ok()) {
    return status_;
  }
  Status s = Flush();
  if (!s.ok()) {
    return s;
  }
  if (::fdatasync(fd_) != 0) {
    return Poison(Status(Errc::kIo));
  }
  return Status();
}

Status WalWriter::Rotate(uint64_t ckpt_id) {
  Status s = Fsync();
  if (!s.ok()) {
    return s;
  }
  ::close(fd_);
  fd_ = -1;
  const std::string prev = path_ + ".prevwal";
  if (std::rename(path_.c_str(), prev.c_str()) != 0) {
    return Poison(Status(Errc::kIo));
  }
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    return Poison(Status(Errc::kIo));
  }
  bytes_ = 0;
  s = Append(WalRecordType::kCkpt, ckpt_id, {});
  if (!s.ok()) {
    return s;
  }
  // The head marker must be durable before any record lands after it:
  // recovery pairs this file with checkpoint `ckpt_id` by reading it.
  return Fsync();
}

WalScan ScanWalBytes(std::string_view bytes) {
  WalScan scan;
  size_t off = 0;
  while (off < bytes.size()) {
    const size_t remaining = bytes.size() - off;
    if (remaining < kWalHeaderBytes) {
      break;  // torn header
    }
    const char* p = bytes.data() + off;
    if (static_cast<uint8_t>(p[0]) != kWalMagic) {
      break;  // corrupt: lost framing
    }
    const uint8_t raw_type = static_cast<uint8_t>(p[1]);
    if (raw_type < static_cast<uint8_t>(WalRecordType::kBegin) ||
        raw_type > static_cast<uint8_t>(WalRecordType::kCkpt)) {
      break;
    }
    const uint64_t txid = GetU64(p + 2);
    const uint32_t len = GetU32(p + 10);
    const uint32_t crc = GetU32(p + 14);
    if (len > kWalMaxPayloadBytes || remaining - kWalHeaderBytes < len) {
      break;  // absurd length (corrupt) or torn payload
    }
    const std::string_view payload(p + kWalHeaderBytes, len);
    const WalRecordType type = static_cast<WalRecordType>(raw_type);
    if (WalChecksum(type, txid, payload) != crc) {
      break;
    }
    WalRecord rec;
    rec.type = type;
    rec.txid = txid;
    rec.payload = std::string(payload);
    rec.end_offset = off + kWalHeaderBytes + len;
    scan.records.push_back(std::move(rec));
    off += kWalHeaderBytes + len;
  }
  scan.clean_bytes = off;
  scan.torn_tail = off != bytes.size();
  return scan;
}

Result<WalScan> ScanWal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Errc::kNoEnt;
  }
  std::string bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
  return ScanWalBytes(bytes);
}

WalRecoveryStats RecoverWalBytes(std::string_view bytes, FileSystem& fs) {
  const WalScan scan = ScanWalBytes(bytes);
  WalRecoveryStats stats;
  stats.clean_bytes = scan.clean_bytes;
  stats.torn_tail = scan.torn_tail;
  // Transactions open at the current scan position, in begin order. Ops are
  // parsed eagerly (a begin whose ops cannot parse must not count as
  // committed later) but applied only at their commit record.
  std::map<uint64_t, std::vector<OpCall>> open;
  for (const WalRecord& rec : scan.records) {
    if (rec.type != WalRecordType::kCkpt && rec.txid > stats.max_txid) {
      stats.max_txid = rec.txid;
    }
    switch (rec.type) {
      case WalRecordType::kBegin: {
        if (rec.txid == 0 || open.count(rec.txid) != 0) {
          return stats;  // inconsistent bracket: stop at the last good unit
        }
        open[rec.txid];
        break;
      }
      case WalRecordType::kOp: {
        auto call = ParseTraceLine(rec.payload);
        if (!call.ok()) {
          return stats;
        }
        if (rec.txid == 0) {
          // Auto-committed standalone op: durable on its own.
          if (!RunOp(fs, *call).status.ok()) {
            return stats;
          }
          ++stats.applied_ops;
          ++stats.committed;
        } else {
          auto it = open.find(rec.txid);
          if (it == open.end()) {
            return stats;  // op with no begin
          }
          it->second.push_back(std::move(*call));
        }
        break;
      }
      case WalRecordType::kCommit: {
        auto it = open.find(rec.txid);
        if (it == open.end()) {
          return stats;
        }
        // The writer (TxnManager) validates a transaction against committed
        // state before logging it, so every op must re-apply cleanly here;
        // a failure means the log is inconsistent and recovery stops.
        for (const OpCall& call : it->second) {
          if (!RunOp(fs, call).status.ok()) {
            return stats;
          }
          ++stats.applied_ops;
        }
        ++stats.committed;
        open.erase(it);
        break;
      }
      case WalRecordType::kAbort: {
        auto it = open.find(rec.txid);
        if (it == open.end()) {
          return stats;
        }
        open.erase(it);
        ++stats.aborted;
        break;
      }
      case WalRecordType::kCkpt: {
        // Generation marker: states which checkpoint this file's records
        // extend. Replay itself ignores it — RecoverJournal already decided
        // which files to feed here.
        break;
      }
    }
  }
  // Transactions still open at the end of the clean prefix never committed:
  // the crash beat their commit record, so they are invisible — whole.
  stats.discarded = open.size();
  return stats;
}

Result<WalRecoveryStats> RecoverWal(const std::string& path, FileSystem& fs) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Errc::kNoEnt;
  }
  std::string bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
  return RecoverWalBytes(bytes, fs);
}

}  // namespace atomfs
