// JournalFs: operation-log durability for an in-memory file system — the
// paper's deferred future-work direction made concrete.
//
// The paper's §6 limitations: "AtomFS does not support crash safety. Prior
// work [ScaleFS] has proposed to decouple the in-memory file system ... from
// the on-disk file system ... We follow the same design strategies." This
// decorator is that decoupling: the in-memory FS stays the verified
// linearizable artifact, while JournalFs appends every *successful mutating
// operation* to the record-oriented WAL (src/journal/wal.h) as an
// auto-committed op record (txid 0), checksummed and flushed per op.
// Recovery replays the log's longest well-formed record prefix onto a fresh
// file system — a torn tail record (the crash case) is detected by length or
// checksum and dropped. Multi-op atomic transactions over the same log live
// one layer up, in src/txn.
//
// Guarantees (and honest non-guarantees):
//   + Every operation whose log record was durably flushed before a crash is
//     recovered, in order; a torn final record loses exactly that operation.
//   + Recovery is prefix-consistent: the recovered state equals replaying
//     some prefix of the logged history.
//   - The log serializes mutations (one mutex around log append + op), so
//     JournalFs trades the fine-grained scalability for durability; it is a
//     durability adapter, not a scalable journaled FS design.
//   - By default the durability point is Flush (page cache — survives a
//     process kill, not a power loss); Options::fsync_ops upgrades it to
//     fdatasync per op.
//   - Write errors fail-stop: the inner op has already run when the append
//     fails, so the op's caller gets kIo (the mutation is NOT durable and
//     the journal is now poisoned — every later mutation also fails with
//     kIo) even though the in-memory state briefly ran ahead of the log.
//     A poisoned journal's in-memory state must be treated as lost.

#ifndef ATOMFS_SRC_JOURNAL_JOURNAL_FS_H_
#define ATOMFS_SRC_JOURNAL_JOURNAL_FS_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/journal/wal.h"
#include "src/vfs/filesystem.h"
#include "src/workload/trace.h"

namespace atomfs {

class JournalFs : public FileSystem {
 public:
  struct Options {
    // fdatasync the log at every op's commit point (power-loss durability)
    // instead of stopping at Flush (process-kill durability).
    bool fsync_ops = false;
    // Forwarded to the WalWriter (fault injection in tests).
    WalWriterOptions wal;
  };

  // Wraps `inner`, logging to `log_path` (created/appended).
  JournalFs(FileSystem* inner, const std::string& log_path);
  JournalFs(FileSystem* inner, const std::string& log_path, Options opts);
  ~JournalFs() override;

  // Replays the longest well-formed prefix of the log at `log_path` onto
  // `fs`: auto-committed ops in order, plus any committed transactions a
  // TxnManager wrote to the same log. Returns the number of operations
  // recovered (a trailing torn record is dropped silently; a malformed
  // record mid-log stops recovery there).
  static Result<uint64_t> Recover(const std::string& log_path, FileSystem& fs);

  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Exchange;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Read;
  using FileSystem::ReadDir;
  using FileSystem::Rename;
  using FileSystem::Rmdir;
  using FileSystem::Stat;
  using FileSystem::Truncate;
  using FileSystem::Unlink;
  using FileSystem::Write;

  uint64_t logged_ops() const;
  // True once a log write failed: the journal is fail-stopped and every
  // mutation returns kIo.
  bool failed() const;

 private:
  // Runs the mutation under the log lock and appends its record on success.
  Status Logged(const OpCall& call);
  // Flush (+ optional fsync) after an append; kIo fail-stops the journal.
  Status SyncLocked();

  FileSystem* inner_;
  Options opts_;
  mutable std::mutex mu_;
  WalWriter wal_;
  uint64_t logged_ops_ = 0;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_JOURNAL_JOURNAL_FS_H_
