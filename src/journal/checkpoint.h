// Checkpointing and compaction for the WAL (src/journal/wal.h).
//
// A checkpoint is a sidecar text file materializing the committed state as
// an op sequence in the trace-line format (src/workload/trace.h
// ExportAsTrace) — replaying it on an empty file system recreates the state
// exactly, so the trace format doubles as the snapshot format:
//
//   # atomfs-checkpoint v1
//   ckpt <id> <max_txid> <committed_units> <nops>
//   <nops trace lines>
//   sum <fnv1a-64 hex over everything above>
//
// Files, for a journal at path P:
//   P            the live WAL (newest generation)
//   P.prevwal    the previous WAL generation (renamed aside by Rotate)
//   P.ckpt       the newest checkpoint
//   P.ckpt.prev  the previous checkpoint (corruption fallback)
//   P.ckpt.tmp   in-flight checkpoint being written (never read)
//
// Checkpoint write protocol (CheckpointWriter / WriteCheckpointFile):
//   1. write the full checkpoint to P.ckpt.tmp, fdatasync it
//   2. rename P.ckpt -> P.ckpt.prev (keeps the fallback)
//   3. rename P.ckpt.tmp -> P.ckpt (atomic publish)
//   4. WalWriter::Rotate: rename P -> P.prevwal, open a fresh P whose head
//      record is a kCkpt marker carrying <id>, fsync it
// Every step is atomic-or-absent, so a crash anywhere leaves a recoverable
// combination of files.
//
// Recovery procedure (RecoverJournal):
//   1. Parse P.ckpt; on corruption fall back to P.ckpt.prev. Call the id of
//      the checkpoint actually used U (0 = none usable/present).
//   2. Scan P.prevwal and P, reading each file's generation from its kCkpt
//      head record (a file with no marker is generation 0).
//   3. Replay the checkpoint's ops, then the WAL files whose generation
//      is >= U, in [P.prevwal, P] order. A file with generation < U is
//      fully covered by the checkpoint (the rotate that would have retired
//      it was interrupted) and is skipped — this is what makes the
//      post-rename-pre-rotate crash state unambiguous.
//   4. With repair=true, normalize the on-disk files so an O_APPEND writer
//      can safely continue: complete an interrupted rotation, truncate a
//      torn tail (an append after torn bytes would be unreadable forever),
//      and delete a stale P.ckpt.tmp.
//
// Recovery cost is therefore bounded by the records written since the last
// checkpoint, not by total history — the compaction claim the bench
// (bench_server_throughput --txn) re-measures.

#ifndef ATOMFS_SRC_JOURNAL_CHECKPOINT_H_
#define ATOMFS_SRC_JOURNAL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/afs/op.h"
#include "src/afs/spec_fs.h"
#include "src/journal/wal.h"
#include "src/util/status.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

// Sidecar file paths for a journal at `wal_path`.
std::string CheckpointPath(const std::string& wal_path);      // + ".ckpt"
std::string PrevCheckpointPath(const std::string& wal_path);  // + ".ckpt.prev"
std::string TmpCheckpointPath(const std::string& wal_path);   // + ".ckpt.tmp"
std::string PrevWalPath(const std::string& wal_path);         // + ".prevwal"

struct Checkpoint {
  // Monotonic checkpoint id; pairs the checkpoint with the WAL generation
  // whose kCkpt head record carries the same id.
  uint64_t ckpt_id = 0;
  // Largest txid folded into the state — recovery reports
  // max(this, WAL max) so reopened writers keep allocating above it.
  uint64_t max_txid = 0;
  // Cumulative committed units represented by the state (reporting only).
  uint64_t committed_units = 0;
  // The materialized state: replaying these on an empty fs recreates it.
  std::vector<OpCall> ops;
};

// Serializes / parses the checkpoint file format. ParseCheckpoint returns
// kInval on any corruption: bad header, op-count mismatch, unparsable trace
// line, or checksum failure.
std::string FormatCheckpoint(const Checkpoint& c);
Result<Checkpoint> ParseCheckpoint(std::string_view bytes);

// Builds a checkpoint from a committed state snapshot.
Checkpoint BuildCheckpoint(const SpecFs& state, uint64_t ckpt_id, uint64_t max_txid,
                           uint64_t committed_units);

// Runs steps 1-3 of the write protocol (temp + fdatasync + atomic renames)
// and returns the checkpoint file's size in bytes. The caller completes the
// checkpoint with WalWriter::Rotate(c.ckpt_id). kIo on any I/O failure —
// the caller must treat the checkpoint as not taken (the live WAL still
// covers everything).
Result<uint64_t> WriteCheckpointFile(const std::string& wal_path, const Checkpoint& c);

struct JournalRecoveryStats {
  // Aggregated over every WAL file replayed; clean_bytes/torn_tail describe
  // the live file only.
  WalRecoveryStats wal;
  bool used_checkpoint = false;
  // True when P.ckpt existed but was corrupt and P.ckpt.prev was used.
  bool fell_back_to_prev = false;
  uint64_t checkpoint_ops = 0;  // ops replayed from the checkpoint file
  // Newest journal generation seen (used checkpoint id or a WAL head
  // marker, whichever is larger). The next checkpoint must use
  // generation + 1.
  uint64_t generation = 0;
  // max(checkpoint max_txid, WAL max_txid): the txid allocation floor.
  uint64_t max_txid = 0;
  // checkpoint committed_units + units replayed from the WAL files.
  uint64_t committed_units = 0;
};

// Full journal recovery: checkpoint (with fallback) + WAL suffix replay,
// per the procedure above. kNoEnt if no journal file exists at all; kIo if
// the WAL demands a checkpoint generation no readable checkpoint provides
// (both checkpoint files corrupt — unrecoverable, better loud than wrong).
// repair=true additionally normalizes the files on disk (see above) so a
// WalWriter reopened on `wal_path` appends into a clean log.
Result<JournalRecoveryStats> RecoverJournal(const std::string& wal_path, FileSystem& fs,
                                            bool repair = false);

}  // namespace atomfs

#endif  // ATOMFS_SRC_JOURNAL_CHECKPOINT_H_
