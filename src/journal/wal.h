// Record-oriented write-ahead log shared by JournalFs (auto-committed single
// ops) and TxnManager (multi-op transactions, src/txn).
//
// On-disk format — a flat sequence of checksummed binary records:
//
//   record  := u8 magic (0xA7) | u8 type | u64 txid | u32 payload_len
//            | u32 checksum | payload_len bytes
//   type    := 1 begin | 2 op | 3 commit | 4 abort | 5 ckpt
//
// All integers are little-endian. The checksum is FNV-1a/32 over
// (type, txid, payload); `payload_len` is implicitly covered because a
// length mismatch either truncates the payload (checksum fails) or reads
// past the next record's magic byte (checksum fails). An op record's payload
// is one trace line (src/workload/trace.h FormatTraceLine); begin / commit /
// abort records carry no payload.
//
// txid 0 is reserved for auto-committed standalone operations: an op record
// with txid 0 is durable (and replayed at recovery) on its own, with no
// begin/commit bracket — exactly the JournalFs durability contract. Records
// with txid > 0 belong to a transaction and become visible atomically at
// their commit record, in log order; a begin without a commit (the crash
// case) and an aborted group are discarded whole.
//
// A ckpt record (type 5) is a generation marker, not an operation: it is the
// first record of every log file created by WalWriter::Rotate, and its txid
// field carries the id of the checkpoint file that made the preceding
// generation redundant. Replay treats it as a no-op; recovery
// (src/journal/checkpoint.h RecoverJournal) uses it to pair each log file
// with the checkpoint whose state it extends, which is what makes the
// rename-then-rotate checkpoint protocol unambiguous at every crash point.
//
// Durability contract (WalWriter):
//   * Append() buffers in process memory — nothing is durable yet.
//   * Flush() writes the buffer to the file with write(2), checking every
//     byte. After a successful Flush the records survive a process kill
//     (SIGKILL, assert, OOM) but NOT a power failure or kernel panic: the
//     bytes sit in the page cache.
//   * Fsync() calls fdatasync(2). After a successful Fsync the records
//     survive power failure. Callers that promise durability to a client
//     (TxnManager with Options::fsync_commits, atomfsd --journal-fsync)
//     fsync at the commit point; the default cheap mode stops at Flush,
//     which is also what the crash harness models (it cuts at arbitrary
//     byte offsets — exactly the torn states a page-cache loss produces).
//   * Every call returns a Status. The first failure (ENOSPC, EIO, a short
//     write that cannot make progress) POISONS the writer: the failed bytes
//     are untrusted, so every later Append/Flush/Fsync fails with the same
//     kIo status and the owner must fail-stop the journal (no further
//     commits) rather than diverge from the log.
//
// Recovery is prefix-exact: ScanWal parses records until the first torn,
// truncated, or checksum-failed record and ignores everything from there on.
// Cutting the log at ANY byte offset therefore yields a clean prefix of
// complete records — the property tests/crash_injection_test.cc sweeps.
// Checkpoint files bound how much log recovery must replay; the sidecar
// format and the load-newest-fall-back-to-previous procedure live in
// src/journal/checkpoint.h.

#ifndef ATOMFS_SRC_JOURNAL_WAL_H_
#define ATOMFS_SRC_JOURNAL_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

inline constexpr uint8_t kWalMagic = 0xA7;
// Fixed bytes before the payload: magic, type, txid, payload_len, checksum.
inline constexpr size_t kWalHeaderBytes = 1 + 1 + 8 + 4 + 4;
// Parse-time sanity cap on one record's payload; anything larger is treated
// as corruption (the largest legal op payload is one wire write, 4 MiB, plus
// its hex encoding and line framing).
inline constexpr uint32_t kWalMaxPayloadBytes = 16u << 20;

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kOp = 2,
  kCommit = 3,
  kAbort = 4,
  // Generation marker: head record of a post-rotation log file; txid = the
  // id of the checkpoint the file's records are relative to. No payload.
  kCkpt = 5,
};

std::string_view WalRecordTypeName(WalRecordType t);

struct WalRecord {
  WalRecordType type = WalRecordType::kOp;
  uint64_t txid = 0;
  std::string payload;
  // Byte offset one past this record in the log — i.e. the record boundary
  // the crash harness truncates at.
  uint64_t end_offset = 0;
};

// Test hook: consulted by WalWriter before each physical write. Return 0 to
// proceed; return an errno (ENOSPC, EIO, ...) to fail the write after at
// most `fault_short_bytes` of the buffer reached the file — i.e. a torn
// prefix on disk plus an error to the caller, the exact shape of a full
// disk or a dying device.
struct WalWriterOptions {
  std::function<int(std::string_view bytes)> write_fault;
  size_t fault_short_bytes = 0;
};

// Append-side handle over an O_APPEND file descriptor. Not internally
// synchronized: callers (JournalFs, TxnManager) already serialize appends
// under their own mutex. See the durability contract in the header comment.
class WalWriter {
 public:
  // Opens `path` for append, creating it if missing.
  explicit WalWriter(const std::string& path, WalWriterOptions opts = {});
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // False once the open failed or any write poisoned the writer.
  bool ok() const { return fd_ >= 0 && status_.ok(); }
  // The first error, sticky; Status() (ok) while healthy.
  Status status() const { return status_; }

  Status Append(WalRecordType type, uint64_t txid, std::string_view payload);
  Status Flush();
  Status Fsync();

  // Starts a new log generation after checkpoint `ckpt_id` was durably
  // renamed into place: flushes + fsyncs, renames the live file to
  // `path + ".prevwal"` (replacing any older one — its records are covered
  // by the previous checkpoint), opens a fresh file at `path`, and writes +
  // fsyncs a kCkpt head record carrying `ckpt_id`. On failure the writer is
  // poisoned — a half-rotated journal must not accept new records.
  Status Rotate(uint64_t ckpt_id);

  // Bytes in the current log generation (file size + unflushed buffer) —
  // the checkpoint-trigger measure. Reset by Rotate.
  uint64_t bytes() const { return bytes_; }

 private:
  Status WriteAll(std::string_view bytes);
  Status Poison(Status s);

  std::string path_;
  WalWriterOptions opts_;
  int fd_ = -1;
  std::string buf_;
  uint64_t bytes_ = 0;
  Status status_;
};

// Encodes one record (header + payload) — exposed for tests that build
// hand-crafted or deliberately corrupted logs.
std::string EncodeWalRecord(WalRecordType type, uint64_t txid, std::string_view payload);

struct WalScan {
  std::vector<WalRecord> records;
  // Length of the longest well-formed prefix; bytes past it were torn or
  // corrupt and are ignored.
  uint64_t clean_bytes = 0;
  bool torn_tail = false;
};

// Parses the log at `path`. kNoEnt if the file does not exist; an empty file
// scans to an empty record list. Never fails on corrupt bytes — they just
// end the clean prefix.
Result<WalScan> ScanWal(const std::string& path);
// Same, over in-memory bytes (the crash harness scans truncated copies).
WalScan ScanWalBytes(std::string_view bytes);

struct WalRecoveryStats {
  uint64_t applied_ops = 0;  // op records actually replayed onto `fs`
  uint64_t committed = 0;    // atomic units applied: txn commits + auto ops
  uint64_t aborted = 0;      // transactions with an abort record
  uint64_t discarded = 0;    // open transactions dropped at the torn tail
  uint64_t clean_bytes = 0;
  bool torn_tail = false;
  // Largest transaction id seen anywhere in the clean prefix, including
  // dangling begins (ckpt markers excluded — their txid field is a
  // checkpoint id, a separate counter). A writer reopening this log MUST
  // allocate ids above it (TxnManager::Options::first_txid): reusing the id
  // of a discarded transaction would make the reused begin look like a
  // duplicate bracket on the next recovery, which stops the replay at that
  // record.
  uint64_t max_txid = 0;
};

// Replays the log at `path` onto `fs`: auto-committed ops in log order,
// transactions atomically at their commit record's position; ckpt markers
// are skipped. A logged op that fails to re-apply, or a transactional
// record sequence that is internally inconsistent (an op or commit with no
// begin), ends recovery at the last good unit — the log can no longer be
// trusted past that point. Callers with a checkpoint sidecar should use
// RecoverJournal (src/journal/checkpoint.h) instead, which layers
// checkpoint loading + fallback on top of this replay.
Result<WalRecoveryStats> RecoverWal(const std::string& path, FileSystem& fs);
// Same, over in-memory bytes.
WalRecoveryStats RecoverWalBytes(std::string_view bytes, FileSystem& fs);

}  // namespace atomfs

#endif  // ATOMFS_SRC_JOURNAL_WAL_H_
