// Record-oriented write-ahead log shared by JournalFs (auto-committed single
// ops) and TxnManager (multi-op transactions, src/txn).
//
// On-disk format — a flat sequence of checksummed binary records:
//
//   record  := u8 magic (0xA7) | u8 type | u64 txid | u32 payload_len
//            | u32 checksum | payload_len bytes
//   type    := 1 begin | 2 op | 3 commit | 4 abort
//
// All integers are little-endian. The checksum is FNV-1a/32 over
// (type, txid, payload); `payload_len` is implicitly covered because a
// length mismatch either truncates the payload (checksum fails) or reads
// past the next record's magic byte (checksum fails). An op record's payload
// is one trace line (src/workload/trace.h FormatTraceLine); begin / commit /
// abort records carry no payload.
//
// txid 0 is reserved for auto-committed standalone operations: an op record
// with txid 0 is durable (and replayed at recovery) on its own, with no
// begin/commit bracket — exactly the JournalFs durability contract. Records
// with txid > 0 belong to a transaction and become visible atomically at
// their commit record, in log order; a begin without a commit (the crash
// case) and an aborted group are discarded whole.
//
// Recovery is prefix-exact: ScanWal parses records until the first torn,
// truncated, or checksum-failed record and ignores everything from there on.
// Cutting the log at ANY byte offset therefore yields a clean prefix of
// complete records — the property tests/crash_injection_test.cc sweeps.

#ifndef ATOMFS_SRC_JOURNAL_WAL_H_
#define ATOMFS_SRC_JOURNAL_WAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

inline constexpr uint8_t kWalMagic = 0xA7;
// Fixed bytes before the payload: magic, type, txid, payload_len, checksum.
inline constexpr size_t kWalHeaderBytes = 1 + 1 + 8 + 4 + 4;
// Parse-time sanity cap on one record's payload; anything larger is treated
// as corruption (the largest legal op payload is one wire write, 4 MiB, plus
// its hex encoding and line framing).
inline constexpr uint32_t kWalMaxPayloadBytes = 16u << 20;

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kOp = 2,
  kCommit = 3,
  kAbort = 4,
};

std::string_view WalRecordTypeName(WalRecordType t);

struct WalRecord {
  WalRecordType type = WalRecordType::kOp;
  uint64_t txid = 0;
  std::string payload;
  // Byte offset one past this record in the log — i.e. the record boundary
  // the crash harness truncates at.
  uint64_t end_offset = 0;
};

// Append-side handle. Append() buffers; Flush() pushes to the OS — the
// durability point every caller treats as its commit point. Not internally
// synchronized: callers (JournalFs, TxnManager) already serialize appends
// under their own mutex.
class WalWriter {
 public:
  // Opens `path` for append, creating it if missing.
  explicit WalWriter(const std::string& path);

  bool ok() const { return out_.good(); }
  void Append(WalRecordType type, uint64_t txid, std::string_view payload);
  void Flush() { out_.flush(); }

 private:
  std::ofstream out_;
};

// Encodes one record (header + payload) — exposed for tests that build
// hand-crafted or deliberately corrupted logs.
std::string EncodeWalRecord(WalRecordType type, uint64_t txid, std::string_view payload);

struct WalScan {
  std::vector<WalRecord> records;
  // Length of the longest well-formed prefix; bytes past it were torn or
  // corrupt and are ignored.
  uint64_t clean_bytes = 0;
  bool torn_tail = false;
};

// Parses the log at `path`. kNoEnt if the file does not exist; an empty file
// scans to an empty record list. Never fails on corrupt bytes — they just
// end the clean prefix.
Result<WalScan> ScanWal(const std::string& path);
// Same, over in-memory bytes (the crash harness scans truncated copies).
WalScan ScanWalBytes(std::string_view bytes);

struct WalRecoveryStats {
  uint64_t applied_ops = 0;  // op records actually replayed onto `fs`
  uint64_t committed = 0;    // atomic units applied: txn commits + auto ops
  uint64_t aborted = 0;      // transactions with an abort record
  uint64_t discarded = 0;    // open transactions dropped at the torn tail
  uint64_t clean_bytes = 0;
  bool torn_tail = false;
  // Largest transaction id seen anywhere in the clean prefix, including
  // dangling begins. A writer reopening this log MUST allocate ids above it
  // (TxnManager::Options::first_txid): reusing the id of a discarded
  // transaction would make the reused begin look like a duplicate bracket on
  // the next recovery, which stops the replay at that record.
  uint64_t max_txid = 0;
};

// Replays the log at `path` onto `fs`: auto-committed ops in log order,
// transactions atomically at their commit record's position. A logged op
// that fails to re-apply, or a transactional record sequence that is
// internally inconsistent (an op or commit with no begin), ends recovery at
// the last good unit — the log can no longer be trusted past that point.
Result<WalRecoveryStats> RecoverWal(const std::string& path, FileSystem& fs);
// Same, over in-memory bytes.
WalRecoveryStats RecoverWalBytes(std::string_view bytes, FileSystem& fs);

}  // namespace atomfs

#endif  // ATOMFS_SRC_JOURNAL_WAL_H_
