#include "src/journal/checkpoint.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/workload/trace.h"

namespace atomfs {

std::string CheckpointPath(const std::string& wal_path) { return wal_path + ".ckpt"; }
std::string PrevCheckpointPath(const std::string& wal_path) { return wal_path + ".ckpt.prev"; }
std::string TmpCheckpointPath(const std::string& wal_path) { return wal_path + ".ckpt.tmp"; }
std::string PrevWalPath(const std::string& wal_path) { return wal_path + ".prevwal"; }

namespace {

constexpr std::string_view kCheckpointHeader = "# atomfs-checkpoint v1";

// FNV-1a/64 — the whole-file cousin of the WAL's per-record FNV-1a/32.
uint64_t Fnv64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Errc::kNoEnt;
  }
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
}

bool FileExists(const std::string& path) { return ::access(path.c_str(), F_OK) == 0; }

// Persists the renames themselves: without a directory fsync, a power loss
// can roll back a rename even though both files' contents were synced.
void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

Status WriteFileDurably(const std::string& path, std::string_view bytes) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status(Errc::kIo);
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      ::close(fd);
      return Status(Errc::kIo);
    }
    off += static_cast<size_t>(n);
  }
  if (::fdatasync(fd) != 0) {
    ::close(fd);
    return Status(Errc::kIo);
  }
  ::close(fd);
  return Status();
}

}  // namespace

std::string FormatCheckpoint(const Checkpoint& c) {
  std::ostringstream out;
  out << kCheckpointHeader << "\n";
  out << "ckpt " << c.ckpt_id << " " << c.max_txid << " " << c.committed_units << " "
      << c.ops.size() << "\n";
  for (const OpCall& call : c.ops) {
    out << FormatTraceLine(call) << "\n";
  }
  std::string body = out.str();
  char sum[32];
  std::snprintf(sum, sizeof(sum), "sum %016llx\n",
                static_cast<unsigned long long>(Fnv64(body)));
  body += sum;
  return body;
}

Result<Checkpoint> ParseCheckpoint(std::string_view bytes) {
  // The sum line must be the final line; everything before it is covered.
  const size_t sum_at = bytes.rfind("sum ");
  if (sum_at == std::string_view::npos || (sum_at != 0 && bytes[sum_at - 1] != '\n')) {
    return Errc::kInval;
  }
  const std::string_view body = bytes.substr(0, sum_at);
  std::string_view sum_line = bytes.substr(sum_at);
  if (sum_line.size() < 5 || sum_line.back() != '\n') {
    return Errc::kInval;
  }
  sum_line = sum_line.substr(4, sum_line.size() - 5);
  uint64_t want = 0;
  {
    std::istringstream in{std::string(sum_line)};
    in >> std::hex >> want;
    if (in.fail() || !in.eof()) {
      return Errc::kInval;
    }
  }
  if (Fnv64(body) != want) {
    return Errc::kInval;
  }
  std::istringstream in{std::string(body)};
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointHeader) {
    return Errc::kInval;
  }
  if (!std::getline(in, line)) {
    return Errc::kInval;
  }
  Checkpoint c;
  uint64_t nops = 0;
  {
    std::istringstream hdr(line);
    std::string tag;
    hdr >> tag >> c.ckpt_id >> c.max_txid >> c.committed_units >> nops;
    if (hdr.fail() || tag != "ckpt") {
      return Errc::kInval;
    }
  }
  while (std::getline(in, line)) {
    auto call = ParseTraceLine(line);
    if (!call.ok()) {
      return Errc::kInval;
    }
    c.ops.push_back(std::move(*call));
  }
  if (c.ops.size() != nops) {
    return Errc::kInval;
  }
  return c;
}

Checkpoint BuildCheckpoint(const SpecFs& state, uint64_t ckpt_id, uint64_t max_txid,
                           uint64_t committed_units) {
  Checkpoint c;
  c.ckpt_id = ckpt_id;
  c.max_txid = max_txid;
  c.committed_units = committed_units;
  c.ops = ExportAsTrace(state);
  return c;
}

Result<uint64_t> WriteCheckpointFile(const std::string& wal_path, const Checkpoint& c) {
  const std::string tmp = TmpCheckpointPath(wal_path);
  const std::string ckpt = CheckpointPath(wal_path);
  const std::string prev = PrevCheckpointPath(wal_path);
  const std::string body = FormatCheckpoint(c);
  Status s = WriteFileDurably(tmp, body);
  if (!s.ok()) {
    return s;
  }
  // Keep exactly one fallback: the checkpoint being displaced.
  if (FileExists(ckpt) && std::rename(ckpt.c_str(), prev.c_str()) != 0) {
    return Errc::kIo;
  }
  if (std::rename(tmp.c_str(), ckpt.c_str()) != 0) {
    return Errc::kIo;
  }
  FsyncParentDir(wal_path);
  return static_cast<uint64_t>(body.size());
}

namespace {

// One scanned WAL file: its generation (kCkpt head marker id, 0 if none)
// and raw bytes.
struct WalFileState {
  bool exists = false;
  std::string bytes;
  uint64_t head = 0;
  WalScan scan;
};

WalFileState LoadWalFile(const std::string& path) {
  WalFileState st;
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    return st;
  }
  st.exists = true;
  st.bytes = std::move(*bytes);
  st.scan = ScanWalBytes(st.bytes);
  if (!st.scan.records.empty() && st.scan.records.front().type == WalRecordType::kCkpt) {
    st.head = st.scan.records.front().txid;
  }
  return st;
}

}  // namespace

Result<JournalRecoveryStats> RecoverJournal(const std::string& wal_path, FileSystem& fs,
                                            bool repair) {
  WalFileState live = LoadWalFile(wal_path);
  WalFileState prevwal = LoadWalFile(PrevWalPath(wal_path));

  // Step 1: newest checkpoint, falling back to the previous on corruption.
  Checkpoint ckpt;
  bool used_checkpoint = false;
  bool fell_back = false;
  bool ckpt_file_present = false;
  {
    auto newest = ReadFileBytes(CheckpointPath(wal_path));
    if (newest.ok()) {
      ckpt_file_present = true;
      auto parsed = ParseCheckpoint(*newest);
      if (parsed.ok()) {
        ckpt = std::move(*parsed);
        used_checkpoint = true;
      }
    }
    if (!used_checkpoint) {
      auto prev = ReadFileBytes(PrevCheckpointPath(wal_path));
      if (prev.ok()) {
        ckpt_file_present = true;
        auto parsed = ParseCheckpoint(*prev);
        if (parsed.ok()) {
          ckpt = std::move(*parsed);
          used_checkpoint = true;
          fell_back = true;
        }
      }
    }
  }

  if (!live.exists && !prevwal.exists && !used_checkpoint) {
    return Errc::kNoEnt;
  }

  const uint64_t want_gen = used_checkpoint ? ckpt.ckpt_id : 0;
  if (!used_checkpoint && (live.head > 0 || prevwal.head > 0 || ckpt_file_present)) {
    // The WAL is a suffix relative to a checkpoint no readable file
    // provides: replaying it alone would silently produce a partial state.
    return Errc::kIo;
  }

  JournalRecoveryStats stats;
  stats.used_checkpoint = used_checkpoint;
  stats.fell_back_to_prev = fell_back;
  stats.generation = std::max({want_gen, live.head, prevwal.head});

  // Step 3: checkpoint ops, then every WAL generation the checkpoint does
  // not cover, oldest first.
  if (used_checkpoint) {
    for (const OpCall& call : ckpt.ops) {
      if (!RunOp(fs, call).status.ok()) {
        return Errc::kIo;  // checksummed checkpoint that cannot re-apply
      }
    }
    stats.checkpoint_ops = ckpt.ops.size();
    stats.max_txid = ckpt.max_txid;
    stats.committed_units = ckpt.committed_units;
  }
  std::vector<const WalFileState*> replay;
  if (prevwal.exists && prevwal.head >= want_gen) {
    replay.push_back(&prevwal);
  }
  if (live.exists && live.head >= want_gen) {
    replay.push_back(&live);
  }
  if (!replay.empty()) {
    // Contiguity: the oldest replayed file must pick up exactly where the
    // checkpoint left off, and files must be consecutive generations.
    if (replay.front()->head != want_gen ||
        (replay.size() == 2 && replay[1]->head != replay[0]->head + 1)) {
      return Errc::kIo;
    }
  }
  const bool live_replayed = !replay.empty() && replay.back() == &live;
  for (const WalFileState* f : replay) {
    const WalRecoveryStats r = RecoverWalBytes(f->bytes, fs);
    stats.wal.applied_ops += r.applied_ops;
    stats.wal.committed += r.committed;
    stats.wal.aborted += r.aborted;
    stats.wal.discarded += r.discarded;
    stats.wal.max_txid = std::max(stats.wal.max_txid, r.max_txid);
    if (f == &live) {
      stats.wal.clean_bytes = r.clean_bytes;
      stats.wal.torn_tail = r.torn_tail;
    }
    if (r.torn_tail && f != &live) {
      // A torn previous generation means its tail (and everything in the
      // live file) is unreliable; stop at the last good unit.
      stats.wal.torn_tail = true;
      break;
    }
  }
  stats.max_txid = std::max(stats.max_txid, stats.wal.max_txid);
  stats.committed_units += stats.wal.committed;

  if (repair) {
    // Step 4: normalize so an O_APPEND writer continues into a clean log.
    ::unlink(TmpCheckpointPath(wal_path).c_str());
    if (used_checkpoint && (!live.exists || live.head < want_gen)) {
      // Interrupted rotation: the checkpoint covers the whole live file.
      // Complete the rotation it crashed out of.
      if (live.exists &&
          std::rename(wal_path.c_str(), PrevWalPath(wal_path).c_str()) != 0) {
        return Errc::kIo;
      }
      const std::string head = EncodeWalRecord(WalRecordType::kCkpt, want_gen, {});
      Status s = WriteFileDurably(wal_path, head);
      if (!s.ok()) {
        return Errc::kIo;
      }
      FsyncParentDir(wal_path);
    } else if (live_replayed && live.scan.torn_tail) {
      // Appending after torn bytes would make every later record
      // unreadable (the scan stops at the torn prefix); cut them off.
      if (::truncate(wal_path.c_str(), static_cast<off_t>(live.scan.clean_bytes)) != 0) {
        return Errc::kIo;
      }
    }
  }
  return stats;
}

}  // namespace atomfs
