#include "src/journal/journal_fs.h"

#include "src/util/check.h"

namespace atomfs {

JournalFs::JournalFs(FileSystem* inner, const std::string& log_path)
    : inner_(inner), wal_(log_path) {
  ATOMFS_CHECK(inner != nullptr);
  ATOMFS_CHECK(wal_.ok() && "cannot open journal log for append");
}

JournalFs::~JournalFs() = default;

uint64_t JournalFs::logged_ops() const {
  std::lock_guard<std::mutex> lk(mu_);
  return logged_ops_;
}

Status JournalFs::Logged(const OpCall& call) {
  // Append-before-release: holding the lock across (inner op, log append)
  // makes the log order a legal linearization of the mutations, at the cost
  // of serializing them (see header).
  std::lock_guard<std::mutex> lk(mu_);
  OpResult result = RunOp(*inner_, call);
  if (result.status.ok()) {
    wal_.Append(WalRecordType::kOp, /*txid=*/0, FormatTraceLine(call));
    wal_.Flush();
    ++logged_ops_;
  }
  return result.status;
}

Status JournalFs::Mkdir(const Path& path) { return Logged(OpCall::MkdirOf(path)); }
Status JournalFs::Mknod(const Path& path) { return Logged(OpCall::MknodOf(path)); }
Status JournalFs::Rmdir(const Path& path) { return Logged(OpCall::RmdirOf(path)); }
Status JournalFs::Unlink(const Path& path) { return Logged(OpCall::UnlinkOf(path)); }

Status JournalFs::Rename(const Path& src, const Path& dst) {
  return Logged(OpCall::RenameOf(src, dst));
}

Status JournalFs::Exchange(const Path& a, const Path& b) {
  return Logged(OpCall::ExchangeOf(a, b));
}

Status JournalFs::Truncate(const Path& path, uint64_t size) {
  return Logged(OpCall::TruncateOf(path, size));
}

Result<size_t> JournalFs::Write(const Path& path, uint64_t offset,
                                std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lk(mu_);
  auto written = inner_->Write(path, offset, data);
  if (written.ok()) {
    wal_.Append(WalRecordType::kOp, /*txid=*/0,
                FormatTraceLine(OpCall::WriteOf(
                    path, offset, std::vector<std::byte>(data.begin(), data.end()))));
    wal_.Flush();
    ++logged_ops_;
  }
  return written;
}

// Reads pass through unlogged (and unserialized).
Result<Attr> JournalFs::Stat(const Path& path) { return inner_->Stat(path); }

Result<std::vector<DirEntry>> JournalFs::ReadDir(const Path& path) {
  return inner_->ReadDir(path);
}

Result<size_t> JournalFs::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  return inner_->Read(path, offset, out);
}

Result<uint64_t> JournalFs::Recover(const std::string& log_path, FileSystem& fs) {
  auto stats = RecoverWal(log_path, fs);
  if (!stats.ok()) {
    return stats.status();
  }
  return stats->applied_ops;
}

}  // namespace atomfs
