#include "src/journal/journal_fs.h"

#include <sstream>

#include "src/util/check.h"

namespace atomfs {

JournalFs::JournalFs(FileSystem* inner, const std::string& log_path)
    : inner_(inner), log_(log_path, std::ios::app) {
  ATOMFS_CHECK(inner != nullptr);
  ATOMFS_CHECK(log_.good() && "cannot open journal log for append");
}

JournalFs::~JournalFs() = default;

uint64_t JournalFs::logged_ops() const {
  std::lock_guard<std::mutex> lk(mu_);
  return logged_ops_;
}

Status JournalFs::Logged(const OpCall& call) {
  // Append-before-release: holding the lock across (inner op, log append)
  // makes the log order a legal linearization of the mutations, at the cost
  // of serializing them (see header).
  std::lock_guard<std::mutex> lk(mu_);
  OpResult result = RunOp(*inner_, call);
  if (result.status.ok()) {
    log_ << FormatTraceLine(call) << '\n';
    log_.flush();
    ++logged_ops_;
  }
  return result.status;
}

Status JournalFs::Mkdir(const Path& path) { return Logged(OpCall::MkdirOf(path)); }
Status JournalFs::Mknod(const Path& path) { return Logged(OpCall::MknodOf(path)); }
Status JournalFs::Rmdir(const Path& path) { return Logged(OpCall::RmdirOf(path)); }
Status JournalFs::Unlink(const Path& path) { return Logged(OpCall::UnlinkOf(path)); }

Status JournalFs::Rename(const Path& src, const Path& dst) {
  return Logged(OpCall::RenameOf(src, dst));
}

Status JournalFs::Exchange(const Path& a, const Path& b) {
  return Logged(OpCall::ExchangeOf(a, b));
}

Status JournalFs::Truncate(const Path& path, uint64_t size) {
  return Logged(OpCall::TruncateOf(path, size));
}

Result<size_t> JournalFs::Write(const Path& path, uint64_t offset,
                                std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lk(mu_);
  auto written = inner_->Write(path, offset, data);
  if (written.ok()) {
    log_ << FormatTraceLine(OpCall::WriteOf(
                path, offset, std::vector<std::byte>(data.begin(), data.end())))
         << '\n';
    log_.flush();
    ++logged_ops_;
  }
  return written;
}

// Reads pass through unlogged (and unserialized).
Result<Attr> JournalFs::Stat(const Path& path) { return inner_->Stat(path); }

Result<std::vector<DirEntry>> JournalFs::ReadDir(const Path& path) {
  return inner_->ReadDir(path);
}

Result<size_t> JournalFs::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  return inner_->Read(path, offset, out);
}

Result<uint64_t> JournalFs::Recover(const std::string& log_path, FileSystem& fs) {
  std::ifstream in(log_path, std::ios::binary);
  if (!in) {
    return Errc::kNoEnt;
  }
  std::string contents(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>{});
  // A record is durable only once its newline hit the log: a torn final
  // line (crash mid-append) could otherwise parse as a VALID but shorter
  // operation (e.g. a write whose hex payload lost its tail), silently
  // corrupting recovery. Drop any unterminated tail.
  if (!contents.empty() && contents.back() != '\n') {
    const size_t last_newline = contents.find_last_of('\n');
    contents.resize(last_newline == std::string::npos ? 0 : last_newline + 1);
  }
  std::istringstream stream(contents);
  uint64_t recovered = 0;
  std::string line;
  while (std::getline(stream, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    auto call = ParseTraceLine(line);
    if (!call.ok()) {
      // Torn or corrupt line: recovery stops at the last good prefix.
      break;
    }
    OpResult result = RunOp(fs, *call);
    if (!result.status.ok()) {
      // A logged op must re-apply cleanly on the recovered prefix; if not,
      // the log itself is inconsistent — stop rather than diverge.
      break;
    }
    ++recovered;
  }
  return recovered;
}

}  // namespace atomfs
