#include "src/journal/journal_fs.h"

#include "src/util/check.h"

namespace atomfs {

JournalFs::JournalFs(FileSystem* inner, const std::string& log_path)
    : JournalFs(inner, log_path, Options()) {}

JournalFs::JournalFs(FileSystem* inner, const std::string& log_path, Options opts)
    : inner_(inner), opts_(std::move(opts)), wal_(log_path, opts_.wal) {
  ATOMFS_CHECK(inner != nullptr);
  ATOMFS_CHECK(wal_.ok() && "cannot open journal log for append");
}

JournalFs::~JournalFs() = default;

uint64_t JournalFs::logged_ops() const {
  std::lock_guard<std::mutex> lk(mu_);
  return logged_ops_;
}

bool JournalFs::failed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !wal_.ok();
}

Status JournalFs::SyncLocked() {
  Status s = wal_.Flush();
  if (s.ok() && opts_.fsync_ops) {
    s = wal_.Fsync();
  }
  return s.ok() ? Status() : Status(Errc::kIo);
}

Status JournalFs::Logged(const OpCall& call) {
  // Append-before-release: holding the lock across (inner op, log append)
  // makes the log order a legal linearization of the mutations, at the cost
  // of serializing them (see header).
  std::lock_guard<std::mutex> lk(mu_);
  if (!wal_.ok()) {
    return Status(Errc::kIo);  // fail-stopped: see header
  }
  OpResult result = RunOp(*inner_, call);
  if (result.status.ok()) {
    Status logged = wal_.Append(WalRecordType::kOp, /*txid=*/0, FormatTraceLine(call));
    if (logged.ok()) {
      logged = SyncLocked();
    }
    if (!logged.ok()) {
      // The inner op ran but its record never reached the log: the caller
      // must see the durability failure, and the (poisoned) journal accepts
      // nothing further.
      return Status(Errc::kIo);
    }
    ++logged_ops_;
  }
  return result.status;
}

Status JournalFs::Mkdir(const Path& path) { return Logged(OpCall::MkdirOf(path)); }
Status JournalFs::Mknod(const Path& path) { return Logged(OpCall::MknodOf(path)); }
Status JournalFs::Rmdir(const Path& path) { return Logged(OpCall::RmdirOf(path)); }
Status JournalFs::Unlink(const Path& path) { return Logged(OpCall::UnlinkOf(path)); }

Status JournalFs::Rename(const Path& src, const Path& dst) {
  return Logged(OpCall::RenameOf(src, dst));
}

Status JournalFs::Exchange(const Path& a, const Path& b) {
  return Logged(OpCall::ExchangeOf(a, b));
}

Status JournalFs::Truncate(const Path& path, uint64_t size) {
  return Logged(OpCall::TruncateOf(path, size));
}

Result<size_t> JournalFs::Write(const Path& path, uint64_t offset,
                                std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!wal_.ok()) {
    return Errc::kIo;
  }
  auto written = inner_->Write(path, offset, data);
  if (written.ok()) {
    Status logged =
        wal_.Append(WalRecordType::kOp, /*txid=*/0,
                    FormatTraceLine(OpCall::WriteOf(
                        path, offset, std::vector<std::byte>(data.begin(), data.end()))));
    if (logged.ok()) {
      logged = SyncLocked();
    }
    if (!logged.ok()) {
      return Errc::kIo;
    }
    ++logged_ops_;
  }
  return written;
}

// Reads pass through unlogged (and unserialized).
Result<Attr> JournalFs::Stat(const Path& path) { return inner_->Stat(path); }

Result<std::vector<DirEntry>> JournalFs::ReadDir(const Path& path) {
  return inner_->ReadDir(path);
}

Result<size_t> JournalFs::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  return inner_->Read(path, offset, out);
}

Result<uint64_t> JournalFs::Recover(const std::string& log_path, FileSystem& fs) {
  auto stats = RecoverWal(log_path, fs);
  if (!stats.ok()) {
    return stats.status();
  }
  return stats->applied_ops;
}

}  // namespace atomfs
