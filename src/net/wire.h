// The atomfsd wire protocol: length-prefixed binary frames over a stream
// socket (Unix-domain or TCP).
//
// Framing
//   frame    := u32 payload_len (little-endian) | payload
//   request  := u8 opcode | op-specific body
//   response := u8 wire status | body on success (empty on error)
//
// A connection carries a pipelined conversation: the client may have up to
// `max_inflight` request frames outstanding (negotiated via HELLO, see
// below) and the server answers every request, in order, with exactly one
// response frame per request unit. MSGBATCH packs several requests into one
// frame; the server still answers each packed sub-request with its own
// response frame, in order, as if they had been sent individually. All
// integers are little-endian; strings and blobs are u32 length + bytes.
// Payloads are capped at kWireMaxFrameBytes — a larger declared length is a
// protocol error and the server drops the connection (framing can no longer
// be trusted).
//
// Version negotiation: a client should open the conversation with HELLO
// carrying its protocol version and desired inflight window. The server
// answers with its version and the granted window (clamped to server
// policy). An unsupported version gets a clean EPROTO error reply — not a
// dropped connection — so old/new peers can fail soft. A client that skips
// HELLO speaks at the server's default window.
//
// The protocol covers the complete path-based FileSystem interface plus the
// Vfs descriptor ops (open/close/read/write/pread/pwrite/fstat/readdirfd/
// ftruncate/seek; descriptors are per-connection, like a process fd table)
// plus two admin ops: STATS (per-op latency digest) and METRICS (the full
// atomtrace registry snapshot, src/obs).
//
// docs/WIRE_PROTOCOL.md is the normative spec of this protocol; a docs-drift
// test (tests/obs_test.cc) fails if an opcode exists here but not there.
//
// Every decoder here is bounds-checked and total: arbitrary bytes parse to
// either a value or a clean kProto error, never undefined behavior. That is
// what tests/wire_test.cc fuzzes.

#ifndef ATOMFS_SRC_NET_WIRE_H_
#define ATOMFS_SRC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/status.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

// Hard cap on one frame's payload. A single read or write burst must fit in
// one frame; callers moving more than this chunk their I/O.
inline constexpr uint32_t kWireMaxFrameBytes = 4u << 20;

// Protocol version spoken by this build. v1 was PR 1's unversioned
// synchronous protocol; v2 adds HELLO, MSGBATCH and pipelining; v3 adds the
// server capability bitmask to the HELLO reply. The server still accepts v2
// clients (kWireProtoVersionMin) and answers them with the v2-shaped reply.
inline constexpr uint32_t kWireProtoVersion = 3;
inline constexpr uint32_t kWireProtoVersionMin = 2;

// Hard cap on sub-requests inside one MSGBATCH frame.
inline constexpr uint32_t kWireMaxBatchRequests = 256;

enum class WireOp : uint8_t {
  kPing = 1,
  // Path-based FileSystem interface.
  kMkdir = 2,
  kMknod = 3,
  kRmdir = 4,
  kUnlink = 5,
  kRename = 6,
  kExchange = 7,
  kStat = 8,
  kReadDir = 9,
  kRead = 10,
  kWrite = 11,
  kTruncate = 12,
  // Vfs descriptor ops (per-connection descriptor table).
  kOpen = 13,
  kClose = 14,
  kFdRead = 15,
  kFdWrite = 16,
  kFdPread = 17,
  kFdPwrite = 18,
  kFstat = 19,
  kFdReadDir = 20,
  kFtruncate = 21,
  kSeek = 22,
  // Admin.
  kStats = 23,
  kMetrics = 24,
  // Session control (protocol v2).
  kHello = 25,     // version + inflight-window negotiation
  kMsgBatch = 26,  // several requests packed into one frame
  // Flight-recorder admin ops (still protocol v2: unknown ops on old
  // servers answer EPROTO, which the client surfaces cleanly).
  kTraceDump = 27,  // Chrome trace-event JSON of the server's TraceRing
  kProm = 28,       // Prometheus text exposition of the metrics registry
  // Transactions (still protocol v2; a server without a transaction layer
  // answers EINVAL, an old server EPROTO — both fail soft). A connection
  // holds at most one open transaction; while it is open, path-based
  // FileSystem ops on the connection execute inside it, and MSGBATCH lets a
  // whole begin/ops/commit sequence ship in one frame.
  kTxBegin = 29,   // — | reply u64 txid
  kTxCommit = 30,  // u64 txid (0 = the connection's open txn) | —
  kTxAbort = 31,   // u64 txid (0 = the connection's open txn) | —
  // Journal admin (still protocol v2, same fail-soft story): checkpoint +
  // compact the server's journal now. EINVAL without a journaled
  // transaction layer, EIO if the checkpoint write or WAL rotation failed.
  kCheckpoint = 32,  // — | —
};

inline constexpr uint8_t kWireOpMin = 1;
inline constexpr uint8_t kWireOpMax = 32;

inline bool WireOpKnown(uint8_t raw) { return raw >= kWireOpMin && raw <= kWireOpMax; }
std::string_view WireOpName(WireOp op);

// --- status mapping ----------------------------------------------------------
// Wire status bytes are an explicit stable table, independent of the Errc
// enum layout, so old clients keep working if Errc grows or is reordered.

uint8_t WireStatusOf(Errc code);
Errc ErrcOfWireStatus(uint8_t wire);  // unknown bytes map to kProto

// --- primitive serialization -------------------------------------------------

class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void Str(std::string_view s);
  void Blob(std::span<const std::byte> b);

  const std::vector<std::byte>& buf() const { return buf_; }
  std::vector<std::byte> Take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

// Bounds-checked cursor over a received payload. Every accessor returns
// false (and latches the failure) instead of reading out of range; callers
// check ok() / the accessor result and translate to kProto.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  bool U8(uint8_t* out);
  bool U32(uint32_t* out);
  bool U64(uint64_t* out);
  bool I32(int32_t* out);
  // Length-prefixed string, rejecting lengths beyond `max_len` or the
  // remaining payload.
  bool Str(std::string* out, size_t max_len);
  bool Blob(std::vector<std::byte>* out, size_t max_len);

  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Take(size_t n, const std::byte** out);

  std::span<const std::byte> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- request model -----------------------------------------------------------
// The union of every request's fields; EncodeRequest writes exactly the
// fields `op` needs and ParseRequest reads exactly those back (and requires
// the payload to end there — trailing garbage is a protocol error).

struct WireRequest {
  WireOp op = WireOp::kPing;
  std::string path_a;            // path ops, open
  std::string path_b;            // rename / exchange
  uint64_t offset = 0;           // read/write/truncate/pread/pwrite/seek
  uint32_t count = 0;            // read/fdread/pread length
  uint32_t flags = 0;            // open
  int32_t fd = -1;               // descriptor ops
  std::vector<std::byte> data;   // write/fdwrite/pwrite payload
  // HELLO: protocol version and desired inflight window (0 = server default).
  uint32_t proto_version = 0;
  uint32_t max_inflight = 0;
  // TXCOMMIT / TXABORT: the transaction to finish (0 = the connection's
  // currently open transaction).
  uint64_t txid = 0;
  // MSGBATCH: the packed sub-requests. Nested MSGBATCH and packed HELLO are
  // protocol errors (a window change mid-batch would be ambiguous).
  std::vector<WireRequest> batch;
};

std::vector<std::byte> EncodeRequest(const WireRequest& req);
Result<WireRequest> ParseRequest(std::span<const std::byte> payload);

// --- HELLO negotiation -------------------------------------------------------
// Request body:  u32 version | u32 desired max_inflight (0 = server default)
// Success reply: u32 version | u32 granted max_inflight (>= 1)
//                | u32 caps (v3 replies only: FileSystem capability bitmask,
//                  kFsCap* in src/vfs/filesystem.h — how clients discover
//                  txn/rcu_walk/sharding support instead of EINVAL-probing)
// An unsupported version is answered with wire status EPROTO and the
// connection stays open. A v2 client gets the v2-shaped reply (no caps).

struct WireHello {
  uint32_t version = 0;
  uint32_t max_inflight = 0;
  uint32_t caps = 0;
};

void EncodeHello(WireWriter& w, const WireHello& hello);
bool ParseHello(WireReader& r, WireHello* out);

// --- response payload pieces -------------------------------------------------

void EncodeAttr(WireWriter& w, const Attr& attr);
bool ParseAttr(WireReader& r, Attr* out);

void EncodeDirEntries(WireWriter& w, const std::vector<DirEntry>& entries);
bool ParseDirEntries(WireReader& r, std::vector<DirEntry>* out);

// Per-op server-side latency digest served by WireOp::kStats.
struct WireOpStats {
  uint8_t op = 0;  // raw WireOp value
  uint64_t count = 0;
  uint64_t mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

struct WireServerStats {
  uint64_t connections_accepted = 0;
  uint64_t protocol_errors = 0;
  std::vector<WireOpStats> ops;  // only ops with count > 0
};

void EncodeServerStats(WireWriter& w, const WireServerStats& stats);
bool ParseServerStats(WireReader& r, WireServerStats* out);

// Full atomtrace registry snapshot served by WireOp::kMetrics. Histograms
// travel with their complete bucket arrays, so a client computes the same
// percentiles the server would (shared bucket math, src/util/stats.h). A
// snapshot with fewer buckets than kLatencyBucketCount parses (future
// bucket-count reductions stay compatible); more than kLatencyBucketCount is
// a protocol error.
void EncodeMetricsSnapshot(WireWriter& w, const MetricsSnapshot& snap);
bool ParseMetricsSnapshot(WireReader& r, MetricsSnapshot* out);

// --- frame transport ---------------------------------------------------------
// Blocking, whole-frame socket I/O. SendFrame uses MSG_NOSIGNAL so a dead
// peer surfaces as kIo, not SIGPIPE.

Status SendFrame(int sock, std::span<const std::byte> payload);

// Receives one frame. Errors:
//   kNoEnt - the peer closed cleanly before any byte of a new frame
//   kIo    - socket error or EOF mid-frame
//   kProto - declared payload length exceeds `max_bytes`
Result<std::vector<std::byte>> RecvFrame(int sock, uint32_t max_bytes = kWireMaxFrameBytes);

}  // namespace atomfs

#endif  // ATOMFS_SRC_NET_WIRE_H_
