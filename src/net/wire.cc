#include "src/net/wire.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "src/util/status_table.h"
#include "src/vfs/path.h"

namespace atomfs {

std::string_view WireOpName(WireOp op) {
  switch (op) {
    case WireOp::kPing:
      return "ping";
    case WireOp::kMkdir:
      return "mkdir";
    case WireOp::kMknod:
      return "mknod";
    case WireOp::kRmdir:
      return "rmdir";
    case WireOp::kUnlink:
      return "unlink";
    case WireOp::kRename:
      return "rename";
    case WireOp::kExchange:
      return "exchange";
    case WireOp::kStat:
      return "stat";
    case WireOp::kReadDir:
      return "readdir";
    case WireOp::kRead:
      return "read";
    case WireOp::kWrite:
      return "write";
    case WireOp::kTruncate:
      return "truncate";
    case WireOp::kOpen:
      return "open";
    case WireOp::kClose:
      return "close";
    case WireOp::kFdRead:
      return "fdread";
    case WireOp::kFdWrite:
      return "fdwrite";
    case WireOp::kFdPread:
      return "fdpread";
    case WireOp::kFdPwrite:
      return "fdpwrite";
    case WireOp::kFstat:
      return "fstat";
    case WireOp::kFdReadDir:
      return "fdreaddir";
    case WireOp::kFtruncate:
      return "ftruncate";
    case WireOp::kSeek:
      return "seek";
    case WireOp::kStats:
      return "stats";
    case WireOp::kMetrics:
      return "metrics";
    case WireOp::kHello:
      return "hello";
    case WireOp::kMsgBatch:
      return "msgbatch";
    case WireOp::kTraceDump:
      return "trace";
    case WireOp::kProm:
      return "prom";
    case WireOp::kTxBegin:
      return "txbegin";
    case WireOp::kTxCommit:
      return "txcommit";
    case WireOp::kTxAbort:
      return "txabort";
    case WireOp::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

// --- status mapping ----------------------------------------------------------

// Both directions are generated from the one normative X-macro table
// (src/util/status_table.h); the docs-drift test pins that table against the
// status table in docs/WIRE_PROTOCOL.md.

uint8_t WireStatusOf(Errc code) {
  switch (code) {
#define ATOMFS_WIRE_STATUS_OF_CASE(errc, wire_byte, errc_name, wire_name) \
  case Errc::errc:                                                        \
    return wire_byte;
    ATOMFS_WIRE_STATUS_TABLE(ATOMFS_WIRE_STATUS_OF_CASE)
#undef ATOMFS_WIRE_STATUS_OF_CASE
  }
  return 13;  // unmapped codes degrade to EIO
}

Errc ErrcOfWireStatus(uint8_t wire) {
  switch (wire) {
#define ATOMFS_ERRC_OF_WIRE_CASE(errc, wire_byte, errc_name, wire_name) \
  case wire_byte:                                                       \
    return Errc::errc;
    ATOMFS_WIRE_STATUS_TABLE(ATOMFS_ERRC_OF_WIRE_CASE)
#undef ATOMFS_ERRC_OF_WIRE_CASE
    default:
      return Errc::kProto;
  }
}

// --- primitive serialization -------------------------------------------------

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  for (char c : s) {
    buf_.push_back(static_cast<std::byte>(c));
  }
}

void WireWriter::Blob(std::span<const std::byte> b) {
  U32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

bool WireReader::Take(size_t n, const std::byte** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::U8(uint8_t* out) {
  const std::byte* p = nullptr;
  if (!Take(1, &p)) {
    return false;
  }
  *out = static_cast<uint8_t>(*p);
  return true;
}

bool WireReader::U32(uint32_t* out) {
  const std::byte* p = nullptr;
  if (!Take(4, &p)) {
    return false;
  }
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint32_t>(p[i]);
  }
  *out = v;
  return true;
}

bool WireReader::U64(uint64_t* out) {
  const std::byte* p = nullptr;
  if (!Take(8, &p)) {
    return false;
  }
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint64_t>(p[i]);
  }
  *out = v;
  return true;
}

bool WireReader::I32(int32_t* out) {
  uint32_t v = 0;
  if (!U32(&v)) {
    return false;
  }
  *out = static_cast<int32_t>(v);
  return true;
}

bool WireReader::Str(std::string* out, size_t max_len) {
  uint32_t len = 0;
  if (!U32(&len) || len > max_len) {
    ok_ = false;
    return false;
  }
  const std::byte* p = nullptr;
  if (!Take(len, &p)) {
    return false;
  }
  out->assign(reinterpret_cast<const char*>(p), len);
  return true;
}

bool WireReader::Blob(std::vector<std::byte>* out, size_t max_len) {
  uint32_t len = 0;
  if (!U32(&len) || len > max_len) {
    ok_ = false;
    return false;
  }
  const std::byte* p = nullptr;
  if (!Take(len, &p)) {
    return false;
  }
  out->assign(p, p + len);
  return true;
}

// --- request model -----------------------------------------------------------

std::vector<std::byte> EncodeRequest(const WireRequest& req) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(req.op));
  switch (req.op) {
    case WireOp::kPing:
    case WireOp::kStats:
    case WireOp::kMetrics:
    case WireOp::kTraceDump:
    case WireOp::kProm:
    case WireOp::kTxBegin:
    case WireOp::kCheckpoint:
      break;
    case WireOp::kTxCommit:
    case WireOp::kTxAbort:
      w.U64(req.txid);
      break;
    case WireOp::kMkdir:
    case WireOp::kMknod:
    case WireOp::kRmdir:
    case WireOp::kUnlink:
    case WireOp::kStat:
    case WireOp::kReadDir:
      w.Str(req.path_a);
      break;
    case WireOp::kRename:
    case WireOp::kExchange:
      w.Str(req.path_a);
      w.Str(req.path_b);
      break;
    case WireOp::kRead:
      w.Str(req.path_a);
      w.U64(req.offset);
      w.U32(req.count);
      break;
    case WireOp::kWrite:
      w.Str(req.path_a);
      w.U64(req.offset);
      w.Blob(req.data);
      break;
    case WireOp::kTruncate:
      w.Str(req.path_a);
      w.U64(req.offset);
      break;
    case WireOp::kOpen:
      w.Str(req.path_a);
      w.U32(req.flags);
      break;
    case WireOp::kClose:
    case WireOp::kFstat:
    case WireOp::kFdReadDir:
      w.I32(req.fd);
      break;
    case WireOp::kFdRead:
      w.I32(req.fd);
      w.U32(req.count);
      break;
    case WireOp::kFdWrite:
      w.I32(req.fd);
      w.Blob(req.data);
      break;
    case WireOp::kFdPread:
      w.I32(req.fd);
      w.U64(req.offset);
      w.U32(req.count);
      break;
    case WireOp::kFdPwrite:
      w.I32(req.fd);
      w.U64(req.offset);
      w.Blob(req.data);
      break;
    case WireOp::kFtruncate:
    case WireOp::kSeek:
      w.I32(req.fd);
      w.U64(req.offset);
      break;
    case WireOp::kHello:
      w.U32(req.proto_version);
      w.U32(req.max_inflight);
      break;
    case WireOp::kMsgBatch:
      w.U32(static_cast<uint32_t>(req.batch.size()));
      for (const WireRequest& sub : req.batch) {
        w.Blob(EncodeRequest(sub));
      }
      break;
  }
  return w.Take();
}

namespace {

Result<WireRequest> ParseRequestImpl(std::span<const std::byte> payload, bool allow_batch) {
  WireReader r(payload);
  uint8_t raw_op = 0;
  if (!r.U8(&raw_op) || !WireOpKnown(raw_op)) {
    return Errc::kProto;
  }
  WireRequest req;
  req.op = static_cast<WireOp>(raw_op);
  bool good = true;
  switch (req.op) {
    case WireOp::kPing:
    case WireOp::kStats:
    case WireOp::kMetrics:
    case WireOp::kTraceDump:
    case WireOp::kProm:
    case WireOp::kTxBegin:
    case WireOp::kCheckpoint:
      break;
    case WireOp::kTxCommit:
    case WireOp::kTxAbort:
      good = r.U64(&req.txid);
      break;
    case WireOp::kMkdir:
    case WireOp::kMknod:
    case WireOp::kRmdir:
    case WireOp::kUnlink:
    case WireOp::kStat:
    case WireOp::kReadDir:
      good = r.Str(&req.path_a, kMaxPathLen);
      break;
    case WireOp::kRename:
    case WireOp::kExchange:
      good = r.Str(&req.path_a, kMaxPathLen) && r.Str(&req.path_b, kMaxPathLen);
      break;
    case WireOp::kRead:
      good = r.Str(&req.path_a, kMaxPathLen) && r.U64(&req.offset) && r.U32(&req.count);
      break;
    case WireOp::kWrite:
      good = r.Str(&req.path_a, kMaxPathLen) && r.U64(&req.offset) &&
             r.Blob(&req.data, kWireMaxFrameBytes);
      break;
    case WireOp::kTruncate:
      good = r.Str(&req.path_a, kMaxPathLen) && r.U64(&req.offset);
      break;
    case WireOp::kOpen:
      good = r.Str(&req.path_a, kMaxPathLen) && r.U32(&req.flags);
      break;
    case WireOp::kClose:
    case WireOp::kFstat:
    case WireOp::kFdReadDir:
      good = r.I32(&req.fd);
      break;
    case WireOp::kFdRead:
      good = r.I32(&req.fd) && r.U32(&req.count);
      break;
    case WireOp::kFdWrite:
      good = r.I32(&req.fd) && r.Blob(&req.data, kWireMaxFrameBytes);
      break;
    case WireOp::kFdPread:
      good = r.I32(&req.fd) && r.U64(&req.offset) && r.U32(&req.count);
      break;
    case WireOp::kFdPwrite:
      good = r.I32(&req.fd) && r.U64(&req.offset) && r.Blob(&req.data, kWireMaxFrameBytes);
      break;
    case WireOp::kFtruncate:
    case WireOp::kSeek:
      good = r.I32(&req.fd) && r.U64(&req.offset);
      break;
    case WireOp::kHello:
      good = r.U32(&req.proto_version) && r.U32(&req.max_inflight);
      break;
    case WireOp::kMsgBatch: {
      uint32_t n = 0;
      good = allow_batch && r.U32(&n) && n >= 1 && n <= kWireMaxBatchRequests;
      req.batch.reserve(good ? n : 0);
      for (uint32_t i = 0; good && i < n; ++i) {
        std::vector<std::byte> sub_bytes;
        if (!r.Blob(&sub_bytes, kWireMaxFrameBytes)) {
          good = false;
          break;
        }
        Result<WireRequest> sub = ParseRequestImpl(sub_bytes, /*allow_batch=*/false);
        // HELLO must stand alone: a window change mid-batch would be
        // ambiguous against the batch's own admission.
        if (!sub.ok() || sub->op == WireOp::kHello) {
          good = false;
          break;
        }
        req.batch.push_back(std::move(*sub));
      }
      break;
    }
  }
  if (!good || !r.AtEnd()) {
    return Errc::kProto;
  }
  // Reads are answered with one blob in one frame; an unbounded count would
  // let a client demand an oversized response.
  if (req.count > kWireMaxFrameBytes) {
    return Errc::kProto;
  }
  return req;
}

}  // namespace

Result<WireRequest> ParseRequest(std::span<const std::byte> payload) {
  return ParseRequestImpl(payload, /*allow_batch=*/true);
}

// --- HELLO negotiation -------------------------------------------------------

void EncodeHello(WireWriter& w, const WireHello& hello) {
  w.U32(hello.version);
  w.U32(hello.max_inflight);
  if (hello.version >= 3) {
    w.U32(hello.caps);
  }
}

bool ParseHello(WireReader& r, WireHello* out) {
  if (!r.U32(&out->version) || !r.U32(&out->max_inflight)) {
    return false;
  }
  // The capability bitmask exists only in the v3 body; a v2 peer's reply
  // ends after the granted window (caps stays 0 = nothing advertised).
  out->caps = 0;
  return out->version < 3 || r.U32(&out->caps);
}

// --- response payload pieces -------------------------------------------------

void EncodeAttr(WireWriter& w, const Attr& attr) {
  w.U64(attr.ino);
  w.U8(attr.type == FileType::kDir ? 1 : 0);
  w.U64(attr.size);
}

bool ParseAttr(WireReader& r, Attr* out) {
  uint8_t type = 0;
  if (!r.U64(&out->ino) || !r.U8(&type) || type > 1) {
    return false;
  }
  out->type = type == 1 ? FileType::kDir : FileType::kFile;
  return r.U64(&out->size);
}

void EncodeDirEntries(WireWriter& w, const std::vector<DirEntry>& entries) {
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const DirEntry& e : entries) {
    w.Str(e.name);
    w.U64(e.ino);
    w.U8(e.type == FileType::kDir ? 1 : 0);
  }
}

bool ParseDirEntries(WireReader& r, std::vector<DirEntry>* out) {
  uint32_t count = 0;
  if (!r.U32(&count) || count > kWireMaxFrameBytes / 8) {
    return false;
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DirEntry e;
    uint8_t type = 0;
    if (!r.Str(&e.name, kMaxNameLen) || !r.U64(&e.ino) || !r.U8(&type) || type > 1) {
      return false;
    }
    e.type = type == 1 ? FileType::kDir : FileType::kFile;
    out->push_back(std::move(e));
  }
  return true;
}

void EncodeServerStats(WireWriter& w, const WireServerStats& stats) {
  w.U64(stats.connections_accepted);
  w.U64(stats.protocol_errors);
  w.U32(static_cast<uint32_t>(stats.ops.size()));
  for (const WireOpStats& s : stats.ops) {
    w.U8(s.op);
    w.U64(s.count);
    w.U64(s.mean_ns);
    w.U64(s.p50_ns);
    w.U64(s.p99_ns);
    w.U64(s.p999_ns);
  }
}

bool ParseServerStats(WireReader& r, WireServerStats* out) {
  uint32_t rows = 0;
  if (!r.U64(&out->connections_accepted) || !r.U64(&out->protocol_errors) || !r.U32(&rows) ||
      rows > 256) {
    return false;
  }
  out->ops.clear();
  out->ops.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    WireOpStats s;
    if (!r.U8(&s.op) || !r.U64(&s.count) || !r.U64(&s.mean_ns) || !r.U64(&s.p50_ns) ||
        !r.U64(&s.p99_ns) || !r.U64(&s.p999_ns)) {
      return false;
    }
    out->ops.push_back(s);
  }
  return true;
}

namespace {

// Caps keeping a malicious METRICS response from forcing absurd allocations.
inline constexpr uint32_t kMaxMetricName = 256;
inline constexpr uint32_t kMaxMetricRows = 4096;

}  // namespace

void EncodeMetricsSnapshot(WireWriter& w, const MetricsSnapshot& snap) {
  w.U32(static_cast<uint32_t>(snap.counters.size()));
  for (const CounterSnapshot& c : snap.counters) {
    w.Str(c.name);
    w.U64(c.value);
  }
  w.U32(static_cast<uint32_t>(snap.gauges.size()));
  for (const GaugeSnapshot& g : snap.gauges) {
    w.Str(g.name);
    w.U64(static_cast<uint64_t>(g.value));  // two's complement round-trip
  }
  w.U32(static_cast<uint32_t>(snap.histograms.size()));
  for (const HistogramSnapshot& h : snap.histograms) {
    w.Str(h.name);
    w.U64(h.count);
    w.U64(h.sum);
    w.U32(static_cast<uint32_t>(h.buckets.size()));
    for (uint64_t b : h.buckets) {
      w.U64(b);
    }
  }
}

bool ParseMetricsSnapshot(WireReader& r, MetricsSnapshot* out) {
  uint32_t n = 0;
  if (!r.U32(&n) || n > kMaxMetricRows) {
    return false;
  }
  out->counters.clear();
  out->counters.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CounterSnapshot c;
    if (!r.Str(&c.name, kMaxMetricName) || !r.U64(&c.value)) {
      return false;
    }
    out->counters.push_back(std::move(c));
  }
  if (!r.U32(&n) || n > kMaxMetricRows) {
    return false;
  }
  out->gauges.clear();
  out->gauges.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    GaugeSnapshot g;
    uint64_t raw = 0;
    if (!r.Str(&g.name, kMaxMetricName) || !r.U64(&raw)) {
      return false;
    }
    g.value = static_cast<int64_t>(raw);
    out->gauges.push_back(std::move(g));
  }
  if (!r.U32(&n) || n > kMaxMetricRows) {
    return false;
  }
  out->histograms.clear();
  out->histograms.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    HistogramSnapshot h;
    uint32_t n_buckets = 0;
    if (!r.Str(&h.name, kMaxMetricName) || !r.U64(&h.count) || !r.U64(&h.sum) ||
        !r.U32(&n_buckets) || n_buckets > h.buckets.size()) {
      return false;
    }
    for (uint32_t b = 0; b < n_buckets; ++b) {
      if (!r.U64(&h.buckets[b])) {
        return false;
      }
    }
    out->histograms.push_back(std::move(h));
  }
  return true;
}

// --- frame transport ---------------------------------------------------------

namespace {

Status SendAll(int sock, const std::byte* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = send(sock, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status(Errc::kIo);
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Returns 1 on success, 0 on clean EOF before the first byte, -1 on error
// (including EOF after at least one byte).
int RecvAll(int sock, std::byte* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = recv(sock, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    if (n == 0) {
      return got == 0 ? 0 : -1;
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

Status SendFrame(int sock, std::span<const std::byte> payload) {
  WireWriter header;
  header.U32(static_cast<uint32_t>(payload.size()));
  if (Status st = SendAll(sock, header.buf().data(), header.buf().size()); !st.ok()) {
    return st;
  }
  return SendAll(sock, payload.data(), payload.size());
}

Result<std::vector<std::byte>> RecvFrame(int sock, uint32_t max_bytes) {
  std::byte header[4];
  const int rc = RecvAll(sock, header, sizeof header);
  if (rc == 0) {
    return Errc::kNoEnt;  // clean close between frames
  }
  if (rc < 0) {
    return Errc::kIo;
  }
  WireReader r(std::span<const std::byte>(header, sizeof header));
  uint32_t len = 0;
  r.U32(&len);
  if (len > max_bytes) {
    return Errc::kProto;
  }
  std::vector<std::byte> payload(len);
  if (len > 0 && RecvAll(sock, payload.data(), len) != 1) {
    return Errc::kIo;
  }
  return payload;
}

}  // namespace atomfs
