// TxnHost: the narrow interface the serving layer uses to drive transactions
// (wire ops TXBEGIN / TXCOMMIT / TXABORT and in-transaction execution of the
// path-based FileSystem ops).
//
// This lives in src/server rather than src/txn so that atomfs_net does not
// link the transaction (and hence journal/workload) libraries: the server
// depends only on this pure interface, and a TxnManager (src/txn/txn.h) is
// plugged in by the embedder (tools/atomfsd.cpp) when transactions are
// enabled. A server with no TxnHost answers the transaction opcodes EINVAL.
//
// Threading: all four calls may arrive concurrently from different worker
// threads (for different transactions); implementations synchronize
// internally. The server guarantees that calls for one transaction id are
// serialized (one connection's requests execute on one worker at a time).

#ifndef ATOMFS_SRC_SERVER_TXN_HOST_H_
#define ATOMFS_SRC_SERVER_TXN_HOST_H_

#include <cstdint>

#include "src/afs/op.h"
#include "src/util/status.h"

namespace atomfs {

class TxnHost {
 public:
  virtual ~TxnHost() = default;

  // Opens a transaction and returns its id (> 0).
  virtual Result<uint64_t> TxBegin() = 0;
  // Atomically applies the transaction's buffered ops, or rolls the whole
  // transaction back: kTxConflict if it lost an optimistic-concurrency race,
  // the failing op's error if its ops no longer apply cleanly. The
  // transaction is finished either way. kInval for an unknown id.
  virtual Status TxCommit(uint64_t txid) = 0;
  // Discards the transaction; its ops were never visible. kInval for an
  // unknown id.
  virtual Status TxAbort(uint64_t txid) = 0;
  // Executes one op inside the transaction, against its private snapshot
  // (read-your-writes; invisible to other transactions until commit).
  virtual OpResult TxApply(uint64_t txid, const OpCall& call) = 0;
  // Admin: checkpoint + compact the journal now (wire op CHECKPOINT,
  // atomfsd SIGHUP). Non-pure so hosts without a journal keep compiling;
  // the default answers kInval, a journaled host kIo on a failed write.
  virtual Status TxCheckpoint() { return Status(Errc::kInval); }
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_SERVER_TXN_HOST_H_
