// AtomFsServer: the event-loop serving layer of atomfsd.
//
// Threading model (protocol v2, pipelined): one acceptor thread per listener
// (Unix-domain and/or TCP on 127.0.0.1) round-robins accepted sockets across
// N event-loop shards. Each shard runs a non-blocking epoll loop that owns a
// set of connections: it reads whatever the kernel has buffered, decodes
// every complete frame in the read buffer (up to the connection's negotiated
// `max_inflight` window), and hands the decoded requests to a bounded worker
// pool running against the shared FileSystem. Workers drain one connection's
// ready queue at a time, so replies are produced in request order and each
// connection's Vfs is touched by at most one thread; the loop then flushes
// all accumulated reply frames with a single writev(2) per readiness cycle.
//
// Backpressure is structural, not advisory: a frame is admitted only when
// its request units fit the remaining `max_inflight` window whole, so
// admitted-but-unanswered units never exceed the window (the one exception,
// a msgbatch that alone exceeds the window, admits only at zero inflight
// and is shed with EBACKPRESSURE at execution). A frame that does not fit
// is parked parsed, and the shard stops reading from that socket (EPOLLIN
// disarmed) until replies drain — as it also does when the outbox grows
// past `max_outbox_bytes` — so the peer's sends back up into its own socket
// buffer. Idle and half-open connections are reaped after
// `idle_timeout_ms` with a best-effort ETIMEDOUT reply.
//
// Every connection gets its own Vfs over the shared FileSystem, so
// descriptor tables are isolated per connection — exactly a process fd
// table — and dropping the connection drops its descriptors.
//
// Robustness contract: arbitrary bytes on the wire never crash the server.
// A frame that is oversized, truncated, or fails ParseRequest poisons the
// connection: earlier pipelined requests still get their replies, then a
// kProto error response is sent and the connection is closed, because
// framing can no longer be trusted. Well-framed requests with bad arguments
// (unparsable path, unknown fd) get their error status back and the
// conversation continues.
//
// Stop() is graceful: listeners close first (no new connections), workers
// are drained and joined, then each shard wakes, tears down its connections
// and exits; every thread is joined before Stop() returns.

#ifndef ATOMFS_SRC_SERVER_SERVER_H_
#define ATOMFS_SRC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/wire.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/server/txn_host.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

struct ServerOptions {
  // Unix-domain listener path; empty disables. The path is unlinked on
  // Start (stale socket) and again on Stop.
  std::string unix_path;
  // TCP listener on 127.0.0.1; port 0 picks an ephemeral port (see
  // BoundTcpPort). Disabled unless tcp_listen is set.
  bool tcp_listen = false;
  uint16_t tcp_port = 0;
  // Event-loop shards; accepted connections are round-robined across them.
  int shards = 2;
  // Bounded execution pool shared by all shards.
  int workers = 4;
  uint32_t max_frame_bytes = kWireMaxFrameBytes;
  // Largest inflight window HELLO will grant, and the window a connection
  // speaks at before (or without) HELLO.
  uint32_t max_inflight = 128;
  uint32_t default_inflight = 32;
  // Reap a connection with nothing inflight and nothing buffered after this
  // long without traffic (a best-effort ETIMEDOUT reply is attempted).
  // 0 disables the sweep.
  uint32_t idle_timeout_ms = 0;
  // Reading from a connection pauses while its un-flushed reply bytes exceed
  // this, independent of the inflight window.
  size_t max_outbox_bytes = 8u << 20;
  // Registry for the server's own metrics (server.connections,
  // server.protocol_errors, server.op.<name>.latency_ns, plus the loop
  // counters server.loop.wakeups / server.backpressure_stalls /
  // server.idle_timeouts and the queue-depth gauges) and the source of the
  // WireOp::kMetrics response. Share one registry between the server and a
  // TracingObserver on the backend to serve a unified snapshot; when null
  // the server owns a private registry, so kMetrics always works. A caller-
  // provided registry must outlive the server's threads — Stop() (or the
  // server destructor) before destroying it.
  MetricsRegistry* metrics = nullptr;
  // Flight-recorder ring served by WireOp::kTraceDump (usually the ring the
  // backend's TracingObserver writes into). Optional: when null, kTraceDump
  // answers with an empty (but valid) Chrome trace document. Same lifetime
  // rule as `metrics`.
  TraceRing* trace_ring = nullptr;
  // Transaction host driving TXBEGIN / TXCOMMIT / TXABORT (usually the
  // TxnManager wrapping the backend — in which case `fs` should be that same
  // TxnManager, so direct mutations are journaled and conflict-tracked too).
  // Optional: when null the transaction opcodes answer EINVAL. Same lifetime
  // rule as `metrics`.
  TxnHost* txn = nullptr;
};

class AtomFsServer {
 public:
  // `fs` must outlive the server and be thread-safe (every FileSystem here
  // is; that is the paper's whole point).
  AtomFsServer(FileSystem* fs, ServerOptions options);
  ~AtomFsServer();

  AtomFsServer(const AtomFsServer&) = delete;
  AtomFsServer& operator=(const AtomFsServer&) = delete;

  // Binds the listeners and spawns acceptors + shards + workers. kInval if
  // no listener is configured; kIo on socket/bind/epoll failure.
  Status Start();

  // Graceful shutdown; idempotent. Joins all threads.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Actual TCP port after Start (useful with tcp_port = 0).
  uint16_t BoundTcpPort() const { return bound_tcp_port_; }

  // Snapshot of the counters served by WireOp::kStats, derived from the
  // same registry histograms kMetrics serves (one bucket math, one answer).
  WireServerStats StatsSnapshot() const;

  // The registry backing this server's stats (options.metrics or the
  // internally-owned one).
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  struct Conn;
  struct Shard;

  void AcceptLoop(int listen_fd);
  void ShardLoop(Shard& shard);
  void WorkerLoop();

  // Shard-thread helpers (all touch Conn loop-owned state). The bool-valued
  // ones return false when they destroyed the connection.
  void RegisterIntake(Shard& shard);
  void HandleCompletions(Shard& shard);
  bool OnReadable(Shard& shard, Conn* c);
  void DecodeBuffered(Conn* c);
  void PoisonConn(Conn* c);
  bool FlushOutbox(Shard& shard, Conn* c);
  void UpdateReadInterest(Shard& shard, Conn* c);
  void ApplyMask(Shard& shard, Conn* c, uint32_t mask);
  void SweepIdle(Shard& shard);
  void MaybeSchedule(Conn* c);
  bool MaybeClose(Shard& shard, Conn* c);
  void DestroyConn(Shard& shard, Conn* c);

  // Worker-side: drain one connection's ready queue, in order.
  void ExecuteConn(Conn* c);
  // Handles one parsed non-batch request; returns the response payload.
  // Needs the connection for its Vfs and for HELLO's window update.
  std::vector<std::byte> DispatchOne(Conn& conn, const WireRequest& req);
  // Routes one request into the connection's open transaction. Returns an
  // empty vector for requests that bypass the transaction (admin/session
  // ops), which then fall through to the normal dispatch.
  std::vector<std::byte> DispatchInTxn(Conn& conn, const WireRequest& req);
  void RecordLatency(WireOp op, uint64_t nanos);
  void NoteProtocolError();

  FileSystem* fs_;
  ServerOptions opts_;

  std::vector<int> listen_fds_;
  uint16_t bound_tcp_port_ = 0;
  std::vector<std::thread> acceptors_;

  // Event-loop shards.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> shard_threads_;
  std::atomic<uint64_t> next_shard_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  // Bounded worker pool: connections with decoded-but-unexecuted requests.
  std::vector<std::thread> workers_;
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Conn*> work_queue_;
  bool stopping_ = false;  // guarded by work_mu_
  // Atomic because running() is a cross-thread observer (tests poll it while
  // Start/Stop run elsewhere); Start/Stop themselves are externally
  // serialized.
  std::atomic<bool> running_{false};

  // Stats live in the metrics registry; recording is lock-free (per-thread
  // shards), unlike the mutex-guarded histograms this replaced.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  Histogram op_latency_[kWireOpMax + 1];
  Counter connections_accepted_;
  Counter protocol_errors_;
  Counter loop_wakeups_;
  Counter backpressure_stalls_;
  Counter idle_timeouts_;
  Gauge active_conns_;
  Gauge work_queue_depth_;
  Histogram exec_batch_size_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_SERVER_SERVER_H_
