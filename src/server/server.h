// AtomFsServer: the multi-threaded serving layer of atomfsd.
//
// Threading model: one acceptor thread per listener (Unix-domain and/or
// TCP on 127.0.0.1) pushes accepted sockets onto a queue; a fixed pool of
// worker threads pops sockets and serves one connection each until the peer
// hangs up (excess connections wait in the queue). Every connection gets its
// own Vfs over the shared FileSystem, so descriptor tables are isolated per
// connection — exactly a process fd table — and dropping the connection
// drops its descriptors.
//
// Robustness contract: arbitrary bytes on the wire never crash the server.
// A frame that is oversized, truncated, or fails ParseRequest gets a kProto
// error response (when the socket still accepts writes) and the connection
// is closed, because framing can no longer be trusted. Well-framed requests
// with bad arguments (unparsable path, unknown fd) get their error status
// back and the conversation continues.
//
// Stop() is graceful: listeners close first (no new connections), in-flight
// sockets are shutdown(2) to unblock workers mid-recv, and every thread is
// joined before Stop() returns.

#ifndef ATOMFS_SRC_SERVER_SERVER_H_
#define ATOMFS_SRC_SERVER_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/net/wire.h"
#include "src/obs/metrics.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

struct ServerOptions {
  // Unix-domain listener path; empty disables. The path is unlinked on
  // Start (stale socket) and again on Stop.
  std::string unix_path;
  // TCP listener on 127.0.0.1; port 0 picks an ephemeral port (see
  // BoundTcpPort). Disabled unless tcp_listen is set.
  bool tcp_listen = false;
  uint16_t tcp_port = 0;
  int workers = 4;
  uint32_t max_frame_bytes = kWireMaxFrameBytes;
  // Registry for the server's own metrics (server.connections,
  // server.protocol_errors, server.op.<name>.latency_ns) and the source of
  // the WireOp::kMetrics response. Share one registry between the server and
  // a TracingObserver on the backend to serve a unified snapshot; when null
  // the server owns a private registry, so kMetrics always works.
  MetricsRegistry* metrics = nullptr;
};

class AtomFsServer {
 public:
  // `fs` must outlive the server and be thread-safe (every FileSystem here
  // is; that is the paper's whole point).
  AtomFsServer(FileSystem* fs, ServerOptions options);
  ~AtomFsServer();

  AtomFsServer(const AtomFsServer&) = delete;
  AtomFsServer& operator=(const AtomFsServer&) = delete;

  // Binds the listeners and spawns acceptors + workers. kInval if no
  // listener is configured; kIo on socket/bind failure.
  Status Start();

  // Graceful shutdown; idempotent. Joins all threads.
  void Stop();

  bool running() const { return running_; }

  // Actual TCP port after Start (useful with tcp_port = 0).
  uint16_t BoundTcpPort() const { return bound_tcp_port_; }

  // Snapshot of the counters served by WireOp::kStats, derived from the
  // same registry histograms kMetrics serves (one bucket math, one answer).
  WireServerStats StatsSnapshot() const;

  // The registry backing this server's stats (options.metrics or the
  // internally-owned one).
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  void AcceptLoop(int listen_fd);
  void WorkerLoop();
  void ServeConnection(int sock);
  // Handles one parsed request; returns the response payload.
  std::vector<std::byte> Dispatch(class Vfs& vfs, const WireRequest& req);
  void RecordLatency(WireOp op, uint64_t nanos);
  void NoteProtocolError();

  FileSystem* fs_;
  ServerOptions opts_;

  std::vector<int> listen_fds_;
  uint16_t bound_tcp_port_ = 0;
  std::vector<std::thread> acceptors_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted sockets awaiting a worker
  bool stopping_ = false;
  bool running_ = false;

  // Sockets currently being served, so Stop can shutdown(2) them.
  mutable std::mutex conns_mu_;
  std::set<int> active_conns_;

  // Stats live in the metrics registry; recording is lock-free (per-thread
  // shards), unlike the mutex-guarded histograms this replaced.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  Histogram op_latency_[kWireOpMax + 1];
  Counter connections_accepted_;
  Counter protocol_errors_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_SERVER_SERVER_H_
