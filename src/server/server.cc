#include "src/server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "src/obs/export.h"
#include "src/vfs/vfs.h"

namespace atomfs {

namespace {

// How much one readiness cycle will read from a single connection before
// yielding to the shard's other connections (fairness under pipelined load).
constexpr size_t kReadChunk = 64u << 10;
constexpr size_t kMaxReadPerCycle = 256u << 10;
// iovec slots offered to one sendmsg; the flush loop chunks longer outboxes.
constexpr int kMaxIov = 64;

uint64_t NowMs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Success responses begin with wire status 0.
std::vector<std::byte> OkResponse(WireWriter&& body) {
  std::vector<std::byte> out;
  out.reserve(1 + body.buf().size());
  out.push_back(std::byte{0});
  out.insert(out.end(), body.buf().begin(), body.buf().end());
  return out;
}

std::vector<std::byte> StatusResponse(Status st) {
  WireWriter w;
  w.U8(WireStatusOf(st.code()));
  return w.Take();
}

// --- routable-op mapping -----------------------------------------------------
// The protocol's path-based FileSystem surface maps onto the one FsOp
// descriptor (src/vfs/filesystem.h): normal dispatch, transactional dispatch
// and the response encoding share this mapping instead of keeping a switch
// statement each.

std::optional<OpKind> PathOpKindOf(WireOp op) {
  switch (op) {
    case WireOp::kMkdir:
      return OpKind::kMkdir;
    case WireOp::kMknod:
      return OpKind::kMknod;
    case WireOp::kRmdir:
      return OpKind::kRmdir;
    case WireOp::kUnlink:
      return OpKind::kUnlink;
    case WireOp::kRename:
      return OpKind::kRename;
    case WireOp::kExchange:
      return OpKind::kExchange;
    case WireOp::kStat:
      return OpKind::kStat;
    case WireOp::kReadDir:
      return OpKind::kReadDir;
    case WireOp::kRead:
      return OpKind::kRead;
    case WireOp::kWrite:
      return OpKind::kWrite;
    case WireOp::kTruncate:
      return OpKind::kTruncate;
    default:
      return std::nullopt;
  }
}

// Parses the request's paths into the descriptor. The write payload stays a
// view into the request, valid for the duration of the dispatch.
Result<FsOp> FsOpOfRequest(OpKind kind, const WireRequest& req) {
  FsOp op;
  op.kind = kind;
  auto a = ParsePath(req.path_a);
  if (!a.ok()) {
    return a.status();
  }
  op.a = std::move(*a);
  if (kind == OpKind::kRename || kind == OpKind::kExchange) {
    auto b = ParsePath(req.path_b);
    if (!b.ok()) {
      return b.status();
    }
    op.b = std::move(*b);
  }
  op.offset = req.offset;
  op.len = req.count;
  op.payload = std::span<const std::byte>(req.data);
  return op;
}

std::vector<std::byte> FsOpResponse(OpKind kind, const FsOpResult& r) {
  if (!r.status.ok()) {
    return StatusResponse(r.status);
  }
  WireWriter body;
  switch (kind) {
    case OpKind::kStat:
      EncodeAttr(body, r.attr);
      break;
    case OpKind::kReadDir:
      EncodeDirEntries(body, r.entries);
      break;
    case OpKind::kRead:
      body.Blob(std::span<const std::byte>(r.data.data(), r.data.size()));
      break;
    case OpKind::kWrite:
      body.U64(r.nbytes);
      break;
    default:
      break;  // status-only reply
  }
  return OkResponse(std::move(body));
}

// Prepends the u32 length header: a ready-to-send frame.
std::vector<std::byte> FrameOf(std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(4 + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xff));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

uint32_t PeekU32(const std::byte* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint32_t>(p[i]);
  }
  return v;
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

}  // namespace

// One decoded request unit awaiting execution. A poison item marks the spot
// in the pipeline where framing broke: it is answered with kProto, in order,
// and closes the connection behind it.
struct ConnReadyItem {
  WireRequest req;
  bool poison = false;
};

// Per-connection state. Loop-owned fields are touched only by the owning
// shard thread; fields below `mu` are the loop<->worker handoff.
struct AtomFsServer::Conn {
  explicit Conn(FileSystem* fs) : vfs(fs) {}

  uint64_t id = 0;
  int fd = -1;
  Shard* shard = nullptr;
  Vfs vfs;  // per-connection descriptor table; touched by one worker at a time
  // Open transaction id (0 = none). Same ownership as `vfs`: requests for
  // one connection execute on one worker at a time, and teardown reads it
  // only after the worker handoff (exec_scheduled) has quiesced.
  uint64_t active_txn = 0;

  // Loop-owned.
  std::vector<std::byte> rbuf;
  size_t rpos = 0;
  bool peer_eof = false;
  bool poisoned = false;  // framing broke; never read or decode again
  bool stalled = false;   // decode parked on a full window (metric edge)
  // A parsed frame waiting for window room (kept parsed so re-admission
  // after replies drain costs nothing); decode stalls while this is set.
  std::unique_ptr<WireRequest> parked;
  uint32_t parked_units = 0;
  uint32_t armed_mask = 0;
  uint64_t last_activity_ms = 0;
  size_t out_head_off = 0;  // bytes of outbox.front() already written

  // Shared loop<->worker state.
  std::mutex mu;
  std::deque<ConnReadyItem> ready;
  std::deque<std::vector<std::byte>> outbox;  // framed replies, FIFO
  size_t outbox_bytes = 0;
  uint32_t inflight = 0;  // admitted request units without a reply in the outbox
  uint32_t window = 1;    // negotiated max_inflight
  bool exec_scheduled = false;
  bool want_close = false;  // drain ready+outbox, then close
  bool dead = false;        // transport broken; close as soon as no worker holds us
};

struct AtomFsServer::Shard {
  int epoll_fd = -1;
  int event_fd = -1;
  std::atomic<bool> stop{false};
  std::mutex mu;                       // guards intake + completions
  std::vector<int> intake;             // accepted sockets awaiting registration
  std::vector<uint64_t> completions;   // conn ids with fresh worker output
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;  // loop-owned
};

AtomFsServer::AtomFsServer(FileSystem* fs, ServerOptions options)
    : fs_(fs), opts_(std::move(options)) {
  if (opts_.metrics != nullptr) {
    metrics_ = opts_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  connections_accepted_ = metrics_->GetCounter("server.connections");
  protocol_errors_ = metrics_->GetCounter("server.protocol_errors");
  loop_wakeups_ = metrics_->GetCounter("server.loop.wakeups");
  backpressure_stalls_ = metrics_->GetCounter("server.backpressure_stalls");
  idle_timeouts_ = metrics_->GetCounter("server.idle_timeouts");
  active_conns_ = metrics_->GetGauge("server.conns.active");
  work_queue_depth_ = metrics_->GetGauge("server.work_queue.depth");
  exec_batch_size_ = metrics_->GetHistogram("server.worker.batch_size");
  for (uint8_t op = kWireOpMin; op <= kWireOpMax; ++op) {
    op_latency_[op] = metrics_->GetHistogram(
        "server.op." + std::string(WireOpName(static_cast<WireOp>(op))) + ".latency_ns");
  }
}

AtomFsServer::~AtomFsServer() { Stop(); }

Status AtomFsServer::Start() {
  if (running_) {
    return Status(Errc::kBusy);
  }
  if (opts_.unix_path.empty() && !opts_.tcp_listen) {
    return Status(Errc::kInval);
  }

  if (!opts_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status(Errc::kNameTooLong);
    }
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status(Errc::kIo);
    }
    unlink(opts_.unix_path.c_str());  // stale socket from a crashed daemon
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 || listen(fd, 128) < 0) {
      close(fd);
      return Status(Errc::kIo);
    }
    listen_fds_.push_back(fd);
  }

  if (opts_.tcp_listen) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      Stop();
      return Status(Errc::kIo);
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.tcp_port);
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 || listen(fd, 128) < 0) {
      close(fd);
      Stop();
      return Status(Errc::kIo);
    }
    socklen_t len = sizeof addr;
    getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_tcp_port_ = ntohs(addr.sin_port);
    listen_fds_.push_back(fd);
  }

  const int n_shards = opts_.shards > 0 ? opts_.shards : 1;
  for (int i = 0; i < n_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    shard->event_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (shard->epoll_fd < 0 || shard->event_fd < 0) {
      shards_.push_back(std::move(shard));
      Stop();
      return Status(Errc::kIo);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the wakeup eventfd
    epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev);
    shards_.push_back(std::move(shard));
  }

  stopping_ = false;
  running_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    shard_threads_.emplace_back([this, s = shard.get()] { ShardLoop(*s); });
  }
  const int workers = opts_.workers > 0 ? opts_.workers : 1;
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  for (int fd : listen_fds_) {
    acceptors_.emplace_back([this, fd] { AcceptLoop(fd); });
  }
  return Status::Ok();
}

void AtomFsServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    if (!running_.load(std::memory_order_acquire) && listen_fds_.empty() && shards_.empty()) {
      return;
    }
    stopping_ = true;
  }
  // Closing the listeners makes accept() fail and the acceptors exit.
  for (int fd : listen_fds_) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  listen_fds_.clear();
  for (std::thread& t : acceptors_) {
    t.join();
  }
  acceptors_.clear();
  // Workers next: once they are joined, nobody but the shard threads can
  // touch a Conn, so the shards can tear their connections down safely.
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
  workers_.clear();
  for (auto& shard : shards_) {
    shard->stop.store(true, std::memory_order_release);
    if (shard->event_fd >= 0) {
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n = write(shard->event_fd, &one, sizeof one);
    }
  }
  for (std::thread& t : shard_threads_) {
    t.join();
  }
  shard_threads_.clear();
  {
    // Only now is the queue quiescent: shard threads were the last producers
    // (MaybeSchedule), and they are joined. The lock still pairs with
    // MaybeSchedule's stopping_ check for any straggler between the flag
    // flip and the joins above.
    std::lock_guard<std::mutex> lock(work_mu_);
    work_queue_depth_.Sub(static_cast<int64_t>(work_queue_.size()));
    work_queue_.clear();
  }
  for (auto& shard : shards_) {
    for (auto& [id, c] : shard->conns) {
      if (opts_.txn != nullptr && c->active_txn != 0) {
        opts_.txn->TxAbort(c->active_txn);  // never leave a txn half-open
      }
      close(c->fd);
      active_conns_.Sub(1);
    }
    shard->conns.clear();
    for (int fd : shard->intake) {
      close(fd);
    }
    shard->intake.clear();
    if (shard->epoll_fd >= 0) {
      close(shard->epoll_fd);
    }
    if (shard->event_fd >= 0) {
      close(shard->event_fd);
    }
  }
  shards_.clear();
  if (!opts_.unix_path.empty()) {
    unlink(opts_.unix_path.c_str());
  }
  running_.store(false, std::memory_order_release);
}

void AtomFsServer::AcceptLoop(int listen_fd) {
  for (;;) {
    const int sock = accept(listen_fd, nullptr, nullptr);
    if (sock < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed (Stop) or fatal error
    }
    // Pipelined framing is still latency-bound on the last frame of a burst:
    // without this, Nagle holds the tail until the client's delayed ACK.
    // No-op (ENOTSUP) on unix-domain sockets.
    const int one = 1;
    setsockopt(sock, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections_accepted_.Inc();
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      if (stopping_) {
        close(sock);
        return;
      }
    }
    // Relaxed: the counter only round-robins placement; the socket itself is
    // handed over under shard.mu below.
    Shard& shard =
        *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size()];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.intake.push_back(sock);
    }
    const uint64_t one64 = 1;
    [[maybe_unused]] ssize_t n = write(shard.event_fd, &one64, sizeof one64);
  }
}

// --- shard event loop --------------------------------------------------------

void AtomFsServer::ShardLoop(Shard& shard) {
  epoll_event evs[64];
  const int timeout_ms =
      opts_.idle_timeout_ms > 0 ? std::max(1, static_cast<int>(opts_.idle_timeout_ms / 4)) : -1;
  for (;;) {
    const int n = epoll_wait(shard.epoll_fd, evs, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    loop_wakeups_.Inc();
    if (shard.stop.load(std::memory_order_acquire)) {
      return;  // Stop() closes the fds after joining us
    }
    bool notified = n == 0;  // timeout: still sweep below
    // Pass 1: socket readiness. The wakeup eventfd is drained here but its
    // work (intake, completions) runs after, so it can never reference a
    // connection this pass is about to destroy... the other way round is
    // safe: completions look connections up by id.
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.ptr == nullptr) {
        uint64_t junk = 0;
        while (read(shard.event_fd, &junk, sizeof junk) > 0) {
        }
        notified = true;
        continue;
      }
      Conn* c = static_cast<Conn*>(evs[i].data.ptr);
      const uint32_t events = evs[i].events;
      if ((events & EPOLLERR) != 0) {
        {
          std::lock_guard<std::mutex> lk(c->mu);
          c->dead = true;
          c->want_close = true;
        }
        MaybeClose(shard, c);
        continue;
      }
      if ((events & EPOLLOUT) != 0) {
        if (!FlushOutbox(shard, c)) {
          continue;
        }
        UpdateReadInterest(shard, c);
        if (!MaybeClose(shard, c)) {
          continue;
        }
      }
      if ((events & (EPOLLIN | EPOLLHUP)) != 0) {
        OnReadable(shard, c);
      }
    }
    if (notified) {
      RegisterIntake(shard);
      HandleCompletions(shard);
    }
    if (opts_.idle_timeout_ms > 0) {
      SweepIdle(shard);
    }
  }
}

void AtomFsServer::RegisterIntake(Shard& shard) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    fds.swap(shard.intake);
  }
  for (int fd : fds) {
    SetNonBlocking(fd);
    auto conn = std::make_unique<Conn>(fs_);
    Conn* c = conn.get();
    // Relaxed: pure unique-id allocation; the Conn is published to workers
    // via work_mu_ (MaybeSchedule), never through this counter.
    c->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    c->fd = fd;
    c->shard = &shard;
    c->window = std::clamp<uint32_t>(opts_.default_inflight, 1,
                                     std::max<uint32_t>(1, opts_.max_inflight));
    c->last_activity_ms = NowMs();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = c;
    if (epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      continue;
    }
    c->armed_mask = EPOLLIN;
    active_conns_.Add(1);
    shard.conns.emplace(c->id, std::move(conn));
  }
}

void AtomFsServer::HandleCompletions(Shard& shard) {
  std::vector<uint64_t> done;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    done.swap(shard.completions);
  }
  for (uint64_t id : done) {
    auto it = shard.conns.find(id);
    if (it == shard.conns.end()) {
      continue;  // closed while the worker ran
    }
    Conn* c = it->second.get();
    if (!FlushOutbox(shard, c)) {
      continue;
    }
    // Replies just left the outbox, so the window may have opened: decode
    // frames that were parked in the read buffer and resume reading.
    if (!c->poisoned) {
      DecodeBuffered(c);
    }
    MaybeSchedule(c);
    UpdateReadInterest(shard, c);
    MaybeClose(shard, c);
  }
}

bool AtomFsServer::OnReadable(Shard& shard, Conn* c) {
  if (c->poisoned) {
    // Reading is disarmed, but EPOLLHUP still lands here.
    return MaybeClose(shard, c);
  }
  size_t total = 0;
  for (;;) {
    const size_t old_size = c->rbuf.size();
    c->rbuf.resize(old_size + kReadChunk);
    const ssize_t n = recv(c->fd, c->rbuf.data() + old_size, kReadChunk, 0);
    if (n < 0) {
      c->rbuf.resize(old_size);
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      std::lock_guard<std::mutex> lk(c->mu);
      c->dead = true;
      c->want_close = true;
      break;
    }
    if (n == 0) {
      c->rbuf.resize(old_size);
      c->peer_eof = true;
      break;
    }
    c->rbuf.resize(old_size + static_cast<size_t>(n));
    total += static_cast<size_t>(n);
    if (static_cast<size_t>(n) < kReadChunk || total >= kMaxReadPerCycle) {
      break;  // drained, or yield to the shard's other connections
    }
  }
  c->last_activity_ms = NowMs();
  DecodeBuffered(c);
  MaybeSchedule(c);
  UpdateReadInterest(shard, c);
  return MaybeClose(shard, c);
}

void AtomFsServer::DecodeBuffered(Conn* c) {
  while (!c->poisoned) {
    // Admission: a frame enters the pipeline only when its request units fit
    // the remaining window *whole*, so admitted inflight never exceeds the
    // negotiated window. The one exception is a frame arriving with nothing
    // inflight — it always admits, so a msgbatch that alone exceeds the
    // window cannot park forever; execution sheds it with BACKPRESSURE.
    if (c->parked != nullptr) {
      bool admitted = false;
      {
        std::lock_guard<std::mutex> lk(c->mu);
        if (c->inflight == 0 || c->inflight + c->parked_units <= c->window) {
          c->ready.push_back(ConnReadyItem{std::move(*c->parked), false});
          c->inflight += c->parked_units;
          admitted = true;
        } else if (!c->stalled) {
          // Window full: park. Reads throttle; the next reply drain
          // re-enters this loop.
          c->stalled = true;
          backpressure_stalls_.Inc();
        }
      }
      if (!admitted) {
        break;
      }
      c->parked.reset();
      c->stalled = false;
    }
    const size_t avail = c->rbuf.size() - c->rpos;
    if (avail < 4) {
      break;
    }
    const uint32_t len = PeekU32(c->rbuf.data() + c->rpos);
    if (len > opts_.max_frame_bytes) {
      // Oversized declared length: framing is beyond resynchronization.
      PoisonConn(c);
      break;
    }
    if (avail < 4 + static_cast<size_t>(len)) {
      break;
    }
    auto payload = std::span<const std::byte>(c->rbuf.data() + c->rpos + 4, len);
    Result<WireRequest> req = ParseRequest(payload);
    c->rpos += 4 + static_cast<size_t>(len);
    if (!req.ok()) {
      PoisonConn(c);
      break;
    }
    c->parked_units =
        req->op == WireOp::kMsgBatch ? static_cast<uint32_t>(req->batch.size()) : 1;
    c->parked = std::make_unique<WireRequest>(std::move(*req));
    // Loop back to the admission step above.
  }
  if (c->rpos > 0 && (c->rpos == c->rbuf.size() || c->rpos >= kReadChunk)) {
    c->rbuf.erase(c->rbuf.begin(), c->rbuf.begin() + static_cast<ptrdiff_t>(c->rpos));
    c->rpos = 0;
  }
  // EOF with everything decodable decoded: answer what was admitted, flush,
  // then close. A trailing partial frame is dropped with the connection; a
  // parked frame (parsed or still buffered) is work still owed.
  if (c->peer_eof && !c->poisoned && c->parked == nullptr) {
    const size_t avail = c->rbuf.size() - c->rpos;
    const bool complete_frame_parked =
        avail >= 4 && avail >= 4 + static_cast<size_t>(PeekU32(c->rbuf.data() + c->rpos));
    if (!complete_frame_parked) {
      std::lock_guard<std::mutex> lk(c->mu);
      c->want_close = true;
    }
  }
}

void AtomFsServer::PoisonConn(Conn* c) {
  NoteProtocolError();
  c->poisoned = true;
  c->rbuf.clear();
  c->rpos = 0;
  c->parked.reset();  // decode never runs again; drop any admitted-pending frame
  std::lock_guard<std::mutex> lk(c->mu);
  c->ready.push_back(ConnReadyItem{WireRequest{}, true});
  c->inflight += 1;
}

bool AtomFsServer::FlushOutbox(Shard& shard, Conn* c) {
  for (;;) {
    iovec iov[kMaxIov];
    int n_iov = 0;
    size_t offered = 0;
    {
      std::lock_guard<std::mutex> lk(c->mu);
      if (c->dead) {
        break;
      }
      size_t head_off = c->out_head_off;
      for (const auto& frame : c->outbox) {
        if (n_iov == kMaxIov) {
          break;
        }
        iov[n_iov].iov_base = const_cast<std::byte*>(frame.data()) + head_off;
        iov[n_iov].iov_len = frame.size() - head_off;
        offered += iov[n_iov].iov_len;
        head_off = 0;
        ++n_iov;
      }
    }
    if (n_iov == 0) {
      break;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(n_iov);
    const ssize_t wrote = sendmsg(c->fd, &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ApplyMask(shard, c, (c->armed_mask & EPOLLIN) | EPOLLOUT);
        return true;
      }
      {
        std::lock_guard<std::mutex> lk(c->mu);
        c->dead = true;
        c->want_close = true;
      }
      return MaybeClose(shard, c);
    }
    {
      std::lock_guard<std::mutex> lk(c->mu);
      size_t left = static_cast<size_t>(wrote);
      while (left > 0 && !c->outbox.empty()) {
        auto& front = c->outbox.front();
        const size_t remain = front.size() - c->out_head_off;
        if (left >= remain) {
          left -= remain;
          c->outbox_bytes -= front.size();
          c->outbox.pop_front();
          c->out_head_off = 0;
        } else {
          c->out_head_off += left;
          left = 0;
        }
      }
    }
    if (static_cast<size_t>(wrote) < offered) {
      ApplyMask(shard, c, (c->armed_mask & EPOLLIN) | EPOLLOUT);
      return true;
    }
  }
  ApplyMask(shard, c, c->armed_mask & ~static_cast<uint32_t>(EPOLLOUT));
  return true;
}

void AtomFsServer::UpdateReadInterest(Shard& shard, Conn* c) {
  // A parked frame means the window is effectively full: reading more would
  // only grow the buffer behind a frame that cannot be admitted yet.
  bool want_read = !c->poisoned && !c->peer_eof && c->parked == nullptr;
  if (want_read) {
    std::lock_guard<std::mutex> lk(c->mu);
    want_read = !c->dead && !c->want_close && c->inflight < c->window &&
                c->outbox_bytes <= opts_.max_outbox_bytes;
  }
  const uint32_t mask = (want_read ? EPOLLIN : 0u) | (c->armed_mask & EPOLLOUT);
  ApplyMask(shard, c, mask);
}

void AtomFsServer::ApplyMask(Shard& shard, Conn* c, uint32_t mask) {
  if (mask == c->armed_mask) {
    return;
  }
  epoll_event ev{};
  ev.events = mask;
  ev.data.ptr = c;
  epoll_ctl(shard.epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  c->armed_mask = mask;
}

void AtomFsServer::SweepIdle(Shard& shard) {
  const uint64_t now = NowMs();
  std::vector<Conn*> victims;
  for (auto& [id, conn] : shard.conns) {
    Conn* c = conn.get();
    if (now - c->last_activity_ms < opts_.idle_timeout_ms) {
      continue;
    }
    std::lock_guard<std::mutex> lk(c->mu);
    if (!c->exec_scheduled && c->inflight == 0 && c->outbox.empty() && c->ready.empty() &&
        !c->want_close) {
      victims.push_back(c);
    }
  }
  for (Conn* c : victims) {
    idle_timeouts_.Inc();
    // Best-effort courtesy frame; if the peer is half-open it just fails.
    const std::vector<std::byte> frame = FrameOf(StatusResponse(Status(Errc::kTimedOut)));
    send(c->fd, frame.data(), frame.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    DestroyConn(shard, c);
  }
}

void AtomFsServer::MaybeSchedule(Conn* c) {
  bool enqueue = false;
  {
    std::lock_guard<std::mutex> lk(c->mu);
    if (!c->ready.empty() && !c->exec_scheduled && !c->dead) {
      c->exec_scheduled = true;
      enqueue = true;
    }
  }
  if (enqueue) {
    std::lock_guard<std::mutex> lock(work_mu_);
    if (stopping_) {
      return;  // Stop() tears every connection down; nothing left to execute
    }
    work_queue_.push_back(c);
    work_queue_depth_.Add(1);
    work_cv_.notify_one();
  }
}

bool AtomFsServer::MaybeClose(Shard& shard, Conn* c) {
  bool destroy = false;
  {
    std::lock_guard<std::mutex> lk(c->mu);
    if (c->exec_scheduled) {
      return true;  // a worker holds this conn; completion re-checks
    }
    if (c->dead) {
      destroy = true;
    } else if (c->want_close && c->ready.empty() && c->outbox.empty()) {
      destroy = true;
    }
  }
  if (destroy) {
    DestroyConn(shard, c);
    return false;
  }
  return true;
}

void AtomFsServer::DestroyConn(Shard& shard, Conn* c) {
  if (opts_.txn != nullptr && c->active_txn != 0) {
    // Dropping the connection rolls its open transaction back — its ops
    // were buffered in the txn's private view and are never visible.
    opts_.txn->TxAbort(c->active_txn);
    c->active_txn = 0;
  }
  epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
  close(c->fd);
  active_conns_.Sub(1);
  shard.conns.erase(c->id);
}

// --- worker pool -------------------------------------------------------------

void AtomFsServer::WorkerLoop() {
  for (;;) {
    Conn* c = nullptr;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !work_queue_.empty(); });
      if (stopping_) {
        return;  // leftover queue entries are torn down by Stop
      }
      c = work_queue_.front();
      work_queue_.pop_front();
      work_queue_depth_.Sub(1);
    }
    ExecuteConn(c);
  }
}

void AtomFsServer::ExecuteConn(Conn* c) {
  // Captured before the drain: once exec_scheduled drops, the loop may
  // destroy the connection and `c` must not be touched again.
  Shard* home = c->shard;
  const uint64_t id = c->id;
  for (;;) {
    std::deque<ConnReadyItem> todo;
    {
      std::lock_guard<std::mutex> lk(c->mu);
      if (c->ready.empty()) {
        c->exec_scheduled = false;
        break;
      }
      todo.swap(c->ready);
    }
    exec_batch_size_.Record(todo.size());
    for (ConnReadyItem& item : todo) {
      std::vector<std::vector<std::byte>> frames;
      bool close_after = false;
      if (item.poison) {
        frames.push_back(FrameOf(StatusResponse(Status(Errc::kProto))));
        close_after = true;
      } else if (item.req.op == WireOp::kMsgBatch) {
        uint32_t window = 0;
        {
          std::lock_guard<std::mutex> lk(c->mu);
          window = c->window;
        }
        WallTimer batch_timer;
        if (item.req.batch.size() > window) {
          // Over-committed batch: shed the whole frame, execute nothing.
          // Every sub-request still gets its reply slot.
          for (size_t i = 0; i < item.req.batch.size(); ++i) {
            frames.push_back(FrameOf(StatusResponse(Status(Errc::kBackpressure))));
          }
        } else {
          for (const WireRequest& sub : item.req.batch) {
            WallTimer timer;
            frames.push_back(FrameOf(DispatchOne(*c, sub)));
            RecordLatency(sub.op, timer.ElapsedNanos());
          }
        }
        RecordLatency(WireOp::kMsgBatch, batch_timer.ElapsedNanos());
      } else {
        WallTimer timer;
        frames.push_back(FrameOf(DispatchOne(*c, item.req)));
        RecordLatency(item.req.op, timer.ElapsedNanos());
      }
      std::lock_guard<std::mutex> lk(c->mu);
      for (std::vector<std::byte>& f : frames) {
        c->outbox_bytes += f.size();
        c->outbox.push_back(std::move(f));
        if (c->inflight > 0) {
          --c->inflight;
        }
      }
      if (close_after) {
        c->want_close = true;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(home->mu);
    home->completions.push_back(id);
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(home->event_fd, &one, sizeof one);
}

// --- dispatch ----------------------------------------------------------------

std::vector<std::byte> AtomFsServer::DispatchOne(Conn& conn, const WireRequest& req) {
  if (conn.active_txn != 0 && opts_.txn != nullptr) {
    std::vector<std::byte> routed = DispatchInTxn(conn, req);
    if (!routed.empty()) {
      return routed;  // the op executed inside (or was refused by) the txn
    }
    // Empty: an admin/session/txn-control op; normal dispatch below.
  }
  Vfs& vfs = conn.vfs;
  switch (req.op) {
    case WireOp::kPing:
      return OkResponse(WireWriter());
    case WireOp::kMkdir:
    case WireOp::kMknod:
    case WireOp::kRmdir:
    case WireOp::kUnlink:
    case WireOp::kRename:
    case WireOp::kExchange:
    case WireOp::kTruncate:
    case WireOp::kStat:
    case WireOp::kReadDir:
    case WireOp::kRead:
    case WireOp::kWrite: {
      const OpKind kind = *PathOpKindOf(req.op);
      auto op = FsOpOfRequest(kind, req);
      if (!op.ok()) {
        return StatusResponse(op.status());
      }
      return FsOpResponse(kind, fs_->Dispatch(*op));
    }
    case WireOp::kOpen: {
      auto fd = vfs.Open(req.path_a, req.flags);
      if (!fd.ok()) {
        return StatusResponse(fd.status());
      }
      WireWriter body;
      body.I32(*fd);
      return OkResponse(std::move(body));
    }
    case WireOp::kClose:
      return StatusResponse(vfs.Close(req.fd));
    case WireOp::kFdRead: {
      std::vector<std::byte> buf(req.count);
      auto n = vfs.Read(req.fd, buf);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.Blob(std::span<const std::byte>(buf.data(), *n));
      return OkResponse(std::move(body));
    }
    case WireOp::kFdWrite: {
      auto n = vfs.Write(req.fd, req.data);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.U64(*n);
      return OkResponse(std::move(body));
    }
    case WireOp::kFdPread: {
      std::vector<std::byte> buf(req.count);
      auto n = vfs.Pread(req.fd, req.offset, buf);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.Blob(std::span<const std::byte>(buf.data(), *n));
      return OkResponse(std::move(body));
    }
    case WireOp::kFdPwrite: {
      auto n = vfs.Pwrite(req.fd, req.offset, req.data);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.U64(*n);
      return OkResponse(std::move(body));
    }
    case WireOp::kFstat: {
      auto attr = vfs.Fstat(req.fd);
      if (!attr.ok()) {
        return StatusResponse(attr.status());
      }
      WireWriter body;
      EncodeAttr(body, *attr);
      return OkResponse(std::move(body));
    }
    case WireOp::kFdReadDir: {
      auto entries = vfs.ReadDirFd(req.fd);
      if (!entries.ok()) {
        return StatusResponse(entries.status());
      }
      WireWriter body;
      EncodeDirEntries(body, *entries);
      return OkResponse(std::move(body));
    }
    case WireOp::kFtruncate:
      return StatusResponse(vfs.Ftruncate(req.fd, req.offset));
    case WireOp::kSeek: {
      auto pos = vfs.Seek(req.fd, req.offset);
      if (!pos.ok()) {
        return StatusResponse(pos.status());
      }
      WireWriter body;
      body.U64(*pos);
      return OkResponse(std::move(body));
    }
    case WireOp::kStats: {
      WireWriter body;
      EncodeServerStats(body, StatsSnapshot());
      return OkResponse(std::move(body));
    }
    case WireOp::kMetrics: {
      WireWriter body;
      EncodeMetricsSnapshot(body, metrics_->Snapshot());
      return OkResponse(std::move(body));
    }
    case WireOp::kTraceDump: {
      // Export capped below the frame limit; ExportChromeTrace drops the
      // oldest events if the full window would not fit (flight-recorder
      // semantics carried through to the wire).
      const size_t cap = opts_.max_frame_bytes > 256 ? opts_.max_frame_bytes - 256 : 256;
      const std::string json =
          opts_.trace_ring != nullptr
              ? ExportChromeTrace(opts_.trace_ring->Snapshot(), cap)
              : ExportChromeTrace({});
      WireWriter body;
      body.Str(json);
      return OkResponse(std::move(body));
    }
    case WireOp::kProm: {
      WireWriter body;
      body.Str(PrometheusText(metrics_->Snapshot()));
      return OkResponse(std::move(body));
    }
    case WireOp::kHello: {
      if (req.proto_version < kWireProtoVersionMin || req.proto_version > kWireProtoVersion) {
        // Unknown version: a clean error reply, not a dropped connection.
        // The peer may retry with a version we speak.
        return StatusResponse(Status(Errc::kProto));
      }
      const uint32_t cap = std::max<uint32_t>(1, opts_.max_inflight);
      const uint32_t granted =
          req.max_inflight == 0
              ? std::clamp<uint32_t>(opts_.default_inflight, 1, cap)
              : std::min(req.max_inflight, cap);
      {
        std::lock_guard<std::mutex> lk(conn.mu);
        conn.window = granted;
      }
      // Reply in the client's version: a v2 peer gets the v2-shaped body, a
      // v3 peer additionally gets the capability bitmask (rule 3 of the
      // versioning contract — bodies are frozen per opcode *per version*).
      WireHello reply;
      reply.version = req.proto_version;
      reply.max_inflight = granted;
      reply.caps = fs_->Capabilities() | (opts_.txn != nullptr ? kFsCapTxn : 0);
      WireWriter body;
      EncodeHello(body, reply);
      return OkResponse(std::move(body));
    }
    case WireOp::kTxBegin: {
      if (opts_.txn == nullptr) {
        return StatusResponse(Status(Errc::kInval));
      }
      if (conn.active_txn != 0) {
        // One open transaction per connection: finish it first.
        return StatusResponse(Status(Errc::kBusy));
      }
      auto id = opts_.txn->TxBegin();
      if (!id.ok()) {
        return StatusResponse(id.status());
      }
      conn.active_txn = *id;
      WireWriter body;
      body.U64(*id);
      return OkResponse(std::move(body));
    }
    case WireOp::kTxCommit:
    case WireOp::kTxAbort: {
      if (opts_.txn == nullptr) {
        return StatusResponse(Status(Errc::kInval));
      }
      const uint64_t target = req.txid != 0 ? req.txid : conn.active_txn;
      if (target == 0 || target != conn.active_txn) {
        return StatusResponse(Status(Errc::kInval));
      }
      // The transaction is finished either way — a commit that loses the
      // conflict race rolls back and reports kTxConflict, it does not stay
      // open for a retry under the same id.
      conn.active_txn = 0;
      return StatusResponse(req.op == WireOp::kTxCommit ? opts_.txn->TxCommit(target)
                                                        : opts_.txn->TxAbort(target));
    }
    case WireOp::kCheckpoint:
      // Journal admin: checkpoint + compact now. Fails soft with EINVAL on a
      // server without a journaled transaction layer (TxnHost's default).
      if (opts_.txn == nullptr) {
        return StatusResponse(Status(Errc::kInval));
      }
      return StatusResponse(opts_.txn->TxCheckpoint());
    case WireOp::kMsgBatch:
      // Batches are unpacked in ExecuteConn and nesting is rejected at
      // parse; reaching here means a logic error upstream.
      return StatusResponse(Status(Errc::kProto));
  }
  return StatusResponse(Status(Errc::kProto));
}

std::vector<std::byte> AtomFsServer::DispatchInTxn(Conn& conn, const WireRequest& req) {
  const std::optional<OpKind> kind = PathOpKindOf(req.op);
  if (!kind.has_value()) {
    switch (req.op) {
      case WireOp::kOpen:
      case WireOp::kClose:
      case WireOp::kFdRead:
      case WireOp::kFdWrite:
      case WireOp::kFdPread:
      case WireOp::kFdPwrite:
      case WireOp::kFstat:
      case WireOp::kFdReadDir:
      case WireOp::kFtruncate:
      case WireOp::kSeek:
        // Descriptor ops run against the shared backend directly, so inside a
        // transaction they would bypass its snapshot (reads) and its write
        // buffer (writes). Refuse them rather than leak uncommitted state.
        return StatusResponse(Status(Errc::kBusy));
      default:
        return {};  // not a FileSystem op: fall through to normal dispatch
    }
  }
  auto op = FsOpOfRequest(*kind, req);
  if (!op.ok()) {
    return StatusResponse(op.status());
  }
  return FsOpResponse(*kind, opts_.txn->TxApply(conn.active_txn, OpCall::FromFsOp(*op)));
}

void AtomFsServer::RecordLatency(WireOp op, uint64_t nanos) {
  op_latency_[static_cast<uint8_t>(op)].Record(nanos);
}

void AtomFsServer::NoteProtocolError() { protocol_errors_.Inc(); }

WireServerStats AtomFsServer::StatsSnapshot() const {
  WireServerStats out;
  const MetricsSnapshot snap = metrics_->Snapshot();
  out.connections_accepted = snap.CounterValue("server.connections");
  out.protocol_errors = snap.CounterValue("server.protocol_errors");
  for (uint8_t op = kWireOpMin; op <= kWireOpMax; ++op) {
    const HistogramSnapshot* h = snap.FindHistogram(
        "server.op." + std::string(WireOpName(static_cast<WireOp>(op))) + ".latency_ns");
    if (h == nullptr || h->count == 0) {
      continue;
    }
    WireOpStats s;
    s.op = op;
    s.count = h->count;
    s.mean_ns = static_cast<uint64_t>(h->Mean());
    s.p50_ns = h->Percentile(0.50);
    s.p99_ns = h->Percentile(0.99);
    s.p999_ns = h->Percentile(0.999);
    out.ops.push_back(s);
  }
  return out;
}

}  // namespace atomfs
