#include "src/server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/vfs/vfs.h"

namespace atomfs {

namespace {

// Success responses begin with wire status 0.
std::vector<std::byte> OkResponse(WireWriter&& body) {
  std::vector<std::byte> out;
  out.reserve(1 + body.buf().size());
  out.push_back(std::byte{0});
  out.insert(out.end(), body.buf().begin(), body.buf().end());
  return out;
}

std::vector<std::byte> StatusResponse(Status st) {
  WireWriter w;
  w.U8(WireStatusOf(st.code()));
  return w.Take();
}

}  // namespace

AtomFsServer::AtomFsServer(FileSystem* fs, ServerOptions options)
    : fs_(fs), opts_(std::move(options)) {
  if (opts_.metrics != nullptr) {
    metrics_ = opts_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  connections_accepted_ = metrics_->GetCounter("server.connections");
  protocol_errors_ = metrics_->GetCounter("server.protocol_errors");
  for (uint8_t op = kWireOpMin; op <= kWireOpMax; ++op) {
    op_latency_[op] = metrics_->GetHistogram(
        "server.op." + std::string(WireOpName(static_cast<WireOp>(op))) + ".latency_ns");
  }
}

AtomFsServer::~AtomFsServer() { Stop(); }

Status AtomFsServer::Start() {
  if (running_) {
    return Status(Errc::kBusy);
  }
  if (opts_.unix_path.empty() && !opts_.tcp_listen) {
    return Status(Errc::kInval);
  }

  if (!opts_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status(Errc::kNameTooLong);
    }
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status(Errc::kIo);
    }
    unlink(opts_.unix_path.c_str());  // stale socket from a crashed daemon
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 || listen(fd, 128) < 0) {
      close(fd);
      return Status(Errc::kIo);
    }
    listen_fds_.push_back(fd);
  }

  if (opts_.tcp_listen) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      Stop();
      return Status(Errc::kIo);
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.tcp_port);
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 || listen(fd, 128) < 0) {
      close(fd);
      Stop();
      return Status(Errc::kIo);
    }
    socklen_t len = sizeof addr;
    getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_tcp_port_ = ntohs(addr.sin_port);
    listen_fds_.push_back(fd);
  }

  stopping_ = false;
  running_ = true;
  for (int fd : listen_fds_) {
    acceptors_.emplace_back([this, fd] { AcceptLoop(fd); });
  }
  const int workers = opts_.workers > 0 ? opts_.workers : 1;
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void AtomFsServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ && !running_ && listen_fds_.empty()) {
      return;
    }
    stopping_ = true;
  }
  // Closing the listeners makes accept() fail and the acceptors exit.
  for (int fd : listen_fds_) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  listen_fds_.clear();
  queue_cv_.notify_all();
  // Unblock workers parked in recv() on a live connection.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int sock : active_conns_) {
      shutdown(sock, SHUT_RDWR);
    }
  }
  for (std::thread& t : acceptors_) {
    t.join();
  }
  acceptors_.clear();
  for (std::thread& t : workers_) {
    t.join();
  }
  workers_.clear();
  // Connections still queued but never served.
  for (int sock : pending_) {
    close(sock);
  }
  pending_.clear();
  if (!opts_.unix_path.empty()) {
    unlink(opts_.unix_path.c_str());
  }
  running_ = false;
}

void AtomFsServer::AcceptLoop(int listen_fd) {
  for (;;) {
    const int sock = accept(listen_fd, nullptr, nullptr);
    if (sock < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed (Stop) or fatal error
    }
    // Request/response framing is latency-bound: without this, Nagle holds
    // each response until the client's delayed ACK (~10ms per op over TCP).
    // No-op (ENOTSUP) on unix-domain sockets.
    const int one = 1;
    setsockopt(sock, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections_accepted_.Inc();
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      close(sock);
      return;
    }
    pending_.push_back(sock);
    queue_cv_.notify_one();
  }
}

void AtomFsServer::WorkerLoop() {
  for (;;) {
    int sock = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_ || pending_.empty()) {
        return;  // leftover queued sockets are closed by Stop
      }
      sock = pending_.front();
      pending_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      active_conns_.insert(sock);
    }
    // Stop() may have swept active_conns_ between our pop and insert; in
    // that window the socket would miss its shutdown(2) and recv could block
    // past the join. Re-checking after the insert closes the race.
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stopping_) {
        std::lock_guard<std::mutex> conns(conns_mu_);
        active_conns_.erase(sock);
        close(sock);
        return;
      }
    }
    ServeConnection(sock);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      active_conns_.erase(sock);
    }
    close(sock);
  }
}

void AtomFsServer::ServeConnection(int sock) {
  Vfs vfs(fs_);  // per-connection descriptor table
  for (;;) {
    auto frame = RecvFrame(sock, opts_.max_frame_bytes);
    if (!frame.ok()) {
      if (frame.status().code() == Errc::kProto) {
        // Oversized declared length: reply once, then drop — the byte
        // stream is beyond resynchronization.
        NoteProtocolError();
        SendFrame(sock, StatusResponse(Status(Errc::kProto)));
      }
      return;  // clean close, reset, or poisoned framing
    }
    auto req = ParseRequest(*frame);
    if (!req.ok()) {
      NoteProtocolError();
      SendFrame(sock, StatusResponse(Status(Errc::kProto)));
      return;
    }
    WallTimer timer;
    std::vector<std::byte> response = Dispatch(vfs, *req);
    RecordLatency(req->op, timer.ElapsedNanos());
    if (!SendFrame(sock, response).ok()) {
      return;
    }
  }
}

std::vector<std::byte> AtomFsServer::Dispatch(Vfs& vfs, const WireRequest& req) {
  switch (req.op) {
    case WireOp::kPing:
      return OkResponse(WireWriter());
    case WireOp::kMkdir:
      return StatusResponse(fs_->Mkdir(req.path_a));
    case WireOp::kMknod:
      return StatusResponse(fs_->Mknod(req.path_a));
    case WireOp::kRmdir:
      return StatusResponse(fs_->Rmdir(req.path_a));
    case WireOp::kUnlink:
      return StatusResponse(fs_->Unlink(req.path_a));
    case WireOp::kRename:
      return StatusResponse(fs_->Rename(req.path_a, req.path_b));
    case WireOp::kExchange:
      return StatusResponse(fs_->Exchange(req.path_a, req.path_b));
    case WireOp::kTruncate:
      return StatusResponse(fs_->Truncate(req.path_a, req.offset));
    case WireOp::kStat: {
      auto attr = fs_->Stat(req.path_a);
      if (!attr.ok()) {
        return StatusResponse(attr.status());
      }
      WireWriter body;
      EncodeAttr(body, *attr);
      return OkResponse(std::move(body));
    }
    case WireOp::kReadDir: {
      auto entries = fs_->ReadDir(req.path_a);
      if (!entries.ok()) {
        return StatusResponse(entries.status());
      }
      WireWriter body;
      EncodeDirEntries(body, *entries);
      return OkResponse(std::move(body));
    }
    case WireOp::kRead: {
      std::vector<std::byte> buf(req.count);
      auto n = fs_->Read(req.path_a, req.offset, buf);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.Blob(std::span<const std::byte>(buf.data(), *n));
      return OkResponse(std::move(body));
    }
    case WireOp::kWrite: {
      auto n = fs_->Write(req.path_a, req.offset, req.data);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.U64(*n);
      return OkResponse(std::move(body));
    }
    case WireOp::kOpen: {
      auto fd = vfs.Open(req.path_a, req.flags);
      if (!fd.ok()) {
        return StatusResponse(fd.status());
      }
      WireWriter body;
      body.I32(*fd);
      return OkResponse(std::move(body));
    }
    case WireOp::kClose:
      return StatusResponse(vfs.Close(req.fd));
    case WireOp::kFdRead: {
      std::vector<std::byte> buf(req.count);
      auto n = vfs.Read(req.fd, buf);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.Blob(std::span<const std::byte>(buf.data(), *n));
      return OkResponse(std::move(body));
    }
    case WireOp::kFdWrite: {
      auto n = vfs.Write(req.fd, req.data);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.U64(*n);
      return OkResponse(std::move(body));
    }
    case WireOp::kFdPread: {
      std::vector<std::byte> buf(req.count);
      auto n = vfs.Pread(req.fd, req.offset, buf);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.Blob(std::span<const std::byte>(buf.data(), *n));
      return OkResponse(std::move(body));
    }
    case WireOp::kFdPwrite: {
      auto n = vfs.Pwrite(req.fd, req.offset, req.data);
      if (!n.ok()) {
        return StatusResponse(n.status());
      }
      WireWriter body;
      body.U64(*n);
      return OkResponse(std::move(body));
    }
    case WireOp::kFstat: {
      auto attr = vfs.Fstat(req.fd);
      if (!attr.ok()) {
        return StatusResponse(attr.status());
      }
      WireWriter body;
      EncodeAttr(body, *attr);
      return OkResponse(std::move(body));
    }
    case WireOp::kFdReadDir: {
      auto entries = vfs.ReadDirFd(req.fd);
      if (!entries.ok()) {
        return StatusResponse(entries.status());
      }
      WireWriter body;
      EncodeDirEntries(body, *entries);
      return OkResponse(std::move(body));
    }
    case WireOp::kFtruncate:
      return StatusResponse(vfs.Ftruncate(req.fd, req.offset));
    case WireOp::kSeek: {
      auto pos = vfs.Seek(req.fd, req.offset);
      if (!pos.ok()) {
        return StatusResponse(pos.status());
      }
      WireWriter body;
      body.U64(*pos);
      return OkResponse(std::move(body));
    }
    case WireOp::kStats: {
      WireWriter body;
      EncodeServerStats(body, StatsSnapshot());
      return OkResponse(std::move(body));
    }
    case WireOp::kMetrics: {
      WireWriter body;
      EncodeMetricsSnapshot(body, metrics_->Snapshot());
      return OkResponse(std::move(body));
    }
  }
  return StatusResponse(Status(Errc::kProto));
}

void AtomFsServer::RecordLatency(WireOp op, uint64_t nanos) {
  op_latency_[static_cast<uint8_t>(op)].Record(nanos);
}

void AtomFsServer::NoteProtocolError() { protocol_errors_.Inc(); }

WireServerStats AtomFsServer::StatsSnapshot() const {
  WireServerStats out;
  const MetricsSnapshot snap = metrics_->Snapshot();
  out.connections_accepted = snap.CounterValue("server.connections");
  out.protocol_errors = snap.CounterValue("server.protocol_errors");
  for (uint8_t op = kWireOpMin; op <= kWireOpMax; ++op) {
    const HistogramSnapshot* h = snap.FindHistogram(
        "server.op." + std::string(WireOpName(static_cast<WireOp>(op))) + ".latency_ns");
    if (h == nullptr || h->count == 0) {
      continue;
    }
    WireOpStats s;
    s.op = op;
    s.count = h->count;
    s.mean_ns = static_cast<uint64_t>(h->Mean());
    s.p50_ns = h->Percentile(0.50);
    s.p99_ns = h->Percentile(0.99);
    s.p999_ns = h->Percentile(0.999);
    out.ops.push_back(s);
  }
  return out;
}

}  // namespace atomfs
