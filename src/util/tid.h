// Logical thread identifiers.
//
// The CRL-H ghost state (thread pool, LockPaths, Helplist) is keyed by
// thread. We assign small dense ids on first use per host thread; the ids
// are process-lifetime and work for both real threads and SimExecutor
// threads (each simulated thread is hosted by its own std::thread).

#ifndef ATOMFS_SRC_UTIL_TID_H_
#define ATOMFS_SRC_UTIL_TID_H_

#include <atomic>
#include <cstdint>

namespace atomfs {

using Tid = uint32_t;

inline Tid CurrentTid() {
  static std::atomic<Tid> next{1};
  // Relaxed: pure unique-id allocation; ids carry no payload across threads.
  thread_local Tid tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace atomfs

#endif  // ATOMFS_SRC_UTIL_TID_H_
