#include "src/util/status.h"

#include "src/util/status_table.h"

namespace atomfs {

std::string_view ErrcName(Errc e) {
  switch (e) {
#define ATOMFS_ERRC_NAME_CASE(errc, wire_byte, errc_name, wire_name) \
  case Errc::errc:                                                   \
    return errc_name;
    ATOMFS_WIRE_STATUS_TABLE(ATOMFS_ERRC_NAME_CASE)
#undef ATOMFS_ERRC_NAME_CASE
  }
  return "UNKNOWN";
}

}  // namespace atomfs
