#include "src/util/status.h"

namespace atomfs {

std::string_view ErrcName(Errc e) {
  switch (e) {
    case Errc::kOk:
      return "OK";
    case Errc::kExist:
      return "EEXIST";
    case Errc::kNoEnt:
      return "ENOENT";
    case Errc::kNotDir:
      return "ENOTDIR";
    case Errc::kIsDir:
      return "EISDIR";
    case Errc::kNotEmpty:
      return "ENOTEMPTY";
    case Errc::kInval:
      return "EINVAL";
    case Errc::kBadFd:
      return "EBADF";
    case Errc::kNameTooLong:
      return "ENAMETOOLONG";
    case Errc::kNoSpace:
      return "ENOSPC";
    case Errc::kBusy:
      return "EBUSY";
    case Errc::kAccess:
      return "EACCES";
    case Errc::kXDev:
      return "EXDEV";
    case Errc::kIo:
      return "EIO";
    case Errc::kProto:
      return "EPROTO";
    case Errc::kTimedOut:
      return "ETIMEDOUT";
    case Errc::kBackpressure:
      return "EBACKPRESSURE";
    case Errc::kTxConflict:
      return "ETXCONFLICT";
  }
  return "UNKNOWN";
}

}  // namespace atomfs
