// Status and Result<T>: the error model used across the AtomFS code base.
//
// File system operations report POSIX-shaped error conditions. We model them
// with a small value type instead of errno so that the abstract specification
// (src/afs) and every concrete file system return comparable results, which
// the CRL-H refinement checkers rely on.

#ifndef ATOMFS_SRC_UTIL_STATUS_H_
#define ATOMFS_SRC_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string_view>
#include <utility>
#include <variant>

namespace atomfs {

// POSIX-shaped error codes. Values are stable; they participate in history
// hashing inside the linearizability checkers.
enum class Errc : uint8_t {
  kOk = 0,
  kExist,        // EEXIST: target already exists
  kNoEnt,        // ENOENT: path component missing
  kNotDir,       // ENOTDIR: non-directory used as a directory
  kIsDir,        // EISDIR: directory used where a file is required
  kNotEmpty,     // ENOTEMPTY: rmdir of a non-empty directory
  kInval,        // EINVAL: malformed argument (e.g. rename dir under itself)
  kBadFd,        // EBADF: unknown or closed file descriptor
  kNameTooLong,  // ENAMETOOLONG
  kNoSpace,      // ENOSPC: file grew past the fixed block index array
  kBusy,         // EBUSY: operating on the root inode or a mount point
  kAccess,       // EACCES (reserved; AtomFS has no permissions)
  kXDev,         // EXDEV (reserved; single mount)
  // Serving-layer codes (src/net): never produced by the in-process file
  // systems, so they cannot perturb the checkers' history hashing. Every
  // wire-level failure maps to one of these four, each with a distinct
  // meaning — a caller can always tell a protocol violation from a timeout
  // from an overload shed from a plain transport failure.
  kIo,            // EIO: transport failure (connection reset, short frame)
  kProto,         // EPROTO: malformed or oversized wire frame, or an
                  //         unsupported protocol version in HELLO
  kTimedOut,      // ETIMEDOUT: the server closed an idle/half-open connection
  kBackpressure,  // EBACKPRESSURE: request shed because it overcommitted the
                  //                negotiated inflight window
  kTxConflict,    // ETXCONFLICT: optimistic transaction lost a conflict race
                  //              and was rolled back (src/txn); retryable
  kShardMoved,    // ESHARDMOVED: the routed shard no longer owns the path's
                  //              prefix (a rename moved it mid-flight). The
                  //              sharded router retries with a fresh route;
                  //              it leaks to callers only through the
                  //              unsafe_stale_route test hook or to
                  //              routing-aware wire clients.
};

std::string_view ErrcName(Errc e);

// A cheap, trivially copyable status. Functions that can fail but return no
// payload return Status; payload-carrying ones return Result<T>.
class Status {
 public:
  constexpr Status() = default;
  constexpr explicit Status(Errc code) : code_(code) {}

  static constexpr Status Ok() { return Status(); }

  constexpr bool ok() const { return code_ == Errc::kOk; }
  constexpr Errc code() const { return code_; }

  friend constexpr bool operator==(Status a, Status b) { return a.code_ == b.code_; }
  friend constexpr bool operator!=(Status a, Status b) { return a.code_ != b.code_; }

 private:
  Errc code_ = Errc::kOk;
};

inline std::ostream& operator<<(std::ostream& os, Status s) { return os << ErrcName(s.code()); }

// Minimal expected-like carrier. We deliberately keep it tiny: no exceptions,
// no monadic sugar, just `ok()`, `value()` and `status()`. Dereferencing a
// failed Result is a programming error and aborts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Errc code) : rep_(Status(code)) {}    // NOLINT(google-explicit-constructor)
  Result(Status st) : rep_(st) {}              // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_UTIL_STATUS_H_
