// Deterministic pseudo-random generators used by workloads, property tests
// and the simulator. We implement SplitMix64 (seeding) and xoshiro256**
// (bulk generation) ourselves so results are reproducible across standard
// library implementations.

#ifndef ATOMFS_SRC_UTIL_RAND_H_
#define ATOMFS_SRC_UTIL_RAND_H_

#include <array>
#include <cstdint>
#include <string>

namespace atomfs {

// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Random lowercase identifier of the given length, e.g. for file names.
  std::string Name(size_t len) {
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + Below(26)));
    }
    return s;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_UTIL_RAND_H_
