// Measurement helpers shared by the benchmark harnesses: wall-clock timer,
// streaming summary statistics, and a log-scaled latency histogram.

#ifndef ATOMFS_SRC_UTIL_STATS_H_
#define ATOMFS_SRC_UTIL_STATS_H_

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace atomfs {

// Wall-clock stopwatch with nanosecond reads.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  }

  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Streaming mean / min / max / stddev (Welford).
class Summary {
 public:
  void Add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double stddev() const { return n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_ - 1)) : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

// --- shared power-of-two bucket math -----------------------------------------
// One bucketing scheme for every latency digest in the repo: the bench
// harnesses, the server's per-op stats, and the src/obs metrics registry all
// use these functions, so a p99 computed anywhere agrees with a p99 computed
// anywhere else (bucket i covers (2^(i-1), 2^i] nanoseconds; bucket 0 is 0).

inline constexpr size_t kLatencyBucketCount = 48;

inline size_t LatencyBucketOf(uint64_t nanos) {
  const int bucket = nanos == 0 ? 0 : 64 - __builtin_clzll(nanos);
  return std::min(static_cast<size_t>(bucket), kLatencyBucketCount - 1);
}

// Upper bound of bucket `i`, the value percentile queries report.
inline uint64_t LatencyBucketBound(size_t i) { return i == 0 ? 1 : 1ULL << i; }

// Approximate percentile (upper bound of the bucket containing it) over any
// bucket array produced with LatencyBucketOf.
inline uint64_t LatencyBucketsPercentile(const uint64_t* buckets, size_t n_buckets,
                                         uint64_t count, double p) {
  if (count == 0) {
    return 0;
  }
  const uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count));
  uint64_t seen = 0;
  for (size_t i = 0; i < n_buckets; ++i) {
    seen += buckets[i];
    if (seen > target) {
      return LatencyBucketBound(i);
    }
  }
  return LatencyBucketBound(n_buckets - 1);
}

// Power-of-two bucketed histogram for latencies in nanoseconds
// (single-threaded; the concurrent equivalent is obs::Histogram).
class LatencyHistogram {
 public:
  void Add(uint64_t nanos) {
    ++count_;
    total_ += nanos;
    ++buckets_[LatencyBucketOf(nanos)];
  }

  uint64_t count() const { return count_; }
  double MeanNanos() const {
    return count_ ? static_cast<double>(total_) / static_cast<double>(count_) : 0.0;
  }

  uint64_t PercentileNanos(double p) const {
    return LatencyBucketsPercentile(buckets_.data(), buckets_.size(), count_, p);
  }

 private:
  std::array<uint64_t, kLatencyBucketCount> buckets_ = {};
  uint64_t count_ = 0;
  uint64_t total_ = 0;
};

// Pretty time for tables: "12.34" seconds with fixed width.
std::string FormatSeconds(double secs);

// Right-pad / left-pad helpers for the paper-style ASCII tables the bench
// binaries print.
std::string PadLeft(const std::string& s, size_t width);
std::string PadRight(const std::string& s, size_t width);

}  // namespace atomfs

#endif  // ATOMFS_SRC_UTIL_STATS_H_
