// A minimal JSON emitter for machine-readable benchmark output.
//
// The bench binaries print paper-style ASCII tables for humans; alongside
// them they now drop BENCH_*.json files so the performance trajectory is
// diffable across PRs. This writer covers exactly what those files need —
// objects, arrays, strings, numbers — with correct string escaping and
// non-locale-dependent number formatting. No parsing, no DOM.

#ifndef ATOMFS_SRC_UTIL_JSON_H_
#define ATOMFS_SRC_UTIL_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>

namespace atomfs {

class JsonWriter {
 public:
  // Values (usable at the top level or inside arrays).
  JsonWriter& Value(std::string_view s) {
    Separate();
    AppendString(s);
    return *this;
  }
  // Without this overload a literal would prefer the bool conversion.
  JsonWriter& Value(const char* s) { return Value(std::string_view(s)); }
  JsonWriter& Value(const std::string& s) { return Value(std::string_view(s)); }
  JsonWriter& Value(double v) {
    Separate();
    AppendNumber(v);
    return *this;
  }
  // Any integer width; bool is excluded so it hits its own overload.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  JsonWriter& Value(T v) {
    Separate();
    if constexpr (std::is_signed_v<T>) {
      out_ += std::to_string(static_cast<long long>(v));
    } else {
      out_ += std::to_string(static_cast<unsigned long long>(v));
    }
    return *this;
  }
  JsonWriter& Value(bool v) {
    Separate();
    out_ += v ? "true" : "false";
    return *this;
  }

  // Object / array structure.
  JsonWriter& BeginObject() {
    Separate();
    out_ += '{';
    fresh_ = true;
    return *this;
  }
  JsonWriter& EndObject() {
    out_ += '}';
    fresh_ = false;
    return *this;
  }
  JsonWriter& BeginArray() {
    Separate();
    out_ += '[';
    fresh_ = true;
    return *this;
  }
  JsonWriter& EndArray() {
    out_ += ']';
    fresh_ = false;
    return *this;
  }

  // Key inside an object; follow with exactly one Value/Begin*.
  JsonWriter& Key(std::string_view name) {
    Separate();
    AppendString(name);
    out_ += ':';
    fresh_ = true;  // the upcoming value must not emit a comma
    return *this;
  }

  // Convenience: key + scalar.
  template <typename T>
  JsonWriter& Field(std::string_view name, T v) {
    Key(name);
    return Value(v);
  }

  const std::string& str() const { return out_; }

  // Writes the document to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    const size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
    const bool ok = n == out_.size() && std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
  }

 private:
  void Separate() {
    if (!fresh_) {
      out_ += ',';
    }
    fresh_ = false;
  }

  void AppendString(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  void AppendNumber(double v) {
    if (!std::isfinite(v)) {
      out_ += "null";  // JSON has no inf/nan
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ += buf;
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_UTIL_JSON_H_
