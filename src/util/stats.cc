#include "src/util/stats.h"

#include <cstdio>

namespace atomfs {

std::string FormatSeconds(double secs) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", secs);
  return buf;
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

}  // namespace atomfs
