// The single normative Errc <-> wire-status-byte table.
//
// One X-macro row per error code: X(errc, wire_byte, errc_name, wire_name).
// Everything that used to hand-maintain a parallel switch — ErrcName
// (src/util/status.cc), WireStatusOf / ErrcOfWireStatus (src/net/wire.cc),
// and the status table in docs/WIRE_PROTOCOL.md — is generated from or
// drift-tested against this list, so a new status (e.g. ESHARDMOVED) is
// declared exactly once.
//
// Rules (docs/WIRE_PROTOCOL.md §5): rows are append-only and wire bytes are
// never reused; `wire_name` is the doc's status-table spelling (no E prefix),
// `errc_name` the errno-style name ErrcName returns.

#ifndef ATOMFS_SRC_UTIL_STATUS_TABLE_H_
#define ATOMFS_SRC_UTIL_STATUS_TABLE_H_

#define ATOMFS_WIRE_STATUS_TABLE(X)                  \
  X(kOk, 0, "OK", "OK")                              \
  X(kExist, 1, "EEXIST", "EXIST")                    \
  X(kNoEnt, 2, "ENOENT", "NOENT")                    \
  X(kNotDir, 3, "ENOTDIR", "NOTDIR")                 \
  X(kIsDir, 4, "EISDIR", "ISDIR")                    \
  X(kNotEmpty, 5, "ENOTEMPTY", "NOTEMPTY")           \
  X(kInval, 6, "EINVAL", "INVAL")                    \
  X(kBadFd, 7, "EBADF", "BADFD")                     \
  X(kNameTooLong, 8, "ENAMETOOLONG", "NAMETOOLONG")  \
  X(kNoSpace, 9, "ENOSPC", "NOSPACE")                \
  X(kBusy, 10, "EBUSY", "BUSY")                      \
  X(kAccess, 11, "EACCES", "ACCESS")                 \
  X(kXDev, 12, "EXDEV", "XDEV")                      \
  X(kIo, 13, "EIO", "IO")                            \
  X(kProto, 14, "EPROTO", "PROTO")                   \
  X(kTimedOut, 15, "ETIMEDOUT", "TIMEDOUT")          \
  X(kBackpressure, 16, "EBACKPRESSURE", "BACKPRESSURE") \
  X(kTxConflict, 17, "ETXCONFLICT", "TXCONFLICT")    \
  X(kShardMoved, 18, "ESHARDMOVED", "SHARDMOVED")

#endif  // ATOMFS_SRC_UTIL_STATUS_TABLE_H_
