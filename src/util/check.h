// ATOMFS_CHECK: unconditional invariant assertion. File-system invariants are
// cheap relative to I/O, so checks stay on in release builds; a failed check
// is a bug in this library, never a user error.

#ifndef ATOMFS_SRC_UTIL_CHECK_H_
#define ATOMFS_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace atomfs {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "ATOMFS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace atomfs

#define ATOMFS_CHECK(expr)                                 \
  do {                                                     \
    if (!(expr)) {                                         \
      ::atomfs::CheckFailed(#expr, __FILE__, __LINE__);    \
    }                                                      \
  } while (0)

#endif  // ATOMFS_SRC_UTIL_CHECK_H_
