#include "src/obs/tracer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace atomfs {

namespace {

// The tracer's clock reads happen inside the file system's critical
// sections, so they dominate its overhead. On x86-64 we read the TSC
// directly (~4x cheaper than clock_gettime even through the vDSO) and
// convert to nanoseconds with a ratio calibrated once per process; the
// invariant TSC on any hardware modern enough to run this makes the ratio
// constant. Elsewhere, fall back to steady_clock with a ratio of 1.
#if defined(__x86_64__) || defined(_M_X64)

inline uint64_t NowTicks() { return __rdtsc(); }

double CalibrateNsPerTickOnce() {
  using SteadyClock = std::chrono::steady_clock;
  const SteadyClock::time_point t0 = SteadyClock::now();
  const uint64_t c0 = NowTicks();
  // ~2 ms busy-wait: long enough for a stable ratio, short enough to be an
  // invisible one-time cost.
  while (SteadyClock::now() - t0 < std::chrono::milliseconds(2)) {
  }
  const SteadyClock::time_point t1 = SteadyClock::now();
  const uint64_t c1 = NowTicks();
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return c1 > c0 ? ns / static_cast<double>(c1 - c0) : 1.0;
}

double NsPerTick() {
  static const double ratio = CalibrateNsPerTickOnce();
  return ratio;
}

#else

inline uint64_t NowTicks() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

double NsPerTick() { return 1.0; }

#endif

std::string DepthName(const char* what, uint16_t depth) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "lock.depth%02u.%s", depth, what);
  return buf;
}

uint64_t NextObserverId() {
  static std::atomic<uint64_t> next{1};
  // Relaxed: pure unique-id allocation, nothing is published through it.
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TracingObserver::TracingObserver(MetricsRegistry* registry, TraceRing* ring)
    : ring_(ring), id_(NextObserverId()), ns_per_tick_(NsPerTick()) {
  ops_ = registry->GetCounter("fs.ops");
  for (size_t k = 0; k < op_latency_.size(); ++k) {
    const std::string base = "fs.op." + std::string(OpKindName(static_cast<OpKind>(k)));
    op_errors_[k] = registry->GetCounter(base + ".errors");
    op_latency_[k] = registry->GetHistogram(base + ".latency_ns");
  }
  lock_acquires_ = registry->GetCounter("lock.acquires");
  lock_releases_ = registry->GetCounter("lock.releases");
  for (uint16_t d = 1; d <= kMaxTrackedDepth; ++d) {
    hold_ns_[d] = registry->GetHistogram(DepthName("hold_ns", d));
    step_ns_[d] = registry->GetHistogram(DepthName("step_ns", d));
  }
  path_depth_ = registry->GetHistogram("lock.path_depth");
  help_events_ = registry->GetCounter("crlh.help_events");
  helped_ops_ = registry->GetCounter("crlh.helped_ops");
  rollback_checks_ = registry->GetCounter("crlh.rollback_checks");
  rolled_back_ops_ = registry->GetCounter("crlh.rolled_back_ops");
  help_set_size_ = registry->GetHistogram("crlh.help_set_size");
  helplist_len_ = registry->GetGauge("crlh.helplist_len");
  for (size_t k = 0; k < kInvariantKindCount; ++k) {
    const std::string base =
        "crlh.invariant." + std::string(InvariantKindName(static_cast<InvariantKind>(k)));
    invariant_checks_[k] = registry->GetCounter(base + ".checks");
    invariant_failures_[k] = registry->GetCounter(base + ".failures");
  }
  violations_ = registry->GetCounter("crlh.violations");
  rcu_attempts_ = registry->GetCounter("core.rcuwalk.attempts");
  rcu_validation_failures_ = registry->GetCounter("core.rcuwalk.validation_failures");
  rcu_fallbacks_ = registry->GetCounter("core.rcuwalk.fallbacks");
  rcu_unvalidated_ = registry->GetCounter("core.rcuwalk.unvalidated_reads");
}

TracingObserver::ThreadState& TracingObserver::StateFor(Tid tid) {
  // Hot path: events for one tid always come from the same OS thread, so a
  // thread-local (observer, tid) -> state cache turns the per-event sharded
  // map lookup into two compares. The observer id is never reused, so a
  // stale cache entry can never alias a new observer at the same address.
  struct Cache {
    uint64_t observer_id = 0;
    Tid tid = 0;
    ThreadState* state = nullptr;
  };
  thread_local Cache cache;
  if (cache.observer_id == id_ && cache.tid == tid && cache.state != nullptr) {
    return *cache.state;
  }
  StateShard& shard = shards_[tid % kStateShards];
  ThreadState* state;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    state = &shard.states[tid];
  }
  cache = Cache{id_, tid, state};
  return *state;
}

void TracingObserver::OnOpBegin(Tid tid, const OpCall& call) {
  ThreadState& s = StateFor(tid);
  s.in_op = true;
  s.op_kind = static_cast<uint8_t>(call.kind);
  s.op_begin = NowTicks();
  s.last_step = s.op_begin;
  s.acquires = 0;
  s.releases = 0;
  s.held.clear();

  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kOpBegin;
  e.op = s.op_kind;
  Emit(e);
}

void TracingObserver::OnOpEnd(Tid tid, const OpResult& result) {
  ThreadState& s = StateFor(tid);
  const uint64_t latency = s.in_op ? TicksToNs(NowTicks() - s.op_begin) : 0;
  ops_.Inc();
  if (s.op_kind < op_latency_.size()) {
    op_latency_[s.op_kind].Record(latency);
    if (!result.status.ok()) {
      op_errors_[s.op_kind].Inc();
    }
  }
  path_depth_.Record(s.acquires);
  // The per-lock-event counters are folded in here, once per op, instead of
  // paying an atomic increment inside every critical section.
  if (s.acquires > 0) {
    lock_acquires_.Inc(s.acquires);
  }
  if (s.releases > 0) {
    lock_releases_.Inc(s.releases);
  }

  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kOpEnd;
  e.op = s.op_kind;
  e.depth = s.acquires;
  e.arg = static_cast<uint64_t>(result.status.code());
  Emit(e);

  s.in_op = false;
  s.held.clear();
}

void TracingObserver::OnLockAcquired(Tid tid, Inum ino, LockPathRole role) {
  ThreadState& s = StateFor(tid);
  const uint64_t now = NowTicks();
  s.acquires = static_cast<uint16_t>(s.acquires + 1);
  const uint16_t depth = std::min(s.acquires, kMaxTrackedDepth);
  step_ns_[depth].Record(TicksToNs(now - s.last_step));
  s.last_step = now;
  s.held.push_back(HeldLock{ino, now, depth});

  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kLockAcquired;
  e.role = static_cast<uint8_t>(role);
  e.depth = s.acquires;
  e.ino = ino;
  Emit(e);
}

void TracingObserver::OnLockReleased(Tid tid, Inum ino) {
  ThreadState& s = StateFor(tid);
  const uint64_t now = NowTicks();
  s.releases = static_cast<uint16_t>(s.releases + 1);
  uint64_t hold_ns = 0;
  uint16_t depth = 0;
  // Releases are mostly LIFO for coupling but arbitrary-order for rename's
  // multi-lock unlock; search from the back.
  for (auto it = s.held.rbegin(); it != s.held.rend(); ++it) {
    if (it->ino == ino) {
      hold_ns = TicksToNs(now - it->acquired_at);
      depth = it->depth;
      s.held.erase(std::next(it).base());
      break;
    }
  }
  if (depth > 0) {
    hold_ns_[depth].Record(hold_ns);
  }

  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kLockReleased;
  e.depth = depth;
  e.ino = ino;
  e.arg = hold_ns;
  Emit(e);
}

void TracingObserver::OnLp(Tid tid, Inum created_ino) {
  if (ring_ == nullptr) {
    return;
  }
  ThreadState& s = StateFor(tid);
  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kLp;
  e.op = s.op_kind;
  e.depth = s.acquires;
  e.ino = created_ino;
  Emit(e);
}

void TracingObserver::OnOptWalkStart(Tid tid) {
  rcu_attempts_.Inc();
  if (ring_ == nullptr) {
    return;
  }
  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kOptWalkStart;
  Emit(e);
}

void TracingObserver::OnOptWalkValidate(Tid tid, OptValidation outcome, uint32_t depth) {
  if (outcome == OptValidation::kFail) {
    rcu_validation_failures_.Inc();
  } else if (outcome == OptValidation::kSkipped) {
    rcu_unvalidated_.Inc();
  }
  if (ring_ == nullptr) {
    return;
  }
  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kOptWalkValidate;
  e.arg = static_cast<uint64_t>(outcome);
  e.depth = static_cast<uint16_t>(std::min<uint32_t>(depth, UINT16_MAX));
  Emit(e);
}

void TracingObserver::OnOptWalkFallback(Tid tid) {
  rcu_fallbacks_.Inc();
  if (ring_ == nullptr) {
    return;
  }
  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kOptWalkFallback;
  Emit(e);
}

void TracingObserver::OnHelpEvent(Tid helper, size_t help_set_size) {
  help_events_.Inc();
  help_set_size_.Record(help_set_size);

  TraceEvent e;
  e.tid = helper;
  e.type = TraceEventType::kHelp;
  e.arg = help_set_size;
  Emit(e);
}

void TracingObserver::OnHelpedLinearized(Tid helper, Tid target, HelpReason reason,
                                         size_t helplist_pos, size_t helplist_len) {
  helped_ops_.Inc();
  helplist_len_.Add(1);

  TraceEvent e;
  e.tid = helper;
  e.type = TraceEventType::kHelp;
  e.flags = reason == HelpReason::kSrcPrefix      ? kTraceHelpReasonSrcPrefix
            : reason == HelpReason::kCrossShard   ? kTraceHelpReasonCrossShard
                                                  : kTraceHelpReasonLockPathPrefix;
  e.depth = static_cast<uint16_t>(std::min<size_t>(helplist_pos, UINT16_MAX));
  e.ino = target;
  e.arg = 0;  // distinguishes the per-target event from the per-run one
  e.aux = helplist_len;
  Emit(e);
}

void TracingObserver::OnHelpedRetired(Tid tid, size_t helplist_len) {
  helplist_len_.Sub(1);

  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kHelpedRetired;
  e.aux = helplist_len;
  Emit(e);
}

void TracingObserver::OnInvariantCheck(InvariantKind kind, Tid tid, bool passed) {
  const size_t k = static_cast<size_t>(kind);
  if (k < invariant_checks_.size()) {
    invariant_checks_[k].Inc();
    if (!passed) {
      invariant_failures_[k].Inc();
    }
  }

  TraceEvent e;
  e.tid = tid;
  e.type = TraceEventType::kInvariant;
  e.op = static_cast<uint8_t>(kind);
  e.arg = passed ? 0 : 1;
  Emit(e);
}

void TracingObserver::OnRollback(size_t rolled_back) {
  rollback_checks_.Inc();
  rolled_back_ops_.Inc(rolled_back);

  TraceEvent e;
  e.type = TraceEventType::kRollback;
  e.arg = rolled_back;
  Emit(e);
}

void TracingObserver::OnViolation(std::string_view message, uint64_t seq) {
  (void)message;  // the monitor keeps the full text; the ring stores the seq
  violations_.Inc();

  TraceEvent e;
  e.type = TraceEventType::kViolation;
  e.aux = seq;
  Emit(e);
}

}  // namespace atomfs
