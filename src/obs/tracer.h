// TracingObserver: the bridge from the FsObserver event stream (and the
// CRL-H monitor's CrlhObsSink) into the atomtrace metrics registry and trace
// ring. Attaching it instruments a file system end to end — per-op latency,
// per-depth lock-coupling hold times and step latencies, LockPath depths,
// helper-set sizes, Helplist occupancy — with zero changes to the file
// system itself.
//
// Metric names it populates (see docs/OBSERVABILITY.md for the full schema):
//   fs.ops, fs.op.<kind>.errors           counters
//   fs.op.<kind>.latency_ns               histogram, per OpKind
//   lock.acquires, lock.releases          counters (folded in at op end, so
//                                         in-flight ops lag until they finish)
//   lock.depth<DD>.hold_ns                histogram, hold time at depth DD
//   lock.depth<DD>.step_ns                histogram, time to reach depth DD
//                                         from the previous coupling step
//                                         (lookup + lock wait = contention)
//   lock.path_depth                       histogram, locks acquired per op
//   crlh.help_events, crlh.helped_ops,
//   crlh.rollback_checks, crlh.rolled_back_ops   counters
//   crlh.help_set_size                    histogram
//   crlh.helplist_len                     gauge (current occupancy)
//   crlh.invariant.<name>.checks,
//   crlh.invariant.<name>.failures        counters, per InvariantKind
//   crlh.violations                       counter
//   core.rcuwalk.attempts                 counter, optimistic walk attempts
//   core.rcuwalk.validation_failures      counter, failed chain validations
//   core.rcuwalk.fallbacks                counter, ops that fell back to the
//                                         lock-coupled walk
//   core.rcuwalk.unvalidated_reads        counter, validations skipped by the
//                                         unsafe hook (must be 0 in any
//                                         correct configuration)
//
// Depths deeper than kMaxTrackedDepth all land in the kMaxTrackedDepth
// histograms (the label is a floor, not a bound).
//
// Thread-state tracking is per-(observer, thread): the first event from a
// thread takes one sharded mutex to install its state; after that a
// thread-local cache resolves the state in two compares, so the steady-state
// per-event cost is lock-free. FsObserver events for one operation always
// come from one OS thread (that is the FsObserver contract), which is what
// makes the per-thread state race-free.

#ifndef ATOMFS_SRC_OBS_TRACER_H_
#define ATOMFS_SRC_OBS_TRACER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/core/observer.h"
#include "src/obs/metrics.h"
#include "src/obs/sink.h"
#include "src/obs/trace.h"

namespace atomfs {

// Lock depths are histogrammed individually up to this depth; anything
// deeper accumulates in the last histogram.
inline constexpr uint16_t kMaxTrackedDepth = 12;

class TracingObserver : public FsObserver, public CrlhObsSink {
 public:
  // `registry` is required and must outlive the observer; `ring` is optional
  // (metrics-only instrumentation when null).
  explicit TracingObserver(MetricsRegistry* registry, TraceRing* ring = nullptr);

  // FsObserver (called by the instrumented file system, locks held).
  void OnOpBegin(Tid tid, const OpCall& call) override;
  void OnOpEnd(Tid tid, const OpResult& result) override;
  void OnLockAcquired(Tid tid, Inum ino, LockPathRole role) override;
  void OnLockReleased(Tid tid, Inum ino) override;
  void OnLp(Tid tid, Inum created_ino) override;
  void OnOptWalkStart(Tid tid) override;
  void OnOptWalkValidate(Tid tid, OptValidation outcome, uint32_t depth) override;
  void OnOptWalkFallback(Tid tid) override;

  // CrlhObsSink (called by CrlhMonitor with the ghost mutex held).
  void OnHelpEvent(Tid helper, size_t help_set_size) override;
  void OnHelpedLinearized(Tid helper, Tid target, HelpReason reason, size_t helplist_pos,
                          size_t helplist_len) override;
  void OnHelpedRetired(Tid tid, size_t helplist_len) override;
  void OnInvariantCheck(InvariantKind kind, Tid tid, bool passed) override;
  void OnRollback(size_t rolled_back) override;
  void OnViolation(std::string_view message, uint64_t seq) override;

 private:
  // Timestamps are raw ticks from a fast monotonic source (TSC on x86-64,
  // steady_clock elsewhere) and are converted to nanoseconds only when a
  // value is recorded — clock reads happen inside the file system's
  // critical sections, so they are the hottest instruction in the tracer.
  struct HeldLock {
    Inum ino = kInvalidInum;
    uint64_t acquired_at = 0;  // ticks
    uint16_t depth = 0;
  };

  struct ThreadState {
    bool in_op = false;
    uint8_t op_kind = 0;
    uint64_t op_begin = 0;   // ticks
    uint64_t last_step = 0;  // ticks; previous acquire (or op begin)
    uint16_t acquires = 0;   // locks acquired so far in this op = LockPath depth
    uint16_t releases = 0;   // locks released so far in this op
    std::vector<HeldLock> held;  // acquire-ordered; released out of order by rename
  };

  ThreadState& StateFor(Tid tid);
  void Emit(TraceEvent e) {
    if (ring_ != nullptr) {
      ring_->Append(e);
    }
  }

  TraceRing* ring_;
  // Process-unique, never reused — the key that keeps thread-local state
  // caches from aliasing a dead observer (see StateFor).
  const uint64_t id_;
  // Nanoseconds per tick of the fast clock, calibrated once at construction.
  const double ns_per_tick_;

  uint64_t TicksToNs(uint64_t ticks) const {
    return static_cast<uint64_t>(static_cast<double>(ticks) * ns_per_tick_);
  }

  Counter ops_;
  std::array<Counter, 11> op_errors_;      // indexed by OpKind
  std::array<Histogram, 11> op_latency_;   // indexed by OpKind
  Counter lock_acquires_;
  Counter lock_releases_;
  std::array<Histogram, kMaxTrackedDepth + 1> hold_ns_;  // [1..kMaxTrackedDepth]
  std::array<Histogram, kMaxTrackedDepth + 1> step_ns_;
  Histogram path_depth_;
  Counter help_events_;
  Counter helped_ops_;
  Counter rollback_checks_;
  Counter rolled_back_ops_;
  Histogram help_set_size_;
  Gauge helplist_len_;
  std::array<Counter, kInvariantKindCount> invariant_checks_;
  std::array<Counter, kInvariantKindCount> invariant_failures_;
  Counter violations_;
  Counter rcu_attempts_;
  Counter rcu_validation_failures_;
  Counter rcu_fallbacks_;
  Counter rcu_unvalidated_;

  // Sharded thread-state table. unordered_map references are stable across
  // inserts, so StateFor can hand out a reference used lock-free by its
  // owning thread.
  struct StateShard {
    std::mutex mu;
    std::unordered_map<Tid, ThreadState> states;
  };
  static constexpr size_t kStateShards = 16;
  std::array<StateShard, kStateShards> shards_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_OBS_TRACER_H_
