#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace atomfs {

Counter MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<obs_internal::CounterStorage>())
             .first;
  }
  return Counter(it->second.get());
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<obs_internal::GaugeStorage>()).first;
  }
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<obs_internal::HistogramStorage>())
             .first;
  }
  return Histogram(it->second.get());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, storage] : counters_) {
    CounterSnapshot c;
    c.name = name;
    for (const auto& shard : storage->shards) {
      // Relaxed: each cell is an independent monotone word (see Counter::Inc).
      c.value += shard.value.load(std::memory_order_relaxed);
    }
    out.counters.push_back(std::move(c));
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, storage] : gauges_) {
    GaugeSnapshot g;
    g.name = name;
    for (const auto& shard : storage->shards) {
      // Relaxed: independent per-shard delta word (see Gauge::Add).
      g.value += shard.value.load(std::memory_order_relaxed);
    }
    out.gauges.push_back(std::move(g));
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, storage] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    for (const auto& shard : storage->shards) {
      // Buckets first, with acquire, then the sum: pairing with the release
      // bucket update in Histogram::Record, every event this snapshot counts
      // has its sum contribution visible by the time sum is read, so
      // count/sum (and the mean/percentiles derived from them) are coherent.
      for (size_t i = 0; i < h.buckets.size(); ++i) {
        h.buckets[i] += shard.buckets[i].load(std::memory_order_acquire);
      }
      // Relaxed is enough here: the acquire loads above already order this
      // read after the counted events' sum updates.
      h.sum += shard.sum.load(std::memory_order_relaxed);
    }
    // count is the bucket sum — the shards carry no separate count cell.
    for (const uint64_t b : h.buckets) {
      h.count += b;
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

namespace {

template <typename Vec>
auto FindByName(const Vec& v, std::string_view name) -> const typename Vec::value_type* {
  const auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const typename Vec::value_type& e, std::string_view n) { return e.name < n; });
  return it != v.end() && it->name == name ? &*it : nullptr;
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::FindCounter(std::string_view name) const& {
  return FindByName(counters, name);
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(std::string_view name) const& {
  return FindByName(gauges, name);
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(std::string_view name) const& {
  return FindByName(histograms, name);
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const CounterSnapshot* c = FindCounter(name);
  return c != nullptr ? c->value : 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  const GaugeSnapshot* g = FindGauge(name);
  return g != nullptr ? g->value : 0;
}

std::string MetricsSnapshot::ToText() const {
  std::string out = "# atomtrace metrics\n";
  char line[256];
  for (const auto& c : counters) {
    std::snprintf(line, sizeof line, "counter %s %llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += line;
  }
  for (const auto& g : gauges) {
    std::snprintf(line, sizeof line, "gauge %s %lld\n", g.name.c_str(),
                  static_cast<long long>(g.value));
    out += line;
  }
  for (const auto& h : histograms) {
    std::snprintf(line, sizeof line,
                  "hist %s count=%llu sum=%llu mean=%.0f p50=%llu p99=%llu p999=%llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum), h.Mean(),
                  static_cast<unsigned long long>(h.Percentile(0.50)),
                  static_cast<unsigned long long>(h.Percentile(0.99)),
                  static_cast<unsigned long long>(h.Percentile(0.999)));
    out += line;
  }
  return out;
}

}  // namespace atomfs
