// Export surfaces for the verification flight recorder (docs/OBSERVABILITY.md
// §"Ghost events & flight recorder"):
//
//   * ExportChromeTrace: a TraceRing snapshot rendered as Chrome
//     trace-event / Perfetto JSON — one track per thread, op spans (B/E),
//     instants for lock transitions, LPs, invariant checks, roll-backs and
//     violations, and flow arrows (s/f pairs) for each helper -> helpee edge,
//     so `linothers` helping is visible as an arrow in the Perfetto UI.
//   * PrometheusText: a MetricsSnapshot rendered in the Prometheus text
//     exposition format (version 0.0.4) — counters and gauges verbatim,
//     histograms with cumulative `_bucket{le="..."}` series on the shared
//     power-of-two bounds plus `_sum` and `_count`.
//
// Both are pure functions over snapshots; neither blocks writers.

#ifndef ATOMFS_SRC_OBS_EXPORT_H_
#define ATOMFS_SRC_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace atomfs {

// Renders `events` (a TraceRing::Snapshot, oldest first) as a Chrome
// trace-event JSON document. When `max_bytes` is nonzero and the full export
// would exceed it, the oldest events are dropped (in halves) until the
// document fits — the flight-recorder semantics carried through to the wire.
std::string ExportChromeTrace(const std::vector<TraceEvent>& events, size_t max_bytes = 0);

// Renders `snap` in the Prometheus text exposition format. Metric names are
// prefixed "atomfs_" and sanitized (every character outside [a-zA-Z0-9_:]
// becomes '_').
std::string PrometheusText(const MetricsSnapshot& snap);

}  // namespace atomfs

#endif  // ATOMFS_SRC_OBS_EXPORT_H_
