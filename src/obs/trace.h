// atomtrace structured trace ring: a fixed-capacity, lock-free buffer of
// per-operation events (op begin/end, each hand-over-hand lock transition
// with its LockPathRole and depth, LPs, helper linearizations, roll-backs).
//
// The ring is a flight recorder, not a log: Append overwrites the oldest
// slot once full and never blocks or allocates. Writers claim a slot with
// one fetch_add, fill it, then publish the slot's sequence number with a
// release store; Snapshot only returns slots whose published sequence is
// consistent with the current head, so a half-written slot is skipped rather
// than returned torn. While writers are running a snapshot is best-effort;
// once they quiesce it is exact for a single writer. With concurrent writers
// racing across a wrap, the older claimant of a reused slot can publish
// last, leaving a stale slot the snapshot skips — events are never torn or
// duplicated, but a post-quiescence snapshot may hold fewer than capacity()
// events.
//
// Memory model: the slot body is a seqlock whose payload is stored as atomic
// 64-bit words (release stores by the writer, acquire loads by the reader),
// with the published seq re-checked after the copy. Copying the event as a
// plain struct would be a C++ data race — the old protocol relied on the
// seq check to discard torn copies, but the torn read itself is undefined
// behavior and the first thing TSan reports. The acquire word loads also
// carry the ordering argument: if the reader observes any word of a newer
// write, the writer's earlier relaxed in-flight mark (published = ~0)
// happens-before the reader's re-check, which therefore cannot return the
// stale seq.

#ifndef ATOMFS_SRC_OBS_TRACE_H_
#define ATOMFS_SRC_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/tid.h"

namespace atomfs {

enum class TraceEventType : uint8_t {
  kOpBegin = 1,
  kOpEnd = 2,
  kLockAcquired = 3,
  kLockReleased = 4,
  kLp = 5,        // linearization point (concrete)
  kHelp = 6,      // a rename/exchange LP linearized another thread (linothers)
  kRollback = 7,  // roll-back relation check walked the Helplist backwards
  // Ghost events appended for the verification flight recorder (append-only:
  // exporters and dumps key on these raw values).
  kHelpedRetired = 8,  // a helped op passed its own concrete LP (helped LP)
  kInvariant = 9,      // a Table-1 invariant check ran (op = InvariantKind)
  kViolation = 10,     // the monitor recorded a violation
  // Transaction ghost events (src/txn): the commit descriptor's lifecycle,
  // folded into the same flight recorder as the monitor's ghost steps.
  // ino = txid; arg = op count (kTxnCommit) or 1 if the abort was a commit
  // validation conflict (kTxnAbort); aux = commit sequence number.
  kTxnBegin = 11,
  kTxnCommit = 12,
  kTxnAbort = 13,
  // Optimistic (RCU-walk) read-path events (src/core rcu walk). For
  // kOptWalkValidate: arg = OptValidation outcome (0 pass / 1 fail /
  // 2 skipped), depth = validated-chain length.
  kOptWalkStart = 14,
  kOptWalkValidate = 15,
  kOptWalkFallback = 16,
  // Journal checkpoint/compaction events (src/journal, src/txn): ino = the
  // checkpoint id. kCkptEnd: arg = materialized op count, aux = checkpoint
  // file bytes.
  kCkptBegin = 17,
  kCkptEnd = 18,
};

std::string_view TraceEventTypeName(TraceEventType type);

// TraceEvent.flags bits for kHelp per-target events: why the target joined
// the helping set (paper Fig. 5 Step-1 vs Step-2; see src/obs/sink.h).
inline constexpr uint8_t kTraceHelpReasonSrcPrefix = 1;
inline constexpr uint8_t kTraceHelpReasonLockPathPrefix = 2;
inline constexpr uint8_t kTraceHelpReasonCrossShard = 4;

// One 56-byte event. Field meaning varies by type; see docs/OBSERVABILITY.md
// for the normative schema.
struct TraceEvent {
  uint64_t seq = 0;   // global append order (filled by TraceRing)
  uint64_t t_ns = 0;  // nanoseconds since ring creation (filled by TraceRing)
  Tid tid = 0;        // emitting thread (the helper, for kHelp)
  TraceEventType type = TraceEventType::kOpBegin;
  uint8_t op = 0;     // OpKind for kOpBegin/kOpEnd; InvariantKind for kInvariant
  uint8_t role = 0;   // LockPathRole for kLockAcquired
  uint8_t flags = 0;  // help reason (kTraceHelpReason*) for kHelp per-target
  uint16_t depth = 0;  // 1-based LockPath depth at lock events; final depth at
                       // kOpEnd; 1-based Helplist position for kHelp per-target
  uint64_t ino = 0;    // inode for lock events; helped tid for kHelp
  uint64_t arg = 0;    // hold_ns (kLockReleased), errc (kOpEnd), help-set size
                       // (kHelp per-run), rolled-back op count (kRollback),
                       // 0 pass / 1 fail (kInvariant)
  uint64_t aux = 0;    // Helplist length after the event (kHelp per-target,
                       // kHelpedRetired); ghost seq of the violation (kViolation)

  std::string ToString() const;
};

class TraceRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Lock-free; fills e.seq and e.t_ns.
  void Append(TraceEvent e);

  // The currently retained events, oldest first. Exact when writers are
  // quiesced; otherwise in-flight slots are omitted.
  std::vector<TraceEvent> Snapshot() const;

  size_t capacity() const { return slots_.size(); }
  // Events ever appended (>= capacity() means the ring has wrapped).
  // Relaxed: a monotone statistic, read on its own; no payload rides on it.
  uint64_t total_appended() const { return head_.load(std::memory_order_relaxed); }

 private:
  // The event payload travels through the slot as whole 64-bit words so a
  // concurrent Snapshot copy is made of atomic loads, not a racing struct
  // read (see the seqlock note in the header comment).
  static constexpr size_t kEventWords = sizeof(TraceEvent) / sizeof(uint64_t);
  static_assert(sizeof(TraceEvent) % sizeof(uint64_t) == 0,
                "TraceEvent must pack into whole 64-bit words");

  struct Slot {
    // ~0 = never written or write in flight; otherwise the seq of the event
    // the slot holds.
    std::atomic<uint64_t> published{~0ULL};
    std::array<std::atomic<uint64_t>, kEventWords> words{};
  };

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> head_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_OBS_TRACE_H_
