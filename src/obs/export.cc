#include "src/obs/export.h"

#include <cctype>
#include <cstdio>
#include <unordered_map>

#include "src/afs/op.h"
#include "src/obs/sink.h"
#include "src/util/json.h"

namespace atomfs {

namespace {

double TsMicros(const TraceEvent& e) { return static_cast<double>(e.t_ns) / 1000.0; }

const char* RoleName(uint8_t role) {
  switch (role) {
    case 0:
      return "single";
    case 1:
      return "rename_common";
    case 2:
      return "rename_src";
    case 3:
      return "rename_dst";
    case 4:
      return "opt_target";
  }
  return "unknown";
}

std::string_view HelpReasonFlagName(uint8_t flags) {
  if (flags == kTraceHelpReasonSrcPrefix) {
    return "src_prefix";
  }
  if (flags == kTraceHelpReasonLockPathPrefix) {
    return "lockpath_prefix";
  }
  if (flags == kTraceHelpReasonCrossShard) {
    return "crossshard";
  }
  return "unknown";
}

// Common fields of every trace-event record.
void Preamble(JsonWriter& w, const TraceEvent& e, const char* ph, std::string_view name,
              const char* cat) {
  w.BeginObject();
  w.Field("ph", ph);
  if (!name.empty()) {
    w.Field("name", name);
  }
  w.Field("cat", cat);
  w.Field("pid", 1);
  w.Field("tid", static_cast<uint64_t>(e.tid));
  w.Field("ts", TsMicros(e));
}

std::string EmitChromeTrace(const std::vector<TraceEvent>& events, size_t first) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  // Tracks which threads have an open "B" span, so a ring slice that starts
  // mid-operation never emits an unmatched "E" (which trips trace viewers).
  std::unordered_map<Tid, bool> open;
  for (size_t i = first; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    switch (e.type) {
      case TraceEventType::kOpBegin: {
        Preamble(w, e, "B", OpKindName(static_cast<OpKind>(e.op)), "fs");
        w.EndObject();
        open[e.tid] = true;
        break;
      }
      case TraceEventType::kOpEnd: {
        auto it = open.find(e.tid);
        if (it == open.end() || !it->second) {
          break;  // span began before the retained window
        }
        it->second = false;
        Preamble(w, e, "E", {}, "fs");
        w.Key("args");
        w.BeginObject();
        w.Field("errc", e.arg);
        w.Field("lock_path_depth", e.depth);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kLockAcquired: {
        Preamble(w, e, "i", "lock_acquired", "lock");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("ino", e.ino);
        w.Field("depth", e.depth);
        w.Field("role", RoleName(e.role));
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kLockReleased: {
        Preamble(w, e, "i", "lock_released", "lock");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("ino", e.ino);
        w.Field("hold_ns", e.arg);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kLp: {
        Preamble(w, e, "i", "LP", "crlh");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("ino", e.ino);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kHelp: {
        if (e.ino == 0) {
          // Per-run event: this rename's linothers helped arg threads.
          Preamble(w, e, "i", "linothers", "crlh");
          w.Field("s", "t");
          w.Key("args");
          w.BeginObject();
          w.Field("help_set_size", e.arg);
          w.EndObject();
          w.EndObject();
          break;
        }
        // Per-target event: a flow arrow helper -> target, plus an instant
        // carrying the edge metadata on the helper's track.
        Preamble(w, e, "i", "help", "crlh");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("target_tid", e.ino);
        w.Field("reason", HelpReasonFlagName(e.flags));
        w.Field("helplist_pos", e.depth);
        w.Field("helplist_len", e.aux);
        w.EndObject();
        w.EndObject();
        Preamble(w, e, "s", "help", "crlh");
        w.Field("id", e.seq);
        w.EndObject();
        w.BeginObject();
        w.Field("ph", "f");
        w.Field("bp", "e");
        w.Field("name", "help");
        w.Field("cat", "crlh");
        w.Field("pid", 1);
        w.Field("tid", e.ino);  // the helped thread's track
        w.Field("ts", TsMicros(e) + 0.001);
        w.Field("id", e.seq);
        w.EndObject();
        break;
      }
      case TraceEventType::kHelpedRetired: {
        Preamble(w, e, "i", "helped_LP", "crlh");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("helplist_len", e.aux);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kInvariant: {
        Preamble(w, e, "i", InvariantKindName(static_cast<InvariantKind>(e.op)), "invariant");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("passed", e.arg == 0);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kRollback: {
        Preamble(w, e, "i", "rollback", "crlh");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("rolled_back", e.arg);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kViolation: {
        Preamble(w, e, "i", "VIOLATION", "crlh");
        w.Field("s", "g");
        w.Key("args");
        w.BeginObject();
        w.Field("ghost_seq", e.aux);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kTxnBegin: {
        Preamble(w, e, "i", "txn_begin", "txn");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("txid", e.ino);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kTxnCommit: {
        Preamble(w, e, "i", "txn_commit", "txn");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("txid", e.ino);
        w.Field("ops", e.arg);
        w.Field("commit_seq", e.aux);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kTxnAbort: {
        Preamble(w, e, "i", "txn_abort", "txn");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("txid", e.ino);
        w.Field("conflict", e.arg);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kOptWalkStart: {
        Preamble(w, e, "i", "opt_walk_start", "rcuwalk");
        w.Field("s", "t");
        w.EndObject();
        break;
      }
      case TraceEventType::kOptWalkValidate: {
        Preamble(w, e, "i", "opt_walk_validate", "rcuwalk");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("outcome", e.arg == 0   ? "pass"
                           : e.arg == 1 ? "fail"
                                        : "skipped");
        w.Field("depth", e.depth);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kOptWalkFallback: {
        Preamble(w, e, "i", "opt_walk_fallback", "rcuwalk");
        w.Field("s", "t");
        w.EndObject();
        break;
      }
      case TraceEventType::kCkptBegin: {
        Preamble(w, e, "i", "ckpt_begin", "journal");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("ckpt_id", e.ino);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventType::kCkptEnd: {
        Preamble(w, e, "i", "ckpt_end", "journal");
        w.Field("s", "t");
        w.Key("args");
        w.BeginObject();
        w.Field("ckpt_id", e.ino);
        w.Field("ops", e.arg);
        w.Field("bytes", e.aux);
        w.EndObject();
        w.EndObject();
        break;
      }
    }
  }
  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  w.EndObject();
  return w.str();
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEvent>& events, size_t max_bytes) {
  size_t first = 0;
  std::string out = EmitChromeTrace(events, first);
  while (max_bytes != 0 && out.size() > max_bytes && first < events.size()) {
    // Flight-recorder truncation: keep the newest half of what remains.
    first += (events.size() - first + 1) / 2;
    out = EmitChromeTrace(events, first);
  }
  return out;
}

namespace {

std::string PromName(std::string_view name) {
  std::string out = "atomfs_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void AppendLine(std::string& out, const std::string& name, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, " %llu\n", static_cast<unsigned long long>(v));
  out += name;
  out += buf;
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  for (const CounterSnapshot& c : snap.counters) {
    const std::string name = PromName(c.name);
    out += "# TYPE " + name + " counter\n";
    AppendLine(out, name, c.value);
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    const std::string name = PromName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string name = PromName(h.name);
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      char le[32];
      std::snprintf(le, sizeof le, "%llu",
                    static_cast<unsigned long long>(LatencyBucketBound(i)));
      AppendLine(out, name + "_bucket{le=\"" + le + "\"}", cumulative);
    }
    AppendLine(out, name + "_bucket{le=\"+Inf\"}", h.count);
    AppendLine(out, name + "_sum", h.sum);
    AppendLine(out, name + "_count", h.count);
  }
  return out;
}

}  // namespace atomfs
