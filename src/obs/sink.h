// CrlhObsSink: the narrow interface through which the CRL-H monitor reports
// ghost-machinery activity (helper linearizations, Helplist movement,
// roll-back checks) to the observability layer without depending on it.
//
// Every callback is invoked with the monitor's ghost mutex held, so
// implementations must be non-blocking and must never call back into the
// monitor. TracingObserver (src/obs/tracer.h) is the standard
// implementation.

#ifndef ATOMFS_SRC_OBS_SINK_H_
#define ATOMFS_SRC_OBS_SINK_H_

#include <cstddef>

#include "src/util/tid.h"

namespace atomfs {

class CrlhObsSink {
 public:
  virtual ~CrlhObsSink() = default;

  // A helper op's LP computed a non-empty helping set of `help_set_size`
  // threads (one event per linothers run that helped anyone).
  virtual void OnHelpEvent(Tid helper, size_t help_set_size) {
    (void)helper;
    (void)help_set_size;
  }

  // `helper` linearized `target`'s abstract op; the Helplist now holds
  // `helplist_len` entries.
  virtual void OnHelpedLinearized(Tid helper, Tid target, size_t helplist_len) {
    (void)helper;
    (void)target;
    (void)helplist_len;
  }

  // A helped op passed its own concrete LP and left the Helplist.
  virtual void OnHelpedRetired(Tid tid, size_t helplist_len) {
    (void)tid;
    (void)helplist_len;
  }

  // The abstract-concrete relation check rolled back `rolled_back` helped
  // ops (the §4.4 roll-back mechanism ran).
  virtual void OnRollback(size_t rolled_back) { (void)rolled_back; }
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_OBS_SINK_H_
