// CrlhObsSink: the narrow interface through which the CRL-H monitor reports
// ghost-machinery activity (helper linearizations, Helplist movement,
// invariant-check outcomes, roll-back checks, violations) to the
// observability layer without depending on it.
//
// Every callback is invoked with the monitor's ghost mutex held, so
// implementations must be non-blocking and must never call back into the
// monitor. TracingObserver (src/obs/tracer.h) is the standard
// implementation.

#ifndef ATOMFS_SRC_OBS_SINK_H_
#define ATOMFS_SRC_OBS_SINK_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/util/tid.h"

namespace atomfs {

// Why a thread joined the helping set at a rename/exchange LP (paper Fig. 5):
// Step-1 Init (the helper's breaking path is a prefix of the thread's
// LockPath — direct path inter-dependency), Step-2 recursive closure under
// the linearize-before relation (Fig. 4(c)), or — in the sharded namespace —
// an op routed into an in-flight cross-shard migration's footprint that
// completed the migration before running (docs/SHARDING.md).
enum class HelpReason : uint8_t {
  kSrcPrefix = 0,
  kLockPathPrefix = 1,
  kCrossShard = 2,
};

inline std::string_view HelpReasonName(HelpReason reason) {
  switch (reason) {
    case HelpReason::kSrcPrefix:
      return "src_prefix";
    case HelpReason::kLockPathPrefix:
      return "lockpath_prefix";
    case HelpReason::kCrossShard:
      return "crossshard";
  }
  return "unknown";
}

// The continuously-checked Table-1 invariants plus the two offline relation
// checks, identified so the flight recorder can record every check outcome.
// Append-only: raw values appear in exported traces.
enum class InvariantKind : uint8_t {
  kLastLockedLockpath = 0,
  kFutureLockpathValidness = 1,
  kUnhelpedNonBypassable = 2,
  kHelpedNonBypassable = 3,
  kHelplistConsistency = 4,
  kLockpathWellformed = 5,
  kGoodAfs = 6,
  kRefinement = 7,
  kAbstractConcrete = 8,
  // An optimistic (RCU-walk) reader reached its LP: its version-chain
  // validation must have passed (docs/CONCURRENCY.md §6).
  kOptValidation = 9,
};

inline constexpr size_t kInvariantKindCount = 10;

inline std::string_view InvariantKindName(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kLastLockedLockpath:
      return "last_locked_lockpath";
    case InvariantKind::kFutureLockpathValidness:
      return "future_lockpath_validness";
    case InvariantKind::kUnhelpedNonBypassable:
      return "unhelped_non_bypassable";
    case InvariantKind::kHelpedNonBypassable:
      return "helped_non_bypassable";
    case InvariantKind::kHelplistConsistency:
      return "helplist_consistency";
    case InvariantKind::kLockpathWellformed:
      return "lockpath_wellformed";
    case InvariantKind::kGoodAfs:
      return "good_afs";
    case InvariantKind::kRefinement:
      return "refinement";
    case InvariantKind::kAbstractConcrete:
      return "abstract_concrete";
    case InvariantKind::kOptValidation:
      return "opt_validation";
  }
  return "unknown";
}

class CrlhObsSink {
 public:
  virtual ~CrlhObsSink() = default;

  // A helper op's LP computed a non-empty helping set of `help_set_size`
  // threads (one event per linothers run that helped anyone).
  virtual void OnHelpEvent(Tid helper, size_t help_set_size) {
    (void)helper;
    (void)help_set_size;
  }

  // `helper` linearized `target`'s abstract op for `reason`; the target sits
  // at 1-based `helplist_pos` of the Helplist, which now holds `helplist_len`
  // entries.
  virtual void OnHelpedLinearized(Tid helper, Tid target, HelpReason reason,
                                  size_t helplist_pos, size_t helplist_len) {
    (void)helper;
    (void)target;
    (void)reason;
    (void)helplist_pos;
    (void)helplist_len;
  }

  // A helped op passed its own concrete LP and left the Helplist.
  virtual void OnHelpedRetired(Tid tid, size_t helplist_len) {
    (void)tid;
    (void)helplist_len;
  }

  // One invariant check ran for `tid` (0 when the check is not per-thread)
  // and passed or failed.
  virtual void OnInvariantCheck(InvariantKind kind, Tid tid, bool passed) {
    (void)kind;
    (void)tid;
    (void)passed;
  }

  // The abstract-concrete relation check rolled back `rolled_back` helped
  // ops (the §4.4 roll-back mechanism ran).
  virtual void OnRollback(size_t rolled_back) { (void)rolled_back; }

  // The monitor recorded a violation at ghost time `seq`. `message` is only
  // valid for the duration of the call.
  virtual void OnViolation(std::string_view message, uint64_t seq) {
    (void)message;
    (void)seq;
  }
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_OBS_SINK_H_
