// atomtrace metrics registry: lock-free counters, gauges, and fixed-bucket
// latency histograms on per-thread shards.
//
// Design
//   * Registration (GetCounter / GetGauge / GetHistogram) takes a mutex and
//     dedups by name; it happens once per metric, at setup time. Handles are
//     trivially copyable pointers into storage owned by the registry.
//   * Updates (Inc / Add / Record) are wait-free: one relaxed atomic RMW on
//     the calling thread's shard (two for histograms: sum + bucket; the
//     count is derived from the buckets at snapshot time). Shards are
//     cache-line sized, and a thread picks its shard by CurrentTid(), so
//     under the common "N long-lived worker threads" pattern there is no
//     cross-core cacheline traffic on the hot path.
//   * Snapshot() sums the shards. Totals are exact once the writing threads
//     have quiesced (each update is an atomic add); while writers run, a
//     snapshot is a consistent-enough monotone view for monitoring.
//
// Histograms use the shared power-of-two bucket scheme of src/util/stats.h
// (kLatencyBucketCount buckets), so percentiles computed from a snapshot
// agree exactly with every LatencyHistogram-derived report in the repo.
//
// The registry must outlive every handle taken from it. Handles taken from a
// destroyed registry are invalid; default-constructed handles are inert
// no-ops, so optional instrumentation can keep unconditional call sites.

#ifndef ATOMFS_SRC_OBS_METRICS_H_
#define ATOMFS_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/stats.h"
#include "src/util/tid.h"

namespace atomfs {

// Number of per-thread shards per metric. A power of two; threads map to
// shards by tid, so this bounds memory, not thread count.
inline constexpr size_t kMetricShards = 16;

namespace obs_internal {

struct alignas(64) CounterShard {
  std::atomic<uint64_t> value{0};
};

struct alignas(64) GaugeShard {
  std::atomic<int64_t> value{0};
};

// No separate count cell: a record's count lives in its bucket, and the
// snapshot derives the total as the bucket sum — one fewer atomic RMW on
// the hot path.
struct alignas(64) HistogramShard {
  std::atomic<uint64_t> sum{0};
  std::array<std::atomic<uint64_t>, kLatencyBucketCount> buckets{};
};

struct CounterStorage {
  std::array<CounterShard, kMetricShards> shards;
};
struct GaugeStorage {
  std::array<GaugeShard, kMetricShards> shards;
};
struct HistogramStorage {
  std::array<HistogramShard, kMetricShards> shards;
};

inline size_t ShardOf() { return CurrentTid() % kMetricShards; }

}  // namespace obs_internal

// Monotone event counter.
class Counter {
 public:
  Counter() = default;
  void Inc(uint64_t n = 1) {
    if (s_ != nullptr) {
      // Relaxed: a counter cell is an independent word — no other data is
      // published through it, and Snapshot only needs per-cell coherence.
      s_->shards[obs_internal::ShardOf()].value.fetch_add(n, std::memory_order_relaxed);
    }
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(obs_internal::CounterStorage* s) : s_(s) {}
  obs_internal::CounterStorage* s_ = nullptr;
};

// Signed up/down quantity (e.g. current Helplist length). Stored as
// per-shard deltas; the snapshot value is their sum.
class Gauge {
 public:
  Gauge() = default;
  void Add(int64_t d) {
    if (s_ != nullptr) {
      // Relaxed: same argument as Counter::Inc — an isolated word, no
      // cross-thread payload rides on the gauge delta.
      s_->shards[obs_internal::ShardOf()].value.fetch_add(d, std::memory_order_relaxed);
    }
  }
  void Sub(int64_t d) { Add(-d); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(obs_internal::GaugeStorage* s) : s_(s) {}
  obs_internal::GaugeStorage* s_ = nullptr;
};

// Latency (or any nonnegative value) histogram on the shared power-of-two
// buckets.
class Histogram {
 public:
  Histogram() = default;
  void Record(uint64_t value) {
    if (s_ == nullptr) {
      return;
    }
    auto& shard = s_->shards[obs_internal::ShardOf()];
    // The sum update (relaxed) is published by the bucket update (release):
    // a Snapshot that reads the buckets with acquire and the sum afterwards
    // therefore counts no event whose sum contribution it cannot see, so
    // derived means/percentiles are never computed over a sum that is
    // missing counted events. (The reverse skew — sum includes an event the
    // buckets do not yet — only biases the mean up transiently.)
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    shard.buckets[LatencyBucketOf(value)].fetch_add(1, std::memory_order_release);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(obs_internal::HistogramStorage* s) : s_(s) {}
  obs_internal::HistogramStorage* s_ = nullptr;
};

// --- snapshots ---------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kLatencyBucketCount> buckets{};

  double Mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  uint64_t Percentile(double p) const {
    return LatencyBucketsPercentile(buckets.data(), buckets.size(), count, p);
  }
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;      // sorted by name
  std::vector<GaugeSnapshot> gauges;          // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  // The Find* accessors return pointers into this snapshot, so they are
  // lvalue-only: calling them on a Snapshot() temporary dangles the moment
  // the full expression ends (caught as a heap-use-after-free under TSan).
  // Bind the snapshot to a local first. The value accessors copy and are
  // safe on temporaries.
  const CounterSnapshot* FindCounter(std::string_view name) const&;
  const GaugeSnapshot* FindGauge(std::string_view name) const&;
  const HistogramSnapshot* FindHistogram(std::string_view name) const&;
  const CounterSnapshot* FindCounter(std::string_view) const&& = delete;
  const GaugeSnapshot* FindGauge(std::string_view) const&& = delete;
  const HistogramSnapshot* FindHistogram(std::string_view) const&& = delete;
  uint64_t CounterValue(std::string_view name) const;  // 0 if absent
  int64_t GaugeValue(std::string_view name) const;     // 0 if absent

  // Human-readable dump (the atomfsd --metrics-dump / SIGUSR1 format):
  //   # atomtrace metrics
  //   counter NAME VALUE
  //   gauge NAME VALUE
  //   hist NAME count=N sum=N mean=N p50=N p99=N p999=N
  std::string ToText() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Idempotent by name: a second Get* with the same name returns a handle to
  // the same storage (the kind must match; a name registered as one kind is
  // never re-registered as another — callers share naming discipline).
  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  Histogram GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;  // registration and snapshot only, never updates
  std::map<std::string, std::unique_ptr<obs_internal::CounterStorage>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<obs_internal::GaugeStorage>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<obs_internal::HistogramStorage>, std::less<>> histograms_;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_OBS_METRICS_H_
