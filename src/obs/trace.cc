#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace atomfs {

std::string_view TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kOpBegin:
      return "op_begin";
    case TraceEventType::kOpEnd:
      return "op_end";
    case TraceEventType::kLockAcquired:
      return "lock_acquired";
    case TraceEventType::kLockReleased:
      return "lock_released";
    case TraceEventType::kLp:
      return "lp";
    case TraceEventType::kHelp:
      return "help";
    case TraceEventType::kRollback:
      return "rollback";
    case TraceEventType::kHelpedRetired:
      return "helped_retired";
    case TraceEventType::kInvariant:
      return "invariant";
    case TraceEventType::kViolation:
      return "violation";
    case TraceEventType::kTxnBegin:
      return "txn_begin";
    case TraceEventType::kTxnCommit:
      return "txn_commit";
    case TraceEventType::kTxnAbort:
      return "txn_abort";
    case TraceEventType::kOptWalkStart:
      return "opt_walk_start";
    case TraceEventType::kOptWalkValidate:
      return "opt_walk_validate";
    case TraceEventType::kOptWalkFallback:
      return "opt_walk_fallback";
    case TraceEventType::kCkptBegin:
      return "ckpt_begin";
    case TraceEventType::kCkptEnd:
      return "ckpt_end";
  }
  return "unknown";
}

std::string TraceEvent::ToString() const {
  char buf[192];
  std::snprintf(
      buf, sizeof buf,
      "[%llu +%lluns tid=%u] %s op=%u role=%u flags=%u depth=%u ino=%llu arg=%llu aux=%llu",
      static_cast<unsigned long long>(seq), static_cast<unsigned long long>(t_ns), tid,
      TraceEventTypeName(type).data(), op, role, flags, depth,
      static_cast<unsigned long long>(ino), static_cast<unsigned long long>(arg),
      static_cast<unsigned long long>(aux));
  return buf;
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TraceRing::TraceRing(size_t capacity)
    : slots_(RoundUpPow2(capacity)),
      mask_(slots_.size() - 1),
      epoch_(std::chrono::steady_clock::now()) {}

void TraceRing::Append(TraceEvent e) {
  // Relaxed: the fetch_add only allocates a unique seq; publication order is
  // carried by the slot's own seqlock below, not by head_.
  const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  e.seq = seq;
  e.t_ns = static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - epoch_)
                                     .count());
  Slot& slot = slots_[seq & mask_];
  // Mark in-flight so a concurrent Snapshot skips the slot instead of
  // returning the old event under the new seq. Relaxed is enough: any reader
  // that observes one of the release word stores below observes this store
  // too (it is sequenced before them), so its seqlock re-check fails.
  slot.published.store(~0ULL, std::memory_order_relaxed);
  uint64_t words[kEventWords];
  std::memcpy(words, &e, sizeof e);
  for (size_t i = 0; i < kEventWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_release);
  }
  slot.published.store(seq, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t oldest = head > slots_.size() ? head - slots_.size() : 0;
  std::vector<TraceEvent> out;
  out.reserve(std::min<uint64_t>(head, slots_.size()));
  for (const Slot& slot : slots_) {
    const uint64_t seq = slot.published.load(std::memory_order_acquire);
    if (seq == ~0ULL || seq < oldest || seq >= head) {
      continue;  // never written, overwritten meanwhile, or mid-write
    }
    uint64_t words[kEventWords];
    for (size_t i = 0; i < kEventWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_acquire);
    }
    // Seqlock re-check: a writer that started overwriting the slot while we
    // copied left published at ~0 (or a newer seq) — and the acquire loads
    // above guarantee we see that mark if we saw any of its words.
    if (slot.published.load(std::memory_order_acquire) != seq) {
      continue;
    }
    TraceEvent e;
    std::memcpy(&e, words, sizeof e);
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return out;
}

}  // namespace atomfs
