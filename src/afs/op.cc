#include "src/afs/op.h"

#include <algorithm>
#include <sstream>

#include "src/util/check.h"

namespace atomfs {

bool IsPathBased(OpKind kind) {
  (void)kind;
  return true;  // see header: AtomFS path-resolves every interface
}

bool IsTreeMutation(OpKind kind) {
  switch (kind) {
    case OpKind::kMkdir:
    case OpKind::kMknod:
    case OpKind::kRmdir:
    case OpKind::kUnlink:
    case OpKind::kRename:
    case OpKind::kExchange:
      return true;
    default:
      return false;
  }
}

OpCall OpCall::MkdirOf(Path p) {
  OpCall c;
  c.kind = OpKind::kMkdir;
  c.a = std::move(p);
  return c;
}

OpCall OpCall::MknodOf(Path p) {
  OpCall c;
  c.kind = OpKind::kMknod;
  c.a = std::move(p);
  return c;
}

OpCall OpCall::RmdirOf(Path p) {
  OpCall c;
  c.kind = OpKind::kRmdir;
  c.a = std::move(p);
  return c;
}

OpCall OpCall::UnlinkOf(Path p) {
  OpCall c;
  c.kind = OpKind::kUnlink;
  c.a = std::move(p);
  return c;
}

OpCall OpCall::RenameOf(Path src, Path dst) {
  OpCall c;
  c.kind = OpKind::kRename;
  c.a = std::move(src);
  c.b = std::move(dst);
  return c;
}

OpCall OpCall::ExchangeOf(Path a, Path b) {
  OpCall c;
  c.kind = OpKind::kExchange;
  c.a = std::move(a);
  c.b = std::move(b);
  return c;
}

OpCall OpCall::StatOf(Path p) {
  OpCall c;
  c.kind = OpKind::kStat;
  c.a = std::move(p);
  return c;
}

OpCall OpCall::ReadDirOf(Path p) {
  OpCall c;
  c.kind = OpKind::kReadDir;
  c.a = std::move(p);
  return c;
}

OpCall OpCall::ReadOf(Path p, uint64_t offset, uint64_t len) {
  OpCall c;
  c.kind = OpKind::kRead;
  c.a = std::move(p);
  c.offset = offset;
  c.len = len;
  return c;
}

OpCall OpCall::WriteOf(Path p, uint64_t offset, std::vector<std::byte> payload) {
  OpCall c;
  c.kind = OpKind::kWrite;
  c.a = std::move(p);
  c.offset = offset;
  c.data = std::move(payload);
  return c;
}

OpCall OpCall::TruncateOf(Path p, uint64_t size) {
  OpCall c;
  c.kind = OpKind::kTruncate;
  c.a = std::move(p);
  c.offset = size;
  return c;
}

std::string OpCall::ToString() const {
  std::ostringstream os;
  os << OpKindName(kind) << "(" << a.ToString();
  if (kind == OpKind::kRename || kind == OpKind::kExchange) {
    os << ", " << b.ToString();
  } else if (kind == OpKind::kRead) {
    os << ", off=" << offset << ", len=" << len;
  } else if (kind == OpKind::kWrite) {
    os << ", off=" << offset << ", n=" << data.size();
  } else if (kind == OpKind::kTruncate) {
    os << ", size=" << offset;
  }
  os << ")";
  return os.str();
}

std::string OpResult::ToString(OpKind kind) const {
  std::ostringstream os;
  os << ErrcName(status.code());
  if (!status.ok()) {
    return os.str();
  }
  switch (kind) {
    case OpKind::kStat:
      os << " {type=" << (attr.type == FileType::kDir ? "dir" : "file") << ", size=" << attr.size
         << "}";
      break;
    case OpKind::kReadDir: {
      os << " [";
      for (size_t i = 0; i < entries.size(); ++i) {
        if (i != 0) {
          os << ", ";
        }
        os << entries[i].name;
      }
      os << "]";
      break;
    }
    case OpKind::kRead:
    case OpKind::kWrite:
      os << " n=" << nbytes;
      break;
    default:
      break;
  }
  return os.str();
}

OpCall OpCall::FromFsOp(const FsOp& op) {
  OpCall c;
  c.kind = op.kind;
  c.a = op.a;
  c.b = op.b;
  c.offset = op.offset;
  c.len = op.len;
  c.data.assign(op.payload.begin(), op.payload.end());
  return c;
}

FsOp OpCall::AsFsOp() const {
  FsOp op;
  op.kind = kind;
  op.a = a;
  op.b = b;
  op.offset = offset;
  op.len = len;
  op.payload = std::span<const std::byte>(data);
  return op;
}

OpResult RunOp(FileSystem& fs, const OpCall& call) {
  OpResult r;
  static_cast<FsOpResult&>(r) = fs.Dispatch(call.AsFsOp());
  return r;
}

bool ResultsEquivalent(OpKind kind, const OpResult& lhs, const OpResult& rhs) {
  if (lhs.status != rhs.status) {
    return false;
  }
  if (!lhs.status.ok()) {
    return true;
  }
  switch (kind) {
    case OpKind::kStat:
      // Inode number masked; see header.
      return lhs.attr.type == rhs.attr.type && lhs.attr.size == rhs.attr.size;
    case OpKind::kReadDir: {
      if (lhs.entries.size() != rhs.entries.size()) {
        return false;
      }
      for (size_t i = 0; i < lhs.entries.size(); ++i) {
        if (lhs.entries[i].name != rhs.entries[i].name ||
            lhs.entries[i].type != rhs.entries[i].type) {
          return false;
        }
      }
      return true;
    }
    case OpKind::kRead:
      return lhs.nbytes == rhs.nbytes && lhs.data == rhs.data;
    case OpKind::kWrite:
      return lhs.nbytes == rhs.nbytes;
    default:
      return true;
  }
}

namespace {

bool StructurallyEqualAt(const SpecFs& a, Inum ia, const SpecFs& b, Inum ib) {
  const SpecInode* na = a.Find(ia);
  const SpecInode* nb = b.Find(ib);
  ATOMFS_CHECK(na != nullptr && nb != nullptr);
  if (na->type != nb->type) {
    return false;
  }
  if (na->type == FileType::kFile) {
    return na->data == nb->data;
  }
  if (na->links.size() != nb->links.size()) {
    return false;
  }
  auto it_a = na->links.begin();
  auto it_b = nb->links.begin();
  for (; it_a != na->links.end(); ++it_a, ++it_b) {
    if (it_a->first != it_b->first) {
      return false;
    }
    if (!StructurallyEqualAt(a, it_a->second, b, it_b->second)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool StructurallyEqual(const SpecFs& a, const SpecFs& b) {
  return StructurallyEqualAt(a, kRootInum, b, kRootInum);
}

}  // namespace atomfs
