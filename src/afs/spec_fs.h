// SpecFs: the executable abstract file system specification (the paper's AFS,
// Figure 6).
//
// The abstract state is a map from inode numbers to abstract inodes, where a
// directory maps names to inode numbers and a file is a byte sequence, plus
// the root inode number. Every abstract operation (the paper's "Aops") is an
// atomic transition on this state and doubles as the reference semantics for
// all concrete file systems in this repository: the CRL-H refinement checkers
// replay concurrent histories against SpecFs and compare results.
//
// SpecFs is deliberately sequential and unsynchronized; callers that share an
// instance across threads must serialize access themselves.

#ifndef ATOMFS_SRC_AFS_SPEC_FS_H_
#define ATOMFS_SRC_AFS_SPEC_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/vfs/filesystem.h"
#include "src/vfs/limits.h"
#include "src/vfs/path.h"

namespace atomfs {

// Abstract inode: Dir(Links) | File(bytes).
struct SpecInode {
  FileType type = FileType::kFile;
  std::map<std::string, Inum> links;  // meaningful when type == kDir
  std::vector<std::byte> data;        // meaningful when type == kFile

  friend bool operator==(const SpecInode& a, const SpecInode& b) {
    return a.type == b.type && a.links == b.links && a.data == b.data;
  }
};

class SpecFs : public FileSystem {
 public:
  // Starts with an empty root directory (inode kRootInum).
  SpecFs();

  // Deep-copyable so checkers can branch states during search.
  SpecFs(const SpecFs&) = default;
  SpecFs& operator=(const SpecFs&) = default;

  // FileSystem interface; pure sequential semantics.
  Status Mkdir(const Path& path) override;
  Status Mknod(const Path& path) override;
  Status Rmdir(const Path& path) override;
  Status Unlink(const Path& path) override;
  Status Rename(const Path& src, const Path& dst) override;
  Status Exchange(const Path& a, const Path& b) override;
  Result<Attr> Stat(const Path& path) override;
  Result<std::vector<DirEntry>> ReadDir(const Path& path) override;
  Result<size_t> Read(const Path& path, uint64_t offset, std::span<std::byte> out) override;
  Result<size_t> Write(const Path& path, uint64_t offset,
                       std::span<const std::byte> data) override;
  Status Truncate(const Path& path, uint64_t size) override;
  using FileSystem::Mkdir;
  using FileSystem::Mknod;
  using FileSystem::Read;
  using FileSystem::ReadDir;
  using FileSystem::Exchange;
  using FileSystem::Rename;
  using FileSystem::Rmdir;
  using FileSystem::Stat;
  using FileSystem::Truncate;
  using FileSystem::Unlink;
  using FileSystem::Write;

  // --- Structural access for checkers -------------------------------------

  // Follows the component list from the root. kNoEnt when a link is missing,
  // kNotDir when a non-final component is not a directory.
  Result<Inum> Resolve(const Path& path) const;

  const SpecInode* Find(Inum ino) const;
  SpecInode* FindMutable(Inum ino);
  const std::map<Inum, SpecInode>& imap() const { return imap_; }
  std::map<Inum, SpecInode>& imap_mutable() { return imap_; }

  // The paper's GoodAFS invariant: the inode map forms a tree rooted at the
  // root inode — every inode is reachable from the root exactly once, all
  // links point to existing inodes, and files carry no links.
  bool WellFormed() const;

  // Structure-sensitive hash used for memoization by the Wing&Gong checker.
  uint64_t Hash() const;

  friend bool operator==(const SpecFs& a, const SpecFs& b) { return a.imap_ == b.imap_; }

  // Allocates a fresh inode number (used by checkers replaying effects).
  Inum AllocInum() { return next_inum_++; }

  // Moves the internal allocator. The CRL-H monitor points its ghost copy at
  // a reserved scratch range so spec-allocated numbers can never collide
  // with the concrete inums it forces in (see crlh/effects.h).
  void SetNextInum(Inum next) { next_inum_ = next; }

 private:
  // Resolves path.Dir() to the parent directory. Shared by the mutating ops.
  Result<Inum> ResolveParent(const Path& path) const;

  std::map<Inum, SpecInode> imap_;
  Inum next_inum_ = kRootInum + 1;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_AFS_SPEC_FS_H_
