#include "src/afs/spec_fs.h"

#include <algorithm>
#include <deque>
#include <set>

#include "src/util/check.h"

namespace atomfs {
namespace {

// FNV-1a accumulation helpers for SpecFs::Hash().
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvMixBytes(uint64_t h, const void* p, size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

SpecFs::SpecFs() {
  SpecInode root;
  root.type = FileType::kDir;
  imap_.emplace(kRootInum, std::move(root));
}

const SpecInode* SpecFs::Find(Inum ino) const {
  auto it = imap_.find(ino);
  return it == imap_.end() ? nullptr : &it->second;
}

SpecInode* SpecFs::FindMutable(Inum ino) {
  auto it = imap_.find(ino);
  return it == imap_.end() ? nullptr : &it->second;
}

Result<Inum> SpecFs::Resolve(const Path& path) const {
  Inum cur = kRootInum;
  for (const auto& name : path.parts) {
    const SpecInode* node = Find(cur);
    ATOMFS_CHECK(node != nullptr);
    if (node->type != FileType::kDir) {
      return Errc::kNotDir;
    }
    auto it = node->links.find(name);
    if (it == node->links.end()) {
      return Errc::kNoEnt;
    }
    cur = it->second;
  }
  return cur;
}

Result<Inum> SpecFs::ResolveParent(const Path& path) const {
  ATOMFS_CHECK(!path.IsRoot());
  auto parent = Resolve(path.Dir());
  if (!parent.ok()) {
    return parent;
  }
  if (Find(*parent)->type != FileType::kDir) {
    return Errc::kNotDir;
  }
  return parent;
}

Status SpecFs::Mkdir(const Path& path) {
  if (path.IsRoot()) {
    return Status(Errc::kExist);
  }
  auto parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  SpecInode* pnode = FindMutable(*parent);
  if (pnode->links.count(path.Base()) != 0) {
    return Status(Errc::kExist);
  }
  const Inum ino = AllocInum();
  SpecInode node;
  node.type = FileType::kDir;
  imap_.emplace(ino, std::move(node));
  pnode->links.emplace(path.Base(), ino);
  return Status::Ok();
}

Status SpecFs::Mknod(const Path& path) {
  if (path.IsRoot()) {
    return Status(Errc::kExist);
  }
  auto parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  SpecInode* pnode = FindMutable(*parent);
  if (pnode->links.count(path.Base()) != 0) {
    return Status(Errc::kExist);
  }
  const Inum ino = AllocInum();
  SpecInode node;
  node.type = FileType::kFile;
  imap_.emplace(ino, std::move(node));
  pnode->links.emplace(path.Base(), ino);
  return Status::Ok();
}

Status SpecFs::Rmdir(const Path& path) {
  if (path.IsRoot()) {
    return Status(Errc::kBusy);
  }
  auto parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  SpecInode* pnode = FindMutable(*parent);
  auto it = pnode->links.find(path.Base());
  if (it == pnode->links.end()) {
    return Status(Errc::kNoEnt);
  }
  SpecInode* target = FindMutable(it->second);
  if (target->type != FileType::kDir) {
    return Status(Errc::kNotDir);
  }
  if (!target->links.empty()) {
    return Status(Errc::kNotEmpty);
  }
  imap_.erase(it->second);
  pnode->links.erase(it);
  return Status::Ok();
}

Status SpecFs::Unlink(const Path& path) {
  if (path.IsRoot()) {
    return Status(Errc::kIsDir);
  }
  auto parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  SpecInode* pnode = FindMutable(*parent);
  auto it = pnode->links.find(path.Base());
  if (it == pnode->links.end()) {
    return Status(Errc::kNoEnt);
  }
  if (Find(it->second)->type == FileType::kDir) {
    return Status(Errc::kIsDir);
  }
  imap_.erase(it->second);
  pnode->links.erase(it);
  return Status::Ok();
}

Status SpecFs::Rename(const Path& src, const Path& dst) {
  if (src.IsRoot() || dst.IsRoot()) {
    return Status(Errc::kBusy);
  }
  if (src.IsPrefixOf(dst) && src != dst) {
    // Moving a directory below itself (e.g. /a -> /a/b/c).
    return Status(Errc::kInval);
  }
  auto sparent = ResolveParent(src);
  if (!sparent.ok()) {
    return sparent.status();
  }
  auto dparent = ResolveParent(dst);
  if (!dparent.ok()) {
    return dparent.status();
  }
  SpecInode* sdir = FindMutable(*sparent);
  auto sit = sdir->links.find(src.Base());
  if (sit == sdir->links.end()) {
    return Status(Errc::kNoEnt);
  }
  const Inum snode = sit->second;
  if (src == dst) {
    return Status::Ok();
  }
  SpecInode* ddir = FindMutable(*dparent);
  auto dit = ddir->links.find(dst.Base());
  if (dit != ddir->links.end()) {
    const Inum dnode = dit->second;
    const SpecInode* starget = Find(snode);
    SpecInode* dtarget = FindMutable(dnode);
    if (starget->type == FileType::kDir && dtarget->type != FileType::kDir) {
      return Status(Errc::kNotDir);
    }
    if (starget->type != FileType::kDir && dtarget->type == FileType::kDir) {
      return Status(Errc::kIsDir);
    }
    if (dtarget->type == FileType::kDir && !dtarget->links.empty()) {
      return Status(Errc::kNotEmpty);
    }
    imap_.erase(dnode);
    // Re-find: map mutation above does not invalidate node pointers for
    // std::map, but re-find keeps the code robust against container changes.
    ddir = FindMutable(*dparent);
    ddir->links.erase(dst.Base());
  }
  sdir = FindMutable(*sparent);
  sdir->links.erase(src.Base());
  ddir = FindMutable(*dparent);
  ddir->links[dst.Base()] = snode;
  return Status::Ok();
}

Status SpecFs::Exchange(const Path& a, const Path& b) {
  if (a.IsRoot() || b.IsRoot()) {
    return Status(Errc::kBusy);
  }
  if ((a.IsPrefixOf(b) || b.IsPrefixOf(a)) && a != b) {
    // Exchanging an entry with one of its own descendants would detach a
    // subtree from the root (and create a cycle); refuse up front.
    return Status(Errc::kInval);
  }
  auto aparent = ResolveParent(a);
  if (!aparent.ok()) {
    return aparent.status();
  }
  auto bparent = ResolveParent(b);
  if (!bparent.ok()) {
    return bparent.status();
  }
  SpecInode* adir = FindMutable(*aparent);
  auto ait = adir->links.find(a.Base());
  if (ait == adir->links.end()) {
    return Status(Errc::kNoEnt);
  }
  if (a == b) {
    return Status::Ok();
  }
  SpecInode* bdir = FindMutable(*bparent);
  auto bit = bdir->links.find(b.Base());
  if (bit == bdir->links.end()) {
    return Status(Errc::kNoEnt);
  }
  std::swap(ait->second, bit->second);
  return Status::Ok();
}

Result<Attr> SpecFs::Stat(const Path& path) {
  auto ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  const SpecInode* node = Find(*ino);
  Attr attr;
  attr.ino = *ino;
  attr.type = node->type;
  attr.size = node->type == FileType::kDir ? node->links.size() : node->data.size();
  return attr;
}

Result<std::vector<DirEntry>> SpecFs::ReadDir(const Path& path) {
  auto ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  const SpecInode* node = Find(*ino);
  if (node->type != FileType::kDir) {
    return Errc::kNotDir;
  }
  std::vector<DirEntry> entries;
  entries.reserve(node->links.size());
  for (const auto& [name, child] : node->links) {
    entries.push_back(DirEntry{name, child, Find(child)->type});
  }
  return entries;  // std::map iteration is already name-sorted
}

Result<size_t> SpecFs::Read(const Path& path, uint64_t offset, std::span<std::byte> out) {
  auto ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  const SpecInode* node = Find(*ino);
  if (node->type != FileType::kFile) {
    return Errc::kIsDir;
  }
  if (offset >= node->data.size()) {
    return size_t{0};
  }
  const size_t n = std::min(out.size(), node->data.size() - static_cast<size_t>(offset));
  std::copy_n(node->data.begin() + static_cast<ptrdiff_t>(offset), n, out.begin());
  return n;
}

Result<size_t> SpecFs::Write(const Path& path, uint64_t offset, std::span<const std::byte> data) {
  auto ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  SpecInode* node = FindMutable(*ino);
  if (node->type != FileType::kFile) {
    return Errc::kIsDir;
  }
  const uint64_t end = offset + data.size();
  if (end > kMaxFileSize) {
    return Errc::kNoSpace;
  }
  if (end > node->data.size()) {
    node->data.resize(end);  // zero-fills any hole
  }
  std::copy(data.begin(), data.end(), node->data.begin() + static_cast<ptrdiff_t>(offset));
  return data.size();
}

Status SpecFs::Truncate(const Path& path, uint64_t size) {
  auto ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  SpecInode* node = FindMutable(*ino);
  if (node->type != FileType::kFile) {
    return Status(Errc::kIsDir);
  }
  if (size > kMaxFileSize) {
    return Status(Errc::kNoSpace);
  }
  node->data.resize(size);  // grow zero-fills, shrink truncates
  return Status::Ok();
}

bool SpecFs::WellFormed() const {
  const SpecInode* root = Find(kRootInum);
  if (root == nullptr || root->type != FileType::kDir) {
    return false;
  }
  std::set<Inum> seen;
  std::deque<Inum> queue;
  seen.insert(kRootInum);
  queue.push_back(kRootInum);
  while (!queue.empty()) {
    const Inum cur = queue.front();
    queue.pop_front();
    const SpecInode* node = Find(cur);
    if (node == nullptr) {
      return false;  // dangling link
    }
    if (node->type == FileType::kFile) {
      if (!node->links.empty()) {
        return false;  // files carry no links
      }
      continue;
    }
    for (const auto& [name, child] : node->links) {
      if (!ValidateName(name).ok()) {
        return false;
      }
      if (!seen.insert(child).second) {
        return false;  // inode reachable twice: not a tree
      }
      queue.push_back(child);
    }
  }
  return seen.size() == imap_.size();  // no unreachable inodes
}

uint64_t SpecFs::Hash() const {
  // Hash the *shape* of the tree, not raw inode numbers: concrete file
  // systems may allocate inums in a different order under concurrency, and
  // the checkers compare trees up to inum renaming. Hash by structural
  // traversal from the root.
  uint64_t h = kFnvOffset;
  // Iterative DFS with explicit ordering by name for determinism.
  struct Frame {
    Inum ino;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{kRootInum});
  while (!stack.empty()) {
    const Inum cur = stack.back().ino;
    stack.pop_back();
    const SpecInode* node = Find(cur);
    ATOMFS_CHECK(node != nullptr);
    h = FnvMix(h, static_cast<uint64_t>(node->type));
    if (node->type == FileType::kFile) {
      h = FnvMix(h, node->data.size());
      h = FnvMixBytes(h, node->data.data(), node->data.size());
      continue;
    }
    h = FnvMix(h, node->links.size());
    // Reverse order so children pop in name order.
    for (auto it = node->links.rbegin(); it != node->links.rend(); ++it) {
      h = FnvMixBytes(h, it->first.data(), it->first.size());
      stack.push_back(Frame{it->second});
    }
  }
  return h;
}

}  // namespace atomfs
