// Reified file-system operations (the paper's Aops with their arguments) and
// their results. The CRL-H runtime records concurrent histories as OpCall /
// OpResult pairs and replays OpCalls against the SpecFs oracle; workload
// traces reuse the same representation.

#ifndef ATOMFS_SRC_AFS_OP_H_
#define ATOMFS_SRC_AFS_OP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/afs/spec_fs.h"
#include "src/util/status.h"
#include "src/vfs/filesystem.h"
#include "src/vfs/path.h"

namespace atomfs {

// OpKind and OpKindName live with the routable FsOp descriptor in
// src/vfs/filesystem.h; OpCall adds the owned-argument form the history
// checkers record.

// True for the operations whose first step is a lock-coupled path traversal
// (the paper's "path-based operations", which the non-bypassable criterion
// governs). In this code base that is every operation: AtomFS resolves even
// read/write through a full path traversal (§5.4).
bool IsPathBased(OpKind kind);

// True if the operation can modify the directory tree.
bool IsTreeMutation(OpKind kind);

// An invocation with all of its arguments.
struct OpCall {
  OpKind kind = OpKind::kStat;
  Path a;                        // primary path (src for rename)
  Path b;                        // rename destination
  uint64_t offset = 0;           // read/write offset; truncate size
  uint64_t len = 0;              // read length
  std::vector<std::byte> data;   // write payload

  static OpCall MkdirOf(Path p);
  static OpCall MknodOf(Path p);
  static OpCall RmdirOf(Path p);
  static OpCall UnlinkOf(Path p);
  static OpCall RenameOf(Path src, Path dst);
  static OpCall ExchangeOf(Path a, Path b);
  static OpCall StatOf(Path p);
  static OpCall ReadDirOf(Path p);
  static OpCall ReadOf(Path p, uint64_t offset, uint64_t len);
  static OpCall WriteOf(Path p, uint64_t offset, std::vector<std::byte> payload);
  static OpCall TruncateOf(Path p, uint64_t size);

  // The view-typed routable descriptor for this call: paths copied, the
  // write payload viewed (valid while this OpCall lives).
  FsOp AsFsOp() const;

  // The owned-argument form of a routable descriptor (payload copied), for
  // recording into histories and transaction logs.
  static OpCall FromFsOp(const FsOp& op);

  std::string ToString() const;
};

// The observable outcome of an operation: FsOpResult plus the formatting the
// history checkers use.
struct OpResult : FsOpResult {
  std::string ToString(OpKind kind) const;
};

// Executes `call` against `fs` through the generic FileSystem interface and
// captures the result. This is how both concrete file systems and the SpecFs
// oracle are driven.
OpResult RunOp(FileSystem& fs, const OpCall& call);

// Result equivalence for refinement checking. Inode numbers are masked: they
// are abstract handles whose concrete allocation order legitimately differs
// between a concurrent implementation and the sequential spec replay.
bool ResultsEquivalent(OpKind kind, const OpResult& lhs, const OpResult& rhs);

// Structural equality of two file-system states up to an inum bijection:
// same tree of names, same types, same file contents.
bool StructurallyEqual(const SpecFs& a, const SpecFs& b);

}  // namespace atomfs

#endif  // ATOMFS_SRC_AFS_OP_H_
