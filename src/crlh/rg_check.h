// Guarantee-condition checking (paper §4.2 and §8).
//
// CRL-H specifies a shared-data protocol through rely/guarantee conditions.
// The paper's §8 reports that AtomFS's guarantee merges into exactly three
// transition kinds:
//
//   Lock(t, ino)      - t acquires ino's lock
//   Unlock(t, ino)    - t releases it
//   Lockedtrans(t)    - t arbitrarily modifies inodes it currently locks
//
// (A thread's rely is then the union of every other thread's guarantee.)
//
// GuaranteeChecker makes this protocol executable: at every observer event
// it snapshots the concrete tree, diffs it against the previous snapshot,
// and demands that every change be a Lockedtrans — each created, freed, or
// modified inode must be covered by a lock (the inode's own lock or its
// parent's) held per the ghost state. In `strict_attribution` mode the lock
// must be held by the *acting* thread: valid when thread switches only
// happen at evented points, i.e. under the schedule explorer's
// single-core, no-yield-on-work simulator.
//
// Snapshotting the whole tree per event is O(tree), so this checker is for
// small programs (scenario tests, exploration), not production monitoring.

#ifndef ATOMFS_SRC_CRLH_RG_CHECK_H_
#define ATOMFS_SRC_CRLH_RG_CHECK_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/afs/spec_fs.h"
#include "src/core/atom_fs.h"
#include "src/core/observer.h"

namespace atomfs {

class GuaranteeChecker : public FsObserver {
 public:
  struct Options {
    // Require the covering lock to be held by the thread that made the
    // change (see header). Off: any thread's lock suffices (Lockedtrans by
    // *somebody*), which is sound under arbitrary schedules.
    bool strict_attribution = false;
  };

  GuaranteeChecker(const AtomFs* fs, Options options);
  explicit GuaranteeChecker(const AtomFs* fs) : GuaranteeChecker(fs, Options{}) {}

  void OnOpBegin(Tid tid, const OpCall& call) override;
  void OnOpEnd(Tid tid, const OpResult& result) override;
  void OnLockAcquired(Tid tid, Inum ino, LockPathRole role) override;
  void OnLockReleased(Tid tid, Inum ino) override;
  void OnLp(Tid tid, Inum created_ino) override;

  bool ok() const;
  std::vector<std::string> violations() const;
  uint64_t transitions_checked() const;

 private:
  // Diffs the current tree against prev_ and attributes the changes to
  // `actor`. `pre_event` distinguishes checks made before the ghost updates
  // of the triggering event (locks recorded at the event itself are applied
  // after the diff for acquire, before for release).
  void CheckTransition(Tid actor);
  bool Covered(Inum ino, Tid actor, const SpecFs& before, const SpecFs& after) const;
  void Violation(std::string message);

  const AtomFs* fs_;
  Options opts_;
  mutable std::mutex mu_;
  SpecFs prev_;
  std::map<Tid, std::set<Inum>> held_;
  std::vector<std::string> violations_;
  uint64_t transitions_ = 0;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CRLH_RG_CHECK_H_
