// CRL-H ghost state (paper §3.4, §4.3, §5.2).
//
// The ghost state gives the helper mechanism the global information that the
// concrete file system lacks: a thread pool mapping each in-flight thread to
// a Descriptor holding its intended abstract operation (AopState), the
// LockPath(s) it has locked through from the root (a pair SrcPath/DestPath
// for rename), the Effect of its Aop if it has been helped, and the
// FutLockPath of locks it will still acquire; plus the Helplist recording
// the abstract execution order of helped threads.
//
// This header also implements the *linearize-before relation* and the
// helping-set/helping-order computation used by `linothers` (paper Fig. 5):
//   Step-1 (Init): every thread whose LockPath contains the rename's SrcPath
//     as a prefix joins the HelpSet (SrcPrefix relation = direct path
//     inter-dependency).
//   Step-2 (Recursive search): the HelpSet is closed under the
//     LockPathPrefix relation (recursive path inter-dependency, Fig. 4(c)).
// The helping order is any total order of the HelpSet satisfying all
// linearize-before constraints; None is returned if the constraints are
// cyclic, which would violate the Lockpath-wellformed invariant.

#ifndef ATOMFS_SRC_CRLH_GHOST_H_
#define ATOMFS_SRC_CRLH_GHOST_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/afs/op.h"
#include "src/crlh/effects.h"
#include "src/obs/sink.h"
#include "src/util/tid.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

// Ghost inode numbers for abstract creations performed ahead of the concrete
// execution (helped ins). They are remapped to the concrete inum once the
// helped operation reaches its own concrete LP.
inline constexpr Inum kGhostInumBase = 1ULL << 62;

// A sequence of inode numbers locked through from the root, *including*
// locks that have since been released (paper §4.3).
struct LockPath {
  std::vector<Inum> inos;

  bool empty() const { return inos.empty(); }

  // True if this LockPath is a (non-strict) prefix of `other`.
  bool IsPrefixOf(const LockPath& other) const;
  // True if this LockPath is a strict prefix of `other`.
  bool IsStrictPrefixOf(const LockPath& other) const;

  std::string ToString() const;
};

// The paper's AopState: (aop, args) = pending, (end, ret) = helped; the
// entry is conceptually cleared when the op passes its own LP.
enum class AopState : uint8_t {
  kPending,  // abstract operation not yet executed
  kHelped,   // executed by a helper; holds (end, ret)
  kDone,     // passed its own LP (entry cleared)
};

// Per-thread ghost descriptor (paper §4.3 / §5.2: LockPath, Effect,
// FutLockPath, plus bookkeeping for the checkers).
struct Descriptor {
  OpCall call;
  AopState state = AopState::kPending;

  // LockPaths. Non-rename ops use `path`; rename uses the pair, whose shared
  // section (up to the last common inode) appears in both.
  LockPath path;
  LockPath src_path;
  LockPath dst_path;

  // Set when helped: the abstract result (the "ret" of (end, ret)), the
  // effect for the roll-back relation, the locks the thread will still
  // acquire, and which thread helped it.
  OpResult abs_result;
  std::vector<InodeEffect> effects;
  std::deque<Inum> fut_lock_path;
  bool fut_tracked = false;  // fut_lock_path is authoritative (single-path ops)
  Tid helper = 0;

  // Ghost inum allocated for an abstract creation ahead of the concrete one.
  Inum placeholder = kInvalidInum;

  // Currently held inode locks (for the Last-locked-lockpath invariant and
  // the relaxed consistency mapping).
  std::vector<Inum> held;

  // Optimistic (RCU-walk) readers: `optimistic` marks a thread currently on
  // the lock-free read path (it legitimately bypasses lock coupling, so the
  // non-bypassable and Last-locked-lockpath invariants do not apply and it
  // is never a helping candidate — validation, not helping, covers it);
  // `opt_validated` records that its version-chain validation passed, which
  // the Opt-validation invariant requires at the LP.
  bool optimistic = false;
  bool opt_validated = false;

  // Sharded namespace (docs/SHARDING.md): which shard's inum space the
  // LockPaths above live in, and — when nonzero — the cross-shard migration
  // this thread is participating in (driving it, or routed into its
  // footprint and therefore obliged to help complete it). LockPath prefix
  // containment is only meaningful between descriptors of the same shard;
  // a shared migration_id is the one cross-shard linearize-before edge.
  uint32_t shard = 0;
  uint64_t migration_id = 0;

  bool lp_passed = false;
  bool has_abs_result = false;
  uint64_t begin_seq = 0;
  uint64_t lp_seq = 0;
  uint64_t abs_seq = 0;  // ghost time when the abstract op executed

  // All LockPaths of this descriptor (1 or 2 entries).
  std::vector<const LockPath*> LockPaths() const;
};

// True for operations that run the helper at their LP (they may break other
// threads' traversed paths): rename, and the exchange extension.
bool IsHelperOp(OpKind kind);

// The LockPaths whose integrity this op's Aop destroys when it commits: the
// SrcPath for rename (the destination only gains an entry), both paths for
// exchange.
std::vector<const LockPath*> BreakingPaths(const Descriptor& d);

// linearize-before: `before` must precede `after` in any legal sequential
// history, because some LockPath of `after` is a strict prefix of some
// LockPath of `before` (the deeper thread already traversed through the
// point the shallower one will mutate). Descriptors of different shards
// have disjoint inum spaces, so the prefix relation is only evaluated
// within a shard; across shards the single edge is a shared migration: an
// op routed into cross-shard migration M's footprint linearizes before the
// helper op driving M (its route is what M's detach breaks).
bool LinearizeBefore(const Descriptor& before, const Descriptor& after);

// The helping set and order for `renamer` (must be a pending rename in
// `pool`). Only pending (unhelped, pre-LP) threads other than the renamer
// are candidates. Returns std::nullopt on a cyclic constraint graph.
// When `reasons` is non-null it receives, for every member of the helping
// set, whether it joined in Step-1 (HelpReason::kSrcPrefix — the helper's
// breaking path is a prefix of its LockPath), in the Step-2 closure
// (HelpReason::kLockPathPrefix), or because it shares the renamer's
// nonzero migration_id (HelpReason::kCrossShard — it was routed into the
// cross-shard migration's footprint, possibly on a different shard).
std::optional<std::vector<Tid>> ComputeHelpOrder(Tid renamer,
                                                 const std::map<Tid, Descriptor>& pool,
                                                 std::map<Tid, HelpReason>* reasons = nullptr);

}  // namespace atomfs

#endif  // ATOMFS_SRC_CRLH_GHOST_H_
