#include "src/crlh/ghost.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/util/check.h"

namespace atomfs {

bool LockPath::IsPrefixOf(const LockPath& other) const {
  if (inos.size() > other.inos.size()) {
    return false;
  }
  return std::equal(inos.begin(), inos.end(), other.inos.begin());
}

bool LockPath::IsStrictPrefixOf(const LockPath& other) const {
  return inos.size() < other.inos.size() && IsPrefixOf(other);
}

std::string LockPath::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < inos.size(); ++i) {
    if (i != 0) {
      os << ",";
    }
    os << inos[i];
  }
  os << ")";
  return os.str();
}

std::vector<const LockPath*> Descriptor::LockPaths() const {
  if (IsHelperOp(call.kind)) {
    return {&src_path, &dst_path};
  }
  return {&path};
}

bool IsHelperOp(OpKind kind) {
  return kind == OpKind::kRename || kind == OpKind::kExchange;
}

std::vector<const LockPath*> BreakingPaths(const Descriptor& d) {
  if (d.call.kind == OpKind::kRename) {
    return {&d.src_path};
  }
  if (d.call.kind == OpKind::kExchange) {
    return {&d.src_path, &d.dst_path};
  }
  return {};
}

bool LinearizeBefore(const Descriptor& before, const Descriptor& after) {
  if (before.shard != after.shard) {
    // Disjoint inum spaces: prefix containment is meaningless across
    // shards. The only cross-shard edge runs through a shared migration —
    // an op caught in migration M's footprint precedes the helper op
    // driving M.
    return before.migration_id != 0 && before.migration_id == after.migration_id &&
           IsHelperOp(after.call.kind) && !IsHelperOp(before.call.kind);
  }
  for (const LockPath* lp_after : after.LockPaths()) {
    if (lp_after->empty()) {
      continue;
    }
    for (const LockPath* lp_before : before.LockPaths()) {
      if (lp_after->IsStrictPrefixOf(*lp_before)) {
        return true;
      }
    }
  }
  return false;
}

std::optional<std::vector<Tid>> ComputeHelpOrder(Tid renamer,
                                                 const std::map<Tid, Descriptor>& pool,
                                                 std::map<Tid, HelpReason>* reasons) {
  if (reasons != nullptr) {
    reasons->clear();
  }
  auto renamer_it = pool.find(renamer);
  ATOMFS_CHECK(renamer_it != pool.end());
  const Descriptor& rd = renamer_it->second;
  ATOMFS_CHECK(IsHelperOp(rd.call.kind));

  // Candidates: pending threads other than the renamer. Optimistic readers
  // are excluded: they hold no coupled LockPath for the helper to preserve —
  // their correctness comes from version-chain validation, which a
  // concurrent rename simply causes to fail (retry/fallback).
  auto is_candidate = [&](const std::pair<const Tid, Descriptor>& kv) {
    return kv.first != renamer && kv.second.state == AopState::kPending &&
           !kv.second.optimistic;
  };

  // Step-1 (Init): direct path inter-dependency — a breaking path of the
  // helper op contained in the thread's LockPath. rename breaks its SrcPath;
  // exchange breaks both of its paths.
  std::set<Tid> help_set;
  for (const auto& kv : pool) {
    if (!is_candidate(kv)) {
      continue;
    }
    // Cross-shard Init: a thread routed into the renamer's in-flight
    // migration footprint joins regardless of which shard it sits on — the
    // migration's detach is what breaks its route, the cross-shard analogue
    // of a broken LockPath.
    if (rd.migration_id != 0 && kv.second.migration_id == rd.migration_id) {
      help_set.insert(kv.first);
      if (reasons != nullptr) {
        (*reasons)[kv.first] = HelpReason::kCrossShard;
      }
      continue;
    }
    if (kv.second.shard != rd.shard) {
      continue;  // disjoint inum spaces: no path inter-dependency possible
    }
    bool dependent = false;
    for (const LockPath* breaking : BreakingPaths(rd)) {
      for (const LockPath* lp : kv.second.LockPaths()) {
        if (!breaking->empty() && breaking->IsPrefixOf(*lp)) {
          dependent = true;
        }
      }
    }
    if (dependent) {
      help_set.insert(kv.first);
      if (reasons != nullptr) {
        (*reasons)[kv.first] = HelpReason::kSrcPrefix;
      }
    }
  }

  // Step-2 (Recursive search): close under linearize-before. If t is helped
  // and t' must be linearized before t, t' must be helped too.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Tid member : std::vector<Tid>(help_set.begin(), help_set.end())) {
      const Descriptor& md = pool.at(member);
      for (const auto& kv : pool) {
        if (!is_candidate(kv) || help_set.count(kv.first) != 0) {
          continue;
        }
        if (LinearizeBefore(kv.second, md)) {
          help_set.insert(kv.first);
          if (reasons != nullptr) {
            (*reasons)[kv.first] = HelpReason::kLockPathPrefix;
          }
          changed = true;
        }
      }
    }
  }

  // Helping order: topological sort (Kahn) under linearize-before.
  std::vector<Tid> members(help_set.begin(), help_set.end());
  const size_t n = members.size();
  std::vector<std::vector<size_t>> succ(n);  // edge b -> a when b before a
  std::vector<size_t> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      if (LinearizeBefore(pool.at(members[i]), pool.at(members[j]))) {
        succ[i].push_back(j);
        ++indegree[j];
      }
    }
  }
  std::vector<Tid> order;
  order.reserve(n);
  std::vector<size_t> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  // Deterministic tie-break: smallest tid first.
  auto by_tid_desc = [&](size_t a, size_t b) { return members[a] > members[b]; };
  std::make_heap(ready.begin(), ready.end(), by_tid_desc);
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), by_tid_desc);
    const size_t i = ready.back();
    ready.pop_back();
    order.push_back(members[i]);
    for (size_t j : succ[i]) {
      if (--indegree[j] == 0) {
        ready.push_back(j);
        std::push_heap(ready.begin(), ready.end(), by_tid_desc);
      }
    }
  }
  if (order.size() != n) {
    return std::nullopt;  // cyclic linearize-before: Lockpath-wellformed violated
  }
  return order;
}

}  // namespace atomfs
