#include "src/crlh/gate.h"

namespace atomfs {

void GateObserver::Arm(Tid tid, Point point, Inum ino) {
  std::lock_guard<std::mutex> lk(mu_);
  Gate& g = gates_[tid];
  g.point = point;
  g.ino = ino;
  g.armed = true;
  g.parked = false;
  g.open = false;
}

void GateObserver::WaitParked(Tid tid) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    auto it = gates_.find(tid);
    return it != gates_.end() && it->second.parked;
  });
}

void GateObserver::Open(Tid tid) {
  std::lock_guard<std::mutex> lk(mu_);
  Gate& g = gates_[tid];
  g.open = true;
  cv_.notify_all();
}

bool GateObserver::IsParked(Tid tid) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gates_.find(tid);
  return it != gates_.end() && it->second.parked;
}

void GateObserver::MaybePark(Tid tid, Point point, Inum ino) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = gates_.find(tid);
  if (it == gates_.end()) {
    return;
  }
  Gate& g = it->second;
  if (!g.armed || g.point != point) {
    return;
  }
  if (point == Point::kLockAcquired || point == Point::kLockReleased) {
    if (g.ino != kInvalidInum && g.ino != ino) {
      return;
    }
  }
  g.armed = false;  // one-shot
  g.parked = true;
  cv_.notify_all();
  cv_.wait(lk, [&g] { return g.open; });
  g.parked = false;
  g.open = false;
  cv_.notify_all();
}

void GateObserver::OnOpBegin(Tid tid, const OpCall& call) {
  (void)call;
  MaybePark(tid, Point::kOpBegin, kInvalidInum);
}

void GateObserver::OnLockAcquired(Tid tid, Inum ino, LockPathRole role) {
  (void)role;
  MaybePark(tid, Point::kLockAcquired, ino);
}

void GateObserver::OnLockReleased(Tid tid, Inum ino) {
  MaybePark(tid, Point::kLockReleased, ino);
}

void GateObserver::OnLp(Tid tid, Inum created_ino) {
  (void)created_ino;
  MaybePark(tid, Point::kLp, kInvalidInum);
}

}  // namespace atomfs
