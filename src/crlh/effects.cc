#include "src/crlh/effects.h"

#include "src/util/check.h"

namespace atomfs {
namespace {

// The inodes an operation can touch are those along its argument paths (plus
// one created/freed inode); diffing the full imap per Aop would be O(tree).
// We instead snapshot only the inodes resolvable from the call's paths
// before the op, then compare against the after-state of that set plus
// whatever inums appear new.
std::vector<Inum> TouchableInums(const SpecFs& spec, const OpCall& call) {
  std::vector<Inum> inos;
  auto add_path = [&](const Path& p) {
    Inum cur = kRootInum;
    inos.push_back(cur);
    for (const auto& name : p.parts) {
      const SpecInode* node = spec.Find(cur);
      if (node == nullptr || node->type != FileType::kDir) {
        return;
      }
      auto it = node->links.find(name);
      if (it == node->links.end()) {
        return;
      }
      cur = it->second;
      inos.push_back(cur);
    }
  };
  add_path(call.a);
  if (call.kind == OpKind::kRename || call.kind == OpKind::kExchange) {
    add_path(call.b);
  }
  return inos;
}

}  // namespace

OpResult ApplyWithEffects(SpecFs& spec, const OpCall& call, Inum forced_ino,
                          std::vector<InodeEffect>* effects) {
  // Snapshot the touchable inodes.
  std::vector<Inum> watch = TouchableInums(spec, call);
  std::map<Inum, SpecInode> before;
  for (Inum ino : watch) {
    const SpecInode* node = spec.Find(ino);
    if (node != nullptr) {
      before.emplace(ino, *node);
    }
  }
  // Burn one inum as a watermark: anything the op creates will be numbered
  // above it (SpecFs allocates monotonically), so we can identify the new
  // inode afterwards.
  const Inum watermark = spec.AllocInum();

  OpResult result = RunOp(spec, call);

  // At most one inode is created per operation, and it gets watermark + 1.
  Inum created = spec.Find(watermark + 1) != nullptr ? watermark + 1 : kInvalidInum;
  ATOMFS_CHECK(spec.Find(watermark + 2) == nullptr);
  if (created != kInvalidInum && forced_ino != kInvalidInum && forced_ino != created) {
    RemapInum(spec, created, forced_ino);
    created = forced_ino;
  }

  if (effects != nullptr) {
    effects->clear();
    for (const auto& [ino, old_node] : before) {
      const SpecInode* now = spec.Find(ino);
      if (now == nullptr) {
        effects->push_back(InodeEffect{ino, old_node, std::nullopt});
      } else if (!(*now == old_node)) {
        effects->push_back(InodeEffect{ino, old_node, *now});
      }
    }
    if (created != kInvalidInum) {
      const SpecInode* now = spec.Find(created);
      ATOMFS_CHECK(now != nullptr);
      effects->push_back(InodeEffect{created, std::nullopt, *now});
    }
  }
  return result;
}

void RollbackEffects(SpecFs& spec, const std::vector<InodeEffect>& effects) {
  for (auto it = effects.rbegin(); it != effects.rend(); ++it) {
    if (it->before.has_value()) {
      spec.imap_mutable()[it->ino] = *it->before;
    } else {
      spec.imap_mutable().erase(it->ino);
    }
  }
}

void RemapInum(SpecFs& spec, Inum from, Inum to) {
  auto& imap = spec.imap_mutable();
  auto it = imap.find(from);
  if (it != imap.end()) {
    ATOMFS_CHECK(imap.find(to) == imap.end());
    SpecInode node = std::move(it->second);
    imap.erase(it);
    imap.emplace(to, std::move(node));
  }
  for (auto& [ino, node] : imap) {
    for (auto& [name, child] : node.links) {
      if (child == from) {
        child = to;
      }
    }
  }
}

void RemapInum(std::vector<InodeEffect>& effects, Inum from, Inum to) {
  auto remap_node = [&](std::optional<SpecInode>& node) {
    if (!node.has_value()) {
      return;
    }
    for (auto& [name, child] : node->links) {
      if (child == from) {
        child = to;
      }
    }
  };
  for (auto& e : effects) {
    if (e.ino == from) {
      e.ino = to;
    }
    remap_node(e.before);
    remap_node(e.after);
  }
}

}  // namespace atomfs
