#include "src/crlh/bundle.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <set>
#include <sstream>

#include "src/afs/spec_fs.h"
#include "src/workload/trace.h"

namespace atomfs {

namespace {

constexpr std::string_view kBundleHeader = "# atomfs-bundle v1";

std::string ToHex(const void* data, size_t n) {
  static const char kDigits[] = "0123456789abcdef";
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::string out;
  out.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) {
    out += kDigits[bytes[i] >> 4];
    out += kDigits[bytes[i] & 0xF];
  }
  return out;
}

bool FromHex(std::string_view hex, std::vector<std::byte>& out) {
  if (hex.size() % 2 != 0) {
    return false;
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    return -1;
  };
  out.clear();
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out.push_back(static_cast<std::byte>((hi << 4) | lo));
  }
  return true;
}

// Compact one-token OpResult encoding: `s:<errc>` plus optional `;`-joined
// parts — `a:<ino>,<type>,<size>` (stat attr), `n:<nbytes>`,
// `e:<hexname>,<type>|...` (readdir entries), `d:<hexdata>` (read payload).
std::string EncodeResult(const OpResult& r) {
  std::ostringstream os;
  os << "s:" << static_cast<int>(r.status.code());
  if (r.attr.ino != kInvalidInum) {
    os << ";a:" << r.attr.ino << "," << static_cast<int>(r.attr.type) << "," << r.attr.size;
  }
  if (r.nbytes != 0) {
    os << ";n:" << r.nbytes;
  }
  if (!r.entries.empty()) {
    os << ";e:";
    for (size_t i = 0; i < r.entries.size(); ++i) {
      if (i != 0) {
        os << "|";
      }
      os << ToHex(r.entries[i].name.data(), r.entries[i].name.size()) << ","
         << static_cast<int>(r.entries[i].type);
    }
  }
  if (!r.data.empty()) {
    os << ";d:" << ToHex(r.data.data(), r.data.size());
  }
  return os.str();
}

bool ParseU64(std::string_view s, uint64_t& out) {
  if (s.empty()) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool DecodeResult(std::string_view enc, OpResult& r) {
  r = OpResult{};
  size_t pos = 0;
  while (pos < enc.size()) {
    const size_t end = std::min(enc.find(';', pos), enc.size());
    const std::string_view part = enc.substr(pos, end - pos);
    pos = end + 1;
    if (part.size() < 2 || part[1] != ':') {
      return false;
    }
    const std::string_view val = part.substr(2);
    switch (part[0]) {
      case 's': {
        uint64_t code = 0;
        if (!ParseU64(val, code) || code > 255) {
          return false;
        }
        r.status = Status(static_cast<Errc>(code));
        break;
      }
      case 'a': {
        const size_t c1 = val.find(',');
        const size_t c2 = val.find(',', c1 == std::string_view::npos ? c1 : c1 + 1);
        uint64_t ino = 0, type = 0, size = 0;
        if (c1 == std::string_view::npos || c2 == std::string_view::npos ||
            !ParseU64(val.substr(0, c1), ino) ||
            !ParseU64(val.substr(c1 + 1, c2 - c1 - 1), type) ||
            !ParseU64(val.substr(c2 + 1), size) || type > 1) {
          return false;
        }
        r.attr.ino = ino;
        r.attr.type = static_cast<FileType>(type);
        r.attr.size = size;
        break;
      }
      case 'n': {
        if (!ParseU64(val, r.nbytes)) {
          return false;
        }
        break;
      }
      case 'e': {
        size_t p = 0;
        while (p <= val.size()) {
          const size_t bar = std::min(val.find('|', p), val.size());
          const std::string_view item = val.substr(p, bar - p);
          p = bar + 1;
          const size_t comma = item.find(',');
          uint64_t type = 0;
          std::vector<std::byte> name;
          if (comma == std::string_view::npos || !FromHex(item.substr(0, comma), name) ||
              !ParseU64(item.substr(comma + 1), type) || type > 1) {
            return false;
          }
          DirEntry entry;
          entry.name.assign(reinterpret_cast<const char*>(name.data()), name.size());
          entry.type = static_cast<FileType>(type);
          r.entries.push_back(std::move(entry));
          if (bar == val.size()) {
            break;
          }
        }
        break;
      }
      case 'd': {
        if (!FromHex(val, r.data)) {
          return false;
        }
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

const char* AopStateName(AopState s) {
  switch (s) {
    case AopState::kPending:
      return "pending";
    case AopState::kHelped:
      return "helped";
    case AopState::kDone:
      return "done";
  }
  return "unknown";
}

bool ParseAopState(std::string_view s, AopState& out) {
  if (s == "pending") {
    out = AopState::kPending;
  } else if (s == "helped") {
    out = AopState::kHelped;
  } else if (s == "done") {
    out = AopState::kDone;
  } else {
    return false;
  }
  return true;
}

// Splits `line` at the first " call=": key=value tokens on the left, the
// trace line on the right (trace lines contain spaces, so call= must close
// the record).
bool SplitCall(std::string_view line, std::string_view& head, std::string_view& call) {
  const size_t pos = line.find(" call=");
  if (pos == std::string_view::npos) {
    return false;
  }
  head = line.substr(0, pos);
  call = line.substr(pos + 6);
  return true;
}

// Extracts `key=` from a space-separated k=v token list.
bool TokenValue(std::string_view head, std::string_view key, std::string_view& out) {
  size_t pos = 0;
  while (pos < head.size()) {
    const size_t end = std::min(head.find(' ', pos), head.size());
    const std::string_view token = head.substr(pos, end - pos);
    pos = end + 1;
    if (token.size() > key.size() && token.substr(0, key.size()) == key &&
        token[key.size()] == '=') {
      out = token.substr(key.size() + 1);
      return true;
    }
  }
  return false;
}

bool TokenU64(std::string_view head, std::string_view key, uint64_t& out) {
  std::string_view v;
  return TokenValue(head, key, v) && ParseU64(v, out);
}

}  // namespace

PostMortemBundle BuildPostMortemBundle(const CrlhMonitor::PostMortem& pm,
                                       const std::vector<TraceEvent>& ring_events) {
  PostMortemBundle b;
  b.message = pm.message;
  b.seq = pm.seq;
  b.helplist = pm.helplist;

  std::set<Tid> involved(pm.helplist.begin(), pm.helplist.end());
  for (const auto& [tid, d] : pm.pool) {
    BundleDescriptor bd;
    bd.tid = tid;
    bd.state = d.state;
    bd.helper = d.helper;
    bd.lp_passed = d.lp_passed;
    std::string paths;
    for (const LockPath* lp : d.LockPaths()) {
      if (!paths.empty()) {
        paths += "+";
      }
      paths += lp->ToString();
    }
    bd.lock_paths = std::move(paths);
    bd.call = d.call;
    b.descriptors.push_back(std::move(bd));
    involved.insert(tid);
    if (d.helper != 0) {
      involved.insert(d.helper);
    }
  }

  for (const CrlhMonitor::CompletedRecord& rec : pm.history) {
    BundleHistoryEntry e;
    e.tid = rec.tid;
    e.helped = rec.helped;
    e.helper = rec.helper;
    e.abs_seq = rec.abs_seq;
    e.call = rec.call;
    e.concrete = rec.concrete;
    b.history.push_back(std::move(e));
    if (rec.helped) {
      involved.insert(rec.tid);
      involved.insert(rec.helper);
    }
  }
  std::stable_sort(b.history.begin(), b.history.end(),
                   [](const BundleHistoryEntry& x, const BundleHistoryEntry& y) {
                     return x.abs_seq < y.abs_seq;
                   });

  // Causal slice: events of the involved threads, help edges touching them,
  // and the thread-less global events. With nothing in flight and no helping
  // there is no causal restriction — keep the whole window.
  for (const TraceEvent& e : ring_events) {
    const bool global =
        e.type == TraceEventType::kRollback || e.type == TraceEventType::kViolation;
    const bool help_edge = e.type == TraceEventType::kHelp && e.ino != 0 &&
                           involved.count(static_cast<Tid>(e.ino)) != 0;
    if (involved.empty() || global || help_edge || involved.count(e.tid) != 0) {
      b.ghost.push_back(e);
    }
  }
  return b;
}

std::string FormatBundle(const PostMortemBundle& b) {
  std::ostringstream os;
  os << kBundleHeader << "\n";
  os << "seq " << b.seq << "\n";
  os << "message " << b.message << "\n";
  os << "helplist";
  for (Tid t : b.helplist) {
    os << " " << t;
  }
  os << "\n";
  for (const BundleDescriptor& d : b.descriptors) {
    os << "desc tid=" << d.tid << " state=" << AopStateName(d.state) << " helper=" << d.helper
       << " lp=" << (d.lp_passed ? 1 : 0)
       << " paths=" << (d.lock_paths.empty() ? "()" : d.lock_paths)
       << " call=" << FormatTraceLine(d.call) << "\n";
  }
  for (const BundleHistoryEntry& h : b.history) {
    os << "hist tid=" << h.tid << " helped=" << (h.helped ? 1 : 0) << " helper=" << h.helper
       << " abs_seq=" << h.abs_seq << " result=" << EncodeResult(h.concrete)
       << " call=" << FormatTraceLine(h.call) << "\n";
  }
  for (const TraceEvent& e : b.ghost) {
    os << "ghost " << e.seq << " " << e.t_ns << " " << e.tid << " "
       << static_cast<unsigned>(e.type) << " " << static_cast<unsigned>(e.op) << " "
       << static_cast<unsigned>(e.role) << " " << static_cast<unsigned>(e.flags) << " "
       << e.depth << " " << e.ino << " " << e.arg << " " << e.aux << "\n";
  }
  os << "end\n";
  return os.str();
}

Result<PostMortemBundle> ParseBundle(std::istream& in) {
  PostMortemBundle b;
  std::string line;
  if (!std::getline(in, line) || line != kBundleHeader) {
    return Errc::kInval;
  }
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line == "end") {
      saw_end = true;
      break;
    }
    const size_t sp = line.find(' ');
    const std::string_view keyword = std::string_view(line).substr(0, sp);
    const std::string_view rest =
        sp == std::string::npos ? std::string_view{} : std::string_view(line).substr(sp + 1);
    if (keyword == "seq") {
      if (!ParseU64(rest, b.seq)) {
        return Errc::kInval;
      }
    } else if (keyword == "message") {
      b.message = std::string(rest);
    } else if (keyword == "helplist") {
      size_t pos = 0;
      while (pos < rest.size()) {
        const size_t end = std::min(rest.find(' ', pos), rest.size());
        uint64_t tid = 0;
        if (!ParseU64(rest.substr(pos, end - pos), tid)) {
          return Errc::kInval;
        }
        b.helplist.push_back(static_cast<Tid>(tid));
        pos = end + 1;
      }
    } else if (keyword == "desc") {
      std::string_view head, call;
      if (!SplitCall(rest, head, call)) {
        return Errc::kInval;
      }
      BundleDescriptor d;
      uint64_t tid = 0, helper = 0, lp = 0;
      std::string_view state, paths;
      if (!TokenU64(head, "tid", tid) || !TokenValue(head, "state", state) ||
          !TokenU64(head, "helper", helper) || !TokenU64(head, "lp", lp) ||
          !TokenValue(head, "paths", paths) || !ParseAopState(state, d.state)) {
        return Errc::kInval;
      }
      d.tid = static_cast<Tid>(tid);
      d.helper = static_cast<Tid>(helper);
      d.lp_passed = lp != 0;
      d.lock_paths = std::string(paths);
      auto parsed = ParseTraceLine(call);
      if (!parsed.ok()) {
        return parsed.status();
      }
      d.call = std::move(*parsed);
      b.descriptors.push_back(std::move(d));
    } else if (keyword == "hist") {
      std::string_view head, call;
      if (!SplitCall(rest, head, call)) {
        return Errc::kInval;
      }
      BundleHistoryEntry h;
      uint64_t tid = 0, helped = 0, helper = 0;
      std::string_view result;
      if (!TokenU64(head, "tid", tid) || !TokenU64(head, "helped", helped) ||
          !TokenU64(head, "helper", helper) || !TokenU64(head, "abs_seq", h.abs_seq) ||
          !TokenValue(head, "result", result) || !DecodeResult(result, h.concrete)) {
        return Errc::kInval;
      }
      h.tid = static_cast<Tid>(tid);
      h.helped = helped != 0;
      h.helper = static_cast<Tid>(helper);
      auto parsed = ParseTraceLine(call);
      if (!parsed.ok()) {
        return parsed.status();
      }
      h.call = std::move(*parsed);
      b.history.push_back(std::move(h));
    } else if (keyword == "ghost") {
      unsigned long long seq = 0, t_ns = 0, tid = 0, type = 0, op = 0, role = 0, flags = 0,
                         depth = 0, ino = 0, arg = 0, aux = 0;
      if (std::sscanf(std::string(rest).c_str(), "%llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu",
                      &seq, &t_ns, &tid, &type, &op, &role, &flags, &depth, &ino, &arg,
                      &aux) != 11) {
        return Errc::kInval;
      }
      TraceEvent e;
      e.seq = seq;
      e.t_ns = t_ns;
      e.tid = static_cast<Tid>(tid);
      e.type = static_cast<TraceEventType>(type);
      e.op = static_cast<uint8_t>(op);
      e.role = static_cast<uint8_t>(role);
      e.flags = static_cast<uint8_t>(flags);
      e.depth = static_cast<uint16_t>(depth);
      e.ino = ino;
      e.arg = arg;
      e.aux = aux;
      b.ghost.push_back(e);
    } else {
      return Errc::kInval;
    }
  }
  if (!saw_end) {
    return Errc::kInval;
  }
  return b;
}

BundleReplay ReplayBundle(const PostMortemBundle& b) {
  BundleReplay r;
  SpecFs spec;
  for (size_t i = 0; i < b.history.size(); ++i) {
    const BundleHistoryEntry& h = b.history[i];
    const OpResult replayed = RunOp(spec, h.call);
    ++r.ops_replayed;
    if (!ResultsEquivalent(h.call.kind, h.concrete, replayed)) {
      r.reproduced = true;
      r.divergence_index = i;
      std::ostringstream os;
      os << "REFINEMENT violation reproduced at history index " << i << ": "
         << h.call.ToString() << " of thread " << h.tid << " recorded "
         << h.concrete.ToString(h.call.kind) << " but sequential replay returned "
         << replayed.ToString(h.call.kind);
      r.verdict = os.str();
      return r;
    }
  }
  r.verdict = "replay clean: " + std::to_string(r.ops_replayed) +
              " ops reproduce their recorded results in the recorded abstract order";
  return r;
}

}  // namespace atomfs
