// Offline linearizability checking.
//
// Two independent ways to validate a recorded concurrent history against the
// abstract specification:
//
//   * ReplayOrder: replays a *given* total order (e.g. the helper-derived
//     order maintained by CrlhMonitor, or the fixed-LP order) on a fresh
//     SpecFs and reports the first operation whose recorded concrete result
//     diverges. This is how the paper's Figure 1 is demonstrated: the
//     fixed-LP order of a rename/mkdir interleaving replays illegally while
//     the helper order replays legally.
//
//   * CheckLinearizable: a Wing&Gong-style exhaustive search for *any*
//     linearization consistent with the history's real-time order. Used as
//     ground truth on small histories — in particular to confirm that the
//     helper mechanism's verdicts (both accepts and rejects) are correct,
//     and to validate RetryFs, whose LPs the helper framework does not
//     model.

#ifndef ATOMFS_SRC_CRLH_LIN_CHECK_H_
#define ATOMFS_SRC_CRLH_LIN_CHECK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/afs/op.h"
#include "src/crlh/monitor.h"
#include "src/util/tid.h"

namespace atomfs {

// One completed operation of a concurrent history. Real-time order: A
// precedes B iff A.response_seq < B.invoke_seq.
struct HistoryOp {
  Tid tid = 0;
  OpCall call;
  OpResult result;  // observed concrete result
  uint64_t invoke_seq = 0;
  uint64_t response_seq = 0;
};

// Builds a history from a monitor's completed records.
std::vector<HistoryOp> HistoryFromRecords(
    const std::vector<CrlhMonitor::CompletedRecord>& records);

// Replays ops in `order` (indices into `ops`) on a fresh SpecFs; returns the
// index (position in `order`) of the first result mismatch, or nullopt if
// the whole sequential history is legal.
std::optional<size_t> ReplayOrder(const std::vector<HistoryOp>& ops,
                                  const std::vector<size_t>& order);

// Convenience orders.
std::vector<size_t> OrderBy(const std::vector<HistoryOp>& ops,
                            const std::vector<uint64_t>& keys);

struct LinCheckResult {
  bool linearizable = false;
  bool aborted = false;  // state budget exhausted before a verdict
  std::vector<size_t> witness;  // a legal order when linearizable
  uint64_t states_explored = 0;
};

// Wing&Gong search (with memoization on (completed-set, state-hash)).
// History size is limited to 64 operations.
LinCheckResult CheckLinearizable(const std::vector<HistoryOp>& ops,
                                 uint64_t max_states = 2000000);

}  // namespace atomfs

#endif  // ATOMFS_SRC_CRLH_LIN_CHECK_H_
