#include "src/crlh/explore.h"

#include <deque>

#include "src/core/atom_fs.h"
#include "src/crlh/lin_check.h"
#include "src/crlh/monitor.h"
#include "src/sim/executor.h"
#include "src/util/check.h"

namespace atomfs {
namespace {

struct RunOutcome {
  bool ok = true;
  std::vector<std::string> messages;
  std::vector<uint32_t> trace;
  std::vector<uint32_t> fanouts;
  uint64_t helped_ops = 0;
};

// Executes the program once under the given schedule options and verifies it
// with a fresh CRL-H monitor.
RunOutcome RunOnce(const ConcurrentProgram& program, ScheduleOptions schedule, bool wing_gong,
                   bool check_invariants) {
  RunOutcome outcome;
  SimExecutor sim(/*cores=*/1, std::move(schedule));
  CrlhMonitor::Options mon_opts;
  mon_opts.check_invariants = check_invariants;
  CrlhMonitor monitor(mon_opts);
  AtomFs::Options fs_opts;
  fs_opts.executor = &sim;
  fs_opts.observer = &monitor;
  fs_opts.unsafe_release_before_lock = program.unsafe_no_coupling;
  AtomFs fs(std::move(fs_opts));

  if (program.setup) {
    // Single sim thread: no scheduling decisions are consumed by setup.
    RunInSim(sim, [&] { program.setup(fs); });
  }
  for (const auto& ops : program.threads) {
    sim.Spawn([&fs, &ops] {
      for (const auto& call : ops) {
        RunOp(fs, call);
      }
    });
  }
  sim.Run();

  outcome.trace = sim.ScheduleTrace();
  outcome.fanouts = sim.ScheduleFanouts();
  outcome.helped_ops = monitor.helped_ops();

  if (!monitor.ok()) {
    outcome.ok = false;
    outcome.messages = monitor.violations();
  }
  if (!monitor.CheckQuiescent(fs.SnapshotSpec())) {
    outcome.ok = false;
    outcome.messages.push_back("quiescent abstract-concrete mismatch");
  }
  if (wing_gong) {
    auto verdict = CheckLinearizable(HistoryFromRecords(monitor.Completed()));
    if (!verdict.aborted && !verdict.linearizable) {
      outcome.ok = false;
      outcome.messages.push_back("Wing&Gong: history not linearizable");
    }
  }
  return outcome;
}

void Accumulate(ExploreStats& stats, const RunOutcome& outcome,
                const std::vector<uint32_t>& script) {
  ++stats.executions;
  stats.max_decision_points =
      std::max<uint64_t>(stats.max_decision_points, outcome.trace.size());
  if (outcome.helped_ops > 0) {
    ++stats.schedules_with_helping;
    stats.total_helped_ops += outcome.helped_ops;
  }
  if (!outcome.ok && stats.all_ok) {
    stats.all_ok = false;
    stats.failing_script = script;
    stats.failure_messages = outcome.messages;
  }
}

}  // namespace

ExploreStats ExploreSchedules(const ConcurrentProgram& program, const ExploreOptions& options) {
  ExploreStats stats;
  // Work list of script prefixes still to run; each run extends its script
  // with default decisions (0) and reports the fanouts, from which the
  // untaken siblings are enqueued. Every enumerated script is a unique
  // schedule, so the tree is covered exactly once.
  std::deque<std::vector<uint32_t>> pending;
  pending.push_back({});
  while (!pending.empty()) {
    if (stats.executions >= options.max_executions) {
      return stats;  // budget exhausted; stats.exhausted stays false
    }
    std::vector<uint32_t> script = std::move(pending.front());
    pending.pop_front();

    ScheduleOptions schedule;
    schedule.policy = SchedulePolicy::kScripted;
    schedule.script = script;
    schedule.yield_on_work = false;  // branch only at lock operations
    RunOutcome outcome =
        RunOnce(program, std::move(schedule), options.wing_gong, options.check_invariants);
    Accumulate(stats, outcome, script);

    // Enqueue the untaken branches below this run's frontier.
    for (size_t pos = script.size(); pos < outcome.trace.size(); ++pos) {
      ATOMFS_CHECK(outcome.fanouts[pos] >= 1);
      for (uint32_t choice = 1; choice < outcome.fanouts[pos]; ++choice) {
        std::vector<uint32_t> child(outcome.trace.begin(),
                                    outcome.trace.begin() + static_cast<ptrdiff_t>(pos));
        child.push_back(choice);
        pending.push_back(std::move(child));
      }
    }
  }
  stats.exhausted = true;
  return stats;
}

namespace {

// One schedule of an uninstrumented fs: record (invoke, response)-stamped
// history (setup ops as an already-completed sequential prefix), then check
// it with the Wing&Gong checker.
RunOutcome RunOnceGeneric(const GenericFs& fs_factory, const ConcurrentProgram& program,
                          ScheduleOptions schedule) {
  RunOutcome outcome;
  SimExecutor sim(/*cores=*/1, std::move(schedule));
  std::unique_ptr<FileSystem> fs = fs_factory.make(&sim);

  std::mutex history_mu;
  std::vector<HistoryOp> history;
  uint64_t clock = 0;

  RunInSim(sim, [&] {
    if (program.setup) {
      program.setup(*fs);
    }
    for (const auto& call : program.setup_ops) {
      HistoryOp op;
      op.tid = 0;
      op.call = call;
      op.result = RunOp(*fs, call);
      op.invoke_seq = ++clock;
      op.response_seq = ++clock;
      history.push_back(std::move(op));
    }
  });

  Tid next_tid = 1;
  for (const auto& ops : program.threads) {
    const Tid tid = next_tid++;
    const auto* ops_ptr = &ops;
    sim.Spawn([&, tid, ops_ptr] {
      for (const auto& call : *ops_ptr) {
        uint64_t invoke;
        {
          std::lock_guard<std::mutex> lk(history_mu);
          invoke = ++clock;
        }
        OpResult result = RunOp(*fs, call);
        std::lock_guard<std::mutex> lk(history_mu);
        HistoryOp op;
        op.tid = tid;
        op.call = call;
        op.result = std::move(result);
        op.invoke_seq = invoke;
        op.response_seq = ++clock;
        history.push_back(std::move(op));
      }
    });
  }
  sim.Run();

  outcome.trace = sim.ScheduleTrace();
  outcome.fanouts = sim.ScheduleFanouts();

  auto verdict = CheckLinearizable(history);
  if (verdict.aborted) {
    outcome.messages.push_back("Wing&Gong aborted (state budget)");
  } else if (!verdict.linearizable) {
    outcome.ok = false;
    outcome.messages.push_back("Wing&Gong: history not linearizable");
  }
  return outcome;
}

}  // namespace

ExploreStats ExploreSchedulesWingGong(const GenericFs& fs_factory,
                                      const ConcurrentProgram& program,
                                      const ExploreOptions& options) {
  ExploreStats stats;
  std::deque<std::vector<uint32_t>> pending;
  pending.push_back({});
  while (!pending.empty()) {
    if (stats.executions >= options.max_executions) {
      return stats;
    }
    std::vector<uint32_t> script = std::move(pending.front());
    pending.pop_front();
    ScheduleOptions schedule;
    schedule.policy = SchedulePolicy::kScripted;
    schedule.script = script;
    schedule.yield_on_work = false;
    RunOutcome outcome = RunOnceGeneric(fs_factory, program, std::move(schedule));
    Accumulate(stats, outcome, script);
    for (size_t pos = script.size(); pos < outcome.trace.size(); ++pos) {
      for (uint32_t choice = 1; choice < outcome.fanouts[pos]; ++choice) {
        std::vector<uint32_t> child(outcome.trace.begin(),
                                    outcome.trace.begin() + static_cast<ptrdiff_t>(pos));
        child.push_back(choice);
        pending.push_back(std::move(child));
      }
    }
  }
  stats.exhausted = true;
  return stats;
}

ExploreStats ExploreRandom(const ConcurrentProgram& program, uint64_t runs, uint64_t base_seed,
                           bool wing_gong) {
  ExploreStats stats;
  for (uint64_t i = 0; i < runs; ++i) {
    ScheduleOptions schedule;
    schedule.policy = SchedulePolicy::kRandom;
    schedule.seed = base_seed + i;
    schedule.yield_on_work = false;
    RunOutcome outcome =
        RunOnce(program, std::move(schedule), wing_gong, /*check_invariants=*/true);
    Accumulate(stats, outcome, {static_cast<uint32_t>(base_seed + i)});
  }
  stats.exhausted = false;
  return stats;
}

}  // namespace atomfs
