#include "src/crlh/lin_check.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "src/util/check.h"

namespace atomfs {

std::vector<HistoryOp> HistoryFromRecords(
    const std::vector<CrlhMonitor::CompletedRecord>& records) {
  std::vector<HistoryOp> ops;
  ops.reserve(records.size());
  for (const auto& rec : records) {
    HistoryOp op;
    op.tid = rec.tid;
    op.call = rec.call;
    op.result = rec.concrete;
    op.invoke_seq = rec.begin_seq;
    op.response_seq = rec.end_seq;
    ops.push_back(std::move(op));
  }
  return ops;
}

std::optional<size_t> ReplayOrder(const std::vector<HistoryOp>& ops,
                                  const std::vector<size_t>& order) {
  SpecFs spec;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const HistoryOp& op = ops[order[pos]];
    OpResult expected = RunOp(spec, op.call);
    if (!ResultsEquivalent(op.call.kind, op.result, expected)) {
      return pos;
    }
  }
  return std::nullopt;
}

std::vector<size_t> OrderBy(const std::vector<HistoryOp>& ops,
                            const std::vector<uint64_t>& keys) {
  ATOMFS_CHECK(ops.size() == keys.size());
  std::vector<size_t> order(ops.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
  return order;
}

namespace {

struct SearchState {
  const std::vector<HistoryOp>* ops = nullptr;
  uint64_t max_states = 0;
  uint64_t states = 0;
  bool aborted = false;
  std::unordered_set<uint64_t> visited;  // hash of (mask, spec hash)
  std::vector<size_t> chosen;
};

uint64_t MixKey(uint64_t mask, uint64_t spec_hash) {
  uint64_t h = mask * 0x9e3779b97f4a7c15ULL;
  h ^= spec_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

// DFS: pick any minimal op (no unchosen op responded before its invoke),
// replay, recurse. Memoize on (chosen mask, abstract state hash) — two
// different legal prefixes reaching the same completed-set and tree never
// need exploring twice.
bool Search(SearchState& st, SpecFs& spec, uint64_t mask) {
  const auto& ops = *st.ops;
  const size_t n = ops.size();
  if (st.chosen.size() == n) {
    return true;
  }
  if (++st.states > st.max_states) {
    st.aborted = true;
    return false;
  }
  if (!st.visited.insert(MixKey(mask, spec.Hash())).second) {
    return false;
  }
  // Earliest unfinished response bounds which ops may linearize next.
  uint64_t min_response = UINT64_MAX;
  for (size_t i = 0; i < n; ++i) {
    if ((mask & (1ULL << i)) == 0) {
      min_response = std::min(min_response, ops[i].response_seq);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if ((mask & (1ULL << i)) != 0) {
      continue;
    }
    if (ops[i].invoke_seq > min_response) {
      continue;  // some unchosen op responded before this one was invoked
    }
    SpecFs next = spec;
    OpResult expected = RunOp(next, ops[i].call);
    if (!ResultsEquivalent(ops[i].call.kind, ops[i].result, expected)) {
      continue;
    }
    st.chosen.push_back(i);
    if (Search(st, next, mask | (1ULL << i))) {
      return true;
    }
    if (st.aborted) {
      return false;
    }
    st.chosen.pop_back();
  }
  return false;
}

}  // namespace

LinCheckResult CheckLinearizable(const std::vector<HistoryOp>& ops, uint64_t max_states) {
  ATOMFS_CHECK(ops.size() <= 64);
  SearchState st;
  st.ops = &ops;
  st.max_states = max_states;
  SpecFs spec;
  LinCheckResult result;
  result.linearizable = Search(st, spec, 0);
  result.aborted = st.aborted;
  result.states_explored = st.states;
  if (result.linearizable) {
    result.witness = st.chosen;
  }
  return result;
}

}  // namespace atomfs
