// Effects and the roll-back mechanism (paper §4.4, §5.3).
//
// When a helper executes a thread's abstract operation ahead of its concrete
// execution, the abstract state runs ahead of the concrete state. To state
// the abstract-concrete relation, CRL-H records the *effect* of each helped
// Aop and establishes consistency by rolling those effects back on the
// abstract state ("first roll back the effects applied last").
//
// The paper records effects as micro-operations (OPins, OPcreate, ...) at
// inode granularity. We record them as per-inode before/after pairs computed
// by diffing the abstract state across the Aop — the same information at the
// same granularity, but obtained mechanically from the specification itself,
// so the effect log can never drift from the spec's semantics.

#ifndef ATOMFS_SRC_CRLH_EFFECTS_H_
#define ATOMFS_SRC_CRLH_EFFECTS_H_

#include <optional>
#include <vector>

#include "src/afs/op.h"
#include "src/afs/spec_fs.h"

namespace atomfs {

// One modified abstract inode: absent `before` means the Aop created it,
// absent `after` means the Aop freed it.
struct InodeEffect {
  Inum ino = kInvalidInum;
  std::optional<SpecInode> before;
  std::optional<SpecInode> after;
};

// Runs `call` on `spec` (mutating it) and records the per-inode effects. If
// `forced_ino` is valid and the operation creates an inode, the new inode is
// given that number (so the ghost abstract state can mirror concrete inode
// numbers, or use a ghost placeholder for helped creations).
OpResult ApplyWithEffects(SpecFs& spec, const OpCall& call, Inum forced_ino,
                          std::vector<InodeEffect>* effects);

// Undoes `effects` on `spec` (restores every `before`). Callers roll back
// helped operations in reverse Helplist order.
void RollbackEffects(SpecFs& spec, const std::vector<InodeEffect>& effects);

// Renames inode `from` to `to` throughout `spec` (the imap key and every
// link referring to it). Used when a helped creation's ghost placeholder
// becomes a concrete inum.
void RemapInum(SpecFs& spec, Inum from, Inum to);

// Same remapping applied to a recorded effect list.
void RemapInum(std::vector<InodeEffect>& effects, Inum from, Inum to);

}  // namespace atomfs

#endif  // ATOMFS_SRC_CRLH_EFFECTS_H_
