// Exhaustive and randomized schedule exploration — a bounded stateless
// model checker for concurrent file-system programs.
//
// The virtual-time simulator makes every scheduling decision explicit
// (SchedulePolicy::kScripted records the decision index and the fanout at
// every point where more than one thread was runnable). The explorer
// enumerates those decisions depth-first: each enumerated schedule runs the
// *real* AtomFS code under a fresh CRL-H monitor and must pass refinement,
// the Table-1 invariants, and quiescent abstract-concrete consistency.
//
// This bridges the gap the runtime checker leaves against the paper's Coq
// proofs: for small programs, *every* interleaving is checked, not just the
// ones the OS scheduler happens to produce. Larger programs fall back to
// seeded-random schedule fuzzing (ExploreRandom).

#ifndef ATOMFS_SRC_CRLH_EXPLORE_H_
#define ATOMFS_SRC_CRLH_EXPLORE_H_

#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "src/afs/op.h"
#include "src/afs/spec_fs.h"
#include "src/sim/executor.h"
#include "src/vfs/filesystem.h"

namespace atomfs {

// A concurrent program: a sequential setup phase plus one op-list per
// thread.
struct ConcurrentProgram {
  std::function<void(FileSystem&)> setup;  // may be null
  // Setup expressed as explicit operations — required by the generic
  // (Wing&Gong) explorer, which must include the setup in the history it
  // checks. Used instead of `setup` when non-empty.
  std::vector<OpCall> setup_ops;
  std::vector<std::vector<OpCall>> threads;
  // Run the file system with lock coupling disabled (AtomFs::Options::
  // unsafe_release_before_lock). Used to demonstrate that exploration
  // automatically discovers the resulting non-linearizable schedules.
  bool unsafe_no_coupling = false;
};

struct ExploreOptions {
  // Hard cap on schedules executed; `exhausted` reports whether the full
  // decision tree fit under it.
  uint64_t max_executions = 20000;
  // Additionally run the Wing&Gong checker on every recorded history
  // (expensive; only sensible for tiny programs).
  bool wing_gong = false;
  // Check the per-event Table-1 invariants in the monitor. Turn off to
  // isolate refinement violations (e.g. when exploring the deliberately
  // uncoupled file system, where Last-locked-lockpath fires on every
  // schedule by construction).
  bool check_invariants = true;
};

struct ExploreStats {
  uint64_t executions = 0;
  bool exhausted = false;  // the whole schedule tree was covered
  bool all_ok = true;
  // First failing schedule, for replay/debugging.
  std::vector<uint32_t> failing_script;
  std::vector<std::string> failure_messages;
  // Aggregates across schedules.
  uint64_t schedules_with_helping = 0;
  uint64_t total_helped_ops = 0;
  uint64_t max_decision_points = 0;
};

// Depth-first enumeration of all scheduling decisions (up to the budget).
ExploreStats ExploreSchedules(const ConcurrentProgram& program,
                              const ExploreOptions& options = ExploreOptions{});

// Seeded-random schedule fuzzing: `runs` independent schedules.
ExploreStats ExploreRandom(const ConcurrentProgram& program, uint64_t runs,
                           uint64_t base_seed = 1, bool wing_gong = false);

// Generic exploration for file systems WITHOUT CRL-H instrumentation
// (BigLockFs, RetryFs, ...): each enumerated schedule records an
// invoke/response-stamped history (the program's `setup_ops` form its
// completed prefix) and validates it with the Wing&Gong checker. Deadlocks
// abort loudly (the simulator detects them), so a clean exhaustive run is
// also a deadlock-freedom certificate for the explored program.
struct GenericFs {
  std::function<std::unique_ptr<FileSystem>(Executor*)> make;
};
ExploreStats ExploreSchedulesWingGong(const GenericFs& fs_factory,
                                      const ConcurrentProgram& program,
                                      const ExploreOptions& options = ExploreOptions{});

}  // namespace atomfs

#endif  // ATOMFS_SRC_CRLH_EXPLORE_H_
