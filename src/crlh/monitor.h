// CrlhMonitor: the executable CRL-H verification layer.
//
// Attached to a concrete file system as its FsObserver, the monitor
// maintains the ghost state of §4.3 (thread pool of Descriptors, Helplist,
// and an abstract SpecFs that the Aops run on), executes the helper
// mechanism (`linothers`, §3.4/§5.2) at every rename LP, and checks:
//
//   * Refinement: every operation's concrete result must match the result
//     of its abstract operation, executed at its LP — or earlier, by a
//     helper, when a rename breaks its traversed path. A mismatch is a
//     linearizability violation.
//   * The Table-1 invariants, continuously where they are per-event
//     (Last-locked-lockpath, Future-lockpath-validness, both non-bypassable
//     invariants, Helplist-consistency, Lockpath-wellformed, GoodAFS) and
//     on demand for the abstract-concrete relation (roll-back mechanism).
//
// The monitor serializes all events with one mutex, which is what makes each
// (concrete step, ghost update) pair atomic (the concrete step is protected
// by the inode locks the file system holds while emitting the event).
//
// `fixed_lp_mode` disables helping: renames then linearize only themselves,
// which reproduces the paper's Figure 1 — interleavings with path
// inter-dependency fail the refinement check that the helper makes pass.

#ifndef ATOMFS_SRC_CRLH_MONITOR_H_
#define ATOMFS_SRC_CRLH_MONITOR_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/afs/spec_fs.h"
#include "src/core/observer.h"
#include "src/crlh/ghost.h"
#include "src/obs/sink.h"

namespace atomfs {

class CrlhMonitor : public FsObserver {
 public:
  struct Options {
    // Continuously check the per-event Table-1 invariants.
    bool check_invariants = true;
    // Keep a record of every completed operation for offline checkers.
    bool record_history = true;
    // Disable the helper mechanism (fixed-LP verification, §3.1).
    bool fixed_lp_mode = false;
    // Which shard of a sharded namespace this monitor watches (stamped on
    // every descriptor; see Descriptor::shard). 0 for an unsharded system.
    uint32_t shard_id = 0;
    // Optional observability sink notified of helper linearizations,
    // Helplist movement, and roll-back checks. Called with the ghost mutex
    // held; must be non-blocking and must not call back into the monitor.
    CrlhObsSink* obs = nullptr;
  };

  // A completed operation, with both its concrete outcome and the outcome of
  // its abstract operation (executed at its LP, or earlier when helped).
  struct CompletedRecord {
    Tid tid = 0;
    OpCall call;
    OpResult concrete;
    OpResult abstract;
    uint64_t begin_seq = 0;
    uint64_t lp_seq = 0;    // concrete LP (ghost event order)
    uint64_t abs_seq = 0;   // when the abstract op executed (helping reorders)
    uint64_t end_seq = 0;
    bool helped = false;
    Tid helper = 0;
  };

  // Post-mortem snapshot harvested after a violation: the first violation's
  // message and ghost time, plus the ghost state (Descriptor pool, Helplist,
  // abstract tree) and the completed history as of harvest time — everything
  // src/crlh/bundle.h needs to format a replayable bundle.
  struct PostMortem {
    std::string message;  // first violation recorded
    uint64_t seq = 0;     // ghost time of the first violation
    std::vector<Tid> helplist;
    std::map<Tid, Descriptor> pool;
    std::vector<CompletedRecord> history;
    SpecFs abstract;
  };

  CrlhMonitor();
  explicit CrlhMonitor(Options options);

  // FsObserver interface.
  void OnOpBegin(Tid tid, const OpCall& call) override;
  void OnOpEnd(Tid tid, const OpResult& result) override;
  void OnLockAcquired(Tid tid, Inum ino, LockPathRole role) override;
  void OnLockReleased(Tid tid, Inum ino) override;
  void OnLp(Tid tid, Inum created_ino) override;
  // Optimistic (RCU-walk) readers bypass lock coupling; these events toggle
  // the descriptor's optimistic/opt_validated flags so the lock-coupling
  // invariants are exempted and the Opt-validation invariant (a bypassing
  // reader must have a passed validation by its LP) can be checked instead.
  void OnOptWalkStart(Tid tid) override;
  void OnOptWalkValidate(Tid tid, OptValidation outcome, uint32_t depth) override;
  void OnOptWalkFallback(Tid tid) override;

  // --- verdicts --------------------------------------------------------------
  bool ok() const;
  std::vector<std::string> violations() const;

  uint64_t help_events() const;   // renames that helped at least one thread
  uint64_t helped_ops() const;    // operations linearized by a helper

  std::vector<CompletedRecord> Completed() const;

  // Nullopt while no violation has been recorded; otherwise the first
  // violation plus the ghost state at call time. Harvest after the offending
  // schedule has quiesced so the history includes the violating op.
  std::optional<PostMortem> PostMortemState() const;

  // --- state checks ----------------------------------------------------------

  // Quiescent check: no in-flight operations; the abstract and concrete
  // trees must match exactly (up to inum naming). Appends a violation and
  // returns false on mismatch.
  bool CheckQuiescent(const SpecFs& concrete_snapshot);

  // Mid-flight abstract-concrete relation (§4.4): rolls back the effects of
  // still-pending helped operations in reverse Helplist order, then compares
  // with the concrete snapshot under the relaxed consistency mapping (locked
  // inodes are exempt from content comparison). The snapshot must be taken
  // while every in-flight thread is parked at an observer event.
  bool CheckAbstractConcreteRelation(const SpecFs& concrete_snapshot);

  // --- ghost introspection (tests) --------------------------------------------
  std::vector<Tid> Helplist() const;
  std::optional<Descriptor> GetDescriptor(Tid tid) const;
  SpecFs AbstractState() const;

 private:
  // All private helpers require mu_ held.
  void Violation(std::string message);
  void ReportInvariantLocked(InvariantKind kind, Tid tid, bool passed);
  void ApplyAopLocked(Tid tid, Descriptor& d, Inum forced_ino, bool record_effects);
  void HelpThreadLocked(Tid helper, Tid target, HelpReason reason);
  void ComputeFutLockPathLocked(Descriptor& d);
  void CheckGoodAfsLocked(const char* where);
  void RemapPlaceholderLocked(Inum from, Inum to);

  Options opts_;
  mutable std::mutex mu_;

  std::map<Tid, Descriptor> pool_;
  std::vector<Tid> helplist_;
  SpecFs aspec_;
  Inum ghost_next_ = kGhostInumBase;
  uint64_t seq_ = 0;

  std::vector<std::string> violations_;
  uint64_t first_violation_seq_ = 0;
  std::vector<CompletedRecord> completed_;
  uint64_t help_events_ = 0;
  uint64_t helped_ops_ = 0;
};

}  // namespace atomfs

#endif  // ATOMFS_SRC_CRLH_MONITOR_H_
