#include "src/crlh/rg_check.h"

#include <sstream>

namespace atomfs {
namespace {

// All inums whose content differs between the two states (including
// creations and frees).
std::set<Inum> DiffInums(const SpecFs& before, const SpecFs& after) {
  std::set<Inum> changed;
  for (const auto& [ino, node] : before.imap()) {
    const SpecInode* now = after.Find(ino);
    if (now == nullptr || !(*now == node)) {
      changed.insert(ino);
    }
  }
  for (const auto& [ino, node] : after.imap()) {
    if (before.Find(ino) == nullptr) {
      changed.insert(ino);
    }
  }
  return changed;
}

// The directory linking to `ino`, in `state` (tree => at most one).
Inum ParentOf(const SpecFs& state, Inum ino) {
  for (const auto& [candidate, node] : state.imap()) {
    for (const auto& [name, child] : node.links) {
      if (child == ino) {
        return candidate;
      }
    }
  }
  return kInvalidInum;
}

}  // namespace

GuaranteeChecker::GuaranteeChecker(const AtomFs* fs, Options options)
    : fs_(fs), opts_(options), prev_(fs->SnapshotSpec()) {}

void GuaranteeChecker::Violation(std::string message) {
  violations_.push_back(std::move(message));
}

bool GuaranteeChecker::ok() const {
  std::lock_guard<std::mutex> lk(mu_);
  return violations_.empty();
}

std::vector<std::string> GuaranteeChecker::violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return violations_;
}

uint64_t GuaranteeChecker::transitions_checked() const {
  std::lock_guard<std::mutex> lk(mu_);
  return transitions_;
}

bool GuaranteeChecker::Covered(Inum ino, Tid actor, const SpecFs& before,
                               const SpecFs& after) const {
  auto held_by = [this, actor](Inum candidate) {
    if (candidate == kInvalidInum) {
      return false;
    }
    if (opts_.strict_attribution) {
      auto it = held_.find(actor);
      return it != held_.end() && it->second.count(candidate) != 0;
    }
    for (const auto& [tid, inos] : held_) {
      if (inos.count(candidate) != 0) {
        return true;
      }
    }
    return false;
  };
  if (held_by(ino)) {
    return true;
  }
  // Creations and frees are covered by the (locked) parent directory through
  // which the inode is linked or unlinked.
  return held_by(ParentOf(before, ino)) || held_by(ParentOf(after, ino));
}

void GuaranteeChecker::CheckTransition(Tid actor) {
  SpecFs now = fs_->SnapshotSpec();
  ++transitions_;
  for (Inum ino : DiffInums(prev_, now)) {
    if (!Covered(ino, actor, prev_, now)) {
      std::ostringstream os;
      os << "GUARANTEE violated: inode " << ino << " changed outside a Lockedtrans"
         << (opts_.strict_attribution ? " of thread " + std::to_string(actor) : "");
      Violation(os.str());
    }
  }
  prev_ = std::move(now);
}

void GuaranteeChecker::OnOpBegin(Tid tid, const OpCall& call) {
  (void)call;
  std::lock_guard<std::mutex> lk(mu_);
  CheckTransition(tid);
}

void GuaranteeChecker::OnOpEnd(Tid tid, const OpResult& result) {
  (void)result;
  std::lock_guard<std::mutex> lk(mu_);
  CheckTransition(tid);
}

void GuaranteeChecker::OnLockAcquired(Tid tid, Inum ino, LockPathRole role) {
  (void)role;
  std::lock_guard<std::mutex> lk(mu_);
  // The segment leading up to this acquire ran without `ino`'s protection:
  // check first, then record the Lock transition.
  CheckTransition(tid);
  held_[tid].insert(ino);
}

void GuaranteeChecker::OnLockReleased(Tid tid, Inum ino) {
  std::lock_guard<std::mutex> lk(mu_);
  // Mutations before the release were made under the lock: check while it
  // still counts as held, then record the Unlock transition.
  CheckTransition(tid);
  held_[tid].erase(ino);
}

void GuaranteeChecker::OnLp(Tid tid, Inum created_ino) {
  (void)created_ino;
  std::lock_guard<std::mutex> lk(mu_);
  CheckTransition(tid);
}

}  // namespace atomfs
