#include "src/crlh/monitor.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/util/check.h"

namespace atomfs {
namespace {

// Scratch inum range for the ghost SpecFs's internal allocator; every
// creation is immediately remapped to either the concrete inum (unhelped
// ops) or a ghost placeholder (helped ops), so scratch numbers never
// survive, but they must not collide with either range in the interim.
constexpr Inum kScratchInumBase = 1ULL << 61;

}  // namespace

CrlhMonitor::CrlhMonitor() : CrlhMonitor(Options{}) {}

CrlhMonitor::CrlhMonitor(Options options) : opts_(options) {
  aspec_.SetNextInum(kScratchInumBase);
}

void CrlhMonitor::Violation(std::string message) {
  if (violations_.empty()) {
    first_violation_seq_ = seq_;
  }
  if (opts_.obs != nullptr) {
    opts_.obs->OnViolation(message, seq_);
  }
  violations_.push_back(std::move(message));
}

void CrlhMonitor::ReportInvariantLocked(InvariantKind kind, Tid tid, bool passed) {
  if (opts_.obs != nullptr) {
    opts_.obs->OnInvariantCheck(kind, tid, passed);
  }
}

bool CrlhMonitor::ok() const {
  std::lock_guard<std::mutex> lk(mu_);
  return violations_.empty();
}

std::vector<std::string> CrlhMonitor::violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return violations_;
}

uint64_t CrlhMonitor::help_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return help_events_;
}

uint64_t CrlhMonitor::helped_ops() const {
  std::lock_guard<std::mutex> lk(mu_);
  return helped_ops_;
}

std::vector<CrlhMonitor::CompletedRecord> CrlhMonitor::Completed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return completed_;
}

std::optional<CrlhMonitor::PostMortem> CrlhMonitor::PostMortemState() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (violations_.empty()) {
    return std::nullopt;
  }
  PostMortem pm;
  pm.message = violations_.front();
  pm.seq = first_violation_seq_;
  pm.helplist = helplist_;
  pm.pool = pool_;
  pm.history = completed_;
  pm.abstract = aspec_;
  return pm;
}

std::vector<Tid> CrlhMonitor::Helplist() const {
  std::lock_guard<std::mutex> lk(mu_);
  return helplist_;
}

std::optional<Descriptor> CrlhMonitor::GetDescriptor(Tid tid) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pool_.find(tid);
  if (it == pool_.end()) {
    return std::nullopt;
  }
  return it->second;
}

SpecFs CrlhMonitor::AbstractState() const {
  std::lock_guard<std::mutex> lk(mu_);
  return aspec_;
}

// --- events -----------------------------------------------------------------

void CrlhMonitor::OnOpBegin(Tid tid, const OpCall& call) {
  std::lock_guard<std::mutex> lk(mu_);
  ++seq_;
  if (pool_.count(tid) != 0) {
    Violation("thread " + std::to_string(tid) + " began an op while one is in flight");
    return;
  }
  Descriptor d;
  d.call = call;
  d.shard = opts_.shard_id;
  d.begin_seq = seq_;
  pool_.emplace(tid, std::move(d));
}

void CrlhMonitor::OnLockAcquired(Tid tid, Inum ino, LockPathRole role) {
  std::lock_guard<std::mutex> lk(mu_);
  ++seq_;
  auto it = pool_.find(tid);
  if (it == pool_.end()) {
    Violation("lock acquired by thread " + std::to_string(tid) + " with no op in flight");
    return;
  }
  Descriptor& d = it->second;
  switch (role) {
    case LockPathRole::kSingle:
      d.path.inos.push_back(ino);
      break;
    case LockPathRole::kRenameCommon:
      d.src_path.inos.push_back(ino);
      d.dst_path.inos.push_back(ino);
      break;
    case LockPathRole::kRenameSrc:
      d.src_path.inos.push_back(ino);
      break;
    case LockPathRole::kRenameDst:
      d.dst_path.inos.push_back(ino);
      break;
    case LockPathRole::kOptTarget:
      d.path.inos.push_back(ino);
      break;
  }
  d.held.push_back(ino);

  if (!opts_.check_invariants) {
    return;
  }

  // An optimistic reader bypasses lock coupling by design: it holds no
  // coupled LockPath for a helped op to depend on, so the non-bypassable
  // invariants do not apply to its single target acquisition. Its
  // correctness obligation is the Opt-validation invariant at the LP.
  if (d.optimistic) {
    return;
  }

  // Future-lockpath-validness for this thread: a helped operation must
  // acquire exactly the locks predicted when it was helped.
  if (d.state == AopState::kHelped && d.fut_tracked) {
    const bool predicted = !d.fut_lock_path.empty() && d.fut_lock_path.front() == ino;
    ReportInvariantLocked(InvariantKind::kFutureLockpathValidness, tid, predicted);
    if (!predicted) {
      std::ostringstream os;
      os << "Future-lockpath-validness violated: thread " << tid << " locked " << ino
         << " but FutLockPath predicts "
         << (d.fut_lock_path.empty() ? std::string("<none>")
                                     : std::to_string(d.fut_lock_path.front()));
      Violation(os.str());
    } else {
      d.fut_lock_path.pop_front();
    }
  }

  // Non-bypassable invariants: nobody may lock an inode that a (different)
  // helped operation is still predicted to lock — that would mean the helped
  // op is being bypassed and could compute a result inconsistent with its
  // already-published abstract outcome.
  bool bypass_applicable = false;  // some other helped op's FutLockPath is live
  bool bypass_failed = false;
  for (const auto& [otid, od] : pool_) {
    if (otid == tid || od.state != AopState::kHelped || !od.fut_tracked) {
      continue;
    }
    bypass_applicable = true;
    if (std::find(od.fut_lock_path.begin(), od.fut_lock_path.end(), ino) ==
        od.fut_lock_path.end()) {
      continue;
    }
    if (d.state == AopState::kPending) {
      bypass_failed = true;
      std::ostringstream os;
      os << "Unhelped-non-bypassable violated: unhelped thread " << tid << " locked inode "
         << ino << " in FutLockPath of helped thread " << otid;
      Violation(os.str());
    } else if (d.state == AopState::kHelped) {
      const auto self_pos = std::find(helplist_.begin(), helplist_.end(), tid);
      const auto other_pos = std::find(helplist_.begin(), helplist_.end(), otid);
      if (self_pos > other_pos) {
        bypass_failed = true;
        std::ostringstream os;
        os << "Helped-non-bypassable violated: thread " << tid
           << " (helped later) locked inode " << ino << " in FutLockPath of thread " << otid;
        Violation(os.str());
      }
    }
  }
  if (bypass_applicable && d.state != AopState::kDone) {
    ReportInvariantLocked(d.state == AopState::kPending
                              ? InvariantKind::kUnhelpedNonBypassable
                              : InvariantKind::kHelpedNonBypassable,
                          tid, !bypass_failed);
  }
}

void CrlhMonitor::OnLockReleased(Tid tid, Inum ino) {
  std::lock_guard<std::mutex> lk(mu_);
  ++seq_;
  auto it = pool_.find(tid);
  if (it == pool_.end()) {
    Violation("lock released by thread " + std::to_string(tid) + " with no op in flight");
    return;
  }
  Descriptor& d = it->second;
  auto held_it = std::find(d.held.begin(), d.held.end(), ino);
  if (held_it == d.held.end()) {
    Violation("thread " + std::to_string(tid) + " released inode " + std::to_string(ino) +
              " it does not hold");
  } else {
    d.held.erase(held_it);
  }
  if (opts_.check_invariants && !d.lp_passed && !d.optimistic) {
    // Last-locked-lockpath: before its LP, a thread never releases the last
    // inode of a LockPath (lock coupling acquires the next lock first).
    // Exempt for optimistic readers: a failed validation releases the target
    // (its LockPath tip) and retries — that is the protocol, not a bug.
    bool released_tip = false;
    for (const LockPath* lp : d.LockPaths()) {
      if (!lp->inos.empty() && lp->inos.back() == ino) {
        released_tip = true;
        std::ostringstream os;
        os << "Last-locked-lockpath violated: thread " << tid
           << " released the tip of its LockPath " << lp->ToString() << " before its LP";
        Violation(os.str());
      }
    }
    ReportInvariantLocked(InvariantKind::kLastLockedLockpath, tid, !released_tip);
  }
}

void CrlhMonitor::OnOptWalkStart(Tid tid) {
  std::lock_guard<std::mutex> lk(mu_);
  ++seq_;
  auto it = pool_.find(tid);
  if (it == pool_.end()) {
    Violation("optimistic walk started by thread " + std::to_string(tid) +
              " with no op in flight");
    return;
  }
  Descriptor& d = it->second;
  d.optimistic = true;
  d.opt_validated = false;
  // A fresh attempt abandons whatever target a previous attempt recorded
  // (its lock was released on the failed validation).
  d.path.inos.clear();
}

void CrlhMonitor::OnOptWalkValidate(Tid tid, OptValidation outcome, uint32_t depth) {
  std::lock_guard<std::mutex> lk(mu_);
  ++seq_;
  (void)depth;
  auto it = pool_.find(tid);
  if (it == pool_.end()) {
    Violation("optimistic validation by thread " + std::to_string(tid) +
              " with no op in flight");
    return;
  }
  Descriptor& d = it->second;
  if (!d.optimistic) {
    Violation("optimistic validation by thread " + std::to_string(tid) +
              " outside an optimistic walk");
    return;
  }
  // kFail is the protocol working (retry/fallback follows), not a violation;
  // kSkipped leaves opt_validated false so the Opt-validation invariant
  // fires if the op goes on to linearize anyway.
  d.opt_validated = outcome == OptValidation::kPass;
}

void CrlhMonitor::OnOptWalkFallback(Tid tid) {
  std::lock_guard<std::mutex> lk(mu_);
  ++seq_;
  auto it = pool_.find(tid);
  if (it == pool_.end()) {
    Violation("optimistic fallback by thread " + std::to_string(tid) +
              " with no op in flight");
    return;
  }
  Descriptor& d = it->second;
  d.optimistic = false;
  d.opt_validated = false;
  // The lock-coupled walk that follows rebuilds the LockPath from the root;
  // the optimistic attempts' recordings must not prefix it.
  d.path.inos.clear();
}

void CrlhMonitor::ApplyAopLocked(Tid tid, Descriptor& d, Inum forced_ino, bool record_effects) {
  ++seq_;
  d.abs_result = ApplyWithEffects(aspec_, d.call, forced_ino,
                                  record_effects ? &d.effects : nullptr);
  d.has_abs_result = true;
  (void)tid;
  CheckGoodAfsLocked("after Aop");
}

void CrlhMonitor::CheckGoodAfsLocked(const char* where) {
  if (!opts_.check_invariants) {
    return;
  }
  const bool well_formed = aspec_.WellFormed();
  ReportInvariantLocked(InvariantKind::kGoodAfs, 0, well_formed);
  if (!well_formed) {
    Violation(std::string("GoodAFS violated ") + where);
  }
}

void CrlhMonitor::ComputeFutLockPathLocked(Descriptor& d) {
  d.fut_lock_path.clear();
  d.fut_tracked = false;
  if (IsHelperOp(d.call.kind)) {
    // A helped rename/exchange holds a pair of partially-built LockPaths;
    // predicting its remaining acquisitions is possible but not needed for
    // the invariants we enforce, so it is left untracked.
    return;
  }
  // The full lock sequence of a successful single-path operation: the root,
  // every parent component, and (except for ins, which creates its target)
  // the target inode itself.
  const Path& p = d.call.a;
  const bool is_ins = d.call.kind == OpKind::kMkdir || d.call.kind == OpKind::kMknod;
  std::vector<Inum> full;
  full.push_back(kRootInum);
  Inum cur = kRootInum;
  const size_t parent_comps = p.IsRoot() ? 0 : p.parts.size() - 1;
  bool resolved = true;
  for (size_t i = 0; i < parent_comps; ++i) {
    const SpecInode* node = aspec_.Find(cur);
    if (node == nullptr || node->type != FileType::kDir) {
      resolved = false;
      break;
    }
    auto link = node->links.find(p.parts[i]);
    if (link == node->links.end()) {
      resolved = false;
      break;
    }
    cur = link->second;
    full.push_back(cur);
  }
  if (resolved && !is_ins && !p.IsRoot()) {
    const SpecInode* node = aspec_.Find(cur);
    if (node != nullptr && node->type == FileType::kDir) {
      auto link = node->links.find(p.Base());
      if (link != node->links.end()) {
        full.push_back(link->second);
      }
    }
  }
  // Sanity: the already-acquired prefix must agree with the abstract path.
  const size_t have = d.path.inos.size();
  for (size_t i = 0; i < std::min(have, full.size()); ++i) {
    if (d.path.inos[i] != full[i]) {
      std::ostringstream os;
      os << "helped thread's LockPath " << d.path.ToString()
         << " diverges from the abstract path at position " << i;
      Violation(os.str());
      return;
    }
  }
  for (size_t i = have; i < full.size(); ++i) {
    d.fut_lock_path.push_back(full[i]);
  }
  d.fut_tracked = true;
}

void CrlhMonitor::HelpThreadLocked(Tid helper, Tid target, HelpReason reason) {
  Descriptor& td = pool_.at(target);
  ATOMFS_CHECK(td.state == AopState::kPending);
  Inum forced = kInvalidInum;
  if (td.call.kind == OpKind::kMkdir || td.call.kind == OpKind::kMknod) {
    td.placeholder = ghost_next_++;
    forced = td.placeholder;
  }
  // Predict the locks the thread will still acquire from the state *before*
  // its own Aop runs: a helped del locks its target and then removes it, so
  // the post-Aop tree no longer contains the inode it is about to lock.
  ComputeFutLockPathLocked(td);
  ApplyAopLocked(target, td, forced, /*record_effects=*/true);
  td.state = AopState::kHelped;
  td.helper = helper;
  helplist_.push_back(target);
  ++helped_ops_;
  if (opts_.obs != nullptr) {
    opts_.obs->OnHelpedLinearized(helper, target, reason, helplist_.size(), helplist_.size());
  }
}

void CrlhMonitor::RemapPlaceholderLocked(Inum from, Inum to) {
  RemapInum(aspec_, from, to);
  for (auto& [tid, d] : pool_) {
    RemapInum(d.effects, from, to);
    for (Inum& ino : d.fut_lock_path) {
      if (ino == from) {
        ino = to;
      }
    }
  }
}

void CrlhMonitor::OnLp(Tid tid, Inum created_ino) {
  std::lock_guard<std::mutex> lk(mu_);
  ++seq_;
  auto it = pool_.find(tid);
  if (it == pool_.end()) {
    Violation("LP from thread " + std::to_string(tid) + " with no op in flight");
    return;
  }
  Descriptor& d = it->second;
  if (d.lp_passed) {
    Violation("thread " + std::to_string(tid) + " passed two LPs in one op");
    return;
  }
  d.lp_passed = true;
  d.lp_seq = seq_;

  if (d.state == AopState::kHelped) {
    // (end, ret): the abstract op already ran; the concrete effect has just
    // been published, so the pending effect is discharged.
    if (d.placeholder != kInvalidInum && created_ino != kInvalidInum) {
      RemapPlaceholderLocked(d.placeholder, created_ino);
      d.placeholder = kInvalidInum;
    }
    if (opts_.check_invariants && d.fut_tracked) {
      ReportInvariantLocked(InvariantKind::kFutureLockpathValidness, tid,
                            d.fut_lock_path.empty());
      if (!d.fut_lock_path.empty()) {
        std::ostringstream os;
        os << "Future-lockpath-validness violated: thread " << tid
           << " reached its LP with unacquired predicted locks";
        Violation(os.str());
      }
    }
    auto pos = std::find(helplist_.begin(), helplist_.end(), tid);
    ReportInvariantLocked(InvariantKind::kHelplistConsistency, tid, pos != helplist_.end());
    if (pos == helplist_.end()) {
      Violation("Helplist-consistency violated: helped thread " + std::to_string(tid) +
                " missing from Helplist");
    } else {
      helplist_.erase(pos);
      if (opts_.obs != nullptr) {
        opts_.obs->OnHelpedRetired(tid, helplist_.size());
      }
    }
    d.effects.clear();
    d.state = AopState::kDone;  // abs_seq keeps the help-time position
    return;
  }

  if (opts_.check_invariants) {
    const bool absent = std::count(helplist_.begin(), helplist_.end(), tid) == 0;
    ReportInvariantLocked(InvariantKind::kHelplistConsistency, tid, absent);
    if (!absent) {
      Violation("Helplist-consistency violated: pending thread " + std::to_string(tid) +
                " present in Helplist");
    }
  }

  // Opt-validation: a reader that bypassed lock coupling may only linearize
  // after a passed version-chain validation. A skipped validation (the
  // unsafe_skip_opt_validation hook) fails here even before the possibly
  // stale result reaches the refinement check at OnOpEnd.
  if (opts_.check_invariants && d.optimistic) {
    ReportInvariantLocked(InvariantKind::kOptValidation, tid, d.opt_validated);
    if (!d.opt_validated) {
      Violation("Opt-validation violated: optimistic thread " + std::to_string(tid) +
                " reached its LP without a passed version-chain validation");
    }
  }

  if (IsHelperOp(d.call.kind) && !opts_.fixed_lp_mode) {
    // linothers: find the helping set and order, linearize each helped
    // thread's Aop, then the rename's own (paper Fig. 5).
    std::map<Tid, HelpReason> reasons;
    auto order = ComputeHelpOrder(tid, pool_, &reasons);
    ReportInvariantLocked(InvariantKind::kLockpathWellformed, tid, order.has_value());
    if (!order.has_value()) {
      Violation("Lockpath-wellformed violated: linearize-before relation is cyclic at "
                "rename LP of thread " +
                std::to_string(tid));
    } else {
      if (!order->empty()) {
        ++help_events_;
        if (opts_.obs != nullptr) {
          opts_.obs->OnHelpEvent(tid, order->size());
        }
      }
      for (Tid target : *order) {
        auto rit = reasons.find(target);
        HelpThreadLocked(tid, target,
                         rit != reasons.end() ? rit->second : HelpReason::kSrcPrefix);
        pool_.at(target).abs_seq = seq_;
      }
    }
  }
  ApplyAopLocked(tid, d, created_ino, /*record_effects=*/false);
  d.abs_seq = seq_;
  d.state = AopState::kDone;
}

void CrlhMonitor::OnOpEnd(Tid tid, const OpResult& result) {
  std::lock_guard<std::mutex> lk(mu_);
  ++seq_;
  auto it = pool_.find(tid);
  if (it == pool_.end()) {
    Violation("op end from thread " + std::to_string(tid) + " with no op in flight");
    return;
  }
  Descriptor& d = it->second;
  if (!d.lp_passed || !d.has_abs_result) {
    ReportInvariantLocked(InvariantKind::kRefinement, tid, false);
    Violation("op " + d.call.ToString() + " of thread " + std::to_string(tid) +
              " returned without linearizing");
  } else {
    const bool equivalent = ResultsEquivalent(d.call.kind, result, d.abs_result);
    ReportInvariantLocked(InvariantKind::kRefinement, tid, equivalent);
    if (!equivalent) {
      std::ostringstream os;
      os << "REFINEMENT violated: " << d.call.ToString() << " of thread " << tid
         << " returned " << result.ToString(d.call.kind) << " but its abstract operation "
         << (d.helper != 0 ? "(helped) " : "") << "returned "
         << d.abs_result.ToString(d.call.kind);
      Violation(os.str());
    }
  }
  if (opts_.check_invariants && !d.held.empty()) {
    Violation("thread " + std::to_string(tid) + " finished an op still holding locks");
  }
  if (opts_.record_history) {
    CompletedRecord rec;
    rec.tid = tid;
    rec.call = d.call;
    rec.concrete = result;
    rec.abstract = d.abs_result;
    rec.begin_seq = d.begin_seq;
    rec.lp_seq = d.lp_seq;
    rec.abs_seq = d.abs_seq;
    rec.end_seq = seq_;
    rec.helped = d.helper != 0;
    rec.helper = d.helper;
    completed_.push_back(std::move(rec));
  }
  pool_.erase(it);
}

// --- state checks -------------------------------------------------------------

bool CrlhMonitor::CheckQuiescent(const SpecFs& concrete_snapshot) {
  std::lock_guard<std::mutex> lk(mu_);
  bool good = true;
  if (!pool_.empty()) {
    Violation("CheckQuiescent called with operations in flight");
    good = false;
  }
  ReportInvariantLocked(InvariantKind::kHelplistConsistency, 0, helplist_.empty());
  if (!helplist_.empty()) {
    Violation("Helplist-consistency violated: non-empty Helplist at quiescence");
    good = false;
  }
  const bool equal = StructurallyEqual(aspec_, concrete_snapshot);
  ReportInvariantLocked(InvariantKind::kAbstractConcrete, 0, equal);
  if (!equal) {
    Violation("Abstract-concrete-relation violated: trees differ at quiescence");
    good = false;
  }
  return good;
}

namespace {

// Relaxed consistency mapping (§4.4): compare two trees structurally, but a
// concretely-locked inode's content is exempt (it may be mid-modification).
bool RelaxedEqualAt(const SpecFs& rolled, Inum a, const SpecFs& concrete, Inum b,
                    const std::set<Inum>& locked) {
  const SpecInode* na = rolled.Find(a);
  const SpecInode* nb = concrete.Find(b);
  if (na == nullptr || nb == nullptr) {
    return na == nb;
  }
  if (na->type != nb->type) {
    return false;
  }
  if (locked.count(b) != 0) {
    return true;  // content of a locked inode is unconstrained
  }
  if (na->type == FileType::kFile) {
    return na->data == nb->data;
  }
  if (na->links.size() != nb->links.size()) {
    return false;
  }
  auto ia = na->links.begin();
  auto ib = nb->links.begin();
  for (; ia != na->links.end(); ++ia, ++ib) {
    if (ia->first != ib->first) {
      return false;
    }
    if (!RelaxedEqualAt(rolled, ia->second, concrete, ib->second, locked)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool CrlhMonitor::CheckAbstractConcreteRelation(const SpecFs& concrete_snapshot) {
  std::lock_guard<std::mutex> lk(mu_);
  if (opts_.obs != nullptr) {
    opts_.obs->OnRollback(helplist_.size());
  }
  SpecFs rolled = aspec_;
  for (auto it = helplist_.rbegin(); it != helplist_.rend(); ++it) {
    auto pit = pool_.find(*it);
    if (pit == pool_.end()) {
      ReportInvariantLocked(InvariantKind::kHelplistConsistency, *it, false);
      Violation("Helplist-consistency violated: Helplist names a finished thread");
      return false;
    }
    RollbackEffects(rolled, pit->second.effects);
  }
  std::set<Inum> locked;
  for (const auto& [tid, d] : pool_) {
    locked.insert(d.held.begin(), d.held.end());
  }
  const bool equal = RelaxedEqualAt(rolled, kRootInum, concrete_snapshot, kRootInum, locked);
  ReportInvariantLocked(InvariantKind::kAbstractConcrete, 0, equal);
  if (!equal) {
    Violation("Abstract-concrete-relation violated: roll-back of helped effects does not "
              "match the concrete tree");
    return false;
  }
  return true;
}

}  // namespace atomfs
